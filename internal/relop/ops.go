package relop

import "fmt"

// OpKind identifies an operator type. Its integer value is the OpID of
// the paper's fingerprint definition: all group-by operators share one
// OpID, all joins another, and so on. Structural parameters (grouping
// columns, predicates) deliberately do not affect the OpID — colliding
// fingerprints are resolved by deep comparison, exactly as in Alg. 1.
type OpKind int

// Logical operator kinds.
const (
	KindExtract OpKind = iota + 1
	KindProject
	KindFilter
	KindGroupBy
	KindJoin
	KindSpool
	KindOutput
	KindSequence
	KindUnion
)

// Physical operator kinds.
const (
	KindPhysExtract OpKind = iota + 101
	KindPhysProject
	KindPhysFilter
	KindStreamAgg
	KindHashAgg
	KindSort
	KindRepartition
	KindSortMergeJoin
	KindHashJoin
	KindPhysSpool
	KindPhysOutput
	KindPhysSequence
	KindPhysUnion
	// KindCacheScan reads a session-cached materialized result. It is
	// appended after the existing kinds: OpKind values are the
	// fingerprint OpIDs, so renumbering would silently change every
	// fingerprint.
	KindCacheScan
)

var kindNames = map[OpKind]string{
	KindExtract: "Extract", KindProject: "Project", KindFilter: "Filter",
	KindGroupBy: "GroupBy", KindJoin: "Join", KindSpool: "Spool",
	KindOutput: "Output", KindSequence: "Sequence",
	KindPhysExtract: "PhysExtract", KindPhysProject: "Compute",
	KindPhysFilter: "Select", KindStreamAgg: "StreamAgg",
	KindHashAgg: "HashAgg", KindSort: "Sort", KindRepartition: "Repartition",
	KindSortMergeJoin: "SortMergeJoin", KindHashJoin: "HashJoin",
	KindPhysSpool: "Spool", KindPhysOutput: "Output",
	KindPhysSequence: "Sequence",
	KindUnion:        "UnionAll", KindPhysUnion: "UnionAll",
	KindCacheScan: "CacheScan",
}

// String renders the kind name.
func (k OpKind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// IsLogical reports whether the kind is a logical (pre-implementation)
// operator.
func (k OpKind) IsLogical() bool { return k < 100 }

// Operator is the common interface of logical and physical operators.
// Operators are immutable once constructed and reference their inputs
// positionally through the enclosing memo expression or plan node,
// never directly.
type Operator interface {
	// Kind returns the operator's type tag (the fingerprint OpID).
	Kind() OpKind
	// Arity returns the number of relational inputs the operator
	// expects; -1 means variadic (Sequence).
	Arity() int
	// Sig returns a canonical rendering of the operator including all
	// structural parameters but excluding children. Two operators
	// with equal Sig applied to pairwise-equal children compute the
	// same result; common-subexpression detection relies on this.
	Sig() string
	// String renders the operator for plan display; often equals Sig.
	String() string
}
