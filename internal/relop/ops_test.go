package relop

import (
	"testing"

	"repro/internal/props"
)

func TestOpKindClassification(t *testing.T) {
	logical := []Operator{
		&Extract{}, &Project{}, &Filter{Pred: Lit(IntVal(1))},
		&GroupBy{}, &Join{}, &Spool{}, &Output{}, &Sequence{},
	}
	for _, op := range logical {
		if !op.Kind().IsLogical() {
			t.Errorf("%v should be logical", op.Kind())
		}
	}
	physical := []Operator{
		&PhysExtract{}, &PhysProject{}, &PhysFilter{Pred: Lit(IntVal(1))},
		&StreamAgg{}, &HashAgg{}, &Sort{}, &Repartition{},
		&SortMergeJoin{}, &HashJoin{}, &PhysSpool{}, &PhysOutput{}, &PhysSequence{},
	}
	for _, op := range physical {
		if op.Kind().IsLogical() {
			t.Errorf("%v should be physical", op.Kind())
		}
	}
	// All kinds must be distinct (fingerprint OpIDs).
	seen := map[OpKind]bool{}
	for _, op := range append(logical, physical...) {
		if seen[op.Kind()] {
			t.Errorf("duplicate OpKind %v", op.Kind())
		}
		seen[op.Kind()] = true
	}
}

func TestSigDistinguishesParameters(t *testing.T) {
	// Same OpID, different parameters: Sig must differ (this is what
	// resolves fingerprint collisions in Alg. 1).
	g1 := &GroupBy{Keys: []string{"A", "B"}, Aggs: []Aggregate{{Func: AggSum, Arg: "S", As: "S1"}}}
	g2 := &GroupBy{Keys: []string{"B", "C"}, Aggs: []Aggregate{{Func: AggSum, Arg: "S", As: "S2"}}}
	if g1.Kind() != g2.Kind() {
		t.Error("group-bys must share an OpID")
	}
	if g1.Sig() == g2.Sig() {
		t.Error("different groupings must have different signatures")
	}
	g3 := &GroupBy{Keys: []string{"A", "B"}, Aggs: []Aggregate{{Func: AggSum, Arg: "S", As: "S1"}}}
	if g1.Sig() != g3.Sig() {
		t.Error("identical group-bys must have identical signatures")
	}
}

func TestRepartitionString(t *testing.T) {
	r := &Repartition{To: props.HashPartitioning(props.NewColSet("B"))}
	if got := r.String(); got != "Repartition {B}" {
		t.Errorf("String = %q", got)
	}
	r2 := &Repartition{
		To:         props.HashPartitioning(props.NewColSet("B")),
		MergeOrder: props.NewOrdering("B", "A", "C"),
	}
	if got := r2.String(); got != "Repartition {B} / SortMerge (B,A,C)" {
		t.Errorf("merge String = %q", got)
	}
	g := &Repartition{To: props.SerialPartitioning()}
	if got := g.String(); got != "Gather" {
		t.Errorf("gather String = %q", got)
	}
	b := &Repartition{To: props.BroadcastPartitioning()}
	if got := b.String(); got != "Broadcast" {
		t.Errorf("broadcast String = %q", got)
	}
	if r.Sig() == r2.Sig() {
		t.Error("merge order must affect Sig")
	}
}

func TestDeriveSchemaExtractProjectFilter(t *testing.T) {
	ex := &Extract{Path: "t.log", Columns: testSchema}
	s, err := DeriveSchema(ex, nil)
	if err != nil || len(s) != 4 {
		t.Fatalf("extract schema = %v, %v", s, err)
	}
	p := &Project{Items: []NamedExpr{
		{Expr: Col("A"), As: "A"},
		{Expr: Bin(OpAdd, Col("A"), Col("B")), As: "AB"},
	}}
	s2, err := DeriveSchema(p, []Schema{s})
	if err != nil {
		t.Fatal(err)
	}
	if len(s2) != 2 || s2[1].Name != "AB" || s2[1].Type != TInt {
		t.Errorf("project schema = %v", s2)
	}
	if _, err := DeriveSchema(&Project{Items: []NamedExpr{{Expr: Col("Z"), As: "Z"}}}, []Schema{s}); err == nil {
		t.Error("unknown projection column should error")
	}
	f := &Filter{Pred: Bin(OpGt, Col("A"), Lit(IntVal(0)))}
	s3, err := DeriveSchema(f, []Schema{s})
	if err != nil || len(s3) != 4 {
		t.Fatalf("filter schema = %v, %v", s3, err)
	}
	if _, err := DeriveSchema(&Filter{Pred: Col("Z")}, []Schema{s}); err == nil {
		t.Error("unknown filter column should error")
	}
}

func TestDeriveSchemaGroupBy(t *testing.T) {
	g := &GroupBy{
		Keys: []string{"A", "B", "C"},
		Aggs: []Aggregate{{Func: AggSum, Arg: "D", As: "S"}},
	}
	s, err := DeriveSchema(g, []Schema{testSchema})
	if err != nil {
		t.Fatal(err)
	}
	want := "(A int, B int, C string, S float)"
	if s.String() != want {
		t.Errorf("schema = %v, want %s", s, want)
	}
	if _, err := DeriveSchema(&GroupBy{Keys: []string{"Z"}}, []Schema{testSchema}); err == nil {
		t.Error("unknown key should error")
	}
	if _, err := DeriveSchema(&GroupBy{Keys: []string{"A"}, Aggs: []Aggregate{{Func: AggSum, Arg: "Z", As: "S"}}}, []Schema{testSchema}); err == nil {
		t.Error("unknown agg arg should error")
	}
	// Count needs no argument.
	cg := &GroupBy{Keys: []string{"A"}, Aggs: []Aggregate{{Func: AggCount, As: "N"}}}
	if s, err := DeriveSchema(cg, []Schema{testSchema}); err != nil || s[1].Type != TInt {
		t.Errorf("count schema = %v, %v", s, err)
	}
}

func TestDeriveSchemaJoin(t *testing.T) {
	l := Schema{{Name: "B", Type: TInt}, {Name: "S1", Type: TInt}}
	r := Schema{{Name: "B2", Type: TInt}, {Name: "S2", Type: TInt}}
	j := &Join{LeftKeys: []string{"B"}, RightKeys: []string{"B2"}}
	s, err := DeriveSchema(j, []Schema{l, r})
	if err != nil || len(s) != 4 {
		t.Fatalf("join schema = %v, %v", s, err)
	}
	// Duplicate names across sides must be rejected.
	dup := Schema{{Name: "B", Type: TInt}}
	if _, err := DeriveSchema(&Join{LeftKeys: []string{"B"}, RightKeys: []string{"B"}}, []Schema{l, dup}); err == nil {
		t.Error("duplicate output columns should error")
	}
	if _, err := DeriveSchema(&Join{LeftKeys: []string{"Z"}, RightKeys: []string{"B2"}}, []Schema{l, r}); err == nil {
		t.Error("unknown join key should error")
	}
}

func TestDeriveSchemaPassThroughAndArity(t *testing.T) {
	s, err := DeriveSchema(&Spool{}, []Schema{testSchema})
	if err != nil || len(s) != 4 {
		t.Fatalf("spool schema = %v, %v", s, err)
	}
	s, err = DeriveSchema(&Output{Path: "o"}, []Schema{testSchema})
	if err != nil || len(s) != 4 {
		t.Fatalf("output schema = %v, %v", s, err)
	}
	s, err = DeriveSchema(&Sequence{}, []Schema{testSchema, testSchema})
	if err != nil || len(s) != 0 {
		t.Fatalf("sequence schema = %v, %v", s, err)
	}
	if _, err := DeriveSchema(&Filter{Pred: Col("A")}, nil); err == nil {
		t.Error("arity mismatch should error")
	}
	if _, err := DeriveSchema(&Sort{}, []Schema{testSchema}); err == nil {
		t.Error("physical op should be rejected")
	}
}
