// Package relop defines the relational algebra shared by the whole
// system: typed values, schemas, scalar expressions, aggregate
// functions, and the logical and physical operators a SCOPE-style
// script compiles into. The memo, the rules, the optimizer, the plan
// representation, and the execution simulator all speak this algebra.
package relop

import (
	"fmt"
	"hash/fnv"
	"strconv"
)

// Type enumerates the column types of the SCOPE subset.
type Type int

const (
	// TInt is a 64-bit signed integer.
	TInt Type = iota
	// TFloat is a 64-bit float.
	TFloat
	// TString is a UTF-8 string.
	TString
)

// String renders the type name.
func (t Type) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TString:
		return "string"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Value is a tagged scalar value. Exactly the field selected by Kind
// is meaningful.
type Value struct {
	Kind Type
	I    int64
	F    float64
	S    string
}

// IntVal builds an integer value.
func IntVal(i int64) Value { return Value{Kind: TInt, I: i} }

// FloatVal builds a float value.
func FloatVal(f float64) Value { return Value{Kind: TFloat, F: f} }

// StringVal builds a string value.
func StringVal(s string) Value { return Value{Kind: TString, S: s} }

// AsFloat converts numeric values to float64.
func (v Value) AsFloat() float64 {
	if v.Kind == TInt {
		return float64(v.I)
	}
	return v.F
}

// Compare orders two values of the same kind: -1, 0, or +1. Values of
// different numeric kinds compare by numeric value; a string never
// equals a number.
func (v Value) Compare(w Value) int {
	if v.Kind == TString || w.Kind == TString {
		if v.Kind != TString || w.Kind != TString {
			// Numbers sort before strings, deterministically.
			if v.Kind == TString {
				return 1
			}
			return -1
		}
		switch {
		case v.S < w.S:
			return -1
		case v.S > w.S:
			return 1
		default:
			return 0
		}
	}
	if v.Kind == TInt && w.Kind == TInt {
		switch {
		case v.I < w.I:
			return -1
		case v.I > w.I:
			return 1
		default:
			return 0
		}
	}
	a, b := v.AsFloat(), w.AsFloat()
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports value equality under Compare semantics.
func (v Value) Equal(w Value) bool { return v.Compare(w) == 0 }

// Hash returns a stable hash of the value, consistent with Equal for
// same-kind values. The execution simulator's repartition operator
// uses it, so it must be deterministic across runs.
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	switch v.Kind {
	case TInt:
		var buf [8]byte
		u := uint64(v.I)
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	case TFloat:
		// Hash floats via their decimal rendering so 2.0 == 2.0
		// regardless of provenance.
		h.Write([]byte(strconv.FormatFloat(v.F, 'g', -1, 64)))
	case TString:
		h.Write([]byte(v.S))
	}
	return h.Sum64()
}

// String renders the value.
func (v Value) String() string {
	switch v.Kind {
	case TInt:
		return strconv.FormatInt(v.I, 10)
	case TFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TString:
		return strconv.Quote(v.S)
	default:
		return "?"
	}
}

// Add returns v + w with numeric promotion; string addition
// concatenates.
func (v Value) Add(w Value) Value {
	if v.Kind == TString && w.Kind == TString {
		return StringVal(v.S + w.S)
	}
	if v.Kind == TInt && w.Kind == TInt {
		return IntVal(v.I + w.I)
	}
	return FloatVal(v.AsFloat() + w.AsFloat())
}

// Row is a tuple of values positionally aligned with a Schema.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// HashCols hashes the row restricted to the given column indexes,
// combining per-value hashes order-insensitively is WRONG for rows,
// so the combination is positional.
func (r Row) HashCols(idx []int) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, i := range idx {
		h = (h ^ r[i].Hash()) * prime
	}
	return h
}
