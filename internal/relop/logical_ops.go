package relop

import (
	"fmt"
	"strings"

	"repro/internal/props"
)

// Extract is the logical leaf: read columns from a stored file with a
// named extractor (the paper's EXTRACT ... USING LogExtractor).
type Extract struct {
	Path      string
	Columns   Schema
	Extractor string
	// FileID is the catalog-assigned unique identifier of the file;
	// it seeds leaf fingerprints per Definition 1.
	FileID int
}

// Kind implements Operator.
func (*Extract) Kind() OpKind { return KindExtract }

// Arity implements Operator.
func (*Extract) Arity() int { return 0 }

// Sig implements Operator.
func (e *Extract) Sig() string {
	return fmt.Sprintf("Extract(#%d %s USING %s -> %s)", e.FileID, e.Path, e.Extractor, e.Columns)
}

// String implements Operator.
func (e *Extract) String() string {
	return fmt.Sprintf("Extract(%s)", e.Path)
}

// Project computes a new row from each input row (SELECT without
// GROUP BY).
type Project struct {
	Items []NamedExpr
}

// Kind implements Operator.
func (*Project) Kind() OpKind { return KindProject }

// Arity implements Operator.
func (*Project) Arity() int { return 1 }

// Sig implements Operator.
func (p *Project) Sig() string { return "Project(" + namedList(p.Items) + ")" }

// String implements Operator.
func (p *Project) String() string { return p.Sig() }

// Filter keeps input rows satisfying Pred (WHERE).
type Filter struct {
	Pred Scalar
	// Selectivity is the binder-estimated fraction of rows kept.
	Selectivity float64
}

// Kind implements Operator.
func (*Filter) Kind() OpKind { return KindFilter }

// Arity implements Operator.
func (*Filter) Arity() int { return 1 }

// Sig implements Operator.
func (f *Filter) Sig() string { return "Filter(" + f.Pred.String() + ")" }

// String implements Operator.
func (f *Filter) String() string { return f.Sig() }

// GroupBy groups input rows on Keys and computes Aggs per group
// (SELECT ... GROUP BY). The output schema is Keys followed by the
// aggregate columns. Phase distinguishes the original single-phase
// aggregation (AggSingle, what the binder emits) from the Local and
// Global halves created by the aggregation-split transformation rule.
type GroupBy struct {
	Keys  []string
	Aggs  []Aggregate
	Phase AggPhase
}

// Kind implements Operator.
func (*GroupBy) Kind() OpKind { return KindGroupBy }

// Arity implements Operator.
func (*GroupBy) Arity() int { return 1 }

// Sig implements Operator.
func (g *GroupBy) Sig() string {
	aggs := make([]string, len(g.Aggs))
	for i, a := range g.Aggs {
		aggs[i] = a.String()
	}
	return fmt.Sprintf("GroupBy[%s](%s; %s)", g.Phase, strings.Join(g.Keys, ","), strings.Join(aggs, ", "))
}

// String implements Operator.
func (g *GroupBy) String() string {
	return fmt.Sprintf("GB(%s)", strings.Join(g.Keys, ","))
}

// Join is an inner equi-join: LeftKeys[i] = RightKeys[i]. Non-equality
// predicates are bound as a Filter above the join.
type Join struct {
	LeftKeys  []string
	RightKeys []string
}

// Kind implements Operator.
func (*Join) Kind() OpKind { return KindJoin }

// Arity implements Operator.
func (*Join) Arity() int { return 2 }

// Sig implements Operator.
func (j *Join) Sig() string {
	pairs := make([]string, len(j.LeftKeys))
	for i := range j.LeftKeys {
		pairs[i] = j.LeftKeys[i] + "=" + j.RightKeys[i]
	}
	return "Join(" + strings.Join(pairs, " AND ") + ")"
}

// String implements Operator.
func (j *Join) String() string { return j.Sig() }

// Spool marks a materialization point: its single input is a shared
// subexpression consumed by multiple parents. Algorithm 1 inserts
// Spools; conventional plans may still end up duplicating the input if
// consumers demand incompatible properties.
type Spool struct{}

// Kind implements Operator.
func (*Spool) Kind() OpKind { return KindSpool }

// Arity implements Operator.
func (*Spool) Arity() int { return 1 }

// Sig implements Operator.
func (*Spool) Sig() string { return "Spool" }

// String implements Operator.
func (*Spool) String() string { return "Spool" }

// Output writes its input to a stored file (OUTPUT ... TO). A
// non-empty Order demands a globally sorted output file, which in
// this engine means a serial, sorted input stream.
type Output struct {
	Path  string
	Order props.Ordering
}

// Kind implements Operator.
func (*Output) Kind() OpKind { return KindOutput }

// Arity implements Operator.
func (*Output) Arity() int { return 1 }

// Sig implements Operator.
func (o *Output) Sig() string {
	if !o.Order.Empty() {
		return "Output(" + o.Path + " ORDER BY " + o.Order.String() + ")"
	}
	return "Output(" + o.Path + ")"
}

// String implements Operator.
func (o *Output) String() string { return o.Sig() }

// Union concatenates two or more inputs with identical schemas
// (UNION ALL; no duplicate elimination).
type Union struct{}

// Kind implements Operator.
func (*Union) Kind() OpKind { return KindUnion }

// Arity implements Operator.
func (*Union) Arity() int { return -1 }

// Sig implements Operator.
func (*Union) Sig() string { return "UnionAll" }

// String implements Operator.
func (*Union) String() string { return "UnionAll" }

// Sequence ties together the terminal operators of a script with
// several outputs; it produces no rows itself.
type Sequence struct{}

// Kind implements Operator.
func (*Sequence) Kind() OpKind { return KindSequence }

// Arity implements Operator.
func (*Sequence) Arity() int { return -1 }

// Sig implements Operator.
func (*Sequence) Sig() string { return "Sequence" }

// String implements Operator.
func (*Sequence) String() string { return "Sequence" }
