package relop

// Scalar-expression CSE: the optimizer shares whole relational
// subtrees, but a projection like
//
//	SELECT (width+1)*(width+1) AS area, (width+1)*(width+1) > 100 AS big
//
// still recomputes (width+1) and its square once per reference when
// expressions are evaluated as independent trees. BuildExprDAG
// collapses structurally identical subexpressions (equal String
// renderings — the package's canonical signature) across a node's
// expression list into a DAG, so a batch evaluator computes each
// distinct subexpression once per batch and serves further references
// from a cached vector. This is the scalar-level analogue of the
// plan-level spool sharing, after DuckDB's cse_optimizer.

// ExprDAGNode is one distinct subexpression of an ExprDAG.
type ExprDAGNode struct {
	// Expr is the subexpression, shared with the input trees.
	Expr Scalar
	// Op, L, R describe a binary node: L and R are child node ids.
	// Leaves (column references and constants) have L = R = -1.
	Op   BinKind
	L, R int
	// Refs counts references to this node from parent nodes and from
	// the root list. Refs > 1 on an interior node marks a common
	// subexpression whose re-evaluations CSE avoids.
	Refs int
	// Unguarded reports that the node is reachable outside every
	// AND/OR right operand. Guarded-only nodes must not be hoisted to
	// eager whole-batch evaluation: row-at-a-time semantics may never
	// evaluate them on short-circuited rows (e.g. a division kept
	// safe by its guard), so an eager evaluator could fail on rows
	// the row engine skips.
	Unguarded bool
}

// ExprDAG is the shared form of a list of expression trees. Nodes are
// in topological order (children strictly before parents); Roots[i]
// is the node evaluating the i-th input expression.
type ExprDAG struct {
	Nodes []ExprDAGNode
	Roots []int
}

// BuildExprDAG dedupes the given expression trees into one DAG.
func BuildExprDAG(exprs []Scalar) *ExprDAG {
	b := &dagBuilder{index: map[string]int{}}
	for _, e := range exprs {
		id := b.visit(e)
		b.d.Nodes[id].Unguarded = true
		b.d.Roots = append(b.d.Roots, id)
	}
	// Propagate guardedness down the DAG. Parents have larger ids
	// than their children, so one reverse pass sees every node after
	// all of its parents: a node is unguarded iff some reference
	// chain from a root avoids every AND/OR right-operand edge.
	for i := len(b.d.Nodes) - 1; i >= 0; i-- {
		n := &b.d.Nodes[i]
		if !n.Unguarded || n.L < 0 {
			continue
		}
		b.d.Nodes[n.L].Unguarded = true
		if n.Op != OpAnd && n.Op != OpOr {
			b.d.Nodes[n.R].Unguarded = true
		}
	}
	return &b.d
}

type dagBuilder struct {
	d     ExprDAG
	index map[string]int
}

// visit interns e (and, on first sight, its children) and returns its
// node id with the reference counted.
func (b *dagBuilder) visit(e Scalar) int {
	sig := e.String()
	id, ok := b.index[sig]
	if !ok {
		n := ExprDAGNode{Expr: e, L: -1, R: -1}
		if be, isBin := e.(*BinExpr); isBin {
			n.Op = be.Op
			n.L = b.visit(be.L)
			n.R = b.visit(be.R)
		}
		id = len(b.d.Nodes)
		b.d.Nodes = append(b.d.Nodes, n)
		b.index[sig] = id
	}
	b.d.Nodes[id].Refs++
	return id
}

// SharedEvals returns how many interior-node evaluations per input
// row the DAG form saves over evaluating each tree independently:
// the sum of (Refs - 1) over shared interior nodes, counting the
// whole subtree collapsed under each shared reference.
func (d *ExprDAG) SharedEvals() int {
	saved := 0
	sizes := make([]int, len(d.Nodes))
	for i, n := range d.Nodes {
		sizes[i] = 1
		if n.L >= 0 {
			sizes[i] += sizes[n.L] + sizes[n.R]
		}
		if n.L >= 0 && n.Refs > 1 {
			saved += (n.Refs - 1) * sizes[i]
		}
	}
	return saved
}
