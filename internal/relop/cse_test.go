package relop

import "testing"

// TestBuildExprDAGDedup: structurally identical subexpressions across
// an expression list intern to one node, with Refs counting every
// reference and children appearing strictly before parents.
func TestBuildExprDAGDedup(t *testing.T) {
	sum := Bin(OpAdd, Col("a"), Col("b"))
	d := BuildExprDAG([]Scalar{
		Bin(OpMul, sum, sum),
		Bin(OpGt, Bin(OpAdd, Col("a"), Col("b")), Lit(IntVal(100))), // distinct tree, same structure
	})
	if len(d.Roots) != 2 {
		t.Fatalf("roots = %d, want 2", len(d.Roots))
	}
	// Distinct nodes: a, b, (a+b), (a+b)*(a+b), 100, (a+b)>100.
	if len(d.Nodes) != 6 {
		t.Fatalf("nodes = %d, want 6: %+v", len(d.Nodes), d.Nodes)
	}
	byStr := map[string]ExprDAGNode{}
	for i, n := range d.Nodes {
		if n.L >= i || n.R >= i {
			t.Errorf("node %d references child after itself (L=%d R=%d)", i, n.L, n.R)
		}
		byStr[n.Expr.String()] = n
	}
	if n := byStr["(a + b)"]; n.Refs != 3 {
		t.Errorf("(a + b) Refs = %d, want 3 (two in the product, one under the comparison)", n.Refs)
	}
	if n := byStr["a"]; n.Refs != 1 {
		t.Errorf("leaf a Refs = %d, want 1 (referenced only by the shared (a + b))", n.Refs)
	}
	if n := byStr["((a + b) * (a + b))"]; n.Refs != 1 {
		t.Errorf("product Refs = %d, want 1", n.Refs)
	}
}

// TestBuildExprDAGUnguarded: a node is unguarded iff some reference
// chain from a root avoids every AND/OR right-operand edge. A
// division reachable only as an AND's right operand must stay
// guarded even when another guarded context also references it.
func TestBuildExprDAGUnguarded(t *testing.T) {
	div := Bin(OpDiv, Col("a"), Col("b"))
	guard := Bin(OpNe, Col("b"), Lit(IntVal(0)))
	d := BuildExprDAG([]Scalar{
		Bin(OpAnd, guard, div),
		Bin(OpOr, guard, div),
	})
	unguarded := map[string]bool{}
	for _, n := range d.Nodes {
		unguarded[n.Expr.String()] = n.Unguarded
	}
	if unguarded["(a / b)"] {
		t.Error("division referenced only as AND/OR right operands marked unguarded")
	}
	if !unguarded["(b != 0)"] || !unguarded["b"] {
		t.Error("guard expression and its columns must be unguarded (left operands always evaluate)")
	}
	// The division's own operand a is reachable only through the
	// guarded division.
	if unguarded["a"] {
		t.Error("column reachable only under a guarded node marked unguarded")
	}

	// One unguarded reference anywhere lifts the guard.
	d2 := BuildExprDAG([]Scalar{Bin(OpAnd, guard, div), div})
	for _, n := range d2.Nodes {
		if n.Expr.String() == "(a / b)" && !n.Unguarded {
			t.Error("division also referenced as a root must be unguarded")
		}
	}
}

// TestSharedEvals counts the per-row interior evaluations CSE saves,
// weighting each saved reference by its whole collapsed subtree.
func TestSharedEvals(t *testing.T) {
	sum := Bin(OpAdd, Col("a"), Col("b"))
	if got := BuildExprDAG([]Scalar{sum}).SharedEvals(); got != 0 {
		t.Errorf("single tree saves %d, want 0", got)
	}
	// (a+b)*(a+b): one extra reference to a 3-node subtree.
	if got := BuildExprDAG([]Scalar{Bin(OpMul, sum, sum)}).SharedEvals(); got != 3 {
		t.Errorf("squared sum saves %d, want 3", got)
	}
	// Shared across roots counts the same way.
	if got := BuildExprDAG([]Scalar{sum, sum}).SharedEvals(); got != 3 {
		t.Errorf("repeated root saves %d, want 3", got)
	}
	// Leaf sharing saves nothing.
	if got := BuildExprDAG([]Scalar{Bin(OpAdd, Col("a"), Col("a"))}).SharedEvals(); got != 0 {
		t.Errorf("leaf sharing saves %d, want 0", got)
	}
}
