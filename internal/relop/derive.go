package relop

import "fmt"

// DeriveSchema computes the output schema of a logical operator given
// its children's schemas. Physical operators inherit the schema of
// their memo group, so only logical kinds are handled.
func DeriveSchema(op Operator, children []Schema) (Schema, error) {
	if a := op.Arity(); a >= 0 && len(children) != a {
		return nil, fmt.Errorf("%s: got %d children, want %d", op.Kind(), len(children), a)
	}
	switch o := op.(type) {
	case *Extract:
		return o.Columns, nil
	case *Project:
		in := children[0]
		out := make(Schema, len(o.Items))
		for i, it := range o.Items {
			for _, c := range it.Expr.Columns().Cols() {
				if !in.Has(c) {
					return nil, fmt.Errorf("project: unknown column %q in %s", c, in)
				}
			}
			out[i] = Column{Name: it.As, Type: it.Expr.ResultType(in)}
		}
		return out, nil
	case *Filter:
		in := children[0]
		for _, c := range o.Pred.Columns().Cols() {
			if !in.Has(c) {
				return nil, fmt.Errorf("filter: unknown column %q in %s", c, in)
			}
		}
		return in, nil
	case *GroupBy:
		in := children[0]
		out := make(Schema, 0, len(o.Keys)+len(o.Aggs))
		for _, k := range o.Keys {
			i := in.Index(k)
			if i < 0 {
				return nil, fmt.Errorf("group by: unknown key %q in %s", k, in)
			}
			out = append(out, in[i])
		}
		for _, a := range o.Aggs {
			if a.Func != AggCount && !in.Has(a.Arg) {
				return nil, fmt.Errorf("group by: unknown aggregate arg %q in %s", a.Arg, in)
			}
			out = append(out, Column{Name: a.As, Type: a.ResultType(in)})
		}
		return out, nil
	case *Join:
		l, r := children[0], children[1]
		if len(o.LeftKeys) != len(o.RightKeys) {
			return nil, fmt.Errorf("join: key arity mismatch")
		}
		for _, k := range o.LeftKeys {
			if !l.Has(k) {
				return nil, fmt.Errorf("join: unknown left key %q in %s", k, l)
			}
		}
		for _, k := range o.RightKeys {
			if !r.Has(k) {
				return nil, fmt.Errorf("join: unknown right key %q in %s", k, r)
			}
		}
		out := l.Concat(r)
		if err := checkDuplicateNames(out); err != nil {
			return nil, fmt.Errorf("join: %v (project/rename inputs first)", err)
		}
		return out, nil
	case *Union:
		if len(children) < 2 {
			return nil, fmt.Errorf("union: needs at least two inputs")
		}
		first := children[0]
		for i, c := range children[1:] {
			if len(c) != len(first) {
				return nil, fmt.Errorf("union: input %d has %d columns, want %d", i+1, len(c), len(first))
			}
			for j := range c {
				if c[j].Name != first[j].Name {
					return nil, fmt.Errorf("union: input %d column %d is %q, want %q", i+1, j, c[j].Name, first[j].Name)
				}
			}
		}
		return first, nil
	case *Spool:
		return children[0], nil
	case *Output:
		return children[0], nil
	case *Sequence:
		// Sequence produces no rows.
		return Schema{}, nil
	default:
		return nil, fmt.Errorf("DeriveSchema: not a logical operator: %T", op)
	}
}

func checkDuplicateNames(s Schema) error {
	seen := make(map[string]bool, len(s))
	for _, c := range s {
		if seen[c.Name] {
			return fmt.Errorf("duplicate output column %q", c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}
