package relop

import "fmt"

// AggFunc enumerates the aggregate functions of the SCOPE subset.
type AggFunc int

const (
	// AggSum sums a numeric column.
	AggSum AggFunc = iota
	// AggCount counts rows (COUNT() or COUNT(col) without null
	// semantics, as the subset has no NULLs).
	AggCount
	// AggMin takes the minimum.
	AggMin
	// AggMax takes the maximum.
	AggMax
	// AggAvg averages a numeric column. Avg is not decomposable into
	// a single partial of the same function, so the local/global
	// aggregation split rewrites it as Sum/Count only when the rule
	// set allows; otherwise it runs single-phase.
	AggAvg
)

// String renders the function name.
func (f AggFunc) String() string {
	switch f {
	case AggSum:
		return "Sum"
	case AggCount:
		return "Count"
	case AggMin:
		return "Min"
	case AggMax:
		return "Max"
	case AggAvg:
		return "Avg"
	default:
		return fmt.Sprintf("Agg(%d)", int(f))
	}
}

// Decomposable reports whether partial aggregates of f can be merged
// by some merge function: local Sum merged by Sum, local Count merged
// by Sum, local Min/Max merged by Min/Max.
func (f AggFunc) Decomposable() bool { return f != AggAvg }

// MergeFunc returns the function that merges partial results of f.
func (f AggFunc) MergeFunc() AggFunc {
	switch f {
	case AggCount:
		return AggSum
	default:
		return f
	}
}

// Aggregate is one aggregate output of a group-by: Func applied to
// the column Arg (empty for Count()), named As in the output schema.
type Aggregate struct {
	Func AggFunc
	Arg  string
	As   string
}

// String renders "Sum(D) AS S".
func (a Aggregate) String() string {
	return fmt.Sprintf("%s(%s) AS %s", a.Func, a.Arg, a.As)
}

// ResultType reports the aggregate's output type given the input
// schema.
func (a Aggregate) ResultType(s Schema) Type {
	switch a.Func {
	case AggCount:
		return TInt
	case AggAvg:
		return TFloat
	default:
		if i := s.Index(a.Arg); i >= 0 {
			return s[i].Type
		}
		return TInt
	}
}

// MergeAggregate returns the aggregate that merges partial results of
// a: it applies the merge function to the partial output column.
func (a Aggregate) MergeAggregate() Aggregate {
	return Aggregate{Func: a.Func.MergeFunc(), Arg: a.As, As: a.As}
}

// AggState accumulates one aggregate over a run of rows; the
// execution simulator drives it.
type AggState struct {
	fn    AggFunc
	n     int64
	sum   float64
	isInt bool
	min   Value
	max   Value
	any   bool
}

// NewAggState returns an empty accumulator for f.
func NewAggState(f AggFunc) *AggState {
	return &AggState{fn: f, isInt: true}
}

// Add folds one input value into the state. For AggCount the value is
// ignored.
func (s *AggState) Add(v Value) {
	s.n++
	if !s.any {
		s.min, s.max = v, v
		s.any = true
	} else {
		if v.Compare(s.min) < 0 {
			s.min = v
		}
		if v.Compare(s.max) > 0 {
			s.max = v
		}
	}
	if v.Kind != TInt {
		s.isInt = false
	}
	s.sum += v.AsFloat()
}

// AddInt folds one integer exactly like Add(IntVal(x)) without the
// Value boxing: when every value a state sees is an int, min and max
// are always TInt, so their Compare is a plain int compare.
func (s *AggState) AddInt(x int64) {
	s.n++
	if !s.any {
		v := IntVal(x)
		s.min, s.max = v, v
		s.any = true
	} else {
		if x < s.min.I {
			s.min = IntVal(x)
		}
		if x > s.max.I {
			s.max = IntVal(x)
		}
	}
	s.sum += float64(x)
}

// Result returns the aggregate value accumulated so far.
func (s *AggState) Result() Value {
	switch s.fn {
	case AggCount:
		return IntVal(s.n)
	case AggSum:
		if s.isInt {
			return IntVal(int64(s.sum))
		}
		return FloatVal(s.sum)
	case AggMin:
		return s.min
	case AggMax:
		return s.max
	case AggAvg:
		if s.n == 0 {
			return FloatVal(0)
		}
		return FloatVal(s.sum / float64(s.n))
	default:
		return Value{}
	}
}
