package relop

import (
	"strings"

	"repro/internal/props"
)

// Column is one named, typed output column of an operator.
type Column struct {
	Name string
	Type Type
}

// Schema is the ordered list of output columns of an operator.
type Schema []Column

// Index returns the position of the named column, or -1. Names are
// matched exactly; the binder resolves qualified references
// (e.g. R1.B) to unqualified schema names before operators are built.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Has reports whether the schema contains the named column.
func (s Schema) Has(name string) bool { return s.Index(name) >= 0 }

// Names returns the column names in schema order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// ColSet returns the schema's columns as a set.
func (s Schema) ColSet() props.ColSet {
	return props.NewColSet(s.Names()...)
}

// Concat returns the concatenation of two schemas (join output).
func (s Schema) Concat(t Schema) Schema {
	out := make(Schema, 0, len(s)+len(t))
	out = append(out, s...)
	out = append(out, t...)
	return out
}

// Indexes maps the given column names to their positions, returning
// false if any is missing.
func (s Schema) Indexes(names []string) ([]int, bool) {
	out := make([]int, len(names))
	for i, n := range names {
		idx := s.Index(n)
		if idx < 0 {
			return nil, false
		}
		out[i] = idx
	}
	return out, true
}

// String renders the schema as "(A int, B string)".
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.Name + " " + c.Type.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
