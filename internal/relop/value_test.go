package relop

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntVal(1), IntVal(2), -1},
		{IntVal(2), IntVal(2), 0},
		{IntVal(3), IntVal(2), 1},
		{FloatVal(1.5), IntVal(2), -1},
		{IntVal(2), FloatVal(2.0), 0},
		{StringVal("a"), StringVal("b"), -1},
		{StringVal("b"), StringVal("b"), 0},
		{IntVal(5), StringVal("5"), -1}, // numbers before strings
		{StringVal("5"), IntVal(5), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueHashConsistency(t *testing.T) {
	if IntVal(7).Hash() != IntVal(7).Hash() {
		t.Error("int hash not deterministic")
	}
	if FloatVal(2).Hash() != FloatVal(2.0).Hash() {
		t.Error("equal floats must hash equal")
	}
	if StringVal("x").Hash() == StringVal("y").Hash() {
		t.Error("distinct strings should (almost surely) hash distinct")
	}
}

func TestValueString(t *testing.T) {
	if got := IntVal(-3).String(); got != "-3" {
		t.Errorf("IntVal.String = %q", got)
	}
	if got := FloatVal(2.5).String(); got != "2.5" {
		t.Errorf("FloatVal.String = %q", got)
	}
	if got := StringVal(`a"b`).String(); got != `"a\"b"` {
		t.Errorf("StringVal.String = %q", got)
	}
}

func TestValueAdd(t *testing.T) {
	if got := IntVal(2).Add(IntVal(3)); got != IntVal(5) {
		t.Errorf("int add = %v", got)
	}
	if got := IntVal(2).Add(FloatVal(0.5)); got != FloatVal(2.5) {
		t.Errorf("mixed add = %v", got)
	}
	if got := StringVal("a").Add(StringVal("b")); got != StringVal("ab") {
		t.Errorf("string add = %v", got)
	}
}

func TestRowHashCols(t *testing.T) {
	r1 := Row{IntVal(1), IntVal(2), IntVal(3)}
	r2 := Row{IntVal(9), IntVal(2), IntVal(3)}
	if r1.HashCols([]int{1, 2}) != r2.HashCols([]int{1, 2}) {
		t.Error("rows equal on hashed cols must hash equal")
	}
	if r1.HashCols([]int{0}) == r2.HashCols([]int{0}) {
		t.Error("rows differing on hashed col should hash differently")
	}
	// Positional: (1,2) on cols [0,1] differs from (2,1).
	a := Row{IntVal(1), IntVal(2)}
	b := Row{IntVal(2), IntVal(1)}
	if a.HashCols([]int{0, 1}) == b.HashCols([]int{0, 1}) {
		t.Error("hash must be positional")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{IntVal(1)}
	c := r.Clone()
	c[0] = IntVal(2)
	if r[0] != IntVal(1) {
		t.Error("Clone shares backing array")
	}
}

func randValue(r *rand.Rand) Value {
	switch r.Intn(3) {
	case 0:
		return IntVal(r.Int63n(100) - 50)
	case 1:
		return FloatVal(float64(r.Int63n(100)) / 4)
	default:
		return StringVal(string(rune('a' + r.Intn(26))))
	}
}

// Compare must be a total order: antisymmetric and transitive; Hash
// must agree with Equal.
func TestValueOrderProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(randValue(r))
			}
		},
	}
	if err := quick.Check(func(a, b Value) bool {
		return a.Compare(b) == -b.Compare(a)
	}, cfg); err != nil {
		t.Errorf("antisymmetry: %v", err)
	}
	if err := quick.Check(func(a, b, c Value) bool {
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 {
			return a.Compare(c) <= 0
		}
		return true
	}, cfg); err != nil {
		t.Errorf("transitivity: %v", err)
	}
	if err := quick.Check(func(a, b Value) bool {
		if a.Equal(b) && a.Kind == b.Kind {
			return a.Hash() == b.Hash()
		}
		return true
	}, cfg); err != nil {
		t.Errorf("hash/equal agreement: %v", err)
	}
}
