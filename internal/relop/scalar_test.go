package relop

import "testing"

var testSchema = Schema{
	{Name: "A", Type: TInt},
	{Name: "B", Type: TInt},
	{Name: "C", Type: TString},
	{Name: "D", Type: TFloat},
}

func TestSchemaBasics(t *testing.T) {
	if testSchema.Index("B") != 1 {
		t.Errorf("Index(B) = %d", testSchema.Index("B"))
	}
	if testSchema.Index("Z") != -1 {
		t.Error("Index of missing column should be -1")
	}
	if !testSchema.Has("D") || testSchema.Has("Z") {
		t.Error("Has wrong")
	}
	if got := testSchema.ColSet().Key(); got != "A,B,C,D" {
		t.Errorf("ColSet = %s", got)
	}
	idx, ok := testSchema.Indexes([]string{"C", "A"})
	if !ok || idx[0] != 2 || idx[1] != 0 {
		t.Errorf("Indexes = %v, %v", idx, ok)
	}
	if _, ok := testSchema.Indexes([]string{"A", "Z"}); ok {
		t.Error("Indexes with missing column should fail")
	}
	cat := Schema{{Name: "X", Type: TInt}}.Concat(Schema{{Name: "Y", Type: TInt}})
	if len(cat) != 2 || cat[1].Name != "Y" {
		t.Errorf("Concat = %v", cat)
	}
	if testSchema.String() != "(A int, B int, C string, D float)" {
		t.Errorf("String = %s", testSchema)
	}
}

func TestEvalScalarColumnsAndConsts(t *testing.T) {
	row := Row{IntVal(1), IntVal(2), StringVal("x"), FloatVal(1.5)}
	v, err := EvalScalar(Col("B"), row, testSchema)
	if err != nil || v != IntVal(2) {
		t.Fatalf("col eval = %v, %v", v, err)
	}
	if _, err := EvalScalar(Col("Z"), row, testSchema); err == nil {
		t.Error("unknown column should error")
	}
	v, err = EvalScalar(Lit(IntVal(7)), row, testSchema)
	if err != nil || v != IntVal(7) {
		t.Fatalf("const eval = %v, %v", v, err)
	}
}

func TestEvalScalarArithmetic(t *testing.T) {
	row := Row{IntVal(6), IntVal(2), StringVal("x"), FloatVal(1.5)}
	cases := []struct {
		expr Scalar
		want Value
	}{
		{Bin(OpAdd, Col("A"), Col("B")), IntVal(8)},
		{Bin(OpSub, Col("A"), Col("B")), IntVal(4)},
		{Bin(OpMul, Col("A"), Col("B")), IntVal(12)},
		{Bin(OpDiv, Col("A"), Col("B")), FloatVal(3)},
		{Bin(OpAdd, Col("A"), Col("D")), FloatVal(7.5)},
		{Bin(OpEq, Col("A"), Lit(IntVal(6))), IntVal(1)},
		{Bin(OpNe, Col("A"), Lit(IntVal(6))), IntVal(0)},
		{Bin(OpLt, Col("B"), Col("A")), IntVal(1)},
		{Bin(OpGe, Col("B"), Col("A")), IntVal(0)},
		{Bin(OpAnd, Bin(OpGt, Col("A"), Lit(IntVal(0))), Bin(OpGt, Col("B"), Lit(IntVal(0)))), IntVal(1)},
		{Bin(OpOr, Bin(OpLt, Col("A"), Lit(IntVal(0))), Bin(OpGt, Col("B"), Lit(IntVal(0)))), IntVal(1)},
	}
	for _, c := range cases {
		got, err := EvalScalar(c.expr, row, testSchema)
		if err != nil {
			t.Errorf("%s: %v", c.expr, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
	if _, err := EvalScalar(Bin(OpDiv, Col("A"), Lit(IntVal(0))), row, testSchema); err == nil {
		t.Error("division by zero should error")
	}
}

func TestScalarSignatureEquality(t *testing.T) {
	a := Bin(OpAdd, Col("A"), Lit(IntVal(1)))
	b := Bin(OpAdd, Col("A"), Lit(IntVal(1)))
	if a.String() != b.String() {
		t.Error("identical scalars must have identical signatures")
	}
	c := Bin(OpAdd, Lit(IntVal(1)), Col("A"))
	if a.String() == c.String() {
		t.Error("operand order must affect the signature")
	}
}

func TestScalarColumnsAndTypes(t *testing.T) {
	e := Bin(OpMul, Bin(OpAdd, Col("A"), Col("B")), Col("D"))
	if got := e.Columns().Key(); got != "A,B,D" {
		t.Errorf("Columns = %s", got)
	}
	if e.ResultType(testSchema) != TFloat {
		t.Error("mixed arithmetic should be float")
	}
	if Bin(OpAdd, Col("A"), Col("B")).ResultType(testSchema) != TInt {
		t.Error("int arithmetic should be int")
	}
	if Bin(OpEq, Col("A"), Col("B")).ResultType(testSchema) != TInt {
		t.Error("comparisons should be int (boolean)")
	}
	if Bin(OpAdd, Col("C"), Col("C")).ResultType(testSchema) != TString {
		t.Error("string concat should be string")
	}
}

func TestNamedExprString(t *testing.T) {
	if got := (NamedExpr{Expr: Col("A"), As: "A"}).String(); got != "A" {
		t.Errorf("passthrough = %q", got)
	}
	if got := (NamedExpr{Expr: Col("A"), As: "X"}).String(); got != "A AS X" {
		t.Errorf("rename = %q", got)
	}
}

func TestAggStateAllFuncs(t *testing.T) {
	vals := []Value{IntVal(3), IntVal(1), IntVal(4), IntVal(1)}
	want := map[AggFunc]Value{
		AggSum:   IntVal(9),
		AggCount: IntVal(4),
		AggMin:   IntVal(1),
		AggMax:   IntVal(4),
		AggAvg:   FloatVal(2.25),
	}
	for fn, w := range want {
		st := NewAggState(fn)
		for _, v := range vals {
			st.Add(v)
		}
		if got := st.Result(); !got.Equal(w) {
			t.Errorf("%v = %v, want %v", fn, got, w)
		}
	}
}

func TestAggDecomposition(t *testing.T) {
	for _, fn := range []AggFunc{AggSum, AggCount, AggMin, AggMax} {
		if !fn.Decomposable() {
			t.Errorf("%v should be decomposable", fn)
		}
	}
	if AggAvg.Decomposable() {
		t.Error("Avg must not be decomposable")
	}
	if AggCount.MergeFunc() != AggSum {
		t.Error("Count merges by Sum")
	}
	if AggMin.MergeFunc() != AggMin {
		t.Error("Min merges by Min")
	}
	a := Aggregate{Func: AggCount, Arg: "", As: "N"}
	m := a.MergeAggregate()
	if m.Func != AggSum || m.Arg != "N" || m.As != "N" {
		t.Errorf("MergeAggregate = %+v", m)
	}
}

// Partial-merge equivalence: splitting any value stream into chunks,
// aggregating each, and merging partials must equal direct
// aggregation, for every decomposable function.
func TestAggPartialMergeEquivalence(t *testing.T) {
	vals := []Value{IntVal(5), IntVal(-2), IntVal(8), IntVal(0), IntVal(8), IntVal(3)}
	for _, fn := range []AggFunc{AggSum, AggCount, AggMin, AggMax} {
		direct := NewAggState(fn)
		for _, v := range vals {
			direct.Add(v)
		}
		for split := 1; split < len(vals); split++ {
			p1, p2 := NewAggState(fn), NewAggState(fn)
			for _, v := range vals[:split] {
				p1.Add(v)
			}
			for _, v := range vals[split:] {
				p2.Add(v)
			}
			merged := NewAggState(fn.MergeFunc())
			merged.Add(p1.Result())
			merged.Add(p2.Result())
			if !merged.Result().Equal(direct.Result()) {
				t.Errorf("%v split at %d: merged %v != direct %v",
					fn, split, merged.Result(), direct.Result())
			}
		}
	}
}

func TestAggregateResultType(t *testing.T) {
	if (Aggregate{Func: AggCount, As: "N"}).ResultType(testSchema) != TInt {
		t.Error("Count is int")
	}
	if (Aggregate{Func: AggSum, Arg: "D", As: "S"}).ResultType(testSchema) != TFloat {
		t.Error("Sum(D) is float")
	}
	if (Aggregate{Func: AggAvg, Arg: "A", As: "V"}).ResultType(testSchema) != TFloat {
		t.Error("Avg is float")
	}
}
