package relop

import (
	"fmt"

	"repro/internal/props"
)

// PhysCacheScan reads a materialized result that a previous script in
// the same session produced for an equivalent subexpression. It is a
// physical leaf: instead of recomputing the subexpression the cluster
// loads the artifact from the shared FileStore and redistributes it
// into the recorded layout.
//
// Part and Order are the physical properties the artifact was
// materialized under (Sec. V property history carried across queries):
// a hit that recorded hash{A,B} partitioning satisfies a consumer
// requiring colocation on {A,B} without a repartition.
type PhysCacheScan struct {
	// Path is the FileStore path of the cached artifact.
	Path string
	// Columns is the artifact's schema.
	Columns Schema
	// Part is the partitioning recorded at materialization time.
	Part props.Partitioning
	// Order is the per-machine sort order recorded at
	// materialization time.
	Order props.Ordering
	// FP is the Definition-1 fingerprint of the subexpression whose
	// result the artifact holds.
	FP uint64
}

// Kind implements Operator.
func (*PhysCacheScan) Kind() OpKind { return KindCacheScan }

// Arity implements Operator.
func (*PhysCacheScan) Arity() int { return 0 }

// Sig implements Operator.
func (c *PhysCacheScan) Sig() string {
	return fmt.Sprintf("CacheScan(%s fp=%x part=%s order=%s)", c.Path, c.FP, c.Part, c.Order.Key())
}

// String implements Operator.
func (c *PhysCacheScan) String() string {
	return fmt.Sprintf("CacheScan (%s)", c.Path)
}
