package relop

import (
	"fmt"
	"strings"

	"repro/internal/props"
)

// AggPhase distinguishes the roles an aggregation operator plays in a
// distributed plan.
type AggPhase int

const (
	// AggSingle computes complete aggregates in one pass; its input
	// must already colocate each group on one machine.
	AggSingle AggPhase = iota
	// AggLocal computes partial aggregates per machine with no
	// distribution requirement; a Global operator above merges them.
	AggLocal
	// AggGlobal merges partial aggregates produced by an AggLocal
	// below; input must colocate each group.
	AggGlobal
)

// String renders the phase as it appears in the paper's plans.
func (p AggPhase) String() string {
	switch p {
	case AggLocal:
		return "Local"
	case AggGlobal:
		return "Global"
	default:
		return "Single"
	}
}

// StreamAgg is sort-based aggregation: input rows must arrive
// clustered on the grouping keys (some ordering whose prefix covers
// them); output preserves that order.
type StreamAgg struct {
	Keys  []string
	Aggs  []Aggregate
	Phase AggPhase
}

// Kind implements Operator.
func (*StreamAgg) Kind() OpKind { return KindStreamAgg }

// Arity implements Operator.
func (*StreamAgg) Arity() int { return 1 }

// Sig implements Operator.
func (a *StreamAgg) Sig() string {
	return fmt.Sprintf("StreamAgg[%s](%s; %s)", a.Phase, strings.Join(a.Keys, ","), aggList(a.Aggs))
}

// String implements Operator.
func (a *StreamAgg) String() string {
	return fmt.Sprintf("StreamAgg (%s) (%s)", a.Phase, strings.Join(a.Keys, ", "))
}

// HashAgg is hash-based aggregation: no input order needed, no output
// order produced.
type HashAgg struct {
	Keys  []string
	Aggs  []Aggregate
	Phase AggPhase
}

// Kind implements Operator.
func (*HashAgg) Kind() OpKind { return KindHashAgg }

// Arity implements Operator.
func (*HashAgg) Arity() int { return 1 }

// Sig implements Operator.
func (a *HashAgg) Sig() string {
	return fmt.Sprintf("HashAgg[%s](%s; %s)", a.Phase, strings.Join(a.Keys, ","), aggList(a.Aggs))
}

// String implements Operator.
func (a *HashAgg) String() string {
	return fmt.Sprintf("HashAgg (%s) (%s)", a.Phase, strings.Join(a.Keys, ", "))
}

func aggList(aggs []Aggregate) string {
	parts := make([]string, len(aggs))
	for i, a := range aggs {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

// Sort is the per-machine sort enforcer.
type Sort struct {
	Order props.Ordering
}

// Kind implements Operator.
func (*Sort) Kind() OpKind { return KindSort }

// Arity implements Operator.
func (*Sort) Arity() int { return 1 }

// Sig implements Operator.
func (s *Sort) Sig() string { return "Sort" + s.Order.String() }

// String implements Operator.
func (s *Sort) String() string { return "Sort " + s.Order.String() }

// Repartition is the exchange enforcer: redistribute rows so the
// output satisfies To. When MergeOrder is non-empty, each receiving
// machine merge-sorts the streams arriving from senders (which must
// each be sorted on MergeOrder), so the delivered order is preserved —
// the "Repartition + SortMerge" pair of the paper's Fig. 8.
type Repartition struct {
	To         props.Partitioning
	MergeOrder props.Ordering
}

// Kind implements Operator.
func (*Repartition) Kind() OpKind { return KindRepartition }

// Arity implements Operator.
func (*Repartition) Arity() int { return 1 }

// Sig implements Operator.
func (r *Repartition) Sig() string {
	s := "Repartition(" + r.To.String() + ")"
	if !r.MergeOrder.Empty() {
		s += "+SortMerge" + r.MergeOrder.String()
	}
	return s
}

// String implements Operator.
func (r *Repartition) String() string {
	base := "Repartition " + r.To.Cols.String()
	switch r.To.Kind {
	case props.PartSerial:
		base = "Gather"
	case props.PartBroadcast:
		base = "Broadcast"
	}
	if !r.MergeOrder.Empty() {
		return base + " / SortMerge " + r.MergeOrder.String()
	}
	return base
}

// SortMergeJoin joins two inputs sorted and co-partitioned on the join
// keys.
type SortMergeJoin struct {
	LeftKeys  []string
	RightKeys []string
}

// Kind implements Operator.
func (*SortMergeJoin) Kind() OpKind { return KindSortMergeJoin }

// Arity implements Operator.
func (*SortMergeJoin) Arity() int { return 2 }

// Sig implements Operator.
func (j *SortMergeJoin) Sig() string {
	return "MergeJoin(" + joinPairs(j.LeftKeys, j.RightKeys) + ")"
}

// String implements Operator.
func (j *SortMergeJoin) String() string { return j.Sig() }

// HashJoin joins two co-partitioned inputs by hashing the smaller
// side.
type HashJoin struct {
	LeftKeys  []string
	RightKeys []string
}

// Kind implements Operator.
func (*HashJoin) Kind() OpKind { return KindHashJoin }

// Arity implements Operator.
func (*HashJoin) Arity() int { return 2 }

// Sig implements Operator.
func (j *HashJoin) Sig() string {
	return "HashJoin(" + joinPairs(j.LeftKeys, j.RightKeys) + ")"
}

// String implements Operator.
func (j *HashJoin) String() string { return j.Sig() }

func joinPairs(l, r []string) string {
	pairs := make([]string, len(l))
	for i := range l {
		pairs[i] = l[i] + "=" + r[i]
	}
	return strings.Join(pairs, " AND ")
}

// PhysExtract is the parallel file scan.
type PhysExtract struct {
	Path      string
	Columns   Schema
	Extractor string
	FileID    int
}

// Kind implements Operator.
func (*PhysExtract) Kind() OpKind { return KindPhysExtract }

// Arity implements Operator.
func (*PhysExtract) Arity() int { return 0 }

// Sig implements Operator.
func (e *PhysExtract) Sig() string {
	return fmt.Sprintf("PhysExtract(%s USING %s)", e.Path, e.Extractor)
}

// String implements Operator.
func (e *PhysExtract) String() string { return fmt.Sprintf("Extract (%s)", e.Path) }

// PhysProject is the physical projection/compute operator.
type PhysProject struct {
	Items []NamedExpr
}

// Kind implements Operator.
func (*PhysProject) Kind() OpKind { return KindPhysProject }

// Arity implements Operator.
func (*PhysProject) Arity() int { return 1 }

// Sig implements Operator.
func (p *PhysProject) Sig() string { return "Compute(" + namedList(p.Items) + ")" }

// String implements Operator.
func (p *PhysProject) String() string { return p.Sig() }

// PhysFilter is the physical selection operator.
type PhysFilter struct {
	Pred        Scalar
	Selectivity float64
}

// Kind implements Operator.
func (*PhysFilter) Kind() OpKind { return KindPhysFilter }

// Arity implements Operator.
func (*PhysFilter) Arity() int { return 1 }

// Sig implements Operator.
func (f *PhysFilter) Sig() string { return "Select(" + f.Pred.String() + ")" }

// String implements Operator.
func (f *PhysFilter) String() string { return f.Sig() }

// PhysSpool materializes its input once; each consumer reads the
// materialized partitions. Delivered properties pass through: the
// spooled data stays partitioned and sorted exactly as produced.
type PhysSpool struct{}

// Kind implements Operator.
func (*PhysSpool) Kind() OpKind { return KindPhysSpool }

// Arity implements Operator.
func (*PhysSpool) Arity() int { return 1 }

// Sig implements Operator.
func (*PhysSpool) Sig() string { return "Spool" }

// String implements Operator.
func (*PhysSpool) String() string { return "Spool" }

// PhysOutput writes its input to a distributed file in parallel; with
// a non-empty Order it writes one globally sorted file from a serial,
// sorted input.
type PhysOutput struct {
	Path  string
	Order props.Ordering
}

// Kind implements Operator.
func (*PhysOutput) Kind() OpKind { return KindPhysOutput }

// Arity implements Operator.
func (*PhysOutput) Arity() int { return 1 }

// Sig implements Operator.
func (o *PhysOutput) Sig() string {
	if !o.Order.Empty() {
		return "Output(" + o.Path + " ORDER BY " + o.Order.String() + ")"
	}
	return "Output(" + o.Path + ")"
}

// String implements Operator.
func (o *PhysOutput) String() string {
	if !o.Order.Empty() {
		return fmt.Sprintf("Output (Sorted %s) [%s]", o.Order, o.Path)
	}
	return fmt.Sprintf("Output (Parallel) [%s]", o.Path)
}

// PhysUnion concatenates its inputs partition-wise.
type PhysUnion struct{}

// Kind implements Operator.
func (*PhysUnion) Kind() OpKind { return KindPhysUnion }

// Arity implements Operator.
func (*PhysUnion) Arity() int { return -1 }

// Sig implements Operator.
func (*PhysUnion) Sig() string { return "UnionAll" }

// String implements Operator.
func (*PhysUnion) String() string { return "UnionAll" }

// PhysSequence is the physical counterpart of Sequence.
type PhysSequence struct{}

// Kind implements Operator.
func (*PhysSequence) Kind() OpKind { return KindPhysSequence }

// Arity implements Operator.
func (*PhysSequence) Arity() int { return -1 }

// Sig implements Operator.
func (*PhysSequence) Sig() string { return "Sequence" }

// String implements Operator.
func (*PhysSequence) String() string { return "Sequence" }
