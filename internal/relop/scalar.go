package relop

import (
	"fmt"
	"strings"

	"repro/internal/props"
)

// Scalar is a row-level expression: a column reference, a literal, or
// an operator tree over them. Scalars appear in projections, filter
// predicates, and aggregate arguments.
type Scalar interface {
	// String renders the expression in SQL-ish syntax; it doubles as
	// the canonical signature used for structural comparison, so two
	// scalars are equal iff their String renderings are equal.
	String() string
	// Columns returns the set of column names the expression reads.
	Columns() props.ColSet
	// ResultType reports the expression's type given an input schema.
	ResultType(s Schema) Type
}

// ColRef references a column of the input schema by name.
type ColRef struct {
	Name string
}

// Col is a convenience constructor for ColRef.
func Col(name string) *ColRef { return &ColRef{Name: name} }

// String implements Scalar.
func (c *ColRef) String() string { return c.Name }

// Columns implements Scalar.
func (c *ColRef) Columns() props.ColSet { return props.NewColSet(c.Name) }

// ResultType implements Scalar.
func (c *ColRef) ResultType(s Schema) Type {
	if i := s.Index(c.Name); i >= 0 {
		return s[i].Type
	}
	return TInt
}

// ConstExpr is a literal value.
type ConstExpr struct {
	Val Value
}

// Lit is a convenience constructor for ConstExpr.
func Lit(v Value) *ConstExpr { return &ConstExpr{Val: v} }

// String implements Scalar.
func (c *ConstExpr) String() string { return c.Val.String() }

// Columns implements Scalar.
func (c *ConstExpr) Columns() props.ColSet { return props.NewColSet() }

// ResultType implements Scalar.
func (c *ConstExpr) ResultType(Schema) Type { return c.Val.Kind }

// BinKind enumerates binary scalar operators.
type BinKind int

// Binary operator kinds, in precedence-free enumeration order.
const (
	OpAdd BinKind = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binNames = map[BinKind]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR",
}

// String renders the operator token.
func (k BinKind) String() string { return binNames[k] }

// IsComparison reports whether the operator yields a boolean.
func (k BinKind) IsComparison() bool { return k >= OpEq && k <= OpGe }

// BinExpr is a binary operation over two scalars.
type BinExpr struct {
	Op   BinKind
	L, R Scalar
}

// Bin is a convenience constructor for BinExpr.
func Bin(op BinKind, l, r Scalar) *BinExpr { return &BinExpr{Op: op, L: l, R: r} }

// String implements Scalar.
func (b *BinExpr) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

// Columns implements Scalar.
func (b *BinExpr) Columns() props.ColSet {
	return b.L.Columns().Union(b.R.Columns())
}

// ResultType implements Scalar.
func (b *BinExpr) ResultType(s Schema) Type {
	if b.Op.IsComparison() || b.Op == OpAnd || b.Op == OpOr {
		return TInt // booleans are 0/1 ints
	}
	lt, rt := b.L.ResultType(s), b.R.ResultType(s)
	if lt == TFloat || rt == TFloat || b.Op == OpDiv {
		return TFloat
	}
	if lt == TString || rt == TString {
		return TString
	}
	return TInt
}

// NamedExpr is a projection item: an expression with an output name.
type NamedExpr struct {
	Expr Scalar
	As   string
}

// String renders "expr AS name".
func (n NamedExpr) String() string {
	if cr, ok := n.Expr.(*ColRef); ok && cr.Name == n.As {
		return n.As
	}
	return n.Expr.String() + " AS " + n.As
}

// namedList renders a list of projection items.
func namedList(items []NamedExpr) string {
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = it.String()
	}
	return strings.Join(parts, ", ")
}

// EvalScalar evaluates expr against row under schema s. It is the
// reference evaluator used by the execution simulator; plan
// compilation may pre-resolve column indexes for speed, but semantics
// are defined here.
func EvalScalar(expr Scalar, row Row, s Schema) (Value, error) {
	switch e := expr.(type) {
	case *ColRef:
		i := s.Index(e.Name)
		if i < 0 {
			return Value{}, fmt.Errorf("column %q not in schema %v", e.Name, s)
		}
		return row[i], nil
	case *ConstExpr:
		return e.Val, nil
	case *BinExpr:
		l, err := EvalScalar(e.L, row, s)
		if err != nil {
			return Value{}, err
		}
		// Short-circuit booleans.
		if e.Op == OpAnd && l.I == 0 && l.Kind == TInt {
			return IntVal(0), nil
		}
		if e.Op == OpOr && l.I != 0 && l.Kind == TInt {
			return IntVal(1), nil
		}
		r, err := EvalScalar(e.R, row, s)
		if err != nil {
			return Value{}, err
		}
		return evalBin(e.Op, l, r)
	default:
		return Value{}, fmt.Errorf("unknown scalar %T", expr)
	}
}

// EvalBin applies a binary operator to two already-evaluated operands
// with EvalScalar's exact promotion and comparison semantics (but no
// short-circuiting — both operands are given). The vectorized kernels
// use it as the per-position fallback when a column pair has no typed
// fast path, so both engines share one definition of the arithmetic.
func EvalBin(op BinKind, l, r Value) (Value, error) { return evalBin(op, l, r) }

func evalBin(op BinKind, l, r Value) (Value, error) {
	boolVal := func(b bool) Value {
		if b {
			return IntVal(1)
		}
		return IntVal(0)
	}
	switch op {
	case OpAdd:
		return l.Add(r), nil
	case OpSub:
		if l.Kind == TInt && r.Kind == TInt {
			return IntVal(l.I - r.I), nil
		}
		return FloatVal(l.AsFloat() - r.AsFloat()), nil
	case OpMul:
		if l.Kind == TInt && r.Kind == TInt {
			return IntVal(l.I * r.I), nil
		}
		return FloatVal(l.AsFloat() * r.AsFloat()), nil
	case OpDiv:
		d := r.AsFloat()
		if d == 0 {
			return Value{}, fmt.Errorf("division by zero")
		}
		return FloatVal(l.AsFloat() / d), nil
	case OpEq:
		return boolVal(l.Compare(r) == 0), nil
	case OpNe:
		return boolVal(l.Compare(r) != 0), nil
	case OpLt:
		return boolVal(l.Compare(r) < 0), nil
	case OpLe:
		return boolVal(l.Compare(r) <= 0), nil
	case OpGt:
		return boolVal(l.Compare(r) > 0), nil
	case OpGe:
		return boolVal(l.Compare(r) >= 0), nil
	case OpAnd:
		return boolVal(truthy(l) && truthy(r)), nil
	case OpOr:
		return boolVal(truthy(l) || truthy(r)), nil
	default:
		return Value{}, fmt.Errorf("unknown binary op %v", op)
	}
}

// Truthy reports the boolean interpretation of a value — nonzero
// numbers and nonempty strings — as used by AND/OR evaluation. Note
// that the executor's filter is stricter: it keeps a row only when
// the predicate value is an *integer* nonzero.
func Truthy(v Value) bool { return truthy(v) }

func truthy(v Value) bool {
	switch v.Kind {
	case TInt:
		return v.I != 0
	case TFloat:
		return v.F != 0
	default:
		return v.S != ""
	}
}

// SubstituteScalar rewrites expr, replacing each column reference by
// its binding (when present). It is used to compose adjacent
// projections: the outer projection's inputs are the inner's outputs.
func SubstituteScalar(expr Scalar, bindings map[string]Scalar) Scalar {
	switch e := expr.(type) {
	case *ColRef:
		if b, ok := bindings[e.Name]; ok {
			return b
		}
		return e
	case *ConstExpr:
		return e
	case *BinExpr:
		l := SubstituteScalar(e.L, bindings)
		r := SubstituteScalar(e.R, bindings)
		if l == e.L && r == e.R {
			return e
		}
		return &BinExpr{Op: e.Op, L: l, R: r}
	default:
		return e
	}
}
