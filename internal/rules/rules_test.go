package rules

import (
	"testing"

	"repro/internal/memo"
	"repro/internal/props"
	"repro/internal/relop"
	"repro/internal/stats"
)

func testMemo() (*memo.Memo, *memo.Group) {
	m := memo.New()
	schema := relop.Schema{
		{Name: "A", Type: relop.TInt}, {Name: "B", Type: relop.TInt},
		{Name: "C", Type: relop.TInt}, {Name: "D", Type: relop.TInt},
	}
	ex := m.Insert(&relop.Extract{Path: "t", Columns: schema, FileID: 1}, nil,
		memo.LogicalProps{Schema: schema, Rel: stats.Relation{Rows: 1_000_000, RowBytes: 32,
			Distinct: map[string]int64{"A": 100, "B": 10, "C": 500}}})
	gbOp := &relop.GroupBy{
		Keys: []string{"A", "B", "C"},
		Aggs: []relop.Aggregate{{Func: relop.AggSum, Arg: "D", As: "S"}},
	}
	outSchema := relop.Schema{
		{Name: "A", Type: relop.TInt}, {Name: "B", Type: relop.TInt},
		{Name: "C", Type: relop.TInt}, {Name: "S", Type: relop.TInt},
	}
	gid := m.Insert(gbOp, []memo.GroupID{ex},
		memo.LogicalProps{Schema: outSchema, Rel: stats.Relation{Rows: 50_000, RowBytes: 32,
			Distinct: map[string]int64{"A": 100, "B": 10, "C": 500}}})
	m.Root = gid
	return m, m.Group(gid)
}

func TestExploreSplitsGroupBy(t *testing.T) {
	m, g := testMemo()
	before := m.NumGroups()
	Explore(m, g, DefaultConfig())
	if len(g.Exprs) != 2 {
		t.Fatalf("exprs after explore = %d, want 2 (single + global)", len(g.Exprs))
	}
	global := g.Exprs[1].Op.(*relop.GroupBy)
	if global.Phase != relop.AggGlobal {
		t.Errorf("second expr phase = %v", global.Phase)
	}
	localG := m.Group(g.Exprs[1].Children[0])
	local := localG.Exprs[0].Op.(*relop.GroupBy)
	if local.Phase != relop.AggLocal {
		t.Errorf("local phase = %v", local.Phase)
	}
	// Merge aggregates: Sum merges by Sum over the partial column.
	if global.Aggs[0].Func != relop.AggSum || global.Aggs[0].Arg != "S" {
		t.Errorf("merge agg = %+v", global.Aggs[0])
	}
	// Local output estimate is bounded by the input and exceeds the
	// final group count.
	if localG.Props.Rel.Rows < 50_000 || localG.Props.Rel.Rows > 1_000_000 {
		t.Errorf("local rows = %d", localG.Props.Rel.Rows)
	}
	// One helper group (the Local half) was added; a second Explore
	// must not add anything.
	if m.NumGroups() != before+1 {
		t.Errorf("groups after explore = %d, want %d", m.NumGroups(), before+1)
	}
	Explore(m, g, DefaultConfig())
	if len(g.Exprs) != 2 || m.NumGroups() != before+1 {
		t.Errorf("explore not idempotent: exprs=%d groups=%d", len(g.Exprs), m.NumGroups())
	}
}

func TestExploreSkipsAvg(t *testing.T) {
	m := memo.New()
	schema := relop.Schema{{Name: "A", Type: relop.TInt}, {Name: "D", Type: relop.TInt}}
	ex := m.Insert(&relop.Extract{Path: "t", Columns: schema, FileID: 1}, nil,
		memo.LogicalProps{Schema: schema, Rel: stats.Relation{Rows: 100, RowBytes: 16}})
	gid := m.Insert(&relop.GroupBy{
		Keys: []string{"A"},
		Aggs: []relop.Aggregate{{Func: relop.AggAvg, Arg: "D", As: "V"}},
	}, []memo.GroupID{ex}, memo.LogicalProps{Rel: stats.Relation{Rows: 10, RowBytes: 16}})
	g := m.Group(gid)
	Explore(m, g, DefaultConfig())
	if len(g.Exprs) != 1 {
		t.Errorf("Avg must not split: exprs = %d", len(g.Exprs))
	}
}

func TestImplementGroupByAlternatives(t *testing.T) {
	m, g := testMemo()
	alts := Implement(m, g, g.Exprs[0], props.AnyRequired(), DefaultConfig())
	var streams, hashes int
	for _, a := range alts {
		switch op := a.Op.(type) {
		case *relop.StreamAgg:
			streams++
			if a.ChildReqs[0].Part.Kind != props.PartHash {
				t.Errorf("stream agg child partition = %v", a.ChildReqs[0].Part)
			}
			if !a.ChildReqs[0].Order.HasPrefixSet(props.NewColSet("A", "B", "C")) {
				t.Errorf("stream agg order %v does not cluster keys", a.ChildReqs[0].Order)
			}
			_ = op
		case *relop.HashAgg:
			hashes++
			if !a.ChildReqs[0].Order.Empty() {
				t.Error("hash agg must not require order")
			}
		}
	}
	if streams < 2 || hashes != 1 {
		t.Errorf("streams=%d hashes=%d", streams, hashes)
	}
}

func TestImplementGroupByAlignsWithRequiredOrder(t *testing.T) {
	m, g := testMemo()
	req := props.Required{Order: props.NewOrdering("B", "A")}
	alts := Implement(m, g, g.Exprs[0], req, DefaultConfig())
	first := alts[0]
	if _, ok := first.Op.(*relop.StreamAgg); !ok {
		t.Fatalf("first alt = %T", first.Op)
	}
	// The first stream candidate must start with the required order.
	if !first.ChildReqs[0].Order.Satisfies(props.NewOrdering("B", "A")) {
		t.Errorf("first candidate order = %v, want (B,A,...) alignment", first.ChildReqs[0].Order)
	}
}

func TestImplementLocalAggNoPartitionReq(t *testing.T) {
	m, g := testMemo()
	Explore(m, g, DefaultConfig())
	localG := m.Group(g.Exprs[1].Children[0])
	alts := Implement(m, localG, localG.Exprs[0], props.AnyRequired(), DefaultConfig())
	for _, a := range alts {
		if a.ChildReqs[0].Part.Kind != props.PartAny {
			t.Errorf("local agg child partition = %v, want any", a.ChildReqs[0].Part)
		}
	}
}

func TestImplementJoinSchemes(t *testing.T) {
	m := memo.New()
	ls := relop.Schema{{Name: "B", Type: relop.TInt}, {Name: "S1", Type: relop.TInt}}
	rs := relop.Schema{{Name: "B2", Type: relop.TInt}, {Name: "S2", Type: relop.TInt}}
	l := m.Insert(&relop.Extract{Path: "l", Columns: ls, FileID: 1}, nil,
		memo.LogicalProps{Schema: ls, Rel: stats.Relation{Rows: 1000, RowBytes: 16}})
	r := m.Insert(&relop.Extract{Path: "r", Columns: rs, FileID: 2}, nil,
		memo.LogicalProps{Schema: rs, Rel: stats.Relation{Rows: 10, RowBytes: 16}})
	j := m.Insert(&relop.Join{LeftKeys: []string{"B"}, RightKeys: []string{"B2"}},
		[]memo.GroupID{l, r}, memo.LogicalProps{Schema: ls.Concat(rs), Rel: stats.Relation{Rows: 100, RowBytes: 32}})
	g := m.Group(j)
	alts := Implement(m, g, g.Exprs[0], props.AnyRequired(), DefaultConfig())
	var merge, hash, broadcast, serial int
	for _, a := range alts {
		switch a.Op.(type) {
		case *relop.SortMergeJoin:
			merge++
			// Both sides must request corresponding exact schemes.
			if a.ChildReqs[0].Part.Kind == props.PartHash {
				if !a.ChildReqs[0].Part.Exact || !a.ChildReqs[1].Part.Exact {
					t.Error("merge join hash schemes must be exact (co-partitioning)")
				}
			}
			if a.ChildReqs[0].Order.Empty() || a.ChildReqs[1].Order.Empty() {
				t.Error("merge join needs sorted inputs")
			}
		case *relop.HashJoin:
			hash++
			if a.ChildReqs[0].Part.Kind == props.PartBroadcast || a.ChildReqs[1].Part.Kind == props.PartBroadcast {
				broadcast++
				// The smaller side (right, 10 rows) must be the
				// broadcast one.
				if a.ChildReqs[1].Part.Kind != props.PartBroadcast {
					t.Error("broadcast side should be the smaller input")
				}
			}
		}
		if a.ChildReqs[0].Part.Kind == props.PartSerial {
			serial++
		}
	}
	if merge == 0 || hash == 0 || broadcast != 1 || serial == 0 {
		t.Errorf("merge=%d hash=%d broadcast=%d serial=%d", merge, hash, broadcast, serial)
	}
}

func TestDeriveDeliveredAgg(t *testing.T) {
	child := props.Delivered{
		Part:  props.HashPartitioning(props.NewColSet("B")),
		Order: props.NewOrdering("B", "A", "C"),
	}
	agg := &relop.StreamAgg{Keys: []string{"A", "B", "C"}, Phase: relop.AggGlobal}
	d := DeriveDelivered(agg, []props.Delivered{child})
	if !d.Part.Equal(child.Part) {
		t.Errorf("agg part = %v", d.Part)
	}
	if !d.Order.Equal(child.Order) {
		t.Errorf("agg order = %v", d.Order)
	}
	// Partitioning on a non-key column degrades.
	child2 := props.Delivered{Part: props.HashPartitioning(props.NewColSet("D"))}
	d2 := DeriveDelivered(agg, []props.Delivered{child2})
	if d2.Part.Kind != props.PartRandom {
		t.Errorf("non-key partition should degrade, got %v", d2.Part)
	}
	// HashAgg destroys order.
	h := DeriveDelivered(&relop.HashAgg{Keys: []string{"A", "B", "C"}}, []props.Delivered{child})
	if !h.Order.Empty() {
		t.Errorf("hash agg order = %v", h.Order)
	}
}

func TestDeriveDeliveredRepartitionAndSort(t *testing.T) {
	child := props.Delivered{Part: props.RandomPartitioning(), Order: props.NewOrdering("B", "A")}
	re := &relop.Repartition{To: props.HashPartitioning(props.NewColSet("B"))}
	d := DeriveDelivered(re, []props.Delivered{child})
	if d.Part.Kind != props.PartHash || !d.Order.Empty() {
		t.Errorf("plain repartition = %v", d)
	}
	rem := &relop.Repartition{To: props.HashPartitioning(props.NewColSet("B")), MergeOrder: props.NewOrdering("B", "A")}
	dm := DeriveDelivered(rem, []props.Delivered{child})
	if !dm.Order.Equal(props.NewOrdering("B", "A")) {
		t.Errorf("merge repartition order = %v", dm.Order)
	}
	s := DeriveDelivered(&relop.Sort{Order: props.NewOrdering("C")}, []props.Delivered{child})
	if !s.Order.Equal(props.NewOrdering("C")) || !s.Part.Equal(child.Part) {
		t.Errorf("sort delivered = %v", s)
	}
}

func TestDeriveDeliveredMergeJoinOrder(t *testing.T) {
	left := props.Delivered{
		Part:  props.HashPartitioning(props.NewColSet("B")),
		Order: props.NewOrdering("B", "A"),
	}
	j := &relop.SortMergeJoin{LeftKeys: []string{"B"}, RightKeys: []string{"B2"}}
	d := DeriveDelivered(j, []props.Delivered{left, {}})
	// Only the key prefix (B) survives.
	if !d.Order.Equal(props.NewOrdering("B")) {
		t.Errorf("merge join order = %v", d.Order)
	}
	if !d.Part.Equal(left.Part) {
		t.Errorf("merge join part = %v", d.Part)
	}
}

func TestDeriveDeliveredProjectRenames(t *testing.T) {
	items := []relop.NamedExpr{
		{Expr: relop.Col("B"), As: "B2"},
		{Expr: relop.Col("A"), As: "A"},
		{Expr: relop.Bin(relop.OpAdd, relop.Col("A"), relop.Col("B")), As: "AB"},
	}
	child := props.Delivered{
		Part:  props.HashPartitioning(props.NewColSet("B")),
		Order: props.NewOrdering("B", "A"),
	}
	d := DeriveDelivered(&relop.PhysProject{Items: items}, []props.Delivered{child})
	if !d.Part.Cols.Equal(props.NewColSet("B2")) {
		t.Errorf("renamed part = %v", d.Part)
	}
	if !d.Order.Equal(props.Ordering{{Col: "B2"}, {Col: "A"}}) {
		t.Errorf("renamed order = %v", d.Order)
	}
	// Partition column dropped → random.
	d2 := DeriveDelivered(&relop.PhysProject{Items: items[1:]}, []props.Delivered{child})
	if d2.Part.Kind != props.PartRandom {
		t.Errorf("dropped part col should degrade: %v", d2.Part)
	}
}

func TestMapReqThroughProject(t *testing.T) {
	items := []relop.NamedExpr{
		{Expr: relop.Col("B"), As: "B2"},
		{Expr: relop.Bin(relop.OpAdd, relop.Col("A"), relop.Col("B")), As: "AB"},
	}
	req := props.Required{Part: props.HashPartitioning(props.NewColSet("B2"))}
	mapped, ok := mapReqThroughProject(items, req)
	if !ok || !mapped.Part.Cols.Equal(props.NewColSet("B")) {
		t.Errorf("mapped = %v, %v", mapped, ok)
	}
	bad := props.Required{Part: props.HashPartitioning(props.NewColSet("AB"))}
	if _, ok := mapReqThroughProject(items, bad); ok {
		t.Error("computed column must block pushdown")
	}
}

func TestEnforcerTargets(t *testing.T) {
	cfg := DefaultConfig()
	ts := EnforcerTargets(props.HashPartitioning(props.NewColSet("A", "B", "C")), cfg)
	if len(ts) != 4 { // full + 3 singletons
		t.Fatalf("targets = %v", ts)
	}
	if !ts[0].Cols.Equal(props.NewColSet("A", "B", "C")) {
		t.Errorf("first target should be the full set: %v", ts[0])
	}
	exact := EnforcerTargets(props.ExactHashPartitioning(props.NewColSet("B")), cfg)
	if len(exact) != 1 || !exact[0].Cols.Equal(props.NewColSet("B")) {
		t.Errorf("exact targets = %v", exact)
	}
	ser := EnforcerTargets(props.SerialPartitioning(), cfg)
	if len(ser) != 1 || ser[0].Kind != props.PartSerial {
		t.Errorf("serial targets = %v", ser)
	}
	if got := EnforcerTargets(props.AnyPartitioning(), cfg); got != nil {
		t.Errorf("any targets = %v", got)
	}
}

func TestMergeProjectsRule(t *testing.T) {
	// Build P3(P2(P1(extract))) and explore with the merge rule on:
	// the top group gains a composed expression straight over the
	// extract.
	m := memo.New()
	schema := relop.Schema{{Name: "A", Type: relop.TInt}, {Name: "B", Type: relop.TInt}}
	ex := m.Insert(&relop.Extract{Path: "t", Columns: schema, FileID: 1}, nil,
		memo.LogicalProps{Schema: schema, Rel: stats.Relation{Rows: 100, RowBytes: 16}})
	p1 := m.Insert(&relop.Project{Items: []relop.NamedExpr{
		{Expr: relop.Col("A"), As: "X"},
		{Expr: relop.Bin(relop.OpAdd, relop.Col("A"), relop.Col("B")), As: "Y"},
	}}, []memo.GroupID{ex}, memo.LogicalProps{Rel: stats.Relation{Rows: 100, RowBytes: 16}})
	p2 := m.Insert(&relop.Project{Items: []relop.NamedExpr{
		{Expr: relop.Bin(relop.OpMul, relop.Col("Y"), relop.Lit(relop.IntVal(2))), As: "Z"},
		{Expr: relop.Col("X"), As: "X"},
	}}, []memo.GroupID{p1}, memo.LogicalProps{Rel: stats.Relation{Rows: 100, RowBytes: 16}})
	p3 := m.Insert(&relop.Project{Items: []relop.NamedExpr{
		{Expr: relop.Col("Z"), As: "Out"},
	}}, []memo.GroupID{p2}, memo.LogicalProps{Rel: stats.Relation{Rows: 100, RowBytes: 8}})
	m.Root = p3

	cfg := DefaultConfig()
	cfg.EnableProjectMerge = true
	g := m.Group(p3)
	Explore(m, g, cfg)
	if len(g.Exprs) != 2 {
		t.Fatalf("exprs = %d, want original + merged", len(g.Exprs))
	}
	merged := g.Exprs[1]
	if merged.Children[0] != ex {
		t.Errorf("merged child = G%d, want the extract G%d", merged.Children[0], ex)
	}
	mp := merged.Op.(*relop.Project)
	// Out = Z = Y*2 = (A+B)*2.
	if got := mp.Items[0].Expr.String(); got != "((A + B) * 2)" {
		t.Errorf("composed expr = %s", got)
	}
	// Off by default: no merge.
	g2 := m.Group(p2)
	Explore(m, g2, DefaultConfig())
	if len(g2.Exprs) != 1 {
		t.Errorf("merge must be off by default (exprs = %d)", len(g2.Exprs))
	}
	// Never merges through a shared group.
	m.Group(p1).Shared = true
	g2cfg := DefaultConfig()
	g2cfg.EnableProjectMerge = true
	Explore(m, g2, g2cfg)
	if len(g2.Exprs) != 1 {
		t.Errorf("merge through a shared group must be blocked (exprs = %d)", len(g2.Exprs))
	}
}

func TestFilterPushdownRule(t *testing.T) {
	// Filter over a projection: pushed below with the predicate
	// inlined through the computed column.
	m := memo.New()
	schema := relop.Schema{{Name: "A", Type: relop.TInt}, {Name: "B", Type: relop.TInt}}
	ex := m.Insert(&relop.Extract{Path: "t", Columns: schema, FileID: 1}, nil,
		memo.LogicalProps{Schema: schema, Rel: stats.Relation{Rows: 1000, RowBytes: 16}})
	proj := m.Insert(&relop.Project{Items: []relop.NamedExpr{
		{Expr: relop.Bin(relop.OpAdd, relop.Col("A"), relop.Col("B")), As: "S"},
	}}, []memo.GroupID{ex}, memo.LogicalProps{
		Schema: relop.Schema{{Name: "S", Type: relop.TInt}},
		Rel:    stats.Relation{Rows: 1000, RowBytes: 8},
	})
	filt := m.Insert(&relop.Filter{
		Pred:        relop.Bin(relop.OpGt, relop.Col("S"), relop.Lit(relop.IntVal(5))),
		Selectivity: 0.5,
	}, []memo.GroupID{proj}, memo.LogicalProps{
		Schema: relop.Schema{{Name: "S", Type: relop.TInt}},
		Rel:    stats.Relation{Rows: 500, RowBytes: 8},
	})
	m.Root = filt

	cfg := DefaultConfig()
	cfg.EnableFilterPushdown = true
	g := m.Group(filt)
	Explore(m, g, cfg)
	if len(g.Exprs) != 2 {
		t.Fatalf("exprs = %d, want original + pushed", len(g.Exprs))
	}
	if _, ok := g.Exprs[1].Op.(*relop.Project); !ok {
		t.Fatalf("second expr = %T, want the projection on top", g.Exprs[1].Op)
	}
	newFilter := m.Group(g.Exprs[1].Children[0])
	nf, ok := newFilter.Exprs[0].Op.(*relop.Filter)
	if !ok {
		t.Fatalf("pushed child = %T, want Filter", newFilter.Exprs[0].Op)
	}
	if got := nf.Pred.String(); got != "((A + B) > 5)" {
		t.Errorf("inlined predicate = %s", got)
	}
	if newFilter.Exprs[0].Children[0] != ex {
		t.Error("pushed filter should sit directly over the extract")
	}
	// Off by default.
	gOff := m.Group(filt)
	before := len(gOff.Exprs)
	Explore(m, gOff, DefaultConfig())
	if len(gOff.Exprs) != before {
		t.Error("pushdown must be off by default")
	}
	// Blocked through shared groups.
	m.Group(proj).Shared = true
	Explore(m, g, cfg)
	// (idempotence: the pushed expr already exists; no new ones)
	if len(g.Exprs) != 2 {
		t.Errorf("exprs after re-explore = %d", len(g.Exprs))
	}
}
