package rules

import (
	"repro/internal/props"
	"repro/internal/relop"
)

// DeriveDelivered computes the physical properties a physical
// operator delivers given its children's delivered properties — the
// paper's UpdateDlvdProp.
func DeriveDelivered(op relop.Operator, children []props.Delivered) props.Delivered {
	child := func(i int) props.Delivered {
		if i < len(children) {
			return children[i]
		}
		return props.Delivered{Part: props.RandomPartitioning()}
	}
	switch o := op.(type) {
	case *relop.PhysExtract:
		// A distributed file arrives with no colocation or order
		// guarantee.
		return props.Delivered{Part: props.RandomPartitioning()}
	case *relop.PhysFilter:
		return child(0)
	case *relop.PhysProject:
		return projectDelivered(o.Items, child(0))
	case *relop.Sort:
		d := child(0)
		d.Order = o.Order
		return d
	case *relop.Repartition:
		return props.Delivered{Part: exactDelivered(o.To), Order: o.MergeOrder}
	case *relop.StreamAgg:
		return aggDelivered(o.Keys, child(0), true)
	case *relop.HashAgg:
		return aggDelivered(o.Keys, child(0), false)
	case *relop.SortMergeJoin:
		d := child(0)
		// Only the key-prefix of the left order survives the merge:
		// rows within one key value interleave with the right side.
		keys := props.NewColSet(o.LeftKeys...)
		var ord props.Ordering
		for _, sc := range d.Order {
			if !keys.Contains(sc.Col) {
				break
			}
			ord = append(ord, sc)
		}
		return props.Delivered{Part: d.Part, Order: ord}
	case *relop.HashJoin:
		l := child(0)
		if l.Part.Kind == props.PartBroadcast {
			// The probe side carries the distribution.
			return props.Delivered{Part: child(1).Part}
		}
		return props.Delivered{Part: l.Part}
	case *relop.PhysSpool:
		return child(0)
	case *relop.PhysCacheScan:
		// A cache hit delivers exactly the properties the artifact was
		// materialized under — the recorded half of the cross-query
		// property history.
		return props.Delivered{Part: o.Part, Order: o.Order}
	case *relop.PhysOutput:
		return child(0)
	case *relop.PhysSequence:
		return props.Delivered{Part: props.SerialPartitioning()}
	default:
		return props.Delivered{Part: props.RandomPartitioning()}
	}
}

// exactDelivered converts a repartition target into the delivered
// distribution. Delivered hash partitionings carry Exact=true: the
// column set is the concrete hash key, not the upper end of a range.
func exactDelivered(to props.Partitioning) props.Partitioning {
	if to.Kind == props.PartHash {
		to.Exact = true
	}
	return to
}

// aggDelivered projects the child's delivered properties onto an
// aggregation's output: partition columns must all be grouping keys
// to survive; the order survives as its longest key-only prefix.
func aggDelivered(keys []string, d props.Delivered, keepOrder bool) props.Delivered {
	keySet := props.NewColSet(keys...)
	out := props.Delivered{Part: d.Part.Project(keySet)}
	if keepOrder {
		out.Order = d.Order.Project(keySet)
	}
	return out
}

// projectDelivered maps delivered properties through a projection's
// renames; properties over computed or dropped columns degrade.
func projectDelivered(items []relop.NamedExpr, d props.Delivered) props.Delivered {
	// Forward map: input column → output name (first pass-through
	// wins).
	fwd := map[string]string{}
	for _, it := range items {
		if cr, ok := it.Expr.(*relop.ColRef); ok {
			if _, dup := fwd[cr.Name]; !dup {
				fwd[cr.Name] = it.As
			}
		}
	}
	out := props.Delivered{Part: props.RandomPartitioning()}
	switch d.Part.Kind {
	case props.PartHash:
		var cols []string
		ok := true
		for _, c := range d.Part.Cols.Cols() {
			n, found := fwd[c]
			if !found {
				ok = false
				break
			}
			cols = append(cols, n)
		}
		if ok {
			out.Part = props.HashPartitioning(props.NewColSet(cols...))
			out.Part.Exact = d.Part.Exact
		}
	case props.PartRange:
		// The surviving renamed prefix of the range key keeps the
		// partitions ordered; a dropped lead column degrades to
		// random.
		var mapped props.Ordering
		for _, sc := range d.Part.SortCols {
			n, found := fwd[sc.Col]
			if !found {
				break
			}
			mapped = append(mapped, props.SortCol{Col: n, Desc: sc.Desc})
		}
		if !mapped.Empty() {
			out.Part = props.RangePartitioning(mapped)
		}
	default:
		out.Part = d.Part
	}
	for _, sc := range d.Order {
		n, found := fwd[sc.Col]
		if !found {
			break
		}
		out.Order = append(out.Order, props.SortCol{Col: n, Desc: sc.Desc})
	}
	return out
}

// EnforcerTargets returns the concrete repartitioning schemes worth
// trying to satisfy a partition requirement from a plan that misses
// it: the exact scheme for exact requirements, and for range
// requirements the full column set plus each singleton (the cheapest
// schemes to reach and the ones that keep downstream options open),
// capped by cfg.MaxEnforceTargets.
func EnforcerTargets(req props.Partitioning, cfg Config) []props.Partitioning {
	maxT := cfg.MaxEnforceTargets
	if maxT <= 0 {
		maxT = 6
	}
	switch req.Kind {
	case props.PartSerial, props.PartBroadcast:
		return []props.Partitioning{{Kind: req.Kind}}
	case props.PartRange:
		return []props.Partitioning{props.RangePartitioning(req.SortCols)}
	case props.PartHash:
		if req.Exact {
			return []props.Partitioning{props.HashPartitioning(req.Cols)}
		}
		var out []props.Partitioning
		out = append(out, props.HashPartitioning(req.Cols))
		if req.Cols.Len() > 1 {
			for _, c := range req.Cols.Cols() {
				if len(out) >= maxT {
					break
				}
				out = append(out, props.HashPartitioning(props.NewColSet(c)))
			}
		}
		return out
	default:
		return nil
	}
}
