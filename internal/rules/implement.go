package rules

import (
	"repro/internal/memo"
	"repro/internal/props"
	"repro/internal/relop"
)

// Alt is one physical implementation alternative of a logical
// expression: the physical operator plus the properties to request
// from each child (the output of the paper's DetChildProp).
type Alt struct {
	Op        relop.Operator
	ChildReqs []props.Required
}

// Implement enumerates the physical implementation alternatives of a
// logical memo expression under the given requirement. The
// requirement only steers which child property sets are worth
// requesting (e.g. aligning a stream aggregation's sort candidates
// with a required output order); satisfaction itself is checked by
// the optimizer, which adds enforcers where needed.
func Implement(m *memo.Memo, g *memo.Group, e *memo.Expr, req props.Required, cfg Config) []Alt {
	switch op := e.Op.(type) {
	case *relop.Extract:
		return []Alt{{Op: &relop.PhysExtract{
			Path: op.Path, Columns: op.Columns, Extractor: op.Extractor, FileID: op.FileID,
		}}}
	case *relop.Project:
		return implementProject(op, req)
	case *relop.Filter:
		return []Alt{
			{Op: &relop.PhysFilter{Pred: op.Pred, Selectivity: op.Selectivity}, ChildReqs: []props.Required{req}},
			{Op: &relop.PhysFilter{Pred: op.Pred, Selectivity: op.Selectivity}, ChildReqs: []props.Required{props.AnyRequired()}},
		}
	case *relop.GroupBy:
		return implementGroupBy(op, req, cfg)
	case *relop.Join:
		return implementJoin(m, e, op, req, cfg)
	case *relop.Spool:
		return []Alt{
			{Op: &relop.PhysSpool{}, ChildReqs: []props.Required{req}},
			{Op: &relop.PhysSpool{}, ChildReqs: []props.Required{props.AnyRequired()}},
		}
	case *relop.Output:
		if !op.Order.Empty() {
			// A globally sorted file: either range-partition on the
			// output order and sort locally (parallel, SCOPE's
			// approach), or gather one sorted serial stream.
			phys := &relop.PhysOutput{Path: op.Path, Order: op.Order}
			return []Alt{
				{Op: phys, ChildReqs: []props.Required{{Part: props.RangePartitioning(op.Order), Order: op.Order}}},
				{Op: phys, ChildReqs: []props.Required{{Part: props.SerialPartitioning(), Order: op.Order}}},
			}
		}
		return []Alt{{Op: &relop.PhysOutput{Path: op.Path}, ChildReqs: []props.Required{props.AnyRequired()}}}
	case *relop.Union:
		reqs := make([]props.Required, len(e.Children))
		for i := range reqs {
			reqs[i] = props.AnyRequired()
		}
		return []Alt{{Op: &relop.PhysUnion{}, ChildReqs: reqs}}
	case *relop.Sequence:
		reqs := make([]props.Required, len(e.Children))
		for i := range reqs {
			reqs[i] = props.AnyRequired()
		}
		return []Alt{{Op: &relop.PhysSequence{}, ChildReqs: reqs}}
	default:
		return nil
	}
}

// implementProject pushes the requirement through the projection when
// every required column is a simple pass-through (possibly renamed),
// and always offers the unconstrained alternative.
func implementProject(op *relop.Project, req props.Required) []Alt {
	phys := &relop.PhysProject{Items: op.Items}
	alts := []Alt{{Op: phys, ChildReqs: []props.Required{props.AnyRequired()}}}
	if mapped, ok := mapReqThroughProject(op.Items, req); ok && !mapped.IsAny() {
		alts = append([]Alt{{Op: phys, ChildReqs: []props.Required{mapped}}}, alts...)
	}
	return alts
}

// projectInverse returns output-name → input-column for the simple
// pass-through items of a projection.
func projectInverse(items []relop.NamedExpr) map[string]string {
	inv := map[string]string{}
	for _, it := range items {
		if cr, ok := it.Expr.(*relop.ColRef); ok {
			inv[it.As] = cr.Name
		}
	}
	return inv
}

// mapReqThroughProject rewrites a requirement on the projection's
// output into one on its input; ok is false when a required column is
// computed (not a pass-through).
func mapReqThroughProject(items []relop.NamedExpr, req props.Required) (props.Required, bool) {
	inv := projectInverse(items)
	out := props.Required{Part: props.AnyPartitioning()}
	switch req.Part.Kind {
	case props.PartHash:
		var cols []string
		for _, c := range req.Part.Cols.Cols() {
			src, ok := inv[c]
			if !ok {
				return props.Required{}, false
			}
			cols = append(cols, src)
		}
		out.Part = props.Partitioning{Kind: props.PartHash, Cols: props.NewColSet(cols...), Exact: req.Part.Exact}
	case props.PartRange:
		mapped := make(props.Ordering, 0, len(req.Part.SortCols))
		for _, sc := range req.Part.SortCols {
			src, ok := inv[sc.Col]
			if !ok {
				return props.Required{}, false
			}
			mapped = append(mapped, props.SortCol{Col: src, Desc: sc.Desc})
		}
		out.Part = props.RangePartitioning(mapped)
	default:
		out.Part = req.Part
	}
	for _, sc := range req.Order {
		src, ok := inv[sc.Col]
		if !ok {
			return props.Required{}, false
		}
		out.Order = append(out.Order, props.SortCol{Col: src, Desc: sc.Desc})
	}
	return out, true
}

// implementGroupBy generates stream and hash aggregation
// alternatives. Local-phase aggregations impose no distribution
// requirement on their child; Global and Single phases require the
// child hash-partitioned on (a subset of) the keys.
func implementGroupBy(op *relop.GroupBy, req props.Required, cfg Config) []Alt {
	keySet := props.NewColSet(op.Keys...)
	var partReqs []props.Partitioning
	if op.Phase == relop.AggLocal {
		partReqs = []props.Partitioning{props.AnyPartitioning()}
	} else {
		// Aggregation preserves any partitioning over its keys, so
		// the group's own requirement passes through to the child
		// when its columns are keys — this is what lets a property
		// set pinned at a shared group (e.g. exact hash{B}) steer a
		// single exchange of the raw input instead of an exchange
		// per level. The generic range requirement comes second.
		switch {
		case req.Part.Kind == props.PartHash && req.Part.Cols.SubsetOf(keySet) && !req.Part.Cols.Empty():
			partReqs = append(partReqs, req.Part)
		case req.Part.Kind == props.PartSerial:
			partReqs = append(partReqs, props.SerialPartitioning())
		}
		generic := props.HashPartitioning(keySet)
		dup := false
		for _, p := range partReqs {
			if p.Equal(generic) {
				dup = true
			}
		}
		if !dup {
			partReqs = append(partReqs, generic)
		}
	}
	var alts []Alt
	for _, partReq := range partReqs {
		// Stream aggregation: one alternative per candidate
		// clustering order.
		for _, ord := range sortCandidates(keySet, req.Order, cfg.MaxSortCandidates) {
			alts = append(alts, Alt{
				Op:        &relop.StreamAgg{Keys: op.Keys, Aggs: op.Aggs, Phase: op.Phase},
				ChildReqs: []props.Required{{Part: partReq, Order: ord}},
			})
		}
		// Hash aggregation: no order requirement.
		if !cfg.DisableHashAgg {
			alts = append(alts, Alt{
				Op:        &relop.HashAgg{Keys: op.Keys, Aggs: op.Aggs, Phase: op.Phase},
				ChildReqs: []props.Required{{Part: partReq}},
			})
		}
	}
	return alts
}

// sortCandidates enumerates orderings over keys that cluster the key
// set, preferring one aligned with the required output order.
func sortCandidates(keys props.ColSet, reqOrder props.Ordering, maxC int) []props.Ordering {
	if maxC <= 0 {
		maxC = 4
	}
	var out []props.Ordering
	seen := map[string]bool{}
	add := func(o props.Ordering) {
		if len(out) >= maxC || o.Empty() {
			return
		}
		if k := o.Key(); !seen[k] {
			seen[k] = true
			out = append(out, o)
		}
	}
	// Required-order-aligned candidate: extend the required order's
	// key prefix with the remaining keys.
	if !reqOrder.Empty() && reqOrder.Columns().SubsetOf(keys) {
		ext := append(props.Ordering{}, reqOrder...)
		for _, k := range keys.Difference(reqOrder.Columns()).Cols() {
			ext = append(ext, props.SortCol{Col: k})
		}
		add(ext)
	}
	for _, o := range props.OrderingsWithPrefixSet(keys, keys) {
		add(o)
	}
	return out
}

// implementJoin generates merge and hash joins over co-partitioned
// children (exact matching schemes on corresponding key columns, so
// equal keys meet on one machine), a serial variant, and optionally a
// broadcast-inner hash join.
func implementJoin(m *memo.Memo, e *memo.Expr, op *relop.Join, req props.Required, cfg Config) []Alt {
	var alts []Alt
	schemes := joinPartitionSchemes(op, cfg.MaxEnforceTargets)
	for _, s := range schemes {
		// Sort-merge join: both inputs sorted on corresponding key
		// rotations.
		for _, rot := range keyRotations(len(op.LeftKeys), cfg.MaxSortCandidates) {
			lOrd := orderFromKeys(op.LeftKeys, rot)
			rOrd := orderFromKeys(op.RightKeys, rot)
			alts = append(alts, Alt{
				Op: &relop.SortMergeJoin{LeftKeys: op.LeftKeys, RightKeys: op.RightKeys},
				ChildReqs: []props.Required{
					{Part: s.left, Order: lOrd},
					{Part: s.right, Order: rOrd},
				},
			})
		}
		alts = append(alts, Alt{
			Op: &relop.HashJoin{LeftKeys: op.LeftKeys, RightKeys: op.RightKeys},
			ChildReqs: []props.Required{
				{Part: s.left},
				{Part: s.right},
			},
		})
	}
	if cfg.EnableBroadcastJoin {
		// Broadcast the smaller side (by estimated bytes) to every
		// machine holding the other side.
		l := m.Group(e.Children[0]).Props.Rel
		r := m.Group(e.Children[1]).Props.Rel
		lReq := props.AnyRequired()
		rReq := props.Required{Part: props.BroadcastPartitioning()}
		if l.Bytes() < r.Bytes() {
			lReq = props.Required{Part: props.BroadcastPartitioning()}
			rReq = props.AnyRequired()
		}
		alts = append(alts, Alt{
			Op:        &relop.HashJoin{LeftKeys: op.LeftKeys, RightKeys: op.RightKeys},
			ChildReqs: []props.Required{lReq, rReq},
		})
	}
	return alts
}

// partScheme is a pair of exact co-partitionings for a join.
type partScheme struct {
	left, right props.Partitioning
}

// joinPartitionSchemes enumerates co-partitioning schemes: the full
// key set, each single key pair, and the serial-serial fallback.
// Exact schemes are required so both sides agree on the hash columns
// (hash on mismatched subsets would separate equal keys).
func joinPartitionSchemes(op *relop.Join, maxT int) []partScheme {
	if maxT <= 0 {
		maxT = 6
	}
	var out []partScheme
	out = append(out, partScheme{
		left:  props.ExactHashPartitioning(props.NewColSet(op.LeftKeys...)),
		right: props.ExactHashPartitioning(props.NewColSet(op.RightKeys...)),
	})
	if len(op.LeftKeys) > 1 {
		for i := range op.LeftKeys {
			if len(out) >= maxT {
				break
			}
			out = append(out, partScheme{
				left:  props.ExactHashPartitioning(props.NewColSet(op.LeftKeys[i])),
				right: props.ExactHashPartitioning(props.NewColSet(op.RightKeys[i])),
			})
		}
	}
	out = append(out, partScheme{
		left:  props.SerialPartitioning(),
		right: props.SerialPartitioning(),
	})
	return out
}

// keyRotations yields index rotations [0..n), capped.
func keyRotations(n, maxC int) [][]int {
	if maxC <= 0 || maxC > n {
		maxC = n
	}
	out := make([][]int, 0, maxC)
	for r := 0; r < maxC; r++ {
		rot := make([]int, n)
		for i := 0; i < n; i++ {
			rot[i] = (r + i) % n
		}
		out = append(out, rot)
	}
	return out
}

func orderFromKeys(keys []string, rot []int) props.Ordering {
	o := make(props.Ordering, len(rot))
	for i, k := range rot {
		o[i] = props.SortCol{Col: keys[k]}
	}
	return o
}
