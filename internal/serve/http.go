package serve

import (
	"context"
	"encoding/json"
	"errors"
	"hash/fnv"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"

	"repro/internal/exec"
	"repro/internal/obs"
)

// TenantHeader names the HTTP header carrying the submitting tenant.
const TenantHeader = "X-Scope-Tenant"

// RunResponse is the JSON body of a successful POST /run.
type RunResponse struct {
	Tenant string `json:"tenant,omitempty"`
	// Cost is the optimizer's estimate for the chosen plan.
	Cost float64 `json:"cost"`
	// CacheHits / CacheMisses / Admitted / AdmittedBytes /
	// QuotaRejected mirror the session's RunReport.
	CacheHits     int   `json:"cache_hits"`
	CacheMisses   int   `json:"cache_misses"`
	Admitted      int   `json:"admitted"`
	AdmittedBytes int64 `json:"admitted_bytes"`
	QuotaRejected int   `json:"quota_rejected"`
	// Outputs digests each OUTPUT table (FNV-64a over its canonical
	// row rendering) so clients can verify results without shipping
	// full tables through the service.
	Outputs []OutputDigest `json:"outputs"`
}

// OutputDigest identifies one OUTPUT file's content.
type OutputDigest struct {
	Path   string `json:"path"`
	Rows   int    `json:"rows"`
	Digest uint64 `json:"digest"`
}

// errResponse is the JSON body of a failed request.
type errResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP mux:
//
//	POST /run      — body is the script text, X-Scope-Tenant tags it
//	GET  /metrics  — Prometheus text exposition (0.0.4); the legacy
//	                 human-readable snapshot under ?format=snapshot
//	GET  /events   — recent flight-recorder events as JSON
//	                 (?tenant= filters, ?n= bounds the count)
//	GET  /cache    — result-cache introspection: entries with benefit
//	                 scores, per-owner bytes, pinned artifacts
//	GET  /mqo/last — the last workload-planned window's choice
//	GET  /healthz  — 200 ok
//
// With Config.Pprof, net/http/pprof mounts under /debug/pprof/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/cache", s.handleCache)
	mux.HandleFunc("/mqo/last", s.handleMQOLast)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	if s.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("serve: POST a script to /run"))
		return
	}
	var script string
	{
		buf := make([]byte, 0, 1024)
		tmp := make([]byte, 1024)
		for {
			n, err := r.Body.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		script = string(buf)
	}
	rep, err := s.Submit(r.Context(), r.Header.Get(TenantHeader), script)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	resp := RunResponse{
		Tenant:        rep.Tenant,
		Cost:          rep.Cost,
		CacheHits:     rep.CacheHits,
		CacheMisses:   rep.CacheMisses,
		Admitted:      rep.Admitted,
		AdmittedBytes: rep.AdmittedBytes,
		QuotaRejected: rep.QuotaRejected,
		Outputs:       digestOutputs(rep.Outputs),
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("serve: GET /metrics"))
		return
	}
	if r.URL.Query().Get("format") == "snapshot" {
		// Legacy human-readable snapshot, kept for scripts that grep it.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(s.reg.Snapshot().String()))
		return
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	_ = s.reg.Snapshot().WritePrometheus(w, "scope")
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("serve: GET /events"))
		return
	}
	n := 0
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeErr(w, http.StatusBadRequest, errors.New("serve: n must be a non-negative integer"))
			return
		}
		n = v
	}
	events := s.events.Recent(r.URL.Query().Get("tenant"), n)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(events)
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("serve: GET /cache"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.sess.Cache().Describe())
}

func (s *Server) handleMQOLast(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("serve: GET /mqo/last"))
		return
	}
	rec := s.LastMQO()
	if rec == nil {
		writeErr(w, http.StatusNotFound, errors.New("serve: no MQO window has run"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(rec)
}

// statusFor maps service errors onto HTTP statuses: backpressure is
// 429, shutdown 503, timeout/cancellation 504, parse errors 400, and
// anything else 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShutdown):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case isParseErr(err):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// isParseErr reports whether err came from script compilation rather
// than execution; those are the client's fault.
func isParseErr(err error) bool {
	var pe *ParseError
	return errors.As(err, &pe)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errResponse{Error: err.Error()})
}

// digestOutputs renders each output table to its canonical row form
// and hashes it, emitting digests in path order so responses are
// byte-stable.
func digestOutputs(outputs map[string]*exec.Table) []OutputDigest {
	paths := make([]string, 0, len(outputs))
	for p := range outputs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]OutputDigest, 0, len(paths))
	for _, p := range paths {
		t := outputs[p]
		h := fnv.New64a()
		for _, line := range t.Canonical() {
			_, _ = h.Write([]byte(line))
			_, _ = h.Write([]byte{'\n'})
		}
		out = append(out, OutputDigest{Path: p, Rows: len(t.Rows), Digest: h.Sum64()})
	}
	return out
}
