// Package serve is the multi-tenant query service: a long-running
// server that accepts many concurrent scripts, fingerprints each
// query tree on arrival, and runs them all through one shared,
// concurrency-safe share.Session — so one client's scripts are served
// from common subexpressions another client's scripts materialized.
//
// This extends the paper's Definition-1 fingerprints from intra-
// script CSE to multi-query optimization across users, in the spirit
// of shared cloud query execution ("Pay One, Get Hundreds for Free")
// and dynamic folding of concurrent analytical queries (GraftDB):
//
//   - A batching-window scheduler collects arriving scripts for a
//     short window and folds the ones whose still-uncovered
//     fingerprint sets overlap into one sequential admission pass, so
//     exactly one of them materializes each shared subexpression and
//     the rest hit the cache instead of racing to rebuild it.
//     Scripts with no uncovered overlap run fully concurrently.
//   - Admission control bounds in-flight work: at most MaxInFlight
//     folded groups execute at once, at most QueueDepth requests wait
//     for dispatch (beyond it submissions fail fast with
//     ErrOverloaded), and each run carries a per-request timeout
//     through the session's context path.
//   - Every run is tenant-tagged: admitted artifacts are charged to
//     the submitting tenant, bounded by a per-tenant cache quota, and
//     per-tenant hit/miss/byte counters are published through
//     internal/obs.
//   - Shutdown drains: queued and in-flight runs finish, new
//     submissions fail with ErrShutdown.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/mqo"
	"repro/internal/obs"
	"repro/internal/obs/eventlog"
	"repro/internal/relop"
	"repro/internal/share"
	"repro/internal/stats"
)

// Errors the admission controller returns without running anything.
var (
	// ErrOverloaded reports backpressure: the dispatch queue is full.
	ErrOverloaded = errors.New("serve: queue full, try again later")
	// ErrShutdown reports a submission after Shutdown began.
	ErrShutdown = errors.New("serve: server is shutting down")
)

// ParseError wraps a script compilation failure — the client's fault,
// distinguished from execution errors for HTTP status mapping.
type ParseError struct{ Err error }

func (e *ParseError) Error() string { return e.Err.Error() }
func (e *ParseError) Unwrap() error { return e.Err }

// Config parameterizes a Server.
type Config struct {
	// Catalog and FS are the shared statistics catalog and file store
	// every tenant's scripts compile and run against (required).
	Catalog *stats.Catalog
	FS      *exec.FileStore
	// Machines is the execution partition count (required positive).
	Machines int
	// Workers bounds each run's execution worker pool (0 = per CPU).
	Workers int
	// CacheBytes bounds the shared result cache (0 = share default).
	CacheBytes int64
	// ExpectedReuse tunes the session admission formula (0 = 1).
	ExpectedReuse float64
	// Window is the batching window: arriving scripts are collected
	// for this long, then folded and dispatched together. Zero
	// dispatches each submission immediately (no cross-request
	// folding; still admission-controlled).
	Window time.Duration
	// MaxInFlight bounds how many folded groups execute concurrently
	// (0 = one per CPU).
	MaxInFlight int
	// QueueDepth bounds how many requests may await dispatch; past it
	// Submit fails fast with ErrOverloaded (0 = DefaultQueueDepth).
	QueueDepth int
	// Timeout is the per-request execution timeout, enforced through
	// the session's context path (0 = none).
	Timeout time.Duration
	// TenantCacheBytes caps each tenant's share of the result cache;
	// admissions past it are discarded and counted (0 = unlimited).
	TenantCacheBytes int64
	// MQO switches the batching window to workload-level planning:
	// each batch is merged into one AND-OR DAG and a global
	// materialization set is chosen (internal/mqo) and preadmitted
	// before the batch dispatches, so cross-script subexpressions the
	// local admission formula would reject still materialize when the
	// workload as a whole profits.
	MQO bool
	// MQOBudget bounds the chosen set's estimated artifact bytes
	// (0 = unlimited). Only meaningful with MQO.
	MQOBudget int64
	// Obs receives the server's metrics (nil = a private registry).
	Obs *obs.Registry
	// EventCap sizes the flight-recorder ring of the query event log
	// (0 = eventlog.DefaultCap). The log itself is always on: every
	// request produces one structured event.
	EventCap int
	// EventSinkPath, when non-empty, keeps the full event history (not
	// just the ring) buffered for a JSONL table at this FileStore path;
	// FlushEvents writes it through the metered store.
	EventSinkPath string
	// Analyze runs every request under EXPLAIN ANALYZE instrumentation
	// and records the plan's worst row-estimate q-error in its event.
	Analyze bool
	// FailureDump, when non-nil, receives a flight-recorder JSONL dump
	// whenever a request fails or a worker panics — the events leading
	// up to the failure, ending with the failing one.
	FailureDump io.Writer
	// Pprof mounts net/http/pprof under /debug/pprof/ on the Handler.
	Pprof bool
	// Engine selects the execution engine for every run ("" = cluster
	// default) and MemBudget its per-partition working-set bound.
	Engine    string
	MemBudget int64
}

// DefaultQueueDepth is the dispatch-queue bound used when none is
// configured.
const DefaultQueueDepth = 256

// Server is the multi-tenant query service over one shared session.
type Server struct {
	cfg    Config
	sess   *share.Session
	reg    *obs.Registry
	events *eventlog.Log
	// sem bounds concurrently executing folded groups.
	sem chan struct{}
	// dumpMu serializes flight-recorder dumps to cfg.FailureDump so
	// concurrent failures don't interleave JSONL lines.
	dumpMu sync.Mutex

	mu      sync.Mutex
	pending []*request  // guarded by mu
	timer   *time.Timer // guarded by mu
	closed  bool        // guarded by mu
	lastMQO *MQORecord  // guarded by mu
	// wg counts dispatched groups; Add happens under mu (before
	// Shutdown's Wait can start), Wait runs after closed is set.
	wg sync.WaitGroup
}

// request is one submitted script waiting for (or in) execution.
type request struct {
	tenant string
	script string
	// fps is the sorted, deduplicated identity set of the script's
	// non-leaf subexpressions — the scheduler's folding key.
	fps  []subexpr
	ctx  context.Context
	done chan struct{}
	rep  *share.RunReport
	err  error
	// Event-log facts recorded along the dispatch path: the covered /
	// uncovered subexpression split observed at fold time, the folding
	// decision, and the window's MQO choice count. Written before the
	// request's goroutine starts, read by runOne — no lock needed.
	covered   []string
	uncovered []string
	folded    bool
	groupSize int
	mqoChosen int
}

// MQORecord is the introspection record of the last batching window
// that ran workload-level planning — what GET /mqo/last returns.
type MQORecord struct {
	// Batch is how many scripts the window planned together.
	Batch  int    `json:"batch"`
	Method string `json:"method,omitempty"`
	// Keys are the chosen materialization identities in event-log
	// subexpression form (fingerprint.signature-digest).
	Keys []string `json:"keys,omitempty"`
	// Base / Total are the workload costs without and with the chosen
	// set; Bytes its estimated artifact payload under Budget.
	Base   float64 `json:"base"`
	Total  float64 `json:"total"`
	Bytes  int64   `json:"bytes"`
	Budget int64   `json:"budget,omitempty"`
	// Evals counts optimizer invocations the selection spent.
	Evals int `json:"evals"`
}

// New validates cfg and returns a started server (no listener; pair
// it with Handler for HTTP).
func New(cfg Config) (*Server, error) {
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	sess, err := share.NewSession(share.Config{
		Catalog:       cfg.Catalog,
		FS:            cfg.FS,
		Machines:      cfg.Machines,
		Workers:       cfg.Workers,
		CacheBytes:    cfg.CacheBytes,
		ExpectedReuse: cfg.ExpectedReuse,
		Obs:           cfg.Obs,
		Engine:        cfg.Engine,
		MemBudget:     cfg.MemBudget,
		Analyze:       cfg.Analyze,
	})
	if err != nil {
		return nil, err
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	events := eventlog.New(cfg.EventCap)
	if cfg.EventSinkPath != "" {
		events.AttachSink(cfg.FS, cfg.EventSinkPath)
	}
	return &Server{
		cfg:    cfg,
		sess:   sess,
		reg:    cfg.Obs,
		events: events,
		sem:    make(chan struct{}, cfg.MaxInFlight),
	}, nil
}

// Session exposes the underlying shared session (tests, stats).
func (s *Server) Session() *share.Session { return s.sess }

// Registry exposes the server's metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// EventLog exposes the query event log (flight recorder + sink).
func (s *Server) EventLog() *eventlog.Log { return s.events }

// FlushEvents writes the buffered event history through the metered
// FileStore (no-op without Config.EventSinkPath).
func (s *Server) FlushEvents() { s.events.Flush() }

// LastMQO returns the record of the last workload-planned window, or
// nil when no MQO window has run.
func (s *Server) LastMQO() *MQORecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lastMQO == nil {
		return nil
	}
	rec := *s.lastMQO
	rec.Keys = append([]string(nil), s.lastMQO.Keys...)
	return &rec
}

// Submit runs one script on behalf of tenant and blocks until it
// finishes, is rejected, or times out. Safe for concurrent use; this
// is the line clients hold while the scheduler batches, folds, and
// admission-controls their work.
func (s *Server) Submit(ctx context.Context, tenant, script string) (*share.RunReport, error) {
	m, err := logical.BuildSource(script, s.cfg.Catalog)
	if err != nil {
		s.reg.Counter("serve.parse_errors").Add(1)
		return nil, &ParseError{Err: err}
	}
	req := &request{
		tenant: tenant,
		script: script,
		fps:    fingerprintSet(m),
		ctx:    ctx,
		done:   make(chan struct{}),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrShutdown
	}
	if len(s.pending) >= s.cfg.QueueDepth {
		s.mu.Unlock()
		s.reg.Counter("serve.rejected").Add(1)
		return nil, ErrOverloaded
	}
	s.pending = append(s.pending, req)
	if s.cfg.Window <= 0 {
		s.flushLocked()
	} else if s.timer == nil {
		s.timer = time.AfterFunc(s.cfg.Window, s.flush)
	}
	s.mu.Unlock()

	<-req.done
	return req.rep, req.err
}

// flush dispatches everything collected during the batching window.
func (s *Server) flush() {
	s.mu.Lock()
	s.flushLocked()
	s.mu.Unlock()
}

// flushLocked folds the pending batch and dispatches its groups.
// Caller holds s.mu; the WaitGroup Add under the same lock is what
// keeps dispatch ordered before Shutdown's Wait.
func (s *Server) flushLocked() {
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	batch := s.pending
	s.pending = nil
	if len(batch) == 0 {
		return
	}
	if s.cfg.MQO {
		// Workload planning runs optimizer evaluations; move it off
		// the lock. The batch's own wg slot keeps Shutdown's Wait from
		// completing before the group Adds inside dispatchMQO happen.
		s.wg.Add(1)
		go s.dispatchMQO(batch)
		return
	}
	s.dispatchGroups(batch)
}

// dispatchGroups folds a batch and launches its groups. Called with
// s.mu held (plain mode) or from a wg-counted goroutine (MQO mode) —
// either ordering keeps every Add ahead of Shutdown's Wait.
func (s *Server) dispatchGroups(batch []*request) {
	groups := foldGroups(batch, s.sess.Cache())
	s.reg.Counter("serve.batches").Add(1)
	s.reg.Counter("serve.groups").Add(int64(len(groups)))
	for _, g := range groups {
		if len(g) > 1 {
			s.reg.Counter("serve.folded").Add(int64(len(g) - 1))
		}
		// Record the folding decision for the event log: the group
		// leader dispatched, everyone behind it folded.
		for i, req := range g {
			req.folded = i > 0
			req.groupSize = len(g)
		}
		s.wg.Add(1)
		go s.runGroup(g)
	}
}

// dispatchMQO plans a batch as one workload before dispatching it:
// the scripts' memos merge into an AND-OR DAG, a global
// materialization set is selected under the configured budget, and
// the chosen keys are preadmitted — builder runs force-materialize
// them (owner share.MQOOwner, outside tenant quotas) and every other
// consumer reads the artifacts from the cache. Folding then groups
// the scripts that share uncovered subexpressions so exactly one run
// builds each artifact. Planning failures degrade to plain dispatch:
// the batch still runs, just without a workload-level set.
func (s *Server) dispatchMQO(batch []*request) {
	defer s.wg.Done()
	s.reg.Counter("serve.mqo_batches").Add(1)
	scripts := make([]mqo.Script, len(batch))
	for i, req := range batch {
		scripts[i] = mqo.Script{Name: fmt.Sprintf("q%d", i), Src: req.script}
	}
	if dag, err := mqo.BuildDAG(scripts, s.cfg.Catalog); err == nil && len(dag.Candidates) > 0 {
		ev := mqo.NewEvaluator(dag, s.sess.Options())
		sel, err := mqo.Select(ev, mqo.Config{
			Budget:        s.cfg.MQOBudget,
			ExpectedReuse: s.cfg.ExpectedReuse,
		})
		if err == nil {
			rec := &MQORecord{
				Batch:  len(batch),
				Method: sel.Method,
				Base:   sel.Base,
				Total:  sel.Total,
				Bytes:  sel.Bytes,
				Budget: sel.Budget,
				Evals:  sel.Evals,
			}
			for _, k := range sel.Keys {
				rec.Keys = append(rec.Keys, eventlog.SubexprID(k.FP, k.Sig))
			}
			s.mu.Lock()
			s.lastMQO = rec
			s.mu.Unlock()
			for _, req := range batch {
				req.mqoChosen = len(sel.Keys)
			}
		}
		if err == nil && len(sel.Keys) > 0 {
			s.sess.Preadmit(sel.Keys)
			s.reg.Counter("serve.mqo_chosen").Add(int64(len(sel.Keys)))
			s.reg.Counter("serve.mqo_chosen_bytes").Add(sel.Bytes)
		}
	}
	s.dispatchGroups(batch)
}

// runGroup executes one folded group under the in-flight bound. The
// group's requests run sequentially — that is the point of folding:
// the first run materializes and admits the shared subexpressions,
// the rest are served from the cache instead of racing to rebuild
// them.
func (s *Server) runGroup(g []*request) {
	defer s.wg.Done()
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	for _, req := range g {
		s.runOne(req)
	}
}

// runOne executes a single request through the shared session,
// publishes its per-tenant accounting, and records its event. A panic
// in the session or executor is caught here — it becomes the
// request's error and a flight-recorder dump, not a dead server.
func (s *Server) runOne(req *request) {
	defer close(req.done)
	ctx := req.ctx
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	start := time.Now()
	func() {
		defer func() {
			if r := recover(); r != nil {
				req.rep, req.err = nil, fmt.Errorf("serve: run panicked: %v", r)
				s.reg.Counter("serve.panics").Add(1)
			}
		}()
		req.rep, req.err = s.sess.RunContext(ctx, req.script, share.RunOpts{
			Tenant:           req.tenant,
			TenantCacheBytes: s.cfg.TenantCacheBytes,
		})
	}()
	latency := time.Since(start).Microseconds()
	s.reg.Counter("serve.requests").Add(1)
	s.reg.Histogram("serve.latency_us").Observe(latency)
	pfx := "serve.tenant." + req.tenant + "."
	s.reg.Counter(pfx + "requests").Add(1)
	if req.err != nil {
		s.reg.Counter("serve.errors").Add(1)
		s.reg.Counter(pfx + "errors").Add(1)
		s.recordEvent(req, latency)
		return
	}
	s.reg.Counter(pfx + "cache_hits").Add(int64(req.rep.CacheHits))
	s.reg.Counter(pfx + "cache_misses").Add(int64(req.rep.CacheMisses))
	s.reg.Counter(pfx + "admitted_bytes").Add(req.rep.AdmittedBytes)
	s.reg.Counter(pfx + "quota_rejected").Add(int64(req.rep.QuotaRejected))
	s.reg.Gauge(pfx + "cache_bytes").Set(s.sess.Cache().OwnerBytes(req.tenant))
	s.recordEvent(req, latency)
}

// recordEvent submits the request's structured event to the query
// event log and, on failure, dumps the flight recorder so the events
// leading up to the failure (ending with it) are preserved.
func (s *Server) recordEvent(req *request, latencyUs int64) {
	ev := eventlog.Event{
		Tenant:    req.tenant,
		Script:    eventlog.ScriptID(req.script),
		Engine:    s.cfg.Engine,
		Covered:   req.covered,
		Uncovered: req.uncovered,
		Folded:    req.folded,
		GroupSize: req.groupSize,
		MQOChosen: req.mqoChosen,
		LatencyUs: latencyUs,
	}
	if req.err != nil {
		ev.Error = req.err.Error()
	} else {
		ev.CacheHits = req.rep.CacheHits
		ev.CacheMisses = req.rep.CacheMisses
		ev.Admitted = req.rep.Admitted
		ev.AdmittedBytes = req.rep.AdmittedBytes
		ev.QuotaRejected = req.rep.QuotaRejected
		ev.Evicted = req.rep.Evicted
		ev.Spills = req.rep.Metrics.Spills
		ev.QErrMax = req.rep.MaxQ
		ev.Outputs = eventlog.DigestOutputs(req.rep.Outputs)
	}
	s.events.Submit(ev)
	if req.err != nil && s.cfg.FailureDump != nil {
		s.dumpMu.Lock()
		fmt.Fprintf(s.cfg.FailureDump, "# flight recorder: request for tenant %q failed: %v\n", req.tenant, req.err)
		s.events.DumpRecent(s.cfg.FailureDump, 0)
		s.dumpMu.Unlock()
	}
}

// Shutdown stops accepting submissions, dispatches whatever the
// batching window still holds, and waits for every in-flight run to
// drain (or ctx to expire, whichever is first).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.flushLocked()
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown drain: %w", ctx.Err())
	}
}

// subexpr identifies one shareable subexpression: its Definition-1
// fingerprint plus the canonical signature that disambiguates the
// fingerprint's kind-XOR collisions. Folding on the pair means two
// scripts unite only when they contain the *same* expression, not
// merely expressions built from the same operator kinds.
type subexpr struct {
	fp  uint64
	sig string
}

// fingerprintSet collects the sorted, deduplicated subexpression
// identities of a script's non-leaf memo groups. Leaf extracts are
// excluded: a bare scan is never admitted as a cache artifact, so two
// scripts that merely read the same file have nothing to fold over.
func fingerprintSet(m *memo.Memo) []subexpr {
	fps := core.Fingerprints(m)
	sigs := core.CanonicalSignatures(m)
	var out []subexpr
	for _, g := range m.Groups() {
		if len(g.Exprs) == 0 {
			continue
		}
		if _, leaf := g.Exprs[0].Op.(*relop.Extract); leaf {
			continue
		}
		out = append(out, subexpr{fp: fps[g.ID], sig: sigs[g.ID]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].sig != out[j].sig {
			return out[i].sig < out[j].sig
		}
		return out[i].fp < out[j].fp
	})
	// Dedup in place.
	n := 0
	for i, se := range out {
		if i == 0 || se != out[n-1] {
			out[n] = se
			n++
		}
	}
	return out[:n]
}

// foldGroups partitions a batch into folded groups: requests whose
// *uncovered* subexpression sets overlap (shared expressions no valid
// cache entry serves yet) are united and will run sequentially;
// requests with nothing uncovered in common run concurrently.
// Covered subexpressions don't fold — a cache hit is already free to
// share concurrently. Group order and intra-group order follow
// arrival order, so folding is deterministic for a given batch.
func foldGroups(batch []*request, cache *share.Cache) [][]*request {
	uncovered := make([][]subexpr, len(batch))
	for i, req := range batch {
		for _, se := range req.fps {
			if cache.HoldsSig(se.fp, se.sig) {
				req.covered = append(req.covered, eventlog.SubexprID(se.fp, se.sig))
			} else {
				uncovered[i] = append(uncovered[i], se)
				req.uncovered = append(req.uncovered, eventlog.SubexprID(se.fp, se.sig))
			}
		}
	}
	// Union-find over batch indexes.
	parent := make([]int, len(batch))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	for i := 0; i < len(batch); i++ {
		for j := i + 1; j < len(batch); j++ {
			if find(i) != find(j) && overlaps(uncovered[i], uncovered[j]) {
				parent[find(j)] = find(i)
			}
		}
	}
	// Gather components in arrival order.
	index := map[int]int{}
	var groups [][]*request
	for i, req := range batch {
		root := find(i)
		gi, ok := index[root]
		if !ok {
			gi = len(groups)
			index[root] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], req)
	}
	return groups
}

// overlaps reports whether two sorted subexpression sets intersect.
func overlaps(a, b []subexpr) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i].sig < b[j].sig || (a[i].sig == b[j].sig && a[i].fp < b[j].fp):
			i++
		default:
			j++
		}
	}
	return false
}
