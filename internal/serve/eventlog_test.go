package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs/eventlog"
)

// TestEventLogPerRequest submits a small sequential workload and
// checks the event stream records one event per request with the
// sharing facts the responses report.
func TestEventLogPerRequest(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx := context.Background()

	repA, err := s.Submit(ctx, "alice", scriptA)
	if err != nil {
		t.Fatal(err)
	}
	repB, err := s.Submit(ctx, "bob", scriptB)
	if err != nil {
		t.Fatal(err)
	}
	events := s.EventLog().Events()
	if len(events) != 2 {
		t.Fatalf("%d events, want 2", len(events))
	}
	evA, evB := events[0], events[1]
	if evA.Tenant != "alice" || evB.Tenant != "bob" {
		t.Fatalf("tenants %q,%q", evA.Tenant, evB.Tenant)
	}
	if evA.Script != eventlog.ScriptID(scriptA) || evB.Script != eventlog.ScriptID(scriptB) {
		t.Error("script digests do not match the submitted sources")
	}
	if evA.CacheHits != repA.CacheHits || evA.CacheMisses != repA.CacheMisses ||
		evA.Admitted != repA.Admitted || evA.AdmittedBytes != repA.AdmittedBytes {
		t.Errorf("alice event %+v diverges from report %+v", evA, repA)
	}
	if evB.CacheHits != repB.CacheHits || repB.CacheHits == 0 {
		t.Errorf("bob's event should record the cross-client hits: ev=%d rep=%d",
			evB.CacheHits, repB.CacheHits)
	}
	// Cold alice saw the shared aggregation uncovered; warm bob saw it
	// covered.
	if len(evA.Uncovered) == 0 || len(evA.Covered) != 0 {
		t.Errorf("cold request covered=%v uncovered=%v", evA.Covered, evA.Uncovered)
	}
	if len(evB.Covered) == 0 {
		t.Errorf("warm request recorded no covered subexpressions: %+v", evB)
	}
	if evA.GroupSize != 1 || evA.Folded || evB.Folded {
		t.Errorf("sequential dispatch recorded folding: %+v %+v", evA, evB)
	}
	// Output digests match the response-side digests.
	want := digestOutputs(repA.Outputs)
	if len(evA.Outputs) != len(want) {
		t.Fatalf("event has %d outputs, want %d", len(evA.Outputs), len(want))
	}
	for i := range want {
		if evA.Outputs[i].Path != want[i].Path || evA.Outputs[i].Rows != want[i].Rows ||
			evA.Outputs[i].Digest != fmt.Sprintf("%016x", want[i].Digest) {
			t.Errorf("output %d: event %+v vs response %+v", i, evA.Outputs[i], want[i])
		}
	}
	if evA.LatencyUs <= 0 || evA.TimeUs <= 0 {
		t.Errorf("event timing not stamped: %+v", evA)
	}
}

// TestEventLogFailure checks that a failed request still produces an
// event (with the error recorded) and triggers a flight-recorder dump
// whose last line is the failing event.
func TestEventLogFailure(t *testing.T) {
	var dump bytes.Buffer
	s := newTestServer(t, Config{FailureDump: &dump})
	if _, err := s.Submit(context.Background(), "alice", scriptA); err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Submit(canceled, "bob", scriptB); err == nil {
		t.Fatal("canceled submission succeeded")
	}
	events := s.EventLog().Events()
	if len(events) != 2 {
		t.Fatalf("%d events, want 2 (success + failure)", len(events))
	}
	fail := events[1]
	if fail.Error == "" || fail.Tenant != "bob" {
		t.Fatalf("failure event not recorded: %+v", fail)
	}
	if dump.Len() == 0 {
		t.Fatal("no flight-recorder dump on failure")
	}
	lines := strings.Split(strings.TrimSpace(dump.String()), "\n")
	// First line is the header comment; the rest must be the ring as
	// well-formed JSONL ending with the failing event.
	if !strings.HasPrefix(lines[0], "#") {
		t.Errorf("dump header missing: %q", lines[0])
	}
	evs, err := eventlog.ReadJSONL(strings.NewReader(strings.Join(lines[1:], "\n")))
	if err != nil {
		t.Fatalf("dump is not JSONL: %v", err)
	}
	if len(evs) != 2 || evs[len(evs)-1].Error == "" {
		t.Errorf("dump should end with the failing event: %+v", evs)
	}
}

// TestEventLogAdditivity is the registry-vs-events invariant: summing
// per-event fields over the whole stream reproduces the registry's
// counters exactly — both sides are fed from the same RunReports.
func TestEventLogAdditivity(t *testing.T) {
	s := newTestServer(t, Config{Window: 2 * time.Millisecond, EventCap: 1024})
	var wg sync.WaitGroup
	scripts := []string{scriptA, scriptB, scriptC}
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", i%3)
			if _, err := s.Submit(context.Background(), tenant, scripts[i%3]); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	sum := eventlog.Summarize(s.EventLog().Events())
	snap := s.Registry().Snapshot()
	if int64(sum.Events) != snap.Counters["serve.requests"] {
		t.Errorf("events=%d vs serve.requests=%d", sum.Events, snap.Counters["serve.requests"])
	}
	pairs := []struct {
		name  string
		total int64
	}{
		{"share.cache_hits", sum.CacheHits},
		{"share.cache_misses", sum.CacheMisses},
		{"share.admitted", sum.Admitted},
		{"share.admitted_bytes", sum.AdmittedBytes},
		{"share.quota_rejected", sum.QuotaRejected},
		{"share.cache_evictions", sum.Evicted},
	}
	for _, p := range pairs {
		if snap.Counters[p.name] != p.total {
			t.Errorf("%s: registry=%d events=%d", p.name, snap.Counters[p.name], p.total)
		}
	}
	if got := snap.Counters["serve.folded"]; got != sum.Folded {
		t.Errorf("serve.folded: registry=%d events=%d", got, sum.Folded)
	}
}

// TestEventLogConcurrency hammers the service from many goroutines
// under -race: the flight-recorder ring stays bounded, the full sink
// history is well-formed JSONL, and event totals stay additive.
func TestEventLogConcurrency(t *testing.T) {
	const workers, perWorker = 8, 6
	s := newTestServer(t, Config{
		Window:        time.Millisecond,
		EventCap:      16, // force ring wraparound
		EventSinkPath: "/sys/events.jsonl",
	})
	scripts := []string{scriptA, scriptB, scriptC}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := s.Submit(context.Background(), fmt.Sprintf("t%d", w), scripts[(w+i)%3]); err != nil {
					t.Errorf("worker %d submit %d: %v", w, i, err)
				}
				if i%2 == 0 {
					s.EventLog().Recent("", 4)
				}
			}
		}(w)
	}
	wg.Wait()
	log := s.EventLog()
	if got := len(log.Events()); got > log.Cap() {
		t.Fatalf("ring grew to %d, capacity %d", got, log.Cap())
	}
	if log.Len() != workers*perWorker {
		t.Fatalf("submitted %d events, want %d", log.Len(), workers*perWorker)
	}
	s.FlushEvents()
	evs, err := eventlog.ReadJSONL(bytes.NewReader(log.SinkJSONL()))
	if err != nil {
		t.Fatalf("sink history malformed: %v", err)
	}
	if len(evs) != workers*perWorker {
		t.Fatalf("sink holds %d events, want %d", len(evs), workers*perWorker)
	}
	sum := eventlog.Summarize(evs)
	snap := s.Registry().Snapshot()
	if sum.CacheHits != snap.Counters["share.cache_hits"] {
		t.Errorf("hits: events=%d registry=%d", sum.CacheHits, snap.Counters["share.cache_hits"])
	}
	if sum.Evicted != snap.Counters["share.cache_evictions"] {
		t.Errorf("evictions: events=%d registry=%d", sum.Evicted, snap.Counters["share.cache_evictions"])
	}
}

// TestEventLogWidthDeterminism runs the same sequential workload at
// Workers=1 and Workers=8 and requires byte-identical canonical event
// streams — events are a pure function of the workload once timing is
// zeroed.
func TestEventLogWidthDeterminism(t *testing.T) {
	run := func(workers int) []byte {
		cat, fs := testEnv(t)
		s := newTestServer(t, Config{Catalog: cat, FS: fs, Workers: workers})
		for _, src := range []string{scriptA, scriptB, scriptC, scriptA} {
			if _, err := s.Submit(context.Background(), "alice", src); err != nil {
				t.Fatal(err)
			}
		}
		return eventlog.CanonicalJSONL(s.EventLog().Events())
	}
	narrow, wide := run(1), run(8)
	if !bytes.Equal(narrow, wide) {
		t.Errorf("canonical event streams differ across worker widths:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", narrow, wide)
	}
}

// TestIntrospectionEndpoints covers /events, /cache, and /mqo/last.
func TestIntrospectionEndpoints(t *testing.T) {
	s := newTestServer(t, Config{MQO: true, Window: 2 * time.Millisecond})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	for i, src := range []string{scriptA, scriptB} {
		wg.Add(1)
		go func(i int, src string) {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodPost, srv.URL+"/run", strings.NewReader(src))
			req.Header.Set(TenantHeader, fmt.Sprintf("t%d", i))
			resp, err := srv.Client().Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("run %d: status %d", i, resp.StatusCode)
			}
		}(i, src)
	}
	wg.Wait()

	getJSON := func(path string, out any) int {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("%s: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	var events []eventlog.Event
	if code := getJSON("/events", &events); code != http.StatusOK {
		t.Fatalf("/events: status %d", code)
	}
	if len(events) != 2 {
		t.Fatalf("/events returned %d events, want 2", len(events))
	}
	var filtered []eventlog.Event
	getJSON("/events?tenant=t0&n=5", &filtered)
	if len(filtered) != 1 || filtered[0].Tenant != "t0" {
		t.Errorf("tenant filter returned %+v", filtered)
	}
	var bad struct{}
	if code := getJSON("/events?n=x", &bad); code != http.StatusBadRequest {
		t.Errorf("/events?n=x: status %d, want 400", code)
	}

	var view struct {
		Stats struct {
			Entries int `json:"Entries"`
		} `json:"stats"`
		Entries []struct {
			Path    string  `json:"path"`
			Owner   string  `json:"owner"`
			Bytes   int64   `json:"bytes"`
			Benefit float64 `json:"benefit"`
		} `json:"entries"`
		OwnerBytes map[string]int64 `json:"owner_bytes"`
	}
	if code := getJSON("/cache", &view); code != http.StatusOK {
		t.Fatalf("/cache: status %d", code)
	}
	if len(view.Entries) == 0 || view.Stats.Entries != len(view.Entries) {
		t.Errorf("/cache view inconsistent: %+v", view)
	}
	var ownerTotal int64
	for _, b := range view.OwnerBytes {
		ownerTotal += b
	}
	var entryTotal int64
	for _, e := range view.Entries {
		entryTotal += e.Bytes
	}
	if ownerTotal != entryTotal {
		t.Errorf("owner bytes %d != entry bytes %d", ownerTotal, entryTotal)
	}

	var rec MQORecord
	if code := getJSON("/mqo/last", &rec); code != http.StatusOK {
		t.Fatalf("/mqo/last: status %d", code)
	}
	if rec.Batch <= 0 {
		t.Errorf("MQO record has no batch: %+v", rec)
	}

	// A server that never ran MQO 404s.
	s2 := newTestServer(t, Config{})
	srv2 := httptest.NewServer(s2.Handler())
	defer srv2.Close()
	resp, err := srv2.Client().Get(srv2.URL + "/mqo/last")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/mqo/last without MQO: status %d, want 404", resp.StatusCode)
	}
}

// TestPprofGated checks the pprof mount is behind the flag.
func TestPprofGated(t *testing.T) {
	on := newTestServer(t, Config{Pprof: true})
	off := newTestServer(t, Config{})
	srvOn, srvOff := httptest.NewServer(on.Handler()), httptest.NewServer(off.Handler())
	defer srvOn.Close()
	defer srvOff.Close()
	resp, err := srvOn.Client().Get(srvOn.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof enabled: status %d, want 200", resp.StatusCode)
	}
	resp, err = srvOff.Client().Get(srvOff.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("pprof reachable without the flag")
	}
}
