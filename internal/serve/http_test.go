package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/share"
)

// TestServeHTTP drives the service end to end over its HTTP surface:
// alice warms the cache, bob's response reports cross-client hits, and
// bob's output digest matches a direct session run of the same script.
func TestServeHTTP(t *testing.T) {
	s := newTestServer(t, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(tenant, script string) (*http.Response, RunResponse) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/run", strings.NewReader(script))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(TenantHeader, tenant)
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rr RunResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
				t.Fatal(err)
			}
		}
		return resp, rr
	}

	resp, alice := post("alice", scriptA)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alice: status %d", resp.StatusCode)
	}
	if alice.Tenant != "alice" || alice.Admitted == 0 {
		t.Fatalf("alice response %+v", alice)
	}
	resp, bob := post("bob", scriptB)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bob: status %d", resp.StatusCode)
	}
	if bob.CacheHits == 0 {
		t.Fatalf("bob's HTTP run not served from alice's artifacts: %+v", bob)
	}

	// Bob's digest must match a direct session run of the same script.
	cat, fs := testEnv(t)
	sess, err := share.NewSession(share.Config{Catalog: cat, FS: fs, Machines: 8})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Run(scriptB)
	if err != nil {
		t.Fatal(err)
	}
	want := digestOutputs(rep.Outputs)
	if len(bob.Outputs) != len(want) {
		t.Fatalf("bob produced %d outputs, want %d", len(bob.Outputs), len(want))
	}
	for i := range want {
		if bob.Outputs[i] != want[i] {
			t.Errorf("output %d = %+v, want %+v", i, bob.Outputs[i], want[i])
		}
	}

	// A garbage script is the client's fault: 400.
	if resp, _ := post("alice", "NOT A SCRIPT ;;;"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage script: status %d, want 400", resp.StatusCode)
	}

	// The metrics endpoint serves Prometheus text exposition by
	// default, with the tenant counters folded into labels...
	get := func(path string) (string, string) {
		mresp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := mresp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		mresp.Body.Close()
		return sb.String(), mresp.Header.Get("Content-Type")
	}
	body, ctype := get("/metrics")
	if ctype != obs.PromContentType {
		t.Errorf("metrics content type %q, want %q", ctype, obs.PromContentType)
	}
	if !strings.Contains(body, `scope_serve_tenant_cache_hits{tenant="bob"}`) {
		t.Errorf("prometheus exposition missing tenant series:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE scope_serve_latency_us histogram") ||
		!strings.Contains(body, `scope_serve_latency_us_bucket{le="+Inf"}`) {
		t.Errorf("prometheus exposition missing histogram series:\n%s", body)
	}
	// ...and keeps the legacy snapshot under ?format=snapshot.
	body, ctype = get("/metrics?format=snapshot")
	if !strings.HasPrefix(ctype, "text/plain") || strings.Contains(ctype, "version=") {
		t.Errorf("snapshot content type %q, want plain text", ctype)
	}
	if !strings.Contains(body, "serve.tenant.bob.cache_hits") {
		t.Error("legacy snapshot missing tenant counters")
	}

	// Health and shutdown.
	hresp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", hresp, err)
	}
	hresp.Body.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if resp, _ := post("alice", scriptA); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown run: status %d, want 503", resp.StatusCode)
	}
}
