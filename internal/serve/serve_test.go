package serve

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/relop"
	"repro/internal/share"
	"repro/internal/stats"
)

// The workload: three scripts sharing one aggregation subexpression
// over test.log, each with a distinct consumer set and output.
const (
	scriptA = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) as S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) as S2 FROM R GROUP BY B,C;
OUTPUT R1 TO "a1.out" ORDER BY A, B;
OUTPUT R2 TO "a2.out" ORDER BY B, C;
`
	scriptB = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R3 = SELECT A,C,Sum(S) as S3 FROM R GROUP BY A,C;
OUTPUT R3 TO "b3.out" ORDER BY A, C;
`
	scriptC = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R4 = SELECT B,Sum(S) as S4 FROM R GROUP BY B;
OUTPUT R4 TO "c4.out" ORDER BY B;
`
)

func testEnv(t *testing.T) (*stats.Catalog, *exec.FileStore) {
	t.Helper()
	cat := stats.NewCatalog()
	cat.Put("test.log", &stats.TableStats{Rows: 2_000_000_000, Columns: map[string]stats.ColumnStats{
		"A": {Distinct: 100, AvgBytes: 8},
		"B": {Distinct: 50, AvgBytes: 8},
		"C": {Distinct: 200, AvgBytes: 8},
		"D": {Distinct: 1 << 40, AvgBytes: 8},
	}})
	fs := exec.NewFileStore()
	schema := relop.Schema{
		{Name: "A", Type: relop.TInt}, {Name: "B", Type: relop.TInt},
		{Name: "C", Type: relop.TInt}, {Name: "D", Type: relop.TInt},
	}
	tab := &exec.Table{Schema: schema}
	for i := int64(0); i < 400; i++ {
		tab.Rows = append(tab.Rows, relop.Row{
			relop.IntVal(i % 7), relop.IntVal(i % 5),
			relop.IntVal(i % 11), relop.IntVal(i * 13),
		})
	}
	fs.Put("test.log", tab)
	return cat, fs
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Catalog == nil {
		cfg.Catalog, cfg.FS = testEnv(t)
	}
	if cfg.Machines == 0 {
		cfg.Machines = 8
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sameRows(t *testing.T, label string, got, want *exec.Table) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: missing table (got=%v want=%v)", label, got != nil, want != nil)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows, want %d", label, len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		if !reflect.DeepEqual(got.Rows[i], want.Rows[i]) {
			t.Fatalf("%s: row %d = %v, want %v", label, i, got.Rows[i], want.Rows[i])
		}
	}
}

// coldRefs runs each script cold in its own fresh session and returns
// the reference outputs — the bit-identity baseline for everything the
// server produces.
func coldRefs(t *testing.T, scripts []struct{ src, out string }) []*exec.Table {
	t.Helper()
	refs := make([]*exec.Table, len(scripts))
	for i, sc := range scripts {
		cat, fs := testEnv(t)
		sess, err := share.NewSession(share.Config{Catalog: cat, FS: fs, Machines: 8, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sess.Run(sc.src)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = rep.Outputs[sc.out]
	}
	return refs
}

// TestServeConcurrentClients is the tentpole e2e: many concurrent
// clients (distinct tenants) hammer one server through the batching
// scheduler, and every single response is bit-identical to a cold
// sequential run of the same script — while the warm rounds are
// served from subexpressions other clients materialized. The check.sh
// serve race leg runs this under -race.
func TestServeConcurrentClients(t *testing.T) {
	scripts := []struct{ src, out string }{
		{scriptA, "a1.out"},
		{scriptB, "b3.out"},
		{scriptC, "c4.out"},
	}
	refs := coldRefs(t, scripts)

	s := newTestServer(t, Config{
		Workers:     2,
		Window:      5 * time.Millisecond,
		MaxInFlight: 4,
	})

	const rounds = 4
	clients := rounds * len(scripts)
	var wg sync.WaitGroup
	reports := make([]*share.RunReport, clients)
	errs := make([]error, clients)
	for r := 0; r < rounds; r++ {
		for i := range scripts {
			wg.Add(1)
			go func(slot, i int) {
				defer wg.Done()
				reports[slot], errs[slot] = s.Submit(context.Background(),
					fmt.Sprintf("tenant-%d", i), scripts[i].src)
			}(r*len(scripts)+i, i)
		}
	}
	wg.Wait()

	hits := 0
	for slot, rep := range reports {
		if errs[slot] != nil {
			t.Fatalf("client %d: %v", slot, errs[slot])
		}
		i := slot % len(scripts)
		sameRows(t, fmt.Sprintf("client %d %s", slot, scripts[i].out),
			rep.Outputs[scripts[i].out], refs[i])
		hits += rep.CacheHits
	}
	if hits == 0 {
		t.Error("no client was served from another client's subexpressions")
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := s.Registry().Snapshot()
	if got := snap.Counters["serve.requests"]; got != int64(clients) {
		t.Errorf("served %d requests, want %d", got, clients)
	}
}

// TestServeCrossTenantSharing pins down the cross-client direction:
// tenant alice materializes the shared aggregation, tenant bob's
// different script is then served from it — bob hits without ever
// having admitted anything.
func TestServeCrossTenantSharing(t *testing.T) {
	s := newTestServer(t, Config{})
	alice, err := s.Submit(context.Background(), "alice", scriptA)
	if err != nil {
		t.Fatal(err)
	}
	if alice.Admitted == 0 {
		t.Fatalf("alice admitted nothing: %+v", alice)
	}
	bob, err := s.Submit(context.Background(), "bob", scriptB)
	if err != nil {
		t.Fatal(err)
	}
	if bob.CacheHits == 0 {
		t.Fatalf("bob not served from alice's artifacts: %+v", bob)
	}
	if got := s.Session().Cache().OwnerBytes("bob"); got != 0 {
		t.Errorf("bob charged %d bytes for alice's artifacts", got)
	}
	snap := s.Registry().Snapshot()
	if snap.Counters["serve.tenant.bob.cache_hits"] == 0 {
		t.Error("bob's hits not published to his tenant counters")
	}
	if snap.Gauges["serve.tenant.alice.cache_bytes"] != alice.AdmittedBytes {
		t.Errorf("alice's cache_bytes gauge %d, admitted %d",
			snap.Gauges["serve.tenant.alice.cache_bytes"], alice.AdmittedBytes)
	}
}

// TestFoldGroups: cold scripts sharing an uncovered subexpression fold
// into one group (in arrival order); once the cache covers the shared
// fingerprints, the same scripts schedule concurrently.
func TestFoldGroups(t *testing.T) {
	cat, fs := testEnv(t)
	mkReq := func(src string) *request {
		m, err := logical.BuildSource(src, cat)
		if err != nil {
			t.Fatal(err)
		}
		return &request{script: src, fps: fingerprintSet(m)}
	}
	a, b, c := mkReq(scriptA), mkReq(scriptB), mkReq(scriptC)
	if len(a.fps) == 0 {
		t.Fatal("script A fingerprinted to nothing")
	}

	sess, err := share.NewSession(share.Config{Catalog: cat, FS: fs, Machines: 8})
	if err != nil {
		t.Fatal(err)
	}
	cold := foldGroups([]*request{a, b, c}, sess.Cache())
	if len(cold) != 1 || len(cold[0]) != 3 {
		t.Fatalf("cold overlapping batch folded into %d groups, want 1 of 3", len(cold))
	}
	if cold[0][0] != a || cold[0][1] != b || cold[0][2] != c {
		t.Error("folded group does not preserve arrival order")
	}

	// Warm the cache: the shared aggregation is now covered, so the
	// same batch has nothing uncovered in common and stays unfolded.
	if _, err := sess.Run(scriptA); err != nil {
		t.Fatal(err)
	}
	warm := foldGroups([]*request{a, b, c}, sess.Cache())
	if len(warm) != 3 {
		t.Fatalf("warm batch folded into %d groups, want 3 concurrent", len(warm))
	}
}

// TestServeBackpressure: a full dispatch queue rejects fast with
// ErrOverloaded instead of queueing without bound.
func TestServeBackpressure(t *testing.T) {
	s := newTestServer(t, Config{
		Window:     time.Hour, // nothing dispatches until Shutdown
		QueueDepth: 1,
	})
	first := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), "t0", scriptA)
		first <- err
	}()
	// Wait until the first request occupies the queue.
	for {
		s.mu.Lock()
		n := len(s.pending)
		s.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(context.Background(), "t1", scriptB); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-queue submit returned %v, want ErrOverloaded", err)
	}
	// Shutdown dispatches the held batch; the queued client completes.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-first; err != nil {
		t.Fatalf("queued request failed after drain: %v", err)
	}
	if _, err := s.Submit(context.Background(), "t2", scriptC); !errors.Is(err, ErrShutdown) {
		t.Fatalf("post-shutdown submit returned %v, want ErrShutdown", err)
	}
}

// TestServeTimeout: the per-request timeout propagates through the
// session's context path and surfaces as a deadline error.
func TestServeTimeout(t *testing.T) {
	s := newTestServer(t, Config{Timeout: time.Nanosecond})
	if _, err := s.Submit(context.Background(), "t0", scriptA); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline returned %v, want DeadlineExceeded", err)
	}
	snap := s.Registry().Snapshot()
	if snap.Counters["serve.errors"] == 0 || snap.Counters["serve.tenant.t0.errors"] == 0 {
		t.Error("timeout not counted as a serve error")
	}
}

// TestServeParseError: an uncompilable script is the client's fault
// and never reaches the scheduler.
func TestServeParseError(t *testing.T) {
	s := newTestServer(t, Config{})
	_, err := s.Submit(context.Background(), "t0", "NOT A SCRIPT ;;;")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("garbage script returned %v, want ParseError", err)
	}
	if got := s.Registry().Snapshot().Counters["serve.requests"]; got != 0 {
		t.Errorf("parse failure reached the scheduler: %d requests", got)
	}
}

// TestServeShutdownDrains: Shutdown completes in-flight work before
// returning, and an expired drain deadline is reported.
func TestServeShutdownDrains(t *testing.T) {
	s := newTestServer(t, Config{Window: 50 * time.Millisecond})
	var wg sync.WaitGroup
	results := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, results[i] = s.Submit(context.Background(), "t0", scriptA)
		}(i)
	}
	// Let the submissions enqueue, then shut down before the window
	// fires: Shutdown must flush and drain them.
	for {
		s.mu.Lock()
		n := len(s.pending)
		s.mu.Unlock()
		if n == 3 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Errorf("in-flight request %d dropped by shutdown: %v", i, err)
		}
	}
}

// TestServeMQOBatch: with workload-level planning on, a batch of
// scripts that each consume the shared aggregation only once — so
// within-script CSE never spools it and the local admission path
// never even sees it — still materializes it exactly once, owned by
// the MQO planner rather than any tenant, and every response stays
// bit-identical to a cold run. The check.sh mqo race leg runs this
// under -race.
func TestServeMQOBatch(t *testing.T) {
	scripts := []struct{ src, out string }{
		{scriptB, "b3.out"},
		{scriptC, "c4.out"},
	}
	refs := coldRefs(t, scripts)

	s := newTestServer(t, Config{
		Window:           100 * time.Millisecond,
		MQO:              true,
		TenantCacheBytes: 1, // tenants can admit nothing themselves
	})
	var wg sync.WaitGroup
	reps := make([]*share.RunReport, len(scripts))
	errs := make([]error, len(scripts))
	for i := range scripts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", i)
			reps[i], errs[i] = s.Submit(context.Background(), tenant, scripts[i].src)
		}(i)
	}
	wg.Wait()
	hits := 0
	for i := range scripts {
		if errs[i] != nil {
			t.Fatalf("script %d: %v", i, errs[i])
		}
		sameRows(t, scripts[i].out, reps[i].Outputs[scripts[i].out], refs[i])
		hits += reps[i].CacheHits
	}
	if hits == 0 {
		t.Error("no script was served from the workload's materialization")
	}
	if got := s.Session().Cache().OwnerBytes(share.MQOOwner); got == 0 {
		t.Error("workload artifacts not owned by the MQO planner")
	}
	for i := range scripts {
		if got := s.Session().Cache().OwnerBytes(fmt.Sprintf("t%d", i)); got != 0 {
			t.Errorf("tenant t%d charged %d bytes for workload artifacts", i, got)
		}
	}
	snap := s.Registry().Snapshot()
	if snap.Counters["serve.mqo_batches"] == 0 {
		t.Error("mqo_batches counter not published")
	}
	if snap.Counters["serve.mqo_chosen"] == 0 {
		t.Error("planner chose nothing for an overlapping batch")
	}
	if snap.Counters["serve.mqo_chosen_bytes"] == 0 {
		t.Error("chosen set has no estimated bytes")
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
