package share

import "repro/internal/obs"

// This file adapts the cache's Stats to the unified observability
// layer. The public Stats fields stay the source of truth;
// Snapshot/Publish/String are derived views under the "share." prefix.
//
// Occupancy (Entries, Bytes) maps to gauges — levels, not rates —
// while the lifecycle counts map to counters. Session.Run publishes
// lifecycle *deltas* per run so batch registries stay additive; this
// Snapshot reports the cumulative values as held by the struct.

// Snapshot converts the cache stats to a unified metrics snapshot.
func (s Stats) Snapshot() obs.Snapshot {
	out := obs.NewSnapshot()
	out.Counters["share.cache_lookup_hits"] = s.Hits
	out.Counters["share.cache_insertions"] = s.Insertions
	out.Counters["share.cache_evictions"] = s.Evictions
	out.Counters["share.cache_invalidations"] = s.Invalidations
	out.Gauges["share.cache_entries"] = int64(s.Entries)
	out.Gauges["share.cache_bytes"] = s.Bytes
	return out
}

// Publish folds the stats into a registry. Nil-safe.
func (s Stats) Publish(r *obs.Registry) { r.Record(s.Snapshot()) }

// String renders the stats in the stable snapshot layout.
func (s Stats) String() string { return s.Snapshot().String() }
