package share

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/relop"
	"repro/internal/stats"
)

// scriptC recomputes the shared aggregation with a third consumer
// set, so concurrent sessions mixing A, B, and C all contend on the
// same cache key.
const scriptC = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R4 = SELECT B,Sum(S) as S4 FROM R GROUP BY B;
OUTPUT R4 TO "c4.out" ORDER BY B;
`

// TestSessionMissCountDedup is the regression test for the admission
// miss double-count: two spool references to one subexpression
// (same group and context key) are one missed sharing opportunity.
// The pre-fix code incremented the miss counter before the
// group|ctxkey dedup, so a duplicated spool counted twice.
func TestSessionMissCountDedup(t *testing.T) {
	cat, fs := testEnv(t)
	s := newTestSession(t, cat, fs, 0)

	m, err := logical.BuildSource(scriptA, cat)
	if err != nil {
		t.Fatal(err)
	}
	o := s.opts
	res, err := opt.Optimize(m, o)
	if err != nil {
		t.Fatal(err)
	}
	spools := plan.FindAll(res.Plan, relop.KindPhysSpool)
	if len(spools) == 0 {
		t.Fatal("script A produced no spool")
	}
	_, _, base := s.admit(res, "")

	// Graft a duplicate reference to the first spool (same pointer
	// identity is deduped by FindAll's topo walk, so copy the node —
	// same Group, same CtxKey, same child) onto the root sequence.
	dup := *spools[0]
	res.Plan.Children = append(res.Plan.Children, &dup)
	_, _, misses := s.admit(res, "")
	if misses != base {
		t.Errorf("duplicated spool counted %d misses, want %d (one per distinct subexpression)", misses, base)
	}
}

// TestSessionConcurrentRuns drives many concurrent Run calls with
// overlapping scripts through one session and requires every result
// to be bit-identical to a sequential run of the same script in a
// fresh session. Pre-fix, concurrent runs raced on the artifact
// sequence number, the publish baseline, and the cache commit; the
// check.sh share race leg runs this under -race.
func TestSessionConcurrentRuns(t *testing.T) {
	scripts := []struct{ src, out string }{
		{scriptA, "a1.out"},
		{scriptB, "b3.out"},
		{scriptC, "c4.out"},
	}

	// Sequential references: each script cold, in its own session.
	refs := make([]*exec.Table, len(scripts))
	for i, sc := range scripts {
		cat, fs := testEnv(t)
		rep, err := newTestSession(t, cat, fs, 2).Run(sc.src)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = rep.Outputs[sc.out]
	}

	cat, fs := testEnv(t)
	s := newTestSession(t, cat, fs, 2)
	reg := obs.NewRegistry()
	s.cfg.Obs = reg

	// One sequential warm-up admits the shared aggregation, so every
	// concurrent run below has a valid entry to hit — without it, all
	// goroutines can be mid-run before any admission commits and the
	// hit assertion would be a timing lottery.
	warm, err := s.Run(scriptA)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Admitted == 0 {
		t.Fatalf("warm-up admitted nothing: %+v", warm)
	}

	const rounds = 4
	var wg sync.WaitGroup
	reports := make([]*RunReport, rounds*len(scripts))
	errs := make([]error, rounds*len(scripts))
	for r := 0; r < rounds; r++ {
		for i := range scripts {
			wg.Add(1)
			go func(slot, i int) {
				defer wg.Done()
				rep, err := s.RunContext(context.Background(), scripts[i].src,
					RunOpts{Tenant: fmt.Sprintf("t%d", i)})
				reports[slot], errs[slot] = rep, err
			}(r*len(scripts)+i, i)
		}
	}
	wg.Wait()

	hits := 0
	for slot, rep := range reports {
		if errs[slot] != nil {
			t.Fatalf("run %d: %v", slot, errs[slot])
		}
		i := slot % len(scripts)
		sameRows(t, scripts[i].out, rep.Outputs[scripts[i].out], refs[i])
		hits += rep.CacheHits
	}
	if hits == 0 {
		t.Error("no concurrent run hit the shared cache")
	}

	// The published lifecycle deltas must sum to the cache's own
	// cumulative counters — the additivity invariant the per-run
	// publishes exist to preserve.
	st := s.CacheStats()
	snap := reg.Snapshot()
	if got := snap.Counters["share.cache_insertions"]; got != st.Insertions {
		t.Errorf("published insertions %d, cache counted %d", got, st.Insertions)
	}
	if got := snap.Counters["share.cache_evictions"]; got != st.Evictions {
		t.Errorf("published evictions %d, cache counted %d", got, st.Evictions)
	}
	if got := snap.Counters["share.cache_invalidations"]; got != st.Invalidations {
		t.Errorf("published invalidations %d, cache counted %d", got, st.Invalidations)
	}
}

// TestSessionPublishAfterFailedRun: a run that fails during execution
// must still publish the cache lifecycle delta (the optimizer's
// lookups may have invalidated entries), so the next successful run's
// delta reports only its own activity.
func TestSessionPublishAfterFailedRun(t *testing.T) {
	cat, fs := testEnv(t)
	reg := obs.NewRegistry()
	s, err := NewSession(Config{Catalog: cat, FS: fs, Machines: 8, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(scriptA); err != nil {
		t.Fatal(err)
	}

	// New data: the admitted entry is now stale. The failing script
	// still contains the shared subexpression, so its optimizer
	// lookup drops the stale entry — an invalidation that happens
	// during a run that then fails (missing.log has statistics but no
	// physical file).
	fs.Put("test.log", testTable(1000))
	cat.Put("missing.log", &stats.TableStats{Rows: 10, Columns: map[string]stats.ColumnStats{
		"A": {Distinct: 5, AvgBytes: 8},
	}})
	failing := scriptB + `
M0 = EXTRACT A FROM "missing.log" USING LogExtractor;
OUTPUT M0 TO "m.out";
`
	if _, err := s.Run(failing); err == nil {
		t.Fatal("run over a missing input file should fail")
	}

	st := s.CacheStats()
	if st.Invalidations == 0 {
		t.Fatalf("failed run invalidated nothing: %+v", st)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["share.cache_invalidations"]; got != st.Invalidations {
		t.Errorf("failed run published %d invalidations, cache counted %d (stale lastStats)",
			got, st.Invalidations)
	}
}

// TestSessionTenantQuota: an artifact passing the admission test is
// still discarded when it would push the tenant past its cache quota,
// and the discard is reported, not silently dropped.
func TestSessionTenantQuota(t *testing.T) {
	cat, fs := testEnv(t)
	s := newTestSession(t, cat, fs, 0)
	rep, err := s.RunContext(context.Background(), scriptA,
		RunOpts{Tenant: "small", TenantCacheBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admitted != 0 || rep.QuotaRejected == 0 {
		t.Fatalf("quota of 1 byte admitted %d, rejected %d", rep.Admitted, rep.QuotaRejected)
	}
	if got := s.Cache().OwnerBytes("small"); got != 0 {
		t.Errorf("tenant charged %d bytes past its quota", got)
	}

	// An unconstrained tenant admits and is charged.
	rep2, err := s.RunContext(context.Background(), scriptA, RunOpts{Tenant: "big"})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Admitted == 0 {
		t.Fatalf("unconstrained tenant admitted nothing: %+v", rep2)
	}
	if got := s.Cache().OwnerBytes("big"); got != rep2.AdmittedBytes {
		t.Errorf("tenant charged %d bytes, admitted %d", got, rep2.AdmittedBytes)
	}
}

// TestSessionRunContextCancel: a canceled context stops the run and
// surfaces the cancellation cause.
func TestSessionRunContextCancel(t *testing.T) {
	cat, fs := testEnv(t)
	s := newTestSession(t, cat, fs, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunContext(ctx, scriptA, RunOpts{}); err == nil {
		t.Fatal("canceled context should fail the run")
	}
}

// TestCachePinKeepsArtifact: a pinned artifact survives invalidation
// of its entry until the last pin releases — the guarantee that lets
// a concurrent run execute a CacheScan it planned before an eviction.
func TestCachePinKeepsArtifact(t *testing.T) {
	cat, fs := testEnv(t)
	s := newTestSession(t, cat, fs, 0)
	if _, err := s.Run(scriptA); err != nil {
		t.Fatal(err)
	}
	c := s.Cache()

	// Find the admitted artifact via a pinning lookup on script B's
	// shared subexpression.
	m, err := logical.BuildSource(scriptB, cat)
	if err != nil {
		t.Fatal(err)
	}
	pins := &pinner{c: c}
	o := s.opts
	o.Cache = pins
	res, err := opt.Optimize(m, o)
	if err != nil {
		t.Fatal(err)
	}
	scans := plan.FindAll(res.Plan, relop.KindCacheScan)
	if len(scans) == 0 {
		t.Fatal("warm plan has no CacheScan")
	}
	path := scans[0].Op.(*relop.PhysCacheScan).Path
	if _, ok := fs.Get(path); !ok {
		t.Fatalf("artifact %q missing before invalidation", path)
	}

	// Invalidate the entry: the artifact must survive while pinned.
	fs.Put("test.log", testTable(1000))
	if c.Holds(scans[0].FP) {
		t.Fatal("stale entry still valid after source mutation")
	}
	if _, ok := fs.Get(path); !ok {
		t.Fatal("pinned artifact removed while a run still references it")
	}
	pins.release()
	if _, ok := fs.Get(path); ok {
		t.Fatal("orphaned artifact not removed after last unpin")
	}
}
