package share

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/obs"
)

// runBatch runs scriptA then scriptB (cold fill, then warm hit) in
// one fresh session publishing into r, and returns the two reports.
func runBatch(t *testing.T, r *obs.Registry) (*RunReport, *RunReport) {
	t.Helper()
	cat, fs := testEnv(t)
	s, err := NewSession(Config{Catalog: cat, FS: fs, Machines: 8, Obs: r})
	if err != nil {
		t.Fatal(err)
	}
	repA, err := s.Run(scriptA)
	if err != nil {
		t.Fatal(err)
	}
	repB, err := s.Run(scriptB)
	if err != nil {
		t.Fatal(err)
	}
	return repA, repB
}

// TestSessionPublishMatchesReports checks that one session's published
// registry agrees with its RunReports: sharing counters sum over the
// runs, gauges hold the final cache occupancy, and the optimizer and
// executor sections are present.
func TestSessionPublishMatchesReports(t *testing.T) {
	r := obs.NewRegistry()
	repA, repB := runBatch(t, r)
	if repB.CacheHits == 0 {
		t.Fatal("warm script B did not hit the cache")
	}
	snap := r.Snapshot()
	if got, want := snap.Counters["share.cache_hits"], int64(repA.CacheHits+repB.CacheHits); got != want {
		t.Errorf("share.cache_hits = %d, want %d", got, want)
	}
	if got, want := snap.Counters["share.admitted"], int64(repA.Admitted+repB.Admitted); got != want {
		t.Errorf("share.admitted = %d, want %d", got, want)
	}
	if got, want := snap.Counters["share.admitted_bytes"], repA.AdmittedBytes+repB.AdmittedBytes; got != want {
		t.Errorf("share.admitted_bytes = %d, want %d", got, want)
	}
	if got, want := snap.Counters["exec.rows_processed"], repA.Metrics.RowsProcessed+repB.Metrics.RowsProcessed; got != want {
		t.Errorf("exec.rows_processed = %d, want %d", got, want)
	}
	if snap.Counters["opt.shared_groups"] == 0 {
		t.Error("optimizer stats were not published")
	}
	if snap.Gauges["share.cache_entries"] == 0 || snap.Gauges["share.cache_bytes"] == 0 {
		t.Errorf("cache occupancy gauges not set: %+v", snap.Gauges)
	}
}

// TestConcurrentSessionsRegistryMerge is satellite criterion 3: K
// concurrent sessions — each running a cold script then a warm
// cache-hit script over its own data — publishing into one shared
// registry must leave exactly the Add of K private per-session
// snapshots. Counters and histograms are additive per run; the
// occupancy gauges are levels and agree because the sessions are
// identical.
func TestConcurrentSessionsRegistryMerge(t *testing.T) {
	priv := obs.NewRegistry()
	runBatch(t, priv)
	perSession := priv.Snapshot()
	if perSession.Counters["share.cache_hits"] == 0 {
		t.Fatal("per-session baseline saw no cache hits")
	}

	const k = 4
	want := obs.NewSnapshot()
	for i := 0; i < k; i++ {
		want = want.Add(perSession)
	}

	shared := obs.NewRegistry()
	var wg sync.WaitGroup
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					t.Errorf("session %d panicked: %v", i, p)
				}
			}()
			cat, fs := testEnv(t)
			s, err := NewSession(Config{Catalog: cat, FS: fs, Machines: 8, Obs: shared})
			if err != nil {
				errs[i] = err
				return
			}
			if _, errs[i] = s.Run(scriptA); errs[i] != nil {
				return
			}
			_, errs[i] = s.Run(scriptB)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}

	got := shared.Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("shared registry after %d concurrent sessions:\n%vwant %d x per-session snapshot:\n%v", k, got, k, want)
	}
}
