// Package share implements cross-query common-subexpression sharing:
// a session-scoped cache of materialized intermediate results keyed
// by expression fingerprint, and a Session that runs a sequence of
// compiled scripts against one simulated cluster, offering cached
// results to the optimizer and admitting new ones cost-based.
//
// The cache extends the paper's within-query framework across query
// boundaries. Within one script, Algorithm 1 merges equivalent
// subexpressions into shared memo groups and phase 2 reconciles
// their physical properties; across scripts the memo is gone, so
// equivalence is re-established from the Definition-1 fingerprint
// plus a canonical signature (fingerprints collide by design), and
// the recorded delivered properties play the role of the Sec. V
// property history: a hit partitioned on {A,B} satisfies a consumer
// requiring colocation on {A,B} with no exchange.
package share

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/relop"
	"repro/internal/stats"
)

// Source records one input file an artifact was derived from,
// together with the invalidation state observed at materialization
// time: the FileStore content version and the catalog statistics
// epoch. A mismatch on either at lookup time invalidates the entry —
// new data makes the artifact wrong, new statistics make its recorded
// cost basis wrong.
type Source struct {
	Path    string
	Version int64
	Epoch   int64
}

// entry is one cached materialized result.
type entry struct {
	opt.CacheEntry
	sig       string
	schemaKey string
	bytes     int64
	sources   []Source
	lastUse   int64
	// owner is the tenant whose run admitted the artifact ("" for
	// untagged sessions); per-tenant byte accounting and quotas key
	// on it.
	owner string
	// hits counts runs that planned against this entry (one per run,
	// not per optimizer lookup — the session dedupes). Together with
	// build and read — the admission formula's sides recorded at Put —
	// it drives benefit-aware eviction: evicting a frequently hit,
	// expensive-to-rebuild artifact loses hits×(build−read) of future
	// savings per byte freed.
	hits  int64
	build float64
	read  float64
}

// Stats summarizes cache state and activity.
type Stats struct {
	// Entries and Bytes describe current occupancy.
	Entries int
	Bytes   int64
	// Insertions, Evictions, and Invalidations count entry lifecycle
	// events: admitted artifacts, LRU/size evictions, and entries
	// dropped because a source table's data or statistics changed.
	Insertions    int64
	Evictions     int64
	Invalidations int64
	// Hits counts run-level uses of cached entries (each run counts a
	// planned-against entry once).
	Hits int64
	// ReuseTracked is the number of distinct subexpression identities
	// with recorded demand history (hits + admission-time misses); the
	// admission formula feeds on it in place of the static
	// ExpectedReuse scalar.
	ReuseTracked int
}

// Cache is a fingerprint-keyed store of materialized results. It
// implements opt.ResultCache. Artifacts live in the session's
// FileStore under "__cache/" paths; evicting or invalidating an entry
// removes its artifact. All methods are safe for concurrent use.
type Cache struct {
	fs  *exec.FileStore
	cat *stats.Catalog

	mu       sync.Mutex
	maxBytes int64             // guarded by mu
	entries  map[string]*entry // guarded by mu
	bytes    int64             // guarded by mu
	clock    int64             // guarded by mu
	stats    Stats             // guarded by mu
	// pins counts in-flight runs still planning against an artifact
	// path; a pinned artifact outlives its entry (see orphans) so a
	// concurrent eviction cannot yank a file out from under an
	// execution that already planned a CacheScan over it.
	pins map[string]int // guarded by mu
	// orphans are artifact paths whose entries were dropped while
	// pinned; the file is removed when the last pin releases.
	orphans map[string]bool // guarded by mu
	// ownerBytes is the current cached payload per admitting tenant.
	ownerBytes map[string]int64 // guarded by mu
	// demand is the observed per-subexpression reuse history, keyed by
	// fingerprint|signature: one count per run that either planned
	// against the entry (a hit) or materialized the subexpression anew
	// (an admission-time miss). It outlives evictions — history is
	// about the subexpression, not the artifact.
	demand map[string]int64 // guarded by mu
}

// DefaultCacheBytes is the cache-size bound used when none is given.
const DefaultCacheBytes = 1 << 30

// NewCache returns an empty cache over the session's FileStore and
// catalog, bounded to maxBytes of artifact payload (<= 0 uses
// DefaultCacheBytes).
func NewCache(fs *exec.FileStore, cat *stats.Catalog, maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &Cache{
		fs: fs, cat: cat, maxBytes: maxBytes,
		entries:    map[string]*entry{},
		pins:       map[string]int{},
		orphans:    map[string]bool{},
		ownerBytes: map[string]int64{},
		demand:     map[string]int64{},
	}
}

// demandKey identifies a subexpression for reuse history: fingerprint
// plus canonical signature, schema-independent.
func demandKey(fp uint64, sig string) string {
	return fmt.Sprintf("%016x|%s", fp, sig)
}

// NoteUse records that one run planned against the entry for (fp,
// sig, schema): it bumps the entry's hit count and the
// subexpression's demand history. Sessions call it once per run per
// distinct entry (the optimizer may look an entry up many times while
// exploring contexts; those repeats are not independent reuses).
func (c *Cache) NoteUse(fp uint64, sig string, schema relop.Schema) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[cacheKey(fp, sig, schemaKey(schema))]; ok {
		e.hits++
		c.stats.Hits++
	}
	c.demand[demandKey(fp, sig)]++
}

// NoteDemand records that one run needed the subexpression but found
// no cached artifact (an admission-time miss). Misses count toward
// reuse history exactly like hits: both are evidence a future script
// will want the result.
func (c *Cache) NoteDemand(fp uint64, sig string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.demand[demandKey(fp, sig)]++
}

// ObservedReuse returns how many past runs demanded the subexpression
// (hits plus admission-time misses). Zero means no history — the
// session falls back to its configured ExpectedReuse scalar.
func (c *Cache) ObservedReuse(fp uint64, sig string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.demand[demandKey(fp, sig)]
}

// Hits returns the run-level hit count of the entry for (fp, sig,
// schema), or 0 when absent.
func (c *Cache) Hits(fp uint64, sig string, schema relop.Schema) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[cacheKey(fp, sig, schemaKey(schema))]; ok {
		return e.hits
	}
	return 0
}

// schemaKey canonically renders a schema for key comparison.
func schemaKey(s relop.Schema) string {
	k := ""
	for _, c := range s {
		k += fmt.Sprintf("%s:%d,", c.Name, c.Type)
	}
	return k
}

// cacheKey is the full match key: fingerprint, canonical signature,
// and schema. The signature and schema guard against Definition-1
// fingerprint collisions (kind-XOR loses structure by design).
func cacheKey(fp uint64, sig, sk string) string {
	return fmt.Sprintf("%016x|%s|%s", fp, sig, sk)
}

// valid reports whether e's sources are unchanged: same FileStore
// content versions, same catalog statistics epochs.
func (c *Cache) valid(e *entry) bool {
	for _, s := range e.sources {
		if c.fs.Version(s.Path) != s.Version || c.cat.Epoch(s.Path) != s.Epoch {
			return false
		}
	}
	return true
}

// dropLocked removes entry k, deleting its artifact (deferred while
// pinned). Caller holds c.mu.
func (c *Cache) dropLocked(k string, invalidated bool) {
	e, ok := c.entries[k]
	if !ok {
		return
	}
	delete(c.entries, k)
	c.bytes -= e.bytes
	c.ownerBytes[e.owner] -= e.bytes
	if c.ownerBytes[e.owner] <= 0 {
		delete(c.ownerBytes, e.owner)
	}
	c.removeArtifactLocked(e.Path)
	if invalidated {
		c.stats.Invalidations++
	} else {
		c.stats.Evictions++
	}
}

// removeArtifactLocked deletes an artifact file, or parks it as an
// orphan while in-flight runs still hold pins on it. Caller holds
// c.mu.
func (c *Cache) removeArtifactLocked(path string) {
	if c.pins[path] > 0 {
		c.orphans[path] = true
		return
	}
	c.fs.Remove(path)
}

// Pin takes one reference on an artifact path: its file survives
// eviction, invalidation, and replacement until Unpin. The session
// pins every artifact the optimizer plans a CacheScan against (at
// lookup time, under the cache lock, so there is no window between
// the hit and the pin) and releases when the run finishes.
func (c *Cache) Pin(path string) {
	c.mu.Lock()
	c.pins[path]++
	c.mu.Unlock()
}

// Unpin releases one Pin reference; the last release of an orphaned
// artifact removes its file.
func (c *Cache) Unpin(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pins[path] <= 1 {
		delete(c.pins, path)
		if c.orphans[path] {
			delete(c.orphans, path)
			c.fs.Remove(path)
		}
		return
	}
	c.pins[path]--
}

// Lookup implements opt.ResultCache: it returns the valid cached
// artifact matching (fp, sig, schema), dropping it first when a
// source mutated. A hit refreshes the entry's LRU position.
func (c *Cache) Lookup(fp uint64, sig string, schema relop.Schema) (opt.CacheEntry, bool) {
	return c.lookup(fp, sig, schema, false)
}

// LookupPin is Lookup plus an atomic Pin on the hit's artifact path:
// the pin is taken under the same critical section as the hit, so a
// concurrent eviction can never remove the artifact between the
// optimizer's decision and the run's CacheScan. Callers must Unpin
// the returned Path when the run ends.
func (c *Cache) LookupPin(fp uint64, sig string, schema relop.Schema) (opt.CacheEntry, bool) {
	return c.lookup(fp, sig, schema, true)
}

func (c *Cache) lookup(fp uint64, sig string, schema relop.Schema, pin bool) (opt.CacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := cacheKey(fp, sig, schemaKey(schema))
	e, ok := c.entries[k]
	if !ok {
		return opt.CacheEntry{}, false
	}
	if !c.valid(e) {
		c.dropLocked(k, true)
		return opt.CacheEntry{}, false
	}
	c.clock++
	e.lastUse = c.clock
	if pin {
		c.pins[e.Path]++
	}
	return e.CacheEntry, true
}

// Holds implements opt.ResultCache: it reports whether any valid
// entry exists for fp, regardless of signature. The P6 lint analyzer
// uses it as a loose probe.
func (c *Cache) Holds(fp uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		if e.FP != fp {
			continue
		}
		if !c.valid(e) {
			c.dropLocked(k, true)
			continue
		}
		return true
	}
	return false
}

// HoldsSig reports whether a valid entry exists for the exact
// subexpression identity — fingerprint plus canonical signature —
// regardless of schema key. Definition-1 fingerprints are coarse
// (kind-XOR collides unrelated expressions), so the serve scheduler
// uses this exact probe to decide which of a batch's subexpressions
// the cache already covers.
func (c *Cache) HoldsSig(fp uint64, sig string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		if e.FP != fp || e.sig != sig {
			continue
		}
		if !c.valid(e) {
			c.dropLocked(k, true)
			continue
		}
		return true
	}
	return false
}

// Contains reports whether a valid entry exists for the exact key,
// without refreshing its LRU position — the session's admission probe.
func (c *Cache) Contains(fp uint64, sig string, schema relop.Schema) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[cacheKey(fp, sig, schemaKey(schema))]
	if !ok {
		return false
	}
	if !c.valid(e) {
		c.dropLocked(cacheKey(fp, sig, schemaKey(schema)), true)
		return false
	}
	return true
}

// Put admits one materialized artifact under the given owner tenant
// ("" for untagged), recording the admission formula's build and read
// costs for benefit-aware eviction, then evicts lowest-benefit
// entries until the cache fits its byte bound. Re-admitting an
// existing key replaces the old entry (and artifact) first but keeps
// its hit count — the subexpression's popularity survives a refresh.
func (c *Cache) Put(ce opt.CacheEntry, sig string, bytes int64, sources []Source, owner string, build, read float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sk := schemaKey(ce.Schema)
	k := cacheKey(ce.FP, sig, sk)
	var hits int64
	if old, ok := c.entries[k]; ok {
		hits = old.hits
		delete(c.entries, k)
		c.bytes -= old.bytes
		c.ownerBytes[old.owner] -= old.bytes
		if c.ownerBytes[old.owner] <= 0 {
			delete(c.ownerBytes, old.owner)
		}
		if old.Path != ce.Path {
			c.removeArtifactLocked(old.Path)
		}
	}
	c.clock++
	c.entries[k] = &entry{
		CacheEntry: ce,
		sig:        sig,
		schemaKey:  sk,
		bytes:      bytes,
		sources:    sources,
		lastUse:    c.clock,
		owner:      owner,
		hits:       hits,
		build:      build,
		read:       read,
	}
	c.bytes += bytes
	c.ownerBytes[owner] += bytes
	c.stats.Insertions++
	for c.bytes > c.maxBytes && len(c.entries) > 0 {
		c.dropLocked(c.victimLocked(), false)
	}
}

// benefitScore is the eviction weight of an entry: the modeled future
// savings per byte of keeping it — hits × (build − read) normalized
// by artifact size. A never-hit entry counts as one presumed future
// use (admission already judged it worth persisting), so a freshly
// admitted artifact is not instantly dumped from a cache full of
// proven entries; entries whose rebuild is no dearer than reading the
// artifact score zero and go first. Caller holds c.mu.
func benefitScore(e *entry) float64 {
	saving := e.build - e.read
	if saving < 0 {
		saving = 0
	}
	b := e.bytes
	if b < 1 {
		b = 1
	}
	h := e.hits
	if h < 1 {
		h = 1
	}
	return float64(h) * saving / float64(b)
}

// victimLocked picks the eviction victim: the lowest benefit score,
// ties broken least-recently-used — pure LRU degrades gracefully when
// no entry has demonstrated value yet. Caller holds c.mu and
// guarantees the cache is non-empty.
func (c *Cache) victimLocked() string {
	victim := ""
	var vScore float64
	var vUse int64
	for ek, e := range c.entries {
		s := benefitScore(e)
		if victim == "" || s < vScore || (s == vScore && e.lastUse < vUse) {
			victim, vScore, vUse = ek, s, e.lastUse
		}
	}
	return victim
}

// SourcesByPath returns the recorded sources of the entry whose
// artifact lives at path (empty when unknown). Sessions use it to
// propagate provenance through artifacts derived from other cached
// artifacts.
func (c *Cache) SourcesByPath(path string) []Source {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		if e.Path == path {
			return append([]Source(nil), e.sources...)
		}
	}
	return nil
}

// OwnerBytes returns the cached payload currently attributed to the
// given admitting tenant — the quantity per-tenant quotas bound.
func (c *Cache) OwnerBytes(owner string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ownerBytes[owner]
}

// EntryInfo is the introspection view of one cache entry — what the
// service's GET /cache endpoint reports per artifact. FP and
// SigDigest render the identity the way event-log subexpression IDs
// do, so an operator can join /cache rows against event streams.
type EntryInfo struct {
	// FP is the Definition-1 fingerprint in fixed-width hex;
	// SigDigest digests the canonical signature (signatures can be
	// arbitrarily long).
	FP        string `json:"fp"`
	SigDigest string `json:"sig_digest"`
	Path      string `json:"path"`
	Owner     string `json:"owner,omitempty"`
	Bytes     int64  `json:"bytes"`
	Hits      int64  `json:"hits"`
	// Benefit is the eviction weight: hits × (build − read) per byte.
	Benefit float64 `json:"benefit"`
	// Pinned reports whether an in-flight run holds the artifact open.
	Pinned bool `json:"pinned"`
}

// View is a point-in-time introspection snapshot of the cache: every
// entry with its benefit score, per-owner byte totals, and the paths
// still pinned by in-flight runs.
type View struct {
	Stats      Stats            `json:"stats"`
	Entries    []EntryInfo      `json:"entries,omitempty"`
	OwnerBytes map[string]int64 `json:"owner_bytes,omitempty"`
	Pinned     []string         `json:"pinned,omitempty"`
	Orphans    []string         `json:"orphans,omitempty"`
}

// Describe returns the introspection view, deterministically ordered:
// entries by artifact path, pin and orphan paths sorted.
func (c *Cache) Describe() View {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := View{Stats: c.stats}
	v.Stats.Entries = len(c.entries)
	v.Stats.Bytes = c.bytes
	v.Stats.ReuseTracked = len(c.demand)
	for _, e := range c.entries {
		v.Entries = append(v.Entries, EntryInfo{
			FP:        fmt.Sprintf("%016x", e.FP),
			SigDigest: sigDigest(e.sig),
			Path:      e.Path,
			Owner:     e.owner,
			Bytes:     e.bytes,
			Hits:      e.hits,
			Benefit:   benefitScore(e),
			Pinned:    c.pins[e.Path] > 0,
		})
	}
	sort.Slice(v.Entries, func(i, j int) bool { return v.Entries[i].Path < v.Entries[j].Path })
	if len(c.ownerBytes) > 0 {
		v.OwnerBytes = map[string]int64{}
		for o, b := range c.ownerBytes {
			v.OwnerBytes[o] = b
		}
	}
	for p, n := range c.pins {
		if n > 0 {
			v.Pinned = append(v.Pinned, p)
		}
	}
	sort.Strings(v.Pinned)
	for p := range c.orphans {
		v.Orphans = append(v.Orphans, p)
	}
	sort.Strings(v.Orphans)
	return v
}

// sigDigest hashes a canonical signature into the fixed-width hex
// form event-log subexpression IDs carry.
func sigDigest(sig string) string {
	h := fnv.New32a()
	_, _ = h.Write([]byte(sig))
	return fmt.Sprintf("%08x", h.Sum32())
}

// Stats returns a snapshot of cache occupancy and lifecycle counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.Bytes = c.bytes
	s.ReuseTracked = len(c.demand)
	return s
}
