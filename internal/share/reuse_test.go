package share

import (
	"testing"

	"repro/internal/logical"
	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/relop"
)

// TestCacheObservedReuseHistory: demand history counts hits and
// admission-time misses per subexpression identity, and survives
// eviction of the artifact — history is about the subexpression, not
// the file.
func TestCacheObservedReuseHistory(t *testing.T) {
	c, fs, cat := cacheFixture(0)
	if got := c.ObservedReuse(7, "sig"); got != 0 {
		t.Fatalf("fresh cache reports reuse %d", got)
	}
	c.NoteDemand(7, "sig")
	c.NoteDemand(7, "sig")
	if got := c.ObservedReuse(7, "sig"); got != 2 {
		t.Errorf("two misses recorded reuse %d, want 2", got)
	}

	// A hit on a live entry counts toward both the entry's hit count
	// and the shared demand history.
	ce, src := entryFor(fs, cat, 7, "__cache/h", 3)
	c.Put(ce, "sig", 100, src, "", 10, 1)
	c.NoteUse(7, "sig", ce.Schema)
	if got := c.Hits(7, "sig", ce.Schema); got != 1 {
		t.Errorf("entry hits = %d, want 1", got)
	}
	if got := c.ObservedReuse(7, "sig"); got != 3 {
		t.Errorf("reuse after hit = %d, want 3", got)
	}
	if st := c.Stats(); st.Hits != 1 || st.ReuseTracked != 1 {
		t.Errorf("stats = %+v, want Hits=1 ReuseTracked=1", st)
	}

	// NoteUse without a matching entry still counts demand (the run
	// wanted the subexpression) but cannot bump any entry.
	c.NoteUse(9, "other", ce.Schema)
	if got := c.ObservedReuse(9, "other"); got != 1 {
		t.Errorf("entry-less NoteUse recorded reuse %d, want 1", got)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Errorf("entry-less NoteUse bumped Stats.Hits: %+v", st)
	}

	// Eviction drops the entry but not the history.
	c2, fs2, cat2 := cacheFixture(150)
	c2.NoteDemand(8, "s")
	ceA, srcA := entryFor(fs2, cat2, 8, "__cache/a8", 3)
	c2.Put(ceA, "s", 100, srcA, "", 10, 1)
	ceB, srcB := entryFor(fs2, cat2, 9, "__cache/b9", 3)
	c2.Put(ceB, "s", 100, srcB, "", 10, 1) // evicts one of the two
	if st := c2.Stats(); st.Evictions == 0 {
		t.Fatalf("no eviction at 150-byte bound: %+v", st)
	}
	if got := c2.ObservedReuse(8, "s"); got != 1 {
		t.Errorf("reuse history lost across eviction: %d, want 1", got)
	}
}

// TestCacheBenefitEvictionBeatsLRU constructs a cache where the LRU
// and benefit orderings disagree: the least-recently-used entry is
// expensive to rebuild and frequently hit, while a more recently
// touched entry saves almost nothing per byte. Benefit-aware eviction
// must keep the valuable stale entry and evict the cheap fresh one;
// pure LRU would do the opposite.
func TestCacheBenefitEvictionBeatsLRU(t *testing.T) {
	c, fs, cat := cacheFixture(250)

	// Entry 1: build 1000 vs read 10, hit twice → score 2×990/100.
	ce1, src1 := entryFor(fs, cat, 1, "__cache/1", 3)
	c.Put(ce1, "s", 100, src1, "", 1000, 10)
	c.NoteUse(1, "s", ce1.Schema)
	c.NoteUse(1, "s", ce1.Schema)

	// Entry 2: rebuilding costs barely more than reading → score
	// ~1/100 even after its LRU refresh below.
	ce2, src2 := entryFor(fs, cat, 2, "__cache/2", 3)
	c.Put(ce2, "s", 100, src2, "", 11, 10)
	if _, ok := c.Lookup(2, "s", ce2.Schema); !ok {
		t.Fatal("entry 2 should hit")
	}
	// LRU order is now [1 oldest, 2 newest]: pure LRU would evict 1.

	// Entry 3 overflows the bound; the victim must be the low-benefit
	// entry 2, not the least-recently-used entry 1.
	ce3, src3 := entryFor(fs, cat, 3, "__cache/3", 3)
	c.Put(ce3, "s", 100, src3, "", 500, 10)
	if !c.Holds(1) || c.Holds(2) || !c.Holds(3) {
		t.Errorf("benefit eviction kept holds(1)=%v holds(2)=%v holds(3)=%v, want true/false/true",
			c.Holds(1), c.Holds(2), c.Holds(3))
	}
	if _, ok := fs.Get("__cache/2"); ok {
		t.Error("evicted artifact not removed")
	}
}

// doctoredAdmissionResult optimizes scriptA and rescales the costs in
// its spool subtree so that build = ratio × read exactly, putting the
// admission decision at a known point of the formula regardless of
// the cost model's real numbers.
func doctoredAdmissionResult(t *testing.T, s *Session, ratio float64) *opt.Result {
	t.Helper()
	m, err := logical.BuildSource(scriptA, s.cfg.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Optimize(m, s.opts)
	if err != nil {
		t.Fatal(err)
	}
	spools := plan.FindAll(res.Plan, relop.KindPhysSpool)
	if len(spools) == 0 {
		t.Fatal("script A produced no spool")
	}
	sp := spools[0]
	read := s.model.SpoolReadCost(sp.Children[0].Rel, sp.Children[0].Dlvd.Part)
	for _, n := range plan.Operators(sp) {
		n.OpCost = 0
	}
	sp.OpCost = ratio * read
	return res
}

// TestSessionObservedReuseAdmission is the satellite regression test:
// a subexpression whose build is 1.8× its read cost fails the
// admission formula at the static ExpectedReuse=1 fallback
// ((build−read)×1 = 0.8×read ≤ read), but once two runs have
// demanded it, the observed history replaces the scalar and the third
// run admits it ((build−read)×2 = 1.6×read > read).
func TestSessionObservedReuseAdmission(t *testing.T) {
	cat, fs := testEnv(t)
	s := newTestSession(t, cat, fs, 0) // ExpectedReuse defaults to 1
	res := doctoredAdmissionResult(t, s, 1.8)

	for run := 1; run <= 2; run++ {
		_, pend, misses := s.admit(res, "")
		if misses == 0 {
			t.Fatalf("run %d: no miss recorded", run)
		}
		if len(pend) != 0 {
			t.Fatalf("run %d admitted %d spool(s); the scalar fallback should reject", run, len(pend))
		}
	}

	// Third run: history says two past runs demanded it.
	_, pend, _ := s.admit(res, "t")
	if len(pend) != 1 {
		t.Fatalf("observed reuse of 2 admitted %d spool(s), want 1", len(pend))
	}
	if pend[0].owner != "t" {
		t.Errorf("admitted owner %q, want submitting tenant", pend[0].owner)
	}
	if pend[0].build <= 0 || pend[0].read <= 0 {
		t.Errorf("pending commit missing benefit costs: build=%v read=%v", pend[0].build, pend[0].read)
	}

	// Control: the same costs in a fresh session (no history) stay
	// rejected forever under the static scalar.
	s2 := newTestSession(t, cat, fs, 0)
	if _, pend, _ := s2.admit(res, ""); len(pend) != 0 {
		t.Errorf("fresh session admitted %d spool(s) at ExpectedReuse=1", len(pend))
	}
}

// TestSessionPreadmitForcesMaterialization: a preadmitted (MQO-chosen)
// subexpression is force-materialized by a script that consumes it
// only once — cold, that plan has no spool at all — is admitted
// bypassing the cost formula, owned by MQOOwner outside tenant
// quotas, and serves the next run from the cache. Results stay
// bit-identical to the cold run.
func TestSessionPreadmitForcesMaterialization(t *testing.T) {
	// Discover the shared subexpression's identity from script A,
	// whose plan spools it naturally.
	catX, fsX := testEnv(t)
	sx := newTestSession(t, catX, fsX, 0)
	m, err := logical.BuildSource(scriptA, catX)
	if err != nil {
		t.Fatal(err)
	}
	resX, err := opt.Optimize(m, sx.opts)
	if err != nil {
		t.Fatal(err)
	}
	spools := plan.FindAll(resX.Plan, relop.KindPhysSpool)
	if len(spools) == 0 {
		t.Fatal("script A produced no spool")
	}
	child := spools[0].Children[0]
	key := opt.ForceKey{FP: child.FP, Sig: resX.Sigs[child.Group]}
	if key.FP == 0 || key.Sig == "" {
		t.Fatalf("shared subexpression has no identity: %+v", key)
	}

	// Cold reference: script B in a plain session.
	catC, fsC := testEnv(t)
	cold, err := newTestSession(t, catC, fsC, 0).Run(scriptB)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Admitted != 0 {
		t.Fatalf("cold single-consumer script B admitted %d artifacts", cold.Admitted)
	}

	cat, fs := testEnv(t)
	s := newTestSession(t, cat, fs, 0)
	s.Preadmit([]opt.ForceKey{key})

	rep, err := s.RunContext(t.Context(), scriptB,
		RunOpts{Tenant: "t", TenantCacheBytes: 1}) // quota must not bind MQO artifacts
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admitted != 1 || rep.QuotaRejected != 0 {
		t.Fatalf("forced run admitted=%d quotaRejected=%d, want 1/0", rep.Admitted, rep.QuotaRejected)
	}
	if got := s.Cache().OwnerBytes(MQOOwner); got != rep.AdmittedBytes {
		t.Errorf("MQO owner charged %d bytes, admitted %d", got, rep.AdmittedBytes)
	}
	if got := s.Cache().OwnerBytes("t"); got != 0 {
		t.Errorf("tenant charged %d bytes for a workload artifact", got)
	}
	if !s.Cache().HoldsSig(key.FP, key.Sig) {
		t.Fatal("preadmitted subexpression not in cache after the builder run")
	}
	sameRows(t, "b3.out", rep.Outputs["b3.out"], cold.Outputs["b3.out"])

	// The next consumer is served from the forced artifact.
	rep2, err := s.Run(scriptB)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CacheHits == 0 {
		t.Fatal("consumer run after forced materialization missed the cache")
	}
	sameRows(t, "b3.out warm", rep2.Outputs["b3.out"], cold.Outputs["b3.out"])

	// Once the cache holds the key, later runs stop forcing it.
	if forced := s.forcedKeys(); len(forced) != 0 {
		t.Errorf("forcedKeys still reports %d keys while the cache holds the artifact", len(forced))
	}
}
