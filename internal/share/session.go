package share

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/lint"
	"repro/internal/logical"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/props"
	"repro/internal/relop"
	"repro/internal/stats"
)

// Config parameterizes a session.
type Config struct {
	// Catalog and FS are the statistics catalog and file store the
	// session's scripts compile and run against. Both are required.
	Catalog *stats.Catalog
	FS      *exec.FileStore
	// Machines is the execution partition count (required positive).
	Machines int
	// Workers bounds the execution worker pool (0 = one per CPU).
	Workers int
	// CacheBytes bounds the result cache (0 = DefaultCacheBytes).
	CacheBytes int64
	// ExpectedReuse is the admission formula's fallback estimate of
	// how many future scripts will reuse an admitted artifact (0 = 1).
	// It only applies to subexpressions with no observed reuse
	// history; once the cache has seen demand for a subexpression
	// (hits or admission-time misses), the observed count replaces the
	// scalar.
	ExpectedReuse float64
	// Opt overrides the optimizer configuration (nil = defaults with
	// CSE on). The session always installs its own cache.
	Opt *opt.Options
	// Tracer, when non-nil, receives optimizer and executor spans for
	// every Run. The span tree is deterministic at any Workers width.
	Tracer *obs.Tracer
	// Obs, when non-nil, receives each finished run's metrics: the
	// optimizer's stats, the execution totals, and the session's
	// sharing counters. Safe to share across concurrent sessions.
	Obs *obs.Registry
	// Engine selects the execution engine for every run ("" = the
	// cluster default) and MemBudget its per-partition working-set
	// bound in bytes (0 = unbounded). See exec.Cluster.
	Engine    string
	MemBudget int64
	// Analyze runs every plan under EXPLAIN ANALYZE instrumentation
	// and reports the worst row-estimate q-error in RunReport.MaxQ —
	// the estimate-quality signal the service's event log records per
	// request.
	Analyze bool
}

// Session runs scripts against one cluster, sharing materialized
// common subexpressions across them through a Cache. Run and
// RunContext are safe for concurrent use: concurrent runs execute in
// parallel against the shared cache, artifact paths are allocated
// under the session mutex, and registry publication is serialized so
// per-run deltas stay additive.
type Session struct {
	cfg   Config
	cache *Cache
	opts  opt.Options
	model cost.Model

	mu  sync.Mutex
	seq int // guarded by mu
	// preadmit is the workload-level materialization set a multi-query
	// optimizer chose for this session: spools matching a key bypass
	// the cost-based admission formula and are persisted under
	// MQOOwner, and runs force-materialize any key the cache does not
	// hold yet (so the batch's designated builder produces the
	// artifact even when it consumes the subexpression only once).
	preadmit map[opt.ForceKey]bool // guarded by mu
	// lastStats is the cache state as of the previous publish. The
	// cache counts cumulatively over the session's lifetime, but the
	// registry wants per-run increments (so a batch total is the sum
	// of its runs); publishing the delta bridges the two. Failed runs
	// publish (and re-baseline) too — otherwise the next successful
	// run's delta would absorb evictions and invalidations that
	// happened during the failure.
	lastStats Stats // guarded by mu
}

// NewSession validates cfg and returns a session with an empty cache.
func NewSession(cfg Config) (*Session, error) {
	if cfg.Catalog == nil || cfg.FS == nil {
		return nil, errors.New("share: session needs a catalog and a file store")
	}
	if cfg.Machines <= 0 {
		return nil, fmt.Errorf("share: session needs at least 1 machine, got %d", cfg.Machines)
	}
	if cfg.ExpectedReuse <= 0 {
		cfg.ExpectedReuse = 1
	}
	opts := opt.DefaultOptions()
	if cfg.Opt != nil {
		opts = *cfg.Opt
	}
	return &Session{
		cfg:   cfg,
		cache: NewCache(cfg.FS, cfg.Catalog, cfg.CacheBytes),
		opts:  opts,
		model: cost.NewModel(opts.Cluster),
	}, nil
}

// MQOOwner is the cache owner tag for artifacts pre-admitted by the
// workload-level multi-query optimizer. They are workload decisions,
// not any single tenant's, so they bypass per-tenant quotas.
const MQOOwner = "mqo"

// Cache exposes the session's result cache (e.g. for lint probes).
func (s *Session) Cache() *Cache { return s.cache }

// Options returns the optimizer configuration the session runs under
// — what a workload-level planner must cost against for its estimates
// to match enactment.
func (s *Session) Options() opt.Options { return s.opts }

// Preadmit installs a workload-level materialization set (chosen by
// internal/mqo): subsequent runs force-materialize any listed
// subexpression the cache does not yet hold, and the admission
// formula is bypassed for it — the selection already paid for the
// persist in its global cost. Keys accumulate across calls; safe for
// concurrent use.
func (s *Session) Preadmit(keys []opt.ForceKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.preadmit == nil {
		s.preadmit = map[opt.ForceKey]bool{}
	}
	for _, k := range keys {
		s.preadmit[k] = true
	}
}

// forcedKeys returns the preadmitted subexpressions the cache does
// not hold yet — the ones this run must force-materialize if it
// computes them.
func (s *Session) forcedKeys() map[opt.ForceKey]bool {
	s.mu.Lock()
	keys := make([]opt.ForceKey, 0, len(s.preadmit))
	for k := range s.preadmit {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].FP != keys[j].FP {
			return keys[i].FP < keys[j].FP
		}
		return keys[i].Sig < keys[j].Sig
	})
	var forced map[opt.ForceKey]bool
	for _, k := range keys {
		if !s.cache.HoldsSig(k.FP, k.Sig) {
			if forced == nil {
				forced = map[opt.ForceKey]bool{}
			}
			forced[k] = true
		}
	}
	return forced
}

// CacheStats returns a snapshot of the session cache.
func (s *Session) CacheStats() Stats { return s.cache.Stats() }

// RunReport describes one script execution inside a session.
type RunReport struct {
	// Tenant is the tag the run was submitted under ("" untagged).
	Tenant string
	// Outputs holds every OUTPUT file the script produced, by path.
	Outputs map[string]*exec.Table
	// Metrics is the metered work of this script's execution alone.
	Metrics exec.Metrics
	// Cost is the optimizer's DAG-aware estimate for the chosen plan.
	Cost float64
	// CacheHits counts distinct CacheScan operators in the executed
	// plan — subexpressions served from earlier scripts' results.
	CacheHits int
	// CacheMisses counts distinct shared subexpressions this script
	// materialized that were not in the cache (whether or not the
	// admission formula then kept them). Two spool references to one
	// subexpression are one miss, not two.
	CacheMisses int
	// Admitted and AdmittedBytes describe the artifacts this run
	// persisted into the cache.
	Admitted      int
	AdmittedBytes int64
	// QuotaRejected counts artifacts that passed the admission test
	// but were discarded because the tenant's cache quota was full.
	QuotaRejected int
	// Evicted counts cache entries this run's admissions pushed out.
	// Evictions happen only inside Put, and every Put happens in the
	// commit critical section, so summing Evicted over a session's
	// runs reproduces the cache's eviction counter exactly — the
	// additivity invariant the event log leans on.
	Evicted int
	// MaxQ is the worst row-estimate q-error across the executed plan
	// (0 unless Config.Analyze is set).
	MaxQ float64
	// Lint holds the optimizer's plan-analyzer findings when the
	// session options enable linting (nil otherwise). MQO enactment
	// surfaces P7 findings — an enacted plan rebuilding a
	// workload-covered subexpression — through it.
	Lint []lint.Diagnostic
}

// RunOpts carries the per-run multi-tenancy parameters.
type RunOpts struct {
	// Tenant tags the run for cache accounting and quotas; admitted
	// artifacts are charged to it ("" = untagged).
	Tenant string
	// TenantCacheBytes caps the total cached payload charged to
	// Tenant; an admission that would exceed it is discarded and
	// counted in RunReport.QuotaRejected (0 = unlimited).
	TenantCacheBytes int64
	// WorkloadCovered, when non-nil, tells the P7 lint analyzer which
	// fingerprints the workload's chosen materialization set covers
	// for this run (excluding the ones this run is designated to
	// build). Only consulted when the session options enable linting.
	WorkloadCovered func(fp uint64) bool
}

// pending is one spool selected for persistence, committed into the
// cache after the run materializes its artifact.
type pending struct {
	spool *plan.Node
	child *plan.Node
	sig   string
	path  string
	// owner is the tenant charged for the artifact (MQOOwner for
	// preadmitted materializations), and build/read are the admission
	// formula's sides, recorded for benefit-aware eviction.
	owner string
	build float64
	read  float64
}

// pinner is the per-run view of the session cache the optimizer sees:
// every hit is pinned under the cache lock, so the artifact file is
// guaranteed to still exist when the executor's CacheScan reads it,
// even if a concurrent run evicts or replaces the entry in between.
type pinner struct {
	c *Cache

	mu    sync.Mutex
	paths []string        // guarded by mu
	seen  map[string]bool // guarded by mu
}

func (p *pinner) Lookup(fp uint64, sig string, schema relop.Schema) (opt.CacheEntry, bool) {
	ce, ok := p.c.LookupPin(fp, sig, schema)
	if ok {
		p.mu.Lock()
		p.paths = append(p.paths, ce.Path)
		// One use per distinct subexpression per run: the optimizer may
		// probe the same entry from several alternatives, but the reuse
		// history should count scripts, not search-space visits.
		key := demandKey(fp, sig)
		first := !p.seen[key]
		if first {
			if p.seen == nil {
				p.seen = map[string]bool{}
			}
			p.seen[key] = true
		}
		p.mu.Unlock()
		if first {
			p.c.NoteUse(fp, sig, schema)
		}
	}
	return ce, ok
}

func (p *pinner) Holds(fp uint64) bool { return p.c.Holds(fp) }

// release drops every pin the run took, removing orphaned artifacts.
func (p *pinner) release() {
	p.mu.Lock()
	paths := p.paths
	p.paths = nil
	p.mu.Unlock()
	for _, path := range paths {
		p.c.Unpin(path)
	}
}

// Run compiles, optimizes, and executes one script. The optimizer
// sees the session cache and may replace equivalent subexpressions
// with CacheScans; on the way out, phase-2 spool materializations
// passing the admission test are persisted for later scripts.
func (s *Session) Run(src string) (*RunReport, error) {
	return s.RunContext(context.Background(), src, RunOpts{})
}

// RunContext is Run with cancellation and multi-tenancy: the run
// stops (and returns the cancellation cause) when ctx is canceled,
// and admitted artifacts are charged against opts.Tenant's quota.
// Safe for concurrent use with other RunContext calls on the same
// session.
func (s *Session) RunContext(ctx context.Context, src string, opts RunOpts) (*RunReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m, err := logical.BuildSource(src, s.cfg.Catalog)
	if err != nil {
		return nil, err
	}
	o := s.opts
	pins := &pinner{c: s.cache}
	o.Cache = pins
	o.ForceMaterialize = s.forcedKeys()
	o.WorkloadCovered = opts.WorkloadCovered
	if s.cfg.Tracer != nil {
		o.Tracer = s.cfg.Tracer
	}
	res, err := opt.Optimize(m, o)
	if err != nil {
		return nil, err
	}
	// From here on the run has touched the cache (lookups refresh LRU
	// positions and drop stale entries), so every exit path must both
	// release the pins and publish the lifecycle delta.
	defer pins.release()

	rep := &RunReport{Tenant: opts.Tenant, Cost: res.Cost, Lint: res.Lint}
	rep.CacheHits = len(plan.FindAll(res.Plan, relop.KindCacheScan))

	persist, pend, misses := s.admit(res, opts.Tenant)
	rep.CacheMisses = misses

	cl, err := exec.NewCluster(s.cfg.Machines, s.cfg.FS)
	if err != nil {
		s.publishFailure(res)
		return nil, err
	}
	if s.cfg.Workers > 0 {
		cl.Workers = s.cfg.Workers
	}
	cl.Engine = s.cfg.Engine
	cl.MemBudget = s.cfg.MemBudget
	cl.Trace = s.cfg.Tracer
	cl.Obs = s.cfg.Obs
	cl.PersistSpools = persist
	var outs map[string]*exec.Table
	if s.cfg.Analyze {
		var actuals map[*plan.Node]exec.NodeActual
		outs, actuals, err = cl.RunAnalyzedContext(ctx, res.Plan)
		if err == nil {
			rep.MaxQ = exec.NewAnalysis(res.Plan, actuals, 0).Summary().MaxQ
		}
	} else {
		outs, err = cl.RunContext(ctx, res.Plan)
	}
	if err != nil {
		s.publishFailure(res)
		return nil, err
	}
	rep.Outputs = outs
	rep.Metrics = cl.Metrics()

	// Commit: an artifact exists only if its spool actually
	// materialized (broadcast spools and never-executed branches
	// leave nothing behind). The commit and the publish share one
	// critical section so concurrent runs' registry deltas never
	// overlap.
	s.mu.Lock()
	evictionsBefore := s.cache.Stats().Evictions
	for _, p := range pend {
		t, ok := s.cfg.FS.Get(p.path)
		if !ok {
			continue
		}
		// Workload-level (MQO) artifacts are batch decisions, not any
		// single tenant's, so they bypass the submitting tenant's quota.
		if p.owner == opts.Tenant && opts.TenantCacheBytes > 0 &&
			s.cache.OwnerBytes(opts.Tenant)+t.Bytes() > opts.TenantCacheBytes {
			// Over quota: discard the materialized artifact instead of
			// charging the tenant past its bound.
			s.cfg.FS.Remove(p.path)
			rep.QuotaRejected++
			continue
		}
		s.cache.Put(opt.CacheEntry{
			Path:   p.path,
			Schema: p.child.Schema,
			Part:   p.child.Dlvd.Part,
			Order:  p.child.Dlvd.Order,
			FP:     p.child.FP,
		}, p.sig, t.Bytes(), s.collectSources(p.spool), p.owner, p.build, p.read)
		rep.Admitted++
		rep.AdmittedBytes += t.Bytes()
	}
	rep.Evicted = int(s.cache.Stats().Evictions - evictionsBefore)
	s.publishLocked(res, rep)
	s.mu.Unlock()
	return rep, nil
}

// publishFailure publishes a failed run: the optimizer stats are real
// search effort and the cache lifecycle delta must be re-baselined,
// but no run-level sharing counters exist to report.
func (s *Session) publishFailure(res *opt.Result) {
	s.mu.Lock()
	s.publishLocked(res, nil)
	s.mu.Unlock()
}

// publishLocked folds one run's observability totals into cfg.Obs:
// the optimizer's stats, the run-level sharing report (nil for failed
// runs), and the cache lifecycle deltas since the previous publish.
// Execution metrics are published by the cluster itself (cl.Obs).
// No-op without a registry. Caller holds s.mu.
func (s *Session) publishLocked(res *opt.Result, rep *RunReport) {
	r := s.cfg.Obs
	if r == nil {
		return
	}
	res.Stats.Publish(r)
	cur := s.cache.Stats()
	snap := obs.NewSnapshot()
	if rep != nil {
		snap.Counters["share.cache_hits"] = int64(rep.CacheHits)
		snap.Counters["share.cache_misses"] = int64(rep.CacheMisses)
		snap.Counters["share.admitted"] = int64(rep.Admitted)
		snap.Counters["share.admitted_bytes"] = rep.AdmittedBytes
		snap.Counters["share.quota_rejected"] = int64(rep.QuotaRejected)
	}
	snap.Counters["share.cache_lookup_hits"] = cur.Hits - s.lastStats.Hits
	snap.Counters["share.cache_insertions"] = cur.Insertions - s.lastStats.Insertions
	snap.Counters["share.cache_evictions"] = cur.Evictions - s.lastStats.Evictions
	snap.Counters["share.cache_invalidations"] = cur.Invalidations - s.lastStats.Invalidations
	snap.Gauges["share.cache_entries"] = int64(cur.Entries)
	snap.Gauges["share.cache_bytes"] = cur.Bytes
	r.Record(snap)
	s.lastStats = cur
}

// admit applies the cost-based admission test to every distinct spool
// in the chosen plan and returns the PersistSpools map for the
// cluster plus the pending cache commits. A spool is admitted when
//
//	(build − read) × reuse > persist
//
// where build is the tree cost of computing and materializing the
// subexpression once, read is the modeled cost of a future consumer
// scanning the artifact under its recorded layout, and persist — the
// write of the artifact — is priced like one such scan. The reuse
// estimate is the observed demand history for the subexpression
// (lookup hits plus admission-time misses from earlier runs) when any
// exists, and Config.ExpectedReuse otherwise. Preadmitted (MQO)
// subexpressions bypass the formula entirely: the workload-level
// selection already paid for the persist in its global cost, and the
// artifact is owned by MQOOwner rather than the submitting tenant.
// Broadcast spools are never admitted (their replicas are layout, not
// content).
//
// Misses count after the group|ctxkey dedup: a subexpression spooled
// for several consumers is one missed sharing opportunity, not one
// per spool reference.
func (s *Session) admit(res *opt.Result, tenant string) (map[string]string, []pending, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	persist := map[string]string{}
	var pend []pending
	misses := 0
	for _, sp := range plan.FindAll(res.Plan, relop.KindPhysSpool) {
		child := sp.Children[0]
		if child.Dlvd.Part.Kind == props.PartBroadcast {
			continue
		}
		sig := res.Sigs[child.Group]
		if child.FP == 0 || sig == "" {
			continue
		}
		key := fmt.Sprintf("%d|%s", sp.Group, sp.CtxKey)
		if _, dup := persist[key]; dup {
			continue
		}
		if s.cache.Contains(child.FP, sig, child.Schema) {
			continue
		}
		misses++
		persist[key] = "" // dedup marker; real path assigned below
		build := plan.TreeCost(sp)
		read := s.model.SpoolReadCost(child.Rel, child.Dlvd.Part)
		// Read the history before recording this run's demand, so the
		// estimate counts prior runs only — a subexpression seen for the
		// first time still falls back to the configured scalar.
		reuse := float64(s.cache.ObservedReuse(child.FP, sig))
		s.cache.NoteDemand(child.FP, sig)
		if reuse <= 0 {
			reuse = s.cfg.ExpectedReuse
		}
		owner := tenant
		if s.preadmit[opt.ForceKey{FP: child.FP, Sig: sig}] {
			owner = MQOOwner
		} else if (build-read)*reuse <= read {
			continue
		}
		s.seq++
		path := fmt.Sprintf("__cache/%016x-%d", child.FP, s.seq)
		persist[key] = path
		pend = append(pend, pending{
			spool: sp, child: child, sig: sig, path: path,
			owner: owner, build: build, read: read,
		})
	}
	// Spools that were deduped or failed the admission test must not
	// reach the executor's persist map.
	for key, path := range persist {
		if path == "" {
			delete(persist, key)
		}
	}
	return persist, pend, misses
}

// collectSources gathers the input files the spool's subtree depends
// on: every Extract path, plus — for subtrees that themselves read
// cached artifacts — the recorded sources of those artifacts. Each
// path is snapshotted with its current FileStore version and catalog
// epoch; any later mutation invalidates the entry.
func (s *Session) collectSources(spool *plan.Node) []Source {
	paths := map[string]bool{}
	seen := map[*plan.Node]bool{}
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		switch op := n.Op.(type) {
		case *relop.PhysExtract:
			paths[op.Path] = true
		case *relop.PhysCacheScan:
			for _, src := range s.cache.SourcesByPath(op.Path) {
				paths[src.Path] = true
			}
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(spool)
	sorted := make([]string, 0, len(paths))
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	out := make([]Source, len(sorted))
	for i, p := range sorted {
		out[i] = Source{Path: p, Version: s.cfg.FS.Version(p), Epoch: s.cfg.Catalog.Epoch(p)}
	}
	return out
}
