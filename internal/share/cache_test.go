package share

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/props"
	"repro/internal/relop"
	"repro/internal/stats"
)

func cacheFixture(maxBytes int64) (*Cache, *exec.FileStore, *stats.Catalog) {
	fs := exec.NewFileStore()
	cat := stats.NewCatalog()
	return NewCache(fs, cat, maxBytes), fs, cat
}

func artifact(fs *exec.FileStore, path string, rows int) *exec.Table {
	t := &exec.Table{Schema: relop.Schema{{Name: "A", Type: relop.TInt}}}
	for i := 0; i < rows; i++ {
		t.Rows = append(t.Rows, relop.Row{relop.IntVal(int64(i))})
	}
	fs.Put(path, t)
	return t
}

func entryFor(fs *exec.FileStore, cat *stats.Catalog, fp uint64, path string, rows int) (opt.CacheEntry, []Source) {
	t := artifact(fs, path, rows)
	_ = t
	src := []Source{{Path: "src.log", Version: fs.Version("src.log"), Epoch: cat.Epoch("src.log")}}
	return opt.CacheEntry{
		Path:   path,
		Schema: relop.Schema{{Name: "A", Type: relop.TInt}},
		Part:   props.RandomPartitioning(),
		FP:     fp,
	}, src
}

func TestCacheLookupMatchesAllThreeKeys(t *testing.T) {
	c, fs, cat := cacheFixture(0)
	ce, src := entryFor(fs, cat, 42, "__cache/a", 3)
	c.Put(ce, "sig-a", 100, src, "", 0, 0)

	if _, ok := c.Lookup(42, "sig-a", ce.Schema); !ok {
		t.Error("exact key should hit")
	}
	if !c.Holds(42) {
		t.Error("Holds(42) should be true")
	}
	// Same fingerprint, different signature: the collision safety net.
	if _, ok := c.Lookup(42, "sig-b", ce.Schema); ok {
		t.Error("different signature must miss")
	}
	// Same fingerprint and signature, different schema.
	other := relop.Schema{{Name: "B", Type: relop.TInt}}
	if _, ok := c.Lookup(42, "sig-a", other); ok {
		t.Error("different schema must miss")
	}
	if _, ok := c.Lookup(7, "sig-a", ce.Schema); ok {
		t.Error("unknown fingerprint must miss")
	}
	if c.Holds(7) {
		t.Error("Holds(7) should be false")
	}
}

func TestCacheInvalidationOnVersionAndEpoch(t *testing.T) {
	c, fs, cat := cacheFixture(0)
	ce, src := entryFor(fs, cat, 1, "__cache/v", 3)
	c.Put(ce, "s", 10, src, "", 0, 0)

	artifact(fs, "src.log", 1) // bump the source's content version
	if _, ok := c.Lookup(1, "s", ce.Schema); ok {
		t.Error("entry must be invalid after its source's version changed")
	}
	if st := c.Stats(); st.Invalidations != 1 || st.Entries != 0 {
		t.Errorf("stats = %+v, want 1 invalidation and 0 entries", st)
	}
	if _, ok := fs.Get("__cache/v"); ok {
		t.Error("invalidation must remove the artifact")
	}

	ce2, src2 := entryFor(fs, cat, 2, "__cache/e", 3)
	c.Put(ce2, "s", 10, src2, "", 0, 0)
	cat.Put("src.log", &stats.TableStats{Rows: 1}) // bump the stats epoch
	if c.Holds(2) {
		t.Error("entry must be invalid after its source's stats epoch changed")
	}
}

func TestCacheEvictionBySize(t *testing.T) {
	c, fs, cat := cacheFixture(250)
	for i := 0; i < 3; i++ {
		ce, src := entryFor(fs, cat, uint64(i+1), fmt.Sprintf("__cache/%d", i), 3)
		c.Put(ce, "s", 100, src, "", 0, 0)
	}
	st := c.Stats()
	if st.Bytes > 250 {
		t.Errorf("cache holds %d bytes, bound 250", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Error("overflowing the byte bound must evict")
	}
	// The oldest entry went first and its artifact with it.
	if c.Holds(1) {
		t.Error("LRU entry should have been evicted")
	}
	if _, ok := fs.Get("__cache/0"); ok {
		t.Error("eviction must remove the artifact")
	}
	if !c.Holds(3) {
		t.Error("newest entry should survive")
	}
}

func TestCacheLRURefreshOnLookup(t *testing.T) {
	c, fs, cat := cacheFixture(250)
	ce1, src1 := entryFor(fs, cat, 1, "__cache/1", 3)
	c.Put(ce1, "s", 100, src1, "", 0, 0)
	ce2, src2 := entryFor(fs, cat, 2, "__cache/2", 3)
	c.Put(ce2, "s", 100, src2, "", 0, 0)
	// Touch entry 1 so entry 2 becomes the eviction victim.
	if _, ok := c.Lookup(1, "s", ce1.Schema); !ok {
		t.Fatal("entry 1 should hit")
	}
	ce3, src3 := entryFor(fs, cat, 3, "__cache/3", 3)
	c.Put(ce3, "s", 100, src3, "", 0, 0)
	if !c.Holds(1) || c.Holds(2) {
		t.Errorf("LRU order ignored the refresh: holds1=%v holds2=%v", c.Holds(1), c.Holds(2))
	}
}

// TestCacheConcurrency exercises the cache under the race detector:
// concurrent lookups, puts, and probes must be safe.
func TestCacheConcurrency(t *testing.T) {
	c, fs, cat := cacheFixture(10_000)
	schema := relop.Schema{{Name: "A", Type: relop.TInt}}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				fp := uint64(w*50 + i)
				ce, src := entryFor(fs, cat, fp, fmt.Sprintf("__cache/c%d-%d", w, i), 2)
				c.Put(ce, "s", 50, src, "", 0, 0)
				c.Lookup(fp, "s", schema)
				c.Holds(fp)
				c.Contains(fp, "s", schema)
				c.Stats()
			}
		}(w)
	}
	wg.Wait()
	if st := c.Stats(); st.Insertions != 400 {
		t.Errorf("insertions = %d, want 400", st.Insertions)
	}
}
