package share

import (
	"reflect"
	"testing"

	"repro/internal/exec"
	"repro/internal/relop"
	"repro/internal/stats"
)

// scriptA shares R between two consumers, so its plan materializes R
// through a spool — the admission candidate.
const scriptA = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) as S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) as S2 FROM R GROUP BY B,C;
OUTPUT R1 TO "a1.out" ORDER BY A, B;
OUTPUT R2 TO "a2.out" ORDER BY B, C;
`

// scriptB recomputes the same R subexpression once (no within-query
// sharing): a warm session should serve it from the cache.
const scriptB = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R3 = SELECT A,C,Sum(S) as S3 FROM R GROUP BY A,C;
OUTPUT R3 TO "b3.out" ORDER BY A, C;
`

func testCatalog() *stats.Catalog {
	cat := stats.NewCatalog()
	cat.Put("test.log", &stats.TableStats{Rows: 2_000_000_000, Columns: map[string]stats.ColumnStats{
		"A": {Distinct: 100, AvgBytes: 8},
		"B": {Distinct: 50, AvgBytes: 8},
		"C": {Distinct: 200, AvgBytes: 8},
		"D": {Distinct: 1 << 40, AvgBytes: 8},
	}})
	return cat
}

func testTable(seed int64) *exec.Table {
	schema := relop.Schema{
		{Name: "A", Type: relop.TInt}, {Name: "B", Type: relop.TInt},
		{Name: "C", Type: relop.TInt}, {Name: "D", Type: relop.TInt},
	}
	t := &exec.Table{Schema: schema}
	for i := int64(0); i < 400; i++ {
		t.Rows = append(t.Rows, relop.Row{
			relop.IntVal(i % 7), relop.IntVal(i % 5),
			relop.IntVal(i % 11), relop.IntVal(i*13 + seed),
		})
	}
	return t
}

func testEnv(t *testing.T) (*stats.Catalog, *exec.FileStore) {
	t.Helper()
	cat := testCatalog()
	fs := exec.NewFileStore()
	fs.Put("test.log", testTable(0))
	return cat, fs
}

func newTestSession(t *testing.T, cat *stats.Catalog, fs *exec.FileStore, workers int) *Session {
	t.Helper()
	s, err := NewSession(Config{Catalog: cat, FS: fs, Machines: 8, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sameRows(t *testing.T, label string, got, want *exec.Table) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: missing table (got=%v want=%v)", label, got != nil, want != nil)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows, want %d", label, len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		if !reflect.DeepEqual(got.Rows[i], want.Rows[i]) {
			t.Fatalf("%s: row %d = %v, want %v", label, i, got.Rows[i], want.Rows[i])
		}
	}
}

// TestSessionWarmHitReducesBytes is acceptance criterion (a): script
// B warm (after A) must move strictly fewer metered exchange+disk
// bytes than B cold, with identical results.
func TestSessionWarmHitReducesBytes(t *testing.T) {
	cat, fs := testEnv(t)
	s := newTestSession(t, cat, fs, 0)

	repA, err := s.Run(scriptA)
	if err != nil {
		t.Fatal(err)
	}
	if repA.Admitted == 0 {
		t.Fatalf("script A admitted nothing: %+v", repA)
	}
	if repA.CacheHits != 0 {
		t.Errorf("cold script A reported %d cache hits", repA.CacheHits)
	}

	warm, err := s.Run(scriptB)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits == 0 {
		t.Fatal("warm script B did not hit the cache")
	}
	if warm.Metrics.CacheReads == 0 || warm.Metrics.CacheBytesRead == 0 {
		t.Errorf("warm metrics did not meter cache reads: %+v", warm.Metrics)
	}

	// Cold baseline: a fresh session (empty cache) over the same data.
	catC, fsC := testEnv(t)
	cold, err := newTestSession(t, catC, fsC, 0).Run(scriptB)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHits != 0 {
		t.Errorf("cold session reported %d cache hits", cold.CacheHits)
	}

	warmBytes := warm.Metrics.DiskBytesRead + warm.Metrics.NetBytes
	coldBytes := cold.Metrics.DiskBytesRead + cold.Metrics.NetBytes
	if warmBytes >= coldBytes {
		t.Errorf("warm disk+net = %d, want strictly below cold %d", warmBytes, coldBytes)
	}
	sameRows(t, "b3.out", warm.Outputs["b3.out"], cold.Outputs["b3.out"])
}

// TestSessionResultsIdenticalAcrossWorkers is acceptance criterion
// (b): warm results are bit-identical to the cold cache-disabled run
// at every worker count.
func TestSessionResultsIdenticalAcrossWorkers(t *testing.T) {
	catR, fsR := testEnv(t)
	ref, err := newTestSession(t, catR, fsR, 1).Run(scriptB)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		cat, fs := testEnv(t)
		s := newTestSession(t, cat, fs, workers)
		if _, err := s.Run(scriptA); err != nil {
			t.Fatal(err)
		}
		warm, err := s.Run(scriptB)
		if err != nil {
			t.Fatal(err)
		}
		if warm.CacheHits == 0 {
			t.Fatalf("workers=%d: no cache hit", workers)
		}
		sameRows(t, "b3.out", warm.Outputs["b3.out"], ref.Outputs["b3.out"])
	}
}

// TestSessionInvalidationOnDataChange is acceptance criterion (c):
// mutating a source table between A and B must evict the dependent
// entry and produce results computed from the new data.
func TestSessionInvalidationOnDataChange(t *testing.T) {
	cat, fs := testEnv(t)
	s := newTestSession(t, cat, fs, 0)
	if _, err := s.Run(scriptA); err != nil {
		t.Fatal(err)
	}

	fs.Put("test.log", testTable(1000)) // new data, new version

	rep, err := s.Run(scriptB)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHits != 0 {
		t.Errorf("script B hit a stale cache entry %d time(s)", rep.CacheHits)
	}
	if st := s.CacheStats(); st.Invalidations == 0 {
		t.Errorf("no invalidation recorded: %+v", st)
	}

	// The results must match a from-scratch run over the new data.
	catC, fsC := testCatalog(), exec.NewFileStore()
	fsC.Put("test.log", testTable(1000))
	cold, err := newTestSession(t, catC, fsC, 0).Run(scriptB)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "b3.out", rep.Outputs["b3.out"], cold.Outputs["b3.out"])
}

// TestSessionInvalidationOnStatsChange: re-registering statistics for
// a source table bumps its epoch, which must also invalidate
// dependent entries (the recorded cost basis is stale).
func TestSessionInvalidationOnStatsChange(t *testing.T) {
	cat, fs := testEnv(t)
	s := newTestSession(t, cat, fs, 0)
	if _, err := s.Run(scriptA); err != nil {
		t.Fatal(err)
	}

	cat.Put("test.log", &stats.TableStats{Rows: 1_000, Columns: map[string]stats.ColumnStats{
		"A": {Distinct: 7, AvgBytes: 8}, "B": {Distinct: 5, AvgBytes: 8},
		"C": {Distinct: 11, AvgBytes: 8}, "D": {Distinct: 400, AvgBytes: 8},
	}})

	rep, err := s.Run(scriptB)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHits != 0 {
		t.Errorf("script B hit a cache entry with a stale stats epoch %d time(s)", rep.CacheHits)
	}
	if st := s.CacheStats(); st.Invalidations == 0 {
		t.Errorf("no invalidation recorded: %+v", st)
	}
}

// TestSessionCacheStats: admission populates the cache and the
// session reports it.
func TestSessionCacheStats(t *testing.T) {
	cat, fs := testEnv(t)
	s := newTestSession(t, cat, fs, 0)
	rep, err := s.Run(scriptA)
	if err != nil {
		t.Fatal(err)
	}
	st := s.CacheStats()
	if st.Entries == 0 || st.Bytes == 0 || st.Insertions == 0 {
		t.Errorf("cache stats after admission = %+v", st)
	}
	if rep.AdmittedBytes != st.Bytes {
		t.Errorf("report admitted %d bytes, cache holds %d", rep.AdmittedBytes, st.Bytes)
	}
	if rep.CacheMisses == 0 {
		t.Errorf("script A should report its spool as a miss: %+v", rep)
	}
	// The warm run must not change occupancy (same entry, no re-admit).
	if _, err := s.Run(scriptB); err != nil {
		t.Fatal(err)
	}
	if st2 := s.CacheStats(); st2.Entries != st.Entries {
		t.Errorf("entries changed %d -> %d across a pure-hit run", st.Entries, st2.Entries)
	}
}

// TestSessionConfigErrors: a session without its moving parts is an
// error, not a latent panic.
func TestSessionConfigErrors(t *testing.T) {
	if _, err := NewSession(Config{}); err == nil {
		t.Error("empty config should not build a session")
	}
	cat, fs := testEnv(t)
	if _, err := NewSession(Config{Catalog: cat, FS: fs}); err == nil {
		t.Error("zero machines should not build a session")
	}
	s := newTestSession(t, cat, fs, 0)
	if _, err := s.Run("not a script"); err == nil {
		t.Error("garbage script should fail")
	}
}
