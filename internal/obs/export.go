// Chrome trace_event export. The JSON Object Format is documented in
// the Trace Event Format spec and accepted by Perfetto and
// chrome://tracing: a top-level object with a traceEvents array of
// complete ("ph":"X") events carrying microsecond timestamps.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// traceEvent is one entry of the traceEvents array. Complete events
// use Ph "X" with Ts/Dur; metadata events use Ph "M".
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteJSON writes the recorded spans as Chrome trace_event JSON.
// Each root span and its subtree land on their own track (tid), so
// the optimizer run and the executor run show as separate lanes in
// Perfetto. Track numbering follows root recording order — roots are
// opened serially by the CLIs, so the file layout is stable too.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: cannot export a nil tracer")
	}
	spans := t.snapshot()
	roots, kids := children(spans)
	f := traceFile{DisplayTimeUnit: "ms"}
	f.TraceEvents = append(f.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "scope"},
	})
	for tid, r := range roots {
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": fmt.Sprintf("%s.%s %s", spans[r].cat, spans[r].name, spans[r].id)},
		})
		emitSubtree(&f, spans, kids, r, tid)
	}
	data, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteFile writes the trace to path; see WriteJSON.
func (t *Tracer) WriteFile(path string) error {
	if t == nil {
		return fmt.Errorf("obs: cannot export a nil tracer")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func emitSubtree(f *traceFile, spans []spanRecord, kids [][]int, i, tid int) {
	rec := spans[i]
	dur := rec.dur
	if dur < 0 {
		dur = 0 // span never ended; render as instantaneous
	}
	ev := traceEvent{
		Name: rec.name,
		Cat:  rec.cat,
		Ph:   "X",
		Ts:   float64(rec.start) / 1e3,
		Dur:  float64(dur) / 1e3,
		Pid:  1,
		Tid:  tid,
	}
	ev.Args = map[string]any{"id": rec.id}
	for _, a := range rec.args {
		ev.Args[a.Key] = a.Val
	}
	f.TraceEvents = append(f.TraceEvents, ev)
	for _, k := range kids[i] {
		emitSubtree(f, spans, kids, k, tid)
	}
}

// TraceSummary reports what a validated trace file contains.
type TraceSummary struct {
	Spans int            // complete ("X") events
	ByCat map[string]int // span count per category
}

func (s TraceSummary) String() string {
	return fmt.Sprintf("trace ok: %d spans (opt=%d exec=%d other=%d)",
		s.Spans, s.ByCat["opt"], s.ByCat["exec"],
		s.Spans-s.ByCat["opt"]-s.ByCat["exec"])
}

// ValidateTrace parses data as Chrome trace_event JSON and checks it
// is well-formed: a traceEvents array with at least one complete
// event, every complete event carrying a name, a non-negative
// timestamp, and a non-negative duration. It is the check behind the
// scopetrace CLI and the check.sh trace smoke leg.
func ValidateTrace(data []byte) (TraceSummary, error) {
	sum := TraceSummary{ByCat: map[string]int{}}
	var f struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Cat  string   `json:"cat"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return sum, fmt.Errorf("obs: not trace_event JSON: %w", err)
	}
	if len(f.TraceEvents) == 0 {
		return sum, fmt.Errorf("obs: traceEvents array is missing or empty")
	}
	for i, ev := range f.TraceEvents {
		if ev.Name == "" {
			return sum, fmt.Errorf("obs: event %d has no name", i)
		}
		if ev.Ph == "" {
			return sum, fmt.Errorf("obs: event %d (%s) has no phase", i, ev.Name)
		}
		if ev.Ph != "X" {
			continue
		}
		if ev.Ts == nil || *ev.Ts < 0 {
			return sum, fmt.Errorf("obs: event %d (%s) has a missing or negative ts", i, ev.Name)
		}
		if ev.Dur == nil || *ev.Dur < 0 {
			return sum, fmt.Errorf("obs: event %d (%s) has a missing or negative dur", i, ev.Name)
		}
		sum.Spans++
		sum.ByCat[ev.Cat]++
	}
	if sum.Spans == 0 {
		return sum, fmt.Errorf("obs: trace has no complete (ph=X) events")
	}
	return sum, nil
}
