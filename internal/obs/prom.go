// Prometheus text exposition (format version 0.0.4) over a registry
// snapshot. The registry's flat metric names map onto Prometheus
// conventions in one place:
//
//   - dots become underscores and every name gains a namespace prefix
//     ("serve.requests" → "scope_serve_requests"),
//   - the per-tenant name pattern "<sys>.tenant.<tenant>.<field>"
//     becomes one metric per field with a tenant label
//     ("serve.tenant.a.requests" → scope_serve_tenant_requests{tenant="a"}),
//   - power-of-two histograms render as cumulative _bucket series
//     (le = the bucket's inclusive upper bound) plus _sum and _count.
//
// Output is deterministic: one # TYPE line per metric family, families
// sorted by name, samples sorted by label value within a family.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4"

// promSample is one rendered sample: a label suffix (possibly empty)
// and a formatted value.
type promSample struct {
	labels string
	value  string
}

// promFamily collects the samples sharing one metric name.
type promFamily struct {
	name    string
	kind    string // "counter", "gauge", "histogram"
	samples []promSample
}

// promName maps a registry metric name onto (metric name, label
// suffix): the "<sys>.tenant.<tenant>.<field>" pattern folds the
// tenant segment into a label; everything else is a plain rename. A
// tenant containing dots keeps them — the field is the last segment.
func promName(namespace, name string) (string, string) {
	if i := strings.Index(name, ".tenant."); i >= 0 {
		rest := name[i+len(".tenant."):]
		if j := strings.LastIndex(rest, "."); j > 0 {
			metric := sanitizeMetric(namespace + "_" + name[:i] + "_tenant_" + rest[j+1:])
			return metric, fmt.Sprintf("{tenant=%q}", rest[:j])
		}
	}
	return sanitizeMetric(namespace + "_" + name), ""
}

// sanitizeMetric rewrites a name into the Prometheus metric charset
// [a-zA-Z0-9_:]; anything else becomes an underscore.
func sanitizeMetric(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sortedKeys returns m's keys in sorted order, so family assembly
// never depends on map iteration order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// promFamilies buckets one metric kind's entries into families.
func promFamilies(namespace, kind string, m map[string]int64, fams map[string]*promFamily) {
	for _, name := range sortedKeys(m) {
		metric, labels := promName(namespace, name)
		f := fams[metric]
		if f == nil {
			f = &promFamily{name: metric, kind: kind}
			fams[metric] = f
		}
		f.samples = append(f.samples, promSample{labels: labels, value: fmt.Sprintf("%d", m[name])})
	}
}

// bucketUpper returns bucket i's inclusive upper bound: bucket 0
// holds v <= 0, bucket i>0 holds values needing i significant bits,
// i.e. v <= 2^i - 1.
func bucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(i)) - 1
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format under the given namespace prefix.
func (s Snapshot) WritePrometheus(w io.Writer, namespace string) error {
	if namespace == "" {
		namespace = "scope"
	}
	fams := map[string]*promFamily{}
	promFamilies(namespace, "counter", s.Counters, fams)
	promFamilies(namespace, "gauge", s.Gauges, fams)
	for _, name := range sortedKeys(s.Hists) {
		metric, labels := promName(namespace, name)
		f := fams[metric]
		if f == nil {
			f = &promFamily{name: metric, kind: "histogram"}
			fams[metric] = f
		}
		f.samples = append(f.samples, histSamples(metric, labels, s.Hists[name])...)
	}
	for _, name := range sortedKeys(fams) {
		f := fams[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, sm := range f.samples {
			line := f.name + sm.labels
			if f.kind == "histogram" {
				// Histogram sample labels already embed the full series
				// name (metric_bucket{le=...}, metric_sum, metric_count).
				line = sm.labels
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", line, sm.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// histSamples renders one histogram's cumulative bucket, sum, and
// count series. Each sample's labels field holds the full series name
// (histogram series append _bucket/_sum/_count to the family name, so
// the family name alone cannot prefix them). The labels argument
// carries a pre-rendered label suffix (e.g. a tenant) merged into
// each series.
func histSamples(metric, labels string, h HistValue) []promSample {
	idxs := make([]int, 0, len(h.Buckets))
	for i := range h.Buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]promSample, 0, len(idxs)+3)
	cum := int64(0)
	for _, i := range idxs {
		cum += h.Buckets[i]
		out = append(out, promSample{
			labels: metric + "_bucket" + mergeLE(labels, fmt.Sprintf("%d", bucketUpper(i))),
			value:  fmt.Sprintf("%d", cum),
		})
	}
	return append(out,
		promSample{labels: metric + "_bucket" + mergeLE(labels, "+Inf"), value: fmt.Sprintf("%d", h.Count)},
		promSample{labels: metric + "_sum" + labels, value: fmt.Sprintf("%d", h.Sum)},
		promSample{labels: metric + "_count" + labels, value: fmt.Sprintf("%d", h.Count)},
	)
}

// mergeLE merges an le label into an existing label suffix.
func mergeLE(labels, le string) string {
	if labels == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return strings.TrimSuffix(labels, "}") + fmt.Sprintf(",le=%q}", le)
}
