package obs

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Start(Span{}, "exec", "op", "G1")
	sp.Arg("rows", 7)
	child := tr.Start(sp, "exec", "part", "p0")
	child.End()
	sp.End()
	if tr.Len() != 0 {
		t.Fatalf("nil tracer recorded %d spans", tr.Len())
	}
	if got := tr.TreeString(); got != "" {
		t.Fatalf("nil tracer TreeString = %q", got)
	}
	if err := tr.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Fatal("nil tracer WriteJSON should error")
	}
}

func TestNilTracerAllocationFree(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(Span{}, "exec", "op", "G1")
		sp.Arg("rows", 7)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil tracer path allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestSpanTreeShape(t *testing.T) {
	tr := NewTracer()
	root := tr.Start(Span{}, "opt", "optimize", "optimize")
	p1 := tr.Start(root, "opt", "phase1", "phase1")
	p1.Arg("tasks", 3)
	p1.End()
	p2 := tr.Start(root, "opt", "phase2", "phase2")
	r1 := tr.Start(p2, "opt", "round", "G7:hash")
	r1.Arg("cost", 100)
	r1.End()
	r2 := tr.Start(p2, "opt", "round", "G7:sort")
	r2.Arg("cost", 90)
	r2.End()
	p2.End()
	root.End()

	want := strings.Join([]string{
		"opt.optimize optimize",
		"  opt.phase1 phase1 tasks=3",
		"  opt.phase2 phase2",
		"    opt.round G7:hash cost=100",
		"    opt.round G7:sort cost=90",
		"",
	}, "\n")
	if got := tr.TreeString(); got != want {
		t.Fatalf("TreeString:\n%s\nwant:\n%s", got, want)
	}
}

// TestTreeStringOrderIndependent is the core determinism property:
// spans recorded in any interleaving render identically as long as
// their identities and parent links match.
func TestTreeStringOrderIndependent(t *testing.T) {
	a := func() string {
		tr := NewTracer()
		root := tr.Start(Span{}, "exec", "run", "run")
		for _, p := range []struct {
			id   string
			rows int64
		}{{"p0", 1}, {"p1", 2}, {"p2", 3}} {
			sp := tr.Start(root, "exec", "part", p.id)
			sp.Arg("rows", p.rows)
			sp.End()
		}
		root.End()
		return tr.TreeString()
	}()
	b := func() string {
		tr := NewTracer()
		root := tr.Start(Span{}, "exec", "run", "run")
		for _, p := range []struct {
			id   string
			rows int64
		}{{"p2", 3}, {"p0", 1}, {"p1", 2}} {
			sp := tr.Start(root, "exec", "part", p.id)
			sp.Arg("rows", p.rows)
			sp.End()
		}
		root.End()
		return tr.TreeString()
	}()
	if a != b {
		t.Fatalf("recording order leaked into TreeString:\n%s\nvs\n%s", a, b)
	}
}

func TestConcurrentSpanRecording(t *testing.T) {
	tr := NewTracer()
	root := tr.Start(Span{}, "exec", "run", "run")
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := tr.Start(root, "exec", "part", fmt.Sprintf("w%d.%d", w, i))
				sp.Arg("i", int64(i))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	if got := tr.Len(); got != workers*50+1 {
		t.Fatalf("recorded %d spans, want %d", got, workers*50+1)
	}
	// The tree must include every span exactly once.
	tree := tr.TreeString()
	if n := strings.Count(tree, "exec.part"); n != workers*50 {
		t.Fatalf("tree has %d partition spans, want %d", n, workers*50)
	}
}

func TestWriteJSONValidates(t *testing.T) {
	tr := NewTracer()
	root := tr.Start(Span{}, "opt", "optimize", "optimize")
	sp := tr.Start(root, "opt", "phase1", "phase1")
	sp.Arg("tasks", 2)
	sp.End()
	root.End()
	run := tr.Start(Span{}, "exec", "run", "run")
	open := tr.Start(run, "exec", "op", "G1.deadbeef")
	_ = open // deliberately left open: export must still be valid
	run.End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace fails validation: %v", err)
	}
	if sum.Spans != 4 {
		t.Fatalf("summary counted %d spans, want 4", sum.Spans)
	}
	if sum.ByCat["opt"] != 2 || sum.ByCat["exec"] != 2 {
		t.Fatalf("bad per-category counts: %v", sum.ByCat)
	}
	if !strings.Contains(sum.String(), "trace ok") {
		t.Fatalf("summary string: %q", sum.String())
	}
}

func TestValidateTraceRejects(t *testing.T) {
	cases := []struct{ name, data string }{
		{"not json", "hello"},
		{"empty events", `{"traceEvents":[]}`},
		{"no name", `{"traceEvents":[{"ph":"X","ts":0,"dur":1,"pid":1,"tid":0}]}`},
		{"no phase", `{"traceEvents":[{"name":"x","ts":0,"dur":1}]}`},
		{"negative ts", `{"traceEvents":[{"name":"x","ph":"X","ts":-1,"dur":1}]}`},
		{"missing dur", `{"traceEvents":[{"name":"x","ph":"X","ts":0}]}`},
		{"only metadata", `{"traceEvents":[{"name":"process_name","ph":"M","ts":0}]}`},
	}
	for _, c := range cases {
		if _, err := ValidateTrace([]byte(c.data)); err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
}

func TestCostArg(t *testing.T) {
	if got := CostArg(99.6); got != 100 {
		t.Fatalf("CostArg(99.6) = %d", got)
	}
	inf := CostArg(math.Inf(1))
	if inf != -1 {
		t.Fatalf("CostArg(+Inf) = %d, want -1", inf)
	}
}
