package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheus pins the exposition shape end to end: type
// lines, namespace/sanitization, tenant-label folding, and histogram
// bucket/sum/count series with cumulative counts.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.requests").Add(42)
	r.Counter("serve.tenant.alice.cache_hits").Add(7)
	r.Counter("serve.tenant.bob.cache_hits").Add(3)
	r.Gauge("share.cache_bytes").Set(1024)
	h := r.Histogram("serve.latency_us")
	h.Observe(1) // bucket 1 (le 1)
	h.Observe(3) // bucket 2 (le 3)
	h.Observe(3)

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b, "scope"); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# TYPE scope_serve_latency_us histogram
scope_serve_latency_us_bucket{le="1"} 1
scope_serve_latency_us_bucket{le="3"} 3
scope_serve_latency_us_bucket{le="+Inf"} 3
scope_serve_latency_us_sum 7
scope_serve_latency_us_count 3
# TYPE scope_serve_requests counter
scope_serve_requests 42
# TYPE scope_serve_tenant_cache_hits counter
scope_serve_tenant_cache_hits{tenant="alice"} 7
scope_serve_tenant_cache_hits{tenant="bob"} 3
# TYPE scope_share_cache_bytes gauge
scope_share_cache_bytes 1024
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusDeterministic renders the same snapshot twice
// and requires byte-identical output (map iteration must never leak
// into the stream).
func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"b.two", "a.one", "c.three", "serve.tenant.x.requests", "serve.tenant.y.requests"} {
		r.Counter(name).Add(1)
	}
	r.Histogram("h.one").Observe(100)
	r.Histogram("h.two").Observe(5)
	snap := r.Snapshot()
	var b1, b2 strings.Builder
	if err := snap.WritePrometheus(&b1, "scope"); err != nil {
		t.Fatal(err)
	}
	if err := snap.WritePrometheus(&b2, "scope"); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Errorf("nondeterministic exposition:\n%s\nvs\n%s", b1.String(), b2.String())
	}
}

// TestPromNameSanitize covers the charset rewrite and the dotted
// tenant edge (the field is the last segment; dots inside the tenant
// survive into the label).
func TestPromNameSanitize(t *testing.T) {
	cases := []struct {
		in, metric, labels string
	}{
		{"serve.requests", "scope_serve_requests", ""},
		{"serve.tenant.a.requests", "scope_serve_tenant_requests", `{tenant="a"}`},
		{"serve.tenant.a.b.requests", "scope_serve_tenant_requests", `{tenant="a.b"}`},
		{"weird-name/1", "scope_weird_name_1", ""},
	}
	for _, c := range cases {
		metric, labels := promName("scope", c.in)
		if metric != c.metric || labels != c.labels {
			t.Errorf("promName(%q) = %q %q, want %q %q", c.in, metric, labels, c.metric, c.labels)
		}
	}
}

// TestHistogramQuantile checks the interpolated quantiles against a
// known distribution: the exact percentile must fall inside the
// chosen bucket, and the interpolation must land within the
// power-of-two error bound.
func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	cases := []struct {
		p     float64
		exact float64
	}{
		{0.50, 500},
		{0.90, 900},
		{0.99, 990},
	}
	for _, c := range cases {
		got := h.Quantile(c.p)
		if got < c.exact/2 || got > c.exact*2 {
			t.Errorf("Quantile(%g) = %g, want within 2x of %g", c.p, got, c.exact)
		}
	}
	// Monotone in p.
	last := -1.0
	for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		q := h.Quantile(p)
		if q < last {
			t.Errorf("Quantile(%g) = %g < previous %g; quantiles must be monotone", p, q, last)
		}
		last = q
	}
	// The top quantile never exceeds the recorded maximum.
	if q := h.Quantile(1); q > 1000 {
		t.Errorf("Quantile(1) = %g exceeds the observed max 1000", q)
	}
}

// TestHistogramQuantileInterpolation pins the arithmetic on a small
// hand-computed case: 4 observations of 8..11 all land in bucket 4
// (values 8..15); with Max=11 recorded the bucket is clamped to
// [8,11], so p=0.5 interpolates to 8 + 3*(2/4) = 9.5.
func TestHistogramQuantileInterpolation(t *testing.T) {
	var h Histogram
	for _, v := range []int64{8, 9, 10, 11} {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); got != 9.5 {
		t.Errorf("Quantile(0.5) = %g, want 9.5", got)
	}
	if got := h.Quantile(1); got != 11 {
		t.Errorf("Quantile(1) = %g, want 11 (clamped to max)", got)
	}
}

// TestHistogramQuantileEdges covers the degenerate inputs.
func TestHistogramQuantileEdges(t *testing.T) {
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %g, want 0", got)
	}
	var nilHist *Histogram
	if got := nilHist.Quantile(0.5); got != 0 {
		t.Errorf("nil Quantile = %g, want 0", got)
	}
	var one Histogram
	one.Observe(42)
	for _, p := range []float64{-1, 0, 0.5, 1, 2} {
		q := one.Quantile(p)
		if q < 32 || q > 42 {
			t.Errorf("single-observation Quantile(%g) = %g, want inside bucket [32,42]", p, q)
		}
	}
}
