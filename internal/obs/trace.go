// Package obs is the unified observability layer: a low-overhead span
// tracer exported as Chrome trace_event JSON (viewable in Perfetto)
// and a race-safe metrics registry unifying the per-subsystem stat
// structs behind one snapshot interface.
//
// Design constraints, in order:
//
//  1. Disabled must be free. Every method is safe on a nil *Tracer
//     and on the zero Span, and the nil path performs no allocation —
//     callers thread a possibly-nil tracer through hot loops without
//     guarding each call. The only thing call sites guard is the
//     construction of span IDs (fmt.Sprintf), which the tracer cannot
//     do for them.
//
//  2. Deterministic modulo timestamps. Span IDs are derived from plan
//     and memo-group identities, never from goroutine scheduling, and
//     parent links are explicit. TreeString renders the span forest
//     with children ordered by content, so the same script traced at
//     any worker-pool width yields byte-identical trees even though
//     the append order of concurrent spans differs run to run.
//
//  3. Append-only under one mutex. Spans are records in a flat slice;
//     Start/End/Arg are O(1) critical sections, cheap enough that the
//     executor can afford a span per partition task.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Tracer records a forest of spans. The zero value is not usable; use
// NewTracer. A nil *Tracer is the disabled tracer: every method is a
// no-op and Start returns the zero Span.
type Tracer struct {
	epoch time.Time

	mu    sync.Mutex
	spans []spanRecord // guarded by mu
}

// spanRecord is the internal storage for one span. Parent is an index
// into the tracer's span slice, -1 for roots.
type spanRecord struct {
	cat    string
	name   string
	id     string
	parent int32
	start  int64 // ns since tracer epoch
	dur    int64 // ns; -1 while the span is open
	args   []Arg
}

// Arg is a deterministic integer annotation on a span. Only integers
// are allowed: they are what the subsystems meter, and they keep the
// rendered tree free of float formatting noise.
type Arg struct {
	Key string
	Val int64
}

// NewTracer returns an enabled tracer.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Enabled reports whether spans are being recorded. Call sites use it
// to skip span-ID construction on the nil path.
func (t *Tracer) Enabled() bool { return t != nil }

// Span is a handle to an open (or finished) span. The zero Span is
// valid and inert: Arg and End on it are no-ops, and passing it as a
// parent to Start creates a root span.
type Span struct {
	t   *Tracer
	idx int32
}

// Start opens a span under parent (zero Span for a root). cat groups
// spans by subsystem ("opt", "exec"), name is the kind of work, and
// id is the deterministic identity of this instance — derived from
// plan/group IDs by the caller, never from scheduling order.
func (t *Tracer) Start(parent Span, cat, name, id string) Span {
	if t == nil {
		return Span{}
	}
	now := time.Since(t.epoch).Nanoseconds()
	p := int32(-1)
	if parent.t == t {
		p = parent.idx
	}
	t.mu.Lock()
	idx := int32(len(t.spans))
	t.spans = append(t.spans, spanRecord{
		cat: cat, name: name, id: id, parent: p, start: now, dur: -1,
	})
	t.mu.Unlock()
	return Span{t: t, idx: idx}
}

// Arg attaches an integer annotation to the span.
func (s Span) Arg(key string, val int64) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	rec := &s.t.spans[s.idx]
	rec.args = append(rec.args, Arg{Key: key, Val: val})
	s.t.mu.Unlock()
}

// End closes the span, fixing its duration. Ending twice keeps the
// first duration.
func (s Span) End() {
	if s.t == nil {
		return
	}
	now := time.Since(s.t.epoch).Nanoseconds()
	s.t.mu.Lock()
	rec := &s.t.spans[s.idx]
	if rec.dur < 0 {
		rec.dur = now - rec.start
	}
	s.t.mu.Unlock()
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// CostArg converts an estimated cost to a span argument: costs are
// rounded to integer units, and the +Inf sentinel (used by the
// optimizer for "no plan under this bound") maps to -1.
func CostArg(c float64) int64 {
	if math.IsInf(c, 1) || c > math.MaxInt64/2 {
		return -1
	}
	return int64(math.Round(c))
}

// snapshot copies the span records so rendering can work without
// holding the mutex.
func (t *Tracer) snapshot() []spanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]spanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// children builds the parent→children index (recording order) and the
// list of roots.
func children(spans []spanRecord) (roots []int, kids [][]int) {
	kids = make([][]int, len(spans))
	for i, s := range spans {
		if s.parent < 0 {
			roots = append(roots, i)
		} else {
			kids[s.parent] = append(kids[s.parent], i)
		}
	}
	return roots, kids
}

// TreeString renders the span forest deterministically: timestamps
// and durations are omitted, and the children of every span (and the
// roots) are sorted by their full rendered subtree. Two traces of the
// same work compare equal with == regardless of how goroutines
// interleaved, which is exactly the property the determinism tests
// assert.
func (t *Tracer) TreeString() string {
	if t == nil {
		return ""
	}
	spans := t.snapshot()
	roots, kids := children(spans)
	rendered := make([]string, 0, len(roots))
	for _, r := range roots {
		rendered = append(rendered, renderSubtree(spans, kids, r, 0))
	}
	sort.Strings(rendered)
	return strings.Join(rendered, "")
}

func renderSubtree(spans []spanRecord, kids [][]int, i, depth int) string {
	var b strings.Builder
	rec := spans[i]
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(&b, "%s.%s %s", rec.cat, rec.name, rec.id)
	args := append([]Arg(nil), rec.args...)
	sort.Slice(args, func(a, c int) bool {
		if args[a].Key != args[c].Key {
			return args[a].Key < args[c].Key
		}
		return args[a].Val < args[c].Val
	})
	for _, a := range args {
		fmt.Fprintf(&b, " %s=%d", a.Key, a.Val)
	}
	b.WriteByte('\n')
	sub := make([]string, 0, len(kids[i]))
	for _, k := range kids[i] {
		sub = append(sub, renderSubtree(spans, kids, k, depth+1))
	}
	sort.Strings(sub)
	for _, s := range sub {
		b.WriteString(s)
	}
	return b.String()
}
