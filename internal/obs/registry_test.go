package obs

import (
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryNoOp(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(1)
	r.Gauge("g").Set(2)
	r.Histogram("h").Observe(3)
	r.Record(NewSnapshot())
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Hists) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	r.Counter("exec.rows").Add(10)
	r.Counter("exec.rows").Add(5)
	r.Gauge("share.cache_bytes").Set(100)
	r.Gauge("share.cache_bytes").Set(80)
	r.Histogram("exec.run_rows").Observe(3)
	r.Histogram("exec.run_rows").Observe(12)

	s := r.Snapshot()
	if s.Counters["exec.rows"] != 15 {
		t.Fatalf("counter = %d", s.Counters["exec.rows"])
	}
	if s.Gauges["share.cache_bytes"] != 80 {
		t.Fatalf("gauge = %d", s.Gauges["share.cache_bytes"])
	}
	h := s.Hists["exec.run_rows"]
	if h.Count != 2 || h.Sum != 15 || h.Max != 12 {
		t.Fatalf("hist = %+v", h)
	}
	if h.Buckets[bucketOf(3)] != 1 || h.Buckets[bucketOf(12)] != 1 {
		t.Fatalf("hist buckets = %v", h.Buckets)
	}
}

// TestSnapshotAddMergesLikeRegistry: folding two snapshots with Add
// must equal publishing both into one registry via Record — the
// invariant the concurrent-run merge tests in exec and share build
// on.
func TestSnapshotAddMergesLikeRegistry(t *testing.T) {
	a := NewSnapshot()
	a.Counters["exec.rows"] = 10
	a.Gauges["share.entries"] = 2
	a.Hists["exec.run_rows"] = HistValue{Count: 1, Sum: 10, Max: 10, Buckets: map[int]int64{bucketOf(10): 1}}

	b := NewSnapshot()
	b.Counters["exec.rows"] = 5
	b.Counters["opt.rounds"] = 3
	b.Gauges["share.entries"] = 4
	b.Hists["exec.run_rows"] = HistValue{Count: 2, Sum: 7, Max: 6, Buckets: map[int]int64{bucketOf(1): 1, bucketOf(6): 1}}

	merged := a.Add(b)

	r := NewRegistry()
	r.Record(a)
	r.Record(b)
	if got := r.Snapshot(); !reflect.DeepEqual(got, merged) {
		t.Fatalf("Record-then-Snapshot != Add:\n%+v\nvs\n%+v", got, merged)
	}
	if merged.Counters["exec.rows"] != 15 || merged.Counters["opt.rounds"] != 3 {
		t.Fatalf("counters: %v", merged.Counters)
	}
	if merged.Gauges["share.entries"] != 4 {
		t.Fatalf("gauge should take the later level: %v", merged.Gauges)
	}
	h := merged.Hists["exec.run_rows"]
	if h.Count != 3 || h.Sum != 17 || h.Max != 10 {
		t.Fatalf("hist merge: %+v", h)
	}
}

// TestSnapshotAddDoesNotAlias: Add must deep-copy so later mutation
// of the result cannot corrupt the inputs.
func TestSnapshotAddDoesNotAlias(t *testing.T) {
	a := NewSnapshot()
	a.Hists["h"] = HistValue{Count: 1, Sum: 1, Max: 1, Buckets: map[int]int64{1: 1}}
	out := a.Add(NewSnapshot())
	out.Hists["h"].Buckets[1] = 99
	if a.Hists["h"].Buckets[1] != 1 {
		t.Fatal("Add aliased the input histogram buckets")
	}
}

func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("c").Add(1)
				r.Histogram("h").Observe(int64(i))
				r.Gauge("g").Set(int64(i))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["c"] != workers*perWorker {
		t.Fatalf("counter = %d, want %d", s.Counters["c"], workers*perWorker)
	}
	h := s.Hists["h"]
	if h.Count != workers*perWorker || h.Max != perWorker-1 {
		t.Fatalf("hist = %+v", h)
	}
}

func TestSnapshotStringStable(t *testing.T) {
	s := NewSnapshot()
	s.Counters["exec.rows_processed"] = 42
	s.Counters["exec.disk_bytes_read"] = 1024
	s.Gauges["share.cache_entries"] = 2
	s.Hists["exec.run_rows"] = HistValue{Count: 2, Sum: 10, Max: 7, Buckets: map[int]int64{3: 2}}

	want := strings.Join([]string{
		"counters:",
		"  exec.disk_bytes_read                 1024",
		"  exec.rows_processed                  42",
		"gauges:",
		"  share.cache_entries                  2",
		"histograms:",
		"  exec.run_rows                        count=2 sum=10 mean=5 max=7",
		"",
	}, "\n")
	if got := s.String(); got != want {
		t.Fatalf("String:\n%q\nwant:\n%q", got, want)
	}
	if NewSnapshot().String() != "(no metrics)\n" {
		t.Fatalf("empty snapshot: %q", NewSnapshot().String())
	}
}
