package eventlog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/exec"
	"repro/internal/relop"
)

func TestRingBounded(t *testing.T) {
	l := New(4)
	for i := 0; i < 10; i++ {
		l.Submit(Event{Tenant: "a", Script: ScriptID(fmt.Sprintf("q%d", i))})
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want capacity 4", len(evs))
	}
	if l.Len() != 10 {
		t.Errorf("Len() = %d, want 10 total submissions", l.Len())
	}
	// Oldest first: the survivors are submissions 7..10.
	for i, ev := range evs {
		if want := int64(7 + i); ev.Seq != want {
			t.Errorf("ring[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestDeterministicIDs(t *testing.T) {
	mk := func() []Event {
		l := New(16)
		var out []Event
		out = append(out, l.Submit(Event{Tenant: "a", Script: ScriptID("s1")}))
		out = append(out, l.Submit(Event{Tenant: "b", Script: ScriptID("s1")}))
		out = append(out, l.Submit(Event{Tenant: "a", Script: ScriptID("s1")}))
		out = append(out, l.Submit(Event{Tenant: "a", Script: ScriptID("s2")}))
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Errorf("event %d: ID %q differs across identical runs (%q)", i, a[i].ID, b[i].ID)
		}
	}
	// Same identity resubmitted gets a new occurrence suffix, distinct
	// identities distinct prefixes.
	if a[0].ID == a[2].ID {
		t.Errorf("repeat submission reused ID %q; want a new occurrence", a[0].ID)
	}
	if !strings.HasSuffix(a[0].ID, "-1") || !strings.HasSuffix(a[2].ID, "-2") {
		t.Errorf("occurrence suffixes wrong: %q then %q", a[0].ID, a[2].ID)
	}
	if a[0].ID[:16] == a[1].ID[:16] || a[0].ID[:16] == a[3].ID[:16] {
		t.Errorf("distinct identities share an ID prefix: %q %q %q", a[0].ID, a[1].ID, a[3].ID)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	l := New(8)
	l.Submit(Event{
		Tenant: "a", Script: ScriptID("s1"), Engine: "vec",
		Covered: []string{SubexprID(7, "sig")}, Uncovered: []string{SubexprID(9, "other")},
		Folded: true, GroupSize: 3, MQOChosen: 2,
		CacheHits: 1, CacheMisses: 2, Admitted: 2, AdmittedBytes: 640,
		QuotaRejected: 1, Evicted: 1, Spills: 4, QErrMax: 2.5,
		Outputs: []Output{{Path: "/out/a", Rows: 10, Digest: "00deadbeef000000"}},
	})
	l.Submit(Event{Tenant: "b", Script: ScriptID("s2"), Error: "boom", GroupSize: 1})
	evs := l.Events()
	got, err := ReadJSONL(bytes.NewReader(JSONL(evs)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("round trip returned %d events, want 2", len(got))
	}
	wantJSON := JSONL(evs)
	gotJSON := JSONL(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("round trip changed the stream:\n%s\nvs\n%s", wantJSON, gotJSON)
	}
}

func TestReadJSONLMalformed(t *testing.T) {
	in := `{"seq":1,"tenant":"a"}` + "\n\nnot json\n"
	if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("malformed line did not fail the read")
	} else if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %v does not name the offending line", err)
	}
}

func TestCanonicalZeroesTiming(t *testing.T) {
	l := New(8)
	ev := l.Submit(Event{Tenant: "a", Script: ScriptID("s1"), LatencyUs: 1234})
	if ev.TimeUs == 0 {
		t.Fatal("Submit did not stamp TimeUs")
	}
	c := Canonical(ev)
	if c.TimeUs != 0 || c.LatencyUs != 0 {
		t.Errorf("Canonical left timing: time_us=%d latency_us=%d", c.TimeUs, c.LatencyUs)
	}
	if c.Seq != ev.Seq || c.ID != ev.ID || c.Tenant != ev.Tenant {
		t.Error("Canonical changed non-timing fields")
	}
	jl := string(CanonicalJSONL(l.Events()))
	if !strings.Contains(jl, `"time_us":0`) || !strings.Contains(jl, `"latency_us":0`) {
		t.Errorf("CanonicalJSONL kept timing: %s", jl)
	}
}

func TestRecentFilter(t *testing.T) {
	l := New(16)
	for i := 0; i < 6; i++ {
		tenant := "a"
		if i%2 == 1 {
			tenant = "b"
		}
		l.Submit(Event{Tenant: tenant, Script: ScriptID(fmt.Sprintf("s%d", i))})
	}
	got := l.Recent("b", 2)
	if len(got) != 2 {
		t.Fatalf("Recent(b,2) returned %d events", len(got))
	}
	for _, ev := range got {
		if ev.Tenant != "b" {
			t.Errorf("tenant filter leaked event for %q", ev.Tenant)
		}
	}
	if got[0].Seq != 4 || got[1].Seq != 6 {
		t.Errorf("Recent returned seqs %d,%d, want the newest matches 4,6", got[0].Seq, got[1].Seq)
	}
	if n := len(l.Recent("", 0)); n != 6 {
		t.Errorf("Recent(\"\",0) returned %d events, want all 6", n)
	}
}

func TestSinkFlushThroughFileStore(t *testing.T) {
	fs := exec.NewFileStore()
	l := New(2) // ring smaller than history: sink must keep everything
	l.AttachSink(fs, "/sys/events.jsonl")
	for i := 0; i < 5; i++ {
		l.Submit(Event{Tenant: "a", Script: ScriptID(fmt.Sprintf("s%d", i))})
	}
	l.Flush()
	tab, ok := fs.Get("/sys/events.jsonl")
	if !ok {
		t.Fatal("Flush did not write the sink table")
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("sink holds %d rows, want full history of 5", len(tab.Rows))
	}
	evs, err := ReadJSONL(bytes.NewReader(l.SinkJSONL()))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 5 || evs[0].Seq != 1 || evs[4].Seq != 5 {
		t.Fatalf("SinkJSONL round trip wrong: %d events", len(evs))
	}
}

func TestDumpRecent(t *testing.T) {
	l := New(8)
	l.Submit(Event{Tenant: "a", Script: ScriptID("s1"), Error: "boom"})
	var b bytes.Buffer
	l.DumpRecent(&b, 0)
	var ev Event
	if err := json.Unmarshal(b.Bytes(), &ev); err != nil {
		t.Fatalf("dump line is not JSON: %v", err)
	}
	if ev.Error != "boom" {
		t.Errorf("dump lost the error field: %+v", ev)
	}
}

func TestDigestOutputsSorted(t *testing.T) {
	tab := &exec.Table{Schema: relop.Schema{{Name: "x", Type: relop.TInt}}}
	tab.Rows = append(tab.Rows, relop.Row{relop.IntVal(1)}, relop.Row{relop.IntVal(2)})
	outs := DigestOutputs(map[string]*exec.Table{"/out/b": tab, "/out/a": tab})
	if len(outs) != 2 || outs[0].Path != "/out/a" || outs[1].Path != "/out/b" {
		t.Fatalf("outputs not in path order: %+v", outs)
	}
	if outs[0].Digest != outs[1].Digest || outs[0].Rows != 2 {
		t.Errorf("same table digested differently: %+v", outs)
	}
	if len(outs[0].Digest) != 16 {
		t.Errorf("digest %q is not fixed-width hex", outs[0].Digest)
	}
}

func TestNilLogSafe(t *testing.T) {
	var l *Log
	ev := l.Submit(Event{Tenant: "a"})
	if ev.Seq != 0 {
		t.Error("nil Submit assigned a sequence")
	}
	if l.Len() != 0 || l.Cap() != 0 || l.Events() != nil || l.Recent("", 1) != nil ||
		l.SinkJSONL() != nil || l.SinkDropped() != 0 {
		t.Error("nil log accessors not zero")
	}
	l.AttachSink(nil, "")
	l.Flush()
	l.DumpRecent(nil, 0)
}

// TestSummarize checks the offline recompute against hand-built
// events — the replay side of the additivity invariant.
func TestSummarize(t *testing.T) {
	events := []Event{
		{Tenant: "a", CacheHits: 2, CacheMisses: 1, Folded: true, Admitted: 1,
			AdmittedBytes: 100, Evicted: 1, Spills: 2, MQOChosen: 1, QErrMax: 3, LatencyUs: 100},
		{Tenant: "b", CacheHits: 1, CacheMisses: 0, QuotaRejected: 2, QErrMax: 5, LatencyUs: 200},
		{Tenant: "a", Error: "boom", LatencyUs: 400},
	}
	s := Summarize(events)
	if s.Events != 3 || s.Errors != 1 || s.CacheHits != 3 || s.CacheMisses != 1 ||
		s.Folded != 1 || s.Admitted != 1 || s.AdmittedBytes != 100 ||
		s.QuotaRejected != 2 || s.Evicted != 1 || s.Spills != 2 || s.MQOChosen != 1 {
		t.Errorf("summary totals wrong: %+v", s)
	}
	if s.QErrMax != 5 {
		t.Errorf("QErrMax = %g, want the stream max 5", s.QErrMax)
	}
	if s.TenantRequests["a"] != 2 || s.TenantRequests["b"] != 1 {
		t.Errorf("tenant counts wrong: %v", s.TenantRequests)
	}
	if got := s.HitRatio(); got != 0.75 {
		t.Errorf("HitRatio = %g, want 0.75", got)
	}
	if s.P50Us <= 0 || s.P99Us < s.P50Us {
		t.Errorf("latency quantiles wrong: p50=%d p99=%d", s.P50Us, s.P99Us)
	}
	out := s.String()
	if !strings.HasPrefix(out, "events=3 errors=1 hits=3 misses=1 folded=1 admitted=1 ") {
		t.Errorf("report prefix wrong: %q", out)
	}
	if !strings.Contains(out, "tenants: a=2 b=1") {
		t.Errorf("report lacks sorted tenant counts: %q", out)
	}
}

// TestConcurrentSubmit hammers Submit from many goroutines (run under
// -race by check.sh): the ring never exceeds capacity, every event is
// well-formed JSON, sequence numbers are unique, and summed event
// fields equal the per-goroutine totals (additivity invariant).
func TestConcurrentSubmit(t *testing.T) {
	const workers, perWorker = 8, 200
	l := New(64)
	fs := exec.NewFileStore()
	l.AttachSink(fs, "/sys/events.jsonl")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				l.Submit(Event{
					Tenant:    fmt.Sprintf("t%d", w),
					Script:    ScriptID(fmt.Sprintf("s%d", i%4)),
					CacheHits: 1, CacheMisses: 2, AdmittedBytes: 10,
				})
				if i%16 == 0 {
					l.Events()
					l.Recent("", 4)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := len(l.Events()); got > l.Cap() {
		t.Fatalf("ring grew to %d, capacity %d", got, l.Cap())
	}
	if l.Len() != workers*perWorker {
		t.Fatalf("Len() = %d, want %d", l.Len(), workers*perWorker)
	}
	l.Flush()
	evs, err := ReadJSONL(bytes.NewReader(l.SinkJSONL()))
	if err != nil {
		t.Fatalf("sink stream malformed: %v", err)
	}
	if len(evs) != workers*perWorker {
		t.Fatalf("sink holds %d events, want %d", len(evs), workers*perWorker)
	}
	seqs := map[int64]bool{}
	for _, ev := range evs {
		if ev.Seq <= 0 || seqs[ev.Seq] {
			t.Fatalf("duplicate or missing seq %d", ev.Seq)
		}
		seqs[ev.Seq] = true
	}
	s := Summarize(evs)
	wantTotal := int64(workers * perWorker)
	if s.CacheHits != wantTotal || s.CacheMisses != 2*wantTotal || s.AdmittedBytes != 10*wantTotal {
		t.Errorf("summed fields diverge from submissions: %+v", s)
	}
}

func TestSinkBounded(t *testing.T) {
	fs := exec.NewFileStore()
	l := New(4)
	l.AttachSink(fs, "/sys/events.jsonl")
	l.mu.Lock()
	// Pre-fill the sink buffer to the bound so the next Submit trips
	// the oldest-half drop without 2^18 real submissions.
	for i := 0; i < maxSinkEvents; i++ {
		l.lines = append(l.lines, `{"seq":0}`)
	}
	l.mu.Unlock()
	l.Submit(Event{Tenant: "a", Script: ScriptID("s")})
	if got := l.SinkDropped(); got != maxSinkEvents/2 {
		t.Errorf("SinkDropped = %d, want %d", got, maxSinkEvents/2)
	}
	l.mu.Lock()
	n := len(l.lines)
	l.mu.Unlock()
	if n != maxSinkEvents/2+1 {
		t.Errorf("sink buffer holds %d lines, want %d", n, maxSinkEvents/2+1)
	}
}

// BenchmarkSubmit prices one event end to end (struct fill already
// done by the caller): marshal + ring append under the mutex. The
// serve overhead claim (EXPERIMENTS E25) divides this by the serve
// bench's per-request latency.
func BenchmarkSubmit(b *testing.B) {
	l := New(256)
	ev := Event{
		Tenant: "bench", Script: ScriptID("script"), Engine: "vector",
		Covered:   []string{SubexprID(1, "a"), SubexprID(3, "b")},
		Uncovered: []string{SubexprID(5, "c")},
		CacheHits: 2, CacheMisses: 1, Admitted: 1, AdmittedBytes: 64000,
		LatencyUs: 17000,
		Outputs:   []Output{{Path: "/out/a", Digest: "00000000deadbeef", Rows: 4}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Submit(ev)
	}
}
