// Package eventlog is the service-grade query event log: one
// structured JSON event per request, capturing what the sharing
// machinery actually did — which subexpressions were covered by the
// cache, which the batching window folded, what the workload
// optimizer chose, what was admitted, evicted, or spilled — so the
// sharing policy can be audited from its own telemetry, the way the
// paper's production-log study audits SCOPE's.
//
// The log is two views over one Submit stream:
//
//   - A bounded in-memory ring (the flight recorder): always on,
//     race-safe, capacity-bounded, dumpable as JSONL when a request
//     fails so the events leading up to the failure are preserved.
//   - An optional JSONL sink written through the metered
//     exec.FileStore (never package os — the scopevet rawio analyzer
//     enforces it), holding the full event history for offline
//     replay (`scopestat -replay`).
//
// Events are deterministic modulo timing: IDs derive from tenant and
// script identity plus a per-identity occurrence counter — like the
// span IDs of the parent obs package, never from goroutine
// scheduling — and CanonicalJSONL zeroes the two wall-clock fields
// (time_us, latency_us), so the width-determinism regression can
// byte-compare event streams produced at different worker-pool
// widths. The clock is read in exactly one place (nowMicros), the
// only eventlog entry on the scopevet nondet allowlist.
package eventlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/relop"
)

// DefaultCap is the flight-recorder ring capacity used when none is
// configured.
const DefaultCap = 256

// Output identifies one OUTPUT table a request produced: path, row
// count, and the FNV-64a digest of its canonical row rendering
// (rendered as fixed-width hex so the JSON stays integer-precision
// safe for any consumer).
type Output struct {
	Path   string `json:"path"`
	Rows   int    `json:"rows"`
	Digest string `json:"digest"`
}

// Event is one request's structured record. Field order is the JSONL
// column order (encoding/json preserves struct order), so streams are
// byte-comparable once the timing fields are zeroed.
type Event struct {
	// Seq is the log-assigned submission index (1-based).
	Seq int64 `json:"seq"`
	// ID is the deterministic event identity: fnv64a over
	// tenant+script digest, plus the per-identity occurrence count —
	// the same derivation discipline as span IDs (content, never
	// scheduling).
	ID string `json:"id"`
	// TimeUs is the wall-clock submission time in microseconds since
	// the Unix epoch — the event's only nondeterministic field besides
	// LatencyUs; CanonicalJSONL zeroes both.
	TimeUs int64 `json:"time_us"`
	// Tenant and Script identify who ran what; Script is the FNV-64a
	// digest of the script source.
	Tenant string `json:"tenant"`
	Script string `json:"script"`
	// Engine names the execution engine the request ran under ("" =
	// the cluster default).
	Engine string `json:"engine,omitempty"`
	// Covered and Uncovered are the script's shareable subexpression
	// identities (fingerprint.signature-digest) split by whether a
	// valid cache artifact already served them when the batching
	// window dispatched the request.
	Covered   []string `json:"covered,omitempty"`
	Uncovered []string `json:"uncovered,omitempty"`
	// Folded reports the batching-window decision: true when this
	// request ran sequentially behind an overlapping group leader
	// instead of dispatching concurrently. GroupSize is the folded
	// group's total size (1 = dispatched alone).
	Folded    bool `json:"folded"`
	GroupSize int  `json:"group_size"`
	// MQOChosen counts the workload-level materialization keys the
	// multi-query optimizer preadmitted for this request's batch (0
	// when MQO is off or chose nothing).
	MQOChosen int `json:"mqo_chosen,omitempty"`
	// Cache actions: hits (planned CacheScans, each of which pinned
	// its artifact for the run), misses (shared subexpressions
	// materialized anew), admissions with their payload bytes,
	// quota-rejected admissions, and evictions triggered by this
	// run's admissions.
	CacheHits     int   `json:"cache_hits"`
	CacheMisses   int   `json:"cache_misses"`
	Admitted      int   `json:"admitted"`
	AdmittedBytes int64 `json:"admitted_bytes"`
	QuotaRejected int   `json:"quota_rejected"`
	Evicted       int   `json:"evicted"`
	// Spills counts operator working sets that exceeded the memory
	// budget during this request's execution.
	Spills int `json:"spills"`
	// QErrMax is the worst row-estimate q-error across the executed
	// plan (0 when the service runs without EXPLAIN ANALYZE).
	QErrMax float64 `json:"qerr_max,omitempty"`
	// LatencyUs is the submit-to-response latency in microseconds —
	// timing, so zeroed alongside TimeUs in canonical streams.
	LatencyUs int64 `json:"latency_us"`
	// Error is the failure message for requests that did not produce
	// outputs ("" on success).
	Error string `json:"error,omitempty"`
	// Outputs digests every OUTPUT table of a successful request.
	Outputs []Output `json:"outputs,omitempty"`
}

// ScriptID digests script source text into the event identity form.
func ScriptID(src string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(src))
	return fmt.Sprintf("%016x", h.Sum64())
}

// SubexprID renders one shareable subexpression identity: the
// Definition-1 fingerprint plus an FNV-32a digest of the canonical
// signature (signatures can be long; events carry the fixed-width
// digest).
func SubexprID(fp uint64, sig string) string {
	h := fnv.New32a()
	_, _ = h.Write([]byte(sig))
	return fmt.Sprintf("%016x.%08x", fp, h.Sum32())
}

// DigestTable hashes a table's canonical row rendering with FNV-64a —
// the same digest the service's HTTP responses carry, so clients and
// events agree on output identity.
func DigestTable(t *exec.Table) uint64 {
	h := fnv.New64a()
	for _, line := range t.Canonical() {
		_, _ = h.Write([]byte(line))
		_, _ = h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// DigestOutputs digests every output table in path order.
func DigestOutputs(outputs map[string]*exec.Table) []Output {
	paths := make([]string, 0, len(outputs))
	for p := range outputs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]Output, 0, len(paths))
	for _, p := range paths {
		t := outputs[p]
		out = append(out, Output{Path: p, Rows: len(t.Rows), Digest: fmt.Sprintf("%016x", DigestTable(t))})
	}
	return out
}

// maxSinkEvents bounds the JSONL sink buffer; past it the oldest half
// is discarded (and counted in SinkDropped) so an unattended server
// cannot grow without bound.
const maxSinkEvents = 1 << 18

// Log is the query event log: a bounded flight-recorder ring plus an
// optional FileStore JSONL sink. All methods are safe for concurrent
// use and are no-ops on a nil *Log, following the obs convention that
// disabled must be free.
type Log struct {
	capacity int

	mu   sync.Mutex
	ring []Event          // guarded by mu; oldest first, len <= capacity
	seq  int64            // guarded by mu
	occ  map[string]int64 // guarded by mu; per tenant|script occurrence count
	// sink state: lines buffers every event's JSON until Flush writes
	// the whole history through the metered FileStore as one table.
	fs          *exec.FileStore // guarded by mu
	path        string          // guarded by mu
	lines       []string        // guarded by mu
	sinkDropped int64           // guarded by mu
}

// New returns a log whose flight recorder keeps the last capacity
// events (<= 0 uses DefaultCap).
func New(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Log{capacity: capacity, occ: map[string]int64{}}
}

// Cap returns the flight-recorder capacity.
func (l *Log) Cap() int {
	if l == nil {
		return 0
	}
	return l.capacity
}

// AttachSink directs the full event history (not just the ring) to a
// JSONL file stored under path in the metered FileStore. The file is
// written by Flush; events arriving past the sink bound drop oldest
// first.
func (l *Log) AttachSink(fs *exec.FileStore, path string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.fs, l.path = fs, path
	l.mu.Unlock()
}

// nowMicros reads the wall clock for event timestamps. It is the only
// clock read in the package and the only eventlog entry on the
// scopevet nondet allowlist; canonical streams zero the field.
func nowMicros() int64 {
	return time.Now().UnixMicro()
}

// Submit assigns the event its sequence number, deterministic ID, and
// timestamp, then records it in the flight recorder (and the sink
// buffer when attached). The completed event is returned.
func (l *Log) Submit(ev Event) Event {
	if l == nil {
		return ev
	}
	ev.TimeUs = nowMicros()
	l.mu.Lock()
	l.seq++
	ev.Seq = l.seq
	key := ev.Tenant + "|" + ev.Script
	l.occ[key]++
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	ev.ID = fmt.Sprintf("%016x-%d", h.Sum64(), l.occ[key])
	if len(l.ring) == l.capacity {
		copy(l.ring, l.ring[1:])
		l.ring[len(l.ring)-1] = ev
	} else {
		l.ring = append(l.ring, ev)
	}
	if l.fs != nil {
		if len(l.lines) == maxSinkEvents {
			n := copy(l.lines, l.lines[maxSinkEvents/2:])
			l.lines = l.lines[:n]
			l.sinkDropped += maxSinkEvents - int64(n)
		}
		l.lines = append(l.lines, marshalEvent(ev))
	}
	l.mu.Unlock()
	return ev
}

// marshalEvent renders one event as its JSON line. Event is a plain
// struct of encodable fields, so the error path is unreachable; a
// marshal failure would surface as a visibly broken line, not a
// silent drop.
func marshalEvent(ev Event) string {
	b, err := json.Marshal(ev)
	if err != nil {
		return fmt.Sprintf(`{"seq":%d,"error":%q}`, ev.Seq, "eventlog: marshal: "+err.Error())
	}
	return string(b)
}

// Len returns how many events have ever been submitted (the ring
// keeps only the most recent Cap of them).
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.seq)
}

// SinkDropped reports how many events fell off the bounded sink
// buffer before a Flush captured them.
func (l *Log) SinkDropped() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinkDropped
}

// Events returns a copy of the flight-recorder ring, oldest first.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.ring...)
}

// Recent returns up to n ring events (0 = all), oldest first,
// filtered by tenant when tenant is non-empty.
func (l *Log) Recent(tenant string, n int) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	ring := append([]Event(nil), l.ring...)
	l.mu.Unlock()
	if tenant != "" {
		kept := ring[:0]
		for _, ev := range ring {
			if ev.Tenant == tenant {
				kept = append(kept, ev)
			}
		}
		ring = kept
	}
	if n > 0 && len(ring) > n {
		ring = ring[len(ring)-n:]
	}
	return ring
}

// Flush writes the buffered sink history through the metered
// FileStore as a one-column JSONL table (each row holds one event
// line; the table's bytes are what eviction and disk meters account).
// No-op when no sink is attached.
func (l *Log) Flush() {
	if l == nil {
		return
	}
	l.mu.Lock()
	fs, path := l.fs, l.path
	lines := append([]string(nil), l.lines...)
	l.mu.Unlock()
	if fs == nil {
		return
	}
	t := &exec.Table{Schema: relop.Schema{{Name: "event", Type: relop.TString}}}
	for _, line := range lines {
		t.Rows = append(t.Rows, relop.Row{relop.StringVal(line)})
	}
	fs.Put(path, t)
}

// SinkJSONL returns the flushed sink file's content as JSONL bytes
// (nil when no sink was attached or Flush never ran). CLIs use it to
// export the history to a host file — outside the metered simulator,
// where raw IO is allowed.
func (l *Log) SinkJSONL() []byte {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	fs, path := l.fs, l.path
	l.mu.Unlock()
	if fs == nil {
		return nil
	}
	t, ok := fs.Get(path)
	if !ok {
		return nil
	}
	var b strings.Builder
	for _, row := range t.Rows {
		b.WriteString(row[0].S)
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// DumpRecent writes the last n ring events (0 = all) as JSONL — the
// flight-recorder dump the service emits when a request fails or a
// worker panics.
func (l *Log) DumpRecent(w io.Writer, n int) {
	if l == nil || w == nil {
		return
	}
	for _, ev := range l.Recent("", n) {
		fmt.Fprintln(w, marshalEvent(ev))
	}
}

// Canonical returns the event with its timing fields zeroed —
// everything left is a pure function of the workload and the sharing
// state, which is what the width-determinism regression compares.
func Canonical(ev Event) Event {
	ev.TimeUs = 0
	ev.LatencyUs = 0
	return ev
}

// CanonicalJSONL renders events as JSONL with timing zeroed. Streams
// of the same workload are byte-identical at any worker-pool width.
func CanonicalJSONL(events []Event) []byte {
	var b strings.Builder
	for _, ev := range events {
		b.WriteString(marshalEvent(Canonical(ev)))
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// JSONL renders events verbatim (timestamps included).
func JSONL(events []Event) []byte {
	var b strings.Builder
	for _, ev := range events {
		b.WriteString(marshalEvent(ev))
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// ReadJSONL parses an event stream (one JSON event per line; blank
// lines skipped). A malformed line fails the whole read — a replay
// over a corrupt log should say so, not silently skip records.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			return nil, fmt.Errorf("eventlog: line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Summary is the aggregate view of an event stream — the same
// sharing statistics the service's registry counts live, recomputed
// offline from the log (the paper's log-analysis methodology applied
// to our own telemetry).
type Summary struct {
	Events        int
	Errors        int
	CacheHits     int64
	CacheMisses   int64
	Folded        int64
	Admitted      int64
	AdmittedBytes int64
	QuotaRejected int64
	Evicted       int64
	Spills        int64
	MQOChosen     int64
	QErrMax       float64
	// P50Us / P99Us are latency quantiles interpolated from a
	// power-of-two histogram over the recorded latencies — the same
	// estimator the serve bench reports.
	P50Us int64
	P99Us int64
	// TenantRequests counts events per tenant.
	TenantRequests map[string]int64
}

// HitRatio returns hits / (hits + misses), or 0 with no lookups.
func (s Summary) HitRatio() float64 {
	if s.CacheHits+s.CacheMisses == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CacheHits+s.CacheMisses)
}

// FoldRate returns the fraction of events the batching window folded
// behind a group leader.
func (s Summary) FoldRate() float64 {
	if s.Events == 0 {
		return 0
	}
	return float64(s.Folded) / float64(s.Events)
}

// Summarize recomputes the sharing statistics of an event stream.
func Summarize(events []Event) Summary {
	s := Summary{TenantRequests: map[string]int64{}}
	var lat obs.Histogram
	for _, ev := range events {
		s.Events++
		if ev.Error != "" {
			s.Errors++
		}
		s.CacheHits += int64(ev.CacheHits)
		s.CacheMisses += int64(ev.CacheMisses)
		if ev.Folded {
			s.Folded++
		}
		s.Admitted += int64(ev.Admitted)
		s.AdmittedBytes += ev.AdmittedBytes
		s.QuotaRejected += int64(ev.QuotaRejected)
		s.Evicted += int64(ev.Evicted)
		s.Spills += int64(ev.Spills)
		s.MQOChosen += int64(ev.MQOChosen)
		if ev.QErrMax > s.QErrMax {
			s.QErrMax = ev.QErrMax
		}
		s.TenantRequests[ev.Tenant]++
		lat.Observe(ev.LatencyUs)
	}
	s.P50Us = int64(lat.Quantile(0.50))
	s.P99Us = int64(lat.Quantile(0.99))
	return s
}

// String renders the summary as the stable two-line replay report.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events=%d errors=%d hits=%d misses=%d folded=%d admitted=%d admitted_bytes=%d quota_rejected=%d evicted=%d spills=%d mqo_chosen=%d\n",
		s.Events, s.Errors, s.CacheHits, s.CacheMisses, s.Folded,
		s.Admitted, s.AdmittedBytes, s.QuotaRejected, s.Evicted, s.Spills, s.MQOChosen)
	fmt.Fprintf(&b, "hit_ratio=%.1f%% fold_rate=%.1f%% qerr_max=%.2f p50=%s p99=%s\n",
		s.HitRatio()*100, s.FoldRate()*100, s.QErrMax,
		time.Duration(s.P50Us)*time.Microsecond,
		time.Duration(s.P99Us)*time.Microsecond)
	tenants := make([]string, 0, len(s.TenantRequests))
	for t := range s.TenantRequests {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for i, t := range tenants {
		if i == 0 {
			b.WriteString("tenants:")
		}
		fmt.Fprintf(&b, " %s=%d", t, s.TenantRequests[t])
	}
	if len(tenants) > 0 {
		b.WriteByte('\n')
	}
	return b.String()
}
