// Metrics registry: named counters, gauges, and histograms with
// atomic fast paths. The registry exists to unify the per-subsystem
// stat structs (opt.Stats, exec.Metrics, share.Stats): each keeps its
// public fields and gains a Publish method that folds a finished
// run's totals into a shared registry, so one Snapshot describes a
// whole batch regardless of how many clusters and sessions ran — and
// concurrent publishers merge race-free.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Nil-safe: methods on
// a nil *Counter (from a nil registry) are no-ops.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a level metric (a size, not a rate): publishing sets it,
// merging snapshots keeps the newer level rather than summing.
type Gauge struct{ v atomic.Int64 }

// Set records the current level.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed power-of-two bucket count: bucket i holds
// observations whose value needs i significant bits (bucket 0 holds
// v <= 0). 64 buckets cover the full int64 range with no
// configuration, which keeps Observe allocation-free.
const histBuckets = 65

// Histogram is a distribution metric over int64 observations with
// power-of-two buckets.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one observation. Max is over the observations and
// zero: the metered quantities are non-negative, so starting the
// running maximum at zero keeps the update a simple CAS loop.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur {
			break
		}
		if h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// value snapshots the histogram into a HistValue.
func (h *Histogram) value() HistValue {
	hv := HistValue{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Max:     h.max.Load(),
		Buckets: map[int]int64{},
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			hv.Buckets[i] = n
		}
	}
	return hv
}

// Quantile returns the p-quantile (p in [0,1]) of the recorded
// distribution, linearly interpolated inside the power-of-two bucket
// the quantile rank lands in. See HistValue.Quantile.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	return h.value().Quantile(p)
}

// Quantile estimates the p-quantile of the observations a HistValue
// summarizes. The rank p×count is located in the cumulative bucket
// counts and interpolated linearly across the landing bucket's value
// range [2^(i-1), 2^i − 1] (bucket 0 is exactly 0). Power-of-two
// buckets bound the estimate's relative error by the bucket width —
// within a factor of two, and much closer for distributions that
// spread across a bucket. The estimate is clamped by the recorded
// maximum, so a top-bucket quantile never exceeds an actually
// observed value. p outside [0,1] is clamped.
func (v HistValue) Quantile(p float64) float64 {
	if v.Count <= 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(v.Count)
	if rank < 1 {
		rank = 1
	}
	idxs := make([]int, 0, len(v.Buckets))
	for i := range v.Buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	cum := int64(0)
	for _, i := range idxs {
		n := v.Buckets[i]
		if float64(cum)+float64(n) >= rank {
			lo, hi := bucketBounds(i)
			if hi > float64(v.Max) && float64(v.Max) >= lo {
				hi = float64(v.Max)
			}
			frac := (rank - float64(cum)) / float64(n)
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return float64(v.Max)
}

// bucketBounds returns bucket i's inclusive value range: bucket 0
// holds v <= 0 (rendered as exactly 0 — the metered quantities are
// non-negative), bucket i>0 holds [2^(i-1), 2^i − 1].
func bucketBounds(i int) (lo, hi float64) {
	if i <= 0 {
		return 0, 0
	}
	lo = math.Ldexp(1, i-1)
	return lo, 2*lo - 1
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Registry is a set of named metrics. Nil-safe: lookups on a nil
// registry return nil instruments whose methods are no-ops, so
// publishers need no guards.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// HistValue is the snapshot of one histogram.
type HistValue struct {
	Count   int64
	Sum     int64
	Max     int64
	Buckets map[int]int64 // non-empty power-of-two buckets only
}

// Snapshot is a point-in-time copy of a registry (or of one stat
// struct, via the per-subsystem Snapshot methods). Snapshots are
// plain values: comparable with reflect.DeepEqual and mergeable with
// Add.
type Snapshot struct {
	Counters map[string]int64
	Gauges   map[string]int64
	Hists    map[string]HistValue
}

// HistObservation returns the HistValue of a single observation, for
// stat structs that express "this run observed v" in a snapshot.
func HistObservation(v int64) HistValue {
	return HistValue{Count: 1, Sum: v, Max: maxInt64(v, 0), Buckets: map[int]int64{bucketOf(v): 1}}
}

// NewSnapshot returns an empty snapshot with initialized maps.
func NewSnapshot() Snapshot {
	return Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistValue{},
	}
}

// Snapshot copies the registry's current state. Nil-safe.
func (r *Registry) Snapshot() Snapshot {
	s := NewSnapshot()
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Hists[name] = h.value()
	}
	return s
}

// Add merges o into a copy of s and returns it: counters and
// histograms sum (the additive invariant behind the merge tests),
// gauges are levels so o's value wins where present.
func (s Snapshot) Add(o Snapshot) Snapshot {
	out := NewSnapshot()
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range o.Counters {
		out.Counters[k] += v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range o.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range s.Hists {
		out.Hists[k] = copyHist(v)
	}
	for k, v := range o.Hists {
		cur, ok := out.Hists[k]
		if !ok {
			out.Hists[k] = copyHist(v)
			continue
		}
		cur.Count += v.Count
		cur.Sum += v.Sum
		cur.Max = maxInt64(cur.Max, v.Max)
		for b, n := range v.Buckets {
			cur.Buckets[b] += n
		}
		out.Hists[k] = cur
	}
	return out
}

func copyHist(v HistValue) HistValue {
	out := v
	out.Buckets = make(map[int]int64, len(v.Buckets))
	for b, n := range v.Buckets {
		out.Buckets[b] = n
	}
	return out
}

// Record folds a snapshot into the registry: counters add, gauges
// set, histograms merge (max and buckets included). Nil-safe. It is
// how the stat structs publish without knowing registry internals.
func (r *Registry) Record(s Snapshot) {
	if r == nil {
		return
	}
	for name, v := range s.Counters {
		r.Counter(name).Add(v)
	}
	for name, v := range s.Gauges {
		r.Gauge(name).Set(v)
	}
	for name, v := range s.Hists {
		h := r.Histogram(name)
		h.count.Add(v.Count)
		h.sum.Add(v.Sum)
		for {
			cur := h.max.Load()
			if v.Max <= cur {
				break
			}
			if h.max.CompareAndSwap(cur, v.Max) {
				break
			}
		}
		for b, n := range v.Buckets {
			if b >= 0 && b < histBuckets {
				h.buckets[b].Add(n)
			}
		}
	}
}

// String renders the snapshot in a stable, human-readable layout:
// one metric per line, sorted by name within each kind. All three
// CLIs print snapshots through this method, so the reporting format
// lives in exactly one place.
func (s Snapshot) String() string {
	var b strings.Builder
	writeSorted := func(m map[string]int64) {
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "  %-36s %d\n", name, m[name])
		}
	}
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		writeSorted(s.Counters)
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		writeSorted(s.Gauges)
	}
	if len(s.Hists) > 0 {
		b.WriteString("histograms:\n")
		names := make([]string, 0, len(s.Hists))
		for name := range s.Hists {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			h := s.Hists[name]
			mean := int64(0)
			if h.Count > 0 {
				mean = h.Sum / h.Count
			}
			fmt.Fprintf(&b, "  %-36s count=%d sum=%d mean=%d max=%d\n",
				name, h.Count, h.Sum, mean, h.Max)
		}
	}
	if b.Len() == 0 {
		return "(no metrics)\n"
	}
	return b.String()
}
