package logical

import (
	"strings"
	"testing"

	"repro/internal/relop"
)

func TestBindHaving(t *testing.T) {
	m := build(t, `
R0 = EXTRACT A,B,D FROM "test.log" USING LogExtractor;
R = SELECT A, B, Sum(D) as S FROM R0 GROUP BY A, B HAVING S > 100 AND A < 5;
OUTPUT R TO "o";
`)
	var filter *relop.Filter
	for _, g := range m.Groups() {
		if f, ok := g.Exprs[0].Op.(*relop.Filter); ok {
			filter = f
			// The filter sits directly above the GroupBy.
			child := m.Group(g.Exprs[0].Children[0])
			if _, isGB := child.Exprs[0].Op.(*relop.GroupBy); !isGB {
				t.Errorf("HAVING filter's child = %T, want GroupBy", child.Exprs[0].Op)
			}
		}
	}
	if filter == nil {
		t.Fatal("no HAVING filter bound")
	}
	if !strings.Contains(filter.Pred.String(), "S") {
		t.Errorf("predicate = %s", filter.Pred)
	}
}

func TestBindHavingSeesAliases(t *testing.T) {
	// HAVING may reference the select alias of a key.
	m := build(t, `
R0 = EXTRACT A,D FROM "test.log" USING LogExtractor;
R = SELECT A as K, Sum(D) as S FROM R0 GROUP BY A HAVING K > 1;
OUTPUT R TO "o";
`)
	found := false
	for _, g := range m.Groups() {
		if f, ok := g.Exprs[0].Op.(*relop.Filter); ok {
			found = true
			// The alias resolves to the physical key column A.
			if !strings.Contains(f.Pred.String(), "A") {
				t.Errorf("predicate = %s, want resolution to A", f.Pred)
			}
		}
	}
	if !found {
		t.Fatal("no filter bound")
	}
}

func TestBindHavingErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`R0 = EXTRACT A FROM "f" USING E; R = SELECT A FROM R0 HAVING A > 1; OUTPUT R TO "o";`,
			"HAVING requires GROUP BY"},
		{`R0 = EXTRACT A,B,D FROM "f" USING E; R = SELECT A, Sum(D) as S FROM R0 GROUP BY A HAVING B > 1; OUTPUT R TO "o";`,
			"unknown column"},
		{`R0 = EXTRACT A,D FROM "f" USING E; R = SELECT A, Sum(D) as S FROM R0 GROUP BY A HAVING Sum(D) > 1; OUTPUT R TO "o";`,
			"not allowed here"},
	}
	for _, c := range cases {
		_, err := BuildSource(c.src, nil)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("BuildSource(%q) error = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestBindDistinct(t *testing.T) {
	m := build(t, `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT DISTINCT A, B FROM R0;
OUTPUT R TO "o";
`)
	var gb *relop.GroupBy
	for _, g := range m.Groups() {
		if x, ok := g.Exprs[0].Op.(*relop.GroupBy); ok {
			gb = x
		}
	}
	if gb == nil {
		t.Fatal("DISTINCT should bind a duplicate-eliminating GroupBy")
	}
	if len(gb.Keys) != 2 || len(gb.Aggs) != 0 {
		t.Errorf("distinct GB = keys %v aggs %v", gb.Keys, gb.Aggs)
	}
}

func TestBindDistinctWithGroupByIsNoop(t *testing.T) {
	m := build(t, `
R0 = EXTRACT A,D FROM "test.log" USING LogExtractor;
R = SELECT DISTINCT A, Sum(D) as S FROM R0 GROUP BY A;
OUTPUT R TO "o";
`)
	gbs := 0
	for _, g := range m.Groups() {
		if _, ok := g.Exprs[0].Op.(*relop.GroupBy); ok {
			gbs++
		}
	}
	if gbs != 1 {
		t.Errorf("DISTINCT over GROUP BY should not add a second GroupBy (got %d)", gbs)
	}
}

func TestBindOrderedOutput(t *testing.T) {
	m := build(t, `
R0 = EXTRACT A,B,D FROM "test.log" USING LogExtractor;
R = SELECT A, B, Sum(D) as S FROM R0 GROUP BY A, B;
OUTPUT R TO "o" ORDER BY B, A;
`)
	out := m.Group(m.Root).Exprs[0].Op.(*relop.Output)
	if out.Order.Key() != "B;A" {
		t.Errorf("output order = %v", out.Order)
	}
	if _, err := BuildSource(`
R0 = EXTRACT A FROM "f" USING E;
OUTPUT R0 TO "o" ORDER BY Z;`, nil); err == nil || !strings.Contains(err.Error(), "ORDER BY column") {
		t.Errorf("bad order column: %v", err)
	}
}
