package logical

import (
	"strings"
	"testing"

	"repro/internal/memo"
	"repro/internal/relop"
	"repro/internal/stats"
)

const scriptS1 = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) as S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) as S2 FROM R GROUP BY B,C;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
`

func build(t *testing.T, src string) *memo.Memo {
	t.Helper()
	m, err := BuildSource(src, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testCatalog() *stats.Catalog {
	cat := stats.NewCatalog()
	cat.Put("test.log", &stats.TableStats{
		Rows: 10_000_000,
		Columns: map[string]stats.ColumnStats{
			"A": {Distinct: 1000, AvgBytes: 8},
			"B": {Distinct: 100, AvgBytes: 8},
			"C": {Distinct: 5000, AvgBytes: 8},
			"D": {Distinct: 1_000_000, AvgBytes: 8},
		},
	})
	return cat
}

func TestBuildS1Shape(t *testing.T) {
	m := build(t, scriptS1)
	// Expected groups: Extract, GB(R), GB(R1), GB(R2), Out1, Out2, Seq = 7.
	if got := len(m.Groups()); got != 7 {
		t.Fatalf("groups = %d, want 7:\n%s", got, m)
	}
	root := m.Group(m.Root)
	if root.Exprs[0].Op.Kind() != relop.KindSequence {
		t.Fatalf("root = %v", root.Exprs[0].Op)
	}
	// The shared GB(R) group must have two parents (explicit CSE).
	var gbR memo.GroupID = memo.NoGroup
	for _, g := range m.Groups() {
		if gb, ok := g.Exprs[0].Op.(*relop.GroupBy); ok && len(gb.Keys) == 3 {
			gbR = g.ID
		}
	}
	if gbR == memo.NoGroup {
		t.Fatal("GB(A,B,C) group not found")
	}
	if ps := m.Parents(gbR); len(ps) != 2 {
		t.Errorf("GB(R) parents = %v, want 2 consumers", ps)
	}
}

func TestBuildS1SchemasAndStats(t *testing.T) {
	m := build(t, scriptS1)
	for _, g := range m.Groups() {
		if gb, ok := g.Exprs[0].Op.(*relop.GroupBy); ok && len(gb.Keys) == 3 {
			if got := g.Props.Schema.String(); got != "(A int, B int, C int, S int)" {
				t.Errorf("GB(R) schema = %s", got)
			}
			if g.Props.Rel.Rows <= 0 || g.Props.Rel.Rows > 10_000_000 {
				t.Errorf("GB(R) rows = %d", g.Props.Rel.Rows)
			}
		}
	}
}

func TestBuildExtractTypesAndFileIDs(t *testing.T) {
	m := build(t, `
A1 = EXTRACT X:string, Y:float, Z FROM "f1" USING E;
A2 = EXTRACT X FROM "f2" USING E;
A3 = EXTRACT X FROM "f1" USING E;
B1 = SELECT X, Count() as N FROM A1 GROUP BY X;
OUTPUT B1 TO "o";
`)
	var f1, f2, f1b int
	for _, g := range m.Groups() {
		if ex, ok := g.Exprs[0].Op.(*relop.Extract); ok {
			switch {
			case ex.Path == "f1" && len(ex.Columns) == 3:
				f1 = ex.FileID
				if ex.Columns[0].Type != relop.TString || ex.Columns[1].Type != relop.TFloat || ex.Columns[2].Type != relop.TInt {
					t.Errorf("extract types = %v", ex.Columns)
				}
			case ex.Path == "f2":
				f2 = ex.FileID
			case ex.Path == "f1":
				f1b = ex.FileID
			}
		}
	}
	if f1 == 0 || f2 == 0 || f1b == 0 {
		t.Fatal("missing extracts")
	}
	if f1 == f2 {
		t.Error("different files must get different FileIDs")
	}
	if f1 != f1b {
		t.Error("same file must get the same FileID")
	}
}

func TestBuildJoinWithQualifiedAndRenamedColumns(t *testing.T) {
	// S3-style join: both sides expose B, so the right side must be
	// renamed and R1.B must resolve to the left's physical column.
	m := build(t, `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,C,Sum(S) as S1 FROM R GROUP BY B,C;
R2 = SELECT B,A,Sum(S) as S2 FROM R GROUP BY B,A;
RR = SELECT R1.B,A,C,S1,S2 FROM R1,R2 WHERE R1.B=R2.B;
OUTPUT RR TO "result1.out";
`)
	var join *relop.Join
	var joinGroup *memo.Group
	for _, g := range m.Groups() {
		if j, ok := g.Exprs[0].Op.(*relop.Join); ok {
			join = j
			joinGroup = g
		}
	}
	if join == nil {
		t.Fatal("no join group")
	}
	if join.LeftKeys[0] != "B" || !strings.HasPrefix(join.RightKeys[0], "B$") {
		t.Errorf("join keys = %v = %v", join.LeftKeys, join.RightKeys)
	}
	// Join output schema must have unique names.
	names := map[string]bool{}
	for _, c := range joinGroup.Props.Schema {
		if names[c.Name] {
			t.Errorf("duplicate column %q in join schema", c.Name)
		}
		names[c.Name] = true
	}
	// Root is the single Output (no Sequence for one output).
	if m.Group(m.Root).Exprs[0].Op.Kind() != relop.KindOutput {
		t.Errorf("root = %v", m.Group(m.Root).Exprs[0].Op)
	}
}

func TestBuildFilterSelectivity(t *testing.T) {
	m := build(t, `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A, B FROM R0 WHERE B = 5 AND A > 2;
OUTPUT R TO "o";
`)
	var f *relop.Filter
	var fg *memo.Group
	for _, g := range m.Groups() {
		if x, ok := g.Exprs[0].Op.(*relop.Filter); ok {
			f = x
			fg = g
		}
	}
	if f == nil {
		t.Fatal("no filter group")
	}
	// equality on B (100 distinct) = 0.01, inequality default 0.25.
	want := 0.01 * 0.25
	if diff := f.Selectivity - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("selectivity = %v, want %v", f.Selectivity, want)
	}
	if fg.Props.Rel.Rows != int64(float64(10_000_000)*want) {
		t.Errorf("filter rows = %d", fg.Props.Rel.Rows)
	}
}

func TestBuildGroupByProjectionWrap(t *testing.T) {
	// SELECT order differs from keys-then-aggs: a Project must wrap.
	m := build(t, `
R0 = EXTRACT A,B,D FROM "test.log" USING LogExtractor;
R = SELECT Sum(D) as S, B FROM R0 GROUP BY B;
OUTPUT R TO "o";
`)
	foundProject := false
	for _, g := range m.Groups() {
		if p, ok := g.Exprs[0].Op.(*relop.Project); ok {
			foundProject = true
			if g.Props.Schema[0].Name != "S" || g.Props.Schema[1].Name != "B" {
				t.Errorf("projected schema = %v", g.Props.Schema)
			}
			_ = p
		}
	}
	if !foundProject {
		t.Error("reordered select list should add a Project")
	}
	// Canonical order should NOT add a Project.
	m2 := build(t, `
R0 = EXTRACT A,B,D FROM "test.log" USING LogExtractor;
R = SELECT B, Sum(D) as S FROM R0 GROUP BY B;
OUTPUT R TO "o";
`)
	for _, g := range m2.Groups() {
		if _, ok := g.Exprs[0].Op.(*relop.Project); ok {
			t.Error("canonical select list should not add a Project")
		}
	}
}

func TestBuildScalarProject(t *testing.T) {
	m := build(t, `
R0 = EXTRACT A,B FROM "test.log" USING LogExtractor;
R = SELECT A, A+B as AB, 2*B as B2 FROM R0;
OUTPUT R TO "o";
`)
	var p *relop.Project
	for _, g := range m.Groups() {
		if x, ok := g.Exprs[0].Op.(*relop.Project); ok {
			p = x
		}
	}
	if p == nil {
		t.Fatal("no project")
	}
	if len(p.Items) != 3 || p.Items[1].As != "AB" {
		t.Errorf("project items = %v", p.Items)
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`OUTPUT R TO "o";`, "undefined result"},
		{`R = SELECT A FROM X; OUTPUT R TO "o";`, "unknown source"},
		{`R = EXTRACT A FROM "f" USING E; R = EXTRACT A FROM "f" USING E; OUTPUT R TO "o";`, "reassigned"},
		{`R = EXTRACT A,A FROM "f" USING E; OUTPUT R TO "o";`, "duplicate column"},
		{`R0 = EXTRACT A FROM "f" USING E; R = SELECT Z FROM R0; OUTPUT R TO "o";`, "unknown column"},
		{`R0 = EXTRACT A,B FROM "f" USING E; R = SELECT A, Sum(B) as S FROM R0 GROUP BY A, A;`, "duplicate grouping key"},
		{`R0 = EXTRACT A,B FROM "f" USING E; R = SELECT B, Sum(A) as S FROM R0 GROUP BY A; OUTPUT R TO "o";`, "neither aggregated nor in GROUP BY"},
		{`R0 = EXTRACT A,B FROM "f" USING E; R = SELECT A, Sum(B) FROM R0 GROUP BY A; OUTPUT R TO "o";`, "needs an AS alias"},
		{`R0 = EXTRACT A,B FROM "f" USING E; R = SELECT A, Sum(A+B) as S FROM R0 GROUP BY A; OUTPUT R TO "o";`, "must be a column"},
		{`R0 = EXTRACT A FROM "f" USING E; R = SELECT Sum(A) as S FROM R0; OUTPUT R TO "o";`, "requires GROUP BY"},
		{`R0 = EXTRACT A FROM "f" USING E; R = SELECT A FROM R0, R0; OUTPUT R TO "o";`, "listed twice"},
		{`X = EXTRACT A FROM "f" USING E; Y = EXTRACT A FROM "g" USING E; R = SELECT X.A FROM X, Y; OUTPUT R TO "o";`, "equality predicate"},
		{`X = EXTRACT A FROM "f" USING E; Y = EXTRACT A FROM "g" USING E; R = SELECT A FROM X, Y WHERE X.A = Y.A; OUTPUT R TO "o";`, "ambiguous"},
		{`X = EXTRACT A FROM "f" USING E; R = SELECT A+1 FROM X; OUTPUT R TO "o";`, "needs an AS alias"},
		{`X = EXTRACT A,B FROM "f" USING E; R = SELECT A as Z, B as Z FROM X; OUTPUT R TO "o";`, "duplicate output column"},
		{`X = EXTRACT A FROM "f" USING E;`, "no OUTPUT"},
		{`X = EXTRACT A FROM "f" USING E; R = SELECT Foo(A) as Z FROM X; OUTPUT R TO "o";`, "not allowed here"},
		{`X = EXTRACT A,B FROM "f" USING E; R = SELECT A, Count(A, B) as N FROM X GROUP BY A; OUTPUT R TO "o";`, "exactly one column"},
	}
	for _, c := range cases {
		_, err := BuildSource(c.src, nil)
		if err == nil {
			t.Errorf("BuildSource(%q) should fail with %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("BuildSource(%q) error = %q, want substring %q", c.src, err, c.want)
		}
	}
}

func TestBuildThreeWayJoin(t *testing.T) {
	m := build(t, `
X = EXTRACT K,V1 FROM "f1" USING E;
Y = EXTRACT K,V2 FROM "f2" USING E;
Z = EXTRACT K,V3 FROM "f3" USING E;
R = SELECT X.K, V1, V2, V3 FROM X, Y, Z WHERE X.K = Y.K AND Y.K = Z.K;
OUTPUT R TO "o";
`)
	joins := 0
	for _, g := range m.Groups() {
		if _, ok := g.Exprs[0].Op.(*relop.Join); ok {
			joins++
		}
	}
	if joins != 2 {
		t.Errorf("three-way join should build 2 join groups, got %d", joins)
	}
}

func TestBuildCountQuery(t *testing.T) {
	m := build(t, `
R0 = EXTRACT A FROM "test.log" USING LogExtractor;
R = SELECT A, Count() as N FROM R0 GROUP BY A;
OUTPUT R TO "o";
`)
	for _, g := range m.Groups() {
		if gb, ok := g.Exprs[0].Op.(*relop.GroupBy); ok {
			if gb.Aggs[0].Func != relop.AggCount || gb.Aggs[0].Arg != "" {
				t.Errorf("count agg = %+v", gb.Aggs[0])
			}
		}
	}
}
