// Package logical binds a parsed SCOPE script into a logical operator
// DAG stored in the memo: it resolves named intermediates (which is
// where explicit common subexpressions arise — R consumed by R1 and
// R2 becomes one group with two parents), derives schemas, assigns
// file ids for fingerprinting, and attaches cardinality estimates to
// every group.
package logical

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/memo"
	"repro/internal/props"
	"repro/internal/relop"
	"repro/internal/sqlparse"
	"repro/internal/stats"
)

// Builder binds one script into one memo.
type Builder struct {
	m   *memo.Memo
	cat *stats.Catalog
	env map[string]memo.GroupID // named intermediates
}

// Build parses nothing; it binds an already parsed script against the
// catalog and returns the populated memo with its root set. The memo
// contains only the initial logical expressions, one per group — the
// state Alg. 1 expects.
func Build(script *sqlparse.Script, cat *stats.Catalog) (*memo.Memo, error) {
	if cat == nil {
		cat = stats.NewCatalog()
	}
	b := &Builder{
		m:   memo.New(),
		cat: cat,
		env: map[string]memo.GroupID{},
	}
	var outputs []memo.GroupID
	for _, st := range script.Stmts {
		switch s := st.(type) {
		case *sqlparse.AssignStmt:
			if _, dup := b.env[s.Name]; dup {
				return nil, fmt.Errorf("%s: result %q reassigned", s.Tok.Pos(), s.Name)
			}
			gid, err := b.bindQuery(s.Query, s.Tok)
			if err != nil {
				return nil, err
			}
			b.env[s.Name] = gid
		case *sqlparse.OutputStmt:
			src, ok := b.env[s.Src]
			if !ok {
				return nil, fmt.Errorf("%s: OUTPUT of undefined result %q", s.Tok.Pos(), s.Src)
			}
			srcSchema := b.m.Group(src).Props.Schema
			var order props.Ordering
			for i := range s.OrderBy {
				ref := &s.OrderBy[i].Col
				if ref.Qualifier != "" || !srcSchema.Has(ref.Name) {
					return nil, fmt.Errorf("%s: ORDER BY column %s not in %s's schema %v",
						ref.Tok.Pos(), ref, s.Src, srcSchema)
				}
				order = append(order, props.SortCol{Col: ref.Name, Desc: s.OrderBy[i].Desc})
			}
			out := b.insert(&relop.Output{Path: s.Path, Order: order}, []memo.GroupID{src},
				srcSchema, b.m.Group(src).Props.Rel)
			outputs = append(outputs, out)
		}
	}
	switch len(outputs) {
	case 0:
		return nil, fmt.Errorf("script has no OUTPUT statement")
	case 1:
		b.m.Root = outputs[0]
	default:
		b.m.Root = b.insert(&relop.Sequence{}, outputs, relop.Schema{}, stats.Relation{RowBytes: 1})
	}
	return b.m, nil
}

// BuildSource parses and binds a script in one step.
func BuildSource(src string, cat *stats.Catalog) (*memo.Memo, error) {
	script, err := sqlparse.Parse(src)
	if err != nil {
		return nil, err
	}
	return Build(script, cat)
}

func (b *Builder) insert(op relop.Operator, children []memo.GroupID, schema relop.Schema, rel stats.Relation) memo.GroupID {
	return b.m.Insert(op, children, memo.LogicalProps{Schema: schema, Rel: rel})
}

func (b *Builder) bindQuery(q sqlparse.Query, tok sqlparse.Token) (memo.GroupID, error) {
	switch query := q.(type) {
	case *sqlparse.ExtractQuery:
		return b.bindExtract(query)
	case *sqlparse.SelectQuery:
		return b.bindSelect(query, tok)
	case *sqlparse.UnionQuery:
		return b.bindUnion(query)
	default:
		return 0, fmt.Errorf("%s: unsupported query type %T", tok.Pos(), q)
	}
}

func (b *Builder) bindExtract(q *sqlparse.ExtractQuery) (memo.GroupID, error) {
	schema := make(relop.Schema, len(q.Cols))
	seen := map[string]bool{}
	for i, c := range q.Cols {
		if seen[c.Name] {
			return 0, fmt.Errorf("extract: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
		ty := relop.TInt
		switch c.Type {
		case "float", "double":
			ty = relop.TFloat
		case "string":
			ty = relop.TString
		}
		schema[i] = relop.Column{Name: c.Name, Type: ty}
	}
	// File ids come from the catalog so the same path fingerprints
	// identically in every script bound against it (cross-query CSE
	// depends on stable leaf ids, Definition 1).
	fid := b.cat.FileID(q.Path)
	op := &relop.Extract{Path: q.Path, Columns: schema, Extractor: q.Extractor, FileID: fid}
	rel := stats.BaseRelation(b.cat.Table(q.Path), schema.Names())
	return b.insert(op, nil, schema, rel), nil
}

// scope tracks how source columns are visible during SELECT binding:
// each visible column has a unique physical name, and (qualifier,
// name) pairs map onto it.
type scope struct {
	schema relop.Schema
	// byName maps an unqualified name to its physical name, or "" if
	// ambiguous.
	byName map[string]string
	// byQual maps "qual.name" to the physical name.
	byQual map[string]string
}

func newScope() *scope {
	return &scope{byName: map[string]string{}, byQual: map[string]string{}}
}

func (sc *scope) addSource(qual string, schema relop.Schema, physical []string) {
	for i, c := range schema {
		phys := physical[i]
		sc.schema = append(sc.schema, relop.Column{Name: phys, Type: c.Type})
		if prev, dup := sc.byName[c.Name]; dup && prev != phys {
			sc.byName[c.Name] = "" // ambiguous
		} else if !dup {
			sc.byName[c.Name] = phys
		}
		sc.byQual[qual+"."+c.Name] = phys
	}
}

// resolve maps a (possibly qualified) column reference to its
// physical name.
func (sc *scope) resolve(ref *sqlparse.ColRefAST) (string, error) {
	if ref.Qualifier != "" {
		if phys, ok := sc.byQual[ref.Qualifier+"."+ref.Name]; ok {
			return phys, nil
		}
		return "", fmt.Errorf("%s: unknown column %s", ref.Tok.Pos(), ref)
	}
	phys, ok := sc.byName[ref.Name]
	if !ok {
		return "", fmt.Errorf("%s: unknown column %q", ref.Tok.Pos(), ref.Name)
	}
	if phys == "" {
		return "", fmt.Errorf("%s: ambiguous column %q (qualify it)", ref.Tok.Pos(), ref.Name)
	}
	return phys, nil
}

func (b *Builder) bindSelect(q *sqlparse.SelectQuery, tok sqlparse.Token) (memo.GroupID, error) {
	if len(q.From) == 0 {
		return 0, fmt.Errorf("%s: SELECT without FROM", tok.Pos())
	}
	// Resolve sources and build the join tree (left-deep) with
	// column disambiguation: clashing names from later sources are
	// renamed via a Project so every visible column is unique.
	cur, sc, err := b.bindFrom(q.From, tok)
	if err != nil {
		return 0, err
	}
	// Split WHERE into equi-join predicates (handled inside bindFrom
	// for multi-source queries) and residual filters.
	var residual []sqlparse.Expr
	if q.Where != nil {
		conjuncts := splitConjuncts(q.Where)
		if len(q.From) > 1 {
			var joins []joinPred
			joins, residual, err = b.classifyPredicates(conjuncts, sc)
			if err != nil {
				return 0, err
			}
			if len(joins) == 0 {
				return 0, fmt.Errorf("%s: join of %s requires at least one equality predicate", tok.Pos(), strings.Join(q.From, ", "))
			}
			cur, err = b.bindJoins(q.From, joins, sc, tok)
			if err != nil {
				return 0, err
			}
		} else {
			residual = conjuncts
		}
	} else if len(q.From) > 1 {
		return 0, fmt.Errorf("%s: join of %s requires a WHERE equality predicate", tok.Pos(), strings.Join(q.From, ", "))
	}
	// Residual filter.
	if len(residual) > 0 {
		cur, err = b.bindFilter(cur, residual, sc)
		if err != nil {
			return 0, err
		}
	}
	if len(q.GroupBy) > 0 {
		return b.bindGroupBy(cur, q, sc)
	}
	if q.Having != nil {
		return 0, fmt.Errorf("%s: HAVING requires GROUP BY", tok.Pos())
	}
	cur, err = b.bindProject(cur, q.Items, sc)
	if err != nil {
		return 0, err
	}
	if q.Distinct {
		return b.bindDistinct(cur)
	}
	return cur, nil
}

// bindUnion concatenates named intermediates with identical schemas.
func (b *Builder) bindUnion(q *sqlparse.UnionQuery) (memo.GroupID, error) {
	children := make([]memo.GroupID, len(q.Sources))
	schemas := make([]relop.Schema, len(q.Sources))
	rels := make([]stats.Relation, len(q.Sources))
	for i, name := range q.Sources {
		gid, ok := b.env[name]
		if !ok {
			return 0, fmt.Errorf("%s: unknown source %q", q.Tok.Pos(), name)
		}
		children[i] = gid
		schemas[i] = b.m.Group(gid).Props.Schema
		rels[i] = b.m.Group(gid).Props.Rel
	}
	op := &relop.Union{}
	schema, err := relop.DeriveSchema(op, schemas)
	if err != nil {
		return 0, fmt.Errorf("%s: %v", q.Tok.Pos(), err)
	}
	return b.insert(op, children, schema, stats.EstimateUnion(rels)), nil
}

// bindDistinct wraps a duplicate-eliminating GroupBy over all output
// columns (SELECT DISTINCT without aggregates).
func (b *Builder) bindDistinct(cur memo.GroupID) (memo.GroupID, error) {
	schema := b.m.Group(cur).Props.Schema
	op := &relop.GroupBy{Keys: schema.Names()}
	outSchema, err := relop.DeriveSchema(op, []relop.Schema{schema})
	if err != nil {
		return 0, err
	}
	rel := stats.EstimateGroupBy(b.m.Group(cur).Props.Rel, op.Keys, 0)
	return b.insert(op, []memo.GroupID{cur}, outSchema, rel), nil
}

// bindFrom resolves the FROM sources into groups and a scope; for
// multi-source queries the join itself is built later by bindJoins
// once predicates are classified, so the returned group is only valid
// for single-source queries.
func (b *Builder) bindFrom(from []string, tok sqlparse.Token) (memo.GroupID, *scope, error) {
	sc := newScope()
	seen := map[string]bool{}
	var first memo.GroupID
	for i, name := range from {
		if seen[name] {
			return 0, nil, fmt.Errorf("%s: source %q listed twice", tok.Pos(), name)
		}
		seen[name] = true
		gid, ok := b.env[name]
		if !ok {
			return 0, nil, fmt.Errorf("%s: unknown source %q", tok.Pos(), name)
		}
		schema := b.m.Group(gid).Props.Schema
		physical := make([]string, len(schema))
		for j, c := range schema {
			phys := c.Name
			// Rename clashes introduced by earlier sources.
			if sc.schema.Has(phys) {
				phys = c.Name + "$" + name
				for sc.schema.Has(phys) {
					phys += "_"
				}
			}
			physical[j] = phys
		}
		sc.addSource(name, schema, physical)
		if i == 0 {
			first = gid
		}
	}
	return first, sc, nil
}

// joinPred is one equi-join predicate between two physical columns.
type joinPred struct {
	left, right string // physical column names
}

// classifyPredicates splits conjuncts into equi-join predicates
// (colref = colref) and residual scalar predicates.
func (b *Builder) classifyPredicates(conjuncts []sqlparse.Expr, sc *scope) ([]joinPred, []sqlparse.Expr, error) {
	var joins []joinPred
	var residual []sqlparse.Expr
	for _, c := range conjuncts {
		be, ok := c.(*sqlparse.BinaryExpr)
		if ok && be.Op == "=" {
			lr, lok := be.L.(*sqlparse.ColRefAST)
			rr, rok := be.R.(*sqlparse.ColRefAST)
			if lok && rok {
				l, err := sc.resolve(lr)
				if err != nil {
					return nil, nil, err
				}
				r, err := sc.resolve(rr)
				if err != nil {
					return nil, nil, err
				}
				if l != r {
					joins = append(joins, joinPred{left: l, right: r})
					continue
				}
			}
		}
		residual = append(residual, c)
	}
	return joins, residual, nil
}

// bindJoins builds a left-deep join tree over the FROM sources. Each
// source may need a rename Project when its columns clash with
// columns already visible.
func (b *Builder) bindJoins(from []string, preds []joinPred, sc *scope, tok sqlparse.Token) (memo.GroupID, error) {
	// Rebuild per-source physical schemas in FROM order.
	type side struct {
		gid    memo.GroupID
		schema relop.Schema // physical (renamed) schema
	}
	sides := make([]side, len(from))
	offset := 0
	for i, name := range from {
		gid := b.env[name]
		orig := b.m.Group(gid).Props.Schema
		phys := sc.schema[offset : offset+len(orig)]
		offset += len(orig)
		cur := gid
		renamed := false
		items := make([]relop.NamedExpr, len(orig))
		for j, c := range orig {
			items[j] = relop.NamedExpr{Expr: relop.Col(c.Name), As: phys[j].Name}
			if c.Name != phys[j].Name {
				renamed = true
			}
		}
		schema := make(relop.Schema, len(orig))
		copy(schema, phys)
		if renamed {
			rel := b.m.Group(gid).Props.Rel
			prel := stats.EstimateProject(rel, nil, 0)
			prel.Rows = rel.Rows
			prel.RowBytes = rel.RowBytes
			prel.Distinct = map[string]int64{}
			for j, c := range orig {
				prel.Distinct[phys[j].Name] = rel.DistinctOf(c.Name)
			}
			cur = b.insert(&relop.Project{Items: items}, []memo.GroupID{gid}, schema, prel)
		}
		sides[i] = side{gid: cur, schema: schema}
	}
	// Left-deep fold.
	acc := sides[0]
	used := make([]bool, len(preds))
	for i := 1; i < len(sides); i++ {
		next := sides[i]
		var lk, rk []string
		for pi, p := range preds {
			if used[pi] {
				continue
			}
			switch {
			case acc.schema.Has(p.left) && next.schema.Has(p.right):
				lk = append(lk, p.left)
				rk = append(rk, p.right)
				used[pi] = true
			case acc.schema.Has(p.right) && next.schema.Has(p.left):
				lk = append(lk, p.right)
				rk = append(rk, p.left)
				used[pi] = true
			}
		}
		if len(lk) == 0 {
			return 0, fmt.Errorf("%s: no join predicate connects %q to the preceding sources", tok.Pos(), from[i])
		}
		op := &relop.Join{LeftKeys: lk, RightKeys: rk}
		schema, err := relop.DeriveSchema(op, []relop.Schema{acc.schema, next.schema})
		if err != nil {
			return 0, fmt.Errorf("%s: %v", tok.Pos(), err)
		}
		rel := stats.EstimateJoin(b.m.Group(acc.gid).Props.Rel, b.m.Group(next.gid).Props.Rel, lk, rk)
		gid := b.insert(op, []memo.GroupID{acc.gid, next.gid}, schema, rel)
		acc = side{gid: gid, schema: schema}
	}
	for pi, p := range preds {
		if !used[pi] {
			return 0, fmt.Errorf("%s: join predicate %s=%s does not connect two sources", tok.Pos(), p.left, p.right)
		}
	}
	return acc.gid, nil
}

func (b *Builder) bindFilter(cur memo.GroupID, conjuncts []sqlparse.Expr, sc *scope) (memo.GroupID, error) {
	schema := b.m.Group(cur).Props.Schema
	rel := b.m.Group(cur).Props.Rel
	var pred relop.Scalar
	sel := 1.0
	for _, c := range conjuncts {
		s, err := b.bindScalar(c, sc, false)
		if err != nil {
			return 0, err
		}
		sel *= predicateSelectivity(c, sc, rel)
		if pred == nil {
			pred = s
		} else {
			pred = relop.Bin(relop.OpAnd, pred, s)
		}
	}
	op := &relop.Filter{Pred: pred, Selectivity: sel}
	if _, err := relop.DeriveSchema(op, []relop.Schema{schema}); err != nil {
		return 0, err
	}
	return b.insert(op, []memo.GroupID{cur}, schema, stats.EstimateFilter(rel, sel)), nil
}

func predicateSelectivity(e sqlparse.Expr, sc *scope, rel stats.Relation) float64 {
	be, ok := e.(*sqlparse.BinaryExpr)
	if !ok {
		return stats.DefaultPredicateSelectivity
	}
	if be.Op == "=" {
		if cr, ok := be.L.(*sqlparse.ColRefAST); ok {
			if _, isConst := be.R.(*sqlparse.NumberLit); isConst {
				if phys, err := sc.resolve(cr); err == nil {
					return stats.EqualitySelectivity(rel, phys)
				}
			}
		}
	}
	return stats.DefaultPredicateSelectivity
}

func (b *Builder) bindGroupBy(cur memo.GroupID, q *sqlparse.SelectQuery, sc *scope) (memo.GroupID, error) {
	inSchema := b.m.Group(cur).Props.Schema
	inRel := b.m.Group(cur).Props.Rel
	// Resolve grouping keys.
	keys := make([]string, len(q.GroupBy))
	keySet := map[string]bool{}
	for i := range q.GroupBy {
		phys, err := sc.resolve(&q.GroupBy[i])
		if err != nil {
			return 0, err
		}
		if keySet[phys] {
			return 0, fmt.Errorf("%s: duplicate grouping key %q", q.GroupBy[i].Tok.Pos(), phys)
		}
		keys[i] = phys
		keySet[phys] = true
	}
	// Classify select items: key references or aggregate calls.
	var aggs []relop.Aggregate
	type outCol struct {
		phys  string // physical source column (keys) or aggregate name
		as    string
		isKey bool
	}
	var outs []outCol
	aggNames := map[string]bool{}
	for _, it := range q.Items {
		if sqlparse.IsAggCall(it.Expr) {
			agg, err := b.bindAggregate(it, sc)
			if err != nil {
				return 0, err
			}
			if aggNames[agg.As] {
				return 0, fmt.Errorf("%s: duplicate output column %q", it.Tok.Pos(), agg.As)
			}
			aggNames[agg.As] = true
			aggs = append(aggs, agg)
			outs = append(outs, outCol{phys: agg.As, as: agg.As})
			continue
		}
		cr, ok := it.Expr.(*sqlparse.ColRefAST)
		if !ok {
			return 0, fmt.Errorf("%s: non-aggregate select item %q must be a grouping column", it.Tok.Pos(), it.Expr)
		}
		phys, err := sc.resolve(cr)
		if err != nil {
			return 0, err
		}
		if !keySet[phys] {
			return 0, fmt.Errorf("%s: column %q is neither aggregated nor in GROUP BY", it.Tok.Pos(), cr)
		}
		as := it.As
		if as == "" {
			as = cr.Name
		}
		outs = append(outs, outCol{phys: phys, as: as, isKey: true})
	}
	if len(aggs) == 0 {
		return 0, fmt.Errorf("GROUP BY query must compute at least one aggregate")
	}
	op := &relop.GroupBy{Keys: keys, Aggs: aggs}
	schema, err := relop.DeriveSchema(op, []relop.Schema{inSchema})
	if err != nil {
		return 0, err
	}
	rel := stats.EstimateGroupBy(inRel, keys, len(aggs))
	gid := b.insert(op, []memo.GroupID{cur}, schema, rel)
	// HAVING filters the canonical grouped output; it sees the
	// grouping keys and the aggregate aliases (as in SQL).
	if q.Having != nil {
		hScope := newScope()
		hScope.addSource("", schema, schema.Names())
		for _, oc := range outs {
			if oc.isKey && oc.as != oc.phys {
				hScope.byName[oc.as] = oc.phys
			}
		}
		pred, err := b.bindScalar(q.Having, hScope, false)
		if err != nil {
			return 0, err
		}
		fop := &relop.Filter{Pred: pred, Selectivity: stats.DefaultPredicateSelectivity}
		gid = b.insert(fop, []memo.GroupID{gid}, schema,
			stats.EstimateFilter(rel, stats.DefaultPredicateSelectivity))
	}
	// Wrap a Project when the select list reorders or renames the
	// canonical keys-then-aggs output.
	needProject := len(outs) != len(schema)
	if !needProject {
		for i, oc := range outs {
			if schema[i].Name != oc.phys || oc.as != oc.phys {
				needProject = true
				break
			}
		}
	}
	if !needProject {
		return gid, nil
	}
	items := make([]relop.NamedExpr, len(outs))
	kept := make([]string, len(outs))
	for i, oc := range outs {
		items[i] = relop.NamedExpr{Expr: relop.Col(oc.phys), As: oc.as}
		kept[i] = oc.phys
	}
	pop := &relop.Project{Items: items}
	pschema, err := relop.DeriveSchema(pop, []relop.Schema{schema})
	if err != nil {
		return 0, err
	}
	prel := stats.EstimateProject(rel, kept, 0)
	prel.Distinct = renameDistinct(prel, items)
	return b.insert(pop, []memo.GroupID{gid}, pschema, prel), nil
}

func renameDistinct(rel stats.Relation, items []relop.NamedExpr) map[string]int64 {
	out := map[string]int64{}
	for _, it := range items {
		if cr, ok := it.Expr.(*relop.ColRef); ok {
			out[it.As] = rel.DistinctOf(cr.Name)
		}
	}
	return out
}

func (b *Builder) bindAggregate(it sqlparse.SelectItem, sc *scope) (relop.Aggregate, error) {
	call := it.Expr.(*sqlparse.CallExpr)
	var fn relop.AggFunc
	switch strings.ToUpper(call.Name) {
	case "SUM":
		fn = relop.AggSum
	case "COUNT":
		fn = relop.AggCount
	case "MIN":
		fn = relop.AggMin
	case "MAX":
		fn = relop.AggMax
	case "AVG":
		fn = relop.AggAvg
	}
	if it.As == "" {
		return relop.Aggregate{}, fmt.Errorf("%s: aggregate %s needs an AS alias", it.Tok.Pos(), call)
	}
	agg := relop.Aggregate{Func: fn, As: it.As}
	switch {
	case fn == relop.AggCount && len(call.Args) == 0:
		// COUNT() counts rows.
	case len(call.Args) == 1:
		cr, ok := call.Args[0].(*sqlparse.ColRefAST)
		if !ok {
			return relop.Aggregate{}, fmt.Errorf("%s: aggregate argument must be a column, got %q", it.Tok.Pos(), call.Args[0])
		}
		phys, err := sc.resolve(cr)
		if err != nil {
			return relop.Aggregate{}, err
		}
		agg.Arg = phys
	default:
		return relop.Aggregate{}, fmt.Errorf("%s: aggregate %s takes exactly one column argument", it.Tok.Pos(), call.Name)
	}
	return agg, nil
}

func (b *Builder) bindProject(cur memo.GroupID, items []sqlparse.SelectItem, sc *scope) (memo.GroupID, error) {
	inSchema := b.m.Group(cur).Props.Schema
	inRel := b.m.Group(cur).Props.Rel
	named := make([]relop.NamedExpr, len(items))
	var kept []string
	computed := 0
	seen := map[string]bool{}
	for i, it := range items {
		if sqlparse.IsAggCall(it.Expr) {
			return 0, fmt.Errorf("%s: aggregate %q requires GROUP BY", it.Tok.Pos(), it.Expr)
		}
		s, err := b.bindScalar(it.Expr, sc, false)
		if err != nil {
			return 0, err
		}
		as := it.As
		if as == "" {
			if cr, ok := it.Expr.(*sqlparse.ColRefAST); ok {
				as = cr.Name
			} else {
				return 0, fmt.Errorf("%s: computed select item %q needs an AS alias", it.Tok.Pos(), it.Expr)
			}
		}
		if seen[as] {
			return 0, fmt.Errorf("%s: duplicate output column %q", it.Tok.Pos(), as)
		}
		seen[as] = true
		named[i] = relop.NamedExpr{Expr: s, As: as}
		if cr, ok := s.(*relop.ColRef); ok {
			kept = append(kept, cr.Name)
		} else {
			computed++
		}
	}
	op := &relop.Project{Items: named}
	schema, err := relop.DeriveSchema(op, []relop.Schema{inSchema})
	if err != nil {
		return 0, err
	}
	rel := stats.EstimateProject(inRel, kept, computed)
	rel.Distinct = renameDistinct(stats.Relation{Rows: inRel.Rows, Distinct: inRel.Distinct}, named)
	rel.Rows = inRel.Rows
	return b.insert(op, []memo.GroupID{cur}, schema, rel), nil
}

// bindScalar converts an AST expression to a relop scalar, resolving
// column references through the scope.
func (b *Builder) bindScalar(e sqlparse.Expr, sc *scope, allowAgg bool) (relop.Scalar, error) {
	switch x := e.(type) {
	case *sqlparse.ColRefAST:
		phys, err := sc.resolve(x)
		if err != nil {
			return nil, err
		}
		return relop.Col(phys), nil
	case *sqlparse.NumberLit:
		if x.IsInt {
			i, err := strconv.ParseInt(x.Text, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad integer %q", x.Tok.Pos(), x.Text)
			}
			return relop.Lit(relop.IntVal(i)), nil
		}
		f, err := strconv.ParseFloat(x.Text, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad number %q", x.Tok.Pos(), x.Text)
		}
		return relop.Lit(relop.FloatVal(f)), nil
	case *sqlparse.StringLit:
		return relop.Lit(relop.StringVal(x.Val)), nil
	case *sqlparse.BinaryExpr:
		l, err := b.bindScalar(x.L, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		r, err := b.bindScalar(x.R, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		op, ok := binKinds[x.Op]
		if !ok {
			return nil, fmt.Errorf("%s: unsupported operator %q", x.Tok.Pos(), x.Op)
		}
		return relop.Bin(op, l, r), nil
	case *sqlparse.CallExpr:
		return nil, fmt.Errorf("%s: function %q not allowed here", x.Tok.Pos(), x.Name)
	default:
		return nil, fmt.Errorf("unsupported expression %T", e)
	}
}

var binKinds = map[string]relop.BinKind{
	"+": relop.OpAdd, "-": relop.OpSub, "*": relop.OpMul, "/": relop.OpDiv,
	"=": relop.OpEq, "!=": relop.OpNe, "<": relop.OpLt, "<=": relop.OpLe,
	">": relop.OpGt, ">=": relop.OpGe, "AND": relop.OpAnd, "OR": relop.OpOr,
}

// splitConjuncts flattens a predicate's top-level AND tree.
func splitConjuncts(e sqlparse.Expr) []sqlparse.Expr {
	if be, ok := e.(*sqlparse.BinaryExpr); ok && be.Op == "AND" {
		return append(splitConjuncts(be.L), splitConjuncts(be.R)...)
	}
	return []sqlparse.Expr{e}
}
