package bench

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/obs"
)

// renderRun optimizes workload name with CSE enabled and executes it
// at the given worker-pool width, rendering everything the repository
// promises is width-independent into one comparable string: canonical
// results per output path, the full metered totals, and the
// deterministic span-tree rendering.
func renderRun(t *testing.T, name string, workers int) string {
	t.Helper()
	w, err := BuiltinWorkload(name)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	cfg := DefaultConfig()
	cfg.Tracer = tr
	if workers > 0 {
		cfg.OptWorkers = workers
	}
	res, err := RunOne(w, true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := exec.NewCluster(8, w.FS)
	if err != nil {
		t.Fatal(err)
	}
	cl.Workers = workers
	cl.Trace = tr
	got, err := cl.Run(res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	paths := make([]string, 0, len(got))
	for p := range got {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		fmt.Fprintf(&sb, "%s:\n", p)
		for _, row := range got[p].Canonical() {
			fmt.Fprintf(&sb, "  %s\n", row)
		}
	}
	fmt.Fprintf(&sb, "cost=%.0f\nmetrics=%+v\n", res.Cost, cl.Metrics())
	sb.WriteString(tr.TreeString())
	return sb.String()
}

// TestWidthDeterminism is the regression net under the scopevet
// sweep's fixes: results, meters, and span trees must be byte-
// identical at worker-pool widths 1 and 8 for every small builtin
// workload — the property the rangemap/nondet analyzers enforce at
// the source level.
func TestWidthDeterminism(t *testing.T) {
	for _, name := range []string{"s1", "s2", "s3", "s4"} {
		t.Run(name, func(t *testing.T) {
			serial := renderRun(t, name, 1)
			parallel := renderRun(t, name, 8)
			if serial != parallel {
				t.Errorf("%s differs between -workers 1 and -workers 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
					name, serial, parallel)
			}
		})
	}
}
