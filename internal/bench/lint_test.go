package bench

import (
	"testing"

	"repro/internal/datagen"
)

// TestWorkloadPlansLintClean is the subsystem's acceptance gate: every
// evaluation workload, optimized with the CSE framework on, yields a
// plan with zero plan-analyzer findings — errors and warnings alike.
// The conventional and local-sharing baselines must be clean too, so
// every number an experiment reports comes from an invariant-respecting
// plan.
func TestWorkloadPlansLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("LS2 optimization is ~2s")
	}
	cfg := DefaultConfig()
	workloads := append(Fig7Workloads(), Small("Fig5", ScriptFig5), Small("Ranking", ScriptRanking))
	for _, w := range workloads {
		for _, cse := range []bool{true, false} {
			res, err := RunOne(w, cse, cfg)
			if err != nil {
				t.Fatalf("%s cse=%v: %v", w.Name, cse, err)
			}
			for _, d := range res.Lint {
				t.Errorf("%s cse=%v: %s", w.Name, cse, d)
			}
			if res.Lint == nil {
				t.Errorf("%s cse=%v: Options.Lint set but Result.Lint is nil", w.Name, cse)
			}
		}
	}
}

// TestLocalSharingPlansLintClean covers the related-work baseline mode,
// whose plans are phase-2 consolidations with vacuous pins.
func TestLocalSharingPlansLintClean(t *testing.T) {
	cfg := DefaultConfig()
	for _, w := range []*datagen.Workload{Small("S1", ScriptS1), Small("S2", ScriptS2)} {
		res, err := runLocal(w, cfg)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		for _, d := range res.Lint {
			t.Errorf("%s: %s", w.Name, d)
		}
	}
}
