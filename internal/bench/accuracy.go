package bench

import (
	"fmt"
	"strings"

	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/obs"
)

// AccuracyRow summarizes cardinality-estimate accuracy for one
// executed workload: how many plan nodes were scored, how many missed
// by more than the mis-estimation threshold, and the mean and worst
// row q-error.
type AccuracyRow struct {
	Script  string
	Nodes   int
	Flagged int
	MeanQ   float64
	MaxQ    float64
}

// AccuracyWorkloads returns calibrated variants of the evaluation
// scripts: same physical data as ExecWorkloads, but with the catalog
// describing that data at scale 1 instead of projecting it to the
// paper's 2-billion-row logical size. Under the standard workloads
// every estimate is off by exactly the stat scale (the simulation
// design), which would drown the estimator's own error; calibrated
// stats make the q-error measure the estimator, not the simulation.
func AccuracyWorkloads() []*datagen.Workload {
	mk := func(name, script string) *datagen.Workload {
		return datagen.SmallWorkloadCols(name, script, smallPhysRows, 1, 7,
			datagen.MicroScriptColumns())
	}
	return []*datagen.Workload{
		mk("S1", ScriptS1),
		mk("S2", ScriptS2),
		mk("S3", ScriptS3),
		mk("S4", ScriptS4),
		mk("Fig5", ScriptFig5),
	}
}

// Accuracy executes the CSE plan of every calibrated evaluation
// workload in EXPLAIN ANALYZE mode on a cluster of the given size and
// scores per-node estimate accuracy. It also returns the unified
// metrics snapshot aggregated over all the runs, so the accuracy
// table and the metered totals come from the same executions.
func Accuracy(machines int, cfg Config) ([]AccuracyRow, obs.Snapshot, error) {
	reg := obs.NewRegistry()
	var rows []AccuracyRow
	for _, w := range AccuracyWorkloads() {
		res, err := RunOne(w, true, cfg)
		if err != nil {
			return nil, obs.Snapshot{}, err
		}
		cl, err := exec.NewCluster(machines, w.FS)
		if err != nil {
			return nil, obs.Snapshot{}, err
		}
		cl.Engine = cfg.Engine
		cl.MemBudget = cfg.MemBudget
		cl.Obs = reg
		_, actuals, err := cl.RunAnalyzed(res.Plan)
		if err != nil {
			return nil, obs.Snapshot{}, fmt.Errorf("%s: %w", w.Name, err)
		}
		s := exec.NewAnalysis(res.Plan, actuals, 0).Summary()
		rows = append(rows, AccuracyRow{
			Script: w.Name, Nodes: s.Nodes, Flagged: s.Flagged,
			MeanQ: s.MeanQ, MaxQ: s.MaxQ,
		})
	}
	return rows, reg.Snapshot(), nil
}

// FormatAccuracy renders accuracy rows as an aligned table.
func FormatAccuracy(rows []AccuracyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %7s %9s %12s %12s\n",
		"script", "nodes", "flagged", "mean-q", "max-q")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %7d %9d %12.2f %12.2f\n",
			r.Script, r.Nodes, r.Flagged, r.MeanQ, r.MaxQ)
	}
	return b.String()
}
