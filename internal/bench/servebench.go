package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/obs/eventlog"
	"repro/internal/serve"
	"repro/internal/share"
)

// ServeSchema identifies the BENCH_serve.json layout; bump on any
// incompatible change so downstream readers fail loudly.
const ServeSchema = "scope-bench-serve/1"

// ServeRow is one measured client-concurrency level: N concurrent
// clients each submitting the paper's micro scripts for several
// rounds through one scoped server.
type ServeRow struct {
	Clients  int `json:"clients"`
	Requests int `json:"requests"`
	// P50Us and P99Us are client-observed submit-to-response latency
	// percentiles, in microseconds.
	P50Us int64 `json:"p50_us"`
	P99Us int64 `json:"p99_us"`
	// WarmHitRate is the fraction of warm-phase requests (every round
	// after each client's first) served at least one subexpression
	// from the shared cache.
	WarmHitRate float64 `json:"warm_hit_rate"`
	// CacheHits and CacheMisses aggregate the per-request reports.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// Folded counts requests the batching scheduler folded behind an
	// overlapping request instead of dispatching concurrently.
	Folded int64 `json:"folded"`
	// Identical reports that every response at this level was
	// bit-identical to a cold sequential run of the same script.
	Identical bool `json:"identical"`
	// WallMs is the wall clock for the whole level.
	WallMs int64 `json:"wall_ms"`
}

// ServeReport is the machine-readable service benchmark artifact.
type ServeReport struct {
	Schema   string     `json:"schema"`
	Machines int        `json:"machines"`
	Workers  int        `json:"workers"`
	Rounds   int        `json:"rounds"`
	WindowUs int64      `json:"window_us"`
	Rows     []ServeRow `json:"rows"`
	// EventsJSONL is the last level's full query event log (verbatim,
	// timestamps included) — replayable with `scopestat -replay` to
	// recompute the row's hit/miss/fold counts from per-request records
	// alone. Not part of the JSON artifact; benchrepro writes it to a
	// side file on request.
	EventsJSONL []byte `json:"-"`
}

// serveScripts are the workload each client cycles through: the
// paper's Fig. 6 micro scripts, which all share aggregation
// subexpressions, so concurrent clients exercise cross-client CSE.
func serveScripts() []*struct{ Name, Script string } {
	return []*struct{ Name, Script string }{
		{"S1", ScriptS1},
		{"S2", ScriptS2},
		{"S3", ScriptS3},
		{"S4", ScriptS4},
	}
}

// ServeBench measures the scoped service under increasing client
// concurrency. Each level starts a fresh server (cold cache) over the
// builtin micro dataset; N clients each submit `rounds` rounds of
// their assigned micro script, and every response is checked
// bit-identical against a cold sequential run of the same script on
// an identically generated dataset.
func ServeBench(levels []int, rounds, machines, workers int) (*ServeReport, error) {
	if rounds < 2 {
		rounds = 2 // at least one warm round per client
	}
	const window = 2 * time.Millisecond
	scripts := serveScripts()

	// Cold sequential references, shared across levels (the dataset
	// generator is deterministic, so every level sees the same data).
	refs := make([]map[string]*exec.Table, len(scripts))
	for i, sc := range scripts {
		w := Small("serve-ref-"+sc.Name, "")
		sess, err := share.NewSession(share.Config{
			Catalog: w.Cat, FS: w.FS, Machines: machines, Workers: workers,
		})
		if err != nil {
			return nil, err
		}
		rep, err := sess.Run(sc.Script)
		if err != nil {
			return nil, fmt.Errorf("reference %s: %w", sc.Name, err)
		}
		refs[i] = rep.Outputs
	}

	rep := &ServeReport{
		Schema:   ServeSchema,
		Machines: machines,
		Workers:  workers,
		Rounds:   rounds,
		WindowUs: window.Microseconds(),
	}
	for _, clients := range levels {
		row, events, err := serveLevel(clients, rounds, machines, workers, window, scripts, refs)
		if err != nil {
			return nil, fmt.Errorf("%d clients: %w", clients, err)
		}
		rep.Rows = append(rep.Rows, *row)
		rep.EventsJSONL = events
	}
	return rep, nil
}

// serveLevel runs one client-concurrency level against a fresh
// server, event log enabled. It returns the row plus the level's full
// event stream as JSONL, already cross-checked against the row's
// per-response totals.
func serveLevel(clients, rounds, machines, workers int, window time.Duration,
	scripts []*struct{ Name, Script string }, refs []map[string]*exec.Table) (*ServeRow, []byte, error) {

	w := Small("serve-bench", "")
	srv, err := serve.New(serve.Config{
		Catalog:  w.Cat,
		FS:       w.FS,
		Machines: machines,
		Workers:  workers,
		Window:   window,
		// The ring must hold the level's whole run so the event stream
		// can be replayed against the row totals.
		EventCap: clients * rounds,
	})
	if err != nil {
		return nil, nil, err
	}

	type result struct {
		script  int
		warm    bool
		latency time.Duration
		rep     *share.RunReport
		err     error
	}
	results := make([]result, clients*rounds)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			si := c % len(scripts)
			for r := 0; r < rounds; r++ {
				t0 := time.Now()
				rr, err := srv.Submit(context.Background(),
					fmt.Sprintf("tenant-%d", c), scripts[si].Script)
				results[c*rounds+r] = result{
					script: si, warm: r > 0,
					latency: time.Since(t0), rep: rr, err: err,
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	if err := srv.Shutdown(context.Background()); err != nil {
		return nil, nil, err
	}

	row := &ServeRow{Clients: clients, Requests: len(results), Identical: true,
		WallMs: wall.Milliseconds()}
	var latencies obs.Histogram
	warmRequests, warmHits := 0, 0
	for _, res := range results {
		if res.err != nil {
			return nil, nil, res.err
		}
		latencies.Observe(res.latency.Microseconds())
		row.CacheHits += int64(res.rep.CacheHits)
		row.CacheMisses += int64(res.rep.CacheMisses)
		if res.warm {
			warmRequests++
			if res.rep.CacheHits > 0 {
				warmHits++
			}
		}
		want := refs[res.script]
		if len(res.rep.Outputs) != len(want) {
			row.Identical = false
			continue
		}
		for p, wt := range want {
			if gt := res.rep.Outputs[p]; gt == nil || !gt.Equal(wt) {
				row.Identical = false
			}
		}
	}
	row.P50Us = int64(latencies.Quantile(0.50))
	row.P99Us = int64(latencies.Quantile(0.99))
	if warmRequests > 0 {
		row.WarmHitRate = float64(warmHits) / float64(warmRequests)
	}
	row.Folded = srv.Registry().Snapshot().Counters["serve.folded"]

	// The event stream must reproduce the row's totals exactly — the
	// same invariant `scopestat -replay` relies on offline.
	events := srv.EventLog().Events()
	sum := eventlog.Summarize(events)
	if sum.Events != len(results) || sum.CacheHits != row.CacheHits ||
		sum.CacheMisses != row.CacheMisses || sum.Folded != row.Folded {
		return nil, nil, fmt.Errorf(
			"event log diverges from responses: events=%d hits=%d misses=%d folded=%d, rows say %d/%d/%d/%d",
			sum.Events, sum.CacheHits, sum.CacheMisses, sum.Folded,
			len(results), row.CacheHits, row.CacheMisses, row.Folded)
	}
	return row, eventlog.JSONL(events), nil
}

// FormatServe renders the service benchmark as an aligned table.
func FormatServe(rep *ServeReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %9s %9s %9s %9s %7s %7s %7s %10s\n",
		"clients", "requests", "p50", "p99", "warm-hit", "hits", "misses", "folded", "identical")
	for _, r := range rep.Rows {
		fmt.Fprintf(&b, "%-8d %9d %9s %9s %8.0f%% %7d %7d %7d %10v\n",
			r.Clients, r.Requests,
			time.Duration(r.P50Us)*time.Microsecond,
			time.Duration(r.P99Us)*time.Microsecond,
			r.WarmHitRate*100, r.CacheHits, r.CacheMisses, r.Folded, r.Identical)
	}
	return b.String()
}

// WriteServeJSON writes the report to path as indented JSON.
func WriteServeJSON(rep *ServeReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ValidateServeJSON re-reads an emitted BENCH_serve.json and checks
// the schema invariants: at least three concurrency levels, ordered
// percentiles, bit-identical results, and demonstrated cross-client
// cache hits.
func ValidateServeJSON(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep ServeReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != ServeSchema {
		return fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, ServeSchema)
	}
	if len(rep.Rows) < 3 {
		return fmt.Errorf("%s: %d concurrency levels, want >= 3", path, len(rep.Rows))
	}
	var hits int64
	for _, r := range rep.Rows {
		switch {
		case r.Clients <= 0 || r.Requests <= 0:
			return fmt.Errorf("%s: %d clients / %d requests row", path, r.Clients, r.Requests)
		case r.P50Us <= 0 || r.P99Us < r.P50Us:
			return fmt.Errorf("%s: %d clients: percentiles p50=%dus p99=%dus", path, r.Clients, r.P50Us, r.P99Us)
		case r.WarmHitRate < 0 || r.WarmHitRate > 1:
			return fmt.Errorf("%s: %d clients: warm_hit_rate %g outside [0,1]", path, r.Clients, r.WarmHitRate)
		case !r.Identical:
			return fmt.Errorf("%s: %d clients: results not bit-identical to sequential", path, r.Clients)
		}
		hits += r.CacheHits
	}
	if hits == 0 {
		return fmt.Errorf("%s: no cross-client cache hits at any level", path)
	}
	return nil
}
