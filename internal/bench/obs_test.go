package bench

import (
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/obs"
)

// traceAt optimizes and executes the Fig. 5 workload with both pools
// at the given width, recording every span, and returns the rendered
// span tree.
func traceAt(t *testing.T, width int) string {
	t.Helper()
	w := Small("Fig5", ScriptFig5)
	cfg := DefaultConfig()
	cfg.Tracer = obs.NewTracer()
	cfg.OptWorkers = width
	res, err := RunOne(w, true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := exec.NewCluster(5, w.FS)
	if err != nil {
		t.Fatal(err)
	}
	cl.Workers = width
	cl.Trace = cfg.Tracer
	if _, err := cl.Run(res.Plan); err != nil {
		t.Fatal(err)
	}
	return cfg.Tracer.TreeString()
}

// TestTraceDeterministicAcrossWorkers is the tracing acceptance
// criterion: the same script optimized and executed at one worker and
// at eight yields the identical span tree (names, ids, parentage, and
// integer args — everything but timestamps). Span identities come
// from memo-group and plan ids, and scheduling-dependent work (spool
// materialization, LCA rounds) parents to stable anchors, so the
// goroutine interleaving cannot leak into the tree.
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	seq := traceAt(t, 1)
	par := traceAt(t, 8)
	if seq != par {
		t.Errorf("span tree differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}
	for _, want := range []string{"opt.optimize", "opt.phase2", "opt.lca", "exec.run", "exec.spool-materialize"} {
		if !strings.Contains(seq, want) {
			t.Errorf("span tree is missing %q spans:\n%s", want, seq)
		}
	}
}

// TestAccuracySweep runs the EXPLAIN ANALYZE accuracy sweep and
// checks its calibration: every workload is scored, q-errors are
// finite and >= 1 by construction, and — since the calibrated
// catalogs describe the physical data exactly — no node should miss
// by more than the mis-estimation threshold.
func TestAccuracySweep(t *testing.T) {
	rows, snap, err := Accuracy(5, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("accuracy sweep scored %d workloads, want 5", len(rows))
	}
	for _, r := range rows {
		if r.Nodes == 0 {
			t.Errorf("%s: no nodes scored", r.Script)
		}
		if r.MeanQ < 1 || r.MaxQ < r.MeanQ {
			t.Errorf("%s: implausible q-errors mean=%v max=%v", r.Script, r.MeanQ, r.MaxQ)
		}
		if r.Flagged != 0 {
			t.Errorf("%s: %d nodes flagged on calibrated stats (max_q=%.2f)", r.Script, r.Flagged, r.MaxQ)
		}
	}
	if snap.Counters["exec.rows_processed"] == 0 {
		t.Error("aggregate snapshot metered no rows")
	}
	out := FormatAccuracy(rows)
	if !strings.Contains(out, "mean-q") || !strings.Contains(out, "S1") {
		t.Errorf("FormatAccuracy output malformed:\n%s", out)
	}
}
