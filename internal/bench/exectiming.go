package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/logical"
)

// ExecRow is one measured execution of an optimized plan on the
// simulated cluster: real wall-clock time of the run at a given
// worker-pool width, alongside the simulated seconds derived from the
// metered work, with the result verified against the reference
// interpreter.
type ExecRow struct {
	Script  string
	Plan    string // "conv" or "cse"
	Workers int
	Wall    time.Duration
	SimSec  float64
	Correct bool
}

// ExecWorkloads returns the builtin scripts the execution-timing
// sweep runs: the four micro-scripts plus the Fig. 5 script.
func ExecWorkloads() []*datagen.Workload {
	return []*datagen.Workload{
		Small("S1", ScriptS1),
		Small("S2", ScriptS2),
		Small("S3", ScriptS3),
		Small("S4", ScriptS4),
		Small("Fig5", ScriptFig5),
	}
}

// ExecTimings executes the conventional and CSE plan of every builtin
// workload at each worker-pool width on a cluster of the given size.
// Every run is checked against the reference interpreter; metered
// totals are worker-count invariant, so SimSec varies only across
// plans while Wall varies with the pool width.
func ExecTimings(machines int, workerCounts []int, cfg Config) ([]ExecRow, error) {
	var rows []ExecRow
	for _, w := range ExecWorkloads() {
		mRef, err := logical.BuildSource(w.Script, w.Cat)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		want, err := exec.Reference(mRef, w.FS)
		if err != nil {
			return nil, fmt.Errorf("%s: reference: %w", w.Name, err)
		}
		for _, cse := range []bool{false, true} {
			res, err := RunOne(w, cse, cfg)
			if err != nil {
				return nil, err
			}
			plan := "conv"
			if cse {
				plan = "cse"
			}
			for _, workers := range workerCounts {
				cl, err := exec.NewCluster(machines, w.FS)
				if err != nil {
					return nil, err
				}
				cl.Workers = workers
				cl.Engine = cfg.Engine
				cl.MemBudget = cfg.MemBudget
				start := time.Now()
				got, err := cl.Run(res.Plan)
				wall := time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("%s %s workers=%d: %w", w.Name, plan, workers, err)
				}
				correct := len(got) == len(want)
				for path, wt := range want {
					gt, ok := got[path]
					if !ok || !gt.Equal(wt) {
						correct = false
					}
				}
				simC := cfg.Cluster
				simC.Machines = machines
				rows = append(rows, ExecRow{
					Script:  w.Name,
					Plan:    plan,
					Workers: workers,
					Wall:    wall,
					SimSec:  cl.Metrics().SimulatedSeconds(simC),
					Correct: correct,
				})
			}
		}
	}
	return rows, nil
}

// FormatExec renders execution-timing rows as an aligned table.
func FormatExec(rows []ExecRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-5s %8s %12s %12s %8s\n",
		"script", "plan", "workers", "wall", "sim(s)", "correct")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-5s %8d %12s %12.6f %8v\n",
			r.Script, r.Plan, r.Workers, r.Wall.Round(time.Microsecond), r.SimSec, r.Correct)
	}
	return b.String()
}
