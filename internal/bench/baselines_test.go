package bench

import (
	"testing"

	"repro/internal/datagen"
)

// TestBaselinesOrdering isolates the paper's contribution from the
// generic benefit of sharing: on every micro-script the cost-based
// framework must beat (or match) the related-work local-sharing
// baseline, which in turn beats the conventional optimizer; and on
// S1 — where the consumers' requirements genuinely conflict — the
// cost-based plan must be strictly cheaper than local sharing.
func TestBaselinesOrdering(t *testing.T) {
	rows, err := Baselines(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatBaselines(rows))
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PaperCSE > r.LocalCSE*(1+1e-9) {
			t.Errorf("%s: cost-based %v must not lose to local sharing %v",
				r.Script, r.PaperCSE, r.LocalCSE)
		}
		if r.LocalCSE >= r.Conv {
			t.Errorf("%s: even local sharing should beat no sharing (%v vs %v)",
				r.Script, r.LocalCSE, r.Conv)
		}
	}
	s1 := rows[0]
	if s1.Script != "S1" {
		t.Fatalf("first row = %s", s1.Script)
	}
	if s1.PaperCSE >= s1.LocalCSE {
		t.Errorf("S1: conflicting consumer requirements should make cost-based (%v) strictly beat local (%v)",
			s1.PaperCSE, s1.LocalCSE)
	}
}

// TestAggSplitAblation quantifies a design choice DESIGN.md calls
// out: without the local/global aggregation split, every exchange
// moves raw rows instead of partial aggregates, so plans get strictly
// more expensive on aggregation-heavy scripts.
func TestAggSplitAblation(t *testing.T) {
	// Low-cardinality profile: the aggregation reduces strongly, so
	// pre-aggregation before the exchange pays. (Under the Fig. 7
	// cardinalities the split does not pay and the optimizer
	// correctly produces identical plans with or without the rule.)
	w := func() *datagen.Workload {
		return datagen.SmallWorkloadCols("S1", ScriptS1, smallPhysRows, smallStatScale, 7,
			datagen.TestLogColumns())
	}
	cfg := DefaultConfig()
	base, err := RunOne(w(), true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ablated := cfg
	ablated.Rules.DisableAggSplit = true
	noSplit, err := RunOne(w(), true, ablated)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("agg-split ablation: with=%.0f without=%.0f (+%.0f%%)",
		base.Cost, noSplit.Cost, (noSplit.Cost/base.Cost-1)*100)
	if noSplit.Cost <= base.Cost {
		t.Errorf("removing pre-aggregation should cost more: %v vs %v", noSplit.Cost, base.Cost)
	}
}
