package bench

import (
	"path/filepath"
	"testing"
)

// TestVecBenchArtifact runs the vectorized-executor ablation at smoke
// scale and pushes the result through the emit/validate round trip:
// every kernel must be bit-identical between engines, every budgeted
// spill cell must actually spill with resident scratch within budget,
// and the JSON artifact must satisfy its own schema validator. (The
// 5x speedup floor is enforced only at full scale — small runs here
// are dominated by fixed costs.)
func TestVecBenchArtifact(t *testing.T) {
	rep, err := VecBench(4_000, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Kernels); got != 4 {
		t.Fatalf("kernels = %d, want 4", got)
	}
	for _, r := range rep.Kernels {
		if !r.Identical {
			t.Errorf("kernel %s: vector run not bit-identical", r.Kernel)
		}
	}
	var hits int64
	for _, r := range rep.Kernels {
		hits += r.CSEHits
	}
	if hits == 0 {
		t.Error("no kernel recorded scalar CSE memo hits — shared (K+G) should hit")
	}
	for _, r := range rep.Spill {
		if r.BudgetBytes > 0 && r.Spills == 0 {
			t.Errorf("spill %s budget=%d: did not spill", r.Kernel, r.BudgetBytes)
		}
		if r.BudgetBytes > 0 && r.PeakResidentBytes > r.BudgetBytes {
			t.Errorf("spill %s budget=%d: peak resident %d over budget",
				r.Kernel, r.BudgetBytes, r.PeakResidentBytes)
		}
	}
	path := filepath.Join(t.TempDir(), "BENCH_vec.json")
	if err := WriteVecJSON(rep, path); err != nil {
		t.Fatal(err)
	}
	if err := ValidateVecJSON(path); err != nil {
		t.Fatal(err)
	}
}
