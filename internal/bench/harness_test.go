package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/opt"
	"repro/internal/plan"
)

// TestFig7ReproducesPaperBands is the headline experiment: every
// script's measured saving must fall within a band around the paper's
// reported saving (we reproduce shape, not absolute numbers — but the
// calibrated setup lands close).
func TestFig7ReproducesPaperBands(t *testing.T) {
	if testing.Short() {
		t.Skip("LS2 optimization is ~2s")
	}
	cfg := DefaultConfig()
	rows, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatFig7(rows))
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	// S1–S3, LS1, LS2 land within a few points of the paper; S4 saves
	// ~12 points more because our Alg. 1 also spools R1 and R2 (each
	// consumed by an OUTPUT and the join) — three shared groups where
	// the paper's Fig. 6 diagram draws a single spool. See
	// EXPERIMENTS.md.
	const band = 0.13
	for _, r := range rows {
		if r.Saving < r.PaperSaving-band || r.Saving > r.PaperSaving+band {
			t.Errorf("%s: saving %.0f%% outside ±%.0f%% of paper's %.0f%%",
				r.Script, r.Saving*100, band*100, r.PaperSaving*100)
		}
		if r.CSECost >= r.ConvCost {
			t.Errorf("%s: CSE must win (%.0f vs %.0f)", r.Script, r.CSECost, r.ConvCost)
		}
	}
	// Paper-specific orderings: S4 saves the most of the
	// micro-scripts; S2 beats S1; LS2 beats LS1.
	byName := map[string]Fig7Row{}
	for _, r := range rows {
		byName[r.Script] = r
	}
	if byName["S2"].Saving <= byName["S1"].Saving {
		t.Error("S2 (3 consumers) should save more than S1")
	}
	if byName["LS2"].Saving <= byName["LS1"].Saving {
		t.Error("LS2 should save more than LS1")
	}
	// Absolute magnitude calibration: S1 conventional ≈ 8185.
	if c := byName["S1"].ConvCost; c < 4000 || c > 16000 {
		t.Errorf("S1 conventional cost %.0f far from the paper's 8185 scale", c)
	}
}

func TestFig7SmallScriptsOptimizeFast(t *testing.T) {
	// Sec. IX: "The execution time of the optimization process for
	// queries S1 to S4 was smaller than one second."
	cfg := DefaultConfig()
	for _, w := range Fig7Workloads()[:4] {
		row, err := Fig7For(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if row.CSETime > time.Second {
			t.Errorf("%s optimized in %v, want < 1s", w.Name, row.CSETime)
		}
	}
}

func TestFig8PlanShapes(t *testing.T) {
	conv, cse, err := Fig8(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("conventional (Fig 8a):\n%s", conv)
	t.Logf("exploiting CSEs (Fig 8b):\n%s", cse)
	// 8(a): two extracts, two repartitions, no spool.
	if got := strings.Count(conv, "Extract (test.log)"); got != 2 {
		t.Errorf("conventional extracts rendered %d times, want 2", got)
	}
	if strings.Contains(conv, "Spool") {
		t.Error("conventional plan must not spool")
	}
	if got := strings.Count(conv, "Repartition"); got != 2 {
		t.Errorf("conventional repartitions = %d, want 2", got)
	}
	// 8(b): one extract, one repartition on {B}, a shared spool.
	if got := strings.Count(cse, "Extract (test.log)"); got != 1 {
		t.Errorf("CSE extracts rendered %d times, want 1", got)
	}
	if !strings.Contains(cse, "Repartition {B}") {
		t.Errorf("CSE plan should repartition on {B}:\n%s", cse)
	}
	if !strings.Contains(cse, "(shared, see above)") {
		t.Error("CSE plan should share the spool")
	}
	if !strings.Contains(cse, "StreamAgg") || strings.Contains(cse, "HashAgg") {
		t.Error("SCOPE profile plans must be sort-merge pipelines")
	}
}

func TestRoundsFig5Reduction(t *testing.T) {
	rows, err := RoundsFig5(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatRounds(rows))
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	indep, cart := rows[0], rows[1]
	// Independence must reduce rounds strictly, and both must find
	// plans of identical cost (the groups really are independent).
	if indep.Rounds >= cart.Rounds {
		t.Errorf("independent rounds %d should be below cartesian %d", indep.Rounds, cart.Rounds)
	}
	if diff := indep.Cost - cart.Cost; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("independent cost %v != cartesian cost %v", indep.Cost, cart.Cost)
	}
	// The generic n+m-1 vs n*m relationship (the paper's 15 vs 64 at
	// 8 property sets each).
	if cart.NaiveRounds != cart.Rounds {
		t.Errorf("cartesian should evaluate the naive product: %d vs %d", cart.Rounds, cart.NaiveRounds)
	}
}

func TestRankingUnderBudgetHelps(t *testing.T) {
	// On ScriptRanking the exact-{B} scheme carries two phase-1 wins,
	// so ranked generation finds the best pin in the very first
	// round while recording-order generation starts from an inferior
	// {A,C}-derived scheme. (Ranking is a heuristic: on other
	// scripts the orders may tie or even favor recording order; the
	// paper's claim is about promising rounds running early, which
	// this workload isolates.)
	w := Small("Ranking", ScriptRanking)
	rows, err := RankingUnderBudget(w, []int{1, 1024}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatBudget(rows))
	costAt := func(ranked bool, mr int) float64 {
		for _, r := range rows {
			if strings.HasPrefix(r.Config, "ranked") == ranked && r.MaxRounds == mr {
				return r.Cost
			}
		}
		t.Fatalf("missing row ranked=%v mr=%d", ranked, mr)
		return 0
	}
	// With an unbounded budget both variants converge.
	if diff := costAt(true, 1024) - costAt(false, 1024); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("full budget costs differ: %v vs %v", costAt(true, 1024), costAt(false, 1024))
	}
	// With a single round, ranked generation must already beat
	// recording order (the promising scheme runs first).
	if costAt(true, 1) >= costAt(false, 1) {
		t.Errorf("ranked@1 %v should beat unranked@1 %v", costAt(true, 1), costAt(false, 1))
	}
}

func TestFig7PlansStaticallyValid(t *testing.T) {
	// Every Fig. 7 plan — including LS1/LS2, which (like the paper)
	// are never executed — must pass the static physical-soundness
	// check: delivered-property consistency, aggregation colocation
	// and clustering, join co-partitioning.
	if testing.Short() {
		t.Skip("LS2 optimization is ~2s")
	}
	cfg := DefaultConfig()
	for _, w := range Fig7Workloads() {
		for _, cse := range []bool{false, true} {
			res, err := RunOne(w, cse, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := opt.ValidatePlan(res.Plan); err != nil {
				t.Errorf("%s cse=%v: %v", w.Name, cse, err)
			}
			total, _ := plan.CountOps(res.Plan)
			if total < 5 {
				t.Errorf("%s: suspiciously small plan (%d ops)", w.Name, total)
			}
		}
	}
}

// TestLSWithinPaperBudgets checks the Sec. IX setup end to end: LS1
// and LS2 complete their full round plans inside the paper's 30 s and
// 60 s optimization budgets (on 2026 hardware, with two orders of
// magnitude to spare).
func TestLSWithinPaperBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("LS2 optimization is ~2s")
	}
	cfg := DefaultConfig()
	for _, w := range Fig7Workloads()[4:] {
		res, err := RunOne(w, true, cfg)
		if err != nil {
			t.Fatal(err)
		}
		budget := BudgetOf(w)
		if res.Duration > budget {
			t.Errorf("%s optimized in %v, budget %v", w.Name, res.Duration, budget)
		}
		if res.Stats.BudgetExhausted {
			t.Errorf("%s should finish its rounds within the budget", w.Name)
		}
	}
}
