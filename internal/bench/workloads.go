// Package bench is the experiment harness: it owns the canonical
// evaluation workloads (the paper's S1–S4 micro-scripts and the
// LS1/LS2-shaped generated scripts) and regenerates every table and
// figure of the paper's Sec. IX — Fig. 7's estimated-cost comparison,
// Fig. 8's plan shapes, and the Sec. VIII round-count reductions.
package bench

import (
	"fmt"
	"time"

	"repro/internal/datagen"
)

// ScriptS1 is the paper's motivating script (Sec. I, Fig. 6 S1): one
// shared aggregation with two consumers that want conflicting
// partitionings.
const ScriptS1 = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) as S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) as S2 FROM R GROUP BY B,C;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
`

// ScriptS2 is Fig. 6 S2: a single shared group with three consumers.
const ScriptS2 = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,A,Sum(S) as S1 FROM R GROUP BY B,A;
R2 = SELECT A,C,Sum(S) as S2 FROM R GROUP BY A,C;
R3 = SELECT A,Sum(S) as S3 FROM R GROUP BY A;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
OUTPUT R3 TO "result3.out";
`

// ScriptS3 is Fig. 6 S3: two shared groups over two inputs, each with
// its own join — two different LCAs (Fig. 4(a)).
const ScriptS3 = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,C,Sum(S) as S1 FROM R GROUP BY B,C;
R2 = SELECT B,A,Sum(S) as S2 FROM R GROUP BY B,A;
RR = SELECT R1.B,A,C,S1,S2 FROM R1,R2 WHERE R1.B=R2.B;
T0 = EXTRACT A,B,C,D FROM "test2.log" USING LogExtractor;
T = SELECT A,B,C,Sum(D) as S FROM T0 GROUP BY A,B,C;
T1 = SELECT B,C,Sum(S) as S1 FROM T GROUP BY B,C;
T2 = SELECT B,A,Sum(S) as S2 FROM T GROUP BY B,A;
TT = SELECT T1.B,A,C,S1,S2 FROM T1,T2 WHERE T1.B=T2.B;
OUTPUT RR TO "result1.out";
OUTPUT TT TO "result2.out";
`

// ScriptS4 is Fig. 6 S4: non-independent shared groups — R1 and R2
// feed both direct outputs and a join, so the LCA of every shared
// group is the root (the Fig. 3(c) situation).
const ScriptS4 = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,C,Sum(S) as S1 FROM R GROUP BY B,C;
R2 = SELECT B,A,Sum(S) as S2 FROM R GROUP BY B,A;
RR = SELECT R1.B,A,C FROM R1,R2 WHERE R1.B=R2.B;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
OUTPUT RR TO "result3.out";
`

// ScriptFig5 is the Sec. VIII-A / Fig. 5 shape: two disjoint shared
// pipelines whose consumers all terminate in outputs, so both shared
// groups have the Sequence root as their LCA yet are independent.
const ScriptFig5 = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) as S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) as S2 FROM R GROUP BY B,C;
T0 = EXTRACT A,B,C,D FROM "test2.log" USING LogExtractor;
T = SELECT A,B,C,Sum(D) as S FROM T0 GROUP BY A,B,C;
T1 = SELECT A,B,Sum(S) as S1 FROM T GROUP BY A,B;
T2 = SELECT B,C,Sum(S) as S2 FROM T GROUP BY B,C;
OUTPUT R1 TO "o1";
OUTPUT R2 TO "o2";
OUTPUT T1 TO "o3";
OUTPUT T2 TO "o4";
`

// ScriptRanking exercises the Sec. VIII-C property ranking: the
// shared group's consumers are one {A,C} grouping (recorded first)
// and two distinct {B} groupings, so the exact-{B} scheme wins the
// phase-1 history twice and ranked round generation tries the best
// pin first, while unranked (recording-order) generation starts with
// an {A,C}-derived scheme.
const ScriptRanking = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,C,Sum(S) as S1 FROM R GROUP BY A,C;
R2 = SELECT B,Sum(S) as S2 FROM R GROUP BY B;
R3 = SELECT B,Min(S) as S3 FROM R GROUP BY B;
OUTPUT R1 TO "o1";
OUTPUT R2 TO "o2";
OUTPUT R3 TO "o3";
`

// smallPhysRows and smallStatScale put the micro-scripts' inputs at 2
// billion logical rows (64 GB at 32 B/row) over laptop-sized physical
// data.
const (
	smallPhysRows  = 2_000
	smallStatScale = 1_000_000
)

// Small returns the workload for one of the S1–S4 micro-scripts.
func Small(name, script string) *datagen.Workload {
	return datagen.SmallWorkloadCols(name, script, smallPhysRows, smallStatScale, 7,
		datagen.MicroScriptColumns())
}

// BuiltinWorkload resolves the builtin script names the CLIs accept
// (s1 s2 s3 s4 fig5 ls1 ls2). Every tool that takes a -script flag
// resolves it here, so the name set cannot drift between commands.
func BuiltinWorkload(name string) (*datagen.Workload, error) {
	switch name {
	case "s1":
		return Small("S1", ScriptS1), nil
	case "s2":
		return Small("S2", ScriptS2), nil
	case "s3":
		return Small("S3", ScriptS3), nil
	case "s4":
		return Small("S4", ScriptS4), nil
	case "fig5":
		return Small("Fig5", ScriptFig5), nil
	case "ls1":
		return datagen.LargeScript1(), nil
	case "ls2":
		return datagen.LargeScript2(), nil
	default:
		return nil, fmt.Errorf("unknown builtin script %q", name)
	}
}

// PaperSavings records the savings the paper reports in Fig. 7, for
// side-by-side comparison in experiment output.
var PaperSavings = map[string]float64{
	"S1": 0.38, "S2": 0.55, "S3": 0.45, "S4": 0.57,
	"LS1": 0.21, "LS2": 0.45,
}

// Fig7Workloads returns the six evaluation workloads of Fig. 7 in
// paper order.
func Fig7Workloads() []*datagen.Workload {
	return []*datagen.Workload{
		Small("S1", ScriptS1),
		Small("S2", ScriptS2),
		Small("S3", ScriptS3),
		Small("S4", ScriptS4),
		datagen.LargeScript1(),
		datagen.LargeScript2(),
	}
}

// BudgetOf returns the optimization budget for a workload (the paper
// used 30 s / 60 s for LS1 / LS2 and no explicit budget for S1–S4).
func BudgetOf(w *datagen.Workload) time.Duration {
	return time.Duration(w.BudgetSeconds) * time.Second
}
