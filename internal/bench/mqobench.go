package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"

	"repro/internal/exec"
	"repro/internal/mqo"
	"repro/internal/share"
)

// MQOSchema identifies the BENCH_mqo.json layout; bump on any
// incompatible change so downstream readers fail loudly.
const MQOSchema = "scope-bench-mqo/1"

// MQORow is one (workload, budget) cell of the multi-query
// optimization ablation: the same batch priced under per-script
// greedy admission versus the global workload-level selection.
type MQORow struct {
	Workload string `json:"workload"`
	Scripts  int    `json:"scripts"`
	// BudgetBytes bounds the chosen set's estimated artifact bytes
	// (0 = unlimited).
	BudgetBytes int64 `json:"budget_bytes"`
	// Candidates is the merged DAG's cross-script sharing candidate
	// count; Chosen how many the global selection materializes.
	Candidates  int   `json:"candidates"`
	Chosen      int   `json:"chosen"`
	ChosenBytes int64 `json:"chosen_bytes"`
	// Base is the estimated workload cost with nothing materialized
	// across scripts; PerScript simulates the session's local greedy
	// admission; Global is the workload-level selection (both include
	// persist charges).
	Base      float64 `json:"base"`
	PerScript float64 `json:"per_script"`
	Global    float64 `json:"global"`
	// Method is the winning selector ("greedy" or "greedy+guard").
	Method string `json:"method"`
	// Evals is the evaluator's cumulative optimizer-invocation count.
	Evals int `json:"evals"`
	// OracleMatch reports the greedy selection priced equal to the
	// exhaustive optimum (always checked: every batch here is within
	// the exhaustive bound).
	OracleMatch bool `json:"oracle_match"`
	// Identical reports the enacted batch produced bit-identical
	// outputs to independent per-script runs.
	Identical bool `json:"identical"`
}

// MQOReport is the machine-readable MQO ablation artifact.
type MQOReport struct {
	Schema   string   `json:"schema"`
	Machines int      `json:"machines"`
	Workers  int      `json:"workers"`
	Rows     []MQORow `json:"rows"`
}

// mqoMicroBatch is the paper's S1-S4 micro scripts as one workload
// batch: every script computes the same first-level aggregation over
// test.log, so the merged DAG shares it across all four.
func mqoMicroBatch() []mqo.Script {
	return []mqo.Script{
		{Name: "S1", Src: ScriptS1},
		{Name: "S2", Src: ScriptS2},
		{Name: "S3", Src: ScriptS3},
		{Name: "S4", Src: ScriptS4},
	}
}

// mqoFuzzBatch deterministically generates a batch of single-consumer
// scripts over the micro schema: each script picks one of three
// shared aggregation cores and reduces it once — so within-script CSE
// never spools the core and the per-script baseline can never
// materialize it. Only the workload-level selection shares these.
func mqoFuzzBatch(n int, seed int64) []mqo.Script {
	r := rand.New(rand.NewSource(seed))
	cores := [][2]string{{"A", "B"}, {"B", "C"}, {"A", "C"}}
	scripts := make([]mqo.Script, n)
	for i := range scripts {
		core := cores[i%len(cores)]
		down := core[r.Intn(2)]
		scripts[i] = mqo.Script{
			Name: fmt.Sprintf("F%d", i),
			Src: fmt.Sprintf(`
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT %[1]s,%[2]s,Sum(D) as S FROM R0 GROUP BY %[1]s,%[2]s;
R1 = SELECT %[3]s,Sum(S) as S1 FROM R GROUP BY %[3]s;
OUTPUT R1 TO "fuzz%[4]d.out" ORDER BY %[3]s;
`, core[0], core[1], down, i),
		}
	}
	return scripts
}

// MQOBench runs the multi-query optimization ablation: each workload
// batch is merged into one AND-OR DAG, and for at least three storage
// budget levels the global selection is priced against the simulated
// per-script greedy baseline, cross-checked against the exhaustive
// oracle, and enacted through a live session whose outputs must match
// independent per-script runs bit for bit.
func MQOBench(machines, workers int) (*MQOReport, error) {
	rep := &MQOReport{Schema: MQOSchema, Machines: machines, Workers: workers}
	batches := []struct {
		name    string
		scripts []mqo.Script
	}{
		{"micro-s1-s4", mqoMicroBatch()},
		{"fuzz-6", mqoFuzzBatch(6, 42)},
	}
	for _, b := range batches {
		rows, err := mqoWorkload(b.name, b.scripts, machines, workers)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.name, err)
		}
		rep.Rows = append(rep.Rows, rows...)
	}
	return rep, nil
}

// mqoWorkload prices and enacts one batch at unlimited, half, and
// near-zero storage budgets.
func mqoWorkload(name string, scripts []mqo.Script, machines, workers int) ([]MQORow, error) {
	env := Small("mqo-"+name, "")
	dag, err := mqo.BuildDAG(scripts, env.Cat)
	if err != nil {
		return nil, err
	}
	if len(dag.Candidates) > mqo.MaxExhaustive {
		return nil, fmt.Errorf("%d candidates exceed the oracle bound %d",
			len(dag.Candidates), mqo.MaxExhaustive)
	}
	var total int64
	for _, g := range dag.Candidates {
		total += g.Bytes()
	}
	// One evaluator serves every budget: EvalSet memoization is
	// budget-independent, so later levels reuse earlier pricings.
	probe, err := share.NewSession(share.Config{
		Catalog: env.Cat, FS: env.FS, Machines: machines, Workers: workers,
	})
	if err != nil {
		return nil, err
	}
	ev := mqo.NewEvaluator(dag, probe.Options())

	// Independent per-script references for the bit-identity check.
	refs := make([]map[string]*exec.Table, len(scripts))
	for i, sc := range scripts {
		w := Small("mqo-ref-"+name, "")
		sess, err := share.NewSession(share.Config{
			Catalog: w.Cat, FS: w.FS, Machines: machines, Workers: workers,
		})
		if err != nil {
			return nil, err
		}
		r, err := sess.Run(sc.Src)
		if err != nil {
			return nil, fmt.Errorf("reference %s: %w", sc.Name, err)
		}
		refs[i] = r.Outputs
	}

	var rows []MQORow
	for _, budget := range []int64{0, total / 2, 1} {
		cfg := mqo.Config{Budget: budget, Workers: workers}
		global, err := mqo.Select(ev, cfg)
		if err != nil {
			return nil, err
		}
		perScript, err := mqo.SelectPerScript(ev, cfg)
		if err != nil {
			return nil, err
		}
		oracle, err := mqo.SelectExhaustive(ev, cfg)
		if err != nil {
			return nil, err
		}
		greedy, err := mqo.SelectGreedy(ev, cfg)
		if err != nil {
			return nil, err
		}

		row := MQORow{
			Workload:    name,
			Scripts:     len(scripts),
			BudgetBytes: budget,
			Candidates:  len(dag.Candidates),
			Chosen:      len(global.Keys),
			ChosenBytes: global.Bytes,
			Base:        global.Base,
			PerScript:   perScript.Total,
			Global:      global.Total,
			Method:      global.Method,
			Evals:       global.Evals,
			OracleMatch: math.Abs(greedy.Total-oracle.Total) <= 1e-6*math.Max(1, oracle.Total),
		}

		// Enact through a fresh session and verify bit-identity.
		enactEnv := Small("mqo-"+name, "")
		sess, err := share.NewSession(share.Config{
			Catalog: enactEnv.Cat, FS: enactEnv.FS, Machines: machines, Workers: workers,
		})
		if err != nil {
			return nil, err
		}
		enactDAG, err := mqo.BuildDAG(scripts, enactEnv.Cat)
		if err != nil {
			return nil, err
		}
		reps, err := mqo.Enact(context.Background(), sess, enactDAG, global, share.RunOpts{Tenant: "bench"})
		if err != nil {
			return nil, err
		}
		row.Identical = true
		for i, r := range reps {
			if len(r.Outputs) != len(refs[i]) {
				row.Identical = false
				continue
			}
			for p, wt := range refs[i] {
				if gt := r.Outputs[p]; gt == nil || !gt.Equal(wt) {
					row.Identical = false
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatMQO renders the ablation as an aligned table.
func FormatMQO(rep *MQOReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %12s %6s %10s %10s %10s %-12s %7s %9s\n",
		"workload", "scripts", "budget", "chosen", "base", "perscript", "global", "method", "oracle", "identical")
	for _, r := range rep.Rows {
		budget := "unlimited"
		if r.BudgetBytes > 0 {
			budget = fmt.Sprintf("%d", r.BudgetBytes)
		}
		fmt.Fprintf(&b, "%-12s %8d %12s %6d %10.0f %10.0f %10.0f %-12s %7v %9v\n",
			r.Workload, r.Scripts, budget, r.Chosen,
			r.Base, r.PerScript, r.Global, r.Method, r.OracleMatch, r.Identical)
	}
	return b.String()
}

// WriteMQOJSON writes the report to path as indented JSON.
func WriteMQOJSON(rep *MQOReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ValidateMQOJSON re-reads an emitted BENCH_mqo.json and checks the
// ablation's invariants: at least three budget levels per workload,
// the global selection never pricing above the per-script baseline
// and strictly below it somewhere, every row oracle-checked, and
// every enacted batch bit-identical to independent runs.
func ValidateMQOJSON(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep MQOReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != MQOSchema {
		return fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, MQOSchema)
	}
	levels := map[string]int{}
	strictly := false
	for _, r := range rep.Rows {
		levels[r.Workload]++
		const eps = 1e-9
		switch {
		case r.Scripts < 2:
			return fmt.Errorf("%s: %s: %d scripts is not a workload", path, r.Workload, r.Scripts)
		case r.Global > r.PerScript*(1+eps):
			return fmt.Errorf("%s: %s budget=%d: global %.1f above per-script %.1f",
				path, r.Workload, r.BudgetBytes, r.Global, r.PerScript)
		case r.Global > r.Base*(1+eps):
			return fmt.Errorf("%s: %s budget=%d: global %.1f above base %.1f",
				path, r.Workload, r.BudgetBytes, r.Global, r.Base)
		case !r.OracleMatch:
			return fmt.Errorf("%s: %s budget=%d: greedy missed the exhaustive optimum",
				path, r.Workload, r.BudgetBytes)
		case !r.Identical:
			return fmt.Errorf("%s: %s budget=%d: enacted outputs differ from independent runs",
				path, r.Workload, r.BudgetBytes)
		}
		if r.Global < r.PerScript*(1-1e-9) {
			strictly = true
		}
	}
	for w, n := range levels {
		if n < 3 {
			return fmt.Errorf("%s: workload %s has %d budget levels, want >= 3", path, w, n)
		}
	}
	if len(levels) < 2 {
		return fmt.Errorf("%s: %d workloads, want >= 2", path, len(levels))
	}
	if !strictly {
		return fmt.Errorf("%s: global never strictly beats per-script at any cell", path)
	}
	return nil
}
