package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/lint"
	"repro/internal/logical"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/rules"
)

// PaperCostScale calibrates our cost units to the magnitudes of the
// paper's Fig. 7 (whose S1 conventional plan costs 8185 units). Only
// presentation changes; every ratio is scale-invariant.
const PaperCostScale = 63.2058

// Config parameterizes an experiment run.
type Config struct {
	// Cluster is the cost-model cluster (defaults applied by the
	// optimizer).
	Cluster cost.Cluster
	// Rules defaults to the SCOPE profile (sort-merge pipelines, as
	// in the paper's plans).
	Rules rules.Config
	// MaxRoundsPerLCA caps phase-2 rounds (0 = optimizer default).
	MaxRoundsPerLCA int
	// UsePaperBudgets applies the paper's 30 s / 60 s optimization
	// budgets to LS1 / LS2.
	UsePaperBudgets bool
	// OptWorkers overrides the phase-2 round-evaluation pool width
	// (0 = optimizer default of GOMAXPROCS; results are identical at
	// any width).
	OptWorkers int
	// Ablations.
	DisableIndependence bool
	DisableRanking      bool
	DisableRoundPruning bool
	DisableWinnerReuse  bool
	// Lint runs the plan analyzers on every optimized plan and fails
	// the run on error-severity findings, so experiment numbers are
	// never reported off a plan that violates the sharing invariants.
	Lint bool
	// Tracer, when non-nil, receives optimizer spans from every
	// RunOne. The span tree is deterministic at any OptWorkers width.
	Tracer *obs.Tracer
	// Engine selects the execution engine for experiments that run
	// plans ("" = cluster default) and MemBudget their per-partition
	// working-set bound in bytes (0 = unbounded). See exec.Cluster.
	Engine    string
	MemBudget int64
}

// DefaultConfig returns the configuration the experiments use.
func DefaultConfig() Config {
	c := cost.DefaultCluster()
	c.Scale = PaperCostScale
	return Config{
		Cluster:         c,
		Rules:           rules.SCOPEProfile(),
		UsePaperBudgets: true,
		Lint:            true,
	}
}

// RunOne optimizes a workload once.
func RunOne(w *datagen.Workload, enableCSE bool, cfg Config) (*opt.Result, error) {
	m, err := logical.BuildSource(w.Script, w.Cat)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	opts := opt.DefaultOptions()
	opts.EnableCSE = enableCSE
	opts.Cluster = cfg.Cluster
	opts.Rules = cfg.Rules
	opts.DisableIndependence = cfg.DisableIndependence
	opts.DisableRanking = cfg.DisableRanking
	opts.DisableRoundPruning = cfg.DisableRoundPruning
	opts.DisableWinnerReuse = cfg.DisableWinnerReuse
	if cfg.OptWorkers > 0 {
		opts.Workers = cfg.OptWorkers
	}
	if cfg.MaxRoundsPerLCA > 0 {
		opts.MaxRoundsPerLCA = cfg.MaxRoundsPerLCA
	}
	if cfg.UsePaperBudgets && w.BudgetSeconds > 0 {
		opts.Timeout = time.Duration(w.BudgetSeconds) * time.Second
	}
	opts.Lint = cfg.Lint
	opts.Tracer = cfg.Tracer
	res, err := opt.Optimize(m, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	if err := lintOracle(w.Name, res); err != nil {
		return res, err
	}
	return res, nil
}

// lintOracle fails a run whose chosen plan carries error-severity
// findings. Sharing bugs are silent cost regressions, so without this
// gate a broken optimizer would simply report slightly different
// experiment numbers.
func lintOracle(name string, res *opt.Result) error {
	for _, d := range res.Lint {
		if d.Severity == lint.Error {
			return fmt.Errorf("%s: plan lint: %s", name, d)
		}
	}
	return nil
}

// Fig7Row is one column group of Fig. 7: a script optimized
// conventionally and with the CSE framework.
type Fig7Row struct {
	Script       string
	ConvCost     float64
	CSECost      float64
	Saving       float64 // 1 - CSE/Conv
	PaperSaving  float64
	SharedGroups int
	Rounds       int
	NaiveRounds  int
	ConvTime     time.Duration
	CSETime      time.Duration
}

// Fig7 regenerates the paper's Fig. 7: estimated plan cost with
// conventional optimization versus the CSE framework, for every
// evaluation script.
func Fig7(cfg Config) ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, w := range Fig7Workloads() {
		row, err := Fig7For(w, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig7For runs the Fig. 7 comparison for a single workload.
func Fig7For(w *datagen.Workload, cfg Config) (Fig7Row, error) {
	conv, err := RunOne(w, false, cfg)
	if err != nil {
		return Fig7Row{}, err
	}
	cse, err := RunOne(w, true, cfg)
	if err != nil {
		return Fig7Row{}, err
	}
	return Fig7Row{
		Script:       w.Name,
		ConvCost:     conv.Cost,
		CSECost:      cse.Cost,
		Saving:       1 - cse.Cost/conv.Cost,
		PaperSaving:  PaperSavings[w.Name],
		SharedGroups: cse.Stats.SharedGroups,
		Rounds:       cse.Stats.Rounds,
		NaiveRounds:  cse.Stats.NaiveCombinations,
		ConvTime:     conv.Duration,
		CSETime:      cse.Duration,
	}, nil
}

// FormatFig7 renders the rows as an aligned text table with the
// paper's reported savings alongside.
func FormatFig7(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %14s %14s %9s %9s %7s %8s %12s\n",
		"script", "conventional", "exploit-CSE", "saving", "paper", "shared", "rounds", "opt-time")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %14.0f %14.0f %8.0f%% %8.0f%% %7d %8d %12s\n",
			r.Script, r.ConvCost, r.CSECost, r.Saving*100, r.PaperSaving*100,
			r.SharedGroups, r.Rounds, r.CSETime.Round(time.Millisecond))
	}
	return b.String()
}

// Fig8 regenerates the paper's Fig. 8: the S1 plan under conventional
// optimization (8a) and under the CSE framework (8b), rendered as
// trees. It uses the low-cardinality column profile (strongly
// reducing aggregations), under which the plans match the figure
// operator for operator — including the StreamAgg(Local) /
// Repartition+SortMerge / StreamAgg(Global) pipeline; under the
// Fig. 7 cardinalities the aggregation reduces too little for
// pre-aggregation to pay and the optimizer correctly skips the split
// (same sharing structure, no Local/Global pair).
func Fig8(cfg Config) (conv, cse string, err error) {
	w := datagen.SmallWorkloadCols("S1", ScriptS1, smallPhysRows, smallStatScale, 7,
		datagen.TestLogColumns())
	rc, err := RunOne(w, false, cfg)
	if err != nil {
		return "", "", err
	}
	re, err := RunOne(w, true, cfg)
	if err != nil {
		return "", "", err
	}
	return plan.Format(rc.Plan), plan.Format(re.Plan), nil
}

// RoundsRow reports phase-2 search effort for one configuration.
type RoundsRow struct {
	Config      string
	Rounds      int
	NaiveRounds int
	Cost        float64
}

// RoundsFig5 regenerates the Sec. VIII-A comparison on the Fig. 5
// script shape: rounds evaluated with and without the
// independent-shared-groups extension (the paper's 64 → 15 example,
// at whatever history sizes the optimizer actually recorded).
func RoundsFig5(cfg Config) ([]RoundsRow, error) {
	w := Small("Fig5", ScriptFig5)
	var rows []RoundsRow
	for _, ablate := range []bool{false, true} {
		c := cfg
		c.DisableIndependence = ablate
		c.MaxRoundsPerLCA = 1 << 20
		res, err := RunOne(w, true, c)
		if err != nil {
			return nil, err
		}
		name := "independent (Sec VIII-A)"
		if ablate {
			name = "cartesian product"
		}
		rows = append(rows, RoundsRow{
			Config:      name,
			Rounds:      res.Stats.Rounds,
			NaiveRounds: res.Stats.NaiveCombinations,
			Cost:        res.Cost,
		})
	}
	return rows, nil
}

// FormatRounds renders round-count rows.
func FormatRounds(rows []RoundsRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %8s %8s %12s\n", "configuration", "rounds", "naive", "est. cost")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %8d %8d %12.0f\n", r.Config, r.Rounds, r.NaiveRounds, r.Cost)
	}
	return b.String()
}

// BudgetRow reports cost reached under a bounded number of rounds.
type BudgetRow struct {
	Config    string
	MaxRounds int
	Cost      float64
	Rounds    int
}

// RankingUnderBudget regenerates the Sec. VIII-B/C effect: with a
// tight round budget, ranked round generation reaches a better plan
// than unranked generation.
func RankingUnderBudget(w *datagen.Workload, budgets []int, cfg Config) ([]BudgetRow, error) {
	var rows []BudgetRow
	for _, ranked := range []bool{true, false} {
		for _, mr := range budgets {
			c := cfg
			c.DisableRanking = !ranked
			c.MaxRoundsPerLCA = mr
			c.UsePaperBudgets = false
			res, err := RunOne(w, true, c)
			if err != nil {
				return nil, err
			}
			name := "ranked (Sec VIII-B/C)"
			if !ranked {
				name = "unranked"
			}
			rows = append(rows, BudgetRow{Config: name, MaxRounds: mr, Cost: res.Cost, Rounds: res.Stats.Rounds})
		}
	}
	return rows, nil
}

// BaselineRow compares three optimizers on one script: conventional
// (no sharing), local-only sharing (the related-work techniques
// [10,11,12] the paper improves on: the shared subexpression is
// planned locally optimally and forced on every consumer), and the
// paper's cost-based framework.
type BaselineRow struct {
	Script    string
	Conv      float64
	LocalCSE  float64
	PaperCSE  float64
	LocalSave float64
	PaperSave float64
}

// Baselines runs the three-way comparison over the micro-scripts.
// The gap between LocalCSE and PaperCSE is the paper's contribution
// isolated from the generic benefit of sharing.
func Baselines(cfg Config) ([]BaselineRow, error) {
	var rows []BaselineRow
	for _, w := range Fig7Workloads()[:4] {
		conv, err := RunOne(w, false, cfg)
		if err != nil {
			return nil, err
		}
		lcfg := cfg
		local, err := runLocal(w, lcfg)
		if err != nil {
			return nil, err
		}
		paper, err := RunOne(w, true, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BaselineRow{
			Script:    w.Name,
			Conv:      conv.Cost,
			LocalCSE:  local.Cost,
			PaperCSE:  paper.Cost,
			LocalSave: 1 - local.Cost/conv.Cost,
			PaperSave: 1 - paper.Cost/conv.Cost,
		})
	}
	return rows, nil
}

func runLocal(w *datagen.Workload, cfg Config) (*opt.Result, error) {
	m, err := logical.BuildSource(w.Script, w.Cat)
	if err != nil {
		return nil, err
	}
	opts := opt.DefaultOptions()
	opts.Cluster = cfg.Cluster
	opts.Rules = cfg.Rules
	opts.LocalSharingOnly = true
	opts.Lint = cfg.Lint
	res, err := opt.Optimize(m, opts)
	if err != nil {
		return nil, err
	}
	if err := lintOracle(w.Name+"/local", res); err != nil {
		return res, err
	}
	return res, nil
}

// FormatBaselines renders the three-way table.
func FormatBaselines(rows []BaselineRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %14s %14s %14s %11s %11s\n",
		"script", "conventional", "local-CSE", "cost-based", "local-save", "paper-save")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %14.0f %14.0f %14.0f %10.0f%% %10.0f%%\n",
			r.Script, r.Conv, r.LocalCSE, r.PaperCSE, r.LocalSave*100, r.PaperSave*100)
	}
	return b.String()
}

// FormatBudget renders budget rows.
func FormatBudget(rows []BudgetRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %10s %8s %12s\n", "configuration", "maxRounds", "rounds", "est. cost")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %10d %8d %12.0f\n", r.Config, r.MaxRounds, r.Rounds, r.Cost)
	}
	return b.String()
}
