package bench

import (
	"strings"
	"testing"

	"repro/internal/plan"
	"repro/internal/relop"
)

// TestGoldenPlanInvariants locks the structural invariants of every
// micro-script's CSE plan under the SCOPE profile: how often the
// input is read, how many exchanges execute, and how many distinct
// spools exist. These are the quantities the paper's Fig. 8 narrative
// is about; changes to rules or the cost model that alter them should
// be deliberate.
func TestGoldenPlanInvariants(t *testing.T) {
	cases := []struct {
		name     string
		script   string
		extracts float64 // effective extract executions
		spools   int     // distinct spool materializations
		maxExch  float64 // effective exchange executions (upper bound)
	}{
		// S1: one input read once, one compromise exchange, one spool.
		{"S1", ScriptS1, 1, 1, 1},
		// S2: three consumers, still one read and one exchange.
		{"S2", ScriptS2, 1, 1, 1},
		// S3: two pipelines over two files: two reads, one exchange
		// and one spool per pipeline (plus possible join-side
		// exchanges of the small aggregates).
		{"S3", ScriptS3, 2, 2, 6},
		// S4: R, R1, R2 all shared: one read, three spools.
		{"S4", ScriptS4, 1, 3, 5},
	}
	cfg := DefaultConfig()
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := RunOne(Small(c.name, c.script), true, cfg)
			if err != nil {
				t.Fatal(err)
			}
			p := res.Plan
			if got := plan.RefCount(p, relop.KindPhysExtract); got != c.extracts {
				t.Errorf("extract executions = %v, want %v\n%s", got, c.extracts, plan.Format(p))
			}
			if got := len(plan.FindAll(p, relop.KindPhysSpool)); got != c.spools {
				t.Errorf("distinct spools = %d, want %d\n%s", got, c.spools, plan.Format(p))
			}
			if got := plan.RefCount(p, relop.KindRepartition); got > c.maxExch {
				t.Errorf("exchanges = %v, want <= %v\n%s", got, c.maxExch, plan.Format(p))
			}
			// Every spool is consumed at least twice.
			spoolRefs := plan.RefCount(p, relop.KindPhysSpool)
			if spoolRefs < float64(2*c.spools) {
				t.Errorf("spool references = %v, want >= %d", spoolRefs, 2*c.spools)
			}
		})
	}
}

// TestGoldenS1Shape locks the exact Fig. 8(b) operator tree (on the
// low-cardinality Fig. 8 workload) as a golden string.
func TestGoldenS1Shape(t *testing.T) {
	_, cse, err := Fig8(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Strip the bracketed annotations, keeping the operator skeleton.
	var ops []string
	for _, line := range strings.Split(cse, "\n") {
		if i := strings.Index(line, "  ["); i >= 0 {
			line = line[:i]
		}
		if strings.TrimSpace(line) != "" {
			ops = append(ops, line)
		}
	}
	got := strings.Join(ops, "\n")
	want := strings.TrimSpace(`
Sequence
├── Output (Parallel) [result1.out]
│   └── StreamAgg (Single) (A, B)
│       └── Spool
│           └── StreamAgg (Global) (A, B, C)
│               └── Repartition {B} / SortMerge (A,B,C)
│                   └── StreamAgg (Local) (A, B, C)
│                       └── Sort (A,B,C)
│                           └── Extract (test.log)
└── Output (Parallel) [result2.out]
    └── StreamAgg (Single) (B, C)
        └── Sort (B,C)
            └── Spool (shared, see above)`)
	if got != want {
		t.Errorf("Fig. 8(b) skeleton changed:\n%s\nwant:\n%s", got, want)
	}
}
