package bench

import (
	"path/filepath"
	"testing"
)

// TestServeBenchArtifact runs the service sweep at small concurrency
// levels, writes the JSON artifact, and checks the schema validator
// plus the properties the benchmark exists to demonstrate: every
// level bit-identical to sequential, warm rounds served from the
// shared cache, and cold work not repeated per client.
func TestServeBenchArtifact(t *testing.T) {
	rep, err := ServeBench([]int{1, 2, 4}, 2, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := WriteServeJSON(rep, path); err != nil {
		t.Fatal(err)
	}
	if err := ValidateServeJSON(path); err != nil {
		t.Fatal(err)
	}

	for _, r := range rep.Rows {
		if !r.Identical {
			t.Errorf("%d clients: results not bit-identical to sequential", r.Clients)
		}
		if r.WarmHitRate == 0 {
			t.Errorf("%d clients: no warm round hit the shared cache", r.Clients)
		}
		// The distinct shared subexpressions in the S1–S4 mix bound the
		// total misses; more clients must not mean proportionally more
		// cold materializations.
		if r.CacheMisses > 8 {
			t.Errorf("%d clients: %d misses — cold work repeated per client", r.Clients, r.CacheMisses)
		}
	}
}
