package bench

import "testing"

func TestExecTimings(t *testing.T) {
	rows, err := ExecTimings(5, []int{1, 2}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 5 scripts × 2 plans × 2 worker counts.
	if len(rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(rows))
	}
	sim := map[string]float64{}
	for _, r := range rows {
		if !r.Correct {
			t.Errorf("%s %s workers=%d: result differs from reference", r.Script, r.Plan, r.Workers)
		}
		if r.Wall <= 0 {
			t.Errorf("%s %s workers=%d: wall clock not measured", r.Script, r.Plan, r.Workers)
		}
		// Metered work — and so simulated time — must not depend on
		// the worker-pool width.
		k := r.Script + "/" + r.Plan
		if prev, ok := sim[k]; ok && prev != r.SimSec {
			t.Errorf("%s: simulated seconds vary with workers: %v vs %v", k, prev, r.SimSec)
		}
		sim[k] = r.SimSec
	}
	if FormatExec(rows) == "" {
		t.Error("FormatExec produced nothing")
	}
}
