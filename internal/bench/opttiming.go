package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/datagen"
)

// OptSchema identifies the BENCH_opt.json layout; bump on any
// incompatible change so downstream readers fail loudly.
const OptSchema = "scope-bench-opt/1"

// OptRow is one measured optimizer configuration on one workload:
// search-effort counters from the phase-2 round engine plus the
// best-of-iters optimization wall clock.
type OptRow struct {
	Workload      string  `json:"workload"`
	Variant       string  `json:"variant"`
	Cost          float64 `json:"cost"`
	SharedGroups  int     `json:"shared_groups"`
	Rounds        int     `json:"rounds"`
	RoundsPruned  int     `json:"rounds_pruned"`
	NaiveRounds   int     `json:"naive_rounds"`
	Phase1Tasks   int     `json:"phase1_tasks"`
	Phase2Tasks   int     `json:"phase2_tasks"`
	NsPerOptimize int64   `json:"ns_per_optimize"`
}

// OptReport is the machine-readable optimizer benchmark artifact.
type OptReport struct {
	Schema   string   `json:"schema"`
	Machines int      `json:"machines"`
	Iters    int      `json:"iters"`
	Workers  int      `json:"workers"`
	Rows     []OptRow `json:"rows"`
}

// OptVariants lists the round-engine configurations the sweep
// measures: the full engine, each tentpole optimization ablated, and
// the engine forced serial (equal plans, possibly different wall
// clock).
func OptVariants() []string {
	return []string{"full", "no-prune", "no-reuse", "serial"}
}

// optVariantConfig applies one variant to a base config.
func optVariantConfig(variant string, cfg Config) Config {
	c := cfg
	c.UsePaperBudgets = false
	switch variant {
	case "no-prune":
		c.DisableRoundPruning = true
	case "no-reuse":
		c.DisableWinnerReuse = true
		// Without phase-2 winner reuse, consumers that agree on a
		// context get structurally identical but pointer-distinct
		// subplans, which the P1/P4 sharing analyzers correctly flag;
		// the ablation measures search effort, not lint cleanliness.
		c.Lint = false
	case "serial":
		c.OptWorkers = 1
	}
	return c
}

// OptTimings measures the optimizer itself (not plan execution) over
// the builtin workloads under every round-engine variant. Each
// (workload, variant) pair is optimized iters times and the fastest
// run is reported, with the search counters taken from it — the
// optimizer is deterministic, so counters are identical across iters.
func OptTimings(iters int, cfg Config) (*OptReport, error) {
	return optTimingsOver(iters, cfg, ExecWorkloads())
}

func optTimingsOver(iters int, cfg Config, workloads []*datagen.Workload) (*OptReport, error) {
	if iters < 1 {
		iters = 1
	}
	rep := &OptReport{
		Schema:   OptSchema,
		Machines: cfg.Cluster.Machines,
		Iters:    iters,
		Workers:  runtime.GOMAXPROCS(0),
	}
	for _, w := range workloads {
		for _, variant := range OptVariants() {
			vc := optVariantConfig(variant, cfg)
			var row OptRow
			best := time.Duration(0)
			for it := 0; it < iters; it++ {
				res, err := RunOne(w, true, vc)
				if err != nil {
					return nil, fmt.Errorf("%s/%s: %w", w.Name, variant, err)
				}
				if it == 0 || res.Duration < best {
					best = res.Duration
					row = OptRow{
						Workload:      w.Name,
						Variant:       variant,
						Cost:          res.Cost,
						SharedGroups:  res.Stats.SharedGroups,
						Rounds:        res.Stats.Rounds,
						RoundsPruned:  res.Stats.RoundsPruned,
						NaiveRounds:   res.Stats.NaiveCombinations,
						Phase1Tasks:   res.Stats.Phase1Tasks,
						Phase2Tasks:   res.Stats.Phase2Tasks,
						NsPerOptimize: best.Nanoseconds(),
					}
				}
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// FormatOpt renders the optimizer benchmark as an aligned table.
func FormatOpt(rep *OptReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-9s %12s %7s %7s %7s %8s %8s %12s\n",
		"script", "variant", "est. cost", "rounds", "pruned", "naive", "p1tasks", "p2tasks", "opt-time")
	for _, r := range rep.Rows {
		fmt.Fprintf(&b, "%-6s %-9s %12.0f %7d %7d %7d %8d %8d %12s\n",
			r.Workload, r.Variant, r.Cost, r.Rounds, r.RoundsPruned, r.NaiveRounds,
			r.Phase1Tasks, r.Phase2Tasks,
			time.Duration(r.NsPerOptimize).Round(time.Microsecond))
	}
	return b.String()
}

// WriteOptJSON writes the report to path as indented JSON.
func WriteOptJSON(rep *OptReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ValidateOptJSON re-reads an emitted BENCH_opt.json and checks the
// schema invariants, so CI catches a malformed artifact at generation
// time rather than at first downstream use.
func ValidateOptJSON(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep OptReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != OptSchema {
		return fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, OptSchema)
	}
	if len(rep.Rows) == 0 {
		return fmt.Errorf("%s: no rows", path)
	}
	variants := map[string]bool{}
	for _, v := range OptVariants() {
		variants[v] = true
	}
	byWorkload := map[string]map[string]bool{}
	for _, r := range rep.Rows {
		switch {
		case !variants[r.Variant]:
			return fmt.Errorf("%s: %s: unknown variant %q", path, r.Workload, r.Variant)
		case r.NsPerOptimize <= 0:
			return fmt.Errorf("%s: %s/%s: non-positive ns_per_optimize %d", path, r.Workload, r.Variant, r.NsPerOptimize)
		case r.Cost <= 0:
			return fmt.Errorf("%s: %s/%s: non-positive cost %g", path, r.Workload, r.Variant, r.Cost)
		case r.RoundsPruned < 0 || r.RoundsPruned > r.Rounds:
			return fmt.Errorf("%s: %s/%s: rounds_pruned %d outside [0, rounds=%d]", path, r.Workload, r.Variant, r.RoundsPruned, r.Rounds)
		case r.Phase1Tasks <= 0:
			return fmt.Errorf("%s: %s/%s: non-positive phase1_tasks %d", path, r.Workload, r.Variant, r.Phase1Tasks)
		}
		if byWorkload[r.Workload] == nil {
			byWorkload[r.Workload] = map[string]bool{}
		}
		byWorkload[r.Workload][r.Variant] = true
	}
	for wl, have := range byWorkload {
		for _, v := range OptVariants() {
			if !have[v] {
				return fmt.Errorf("%s: %s: missing variant %q", path, wl, v)
			}
		}
	}
	return nil
}
