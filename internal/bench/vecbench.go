package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/opt"
	"repro/internal/rules"
)

// VecSchema identifies the BENCH_vec.json layout; bump on any
// incompatible change so downstream readers fail loudly.
const VecSchema = "scope-bench-vec/1"

// vecKernelScripts are the four kernel pipelines of the vectorized
// executor ablation. Each one drives its headline operator with the
// full input and funnels into a tiny aggregate tail, so the measured
// wall clock is the kernel under test, not the cost of materializing
// a million output rows (which both engines pay identically at the
// row boundary).
//
// The generated table profile is K (near-unique join/sort key), G
// (1024-way group key), W (4-way reduce key for the tails), V
// (measure).
var vecKernelScripts = []struct{ Kernel, Script string }{
	{"scan", `
R0 = EXTRACT K,G,W,V FROM "test.log" USING LogExtractor;
R = SELECT W, (K+G)*(K+G) as X, K*3-G as Y, V+K as Z FROM R0;
S = SELECT W, Sum(X) as SX, Sum(Y) as SY, Sum(Z) as SZ FROM R GROUP BY W;
OUTPUT S TO "o1";
`},
	{"filter", `
R0 = EXTRACT K,G,W,V FROM "test.log" USING LogExtractor;
R = SELECT W, V FROM R0 WHERE (K+G)*(K+G) > 1000000 AND K+G < 100000000 AND G != 512;
S = SELECT W, Sum(V) as SV FROM R GROUP BY W;
OUTPUT S TO "o1";
`},
	{"agg", `
R0 = EXTRACT K,G,W,V FROM "test.log" USING LogExtractor;
R = SELECT G, Sum(V) as SV, Count() as N FROM R0 GROUP BY G;
OUTPUT R TO "o1";
`},
	{"join", `
R0 = EXTRACT K,G,V FROM "test.log" USING LogExtractor;
T0 = EXTRACT K,W FROM "test2.log" USING LogExtractor;
J = SELECT W, V FROM R0, T0 WHERE R0.K = T0.K;
S = SELECT W, Sum(V) as SV, Count() as N FROM J GROUP BY W;
OUTPUT S TO "o1";
`},
}

// vecSpillScripts are the spill-ablation pipelines: the three
// budget-governed operators (hash aggregation, hash join build, sort
// buffer), each swept across memory budgets.
var vecSpillScripts = []struct{ Kernel, Script string }{
	{"agg", `
R0 = EXTRACT K,G,W,V FROM "test.log" USING LogExtractor;
R = SELECT G, Sum(V) as SV FROM R0 GROUP BY G;
OUTPUT R TO "o1";
`},
	{"join", `
R0 = EXTRACT K,G,V FROM "test.log" USING LogExtractor;
T0 = EXTRACT K,W FROM "test2.log" USING LogExtractor;
J = SELECT W, V FROM R0, T0 WHERE R0.K = T0.K;
S = SELECT W, Sum(V) as SV FROM J GROUP BY W;
OUTPUT S TO "o1";
`},
	{"sort", `
R0 = EXTRACT K,G,V FROM "test.log" USING LogExtractor;
R = SELECT G, Sum(V) as SV FROM R0 GROUP BY G;
OUTPUT R TO "o1" ORDER BY SV, G;
`},
}

// VecKernelRow is one row-vs-vector throughput cell: best-of-iters
// wall clock per engine on the same optimized plan and warm file
// store, with the vector run required bit-identical to the row run.
type VecKernelRow struct {
	Kernel     string  `json:"kernel"`
	Rows       int64   `json:"rows"`
	OutputRows int     `json:"output_rows"`
	RowSeconds float64 `json:"row_seconds"`
	VecSeconds float64 `json:"vec_seconds"`
	Speedup    float64 `json:"speedup"`
	// CSEHits counts vector-side scalar evaluations served from the
	// per-batch CSE memo.
	CSEHits int64 `json:"cse_hits"`
	// Identical: outputs (values and order), Core metrics, all equal.
	Identical bool `json:"identical"`
}

// VecSpillRow is one cell of the spill ablation: the same kernel under
// a memory budget must complete by spilling, stay bit-identical, and
// keep its resident operator scratch within the budget.
type VecSpillRow struct {
	Kernel            string  `json:"kernel"`
	BudgetBytes       int64   `json:"budget_bytes"`
	Spills            int64   `json:"spills"`
	SpillBytesWritten int64   `json:"spill_bytes_written"`
	SpillBytesRead    int64   `json:"spill_bytes_read"`
	PeakResidentBytes int64   `json:"peak_resident_bytes"`
	Seconds           float64 `json:"seconds"`
	Identical         bool    `json:"identical"`
}

// VecReport is the machine-readable vectorized-executor artifact.
type VecReport struct {
	Schema   string         `json:"schema"`
	Rows     int64          `json:"rows"`
	Machines int            `json:"machines"`
	Iters    int            `json:"iters"`
	Kernels  []VecKernelRow `json:"kernels"`
	Spill    []VecSpillRow  `json:"spill"`
}

// vecColumns is the generated table profile for the kernel pipelines.
func vecColumns(rows int64) []datagen.ColumnSpec {
	return []datagen.ColumnSpec{
		{Name: "K", Distinct: rows},
		{Name: "G", Distinct: 1024},
		{Name: "W", Distinct: 4},
		{Name: "V", Distinct: 1 << 30},
	}
}

// VecWorkload generates the kernel pipelines' input tables: test.log
// and test2.log with the K/G/W/V profile at the given row count. The
// exec kernel microbenchmarks share it.
func VecWorkload(rows int64) *datagen.Workload {
	return datagen.SmallWorkloadCols("vec", "", rows, 1, 7, vecColumns(rows))
}

// vecPlan optimizes one kernel script against the shared environment.
func vecPlan(env *datagen.Workload, script string) (*opt.Result, error) {
	opts := opt.DefaultOptions()
	opts.EnableCSE = true
	opts.Rules = rules.SCOPEProfile()
	m, err := logical.BuildSource(script, env.Cat)
	if err != nil {
		return nil, err
	}
	return opt.Optimize(m, opts)
}

// vecRun executes one plan once and times it.
func vecRun(env *datagen.Workload, res *opt.Result, engine string, machines int, budget int64) (map[string]*exec.Table, exec.Metrics, float64, error) {
	cl, err := exec.NewCluster(machines, env.FS)
	if err != nil {
		return nil, exec.Metrics{}, 0, err
	}
	cl.Engine = engine
	cl.MemBudget = budget
	start := time.Now()
	got, err := cl.Run(res.Plan)
	wall := time.Since(start).Seconds()
	if err != nil {
		return nil, exec.Metrics{}, 0, err
	}
	return got, cl.Metrics(), wall, nil
}

// vecIdentical applies the engine bit-identity contract: same output
// tables with the same row order and strictly equal values, and the
// same Core metered totals.
func vecIdentical(rowOut, vecOut map[string]*exec.Table, rowM, vecM exec.Metrics) bool {
	if len(rowOut) != len(vecOut) || rowM.Core() != vecM.Core() {
		return false
	}
	for path, rt := range rowOut {
		vt := vecOut[path]
		if vt == nil || len(vt.Rows) != len(rt.Rows) {
			return false
		}
		for i := range rt.Rows {
			if len(vt.Rows[i]) != len(rt.Rows[i]) {
				return false
			}
			for j := range rt.Rows[i] {
				if vt.Rows[i][j] != rt.Rows[i][j] {
					return false
				}
			}
		}
	}
	return true
}

// VecBench measures the vectorized executor against the row engine:
// per-kernel throughput on identical plans, then the spill ablation
// sweeping each budget-governed operator across memory budgets.
func VecBench(rows int64, iters, machines int) (*VecReport, error) {
	if iters < 1 {
		iters = 1
	}
	rep := &VecReport{Schema: VecSchema, Rows: rows, Machines: machines, Iters: iters}
	env := VecWorkload(rows)

	for _, k := range vecKernelScripts {
		res, err := vecPlan(env, k.Script)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Kernel, err)
		}
		// Warm the scan cache so neither engine pays the cold read.
		if _, _, _, err := vecRun(env, res, exec.EngineRow, machines, 0); err != nil {
			return nil, fmt.Errorf("%s warmup: %w", k.Kernel, err)
		}
		row := VecKernelRow{Kernel: k.Kernel, Rows: rows}
		var rowOut, vecOut map[string]*exec.Table
		var rowM, vecM exec.Metrics
		for i := 0; i < iters; i++ {
			out, m, wall, err := vecRun(env, res, exec.EngineRow, machines, 0)
			if err != nil {
				return nil, fmt.Errorf("%s row: %w", k.Kernel, err)
			}
			if i == 0 || wall < row.RowSeconds {
				row.RowSeconds = wall
			}
			rowOut, rowM = out, m
		}
		for i := 0; i < iters; i++ {
			out, m, wall, err := vecRun(env, res, exec.EngineVector, machines, 0)
			if err != nil {
				return nil, fmt.Errorf("%s vector: %w", k.Kernel, err)
			}
			if i == 0 || wall < row.VecSeconds {
				row.VecSeconds = wall
			}
			vecOut, vecM = out, m
		}
		for _, t := range vecOut {
			row.OutputRows += len(t.Rows)
		}
		row.CSEHits = vecM.ScalarCSEHits
		row.Identical = vecIdentical(rowOut, vecOut, rowM, vecM)
		if row.VecSeconds > 0 {
			row.Speedup = row.RowSeconds / row.VecSeconds
		}
		rep.Kernels = append(rep.Kernels, row)
	}

	// Spill ablation: per-partition working bytes shrink with the
	// machine count, so budgets derive from the per-machine share.
	work := rows / int64(machines) * 4 * 8
	for _, k := range vecSpillScripts {
		res, err := vecPlan(env, k.Script)
		if err != nil {
			return nil, fmt.Errorf("spill %s: %w", k.Kernel, err)
		}
		refOut, refM, _, err := vecRun(env, res, exec.EngineRow, machines, 0)
		if err != nil {
			return nil, fmt.Errorf("spill %s reference: %w", k.Kernel, err)
		}
		for _, budget := range []int64{0, work / 2, work / 8} {
			out, m, wall, err := vecRun(env, res, exec.EngineVector, machines, budget)
			if err != nil {
				return nil, fmt.Errorf("spill %s budget=%d: %w", k.Kernel, budget, err)
			}
			rep.Spill = append(rep.Spill, VecSpillRow{
				Kernel:            k.Kernel,
				BudgetBytes:       budget,
				Spills:            int64(m.Spills),
				SpillBytesWritten: m.SpillBytesWritten,
				SpillBytesRead:    m.SpillBytesRead,
				PeakResidentBytes: m.PeakResidentBytes,
				Seconds:           wall,
				Identical:         vecIdentical(refOut, out, refM, m),
			})
		}
	}
	return rep, nil
}

// FormatVec renders the report as aligned tables.
func FormatVec(rep *VecReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %10s %12s %12s %8s %10s %9s\n",
		"kernel", "rows", "outrows", "row(s)", "vec(s)", "speedup", "cse-hits", "identical")
	for _, r := range rep.Kernels {
		fmt.Fprintf(&b, "%-8s %10d %10d %12.6f %12.6f %8.2f %10d %9v\n",
			r.Kernel, r.Rows, r.OutputRows, r.RowSeconds, r.VecSeconds, r.Speedup, r.CSEHits, r.Identical)
	}
	fmt.Fprintf(&b, "\n%-8s %12s %8s %12s %12s %10s %10s %9s\n",
		"kernel", "budget", "spills", "written", "read", "peak", "sec", "identical")
	for _, r := range rep.Spill {
		budget := "unlimited"
		if r.BudgetBytes > 0 {
			budget = fmt.Sprintf("%d", r.BudgetBytes)
		}
		fmt.Fprintf(&b, "%-8s %12s %8d %12d %12d %10d %10.6f %9v\n",
			r.Kernel, budget, r.Spills, r.SpillBytesWritten, r.SpillBytesRead,
			r.PeakResidentBytes, r.Seconds, r.Identical)
	}
	return b.String()
}

// WriteVecJSON writes the report to path as indented JSON.
func WriteVecJSON(rep *VecReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// vecSpeedupFloor is the throughput bar the vectorized engine must
// clear over the row engine on every kernel, enforced only at full
// benchmark scale (small smoke runs are noise-dominated).
const (
	vecSpeedupFloor = 5.0
	vecFullScale    = 1_000_000
)

// ValidateVecJSON re-reads an emitted BENCH_vec.json and checks the
// artifact's invariants: all four kernels present and bit-identical;
// at full scale every kernel at least vecSpeedupFloor× faster
// vectorized; and every budgeted spill cell actually spilled, read
// back every byte written, and kept resident scratch within budget.
func ValidateVecJSON(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep VecReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != VecSchema {
		return fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, VecSchema)
	}
	kernels := map[string]bool{}
	for _, r := range rep.Kernels {
		kernels[r.Kernel] = true
		if r.Rows != rep.Rows {
			return fmt.Errorf("%s: kernel %s ran %d rows, report says %d", path, r.Kernel, r.Rows, rep.Rows)
		}
		if !r.Identical {
			return fmt.Errorf("%s: kernel %s: vector run not bit-identical to row engine", path, r.Kernel)
		}
		if r.OutputRows == 0 {
			return fmt.Errorf("%s: kernel %s produced no output", path, r.Kernel)
		}
		if rep.Rows >= vecFullScale && r.Speedup < vecSpeedupFloor {
			return fmt.Errorf("%s: kernel %s speedup %.2f below the %.0fx floor at %d rows",
				path, r.Kernel, r.Speedup, vecSpeedupFloor, rep.Rows)
		}
	}
	for _, k := range []string{"scan", "filter", "agg", "join"} {
		if !kernels[k] {
			return fmt.Errorf("%s: kernel %q missing", path, k)
		}
	}
	levels := map[string]int{}
	for _, r := range rep.Spill {
		levels[r.Kernel]++
		if !r.Identical {
			return fmt.Errorf("%s: spill %s budget=%d: not bit-identical to the row engine",
				path, r.Kernel, r.BudgetBytes)
		}
		if r.BudgetBytes == 0 {
			// Unbudgeted runs never spill; their peak reports the
			// natural in-memory working set the budgets then bound.
			if r.Spills != 0 || r.SpillBytesWritten != 0 {
				return fmt.Errorf("%s: spill %s: unbudgeted run spilled (%d spills, %d bytes)",
					path, r.Kernel, r.Spills, r.SpillBytesWritten)
			}
			continue
		}
		switch {
		case r.Spills == 0:
			return fmt.Errorf("%s: spill %s budget=%d: did not spill", path, r.Kernel, r.BudgetBytes)
		case r.SpillBytesRead != r.SpillBytesWritten || r.SpillBytesWritten == 0:
			return fmt.Errorf("%s: spill %s budget=%d: wrote %d bytes, read %d",
				path, r.Kernel, r.BudgetBytes, r.SpillBytesWritten, r.SpillBytesRead)
		case r.PeakResidentBytes == 0 || r.PeakResidentBytes > r.BudgetBytes:
			return fmt.Errorf("%s: spill %s budget=%d: peak resident %d outside (0, budget]",
				path, r.Kernel, r.BudgetBytes, r.PeakResidentBytes)
		}
	}
	for _, k := range []string{"agg", "join", "sort"} {
		if levels[k] < 3 {
			return fmt.Errorf("%s: spill kernel %q has %d budget levels, want >= 3", path, k, levels[k])
		}
	}
	return nil
}
