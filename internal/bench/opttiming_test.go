package bench

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/datagen"
)

// TestOptTimingsArtifact runs the optimizer sweep on a cheap workload
// subset, writes the JSON artifact, and checks both the schema
// validator and the ablation relations the round engine guarantees:
// every variant reaches the same plan cost, winner reuse strictly cuts
// phase-2 tasks, pruning fires somewhere, and the no-prune variant
// never reports a pruned round.
func TestOptTimingsArtifact(t *testing.T) {
	cfg := DefaultConfig()
	rep, err := optTimingsOver(1, cfg, []*datagen.Workload{
		Small("S1", ScriptS1),
		Small("S2", ScriptS2),
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_opt.json")
	if err := WriteOptJSON(rep, path); err != nil {
		t.Fatal(err)
	}
	if err := ValidateOptJSON(path); err != nil {
		t.Fatal(err)
	}

	byKey := map[[2]string]OptRow{}
	for _, r := range rep.Rows {
		byKey[[2]string{r.Workload, r.Variant}] = r
	}
	prunedTotal := 0
	for _, wl := range []string{"S1", "S2"} {
		full := byKey[[2]string{wl, "full"}]
		for _, v := range OptVariants()[1:] {
			r := byKey[[2]string{wl, v}]
			if math.Abs(r.Cost-full.Cost) > 1e-9*full.Cost {
				t.Errorf("%s/%s: cost %v differs from full %v", wl, v, r.Cost, full.Cost)
			}
		}
		noReuse := byKey[[2]string{wl, "no-reuse"}]
		if full.Phase2Tasks >= noReuse.Phase2Tasks {
			t.Errorf("%s: reuse did not reduce phase-2 tasks: %d vs %d", wl, full.Phase2Tasks, noReuse.Phase2Tasks)
		}
		if noPrune := byKey[[2]string{wl, "no-prune"}]; noPrune.RoundsPruned != 0 {
			t.Errorf("%s: no-prune variant pruned %d rounds", wl, noPrune.RoundsPruned)
		}
		if serial := byKey[[2]string{wl, "serial"}]; serial.Rounds != full.Rounds || serial.RoundsPruned != full.RoundsPruned {
			t.Errorf("%s: serial counters differ from full: %+v vs %+v", wl, serial, full)
		}
		prunedTotal += full.RoundsPruned
	}
	if prunedTotal == 0 {
		t.Error("branch-and-bound never pruned on S1/S2")
	}
}

// TestValidateOptJSONRejects covers the validator's failure paths.
func TestValidateOptJSONRejects(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	good := `{"schema":"scope-bench-opt/1","machines":100,"iters":1,"workers":4,"rows":[
	  {"workload":"S1","variant":"full","cost":10,"rounds":4,"rounds_pruned":1,"phase1_tasks":5,"phase2_tasks":9,"ns_per_optimize":100},
	  {"workload":"S1","variant":"no-prune","cost":10,"rounds":4,"rounds_pruned":0,"phase1_tasks":5,"phase2_tasks":9,"ns_per_optimize":100},
	  {"workload":"S1","variant":"no-reuse","cost":10,"rounds":4,"rounds_pruned":1,"phase1_tasks":5,"phase2_tasks":90,"ns_per_optimize":100},
	  {"workload":"S1","variant":"serial","cost":10,"rounds":4,"rounds_pruned":1,"phase1_tasks":5,"phase2_tasks":9,"ns_per_optimize":100}]}`
	if err := ValidateOptJSON(write("good.json", good)); err != nil {
		t.Errorf("valid artifact rejected: %v", err)
	}
	cases := map[string]string{
		"bad-schema.json":  `{"schema":"nope/9","rows":[{"workload":"S1","variant":"full","cost":1,"rounds":1,"phase1_tasks":1,"ns_per_optimize":1}]}`,
		"no-rows.json":     `{"schema":"scope-bench-opt/1","rows":[]}`,
		"bad-variant.json": `{"schema":"scope-bench-opt/1","rows":[{"workload":"S1","variant":"turbo","cost":1,"rounds":1,"phase1_tasks":1,"ns_per_optimize":1}]}`,
		"bad-pruned.json":  `{"schema":"scope-bench-opt/1","rows":[{"workload":"S1","variant":"full","cost":1,"rounds":1,"rounds_pruned":2,"phase1_tasks":1,"ns_per_optimize":1}]}`,
		"missing-variant.json": `{"schema":"scope-bench-opt/1","rows":[
		  {"workload":"S1","variant":"full","cost":1,"rounds":1,"phase1_tasks":1,"ns_per_optimize":1}]}`,
		"not-json.json": `{`,
	}
	for name, body := range cases {
		if err := ValidateOptJSON(write(name, body)); err == nil {
			t.Errorf("%s: invalid artifact accepted", name)
		}
	}
}
