package stats

import (
	"math"
	"sort"
)

// EstimateGroupBy derives the statistics of a grouping of in on the
// given key columns with nAggs aggregate output columns. The output
// cardinality is the product of the key distinct counts, damped and
// capped at the input cardinality (the classic attribute-value-
// independence estimate with a correlation discount: one key
// contributes its full distinct count, every other key the square
// root of its distinct count, as in SQL Server and SCOPE).
//
// The estimate is canonicalized to be key-order invariant: GROUP BY
// {A,B} and {B,A} describe the same relation, and fingerprint-
// identical subexpressions must get identical estimates or the CSE
// framework's plan choice would depend on the order keys were
// written. The undamped factor is the key with the largest distinct
// count (the dominant term under any ordering).
func EstimateGroupBy(in Relation, keys []string, nAggs int) Relation {
	// Multiply in sorted order so the estimate is bit-identical for
	// every key permutation (float multiplication is not associative).
	ds := make([]float64, len(keys))
	for i, k := range keys {
		ds[i] = float64(in.DistinctOf(k))
	}
	sort.Float64s(ds)
	rows := float64(1)
	for i, d := range ds {
		if i == len(ds)-1 {
			rows *= d
		} else {
			rows *= math.Sqrt(d)
		}
	}
	out := Relation{
		Rows:     clampRows(rows, in.Rows),
		Distinct: make(map[string]int64, len(keys)),
	}
	for _, k := range keys {
		out.Distinct[k] = min64(in.DistinctOf(k), out.Rows)
	}
	// Aggregate outputs are assumed near-unique per group.
	out.RowBytes = int64(len(keys)+nAggs) * defaultColBytes
	if out.RowBytes == 0 {
		out.RowBytes = defaultColBytes
	}
	return out
}

// EstimateFilter derives the statistics of a selection with the given
// selectivity in (0,1].
func EstimateFilter(in Relation, selectivity float64) Relation {
	if selectivity <= 0 {
		selectivity = 0.001
	}
	if selectivity > 1 {
		selectivity = 1
	}
	out := in.Clone()
	out.Rows = clampRows(float64(in.Rows)*selectivity, in.Rows)
	for c, d := range out.Distinct {
		out.Distinct[c] = min64(d, out.Rows)
	}
	return out
}

// EqualitySelectivity returns the selectivity of "col = constant"
// under a uniform assumption.
func EqualitySelectivity(in Relation, col string) float64 {
	d := in.DistinctOf(col)
	if d <= 0 {
		return 1
	}
	return 1 / float64(d)
}

// DefaultPredicateSelectivity is used for predicates the estimator
// does not model (inequalities, UDF predicates).
const DefaultPredicateSelectivity = 0.25

// EstimateJoin derives the statistics of an equi-join of l and r on
// the paired key columns lKeys[i] = rKeys[i], using the standard
// containment estimate |L|·|R| / max(d_L, d_R) per key pair.
func EstimateJoin(l, r Relation, lKeys, rKeys []string) Relation {
	rows := float64(l.Rows) * float64(r.Rows)
	for i := range lKeys {
		dl := float64(l.DistinctOf(lKeys[i]))
		dr := float64(r.DistinctOf(rKeys[i]))
		dmax := math.Max(dl, dr)
		if dmax > 0 {
			rows /= dmax
		}
	}
	// Cross-product cap, computed in float to avoid int64 overflow on
	// chained joins.
	capF := float64(l.Rows) * float64(r.Rows)
	cap64 := int64(maxEstimatedRows)
	if capF < maxEstimatedRows {
		cap64 = l.Rows * r.Rows
	}
	out := Relation{
		Rows:     clampRows(rows, cap64),
		RowBytes: l.RowBytes + r.RowBytes,
		Distinct: make(map[string]int64, len(l.Distinct)+len(r.Distinct)),
	}
	for c, d := range l.Distinct {
		out.Distinct[c] = min64(d, out.Rows)
	}
	for c, d := range r.Distinct {
		if _, dup := out.Distinct[c]; !dup {
			out.Distinct[c] = min64(d, out.Rows)
		}
	}
	return out
}

// EstimateProject derives the statistics of a projection keeping the
// named columns (computed columns should be appended by the caller
// with width defaults).
func EstimateProject(in Relation, kept []string, nComputed int) Relation {
	out := Relation{
		Rows:     in.Rows,
		RowBytes: int64(len(kept)+nComputed) * defaultColBytes,
		Distinct: make(map[string]int64, len(kept)),
	}
	for _, c := range kept {
		out.Distinct[c] = in.DistinctOf(c)
	}
	if out.RowBytes == 0 {
		out.RowBytes = defaultColBytes
	}
	return out
}

// EstimateUnion derives the statistics of a UNION ALL: cardinalities
// add, distinct counts add (capped by the total).
func EstimateUnion(ins []Relation) Relation {
	out := Relation{Distinct: map[string]int64{}}
	for _, in := range ins {
		out.Rows += in.Rows
		if in.RowBytes > out.RowBytes {
			out.RowBytes = in.RowBytes
		}
		for c, d := range in.Distinct {
			out.Distinct[c] += d
		}
	}
	if out.RowBytes == 0 {
		out.RowBytes = defaultColBytes
	}
	for c, d := range out.Distinct {
		out.Distinct[c] = min64(d, out.Rows)
	}
	return out
}

// BaseRelation derives the statistics of scanning the given columns
// of a stored file.
func BaseRelation(t *TableStats, cols []string) Relation {
	out := Relation{
		Rows:     t.Rows,
		RowBytes: t.RowBytes(cols),
		Distinct: make(map[string]int64, len(cols)),
	}
	for _, c := range cols {
		out.Distinct[c] = t.DistinctOf(c)
	}
	return out
}

// maxEstimatedRows saturates cardinality estimates: deep join chains
// would otherwise overflow int64 arithmetic and poison costs.
const maxEstimatedRows = 1e15

func clampRows(rows float64, upper int64) int64 {
	if math.IsNaN(rows) || rows < 1 {
		return 1
	}
	if rows > maxEstimatedRows {
		rows = maxEstimatedRows
	}
	r := int64(rows)
	if upper > 0 && r > upper {
		return upper
	}
	return r
}
