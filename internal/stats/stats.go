// Package stats provides the statistics catalog and cardinality
// estimation used by the optimizer's cost model. It plays the role of
// SCOPE's statistics subsystem: per-file row counts and per-column
// distinct counts, plus the standard textbook derivations for
// filters, group-bys, and equi-joins.
//
// Estimates here feed estimated plan costs only; the paper's entire
// evaluation (Fig. 7) compares optimizer cost estimates, so this
// package is part of the reproduced measurement pipeline, not an
// afterthought.
package stats

import (
	"fmt"
	"sort"
	"sync"
)

// ColumnStats summarizes one column of a stored file or derived
// relation.
type ColumnStats struct {
	// Distinct is the estimated number of distinct values.
	Distinct int64
	// AvgBytes is the average encoded width of a value.
	AvgBytes int
}

// TableStats summarizes a stored file.
type TableStats struct {
	// Rows is the estimated row count.
	Rows int64
	// Columns maps column name to its statistics.
	Columns map[string]ColumnStats
}

// RowBytes returns the average row width implied by the column
// widths, defaulting each unknown column to defaultColBytes.
func (t *TableStats) RowBytes(cols []string) int64 {
	var w int64
	for _, c := range cols {
		if cs, ok := t.Columns[c]; ok && cs.AvgBytes > 0 {
			w += int64(cs.AvgBytes)
		} else {
			w += defaultColBytes
		}
	}
	if w == 0 {
		w = defaultColBytes
	}
	return w
}

// DistinctOf returns the distinct count of col, defaulting to a fixed
// fraction of the row count when unknown.
func (t *TableStats) DistinctOf(col string) int64 {
	if cs, ok := t.Columns[col]; ok && cs.Distinct > 0 {
		return min64(cs.Distinct, t.Rows)
	}
	return defaultDistinct(t.Rows)
}

const (
	defaultColBytes = 8
	// defaultRows is assumed for files absent from the catalog.
	defaultRows = 1_000_000
)

func defaultDistinct(rows int64) int64 {
	d := rows / 10
	if d < 1 {
		d = 1
	}
	return d
}

// Catalog maps file paths to table statistics. The zero value is not
// usable; construct with NewCatalog. Reads and the FileID/Epoch
// accessors are mutex-guarded so sessions may re-register statistics
// between scripts while earlier plans are still being inspected.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*TableStats // guarded by mu
	// fileIDs assigns each path a small stable integer used as the
	// fingerprint leaf id (Definition 1). IDs are per-catalog and never
	// reused, so the same path fingerprints identically across every
	// script bound against this catalog — the property cross-query
	// result caching depends on.
	fileIDs map[string]int // guarded by mu
	// epochs counts statistics registrations per path; bumping it
	// invalidates cached results derived from the path.
	epochs map[string]int64 // guarded by mu
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		tables:  make(map[string]*TableStats),
		fileIDs: make(map[string]int),
		epochs:  make(map[string]int64),
	}
}

// Put registers statistics for a file path, replacing any previous
// entry and bumping the path's statistics epoch.
func (c *Catalog) Put(path string, ts *TableStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[path] = ts
	c.epochs[path]++
}

// FileID returns the stable fingerprint id for path, assigning the
// next free id on first use. IDs start at 1 and are never reused.
func (c *Catalog) FileID(path string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id, ok := c.fileIDs[path]; ok {
		return id
	}
	id := len(c.fileIDs) + 1
	c.fileIDs[path] = id
	return id
}

// Epoch returns how many times statistics have been registered for
// path. Zero means the catalog has never seen the path.
func (c *Catalog) Epoch(path string) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.epochs[path]
}

// Table returns statistics for path. Unknown files get conservative
// defaults so the optimizer never fails for lack of stats (mirroring
// SCOPE, which must optimize scripts over freshly produced files).
func (c *Catalog) Table(path string) *TableStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if ts, ok := c.tables[path]; ok {
		return ts
	}
	return &TableStats{Rows: defaultRows, Columns: map[string]ColumnStats{}}
}

// Has reports whether the catalog holds real statistics for path.
func (c *Catalog) Has(path string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.tables[path]
	return ok
}

// Paths returns the registered file paths in sorted order.
func (c *Catalog) Paths() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for p := range c.tables {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// String summarizes the catalog for debugging.
func (c *Catalog) String() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	paths := make([]string, 0, len(c.tables))
	for p := range c.tables {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	s := ""
	for _, p := range paths {
		t := c.tables[p]
		s += fmt.Sprintf("%s: rows=%d cols=%d\n", p, t.Rows, len(t.Columns))
	}
	return s
}

// Relation carries the derived statistics of an intermediate result:
// the memo attaches one to every group as part of its logical
// properties.
type Relation struct {
	// Rows is the estimated cardinality.
	Rows int64
	// RowBytes is the average row width in bytes.
	RowBytes int64
	// Distinct maps column name to estimated distinct count.
	Distinct map[string]int64
}

// Bytes returns the estimated total size of the relation.
func (r Relation) Bytes() int64 { return r.Rows * r.RowBytes }

// DistinctOf returns the distinct count for col with a default
// fallback.
func (r Relation) DistinctOf(col string) int64 {
	if d, ok := r.Distinct[col]; ok && d > 0 {
		return min64(d, r.Rows)
	}
	return defaultDistinct(r.Rows)
}

// Clone returns a deep copy whose Distinct map may be mutated freely.
func (r Relation) Clone() Relation {
	d := make(map[string]int64, len(r.Distinct))
	for k, v := range r.Distinct {
		d[k] = v
	}
	r.Distinct = d
	return r
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
