package stats

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func testTable() *TableStats {
	return &TableStats{
		Rows: 10_000_000,
		Columns: map[string]ColumnStats{
			"A": {Distinct: 1000, AvgBytes: 8},
			"B": {Distinct: 100, AvgBytes: 8},
			"C": {Distinct: 5000, AvgBytes: 8},
			"D": {Distinct: 9_000_000, AvgBytes: 8},
		},
	}
}

func TestCatalogDefaults(t *testing.T) {
	c := NewCatalog()
	ts := c.Table("unknown.log")
	if ts.Rows != defaultRows {
		t.Errorf("default rows = %d", ts.Rows)
	}
	if c.Has("unknown.log") {
		t.Error("Has should be false for defaults")
	}
	c.Put("a.log", testTable())
	if !c.Has("a.log") {
		t.Error("Has should be true after Put")
	}
	if got := c.Table("a.log").Rows; got != 10_000_000 {
		t.Errorf("rows = %d", got)
	}
	if got := c.Paths(); len(got) != 1 || got[0] != "a.log" {
		t.Errorf("Paths = %v", got)
	}
	if c.String() == "" {
		t.Error("String should summarize entries")
	}
}

func TestTableStatsDerived(t *testing.T) {
	ts := testTable()
	if got := ts.RowBytes([]string{"A", "B", "C", "D"}); got != 32 {
		t.Errorf("RowBytes = %d", got)
	}
	if got := ts.RowBytes([]string{"A", "X"}); got != 16 {
		t.Errorf("RowBytes with unknown col = %d", got)
	}
	if got := ts.DistinctOf("B"); got != 100 {
		t.Errorf("DistinctOf(B) = %d", got)
	}
	if got := ts.DistinctOf("X"); got != ts.Rows/10 {
		t.Errorf("DistinctOf(X) default = %d", got)
	}
}

func TestBaseRelation(t *testing.T) {
	r := BaseRelation(testTable(), []string{"A", "B", "C", "D"})
	if r.Rows != 10_000_000 || r.RowBytes != 32 {
		t.Fatalf("base relation %+v", r)
	}
	if r.Bytes() != 320_000_000 {
		t.Errorf("Bytes = %d", r.Bytes())
	}
}

func TestEstimateGroupBy(t *testing.T) {
	in := BaseRelation(testTable(), []string{"A", "B", "C", "D"})
	g := EstimateGroupBy(in, []string{"A", "B", "C"}, 1)
	if g.Rows <= 0 || g.Rows > in.Rows {
		t.Fatalf("group rows = %d out of range", g.Rows)
	}
	// Grouping on fewer keys must not increase cardinality beyond
	// the full-key grouping.
	g2 := EstimateGroupBy(in, []string{"B"}, 1)
	if g2.Rows > g.Rows {
		t.Errorf("coarser grouping larger: %d > %d", g2.Rows, g.Rows)
	}
	if g2.Rows != 100 {
		t.Errorf("group by B rows = %d, want 100 (distinct of B)", g2.Rows)
	}
	if g.RowBytes != 4*8 {
		t.Errorf("group row bytes = %d", g.RowBytes)
	}
	if d := g.DistinctOf("B"); d != 100 {
		t.Errorf("distinct B after grouping = %d", d)
	}
}

// TestEstimateGroupByPermutationInvariant is the regression test for
// a key-order sensitivity: the first key used to contribute its full
// distinct count and later keys √d, so GROUP BY {A,B} and {B,A} got
// different row estimates and could flip the CSE plan choice for
// fingerprint-identical subexpressions. The canonicalized estimate
// must be bit-identical under every permutation, with the largest
// distinct count as the undamped factor.
func TestEstimateGroupByPermutationInvariant(t *testing.T) {
	in := BaseRelation(testTable(), []string{"A", "B", "C", "D"})
	perms := [][]string{
		{"A", "B", "C"}, {"A", "C", "B"}, {"B", "A", "C"},
		{"B", "C", "A"}, {"C", "A", "B"}, {"C", "B", "A"},
	}
	base := EstimateGroupBy(in, perms[0], 1)
	for _, p := range perms[1:] {
		g := EstimateGroupBy(in, p, 1)
		if g.Rows != base.Rows {
			t.Errorf("GROUP BY %v rows = %d, but %v rows = %d", p, g.Rows, perms[0], base.Rows)
		}
	}
	// The undamped factor is C (5000 distinct, the largest):
	// 5000 · √1000 · √100.
	want := int64(5000 * math.Sqrt(1000) * math.Sqrt(100))
	if base.Rows != want {
		t.Errorf("rows = %d, want %d (largest key undamped)", base.Rows, want)
	}
	// Two-key permutations too.
	ab := EstimateGroupBy(in, []string{"A", "B"}, 0)
	ba := EstimateGroupBy(in, []string{"B", "A"}, 0)
	if ab.Rows != ba.Rows {
		t.Errorf("GROUP BY {A,B} = %d != {B,A} = %d", ab.Rows, ba.Rows)
	}
	if want := int64(1000 * math.Sqrt(100)); ab.Rows != want {
		t.Errorf("GROUP BY {A,B} rows = %d, want %d", ab.Rows, want)
	}
}

func TestEstimateFilter(t *testing.T) {
	in := BaseRelation(testTable(), []string{"A", "B"})
	f := EstimateFilter(in, 0.5)
	if f.Rows != in.Rows/2 {
		t.Errorf("filter rows = %d", f.Rows)
	}
	if f.Rows < f.DistinctOf("A") {
		t.Errorf("distinct should be capped at rows")
	}
	if EstimateFilter(in, 0).Rows <= 0 {
		t.Error("zero selectivity should clamp to positive")
	}
	if EstimateFilter(in, 5).Rows != in.Rows {
		t.Error("selectivity > 1 should clamp to 1")
	}
	if got := EqualitySelectivity(in, "B"); got != 0.01 {
		t.Errorf("equality selectivity = %v", got)
	}
}

func TestEstimateJoin(t *testing.T) {
	l := Relation{Rows: 1000, RowBytes: 16, Distinct: map[string]int64{"B": 100}}
	r := Relation{Rows: 500, RowBytes: 16, Distinct: map[string]int64{"B": 50}}
	j := EstimateJoin(l, r, []string{"B"}, []string{"B"})
	// 1000*500/max(100,50) = 5000.
	if j.Rows != 5000 {
		t.Errorf("join rows = %d, want 5000", j.Rows)
	}
	if j.RowBytes != 32 {
		t.Errorf("join row bytes = %d", j.RowBytes)
	}
	cross := EstimateJoin(l, r, nil, nil)
	if cross.Rows != 500_000 {
		t.Errorf("cross join rows = %d", cross.Rows)
	}
}

func TestEstimateProject(t *testing.T) {
	in := BaseRelation(testTable(), []string{"A", "B", "C", "D"})
	p := EstimateProject(in, []string{"A", "B"}, 1)
	if p.Rows != in.Rows {
		t.Errorf("projection changed rows")
	}
	if p.RowBytes != 24 {
		t.Errorf("projection row bytes = %d", p.RowBytes)
	}
	if p.DistinctOf("A") != 1000 {
		t.Errorf("projection lost distinct counts")
	}
}

func TestRelationClone(t *testing.T) {
	r := Relation{Rows: 10, RowBytes: 8, Distinct: map[string]int64{"A": 5}}
	c := r.Clone()
	c.Distinct["A"] = 1
	if r.Distinct["A"] != 5 {
		t.Error("Clone shares the Distinct map")
	}
}

// Property: estimators never produce non-positive or input-exceeding
// cardinalities for group-by and filter.
func TestEstimatorBounds(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			rel := Relation{
				Rows:     1 + r.Int63n(1_000_000),
				RowBytes: 8,
				Distinct: map[string]int64{
					"A": 1 + r.Int63n(100_000),
					"B": 1 + r.Int63n(100_000),
				},
			}
			vals[0] = reflect.ValueOf(rel)
			vals[1] = reflect.ValueOf(r.Float64())
		},
	}
	if err := quick.Check(func(rel Relation, sel float64) bool {
		g := EstimateGroupBy(rel, []string{"A", "B"}, 1)
		if g.Rows < 1 || g.Rows > rel.Rows {
			return false
		}
		f := EstimateFilter(rel, sel)
		return f.Rows >= 1 && f.Rows <= rel.Rows
	}, cfg); err != nil {
		t.Error(err)
	}
}
