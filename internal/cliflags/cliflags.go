// Package cliflags is the flag plumbing shared by the repro
// command-line tools. Each CLI used to register and validate its own
// -machines/-workers/-lint/-trace variants; drift between them meant
// the same flag could behave differently per tool. Registering
// through one helper keeps names, defaults, usage strings, and
// validation in a single place.
package cliflags

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
)

// Cluster holds the execution sizing flags (-machines, -workers).
type Cluster struct {
	// Machines is the simulated cluster size (partition count).
	Machines int
	// Workers is the real worker-pool width executing partition
	// tasks; metered work and results are identical at every width.
	Workers int
}

// ClusterFlags registers -machines and -workers on fs with the given
// defaults and returns the destination struct, to be read after
// fs.Parse and checked with Validate.
func ClusterFlags(fs *flag.FlagSet, defMachines, defWorkers int) *Cluster {
	c := &Cluster{}
	fs.IntVar(&c.Machines, "machines", defMachines,
		"simulated cluster size for execution (must be positive)")
	fs.IntVar(&c.Workers, "workers", defWorkers,
		"execution worker-pool width (must be positive)")
	return c
}

// Validate rejects non-positive cluster sizes.
func (c *Cluster) Validate() error {
	if c.Machines <= 0 {
		return fmt.Errorf("-machines must be positive, got %d", c.Machines)
	}
	if c.Workers <= 0 {
		return fmt.Errorf("-workers must be positive, got %d", c.Workers)
	}
	return nil
}

// Machines registers just the shared -machines flag, for tools whose
// -workers is a sweep list rather than a single width.
func Machines(fs *flag.FlagSet, def int) *int {
	return fs.Int("machines", def,
		"simulated cluster size for execution (must be positive)")
}

// Engine registers the shared -engine flag selecting the execution
// engine, validated with ValidateEngine after parsing.
func Engine(fs *flag.FlagSet, def string) *string {
	return fs.String("engine", def,
		`execution engine: "vector" (typed columnar batches) or "row" (reference interpreter)`)
}

// ValidateEngine rejects engine names the executor does not know.
func ValidateEngine(s string) error {
	switch s {
	case "vector", "row":
		return nil
	}
	return fmt.Errorf(`-engine must be "vector" or "row", got %q`, s)
}

// MemBudget registers the shared -membudget flag: the per-partition
// working-set bound in bytes. Zero disables budgeting; the vector
// engine spills past the budget, the row engine fails fast.
func MemBudget(fs *flag.FlagSet) *int64 {
	return fs.Int64("membudget", 0,
		"per-partition working-set budget in bytes (0 = unbounded; vector engine spills, row engine fails fast)")
}

// Lint registers the shared -lint flag.
func Lint(fs *flag.FlagSet) *bool {
	return fs.Bool("lint", false,
		"print static-analysis findings for each optimized plan")
}

// Trace registers the shared -trace flag.
func Trace(fs *flag.FlagSet) *string {
	return fs.String("trace", "",
		"write the optimizer and executor spans as Chrome trace_event JSON to this path")
}

// WorkersList registers the sweep form of -workers: a comma-separated
// list of pool widths, parsed with ParseWorkersList.
func WorkersList(fs *flag.FlagSet, def string) *string {
	return fs.String("workers", def,
		"comma-separated worker-pool widths (e.g. 1,4,8)")
}

// ParseWorkersList turns a comma-separated list like "1,4,8" into
// pool widths, rejecting non-positive or malformed entries.
func ParseWorkersList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}
