package cliflags

import (
	"flag"
	"io"
	"reflect"
	"testing"
)

func newFS() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestClusterFlagsDefaultsAndOverrides(t *testing.T) {
	fs := newFS()
	c := ClusterFlags(fs, 8, 4)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Machines != 8 || c.Workers != 4 {
		t.Fatalf("defaults = %+v, want machines=8 workers=4", c)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("default cluster invalid: %v", err)
	}

	fs = newFS()
	c = ClusterFlags(fs, 8, 4)
	if err := fs.Parse([]string{"-machines", "3", "-workers", "16"}); err != nil {
		t.Fatal(err)
	}
	if c.Machines != 3 || c.Workers != 16 {
		t.Fatalf("parsed = %+v, want machines=3 workers=16", c)
	}
}

func TestClusterValidateRejectsNonPositive(t *testing.T) {
	for _, c := range []Cluster{{0, 4}, {-1, 4}, {8, 0}, {8, -2}} {
		c := c
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestSharedFlagRegistration(t *testing.T) {
	fs := newFS()
	m := Machines(fs, 5)
	l := Lint(fs)
	tr := Trace(fs)
	wl := WorkersList(fs, "1,4")
	if err := fs.Parse([]string{"-machines", "7", "-lint", "-trace", "out.json", "-workers", "2,8"}); err != nil {
		t.Fatal(err)
	}
	if *m != 7 || !*l || *tr != "out.json" || *wl != "2,8" {
		t.Errorf("parsed machines=%d lint=%v trace=%q workers=%q", *m, *l, *tr, *wl)
	}
}

func TestParseWorkersList(t *testing.T) {
	got, err := ParseWorkersList(" 1, 4,8 ")
	if err != nil || !reflect.DeepEqual(got, []int{1, 4, 8}) {
		t.Errorf("ParseWorkersList = %v, %v; want [1 4 8]", got, err)
	}
	for _, bad := range []string{"", "0", "-1", "a", "1,,2", "1;2"} {
		if _, err := ParseWorkersList(bad); err == nil {
			t.Errorf("ParseWorkersList(%q) accepted", bad)
		}
	}
}

func TestEngineAndMemBudgetFlags(t *testing.T) {
	fs := newFS()
	e := Engine(fs, "vector")
	b := MemBudget(fs)
	if err := fs.Parse([]string{"-engine", "row", "-membudget", "65536"}); err != nil {
		t.Fatal(err)
	}
	if *e != "row" || *b != 65536 {
		t.Errorf("parsed engine=%q membudget=%d", *e, *b)
	}

	fs2 := newFS()
	e2 := Engine(fs2, "vector")
	b2 := MemBudget(fs2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *e2 != "vector" || *b2 != 0 {
		t.Errorf("defaults engine=%q membudget=%d, want vector/0", *e2, *b2)
	}
}

func TestValidateEngine(t *testing.T) {
	for _, ok := range []string{"vector", "row"} {
		if err := ValidateEngine(ok); err != nil {
			t.Errorf("ValidateEngine(%q) = %v", ok, err)
		}
	}
	for _, bad := range []string{"", "columnar", "Vector", "rows"} {
		if err := ValidateEngine(bad); err == nil {
			t.Errorf("ValidateEngine(%q) accepted", bad)
		}
	}
}
