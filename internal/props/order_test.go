package props

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func randOrdering(r *rand.Rand) Ordering {
	cols := []string{"A", "B", "C", "D"}
	r.Shuffle(len(cols), func(i, j int) { cols[i], cols[j] = cols[j], cols[i] })
	n := r.Intn(len(cols) + 1)
	o := make(Ordering, n)
	for i := 0; i < n; i++ {
		o[i] = SortCol{Col: cols[i], Desc: r.Intn(2) == 0}
	}
	return o
}

// TestOrderingProperties checks the algebraic facts the optimizer
// relies on: prefix satisfaction is reflexive and transitive; every
// prefix of an ordering is satisfied by it; projection preserves
// satisfaction of projected requirements.
func TestOrderingProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 1000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(randOrdering(r))
			}
		},
	}
	if err := quick.Check(func(o Ordering) bool {
		if !o.Satisfies(o) {
			return false
		}
		for n := 0; n <= len(o); n++ {
			if !o.Satisfies(o.Prefix(n)) {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Errorf("reflexivity/prefix: %v", err)
	}
	if err := quick.Check(func(a, b, c Ordering) bool {
		if a.Satisfies(b) && b.Satisfies(c) {
			return a.Satisfies(c)
		}
		return true
	}, cfg); err != nil {
		t.Errorf("transitivity: %v", err)
	}
	// HasPrefixSet agrees with some-rotation satisfaction.
	if err := quick.Check(func(o Ordering) bool {
		for n := 1; n <= len(o); n++ {
			set := o.Prefix(n).Columns()
			if !o.HasPrefixSet(set) {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Errorf("HasPrefixSet: %v", err)
	}
	// Projection keeps a valid prefix: the projected ordering is
	// satisfied by the original and mentions only kept columns.
	if err := quick.Check(func(o Ordering, kept ColSet) bool {
		p := o.Project(kept)
		return o.Satisfies(p) && p.Columns().SubsetOf(kept.Union(p.Columns()))
	}, &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randOrdering(r))
			vals[1] = reflect.ValueOf(randColSet(r))
		},
	}); err != nil {
		t.Errorf("projection: %v", err)
	}
}

// TestOrderingsWithPrefixSetProperties: every generated candidate
// clusters the requested set, and generation is deterministic.
func TestOrderingsWithPrefixSetProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			all := randColSet(r)
			var req ColSet
			cols := all.Cols()
			if len(cols) > 0 {
				n := 1 + r.Intn(len(cols))
				req = NewColSet(cols[:n]...)
			}
			vals[0] = reflect.ValueOf(all)
			vals[1] = reflect.ValueOf(req)
		},
	}
	if err := quick.Check(func(all, req ColSet) bool {
		a := OrderingsWithPrefixSet(all, req)
		b := OrderingsWithPrefixSet(all, req)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if !a[i].Equal(b[i]) {
				return false
			}
			if !a[i].HasPrefixSet(req) || !a[i].Columns().Equal(all) {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}
