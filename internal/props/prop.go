package props

import (
	"fmt"
	"sort"
	"strings"
)

// Required is the set of physical properties a parent demands from a
// plan: a distribution requirement and a per-machine sort requirement.
// This is the paper's ReqProp.
type Required struct {
	Part  Partitioning
	Order Ordering
}

// AnyRequired imposes nothing.
func AnyRequired() Required { return Required{Part: AnyPartitioning()} }

// RequireHash is shorthand for a range partitioning requirement
// [∅, cols] with no sort requirement.
func RequireHash(cols ColSet) Required {
	return Required{Part: HashPartitioning(cols)}
}

// RequireSerial demands a single-machine result.
func RequireSerial() Required { return Required{Part: SerialPartitioning()} }

// IsAny reports whether the requirement is vacuous.
func (r Required) IsAny() bool { return r.Part.IsAny() && r.Order.Empty() }

// Key returns a canonical string identifying the requirement; it keys
// the per-group winner ("best plan for this optimization context")
// cache inside the memo.
func (r Required) Key() string { return r.Part.Key() + "|" + r.Order.Key() }

// Equal reports structural equality.
func (r Required) Equal(s Required) bool {
	return r.Part.Equal(s.Part) && r.Order.Equal(s.Order)
}

// String renders the requirement for debugging and plan output.
func (r Required) String() string {
	if r.IsAny() {
		return "any"
	}
	var parts []string
	if !r.Part.IsAny() {
		parts = append(parts, r.Part.String())
	}
	if !r.Order.Empty() {
		parts = append(parts, "sort"+r.Order.String())
	}
	return strings.Join(parts, " ")
}

// Delivered is the set of physical properties a concrete plan
// actually provides. This is the paper's DlvdProp.
type Delivered struct {
	Part  Partitioning
	Order Ordering
}

// Satisfies reports whether the delivered properties meet the
// requirement (paper routine PropertySatisfied).
func (d Delivered) Satisfies(r Required) bool {
	return d.Part.Satisfies(r.Part) && d.Order.Satisfies(r.Order)
}

// String renders the delivered properties.
func (d Delivered) String() string {
	var parts []string
	parts = append(parts, d.Part.String())
	if !d.Order.Empty() {
		parts = append(parts, "sort"+d.Order.String())
	}
	return strings.Join(parts, " ")
}

// GroupID identifies a memo group. It is declared here (rather than in
// the memo package) so property pins can name shared groups without an
// import cycle; the memo package aliases it.
type GroupID int

// Pins maps shared memo groups to the property set phase 2 enforces on
// them. It is the PropForSharedGrps field of the paper's ExtReqProp.
// Pins values are treated as immutable; derive modified copies with
// With and Without.
type Pins map[GroupID]Required

// With returns a copy of p with group g pinned to req.
func (p Pins) With(g GroupID, req Required) Pins {
	out := make(Pins, len(p)+1)
	for k, v := range p {
		out[k] = v
	}
	out[g] = req
	return out
}

// Without returns a copy of p with the pin for g removed (used when
// the propagation reaches g itself: below the shared group the pin no
// longer applies).
func (p Pins) Without(g GroupID) Pins {
	if _, ok := p[g]; !ok {
		return p
	}
	out := make(Pins, len(p)-1)
	for k, v := range p {
		if k != g {
			out[k] = v
		}
	}
	return out
}

// Restrict keeps only the pins whose group the keep predicate accepts.
// The optimizer restricts pins to the shared groups actually reachable
// below each group so winner-cache keys stay maximally shareable
// across re-optimization rounds.
func (p Pins) Restrict(keep func(GroupID) bool) Pins {
	out := Pins{}
	for k, v := range p {
		if keep(k) {
			out[k] = v
		}
	}
	return out
}

// Get returns the pin for g, if any.
func (p Pins) Get(g GroupID) (Required, bool) {
	r, ok := p[g]
	return r, ok
}

// Key returns a canonical string over the pins, ordered by group.
func (p Pins) Key() string {
	if len(p) == 0 {
		return ""
	}
	ids := make([]int, 0, len(p))
	for g := range p {
		ids = append(ids, int(g))
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, g := range ids {
		fmt.Fprintf(&b, "@%d[%s]", g, p[GroupID(g)].Key())
	}
	return b.String()
}

// ExtRequired is the paper's ExtReqProp: a conventional requirement
// plus the properties to be enforced at shared groups on the way down.
type ExtRequired struct {
	Required
	ForShared Pins
}

// ExtAny is the vacuous extended requirement.
func ExtAny() ExtRequired { return ExtRequired{Required: AnyRequired()} }

// Ext wraps a plain requirement with no pins.
func Ext(r Required) ExtRequired { return ExtRequired{Required: r} }

// WithPins returns a copy of e carrying the given pins.
func (e ExtRequired) WithPins(p Pins) ExtRequired {
	e.ForShared = p
	return e
}

// Key returns the canonical winner-context key, combining the plain
// requirement with the pins.
func (e ExtRequired) Key() string {
	k := e.Required.Key()
	if pk := e.ForShared.Key(); pk != "" {
		k += "!" + pk
	}
	return k
}

// String renders the extended requirement for debugging.
func (e ExtRequired) String() string {
	s := e.Required.String()
	if len(e.ForShared) > 0 {
		s += " pins" + e.ForShared.Key()
	}
	return s
}
