package props

import "strings"

// SortCol is one column of a sort order.
type SortCol struct {
	Col  string
	Desc bool
}

// String renders the column as "A" or "A desc".
func (c SortCol) String() string {
	if c.Desc {
		return c.Col + " desc"
	}
	return c.Col
}

// Ordering is a (possibly empty) per-machine sort order, most
// significant column first. An empty Ordering as a requirement means
// "no order required"; as a delivered property it means "unordered".
type Ordering []SortCol

// NewOrdering builds an ascending ordering over cols.
func NewOrdering(cols ...string) Ordering {
	o := make(Ordering, len(cols))
	for i, c := range cols {
		o[i] = SortCol{Col: c}
	}
	return o
}

// Empty reports whether the ordering has no columns.
func (o Ordering) Empty() bool { return len(o) == 0 }

// Satisfies reports whether delivered order d meets required order r:
// r must be a prefix of d (rows sorted on (B,A,C) are sorted on (B,A)).
func (d Ordering) Satisfies(r Ordering) bool {
	if len(r) > len(d) {
		return false
	}
	for i := range r {
		if d[i] != r[i] {
			return false
		}
	}
	return true
}

// Columns returns the set of columns mentioned by the ordering.
func (o Ordering) Columns() ColSet {
	cols := make([]string, len(o))
	for i, c := range o {
		cols[i] = c.Col
	}
	return NewColSet(cols...)
}

// Prefix returns the first n columns of the ordering (or all of it if
// n exceeds its length).
func (o Ordering) Prefix(n int) Ordering {
	if n >= len(o) {
		return o
	}
	return o[:n]
}

// Equal reports whether two orderings are identical.
func (o Ordering) Equal(p Ordering) bool {
	if len(o) != len(p) {
		return false
	}
	for i := range o {
		if o[i] != p[i] {
			return false
		}
	}
	return true
}

// HasPrefixSet reports whether some prefix of o covers exactly the
// column set s (in any order). A stream aggregation grouping on s can
// consume rows ordered by o iff this holds: equal grouping keys are
// then adjacent.
func (o Ordering) HasPrefixSet(s ColSet) bool {
	if s.Empty() {
		return true
	}
	if len(o) < s.Len() {
		return false
	}
	return o.Prefix(s.Len()).Columns().Equal(s)
}

// Project keeps the longest prefix of o whose columns are all in kept;
// the remainder of the order is meaningless once an earlier column is
// projected away.
func (o Ordering) Project(kept ColSet) Ordering {
	for i, c := range o {
		if !kept.Contains(c.Col) {
			return o[:i]
		}
	}
	return o
}

// String renders the ordering as "(B,A,C)".
func (o Ordering) String() string {
	parts := make([]string, len(o))
	for i, c := range o {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Key returns a canonical string usable in winner-context map keys.
func (o Ordering) Key() string {
	parts := make([]string, len(o))
	for i, c := range o {
		parts[i] = c.String()
	}
	return strings.Join(parts, ";")
}

// OrderingsWithPrefixSet enumerates candidate orderings over the
// column set all whose prefix covers the set req. It is used to pick
// the sort orders worth requesting from a child: a stream aggregation
// on req wants its input clustered on req, and any order that leads
// with the req columns (in any permutation) and continues with the
// remaining columns works. To avoid factorial blow-up only rotations
// of the sorted column lists are generated, which is enough to cover
// every "leads with column X" choice that partitioning interacts with.
func OrderingsWithPrefixSet(all, req ColSet) []Ordering {
	if !req.SubsetOf(all) {
		return nil
	}
	lead := req.Cols()
	rest := all.Difference(req).Cols()
	if len(lead) == 0 {
		if len(rest) == 0 {
			return nil
		}
		return []Ordering{NewOrdering(rest...)}
	}
	var out []Ordering
	seen := map[string]bool{}
	for r := 0; r < len(lead); r++ {
		perm := make([]string, 0, len(lead)+len(rest))
		perm = append(perm, lead[r:]...)
		perm = append(perm, lead[:r]...)
		perm = append(perm, rest...)
		o := NewOrdering(perm...)
		if k := o.Key(); !seen[k] {
			seen[k] = true
			out = append(out, o)
		}
	}
	return out
}
