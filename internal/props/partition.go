package props

import "fmt"

// PartitionKind classifies how a row set is distributed across the
// machines of the cluster.
type PartitionKind int

const (
	// PartAny, as a requirement, accepts any distribution. It is not
	// a valid delivered kind.
	PartAny PartitionKind = iota
	// PartSerial places all rows on a single machine.
	PartSerial
	// PartHash distributes rows by a hash of Cols: rows that agree on
	// Cols land on the same machine.
	PartHash
	// PartRandom is a nondeterministic distribution (e.g. round-robin
	// or whatever the file system handed us). It colocates nothing.
	PartRandom
	// PartBroadcast replicates the full row set on every machine.
	// It satisfies no grouping requirement (aggregating a broadcast
	// set on every machine would duplicate results) and exists for
	// the inner side of broadcast joins.
	PartBroadcast
	// PartRange splits rows into ordered key ranges over SortCols:
	// partition i's keys all sort before partition i+1's, and rows
	// equal on the SortCols columns share a partition. Range
	// partitioning plus a matching local sort yields a globally
	// sorted data set — how SCOPE produces ordered output files in
	// parallel.
	PartRange
)

// String renders the kind for plan output.
func (k PartitionKind) String() string {
	switch k {
	case PartAny:
		return "any"
	case PartSerial:
		return "serial"
	case PartHash:
		return "hash"
	case PartRandom:
		return "random"
	case PartBroadcast:
		return "broadcast"
	case PartRange:
		return "range"
	default:
		return fmt.Sprintf("partkind(%d)", int(k))
	}
}

// Partitioning describes either a delivered distribution or a
// distribution requirement.
//
// As a requirement with Kind == PartHash, Cols is the upper end of the
// paper's range notation: Exact == false means the range [∅, Cols]
// ("partitioned on any non-empty subset of Cols"), while Exact == true
// means the degenerate range [Cols, Cols] ("partitioned on exactly
// Cols") — the form phase 2 pins at shared groups so every consumer
// sees the same physical distribution.
//
// As a delivered property, Cols is the exact hash key and Exact is
// ignored.
type Partitioning struct {
	Kind  PartitionKind
	Cols  ColSet
	Exact bool
	// SortCols is the ordered key of a PartRange distribution (the
	// ranges are over this tuple order); Cols mirrors its column set
	// so subset-based colocation reasoning applies uniformly.
	SortCols Ordering
}

// AnyPartitioning is the no-requirement partitioning.
func AnyPartitioning() Partitioning { return Partitioning{Kind: PartAny} }

// SerialPartitioning requires or describes a single-machine row set.
func SerialPartitioning() Partitioning { return Partitioning{Kind: PartSerial} }

// HashPartitioning describes data hash-distributed on exactly cols, or
// (as a requirement) the range [∅, cols].
func HashPartitioning(cols ColSet) Partitioning {
	return Partitioning{Kind: PartHash, Cols: cols}
}

// ExactHashPartitioning is the requirement "hash-partitioned on
// exactly cols" — the paper's [S, S] range.
func ExactHashPartitioning(cols ColSet) Partitioning {
	return Partitioning{Kind: PartHash, Cols: cols, Exact: true}
}

// RandomPartitioning describes a distribution with no colocation
// guarantee (delivered only).
func RandomPartitioning() Partitioning { return Partitioning{Kind: PartRandom} }

// BroadcastPartitioning describes a fully replicated row set.
func BroadcastPartitioning() Partitioning { return Partitioning{Kind: PartBroadcast} }

// RangePartitioning describes data split into ordered ranges over the
// given key order (or, as a requirement, demands exactly that).
func RangePartitioning(order Ordering) Partitioning {
	return Partitioning{Kind: PartRange, Cols: order.Columns(), SortCols: order}
}

// IsAny reports whether p imposes no requirement.
func (p Partitioning) IsAny() bool { return p.Kind == PartAny }

// Satisfies reports whether delivered distribution d meets requirement
// r, per the SCOPE lattice:
//
//   - PartAny is satisfied by everything except broadcast: replicated
//     data is only semantically valid where it was explicitly
//     requested (the inner of a broadcast join); letting it satisfy a
//     vacuous requirement would let a consumer that merges partitions
//     read every replica.
//   - PartSerial is satisfied only by serial.
//   - Non-exact PartHash on R is satisfied by hash on any non-empty
//     subset of R (rows equal on R are equal on the subset, hence
//     colocated), and degenerately by serial.
//   - Exact PartHash on R is satisfied only by hash on exactly R.
//   - PartBroadcast is satisfied only by broadcast.
func (d Partitioning) Satisfies(r Partitioning) bool {
	switch r.Kind {
	case PartAny:
		return d.Kind != PartBroadcast
	case PartSerial:
		return d.Kind == PartSerial
	case PartHash:
		if r.Exact {
			return d.Kind == PartHash && d.Cols.Equal(r.Cols)
		}
		if d.Kind == PartSerial {
			return true
		}
		// Hash on a subset colocates; so does a range distribution
		// whose key columns are a subset (equal key tuples share a
		// range partition).
		if d.Kind == PartRange {
			return !d.Cols.Empty() && d.Cols.SubsetOf(r.Cols)
		}
		return d.Kind == PartHash && !d.Cols.Empty() && d.Cols.SubsetOf(r.Cols)
	case PartBroadcast:
		return d.Kind == PartBroadcast
	case PartRange:
		// A range requirement asks for partitions ordered by its key
		// prefix: finer range keys still deliver it; serial data does
		// trivially (one partition).
		if d.Kind == PartSerial {
			return true
		}
		return d.Kind == PartRange && d.SortCols.Satisfies(r.SortCols)
	default:
		return false
	}
}

// Project rewrites a delivered partitioning through a projection that
// keeps only the columns in kept (with possible renames applied by the
// caller beforehand). If any hash or range key column is projected
// away the colocation guarantee degrades to random.
func (d Partitioning) Project(kept ColSet) Partitioning {
	switch d.Kind {
	case PartHash:
		if d.Cols.SubsetOf(kept) {
			return d
		}
		return RandomPartitioning()
	case PartRange:
		if d.Cols.SubsetOf(kept) {
			return d
		}
		// A prefix of the range key survives: partitions stay
		// ordered by the surviving prefix.
		if pfx := d.SortCols.Project(kept); !pfx.Empty() {
			return RangePartitioning(pfx)
		}
		return RandomPartitioning()
	default:
		return d
	}
}

// String renders the partitioning for plan output, e.g. "hash{B}",
// "hash[∅,{A,B,C}]" for a subset requirement, "range(B,A)", or
// "serial".
func (p Partitioning) String() string {
	switch p.Kind {
	case PartHash:
		if p.Exact {
			return "hash" + p.Cols.String()
		}
		return "hash[∅," + p.Cols.String() + "]"
	case PartRange:
		return "range" + p.SortCols.String()
	default:
		return p.Kind.String()
	}
}

// Key returns a canonical string usable in winner-context map keys.
func (p Partitioning) Key() string {
	switch p.Kind {
	case PartHash:
		if p.Exact {
			return "h=" + p.Cols.Key()
		}
		return "h<=" + p.Cols.Key()
	case PartRange:
		return "r=" + p.SortCols.Key()
	default:
		return p.Kind.String()
	}
}

// Equal reports structural equality of two partitionings.
func (p Partitioning) Equal(q Partitioning) bool {
	return p.Kind == q.Kind && p.Exact == q.Exact && p.Cols.Equal(q.Cols) &&
		p.SortCols.Equal(q.SortCols)
}
