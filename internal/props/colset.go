// Package props implements the physical-property machinery of a
// SCOPE-style distributed query optimizer: data partitioning across a
// shared-nothing cluster, sort orders, and the required/delivered
// property satisfaction rules described in "Incorporating Partitioning
// and Parallel Plans into the SCOPE Optimizer" (ICDE 2010) and used by
// "Exploiting Common Subexpressions for Cloud Query Processing"
// (ICDE 2012).
//
// The central subtlety reproduced here is the partitioning lattice: a
// data set hash-partitioned on a column set S is also partitioned on
// every superset of S (all rows agreeing on {A,B,C} necessarily agree
// on {B}, hence live on the same machine). Partitioning requirements
// are therefore ranges [lo, hi]; the common request "partitioned on
// {A,B,C} or any subset thereof" is the range [∅, {A,B,C}], and the
// exact scheme enforced at a shared group in phase 2 is the degenerate
// range [S, S].
package props

import (
	"sort"
	"strings"
)

// ColSet is an immutable, deduplicated, sorted set of column names.
// The zero value is the empty set. All operations return new sets and
// never mutate their receivers, so ColSets may be freely shared.
type ColSet struct {
	cols []string
}

// NewColSet builds a ColSet from the given column names, removing
// duplicates.
func NewColSet(cols ...string) ColSet {
	if len(cols) == 0 {
		return ColSet{}
	}
	cp := make([]string, len(cols))
	copy(cp, cols)
	sort.Strings(cp)
	out := cp[:1]
	for _, c := range cp[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return ColSet{cols: out}
}

// Len reports the number of columns in the set.
func (s ColSet) Len() int { return len(s.cols) }

// Empty reports whether the set has no columns.
func (s ColSet) Empty() bool { return len(s.cols) == 0 }

// Cols returns the columns in sorted order. The returned slice must
// not be modified.
func (s ColSet) Cols() []string { return s.cols }

// Contains reports whether col is a member of the set.
func (s ColSet) Contains(col string) bool {
	i := sort.SearchStrings(s.cols, col)
	return i < len(s.cols) && s.cols[i] == col
}

// SubsetOf reports whether every column of s is also in t.
func (s ColSet) SubsetOf(t ColSet) bool {
	if len(s.cols) > len(t.cols) {
		return false
	}
	i, j := 0, 0
	for i < len(s.cols) && j < len(t.cols) {
		switch {
		case s.cols[i] == t.cols[j]:
			i++
			j++
		case s.cols[i] > t.cols[j]:
			j++
		default:
			return false
		}
	}
	return i == len(s.cols)
}

// Equal reports whether s and t contain exactly the same columns.
func (s ColSet) Equal(t ColSet) bool {
	if len(s.cols) != len(t.cols) {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != t.cols[i] {
			return false
		}
	}
	return true
}

// Union returns the set of columns in s or t.
func (s ColSet) Union(t ColSet) ColSet {
	return NewColSet(append(append([]string{}, s.cols...), t.cols...)...)
}

// Intersect returns the set of columns in both s and t.
func (s ColSet) Intersect(t ColSet) ColSet {
	var out []string
	i, j := 0, 0
	for i < len(s.cols) && j < len(t.cols) {
		switch {
		case s.cols[i] == t.cols[j]:
			out = append(out, s.cols[i])
			i++
			j++
		case s.cols[i] < t.cols[j]:
			i++
		default:
			j++
		}
	}
	return ColSet{cols: out}
}

// Difference returns the columns of s that are not in t.
func (s ColSet) Difference(t ColSet) ColSet {
	var out []string
	for _, c := range s.cols {
		if !t.Contains(c) {
			out = append(out, c)
		}
	}
	return ColSet{cols: out}
}

// Add returns a new set with col added.
func (s ColSet) Add(col string) ColSet {
	if s.Contains(col) {
		return s
	}
	return NewColSet(append([]string{col}, s.cols...)...)
}

// Intersects reports whether s and t share at least one column.
func (s ColSet) Intersects(t ColSet) bool {
	i, j := 0, 0
	for i < len(s.cols) && j < len(t.cols) {
		switch {
		case s.cols[i] == t.cols[j]:
			return true
		case s.cols[i] < t.cols[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// String renders the set as "{a,b,c}".
func (s ColSet) String() string {
	return "{" + strings.Join(s.cols, ",") + "}"
}

// Key returns a canonical string usable as a map key.
func (s ColSet) Key() string { return strings.Join(s.cols, ",") }

// Subsets enumerates the non-empty subsets of s, smallest first, up to
// limit subsets (limit <= 0 means no limit). This is the expansion the
// optimizer applies when recording a range partitioning requirement
// [∅, S] into the history of a shared group (paper Sec. V): each
// subset is a concrete scheme that satisfies the range. For wide sets
// the enumeration is capped by limit; singletons and the full set are
// always produced first so the most useful schemes survive the cap.
func (s ColSet) Subsets(limit int) []ColSet {
	n := len(s.cols)
	if n == 0 {
		return nil
	}
	var out []ColSet
	emit := func(cs ColSet) bool {
		out = append(out, cs)
		return limit > 0 && len(out) >= limit
	}
	// Singletons first, then the full set, then the rest by size.
	for _, c := range s.cols {
		if emit(NewColSet(c)) {
			return out
		}
	}
	if n > 1 {
		if emit(s) {
			return out
		}
	}
	if n > 20 {
		// Guard against exponential blow-up: with more than 20
		// columns only singletons and the full set are enumerated.
		return out
	}
	for size := 2; size < n; size++ {
		idx := make([]int, size)
		for i := range idx {
			idx[i] = i
		}
		for {
			cols := make([]string, size)
			for i, k := range idx {
				cols[i] = s.cols[k]
			}
			if emit(ColSet{cols: cols}) {
				return out
			}
			// Next combination.
			i := size - 1
			for i >= 0 && idx[i] == n-size+i {
				i--
			}
			if i < 0 {
				break
			}
			idx[i]++
			for j := i + 1; j < size; j++ {
				idx[j] = idx[j-1] + 1
			}
		}
	}
	return out
}
