package props

import "testing"

func TestRequiredKeyDistinguishes(t *testing.T) {
	reqs := []Required{
		AnyRequired(),
		RequireHash(NewColSet("A", "B")),
		{Part: ExactHashPartitioning(NewColSet("A", "B"))},
		{Part: HashPartitioning(NewColSet("A", "B")), Order: NewOrdering("A", "B")},
		{Part: HashPartitioning(NewColSet("A", "B")), Order: NewOrdering("B", "A")},
		RequireSerial(),
	}
	seen := map[string]Required{}
	for _, r := range reqs {
		k := r.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("key collision: %v and %v both map to %q", prev, r, k)
		}
		seen[k] = r
	}
}

func TestRequiredEqual(t *testing.T) {
	a := Required{Part: HashPartitioning(NewColSet("A")), Order: NewOrdering("A")}
	b := Required{Part: HashPartitioning(NewColSet("A")), Order: NewOrdering("A")}
	if !a.Equal(b) {
		t.Error("identical requirements should be Equal")
	}
	c := a
	c.Part.Exact = true
	if a.Equal(c) {
		t.Error("exactness must participate in equality")
	}
}

func TestPinsImmutability(t *testing.T) {
	base := Pins{}
	p1 := base.With(5, RequireHash(NewColSet("B")))
	if len(base) != 0 {
		t.Fatal("With mutated the receiver")
	}
	p2 := p1.With(6, RequireSerial())
	if len(p1) != 1 {
		t.Fatal("With mutated p1")
	}
	p3 := p2.Without(5)
	if len(p2) != 2 || len(p3) != 1 {
		t.Fatalf("Without wrong sizes: p2=%d p3=%d", len(p2), len(p3))
	}
	if _, ok := p3.Get(5); ok {
		t.Error("pin 5 should be gone")
	}
	if r, ok := p3.Get(6); !ok || !r.Equal(RequireSerial()) {
		t.Error("pin 6 should survive")
	}
	if same := p3.Without(99); len(same) != len(p3) {
		t.Error("Without missing key should be a no-op copy")
	}
}

func TestPinsKeyCanonical(t *testing.T) {
	a := Pins{}.With(2, RequireHash(NewColSet("B"))).With(1, RequireSerial())
	b := Pins{}.With(1, RequireSerial()).With(2, RequireHash(NewColSet("B")))
	if a.Key() != b.Key() {
		t.Errorf("pin key not canonical: %q vs %q", a.Key(), b.Key())
	}
	if a.Key() == "" {
		t.Error("non-empty pins must have non-empty key")
	}
	if (Pins{}).Key() != "" {
		t.Error("empty pins must have empty key")
	}
}

func TestPinsRestrict(t *testing.T) {
	p := Pins{}.With(1, RequireSerial()).With(2, RequireSerial()).With(3, RequireSerial())
	got := p.Restrict(func(g GroupID) bool { return g != 2 })
	if len(got) != 2 {
		t.Fatalf("restricted to %d pins, want 2", len(got))
	}
	if _, ok := got.Get(2); ok {
		t.Error("pin 2 should be filtered out")
	}
}

func TestExtRequiredKey(t *testing.T) {
	r := RequireHash(NewColSet("A"))
	plain := Ext(r)
	pinned := Ext(r).WithPins(Pins{}.With(7, RequireHash(NewColSet("B"))))
	if plain.Key() == pinned.Key() {
		t.Error("pins must change the winner-context key")
	}
	unpinned := pinned.WithPins(Pins{})
	if unpinned.Key() != plain.Key() {
		t.Errorf("empty pins should key like plain: %q vs %q", unpinned.Key(), plain.Key())
	}
}

func TestStringRendering(t *testing.T) {
	r := Required{
		Part:  HashPartitioning(NewColSet("A", "B", "C")),
		Order: NewOrdering("B", "A"),
	}
	if got := r.String(); got != "hash[∅,{A,B,C}] sort(B,A)" {
		t.Errorf("Required.String() = %q", got)
	}
	e := Required{Part: ExactHashPartitioning(NewColSet("B"))}
	if got := e.String(); got != "hash{B}" {
		t.Errorf("exact Required.String() = %q", got)
	}
	if got := AnyRequired().String(); got != "any" {
		t.Errorf("any Required.String() = %q", got)
	}
	d := Delivered{Part: SerialPartitioning(), Order: NewOrdering("A")}
	if got := d.String(); got != "serial sort(A)" {
		t.Errorf("Delivered.String() = %q", got)
	}
}
