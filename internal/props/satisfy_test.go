package props

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestPartitionSubsetSatisfaction reproduces Fig. 1(b) of the paper:
// data hash-partitioned on {B} is also partitioned on {A,B,C}, so a
// requirement [∅,{A,B,C}] is satisfied by hash{B}, hash{A,B,C}, and
// every other non-empty subset, but not by hash{D} or random data.
func TestPartitionSubsetSatisfaction(t *testing.T) {
	req := HashPartitioning(NewColSet("A", "B", "C"))
	sat := []Partitioning{
		HashPartitioning(NewColSet("B")),
		HashPartitioning(NewColSet("A", "B")),
		HashPartitioning(NewColSet("B", "C")),
		HashPartitioning(NewColSet("A", "B", "C")),
		SerialPartitioning(),
	}
	for _, d := range sat {
		if !d.Satisfies(req) {
			t.Errorf("%v should satisfy %v", d, req)
		}
	}
	unsat := []Partitioning{
		HashPartitioning(NewColSet("D")),
		HashPartitioning(NewColSet("A", "D")),
		HashPartitioning(NewColSet()),
		RandomPartitioning(),
		BroadcastPartitioning(),
	}
	for _, d := range unsat {
		if d.Satisfies(req) {
			t.Errorf("%v should NOT satisfy %v", d, req)
		}
	}
}

func TestExactPartitionSatisfaction(t *testing.T) {
	// Phase 2 pins exact schemes: only the exact hash key satisfies.
	req := ExactHashPartitioning(NewColSet("B"))
	if !HashPartitioning(NewColSet("B")).Satisfies(req) {
		t.Error("hash{B} should satisfy exact hash{B}")
	}
	for _, d := range []Partitioning{
		HashPartitioning(NewColSet("A", "B")),
		SerialPartitioning(),
		RandomPartitioning(),
	} {
		if d.Satisfies(req) {
			t.Errorf("%v should NOT satisfy exact hash{B}", d)
		}
	}
}

func TestAnyAndSerialRequirements(t *testing.T) {
	for _, d := range []Partitioning{
		SerialPartitioning(), RandomPartitioning(),
		HashPartitioning(NewColSet("A")),
	} {
		if !d.Satisfies(AnyPartitioning()) {
			t.Errorf("%v should satisfy any", d)
		}
	}
	// Broadcast data is only valid where explicitly requested: a
	// consumer with no requirement merging replicated partitions
	// would read every copy.
	if BroadcastPartitioning().Satisfies(AnyPartitioning()) {
		t.Error("broadcast must NOT satisfy any")
	}
	if !BroadcastPartitioning().Satisfies(BroadcastPartitioning()) {
		t.Error("broadcast should satisfy an explicit broadcast requirement")
	}
	if !SerialPartitioning().Satisfies(SerialPartitioning()) {
		t.Error("serial should satisfy serial")
	}
	if HashPartitioning(NewColSet("A")).Satisfies(SerialPartitioning()) {
		t.Error("hash should not satisfy serial")
	}
}

func TestPartitionProject(t *testing.T) {
	d := HashPartitioning(NewColSet("A", "B"))
	if got := d.Project(NewColSet("A", "B", "C")); !got.Equal(d) {
		t.Errorf("projection keeping keys changed partitioning: %v", got)
	}
	if got := d.Project(NewColSet("A")); got.Kind != PartRandom {
		t.Errorf("projecting away a hash key should degrade to random, got %v", got)
	}
	s := SerialPartitioning()
	if got := s.Project(NewColSet()); !got.Equal(s) {
		t.Errorf("serial should survive any projection, got %v", got)
	}
}

func TestOrderingSatisfaction(t *testing.T) {
	bac := NewOrdering("B", "A", "C")
	cases := []struct {
		req  Ordering
		want bool
	}{
		{NewOrdering(), true},
		{NewOrdering("B"), true},
		{NewOrdering("B", "A"), true},
		{NewOrdering("B", "A", "C"), true},
		{NewOrdering("A", "B"), false},
		{NewOrdering("B", "A", "C", "D"), false},
		{NewOrdering("C", "B"), false},
	}
	for _, c := range cases {
		if got := bac.Satisfies(c.req); got != c.want {
			t.Errorf("(B,A,C).Satisfies(%v) = %v, want %v", c.req, got, c.want)
		}
	}
	// Descending columns must match direction exactly.
	d := Ordering{{Col: "B", Desc: true}, {Col: "A"}}
	if d.Satisfies(NewOrdering("B")) {
		t.Error("B desc should not satisfy B asc")
	}
	if !d.Satisfies(Ordering{{Col: "B", Desc: true}}) {
		t.Error("B desc should satisfy B desc")
	}
}

func TestOrderingHasPrefixSet(t *testing.T) {
	// Fig. 8(b): the shared result is sorted (B,A,C); the consumer
	// grouping on {A,B} can stream directly, the one on {B,C} cannot.
	o := NewOrdering("B", "A", "C")
	if !o.HasPrefixSet(NewColSet("A", "B")) {
		t.Error("(B,A,C) should cluster {A,B}")
	}
	if !o.HasPrefixSet(NewColSet("B")) {
		t.Error("(B,A,C) should cluster {B}")
	}
	if !o.HasPrefixSet(NewColSet("A", "B", "C")) {
		t.Error("(B,A,C) should cluster {A,B,C}")
	}
	if o.HasPrefixSet(NewColSet("B", "C")) {
		t.Error("(B,A,C) should NOT cluster {B,C}")
	}
	if o.HasPrefixSet(NewColSet("A")) {
		t.Error("(B,A,C) should NOT cluster {A}")
	}
	if !o.HasPrefixSet(NewColSet()) {
		t.Error("empty set is always clustered")
	}
}

func TestOrderingProject(t *testing.T) {
	o := NewOrdering("B", "A", "C")
	if got := o.Project(NewColSet("A", "B")); !got.Equal(NewOrdering("B", "A")) {
		t.Errorf("Project = %v", got)
	}
	if got := o.Project(NewColSet("A", "C")); !got.Equal(NewOrdering()) {
		t.Errorf("Project dropping lead col = %v", got)
	}
	if got := o.Project(NewColSet("A", "B", "C")); !got.Equal(o) {
		t.Errorf("Project keeping all = %v", got)
	}
}

func TestOrderingsWithPrefixSet(t *testing.T) {
	all := NewColSet("A", "B", "C")
	req := NewColSet("A", "B")
	got := OrderingsWithPrefixSet(all, req)
	if len(got) == 0 {
		t.Fatal("no candidate orderings")
	}
	for _, o := range got {
		if !o.HasPrefixSet(req) {
			t.Errorf("candidate %v does not cluster %v", o, req)
		}
		if !o.Columns().Equal(all) {
			t.Errorf("candidate %v does not cover %v", o, all)
		}
	}
	// Both lead columns should be represented.
	leads := map[string]bool{}
	for _, o := range got {
		leads[o[0].Col] = true
	}
	if !leads["A"] || !leads["B"] {
		t.Errorf("rotation candidates missing a lead: %v", got)
	}
	if OrderingsWithPrefixSet(NewColSet("A"), NewColSet("B")) != nil {
		t.Error("non-subset request should yield nil")
	}
}

func TestDeliveredSatisfiesRequired(t *testing.T) {
	d := Delivered{
		Part:  HashPartitioning(NewColSet("B")),
		Order: NewOrdering("B", "A", "C"),
	}
	ok := []Required{
		AnyRequired(),
		RequireHash(NewColSet("A", "B", "C")),
		{Part: HashPartitioning(NewColSet("B", "C")), Order: NewOrdering("B", "A")},
		{Part: ExactHashPartitioning(NewColSet("B")), Order: NewOrdering("B")},
	}
	for _, r := range ok {
		if !d.Satisfies(r) {
			t.Errorf("%v should satisfy %v", d, r)
		}
	}
	bad := []Required{
		{Part: HashPartitioning(NewColSet("A", "C"))},
		{Part: AnyPartitioning(), Order: NewOrdering("C", "B")},
		RequireSerial(),
	}
	for _, r := range bad {
		if d.Satisfies(r) {
			t.Errorf("%v should NOT satisfy %v", d, r)
		}
	}
}

func randPartitioning(r *rand.Rand) Partitioning {
	switch r.Intn(5) {
	case 0:
		return AnyPartitioning()
	case 1:
		return SerialPartitioning()
	case 2:
		return RandomPartitioning()
	case 3:
		return BroadcastPartitioning()
	default:
		cs := randColSet(r)
		if cs.Empty() {
			cs = NewColSet("A")
		}
		p := HashPartitioning(cs)
		p.Exact = r.Intn(2) == 0
		return p
	}
}

// TestPartitionLatticeProperties checks algebraic facts the optimizer
// relies on:
//  1. widening a non-exact hash requirement never loses satisfaction;
//  2. delivered hash on S satisfies every requirement whose column set
//     contains S;
//  3. an exact requirement is strictly stronger than its range form.
func TestPartitionLatticeProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 1000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(randPartitioning(r))
			}
		},
	}
	if err := quick.Check(func(d, r Partitioning) bool {
		if r.Kind != PartHash || r.Exact {
			return true
		}
		wide := HashPartitioning(r.Cols.Add("Z"))
		if d.Satisfies(r) && !d.Satisfies(wide) {
			return false
		}
		return true
	}, cfg); err != nil {
		t.Errorf("widening: %v", err)
	}
	if err := quick.Check(func(d, r Partitioning) bool {
		if d.Kind != PartHash || d.Cols.Empty() || r.Kind != PartHash || r.Exact {
			return true
		}
		return !d.Cols.SubsetOf(r.Cols) || d.Satisfies(r)
	}, cfg); err != nil {
		t.Errorf("subset rule: %v", err)
	}
	if err := quick.Check(func(d, r Partitioning) bool {
		if r.Kind != PartHash {
			return true
		}
		exact := r
		exact.Exact = true
		loose := r
		loose.Exact = false
		if d.Satisfies(exact) && !d.Satisfies(loose) {
			return false
		}
		return true
	}, cfg); err != nil {
		t.Errorf("exact stronger: %v", err)
	}
}

func TestRangePartitioningSatisfaction(t *testing.T) {
	rBA := RangePartitioning(NewOrdering("B", "A"))
	// Range keys within the required set colocate like a hash subset.
	if !rBA.Satisfies(HashPartitioning(NewColSet("A", "B", "C"))) {
		t.Error("range(B,A) should satisfy hash[∅,{A,B,C}]")
	}
	if rBA.Satisfies(HashPartitioning(NewColSet("B", "C"))) {
		t.Error("range(B,A) must NOT satisfy hash[∅,{B,C}] (A outside)")
	}
	if rBA.Satisfies(ExactHashPartitioning(NewColSet("A", "B"))) {
		t.Error("range must not satisfy an exact hash requirement")
	}
	// Range requirements: finer keys satisfy a prefix requirement.
	if !rBA.Satisfies(RangePartitioning(NewOrdering("B"))) {
		t.Error("range(B,A) should satisfy range(B)")
	}
	if RangePartitioning(NewOrdering("B")).Satisfies(RangePartitioning(NewOrdering("B", "A"))) {
		t.Error("range(B) must not satisfy range(B,A)")
	}
	if !SerialPartitioning().Satisfies(RangePartitioning(NewOrdering("B"))) {
		t.Error("serial trivially satisfies any range requirement")
	}
	if HashPartitioning(NewColSet("B")).Satisfies(RangePartitioning(NewOrdering("B"))) {
		t.Error("hash must not satisfy a range requirement")
	}
	// Direction matters.
	desc := RangePartitioning(Ordering{{Col: "B", Desc: true}})
	if desc.Satisfies(RangePartitioning(NewOrdering("B"))) {
		t.Error("descending range must not satisfy ascending requirement")
	}
	// Any requirement: fine.
	if !rBA.Satisfies(AnyPartitioning()) {
		t.Error("range satisfies any")
	}
}

func TestRangePartitioningProject(t *testing.T) {
	r := RangePartitioning(NewOrdering("B", "A"))
	if got := r.Project(NewColSet("A", "B", "C")); !got.Equal(r) {
		t.Errorf("full projection changed range: %v", got)
	}
	// Dropping the second key keeps the (B) prefix.
	got := r.Project(NewColSet("B", "C"))
	if got.Kind != PartRange || !got.SortCols.Equal(NewOrdering("B")) {
		t.Errorf("prefix projection = %v", got)
	}
	// Dropping the lead key degrades to random.
	if got := r.Project(NewColSet("A")); got.Kind != PartRandom {
		t.Errorf("lead-drop projection = %v", got)
	}
}
