package props

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewColSetDedupAndSort(t *testing.T) {
	s := NewColSet("B", "A", "B", "C", "A")
	if got, want := s.Key(), "A,B,C"; got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
	if s.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", s.Len())
	}
}

func TestColSetEmpty(t *testing.T) {
	var zero ColSet
	if !zero.Empty() {
		t.Error("zero ColSet should be empty")
	}
	if !zero.SubsetOf(NewColSet("A")) {
		t.Error("empty set should be subset of everything")
	}
	if !zero.Equal(NewColSet()) {
		t.Error("zero value should equal NewColSet()")
	}
	if zero.String() != "{}" {
		t.Errorf("String() = %q", zero.String())
	}
}

func TestColSetContains(t *testing.T) {
	s := NewColSet("A", "C")
	for col, want := range map[string]bool{"A": true, "B": false, "C": true, "": false} {
		if got := s.Contains(col); got != want {
			t.Errorf("Contains(%q) = %v, want %v", col, got, want)
		}
	}
}

func TestColSetSubsetOf(t *testing.T) {
	cases := []struct {
		s, t ColSet
		want bool
	}{
		{NewColSet("B"), NewColSet("A", "B", "C"), true},
		{NewColSet("A", "B"), NewColSet("A", "B", "C"), true},
		{NewColSet("A", "B", "C"), NewColSet("A", "B", "C"), true},
		{NewColSet("A", "D"), NewColSet("A", "B", "C"), false},
		{NewColSet("A", "B", "C"), NewColSet("A", "B"), false},
	}
	for _, c := range cases {
		if got := c.s.SubsetOf(c.t); got != c.want {
			t.Errorf("%v.SubsetOf(%v) = %v, want %v", c.s, c.t, got, c.want)
		}
	}
}

func TestColSetOps(t *testing.T) {
	a := NewColSet("A", "B")
	b := NewColSet("B", "C")
	if got := a.Union(b); !got.Equal(NewColSet("A", "B", "C")) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(NewColSet("B")) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Difference(b); !got.Equal(NewColSet("A")) {
		t.Errorf("Difference = %v", got)
	}
	if !a.Intersects(b) {
		t.Error("a should intersect b")
	}
	if a.Intersects(NewColSet("D")) {
		t.Error("a should not intersect {D}")
	}
	if got := a.Add("C"); !got.Equal(NewColSet("A", "B", "C")) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Add("A"); !got.Equal(a) {
		t.Errorf("Add existing = %v", got)
	}
}

func TestSubsetsThreeCols(t *testing.T) {
	// The paper's Sec. V example: requirement [∅,{A,B,C}] expands
	// into the 7 non-empty subsets.
	s := NewColSet("A", "B", "C")
	subs := s.Subsets(0)
	if len(subs) != 7 {
		t.Fatalf("got %d subsets, want 7: %v", len(subs), subs)
	}
	want := map[string]bool{
		"A": true, "B": true, "C": true,
		"A,B": true, "A,C": true, "B,C": true, "A,B,C": true,
	}
	for _, sub := range subs {
		if !want[sub.Key()] {
			t.Errorf("unexpected subset %v", sub)
		}
		delete(want, sub.Key())
	}
	if len(want) != 0 {
		t.Errorf("missing subsets: %v", want)
	}
}

func TestSubsetsOrderAndCap(t *testing.T) {
	s := NewColSet("A", "B", "C", "D")
	subs := s.Subsets(5)
	if len(subs) != 5 {
		t.Fatalf("got %d subsets, want capped 5", len(subs))
	}
	// Singletons first, full set next.
	for i, want := range []string{"A", "B", "C", "D", "A,B,C,D"} {
		if subs[i].Key() != want {
			t.Errorf("subs[%d] = %v, want %s", i, subs[i], want)
		}
	}
}

func TestSubsetsSingleton(t *testing.T) {
	subs := NewColSet("A").Subsets(0)
	if len(subs) != 1 || subs[0].Key() != "A" {
		t.Fatalf("subsets of singleton = %v", subs)
	}
	if got := NewColSet().Subsets(0); got != nil {
		t.Fatalf("subsets of empty = %v, want nil", got)
	}
}

// randColSet draws a set over a small alphabet so subset relations
// occur often.
func randColSet(r *rand.Rand) ColSet {
	alphabet := []string{"A", "B", "C", "D", "E"}
	var cols []string
	for _, c := range alphabet {
		if r.Intn(2) == 0 {
			cols = append(cols, c)
		}
	}
	return NewColSet(cols...)
}

func TestColSetProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(randColSet(r))
			}
		},
	}
	// Union is an upper bound, intersection a lower bound.
	if err := quick.Check(func(a, b ColSet) bool {
		u := a.Union(b)
		i := a.Intersect(b)
		return a.SubsetOf(u) && b.SubsetOf(u) &&
			i.SubsetOf(a) && i.SubsetOf(b) &&
			a.Difference(b).Intersect(b).Empty()
	}, cfg); err != nil {
		t.Error(err)
	}
	// Subset relation is antisymmetric and transitive via union.
	if err := quick.Check(func(a, b ColSet) bool {
		if a.SubsetOf(b) && b.SubsetOf(a) {
			return a.Equal(b)
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
	// Every enumerated subset is a non-empty subset, and they are
	// pairwise distinct.
	if err := quick.Check(func(a ColSet) bool {
		seen := map[string]bool{}
		for _, s := range a.Subsets(0) {
			if s.Empty() || !s.SubsetOf(a) || seen[s.Key()] {
				return false
			}
			seen[s.Key()] = true
		}
		if a.Len() > 0 && a.Len() <= 5 {
			return len(seen) == (1<<a.Len())-1
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}
