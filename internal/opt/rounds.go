package opt

import (
	"math"
	"sync"

	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/props"
	"repro/internal/rules"
)

// This file is the phase-2 round engine: branch-and-bound pruning,
// winner-cache reuse across rounds, and concurrent evaluation of the
// independent rounds within one component batch.
//
// Determinism: a round's result depends only on the frozen memo state
// at the start of its batch, the round's pin combination, and the
// batch's pruning bound — never on scheduling. Every round (even at
// Workers=1) runs in a fresh clone whose winner writes are isolated in
// an overlay and merged back in combo order, so plans, costs, traces,
// and task counts are bit-identical at any worker count.

// roundResult is the outcome of one evaluated round.
type roundResult struct {
	win    *memo.Winner
	cost   float64
	pruned bool
	// skipped marks a round abandoned before evaluation because the
	// optimization budget had expired.
	skipped bool
	// worker is the clone that evaluated the round; its overlay,
	// traces, and counters are absorbed in combo order.
	worker *Optimizer
}

// evalRound evaluates one phase-2 round in a fresh worker clone: the
// sub-DAG at g is re-optimized with the combination's property sets
// pinned, and the resulting plan is DAG-costed against the incumbent
// bound. A partial total above the bound aborts the round (Pruned,
// +Inf): the aborted round provably costs more than a completed one,
// so the chosen plan is identical with pruning on or off.
func (o *Optimizer) evalRound(g *memo.Group, ereq props.ExtRequired, pins props.Pins, bound float64, lcaSpan obs.Span) roundResult {
	if o.expired() {
		return roundResult{skipped: true}
	}
	var sp obs.Span
	if o.tr.Enabled() {
		sp = o.tr.Start(lcaSpan, "opt", "round", pins.Key())
	}
	w := o.clone()
	merged := ereq.ForShared
	for s, r := range pins {
		merged = merged.With(s, r)
	}
	win := w.logPhysOpt(g, ereq.WithPins(merged), 2)
	if win.Plan == nil {
		sp.Arg("cost", obs.CostArg(math.Inf(1)))
		sp.End()
		return roundResult{win: win, cost: math.Inf(1), worker: w}
	}
	c, pruned := w.dagCostBounded(win.Plan, bound)
	if o.tr.Enabled() {
		sp.Arg("cost", obs.CostArg(c))
		if pruned {
			sp.Arg("pruned", 1)
		}
		sp.End()
	}
	return roundResult{win: win, cost: c, pruned: pruned, worker: w}
}

// clone returns a round worker sharing this optimizer's frozen state
// (memo, exploration, fingerprints, deadline) with private winner
// overlay, traces, counters, and DAG-cost memo.
func (o *Optimizer) clone() *Optimizer {
	return &Optimizer{
		m:           o.m,
		model:       o.model,
		opts:        o.opts,
		explored:    o.explored,
		exploredAll: o.exploredAll,
		deadline:    o.deadline,
		fps:         o.fps,
		sigs:        o.sigs,
		overlay:     map[memo.GroupID]map[string]*memo.Winner{},
		parent:      o,
		dagMemo:     map[*plan.Node]float64{},
		tr:          o.tr,
		p2span:      o.p2span,
	}
}

// workers returns the round-evaluation pool width. Nested LCAs inside
// a round worker evaluate serially: the outermost batch already owns
// the pool, and nesting would multiply goroutines without adding
// deterministic parallelism.
func (o *Optimizer) workers() int {
	if o.parent != nil {
		return 1
	}
	return o.opts.Workers
}

// winner resolves a cached winner through the overlay chain (this
// worker, then its ancestors) down to the memo itself.
func (o *Optimizer) winner(g *memo.Group, key string) (*memo.Winner, bool) {
	for p := o; p != nil; p = p.parent {
		if m := p.overlay[g.ID]; m != nil {
			if w, ok := m[key]; ok {
				return w, true
			}
		}
	}
	return g.Winner(key)
}

// setWinner caches a winner in this worker's overlay, or directly in
// the memo for the root optimizer.
func (o *Optimizer) setWinner(g *memo.Group, key string, w *memo.Winner) {
	if o.overlay != nil {
		om := o.overlay[g.ID]
		if om == nil {
			om = map[string]*memo.Winner{}
			o.overlay[g.ID] = om
		}
		om[key] = w
		return
	}
	g.SetWinner(key, w)
}

// setWinnerIfAbsent is setWinner with first-write-wins semantics, used
// when absorbing sibling overlays: a key computed by several rounds
// keeps the value from the round earliest in combo order.
func (o *Optimizer) setWinnerIfAbsent(gid memo.GroupID, key string, w *memo.Winner) {
	if o.overlay != nil {
		om := o.overlay[gid]
		if om == nil {
			om = map[string]*memo.Winner{}
			o.overlay[gid] = om
		}
		if _, ok := om[key]; !ok {
			om[key] = w
		}
		return
	}
	o.m.Group(gid).SetWinnerIfAbsent(key, w)
}

// reuseWinners reports whether cached winners may answer lookups in
// the given phase. The DisableWinnerReuse ablation turns off phase-2
// reads only — phase 1 must stay cached because its winners double as
// phase 2's unpinned baseline — and writes always happen, so the final
// plan's spool identities stay consistent.
func (o *Optimizer) reuseWinners(phase int) bool {
	return phase == 1 || !o.opts.DisableWinnerReuse
}

// absorb merges a finished round worker back into o in combo order:
// overlay winners (first write wins), nested round traces, search
// counters, and memoized DAG costs.
func (o *Optimizer) absorb(w *Optimizer) {
	for gid, m := range w.overlay {
		for key, win := range m {
			o.setWinnerIfAbsent(gid, key, win)
		}
	}
	o.rounds = append(o.rounds, w.rounds...)
	o.stats.Rounds += w.stats.Rounds
	o.stats.RoundsPruned += w.stats.RoundsPruned
	o.stats.Phase1Tasks += w.stats.Phase1Tasks
	o.stats.Phase2Tasks += w.stats.Phase2Tasks
	o.stats.NaiveCombinations = saturatingAdd(o.stats.NaiveCombinations, w.stats.NaiveCombinations)
	if w.stats.BudgetExhausted {
		o.stats.BudgetExhausted = true
	}
	for n, c := range w.dagMemo {
		o.dagMemo[n] = c
	}
}

// dagCost returns the exact DAG-aware cost of n, memoized by root.
func (o *Optimizer) dagCost(n *plan.Node) float64 {
	if c, ok := o.dagMemo[n]; ok {
		return c
	}
	c := plan.DAGCost(n, o.model)
	o.dagMemo[n] = c
	return c
}

// dagCostBounded is dagCost under the branch-and-bound bound: it
// returns (+Inf, true) as soon as the plan provably costs more than
// bound. Only exact (un-pruned) results enter the memo; a memo hit
// above the bound classifies as pruned exactly like the aborted walk
// would, so memoization never changes a prune decision.
func (o *Optimizer) dagCostBounded(n *plan.Node, bound float64) (float64, bool) {
	if o.opts.DisableRoundPruning {
		return o.dagCost(n), false
	}
	if c, ok := o.dagMemo[n]; ok {
		if c > bound {
			return math.Inf(1), true
		}
		return c, false
	}
	c, pruned := plan.DAGCostBounded(n, o.model, bound)
	if !pruned {
		o.dagMemo[n] = c
	}
	return c, pruned
}

// exploreAll applies the logical exploration rules to every live group
// until no new groups appear. Phase 1 already explored every group it
// visited (in the same order a lazy walk would, so group ids are
// unchanged); this pass certifies the remainder so phase-2 rounds can
// run concurrently against a frozen memo.
func (o *Optimizer) exploreAll() {
	for {
		before := o.m.NumGroups()
		for _, g := range o.m.Groups() {
			if !o.explored[g.ID] {
				rules.Explore(o.m, g, o.opts.Rules)
				o.explored[g.ID] = true
			}
		}
		if o.m.NumGroups() == before {
			break
		}
	}
	o.exploredAll = true
}

// parallelEach runs fn(0..n-1) over a bounded worker pool (the
// Cluster.Workers pattern). Each index is handed to exactly one
// goroutine; callers own any result slot indexed by i, so no locking
// is needed.
func parallelEach(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
