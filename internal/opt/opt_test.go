package opt

import (
	"testing"
	"time"

	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/plan"
	"repro/internal/props"
	"repro/internal/relop"
	"repro/internal/rules"
	"repro/internal/stats"
)

const scriptS1 = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) as S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) as S2 FROM R GROUP BY B,C;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
`

// testCatalog mirrors the experiment setup: a multi-billion-row log
// (large enough that data movement dominates per-stage overheads)
// whose grouping columns all have enough distinct values that no
// partitioning choice starves the cluster outright — the {B} vs
// {A,B,C} decision stays cost-based.
func testCatalog() *stats.Catalog {
	cat := stats.NewCatalog()
	for _, f := range []string{"test.log", "test2.log"} {
		cat.Put(f, &stats.TableStats{
			Rows: 2_000_000_000,
			Columns: map[string]stats.ColumnStats{
				"A": {Distinct: 1_000, AvgBytes: 8},
				"B": {Distinct: 500, AvgBytes: 8},
				"C": {Distinct: 2_000, AvgBytes: 8},
				"D": {Distinct: 100_000_000, AvgBytes: 8},
			},
		})
	}
	return cat
}

func buildScript(t *testing.T, src string) *memo.Memo {
	t.Helper()
	m, err := logical.BuildSource(src, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func buildWith(src string, cat *stats.Catalog) (*memo.Memo, error) {
	return logical.BuildSource(src, cat)
}

func optimizeBoth(t *testing.T, src string) (conv, cse *Result) {
	t.Helper()
	optsConv := DefaultOptions()
	optsConv.EnableCSE = false
	var err error
	conv, err = Optimize(buildScript(t, src), optsConv)
	if err != nil {
		t.Fatalf("conventional: %v", err)
	}
	cse, err = Optimize(buildScript(t, src), DefaultOptions())
	if err != nil {
		t.Fatalf("cse: %v", err)
	}
	return conv, cse
}

func TestS1ConventionalPlanShape(t *testing.T) {
	optsConv := DefaultOptions()
	optsConv.EnableCSE = false
	res, err := Optimize(buildScript(t, scriptS1), optsConv)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 8(a): the conventional plan reads the input twice and
	// repartitions per pipeline; no spool anywhere.
	if n := len(plan.FindAll(res.Plan, relop.KindPhysSpool)); n != 0 {
		t.Errorf("conventional plan has %d spools", n)
	}
	// The input is effectively processed twice (once per consumer).
	if got := plan.RefCount(res.Plan, relop.KindPhysExtract); got != 2 {
		t.Errorf("conventional extract executions = %v, want 2\n%s", got, plan.Format(res.Plan))
	}
	if got := plan.RefCount(res.Plan, relop.KindRepartition); got < 2 {
		t.Errorf("conventional exchanges = %v, want >= 2", got)
	}
	if res.Cost <= 0 {
		t.Error("cost must be positive")
	}
}

func TestS1CSEPlanShapeFig8b(t *testing.T) {
	// The Fig. 8 plans are sort-merge pipelines (the SCOPE profile);
	// with hash aggregation available the optimizer legitimately
	// picks hash plans instead, which the cost tests cover.
	opts := DefaultOptions()
	opts.Rules = rules.SCOPEProfile()
	res, err := Optimize(buildScript(t, scriptS1), opts)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Plan
	// One shared spool, consumed twice.
	spools := plan.FindAll(p, relop.KindPhysSpool)
	if len(spools) != 1 {
		t.Fatalf("spools = %d, want 1 shared\n%s", len(spools), plan.Format(p))
	}
	// The input is read exactly once.
	if got := plan.RefCount(p, relop.KindPhysExtract); got != 1 {
		t.Errorf("extract executions = %v, want 1\n%s", got, plan.Format(p))
	}
	// Exactly one exchange, on the single compromise column {B}
	// (the only scheme satisfying both {A,B} and {B,C} consumers).
	if got := plan.RefCount(p, relop.KindRepartition); got != 1 {
		t.Fatalf("repartition executions = %v, want 1\n%s", got, plan.Format(p))
	}
	reps := plan.FindAll(p, relop.KindRepartition)
	re := reps[0].Op.(*relop.Repartition)
	if !re.To.Cols.Equal(props.NewColSet("B")) {
		t.Errorf("repartition on %v, want {B}\n%s", re.To.Cols, plan.Format(p))
	}
	// The spool must deliver hash{B} with an order that lets at
	// least one consumer stream without a re-sort.
	sp := spools[0]
	if !sp.Dlvd.Part.Cols.Equal(props.NewColSet("B")) {
		t.Errorf("spool delivered %v", sp.Dlvd)
	}
	if sp.Dlvd.Order.Empty() {
		t.Errorf("spool should deliver a sort order, got %v", sp.Dlvd)
	}
	// At most one compensating sort above the spool (Fig. 8(b) node
	// 7: the second consumer re-sorts locally).
	sorts := 0
	for _, n := range plan.Operators(p) {
		if s, ok := n.Op.(*relop.Sort); ok {
			if len(n.Children) == 1 && n.Children[0].IsSpool() {
				sorts++
				_ = s
			}
		}
	}
	if sorts > 1 {
		t.Errorf("compensating sorts above spool = %d, want <= 1", sorts)
	}
}

func TestS1CSECheaperThanConventional(t *testing.T) {
	conv, cse := optimizeBoth(t, scriptS1)
	ratio := cse.Cost / conv.Cost
	t.Logf("S1: conventional=%.0f cse=%.0f ratio=%.2f", conv.Cost, cse.Cost, ratio)
	// Paper: 62% of the original cost (38% saving). Accept a band.
	if ratio >= 0.95 {
		t.Errorf("CSE should be clearly cheaper: ratio %.2f", ratio)
	}
	if ratio < 0.3 {
		t.Errorf("suspiciously large saving: ratio %.2f", ratio)
	}
	if cse.Stats.SharedGroups != 1 {
		t.Errorf("shared groups = %d", cse.Stats.SharedGroups)
	}
	if cse.Stats.Rounds == 0 {
		t.Error("phase 2 ran no rounds")
	}
}

func TestS2ThreeConsumersSavesMore(t *testing.T) {
	s2 := `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,A,Sum(S) as S1 FROM R GROUP BY B,A;
R2 = SELECT A,C,Sum(S) as S2 FROM R GROUP BY A,C;
R3 = SELECT A,Sum(S) as S3 FROM R GROUP BY A;
OUTPUT R1 TO "o1";
OUTPUT R2 TO "o2";
OUTPUT R3 TO "o3";
`
	conv1, cse1 := optimizeBoth(t, scriptS1)
	conv2, cse2 := optimizeBoth(t, s2)
	r1 := cse1.Cost / conv1.Cost
	r2 := cse2.Cost / conv2.Cost
	t.Logf("S1 ratio=%.2f, S2 ratio=%.2f", r1, r2)
	// Paper: more consumers, larger relative saving (38% → 55%).
	if r2 >= r1 {
		t.Errorf("3 consumers should save more than 2: S2 ratio %.2f >= S1 ratio %.2f", r2, r1)
	}
}

func TestPhase2NeverWorseThanPhase1(t *testing.T) {
	for name, src := range map[string]string{
		"S1": scriptS1,
		"single": `
R0 = EXTRACT A,B,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,Sum(D) as S FROM R0 GROUP BY A,B;
OUTPUT R TO "o";
`,
	} {
		res, err := Optimize(buildScript(t, src), DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Cost > res.Phase1Cost*(1+1e-9) {
			t.Errorf("%s: final cost %v exceeds phase-1 cost %v", name, res.Cost, res.Phase1Cost)
		}
	}
}

func TestLinearScriptBothModesAgree(t *testing.T) {
	src := `
R0 = EXTRACT A,B,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,Sum(D) as S FROM R0 GROUP BY A,B;
R1 = SELECT A,Sum(S) as T FROM R GROUP BY A;
OUTPUT R1 TO "o";
`
	conv, cse := optimizeBoth(t, src)
	if diff := cse.Cost - conv.Cost; diff > conv.Cost*1e-9 || diff < -conv.Cost*1e-9 {
		t.Errorf("no sharing: conventional %v vs cse %v must match", conv.Cost, cse.Cost)
	}
	if cse.Stats.SharedGroups != 0 || cse.Stats.Rounds != 0 {
		t.Errorf("stats = %+v", cse.Stats)
	}
}

func TestJoinScriptOptimizes(t *testing.T) {
	src := `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,C,Sum(S) as S1 FROM R GROUP BY B,C;
R2 = SELECT B,A,Sum(S) as S2 FROM R GROUP BY B,A;
RR = SELECT R1.B,A,C,S1,S2 FROM R1,R2 WHERE R1.B=R2.B;
OUTPUT RR TO "o";
`
	conv, cse := optimizeBoth(t, src)
	t.Logf("join: conventional=%.0f cse=%.0f", conv.Cost, cse.Cost)
	if cse.Cost >= conv.Cost {
		t.Errorf("CSE should win on the join script: %v vs %v", cse.Cost, conv.Cost)
	}
	joins := plan.FindAll(cse.Plan, relop.KindSortMergeJoin)
	hjoins := plan.FindAll(cse.Plan, relop.KindHashJoin)
	if len(joins)+len(hjoins) != 1 {
		t.Errorf("join ops = %d merge + %d hash, want 1 total", len(joins), len(hjoins))
	}
}

func TestFilterAndProjectScript(t *testing.T) {
	src := `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
F = SELECT A, B, D FROM R0 WHERE A > 10;
R = SELECT A,B,Sum(D) as S FROM F GROUP BY A,B;
OUTPUT R TO "o";
`
	res, err := Optimize(buildScript(t, src), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.FindAll(res.Plan, relop.KindPhysFilter)) != 1 {
		t.Errorf("missing filter:\n%s", plan.Format(res.Plan))
	}
}

func TestBudgetStopsRounds(t *testing.T) {
	opts := DefaultOptions()
	opts.Timeout = 1 * time.Nanosecond
	res, err := Optimize(buildScript(t, scriptS1), opts)
	if err != nil {
		t.Fatal(err)
	}
	// With an exhausted budget phase 2 degenerates; the result must
	// still be a valid plan no worse than phase 1.
	if res.Plan == nil || res.Cost > res.Phase1Cost*(1+1e-9) {
		t.Errorf("budget run: cost %v phase1 %v", res.Cost, res.Phase1Cost)
	}
	if !res.Stats.BudgetExhausted {
		t.Error("BudgetExhausted should be set")
	}
}

func TestMaxRoundsCap(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxRoundsPerLCA = 3
	res, err := Optimize(buildScript(t, scriptS1), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds > 3 {
		t.Errorf("rounds = %d, cap 3", res.Stats.Rounds)
	}
}

func TestAblationFlagsStillOptimal(t *testing.T) {
	base, err := Optimize(buildScript(t, scriptS1), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, mod := range []func(*Options){
		func(o *Options) { o.DisableIndependence = true },
		func(o *Options) { o.DisableRanking = true },
	} {
		opts := DefaultOptions()
		mod(&opts)
		res, err := Optimize(buildScript(t, scriptS1), opts)
		if err != nil {
			t.Fatal(err)
		}
		// With one shared group the extensions change only round
		// order, never the final plan cost.
		if !approx(res.Cost, base.Cost) {
			t.Errorf("ablation changed S1 cost: %v vs %v", res.Cost, base.Cost)
		}
	}
}

func TestDeterministicOptimization(t *testing.T) {
	var costs []float64
	for i := 0; i < 3; i++ {
		res, err := Optimize(buildScript(t, scriptS1), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		costs = append(costs, res.Cost)
	}
	if !approx(costs[0], costs[1]) || !approx(costs[1], costs[2]) {
		t.Errorf("nondeterministic costs: %v", costs)
	}
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+b)
}
