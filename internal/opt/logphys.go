package opt

import (
	"repro/internal/memo"
	"repro/internal/plan"
	"repro/internal/props"
	"repro/internal/relop"
	"repro/internal/rules"
	"repro/internal/stats"
)

// logPhysOpt is Algorithm 5: logical exploration, physical
// implementation, recursive child optimization with pin propagation,
// and enforcer insertion. It returns the group's best plan under the
// context as a winner (Plan nil when infeasible).
func (o *Optimizer) logPhysOpt(g *memo.Group, ereq props.ExtRequired, phase int) *memo.Winner {
	// After exploreAll certified the memo (phase 2), exploration is a
	// no-op and must be skipped: round workers share the memo and the
	// explored map read-only.
	if !o.exploredAll && !o.explored[g.ID] {
		rules.Explore(o.m, g, o.opts.Rules)
		o.explored[g.ID] = true
	}
	var best *plan.Node
	bestCost := 0.0
	consider := func(node *plan.Node) {
		for _, cand := range o.enforce(node, ereq.Required) {
			if !cand.Dlvd.Satisfies(ereq.Required) {
				continue
			}
			tc := plan.TreeCost(cand)
			if best == nil || tc < bestCost {
				best, bestCost = cand, tc
			}
		}
	}
	exprs := append([]*memo.Expr{}, g.Exprs...)
	for _, e := range exprs {
		if !e.Op.Kind().IsLogical() {
			continue
		}
		for _, alt := range rules.Implement(o.m, g, e, ereq.Required, o.opts.Rules) {
			node := o.buildPlan(g, e, alt, ereq, phase)
			if node == nil {
				continue
			}
			consider(node)
		}
	}
	// A session-cache hit competes like any other implementation: a
	// CacheScan leaf priced as a read of the materialized partitions,
	// enforced toward the requirement when its recorded properties
	// fall short.
	if cs := o.cacheScanCandidate(g, ereq, phase); cs != nil {
		consider(cs)
	}
	if best == nil {
		return &memo.Winner{}
	}
	return &memo.Winner{Plan: best, Cost: bestCost}
}

// buildPlan optimizes the children of one implementation alternative
// and assembles the plan node. In phase 2, a child that is a pinned
// shared group is optimized under its pinned property set regardless
// of what the implementation wanted (Alg. 5 lines 10–11), with
// consumer-side compensation added on top when the pinned delivery
// misses the implementation's needs.
func (o *Optimizer) buildPlan(g *memo.Group, e *memo.Expr, alt rules.Alt, ereq props.ExtRequired, phase int) *plan.Node {
	children := make([]*plan.Node, len(e.Children))
	dlvds := make([]props.Delivered, len(e.Children))
	for i, cgid := range e.Children {
		cReq := props.AnyRequired()
		if i < len(alt.ChildReqs) {
			cReq = alt.ChildReqs[i]
		}
		var cNode *plan.Node
		if phase == 2 {
			if pin, pinned := ereq.ForShared.Get(cgid); pinned && o.m.Group(cgid).Shared {
				// EnforcePhysProp: the pinned property set replaces
				// the implementation's requirement; pins below the
				// shared group no longer include its own
				// (PropagPropForSharedGrps).
				w := o.optimizeGroup(cgid, props.Ext(pin).WithPins(ereq.ForShared.Without(cgid)), phase)
				if w.Plan == nil {
					return nil
				}
				cNode = o.compensate(w.Plan, cReq)
				if cNode == nil {
					return nil
				}
			}
		}
		if cNode == nil {
			cExt := props.Ext(cReq)
			if phase == 2 {
				cExt = cExt.WithPins(ereq.ForShared)
			}
			w := o.optimizeGroup(cgid, cExt, phase)
			if w.Plan == nil {
				return nil
			}
			cNode = w.Plan
		}
		children[i] = cNode
		dlvds[i] = cNode.Dlvd
	}
	return o.assemble(g, alt.Op, children, dlvds, ereq, phase)
}

// assemble builds the plan node for op over the chosen child plans,
// deriving delivered properties and pricing the operator.
func (o *Optimizer) assemble(g *memo.Group, op relop.Operator, children []*plan.Node, dlvds []props.Delivered, ereq props.ExtRequired, phase int) *plan.Node {
	rels := make([]stats.Relation, len(children))
	parts := make([]props.Partitioning, len(children))
	for i, c := range children {
		rels[i] = c.Rel
		parts[i] = c.Dlvd.Part
	}
	return &plan.Node{
		Op:       op,
		Children: children,
		Group:    g.ID,
		CtxKey:   o.winnerKey(g, ereq, phase),
		Schema:   g.Props.Schema,
		Rel:      g.Props.Rel,
		Dlvd:     rules.DeriveDelivered(op, dlvds),
		OpCost:   o.model.OpCost(op, g.Props.Rel, rels, parts),
		FP:       o.fps[g.ID],
	}
}

// compensate wraps enforcers above a pinned shared child until the
// consumer's own requirement is met (the "Sort (C,B)" of Fig. 8(b));
// it returns the cheapest satisfying variant, or nil when none
// exists.
func (o *Optimizer) compensate(child *plan.Node, want props.Required) *plan.Node {
	if child.Dlvd.Satisfies(want) {
		return child
	}
	var best *plan.Node
	bestCost := 0.0
	for _, cand := range o.enforce(child, want) {
		if !cand.Dlvd.Satisfies(want) {
			continue
		}
		tc := plan.TreeCost(cand)
		if best == nil || tc < bestCost {
			best, bestCost = cand, tc
		}
	}
	return best
}
