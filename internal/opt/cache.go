package opt

import (
	"repro/internal/memo"
	"repro/internal/plan"
	"repro/internal/props"
	"repro/internal/relop"
)

// CacheEntry describes one materialized artifact a session cache
// offers to the optimizer: where the result lives, what it looks
// like, and the physical properties it was materialized under. The
// recorded Part/Order are the cross-query half of the Sec. V property
// history — a hit delivering hash{A,B} satisfies a consumer requiring
// colocation on {A,B} without a repartition.
type CacheEntry struct {
	// Path is the artifact's FileStore path.
	Path string
	// Schema is the artifact's schema.
	Schema relop.Schema
	// Part and Order are the delivered physical properties recorded
	// when the artifact was materialized.
	Part  props.Partitioning
	Order props.Ordering
	// FP is the Definition-1 fingerprint of the cached
	// subexpression.
	FP uint64
}

// ResultCache is the interface a cross-query result cache implements
// for the optimizer. It is defined here (not in internal/share) so
// the optimizer does not depend on the session machinery.
type ResultCache interface {
	// Lookup returns a valid cached artifact for the subexpression
	// with the given fingerprint, canonical signature, and schema.
	// Implementations must verify all three — fingerprints collide by
	// design — and must check their invalidation epochs before
	// answering.
	Lookup(fp uint64, sig string, schema relop.Schema) (CacheEntry, bool)
	// Holds reports whether a valid artifact exists for fp,
	// regardless of signature — the loose probe the P6 lint analyzer
	// uses to flag plans that rebuild a cached subexpression.
	Holds(fp uint64) bool
}

// cacheScanCandidate returns a CacheScan leaf plan for group g when
// the session cache holds a valid artifact for g's subexpression, or
// nil. Spool groups match on their input computation: a consumer
// script that uses the subexpression only once has no spool, so the
// cache is keyed by the bare expression's fingerprint.
func (o *Optimizer) cacheScanCandidate(g *memo.Group, ereq props.ExtRequired, phase int) *plan.Node {
	if o.opts.Cache == nil || len(g.Exprs) == 0 {
		return nil
	}
	lookup := g.ID
	switch g.Exprs[0].Op.(type) {
	case *relop.Spool:
		lookup = g.Exprs[0].Children[0]
	case *relop.Output, *relop.Sequence:
		// Side-effecting operators must execute.
		return nil
	}
	fp, ok := o.fps[lookup]
	if !ok {
		return nil
	}
	entry, ok := o.opts.Cache.Lookup(fp, o.sigs[lookup], g.Props.Schema)
	if !ok {
		return nil
	}
	op := &relop.PhysCacheScan{
		Path:    entry.Path,
		Columns: g.Props.Schema,
		Part:    entry.Part,
		Order:   entry.Order,
		FP:      fp,
	}
	return &plan.Node{
		Op:     op,
		Group:  g.ID,
		CtxKey: o.winnerKey(g, ereq, phase),
		Schema: g.Props.Schema,
		Rel:    g.Props.Rel,
		Dlvd:   props.Delivered{Part: entry.Part, Order: entry.Order},
		OpCost: o.model.OpCost(op, g.Props.Rel, nil, nil),
		FP:     fp,
	}
}
