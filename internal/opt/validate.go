package opt

import (
	"fmt"

	"repro/internal/lint"
	"repro/internal/plan"
	"repro/internal/props"
	"repro/internal/relop"
	"repro/internal/rules"
)

// Validation diagnostic codes. Each checkNode branch owns one stable
// code so tests and tooling can match findings structurally instead of
// by message text.
const (
	// CodeDlvdMismatch: recorded delivered properties differ from the
	// derivation over the children's.
	CodeDlvdMismatch = "V1"
	// CodeStreamAggCluster: stream aggregation over input not
	// clustered on its keys.
	CodeStreamAggCluster = "V2"
	// CodeAggColocation: global/single aggregation over input not
	// colocated by key, or any aggregation over broadcast input.
	CodeAggColocation = "V3"
	// CodeOutputDistribution: OUTPUT over broadcast input, or an
	// ordered OUTPUT whose input is not globally sorted.
	CodeOutputDistribution = "V4"
	// CodeEnforcerColumns: an enforcer (sort, repartition) names
	// columns absent from its input schema.
	CodeEnforcerColumns = "V5"
	// CodeMergeJoinOrder: merge join inputs unsorted on the join keys
	// or sorted in non-corresponding key order.
	CodeMergeJoinOrder = "V6"
	// CodeJoinColocation: join inputs not co-partitioned.
	CodeJoinColocation = "V7"
)

// ValidationCodes lists every code the validator can emit, in code
// order. The scopevet diagcode analyzer and the catalog-closure test
// treat this as the validator's registered catalog.
func ValidationCodes() []string {
	return []string{
		CodeDlvdMismatch, CodeStreamAggCluster, CodeAggColocation,
		CodeOutputDistribution, CodeEnforcerColumns, CodeMergeJoinOrder,
		CodeJoinColocation,
	}
}

// ValidatePlan statically checks the physical soundness of a plan and
// returns the first violation as an error, for callers that only need
// a pass/fail signal. ValidatePlanDiags exposes every finding.
func ValidatePlan(root *plan.Node) error {
	ds := ValidatePlanDiags(root)
	if len(ds) == 0 {
		return nil
	}
	if len(ds) == 1 {
		return fmt.Errorf("%s [%s]", ds[0].Message, ds[0].Code)
	}
	return fmt.Errorf("%s [%s] (and %d more findings)", ds[0].Message, ds[0].Code, len(ds)-1)
}

// ValidatePlanDiags statically checks the physical soundness of a
// plan — the properties the execution simulator would verify
// dynamically, available also for plans too large to execute (the
// paper's LS scripts are evaluated by estimated cost only; this check
// is what makes that comparison trustworthy):
//
//   - every node's recorded delivered properties equal the derivation
//     from its children's (V1);
//   - stream aggregations receive input clustered on their keys (V2);
//   - Global and Single aggregations receive input colocated by key
//     (serial, or hash on a subset of the keys), and no aggregation
//     consumes broadcast data (V3);
//   - no output consumes broadcast data, and ordered outputs receive
//     globally sorted input (V4);
//   - enforcer columns exist in their input's schema (V5);
//   - merge joins receive inputs sorted on corresponding keys (V6);
//   - merge/hash joins receive co-partitioned inputs: serial pairs,
//     corresponding exact hash schemes under the key pairing, or one
//     broadcast side (V7).
//
// Findings are reported through the lint framework in post-order (a
// node's children are checked before the node), one diagnostic per
// violated rule, localized by operator path.
func ValidatePlanDiags(root *plan.Node) []lint.Diagnostic {
	r := &lint.Report{}
	paths := lint.PlanPaths(root)
	seen := map[*plan.Node]bool{}
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, c := range n.Children {
			walk(c)
		}
		checkNode(n, paths[n], r)
	}
	walk(root)
	return r.Diags
}

// addv appends one validation finding. All validation rules are
// physical-soundness invariants, so every finding is an error.
func addv(r *lint.Report, code, pos, format string, args ...any) {
	r.Addf(code, "validate", lint.Error, pos, format, args...)
}

func checkNode(n *plan.Node, pos string, r *lint.Report) {
	dlvds := make([]props.Delivered, len(n.Children))
	for i, c := range n.Children {
		dlvds[i] = c.Dlvd
	}
	// Sequence nodes aside, recorded delivered properties must match
	// the derivation exactly.
	want := rules.DeriveDelivered(n.Op, dlvds)
	if !want.Part.Equal(n.Dlvd.Part) || !want.Order.Equal(n.Dlvd.Order) {
		addv(r, CodeDlvdMismatch, pos, "plan check: %s: recorded delivered %v differs from derived %v",
			n.Op, n.Dlvd, want)
	}
	child := func(i int) *plan.Node { return n.Children[i] }
	switch op := n.Op.(type) {
	case *relop.StreamAgg:
		in := child(0)
		keys := props.NewColSet(op.Keys...)
		if !in.Dlvd.Order.HasPrefixSet(keys) {
			addv(r, CodeStreamAggCluster, pos, "plan check: %s: input order %v does not cluster keys %v",
				n.Op, in.Dlvd.Order, keys)
		}
		checkAggDistribution(n, op.Keys, op.Phase, in, pos, r)
	case *relop.HashAgg:
		checkAggDistribution(n, op.Keys, op.Phase, child(0), pos, r)
	case *relop.PhysOutput:
		in := child(0)
		if in.Dlvd.Part.Kind == props.PartBroadcast {
			addv(r, CodeOutputDistribution, pos, "plan check: output over broadcast input duplicates rows")
		}
		if !op.Order.Empty() {
			// A globally sorted file needs locally sorted input that
			// is either serial or range-partitioned consistently with
			// the output order.
			if !in.Dlvd.Order.Satisfies(op.Order) {
				addv(r, CodeOutputDistribution, pos, "plan check: ordered output %q input order %v misses %v",
					op.Path, in.Dlvd.Order, op.Order)
			}
			switch in.Dlvd.Part.Kind {
			case props.PartSerial:
			case props.PartRange:
				if !op.Order.Satisfies(in.Dlvd.Part.SortCols) && !in.Dlvd.Part.SortCols.Satisfies(op.Order) {
					addv(r, CodeOutputDistribution, pos, "plan check: ordered output %q range keys %v inconsistent with order %v",
						op.Path, in.Dlvd.Part.SortCols, op.Order)
				}
			default:
				addv(r, CodeOutputDistribution, pos, "plan check: ordered output %q over %v input is not globally sorted",
					op.Path, in.Dlvd.Part)
			}
		}
	case *relop.Sort:
		if !op.Order.Columns().SubsetOf(child(0).Schema.ColSet()) {
			addv(r, CodeEnforcerColumns, pos, "plan check: sort %v over schema %v", op.Order, child(0).Schema)
		}
	case *relop.Repartition:
		if op.To.Kind == props.PartHash && !op.To.Cols.SubsetOf(child(0).Schema.ColSet()) {
			addv(r, CodeEnforcerColumns, pos, "plan check: repartition %v over schema %v", op.To, child(0).Schema)
		}
	case *relop.SortMergeJoin:
		checkJoinDistribution(op.LeftKeys, op.RightKeys, child(0), child(1), pos, r)
		if !sortedOnKeyPrefix(child(0).Dlvd.Order, op.LeftKeys) ||
			!sortedOnKeyPrefix(child(1).Dlvd.Order, op.RightKeys) {
			addv(r, CodeMergeJoinOrder, pos, "plan check: merge join inputs not sorted on keys: %v / %v",
				child(0).Dlvd.Order, child(1).Dlvd.Order)
		}
		lo, ro := child(0).Dlvd.Order, child(1).Dlvd.Order
		for i := 0; i < len(op.LeftKeys) && i < len(lo) && i < len(ro); i++ {
			li := keyIndex(op.LeftKeys, lo[i].Col)
			ri := keyIndex(op.RightKeys, ro[i].Col)
			if li != ri {
				addv(r, CodeMergeJoinOrder, pos, "plan check: merge join key orders do not correspond: %v vs %v", lo, ro)
				break
			}
		}
	case *relop.HashJoin:
		checkJoinDistribution(op.LeftKeys, op.RightKeys, child(0), child(1), pos, r)
	}
}

func checkAggDistribution(n *plan.Node, keys []string, phase relop.AggPhase, in *plan.Node, pos string, r *lint.Report) {
	if in.Dlvd.Part.Kind == props.PartBroadcast {
		addv(r, CodeAggColocation, pos, "plan check: %s: aggregation over broadcast input", n.Op)
		return
	}
	if phase == relop.AggLocal {
		return
	}
	keySet := props.NewColSet(keys...)
	p := in.Dlvd.Part
	switch p.Kind {
	case props.PartSerial:
		return
	case props.PartHash, props.PartRange:
		// Hash or range keys within the grouping keys colocate equal
		// groups.
		if p.Cols.SubsetOf(keySet) && !p.Cols.Empty() {
			return
		}
	}
	addv(r, CodeAggColocation, pos, "plan check: %s (%v): input partitioning %v does not colocate keys %v",
		n.Op, phase, p, keySet)
}

// checkJoinDistribution verifies equal join keys meet on one machine:
// serial-serial, one broadcast side, or hash schemes over
// corresponding key columns on both sides.
func checkJoinDistribution(lKeys, rKeys []string, l, r *plan.Node, pos string, rep *lint.Report) {
	lp, rp := l.Dlvd.Part, r.Dlvd.Part
	if lp.Kind == props.PartBroadcast || rp.Kind == props.PartBroadcast {
		if lp.Kind == rp.Kind {
			addv(rep, CodeJoinColocation, pos, "plan check: join with both sides broadcast")
		}
		// Any non-broadcast probe distribution works: the inner is
		// replicated everywhere.
		return
	}
	if lp.Kind == props.PartSerial && rp.Kind == props.PartSerial {
		return
	}
	if lp.Kind == props.PartHash && rp.Kind == props.PartHash {
		// Hash columns must be join keys and correspond pairwise.
		lIdx := make([]int, 0, lp.Cols.Len())
		for _, c := range lp.Cols.Cols() {
			i := keyIndex(lKeys, c)
			if i < 0 {
				addv(rep, CodeJoinColocation, pos, "plan check: join left partitioned on non-key %q", c)
				return
			}
			lIdx = append(lIdx, i)
		}
		rIdx := map[int]bool{}
		for _, c := range rp.Cols.Cols() {
			i := keyIndex(rKeys, c)
			if i < 0 {
				addv(rep, CodeJoinColocation, pos, "plan check: join right partitioned on non-key %q", c)
				return
			}
			rIdx[i] = true
		}
		if len(lIdx) != len(rIdx) {
			addv(rep, CodeJoinColocation, pos, "plan check: join partition schemes differ in arity: %v vs %v", lp, rp)
			return
		}
		for _, i := range lIdx {
			if !rIdx[i] {
				addv(rep, CodeJoinColocation, pos, "plan check: join partition schemes do not correspond: %v vs %v", lp, rp)
				return
			}
		}
		return
	}
	addv(rep, CodeJoinColocation, pos, "plan check: join inputs not co-located: %v vs %v", lp, rp)
}

func keyIndex(keys []string, col string) int {
	for i, k := range keys {
		if k == col {
			return i
		}
	}
	return -1
}

func sortedOnKeyPrefix(o props.Ordering, keys []string) bool {
	if len(o) < len(keys) {
		return false
	}
	return o.Prefix(len(keys)).Columns().Equal(props.NewColSet(keys...))
}
