package opt

import (
	"fmt"

	"repro/internal/plan"
	"repro/internal/props"
	"repro/internal/relop"
	"repro/internal/rules"
)

// ValidatePlan statically checks the physical soundness of a plan —
// the properties the execution simulator would verify dynamically,
// available also for plans too large to execute (the paper's LS
// scripts are evaluated by estimated cost only; this check is what
// makes that comparison trustworthy):
//
//   - every node's recorded delivered properties equal the derivation
//     from its children's;
//   - stream aggregations receive input clustered on their keys;
//   - Global and Single aggregations receive input colocated by key
//     (serial, or hash on a subset of the keys);
//   - no aggregation or output consumes broadcast data;
//   - merge/hash joins receive co-partitioned inputs (serial pairs,
//     corresponding exact hash schemes under the key pairing, or one
//     broadcast side), and merge joins sorted inputs;
//   - enforcer columns exist in their input's schema.
func ValidatePlan(root *plan.Node) error {
	seen := map[*plan.Node]bool{}
	var walk func(n *plan.Node) error
	walk = func(n *plan.Node) error {
		if seen[n] {
			return nil
		}
		seen[n] = true
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return checkNode(n)
	}
	return walk(root)
}

func checkNode(n *plan.Node) error {
	dlvds := make([]props.Delivered, len(n.Children))
	for i, c := range n.Children {
		dlvds[i] = c.Dlvd
	}
	// Sequence nodes aside, recorded delivered properties must match
	// the derivation exactly.
	want := rules.DeriveDelivered(n.Op, dlvds)
	if !want.Part.Equal(n.Dlvd.Part) || !want.Order.Equal(n.Dlvd.Order) {
		return fmt.Errorf("plan check: %s: recorded delivered %v differs from derived %v",
			n.Op, n.Dlvd, want)
	}
	child := func(i int) *plan.Node { return n.Children[i] }
	switch op := n.Op.(type) {
	case *relop.StreamAgg:
		in := child(0)
		keys := props.NewColSet(op.Keys...)
		if !in.Dlvd.Order.HasPrefixSet(keys) {
			return fmt.Errorf("plan check: %s: input order %v does not cluster keys %v",
				n.Op, in.Dlvd.Order, keys)
		}
		return checkAggDistribution(n, op.Keys, op.Phase, in)
	case *relop.HashAgg:
		return checkAggDistribution(n, op.Keys, op.Phase, child(0))
	case *relop.PhysOutput:
		in := child(0)
		if in.Dlvd.Part.Kind == props.PartBroadcast {
			return fmt.Errorf("plan check: output over broadcast input duplicates rows")
		}
		if !op.Order.Empty() {
			// A globally sorted file needs locally sorted input that
			// is either serial or range-partitioned consistently with
			// the output order.
			if !in.Dlvd.Order.Satisfies(op.Order) {
				return fmt.Errorf("plan check: ordered output %q input order %v misses %v",
					op.Path, in.Dlvd.Order, op.Order)
			}
			switch in.Dlvd.Part.Kind {
			case props.PartSerial:
			case props.PartRange:
				if !op.Order.Satisfies(in.Dlvd.Part.SortCols) && !in.Dlvd.Part.SortCols.Satisfies(op.Order) {
					return fmt.Errorf("plan check: ordered output %q range keys %v inconsistent with order %v",
						op.Path, in.Dlvd.Part.SortCols, op.Order)
				}
			default:
				return fmt.Errorf("plan check: ordered output %q over %v input is not globally sorted",
					op.Path, in.Dlvd.Part)
			}
		}
	case *relop.Sort:
		if !op.Order.Columns().SubsetOf(child(0).Schema.ColSet()) {
			return fmt.Errorf("plan check: sort %v over schema %v", op.Order, child(0).Schema)
		}
	case *relop.Repartition:
		if op.To.Kind == props.PartHash && !op.To.Cols.SubsetOf(child(0).Schema.ColSet()) {
			return fmt.Errorf("plan check: repartition %v over schema %v", op.To, child(0).Schema)
		}
	case *relop.SortMergeJoin:
		if err := checkJoinDistribution(op.LeftKeys, op.RightKeys, child(0), child(1)); err != nil {
			return err
		}
		if !sortedOnKeyPrefix(child(0).Dlvd.Order, op.LeftKeys) ||
			!sortedOnKeyPrefix(child(1).Dlvd.Order, op.RightKeys) {
			return fmt.Errorf("plan check: merge join inputs not sorted on keys: %v / %v",
				child(0).Dlvd.Order, child(1).Dlvd.Order)
		}
		lo, ro := child(0).Dlvd.Order, child(1).Dlvd.Order
		for i := 0; i < len(op.LeftKeys) && i < len(lo) && i < len(ro); i++ {
			li := keyIndex(op.LeftKeys, lo[i].Col)
			ri := keyIndex(op.RightKeys, ro[i].Col)
			if li != ri {
				return fmt.Errorf("plan check: merge join key orders do not correspond: %v vs %v", lo, ro)
			}
		}
	case *relop.HashJoin:
		if err := checkJoinDistribution(op.LeftKeys, op.RightKeys, child(0), child(1)); err != nil {
			return err
		}
	}
	return nil
}

func checkAggDistribution(n *plan.Node, keys []string, phase relop.AggPhase, in *plan.Node) error {
	if in.Dlvd.Part.Kind == props.PartBroadcast {
		return fmt.Errorf("plan check: %s: aggregation over broadcast input", n.Op)
	}
	if phase == relop.AggLocal {
		return nil
	}
	keySet := props.NewColSet(keys...)
	p := in.Dlvd.Part
	switch p.Kind {
	case props.PartSerial:
		return nil
	case props.PartHash, props.PartRange:
		// Hash or range keys within the grouping keys colocate equal
		// groups.
		if p.Cols.SubsetOf(keySet) && !p.Cols.Empty() {
			return nil
		}
	}
	return fmt.Errorf("plan check: %s (%v): input partitioning %v does not colocate keys %v",
		n.Op, phase, p, keySet)
}

// checkJoinDistribution verifies equal join keys meet on one machine:
// serial-serial, one broadcast side, or hash schemes over
// corresponding key columns on both sides.
func checkJoinDistribution(lKeys, rKeys []string, l, r *plan.Node) error {
	lp, rp := l.Dlvd.Part, r.Dlvd.Part
	if lp.Kind == props.PartBroadcast || rp.Kind == props.PartBroadcast {
		if lp.Kind == rp.Kind {
			return fmt.Errorf("plan check: join with both sides broadcast")
		}
		// Any non-broadcast probe distribution works: the inner is
		// replicated everywhere.
		return nil
	}
	if lp.Kind == props.PartSerial && rp.Kind == props.PartSerial {
		return nil
	}
	if lp.Kind == props.PartHash && rp.Kind == props.PartHash {
		// Hash columns must be join keys and correspond pairwise.
		lIdx := make([]int, 0, lp.Cols.Len())
		for _, c := range lp.Cols.Cols() {
			i := keyIndex(lKeys, c)
			if i < 0 {
				return fmt.Errorf("plan check: join left partitioned on non-key %q", c)
			}
			lIdx = append(lIdx, i)
		}
		rIdx := map[int]bool{}
		for _, c := range rp.Cols.Cols() {
			i := keyIndex(rKeys, c)
			if i < 0 {
				return fmt.Errorf("plan check: join right partitioned on non-key %q", c)
			}
			rIdx[i] = true
		}
		if len(lIdx) != len(rIdx) {
			return fmt.Errorf("plan check: join partition schemes differ in arity: %v vs %v", lp, rp)
		}
		for _, i := range lIdx {
			if !rIdx[i] {
				return fmt.Errorf("plan check: join partition schemes do not correspond: %v vs %v", lp, rp)
			}
		}
		return nil
	}
	return fmt.Errorf("plan check: join inputs not co-located: %v vs %v", lp, rp)
}

func keyIndex(keys []string, col string) int {
	for i, k := range keys {
		if k == col {
			return i
		}
	}
	return -1
}

func sortedOnKeyPrefix(o props.Ordering, keys []string) bool {
	if len(o) < len(keys) {
		return false
	}
	return o.Prefix(len(keys)).Columns().Equal(props.NewColSet(keys...))
}
