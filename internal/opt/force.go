package opt

import (
	"sort"

	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/plan"
	"repro/internal/relop"
)

// ForceKey identifies one subexpression across scripts: the
// Definition-1 fingerprint plus the canonical signature that
// disambiguates the fingerprint's kind-XOR collisions. It is the key
// both for forced materializations (Options.ForceMaterialize) and for
// the per-subexpression costs Result.SubexprCosts exposes.
type ForceKey struct {
	FP  uint64
	Sig string
}

// forceMaterializations wraps every live group matching a
// ForceMaterialize key in a shared Spool, so the chosen plan
// materializes it even when this script consumes it only once (the
// extra consumers live in other scripts of a workload batch). Runs
// after Algorithm 1 — whose garbage collection elides single-consumer
// spools — and before the final fingerprint pass, because spool
// insertion changes ancestor fingerprints. Returns how many groups
// were newly funneled through a spool.
func (o *Optimizer) forceMaterializations() int {
	fps := core.Fingerprints(o.m)
	sigs := core.CanonicalSignatures(o.m)
	var ids []memo.GroupID
	for _, g := range o.m.Groups() {
		if o.opts.ForceMaterialize[ForceKey{FP: fps[g.ID], Sig: sigs[g.ID]}] {
			ids = append(ids, g.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	forced := 0
	for _, id := range ids {
		if core.ForceSpool(o.m, id) != memo.NoGroup {
			forced++
		}
	}
	return forced
}

// forcedFPs returns the fingerprint set of the forced
// materializations, for the lint analyzers: a forced spool may
// legitimately have a single consumer in this plan, which the P3
// read-multiplicity check would otherwise flag.
func (o *Optimizer) forcedFPs() map[uint64]bool {
	if len(o.opts.ForceMaterialize) == 0 {
		return nil
	}
	out := map[uint64]bool{}
	for k := range o.opts.ForceMaterialize {
		out[k.FP] = true
	}
	return out
}

// SubexprCosts returns, for every distinct subexpression computed by
// the chosen plan, the tree cost of the subplan that computes it —
// the "build" side of the admission formula, keyed by fingerprint +
// canonical signature. Enforcers above the computation are included
// (the topmost node carrying the fingerprint wins); CacheScans,
// spools, and terminal operators are excluded, since they read or
// route a result rather than compute it. Workload-level selection
// (internal/mqo) seeds its benefit heap from these.
func (r *Result) SubexprCosts() map[ForceKey]float64 {
	out := map[ForceKey]float64{}
	if r.Plan == nil {
		return out
	}
	for _, n := range plan.Operators(r.Plan) { // topo order: parents first
		switch n.Op.(type) {
		case *relop.PhysCacheScan, *relop.PhysSpool, *relop.PhysOutput, *relop.PhysSequence:
			continue
		}
		if n.FP == 0 {
			continue
		}
		sig := r.Sigs[n.Group]
		if sig == "" {
			continue
		}
		k := ForceKey{FP: n.FP, Sig: sig}
		if _, seen := out[k]; !seen {
			out[k] = plan.TreeCost(n)
		}
	}
	return out
}
