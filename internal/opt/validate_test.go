package opt

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/plan"
	"repro/internal/props"
	"repro/internal/relop"
	"repro/internal/rules"
)

// TestValidatePlanAcceptsOptimizerOutput validates every plan the
// optimizer produces for the evaluation scripts, under both rule
// profiles and both modes.
func TestValidatePlanAcceptsOptimizerOutput(t *testing.T) {
	scripts := map[string]string{"S1": scriptS1, "join": `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,C,Sum(S) as S1 FROM R GROUP BY B,C;
R2 = SELECT B,A,Sum(S) as S2 FROM R GROUP BY B,A;
RR = SELECT R1.B,A,C,S1,S2 FROM R1,R2 WHERE R1.B=R2.B;
OUTPUT RR TO "o";
`}
	for name, src := range scripts {
		for _, prof := range []rules.Config{rules.DefaultConfig(), rules.SCOPEProfile()} {
			for _, cse := range []bool{false, true} {
				opts := DefaultOptions()
				opts.EnableCSE = cse
				opts.Rules = prof
				res, err := Optimize(buildScript(t, src), opts)
				if err != nil {
					t.Fatal(err)
				}
				if err := ValidatePlan(res.Plan); err != nil {
					t.Errorf("%s cse=%v: %v\n%s", name, cse, err, plan.Format(res.Plan))
				}
				if err := ValidatePlan(res.Phase1Plan); err != nil {
					t.Errorf("%s cse=%v phase1: %v", name, cse, err)
				}
			}
		}
	}
}

func mkCheckNode(op relop.Operator, schema relop.Schema, dlvd props.Delivered, children ...*plan.Node) *plan.Node {
	return &plan.Node{Op: op, Children: children, Schema: schema, Dlvd: dlvd}
}

func TestValidatePlanRejectsBadPlans(t *testing.T) {
	schema := relop.Schema{{Name: "A", Type: relop.TInt}, {Name: "B", Type: relop.TInt}}
	random := props.Delivered{Part: props.RandomPartitioning()}
	extract := mkCheckNode(&relop.PhysExtract{Path: "t", Columns: schema}, schema, random)
	sum := []relop.Aggregate{{Func: relop.AggSum, Arg: "B", As: "S"}}

	// Stream agg over unclustered input.
	bad1 := mkCheckNode(&relop.StreamAgg{Keys: []string{"A"}, Aggs: sum}, schema, random, extract)
	if err := ValidatePlan(bad1); err == nil || !strings.Contains(err.Error(), "cluster") {
		t.Errorf("unclustered stream agg: %v", err)
	}

	// Global hash agg over random distribution.
	bad2 := mkCheckNode(&relop.HashAgg{Keys: []string{"A"}, Aggs: sum, Phase: relop.AggGlobal}, schema, random, extract)
	if err := ValidatePlan(bad2); err == nil || !strings.Contains(err.Error(), "colocate") {
		t.Errorf("non-colocated global agg: %v", err)
	}

	// Local agg over random distribution is fine.
	ok1 := mkCheckNode(&relop.HashAgg{Keys: []string{"A"}, Aggs: sum, Phase: relop.AggLocal}, schema, random, extract)
	if err := ValidatePlan(ok1); err != nil {
		t.Errorf("local agg should pass: %v", err)
	}

	// Inconsistent recorded delivered properties.
	bad3 := mkCheckNode(&relop.PhysFilter{Pred: relop.Lit(relop.IntVal(1))}, schema,
		props.Delivered{Part: props.HashPartitioning(props.NewColSet("A"))}, extract)
	if err := ValidatePlan(bad3); err == nil || !strings.Contains(err.Error(), "differs from derived") {
		t.Errorf("inconsistent delivered: %v", err)
	}

	// Output over broadcast.
	bcast := mkCheckNode(&relop.Repartition{To: props.BroadcastPartitioning()}, schema,
		props.Delivered{Part: props.BroadcastPartitioning()}, extract)
	bad4 := mkCheckNode(&relop.PhysOutput{Path: "o"}, schema,
		props.Delivered{Part: props.BroadcastPartitioning()}, bcast)
	if err := ValidatePlan(bad4); err == nil || !strings.Contains(err.Error(), "broadcast") {
		t.Errorf("broadcast output: %v", err)
	}

	// Join of non-corresponding hash schemes.
	rs := relop.Schema{{Name: "A2", Type: relop.TInt}, {Name: "B2", Type: relop.TInt}}
	rext := mkCheckNode(&relop.PhysExtract{Path: "u", Columns: rs}, rs, random)
	lhash := mkCheckNode(&relop.Repartition{To: props.HashPartitioning(props.NewColSet("A"))}, schema,
		props.Delivered{Part: props.Partitioning{Kind: props.PartHash, Cols: props.NewColSet("A"), Exact: true}}, extract)
	rhash := mkCheckNode(&relop.Repartition{To: props.HashPartitioning(props.NewColSet("B2"))}, rs,
		props.Delivered{Part: props.Partitioning{Kind: props.PartHash, Cols: props.NewColSet("B2"), Exact: true}}, rext)
	joinSchema := schema.Concat(rs)
	badJoin := mkCheckNode(&relop.HashJoin{LeftKeys: []string{"A", "B"}, RightKeys: []string{"A2", "B2"}},
		joinSchema, props.Delivered{Part: lhash.Dlvd.Part}, lhash, rhash)
	if err := ValidatePlan(badJoin); err == nil || !strings.Contains(err.Error(), "correspond") {
		t.Errorf("mismatched join schemes: %v", err)
	}

	// Corresponding schemes pass.
	rhashA := mkCheckNode(&relop.Repartition{To: props.HashPartitioning(props.NewColSet("A2"))}, rs,
		props.Delivered{Part: props.Partitioning{Kind: props.PartHash, Cols: props.NewColSet("A2"), Exact: true}}, rext)
	okJoin := mkCheckNode(&relop.HashJoin{LeftKeys: []string{"A", "B"}, RightKeys: []string{"A2", "B2"}},
		joinSchema, props.Delivered{Part: lhash.Dlvd.Part}, lhash, rhashA)
	if err := ValidatePlan(okJoin); err != nil {
		t.Errorf("corresponding join schemes should pass: %v", err)
	}
}

// TestValidatePlanDiagsCodes drives every checkNode branch with a
// deliberately broken plan and asserts the finding carries the
// branch's stable code, so tools can match structurally instead of by
// message text.
func TestValidatePlanDiagsCodes(t *testing.T) {
	schema := relop.Schema{{Name: "A", Type: relop.TInt}, {Name: "B", Type: relop.TInt}}
	rs := relop.Schema{{Name: "A2", Type: relop.TInt}, {Name: "B2", Type: relop.TInt}}
	random := props.Delivered{Part: props.RandomPartitioning()}
	sum := []relop.Aggregate{{Func: relop.AggSum, Arg: "B", As: "S"}}
	extract := func() *plan.Node {
		return mkCheckNode(&relop.PhysExtract{Path: "t", Columns: schema}, schema, random)
	}
	// serial returns an input claiming serial distribution and the
	// given sort order. The claim mismatches the extract derivation on
	// purpose (that V1 finding is beside the point for the join and
	// output branches, which assert their own codes).
	serial := func(s relop.Schema, order ...string) *plan.Node {
		return mkCheckNode(&relop.PhysExtract{Path: "t", Columns: s}, s,
			props.Delivered{Part: props.SerialPartitioning(), Order: props.NewOrdering(order...)})
	}
	hashOn := func(s relop.Schema, col string) *plan.Node {
		p := props.Partitioning{Kind: props.PartHash, Cols: props.NewColSet(col), Exact: true}
		return mkCheckNode(&relop.PhysExtract{Path: "t", Columns: s}, s, props.Delivered{Part: p})
	}
	bcast := func(s relop.Schema) *plan.Node {
		return mkCheckNode(&relop.PhysExtract{Path: "t", Columns: s}, s,
			props.Delivered{Part: props.BroadcastPartitioning()})
	}

	cases := []struct {
		name     string
		node     *plan.Node
		code     string
		fragment string
	}{
		{"dlvd-mismatch", mkCheckNode(&relop.PhysFilter{Pred: relop.Lit(relop.IntVal(1))}, schema,
			props.Delivered{Part: props.HashPartitioning(props.NewColSet("A"))}, extract()),
			CodeDlvdMismatch, "differs from derived"},
		{"streamagg-uncluster", mkCheckNode(&relop.StreamAgg{Keys: []string{"A"}, Aggs: sum}, schema,
			random, extract()),
			CodeStreamAggCluster, "does not cluster"},
		{"agg-broadcast", mkCheckNode(&relop.HashAgg{Keys: []string{"A"}, Aggs: sum, Phase: relop.AggGlobal}, schema,
			props.Delivered{Part: props.BroadcastPartitioning()}, bcast(schema)),
			CodeAggColocation, "broadcast input"},
		{"agg-noncolocated", mkCheckNode(&relop.HashAgg{Keys: []string{"A"}, Aggs: sum, Phase: relop.AggGlobal}, schema,
			random, extract()),
			CodeAggColocation, "does not colocate"},
		{"output-broadcast", mkCheckNode(&relop.PhysOutput{Path: "o"}, schema,
			props.Delivered{Part: props.BroadcastPartitioning()}, bcast(schema)),
			CodeOutputDistribution, "duplicates rows"},
		{"output-order-missing", mkCheckNode(&relop.PhysOutput{Path: "o", Order: props.NewOrdering("A")}, schema,
			props.Delivered{Part: props.SerialPartitioning()}, serial(schema)),
			CodeOutputDistribution, "misses"},
		{"output-not-global", mkCheckNode(&relop.PhysOutput{Path: "o", Order: props.NewOrdering("A")}, schema,
			props.Delivered{Part: hashOn(schema, "A").Dlvd.Part, Order: props.NewOrdering("A")},
			mkCheckNode(&relop.PhysExtract{Path: "t", Columns: schema}, schema,
				props.Delivered{Part: props.Partitioning{Kind: props.PartHash, Cols: props.NewColSet("A"), Exact: true},
					Order: props.NewOrdering("A")})),
			CodeOutputDistribution, "not globally sorted"},
		{"sort-unknown-col", mkCheckNode(&relop.Sort{Order: props.NewOrdering("Z")}, schema,
			props.Delivered{Part: random.Part, Order: props.NewOrdering("Z")}, extract()),
			CodeEnforcerColumns, "sort"},
		{"repartition-unknown-col", mkCheckNode(&relop.Repartition{To: props.HashPartitioning(props.NewColSet("Z"))}, schema,
			props.Delivered{Part: props.HashPartitioning(props.NewColSet("Z"))}, extract()),
			CodeEnforcerColumns, "repartition"},
		{"mergejoin-unsorted", mkCheckNode(&relop.SortMergeJoin{LeftKeys: []string{"A"}, RightKeys: []string{"A2"}},
			schema.Concat(rs), props.Delivered{Part: props.SerialPartitioning()},
			serial(schema), serial(rs)),
			CodeMergeJoinOrder, "not sorted on keys"},
		{"mergejoin-order-mismatch", mkCheckNode(&relop.SortMergeJoin{LeftKeys: []string{"A", "B"}, RightKeys: []string{"A2", "B2"}},
			schema.Concat(rs), props.Delivered{Part: props.SerialPartitioning()},
			serial(schema, "A", "B"), serial(rs, "B2", "A2")),
			CodeMergeJoinOrder, "do not correspond"},
		{"join-both-broadcast", mkCheckNode(&relop.HashJoin{LeftKeys: []string{"A"}, RightKeys: []string{"A2"}},
			schema.Concat(rs), props.Delivered{Part: props.BroadcastPartitioning()},
			bcast(schema), bcast(rs)),
			CodeJoinColocation, "both sides broadcast"},
		{"join-not-colocated", mkCheckNode(&relop.HashJoin{LeftKeys: []string{"A"}, RightKeys: []string{"A2"}},
			schema.Concat(rs), props.Delivered{Part: props.SerialPartitioning()},
			serial(schema), hashOn(rs, "A2")),
			CodeJoinColocation, "not co-located"},
		{"join-left-nonkey", mkCheckNode(&relop.HashJoin{LeftKeys: []string{"A"}, RightKeys: []string{"A2"}},
			schema.Concat(rs), props.Delivered{Part: props.SerialPartitioning()},
			hashOn(schema, "B"), hashOn(rs, "A2")),
			CodeJoinColocation, "left partitioned on non-key"},
		{"join-right-nonkey", mkCheckNode(&relop.HashJoin{LeftKeys: []string{"A"}, RightKeys: []string{"A2"}},
			schema.Concat(rs), props.Delivered{Part: props.SerialPartitioning()},
			hashOn(schema, "A"), hashOn(rs, "B2")),
			CodeJoinColocation, "right partitioned on non-key"},
		{"join-arity-mismatch", mkCheckNode(&relop.HashJoin{LeftKeys: []string{"A", "B"}, RightKeys: []string{"A2", "B2"}},
			schema.Concat(rs),
			props.Delivered{Part: props.Partitioning{Kind: props.PartHash, Cols: props.NewColSet("A", "B"), Exact: true}},
			mkCheckNode(&relop.PhysExtract{Path: "t", Columns: schema}, schema,
				props.Delivered{Part: props.Partitioning{Kind: props.PartHash, Cols: props.NewColSet("A", "B"), Exact: true}}),
			hashOn(rs, "A2")),
			CodeJoinColocation, "differ in arity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds := ValidatePlanDiags(tc.node)
			found := false
			for _, d := range ds {
				if d.Analyzer != "validate" || d.Severity != lint.Error || d.Pos == "" {
					t.Errorf("malformed diagnostic %+v: want analyzer=validate, severity=error, non-empty pos", d)
				}
				if d.Code == tc.code && strings.Contains(d.Message, tc.fragment) {
					found = true
				}
			}
			if !found {
				t.Errorf("want a %s finding containing %q; got %v", tc.code, tc.fragment, ds)
			}
		})
	}
}
