package opt

import (
	"strings"
	"testing"

	"repro/internal/plan"
	"repro/internal/props"
	"repro/internal/relop"
	"repro/internal/rules"
)

// TestValidatePlanAcceptsOptimizerOutput validates every plan the
// optimizer produces for the evaluation scripts, under both rule
// profiles and both modes.
func TestValidatePlanAcceptsOptimizerOutput(t *testing.T) {
	scripts := map[string]string{"S1": scriptS1, "join": `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,C,Sum(S) as S1 FROM R GROUP BY B,C;
R2 = SELECT B,A,Sum(S) as S2 FROM R GROUP BY B,A;
RR = SELECT R1.B,A,C,S1,S2 FROM R1,R2 WHERE R1.B=R2.B;
OUTPUT RR TO "o";
`}
	for name, src := range scripts {
		for _, prof := range []rules.Config{rules.DefaultConfig(), rules.SCOPEProfile()} {
			for _, cse := range []bool{false, true} {
				opts := DefaultOptions()
				opts.EnableCSE = cse
				opts.Rules = prof
				res, err := Optimize(buildScript(t, src), opts)
				if err != nil {
					t.Fatal(err)
				}
				if err := ValidatePlan(res.Plan); err != nil {
					t.Errorf("%s cse=%v: %v\n%s", name, cse, err, plan.Format(res.Plan))
				}
				if err := ValidatePlan(res.Phase1Plan); err != nil {
					t.Errorf("%s cse=%v phase1: %v", name, cse, err)
				}
			}
		}
	}
}

func mkCheckNode(op relop.Operator, schema relop.Schema, dlvd props.Delivered, children ...*plan.Node) *plan.Node {
	return &plan.Node{Op: op, Children: children, Schema: schema, Dlvd: dlvd}
}

func TestValidatePlanRejectsBadPlans(t *testing.T) {
	schema := relop.Schema{{Name: "A", Type: relop.TInt}, {Name: "B", Type: relop.TInt}}
	random := props.Delivered{Part: props.RandomPartitioning()}
	extract := mkCheckNode(&relop.PhysExtract{Path: "t", Columns: schema}, schema, random)
	sum := []relop.Aggregate{{Func: relop.AggSum, Arg: "B", As: "S"}}

	// Stream agg over unclustered input.
	bad1 := mkCheckNode(&relop.StreamAgg{Keys: []string{"A"}, Aggs: sum}, schema, random, extract)
	if err := ValidatePlan(bad1); err == nil || !strings.Contains(err.Error(), "cluster") {
		t.Errorf("unclustered stream agg: %v", err)
	}

	// Global hash agg over random distribution.
	bad2 := mkCheckNode(&relop.HashAgg{Keys: []string{"A"}, Aggs: sum, Phase: relop.AggGlobal}, schema, random, extract)
	if err := ValidatePlan(bad2); err == nil || !strings.Contains(err.Error(), "colocate") {
		t.Errorf("non-colocated global agg: %v", err)
	}

	// Local agg over random distribution is fine.
	ok1 := mkCheckNode(&relop.HashAgg{Keys: []string{"A"}, Aggs: sum, Phase: relop.AggLocal}, schema, random, extract)
	if err := ValidatePlan(ok1); err != nil {
		t.Errorf("local agg should pass: %v", err)
	}

	// Inconsistent recorded delivered properties.
	bad3 := mkCheckNode(&relop.PhysFilter{Pred: relop.Lit(relop.IntVal(1))}, schema,
		props.Delivered{Part: props.HashPartitioning(props.NewColSet("A"))}, extract)
	if err := ValidatePlan(bad3); err == nil || !strings.Contains(err.Error(), "differs from derived") {
		t.Errorf("inconsistent delivered: %v", err)
	}

	// Output over broadcast.
	bcast := mkCheckNode(&relop.Repartition{To: props.BroadcastPartitioning()}, schema,
		props.Delivered{Part: props.BroadcastPartitioning()}, extract)
	bad4 := mkCheckNode(&relop.PhysOutput{Path: "o"}, schema,
		props.Delivered{Part: props.BroadcastPartitioning()}, bcast)
	if err := ValidatePlan(bad4); err == nil || !strings.Contains(err.Error(), "broadcast") {
		t.Errorf("broadcast output: %v", err)
	}

	// Join of non-corresponding hash schemes.
	rs := relop.Schema{{Name: "A2", Type: relop.TInt}, {Name: "B2", Type: relop.TInt}}
	rext := mkCheckNode(&relop.PhysExtract{Path: "u", Columns: rs}, rs, random)
	lhash := mkCheckNode(&relop.Repartition{To: props.HashPartitioning(props.NewColSet("A"))}, schema,
		props.Delivered{Part: props.Partitioning{Kind: props.PartHash, Cols: props.NewColSet("A"), Exact: true}}, extract)
	rhash := mkCheckNode(&relop.Repartition{To: props.HashPartitioning(props.NewColSet("B2"))}, rs,
		props.Delivered{Part: props.Partitioning{Kind: props.PartHash, Cols: props.NewColSet("B2"), Exact: true}}, rext)
	joinSchema := schema.Concat(rs)
	badJoin := mkCheckNode(&relop.HashJoin{LeftKeys: []string{"A", "B"}, RightKeys: []string{"A2", "B2"}},
		joinSchema, props.Delivered{Part: lhash.Dlvd.Part}, lhash, rhash)
	if err := ValidatePlan(badJoin); err == nil || !strings.Contains(err.Error(), "correspond") {
		t.Errorf("mismatched join schemes: %v", err)
	}

	// Corresponding schemes pass.
	rhashA := mkCheckNode(&relop.Repartition{To: props.HashPartitioning(props.NewColSet("A2"))}, rs,
		props.Delivered{Part: props.Partitioning{Kind: props.PartHash, Cols: props.NewColSet("A2"), Exact: true}}, rext)
	okJoin := mkCheckNode(&relop.HashJoin{LeftKeys: []string{"A", "B"}, RightKeys: []string{"A2", "B2"}},
		joinSchema, props.Delivered{Part: lhash.Dlvd.Part}, lhash, rhashA)
	if err := ValidatePlan(okJoin); err != nil {
		t.Errorf("corresponding join schemes should pass: %v", err)
	}
}
