package opt

import (
	"repro/internal/plan"
	"repro/internal/props"
	"repro/internal/relop"
	"repro/internal/rules"
	"repro/internal/stats"
)

// enforce returns the candidate plans satisfying (or attempting to
// satisfy) req from a base plan: the base itself, plus enforcer-
// wrapped variants — Sort, plain Repartition (+ Sort), order-
// preserving merge Repartition, and Sort-below-merge-Repartition. The
// caller filters by Satisfies and picks the cheapest; unsatisfying
// candidates are harmless.
func (o *Optimizer) enforce(node *plan.Node, req props.Required) []*plan.Node {
	out := []*plan.Node{node}
	needPart := !node.Dlvd.Part.Satisfies(req.Part)
	needOrd := !node.Dlvd.Order.Satisfies(req.Order)
	if !needPart && !needOrd {
		return out
	}
	// Enforcers can only operate on columns the plan actually
	// produces; a requirement over foreign columns is unenforceable
	// here (the caller's candidate filtering rejects the bare node).
	have := node.Schema.ColSet()
	if !req.Order.Columns().SubsetOf(have) {
		return out
	}
	if !needPart {
		if !req.Order.Empty() {
			out = append(out, o.wrapEnforcer(node, &relop.Sort{Order: req.Order}))
		}
		return out
	}
	for _, target := range rules.EnforcerTargets(req.Part, o.opts.Rules) {
		if (target.Kind == props.PartHash || target.Kind == props.PartRange) &&
			!target.Cols.SubsetOf(have) {
			continue
		}
		// (a) plain exchange, then sort if an order is required.
		pn := o.wrapEnforcer(node, &relop.Repartition{To: target})
		if !req.Order.Empty() && !pn.Dlvd.Order.Satisfies(req.Order) {
			pn = o.wrapEnforcer(pn, &relop.Sort{Order: req.Order})
		}
		out = append(out, pn)
		// (b) order-preserving merge exchange when the base is
		// already sorted.
		if !node.Dlvd.Order.Empty() {
			mn := o.wrapEnforcer(node, &relop.Repartition{To: target, MergeOrder: node.Dlvd.Order})
			if !req.Order.Empty() && !mn.Dlvd.Order.Satisfies(req.Order) {
				mn = o.wrapEnforcer(mn, &relop.Sort{Order: req.Order})
			}
			out = append(out, mn)
		}
		// (c) sort below the exchange, preserve through a merge
		// receive (sorting the smaller pre-exchange partitions can
		// be cheaper than a post-exchange sort).
		if !req.Order.Empty() && !node.Dlvd.Order.Satisfies(req.Order) {
			sn := o.wrapEnforcer(node, &relop.Sort{Order: req.Order})
			out = append(out, o.wrapEnforcer(sn, &relop.Repartition{To: target, MergeOrder: sn.Dlvd.Order}))
		}
	}
	return out
}

// wrapEnforcer builds an enforcer node above base: same group, same
// statistics, derived properties, priced by the cost model.
func (o *Optimizer) wrapEnforcer(base *plan.Node, op relop.Operator) *plan.Node {
	return &plan.Node{
		Op:       op,
		Children: []*plan.Node{base},
		Group:    base.Group,
		CtxKey:   base.CtxKey,
		Schema:   base.Schema,
		Rel:      base.Rel,
		Dlvd:     rules.DeriveDelivered(op, []props.Delivered{base.Dlvd}),
		OpCost: o.model.OpCost(op, base.Rel,
			[]stats.Relation{base.Rel},
			[]props.Partitioning{base.Dlvd.Part}),
		FP: base.FP,
	}
}
