package opt

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/props"
)

// optimizeGroup is Algorithm 2 (phase 1) / Algorithm 4 (phase 2): it
// returns the best plan for group gid under the extended requirement
// ereq, recording property history at shared groups during phase 1
// and running re-optimization rounds at LCA groups during phase 2.
func (o *Optimizer) optimizeGroup(gid memo.GroupID, ereq props.ExtRequired, phase int) *memo.Winner {
	g := o.m.Group(gid)

	// Alg. 2 lines 1–3: record the history of requested properties
	// at shared groups, expanding range requirements into their
	// concrete satisfying schemes (Sec. V).
	if phase == 1 && g.Shared && len(g.History) < o.opts.MaxHistoryPerGroup {
		for _, r := range core.ExpandHistory(ereq.Required, o.opts.MaxHistoryPerReq) {
			if len(g.History) >= o.opts.MaxHistoryPerGroup {
				break
			}
			g.AddHistory(r)
		}
	}

	// Restrict pins to the shared groups actually reachable below
	// this group so winner-cache keys stay shareable across rounds.
	if phase == 2 && len(ereq.ForShared) > 0 {
		ereq.ForShared = ereq.ForShared.Restrict(func(s props.GroupID) bool {
			return g.FindSharedBelow(s) != nil
		})
	}

	key := o.winnerKey(g, ereq, phase)
	if o.reuseWinners(phase) {
		if w, ok := o.winner(g, key); ok {
			if phase == 1 && g.Shared && w.Plan != nil {
				g.BumpHistoryWins(w.Plan.Dlvd)
			}
			return w
		}
	}
	if phase == 1 {
		o.stats.Phase1Tasks++
	} else {
		o.stats.Phase2Tasks++
	}

	var w *memo.Winner
	if phase == 2 && len(g.LCAOf) > 0 {
		w = o.optimizeLCA(g, ereq)
	} else {
		w = o.logPhysOpt(g, ereq, phase)
	}
	if phase == 1 && g.Shared && w.Plan != nil {
		// Sec. VIII-C ranking signal: property sets delivered by
		// winning phase-1 plans are promising phase-2 enforcements.
		g.BumpHistoryWins(w.Plan.Dlvd)
	}
	o.setWinner(g, key, w)
	return w
}

// optimizeLCA is Algorithm 4 lines 4–12: at the LCA of one or more
// shared groups, re-optimize the sub-DAG once per combination of
// enforceable property sets, and keep the combination whose plan has
// the lowest DAG-aware cost.
func (o *Optimizer) optimizeLCA(g *memo.Group, ereq props.ExtRequired) *memo.Winner {
	// The LCA span parents to the global phase-2 span (inherited by
	// round workers), not to whatever round happens to contain a
	// nested LCA: a flat tree keyed by group id and context is
	// deterministic; nesting by evaluation path would not be.
	var lcaSpan obs.Span
	if o.tr.Enabled() {
		lcaSpan = o.tr.Start(o.p2span, "opt", "lca", fmt.Sprintf("G%d|%s", g.ID, ereq.Key()))
		lcaSpan.Arg("shared", int64(len(g.LCAOf)))
		defer lcaSpan.End()
	}
	histories := make([]core.SharedGroupHistory, 0, len(g.LCAOf))
	for _, s := range g.LCAOf {
		sg := o.m.Group(s)
		var hp []props.Required
		if o.opts.LocalSharingOnly {
			// Related-work baseline: the shared plan is whatever is
			// locally optimal; consumers take it as-is.
			hp = []props.Required{props.AnyRequired()}
		} else if o.opts.DisableRanking {
			hp = make([]props.Required, 0, len(sg.History))
			for _, h := range sg.History {
				hp = append(hp, h.Req)
			}
		} else {
			hp = core.RankHistory(sg.History)
		}
		if len(hp) == 0 {
			hp = []props.Required{props.AnyRequired()}
		}
		sav := float64(len(o.m.Parents(s))-1) * o.model.RepartitionCost(sg.Props.Rel)
		if o.opts.DisableRanking {
			sav = 0
		}
		histories = append(histories, core.SharedGroupHistory{Group: s, Props: hp, RepartSav: sav})
	}

	var comps [][]int
	if !o.opts.DisableIndependence {
		comps = indexComponents(core.IndependentComponents(o.m, g.ID, g.LCAOf), g.LCAOf)
	}
	planner := core.NewRoundPlanner(histories, comps, o.opts.MaxRoundsPerLCA)
	o.stats.NaiveCombinations = saturatingAdd(o.stats.NaiveCombinations, planner.TotalCombinations())

	var best *memo.Winner
	bestCost := math.Inf(1)
	bestTrace := -1
	for {
		if o.expired() {
			o.stats.BudgetExhausted = true
			break
		}
		pins, ok := planner.ComponentBatch()
		if !ok {
			break
		}
		// The batch leader runs first against the live incumbent; its
		// exact DAG cost then tightens the frozen pruning bound the
		// batch siblings are evaluated under. The bound stays frozen
		// across siblings so their prune decisions are independent of
		// evaluation order.
		results := make([]roundResult, len(pins))
		results[0] = o.evalRound(g, ereq, pins[0], bestCost, lcaSpan)
		if results[0].skipped {
			o.stats.BudgetExhausted = true
			break
		}
		o.absorb(results[0].worker)
		bound := bestCost
		if results[0].cost < bound {
			bound = results[0].cost
		}
		if len(pins) > 1 {
			rest := pins[1:]
			parallelEach(o.workers(), len(rest), func(i int) {
				results[i+1] = o.evalRound(g, ereq, rest[i], bound, lcaSpan)
			})
		}
		// Merge in combo order so traces, winner pointers, and the
		// strict-less incumbent update are identical at any width.
		costs := make([]float64, 0, len(pins))
		exhausted := false
		for i, r := range results {
			if r.skipped {
				exhausted = true
				break
			}
			if i > 0 {
				o.absorb(r.worker)
			}
			o.stats.Rounds++
			if r.pruned {
				o.stats.RoundsPruned++
			}
			o.rounds = append(o.rounds, RoundTrace{
				LCA: g.ID, Pins: pins[i].Key(), Cost: r.cost, Pruned: r.pruned,
			})
			costs = append(costs, r.cost)
			if r.cost < bestCost {
				best, bestCost = r.win, r.cost
				bestTrace = len(o.rounds) - 1
			}
		}
		planner.ReportBatch(costs)
		if exhausted {
			o.stats.BudgetExhausted = true
			break
		}
	}
	if bestTrace >= 0 {
		o.rounds[bestTrace].Best = true
	}
	if best == nil {
		// Budget spent (or every round infeasible) before any round
		// produced a plan: fall back to plain optimization of this
		// group, and leave a synthetic trace so the Result records why
		// no evaluated round was marked Best. Fallback traces do not
		// count toward Stats.Rounds.
		var fsp obs.Span
		if o.tr.Enabled() {
			fsp = o.tr.Start(lcaSpan, "opt", "round", "fallback|"+ereq.ForShared.Key())
			fsp.Arg("fallback", 1)
		}
		best = o.logPhysOpt(g, ereq, 2)
		ft := RoundTrace{LCA: g.ID, Pins: ereq.ForShared.Key(), Cost: math.Inf(1), Fallback: true}
		if best.Plan != nil {
			ft.Cost = o.dagCost(best.Plan)
			ft.Best = true
		}
		fsp.Arg("cost", obs.CostArg(ft.Cost))
		fsp.End()
		o.rounds = append(o.rounds, ft)
	}
	return best
}

// indexComponents converts group-id components into index components
// over the LCAOf slice for the round planner.
func indexComponents(comps [][]memo.GroupID, order []memo.GroupID) [][]int {
	pos := map[memo.GroupID]int{}
	for i, g := range order {
		pos[g] = i
	}
	out := make([][]int, 0, len(comps))
	for _, c := range comps {
		idx := make([]int, 0, len(c))
		for _, g := range c {
			if p, ok := pos[g]; ok {
				idx = append(idx, p)
			}
		}
		if len(idx) > 0 {
			out = append(out, idx)
		}
	}
	return out
}

func saturatingAdd(a, b int) int {
	const lim = 1 << 40
	if a+b < a || a+b > lim {
		return lim
	}
	return a + b
}
