package opt

import (
	"testing"

	"repro/internal/memo"
	"repro/internal/plan"
	"repro/internal/props"
	"repro/internal/relop"
	"repro/internal/stats"
)

// optimizeCSE runs the full four-step pipeline on a script and
// returns the optimizer (for memo inspection) and the result.
func optimizeCSE(t *testing.T, src string, opts Options) (*Optimizer, *Result, *memo.Memo) {
	t.Helper()
	m := buildScript(t, src)
	o := New(m, opts)
	res, err := o.Run()
	if err != nil {
		t.Fatal(err)
	}
	return o, res, m
}

// TestHistoryRecordingAlg2 checks Step 2 directly: after phase 1 the
// shared group's history holds the Sec. V expansion of every
// requested requirement — exact schemes over subsets of the
// consumers' grouping keys plus the vacuous entry from local
// aggregation — with win counters on the locally winning ones.
func TestHistoryRecordingAlg2(t *testing.T) {
	_, _, m := optimizeCSE(t, scriptS1, DefaultOptions())
	shared := m.SharedGroups()
	if len(shared) != 1 {
		t.Fatalf("shared groups = %d", len(shared))
	}
	g := shared[0]
	if len(g.History) == 0 {
		t.Fatal("no history recorded")
	}
	var sawAny, sawExactB, sawFull bool
	totalWins := 0
	for _, h := range g.History {
		totalWins += h.Wins
		p := h.Req.Part
		switch {
		case h.Req.IsAny():
			sawAny = true
		case p.Kind == props.PartHash && p.Exact && p.Cols.Equal(props.NewColSet("B")):
			sawExactB = true
		case p.Kind == props.PartHash && p.Exact && p.Cols.Len() == 2:
			sawFull = true
		}
		if p.Kind == props.PartHash && !p.Exact {
			t.Errorf("history entry %v not expanded to an exact scheme", h.Req)
		}
	}
	if !sawAny {
		t.Error("history should include the vacuous entry (local-aggregation consumers)")
	}
	if !sawExactB {
		t.Error("history should include exact {B} (the compromise scheme)")
	}
	if !sawFull {
		t.Error("history should include the consumers' full key sets")
	}
	if totalWins == 0 {
		t.Error("phase-1 winners should have bumped win counters")
	}
}

// TestPinnedSpoolSharedByPointer checks that in the winning phase-2
// plan both consumers reference the *same* spool node (same winner
// context), which is what makes sharing executable.
func TestPinnedSpoolSharedByPointer(t *testing.T) {
	_, res, _ := optimizeCSE(t, scriptS1, DefaultOptions())
	spools := plan.FindAll(res.Plan, relop.KindPhysSpool)
	if len(spools) != 1 {
		t.Fatalf("distinct spool nodes = %d, want 1", len(spools))
	}
	// Two references from above: RefCount of the spool kind is 2.
	if got := plan.RefCount(res.Plan, relop.KindPhysSpool); got != 2 {
		t.Errorf("spool references = %v, want 2", got)
	}
}

// TestWinnerIsolationAcrossPins checks that different pin
// combinations never share winners: optimizing the same group under
// two pins yields plans honoring each pin.
func TestWinnerIsolationAcrossPins(t *testing.T) {
	m := buildScript(t, scriptS1)
	o := New(m, DefaultOptions())
	if _, err := o.Run(); err != nil {
		t.Fatal(err)
	}
	shared := m.SharedGroups()[0]
	pinB := props.Required{Part: props.ExactHashPartitioning(props.NewColSet("B"))}
	pinAB := props.Required{Part: props.ExactHashPartitioning(props.NewColSet("A", "B"))}
	wB := o.optimizeGroup(shared.ID, props.Ext(pinB), 2)
	wAB := o.optimizeGroup(shared.ID, props.Ext(pinAB), 2)
	if wB.Plan == nil || wAB.Plan == nil {
		t.Fatal("pinned optimizations must succeed")
	}
	if wB.Plan == wAB.Plan {
		t.Error("different pins must not share a winner")
	}
	if !wB.Plan.Dlvd.Part.Cols.Equal(props.NewColSet("B")) {
		t.Errorf("pin {B} delivered %v", wB.Plan.Dlvd)
	}
	if !wAB.Plan.Dlvd.Part.Cols.Equal(props.NewColSet("A", "B")) {
		t.Errorf("pin {A,B} delivered %v", wAB.Plan.Dlvd)
	}
	// Repeated calls hit the winner cache (same pointer).
	if again := o.optimizeGroup(shared.ID, props.Ext(pinB), 2); again.Plan != wB.Plan {
		t.Error("same pin should return the cached winner")
	}
}

// TestEnforceGeneratesSatisfyingVariants unit-tests the enforcer
// machinery on a bare extract plan.
func TestEnforceGeneratesSatisfyingVariants(t *testing.T) {
	m := buildScript(t, `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
OUTPUT R0 TO "o";
`)
	o := New(m, DefaultOptions())
	if _, err := o.Run(); err != nil {
		t.Fatal(err)
	}
	// Find the extract group and fetch its unconstrained winner.
	var exG *memo.Group
	for _, g := range m.Groups() {
		if g.Exprs[0].Op.Kind() == relop.KindExtract {
			exG = g
		}
	}
	base := o.optimizeGroup(exG.ID, props.ExtAny(), 1).Plan
	req := props.Required{
		Part:  props.HashPartitioning(props.NewColSet("A", "B")),
		Order: props.NewOrdering("B", "A"),
	}
	cands := o.enforce(base, req)
	var satisfying int
	for _, c := range cands {
		if c.Dlvd.Satisfies(req) {
			satisfying++
			if plan.TreeCost(c) <= plan.TreeCost(base) {
				t.Error("enforcers must add cost")
			}
		}
	}
	if satisfying < 2 {
		t.Errorf("expected several satisfying variants (sort/exchange orders), got %d", satisfying)
	}
	// compensate picks a satisfying one.
	comp := o.compensate(base, req)
	if comp == nil || !comp.Dlvd.Satisfies(req) {
		t.Fatalf("compensate failed: %v", comp)
	}
	// Already-satisfying input is returned untouched.
	if got := o.compensate(comp, req); got != comp {
		t.Error("compensate should be identity on satisfying plans")
	}
	// Unsatisfiable requirement (broadcast from enforcers is
	// possible; random is not requestable) — exact hash over a
	// missing column cannot be enforced.
	bad := props.Required{Part: props.ExactHashPartitioning(props.NewColSet("Z"))}
	if got := o.compensate(base, bad); got != nil {
		t.Errorf("compensate to a missing column should fail, got %v", got.Dlvd)
	}
}

// TestBroadcastJoinChosenForTinyInner builds a join with a tiny inner
// relation: the optimizer should pick a broadcast join rather than
// repartitioning the large probe side.
func TestBroadcastJoinChosenForTinyInner(t *testing.T) {
	cat := testCatalog()
	cat.Put("dim.log", &stats.TableStats{
		Rows: 100,
		Columns: map[string]stats.ColumnStats{
			"K": {Distinct: 100, AvgBytes: 8},
			"V": {Distinct: 100, AvgBytes: 8},
		},
	})
	src := `
FACTS = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
DIM = EXTRACT K,V FROM "dim.log" USING LogExtractor;
J = SELECT A, V FROM FACTS, DIM WHERE FACTS.A = DIM.K;
OUTPUT J TO "o";
`
	m, err := buildWith(src, cat)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.EnableCSE = false
	res, err := Optimize(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The winning plan must broadcast the dimension side and leave
	// the fact table unexchanged.
	broadcasts := 0
	for _, n := range plan.Operators(res.Plan) {
		if re, ok := n.Op.(*relop.Repartition); ok {
			if re.To.Kind == props.PartBroadcast {
				broadcasts++
			} else {
				t.Errorf("unexpected non-broadcast exchange %v in broadcast-join plan:\n%s",
					re.To, plan.Format(res.Plan))
			}
		}
	}
	if broadcasts != 1 {
		t.Errorf("broadcast exchanges = %d, want 1:\n%s", broadcasts, plan.Format(res.Plan))
	}
}

// TestHistoryCapRespected bounds history growth under many consumer
// contexts.
func TestHistoryCapRespected(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxHistoryPerGroup = 5
	_, _, m := optimizeCSE(t, scriptS1, opts)
	for _, g := range m.SharedGroups() {
		if len(g.History) > 5 {
			t.Errorf("history length %d exceeds cap 5", len(g.History))
		}
	}
}

// TestOrderedOutputUsesRangePartitioning checks the parallel path to
// a globally sorted file: for a large result the optimizer should
// range-partition on the output order rather than gathering one
// serial stream.
func TestOrderedOutputUsesRangePartitioning(t *testing.T) {
	src := `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,Sum(D) as S FROM R0 GROUP BY A,B;
OUTPUT R TO "sorted.out" ORDER BY B, A;
`
	res, err := Optimize(buildScript(t, src), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePlan(res.Plan); err != nil {
		t.Fatal(err)
	}
	ranges := 0
	for _, n := range plan.Operators(res.Plan) {
		if re, ok := n.Op.(*relop.Repartition); ok && re.To.Kind == props.PartRange {
			ranges++
			if !re.To.SortCols.Satisfies(props.NewOrdering("B", "A")) {
				t.Errorf("range keys %v should lead with the output order", re.To.SortCols)
			}
		}
		if re, ok := n.Op.(*relop.Repartition); ok && re.To.Kind == props.PartSerial {
			t.Errorf("large sorted output should not gather serially:\n%s", plan.Format(res.Plan))
		}
	}
	if ranges == 0 {
		t.Errorf("expected a range exchange:\n%s", plan.Format(res.Plan))
	}
	out := plan.FindAll(res.Plan, relop.KindPhysOutput)[0]
	if out.Children[0].Dlvd.Part.Kind != props.PartRange {
		t.Errorf("output input partitioning = %v, want range", out.Children[0].Dlvd.Part)
	}
}
