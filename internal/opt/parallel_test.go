package opt

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/plan"
	"repro/internal/stats"
)

// The bench micro-scripts (Fig. 6 S2–S4, Fig. 5), duplicated here
// because internal/bench imports this package.
const scriptS2 = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,A,Sum(S) as S1 FROM R GROUP BY B,A;
R2 = SELECT A,C,Sum(S) as S2 FROM R GROUP BY A,C;
R3 = SELECT A,Sum(S) as S3 FROM R GROUP BY A;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
OUTPUT R3 TO "result3.out";
`

const scriptS3 = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,C,Sum(S) as S1 FROM R GROUP BY B,C;
R2 = SELECT B,A,Sum(S) as S2 FROM R GROUP BY B,A;
RR = SELECT R1.B,A,C,S1,S2 FROM R1,R2 WHERE R1.B=R2.B;
T0 = EXTRACT A,B,C,D FROM "test2.log" USING LogExtractor;
T = SELECT A,B,C,Sum(D) as S FROM T0 GROUP BY A,B,C;
T1 = SELECT B,C,Sum(S) as S1 FROM T GROUP BY B,C;
T2 = SELECT B,A,Sum(S) as S2 FROM T GROUP BY B,A;
TT = SELECT T1.B,A,C,S1,S2 FROM T1,T2 WHERE T1.B=T2.B;
OUTPUT RR TO "result1.out";
OUTPUT TT TO "result2.out";
`

const scriptS4 = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,C,Sum(S) as S1 FROM R GROUP BY B,C;
R2 = SELECT B,A,Sum(S) as S2 FROM R GROUP BY B,A;
RR = SELECT R1.B,A,C FROM R1,R2 WHERE R1.B=R2.B;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
OUTPUT RR TO "result3.out";
`

const scriptFig5 = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) as S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) as S2 FROM R GROUP BY B,C;
T0 = EXTRACT A,B,C,D FROM "test2.log" USING LogExtractor;
T = SELECT A,B,C,Sum(D) as S FROM T0 GROUP BY A,B,C;
T1 = SELECT A,B,Sum(S) as S1 FROM T GROUP BY A,B;
T2 = SELECT B,C,Sum(S) as S2 FROM T GROUP BY B,C;
OUTPUT R1 TO "o1";
OUTPUT R2 TO "o2";
OUTPUT T1 TO "o3";
OUTPUT T2 TO "o4";
`

// sweepCase is one (name, script, catalog) the equivalence sweeps run.
type sweepCase struct {
	name   string
	script string
	cat    *stats.Catalog
}

func sweepCases(t *testing.T) []sweepCase {
	t.Helper()
	cases := []sweepCase{
		{"S1", scriptS1, testCatalog()},
		{"S2", scriptS2, testCatalog()},
		{"S3", scriptS3, testCatalog()},
		{"S4", scriptS4, testCatalog()},
		{"Fig5", scriptFig5, testCatalog()},
	}
	for seed := int64(1); seed <= 4; seed++ {
		w := datagen.RandomWorkload(seed, 8)
		cases = append(cases, sweepCase{fmt.Sprintf("rand%d", seed), w.Script, w.Cat})
	}
	return cases
}

func optimizeAt(t *testing.T, c sweepCase, mutate func(*Options)) *Result {
	t.Helper()
	m, err := buildWith(c.script, c.cat)
	if err != nil {
		t.Fatalf("%s: %v", c.name, err)
	}
	opts := DefaultOptions()
	if mutate != nil {
		mutate(&opts)
	}
	res, err := Optimize(m, opts)
	if err != nil {
		t.Fatalf("%s: %v", c.name, err)
	}
	return res
}

// TestParallelRoundEquivalence is the tentpole determinism guarantee:
// plans, costs, round traces, and search counters are bit-identical at
// every round-evaluation pool width.
func TestParallelRoundEquivalence(t *testing.T) {
	widths := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, c := range sweepCases(t) {
		base := optimizeAt(t, c, func(o *Options) { o.Workers = 1 })
		for _, w := range widths[1:] {
			got := optimizeAt(t, c, func(o *Options) { o.Workers = w })
			if got.Cost != base.Cost {
				t.Errorf("%s workers=%d: cost %v, serial %v", c.name, w, got.Cost, base.Cost)
			}
			if gf, bf := plan.Format(got.Plan), plan.Format(base.Plan); gf != bf {
				t.Errorf("%s workers=%d: plan differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s", c.name, w, bf, gf)
			}
			if !reflect.DeepEqual(got.Rounds, base.Rounds) {
				t.Errorf("%s workers=%d: round traces differ from serial\nserial:   %+v\nparallel: %+v", c.name, w, base.Rounds, got.Rounds)
			}
			if !reflect.DeepEqual(got.Stats, base.Stats) {
				t.Errorf("%s workers=%d: stats differ from serial\nserial:   %+v\nparallel: %+v", c.name, w, base.Stats, got.Stats)
			}
		}
	}
}

// TestBudgetExpiryDeterminism exercises the budget expiring before any
// round runs: every width must produce the same valid fallback plan,
// flag the exhaustion, and leave a synthetic Fallback trace (which does
// not count toward Stats.Rounds).
func TestBudgetExpiryDeterminism(t *testing.T) {
	c := sweepCase{"S1", scriptS1, testCatalog()}
	var base *Result
	for _, w := range []int{1, 4} {
		res := optimizeAt(t, c, func(o *Options) {
			o.Workers = w
			o.Timeout = time.Nanosecond
		})
		if res.Plan == nil {
			t.Fatalf("workers=%d: no plan under expired budget", w)
		}
		if !res.Stats.BudgetExhausted {
			t.Errorf("workers=%d: BudgetExhausted not set", w)
		}
		if res.Stats.Rounds != 0 {
			t.Errorf("workers=%d: %d rounds ran under a 1ns budget", w, res.Stats.Rounds)
		}
		fallbacks := 0
		for _, r := range res.Rounds {
			if r.Fallback {
				fallbacks++
			}
		}
		if fallbacks == 0 {
			t.Errorf("workers=%d: no Fallback trace recorded; traces: %+v", w, res.Rounds)
		}
		if base == nil {
			base = res
			continue
		}
		if res.Cost != base.Cost || !reflect.DeepEqual(res.Rounds, base.Rounds) {
			t.Errorf("workers=%d: expired-budget result differs from serial", w)
		}
	}
}

// TestRoundPruningAblation: pruning never changes the chosen plan or
// its cost — it only replaces the exact cost of provably-worse rounds
// with +Inf — and the full engine does prune on the micro-scripts.
func TestRoundPruningAblation(t *testing.T) {
	prunedTotal := 0
	for _, c := range sweepCases(t)[:5] {
		full := optimizeAt(t, c, nil)
		noPrune := optimizeAt(t, c, func(o *Options) { o.DisableRoundPruning = true })
		if full.Cost != noPrune.Cost {
			t.Errorf("%s: pruning changed cost: %v vs %v", c.name, full.Cost, noPrune.Cost)
		}
		if plan.Format(full.Plan) != plan.Format(noPrune.Plan) {
			t.Errorf("%s: pruning changed the plan", c.name)
		}
		if noPrune.Stats.RoundsPruned != 0 {
			t.Errorf("%s: no-prune run reports %d pruned rounds", c.name, noPrune.Stats.RoundsPruned)
		}
		if full.Stats.Rounds != noPrune.Stats.Rounds {
			t.Errorf("%s: pruning changed round count: %d vs %d", c.name, full.Stats.Rounds, noPrune.Stats.Rounds)
		}
		for i, r := range full.Rounds {
			if r.Pruned && !math.IsInf(r.Cost, 1) {
				t.Errorf("%s: round %d pruned with finite cost %v", c.name, i, r.Cost)
			}
			if r.Pruned && r.Best {
				t.Errorf("%s: round %d both pruned and best", c.name, i)
			}
		}
		prunedTotal += full.Stats.RoundsPruned
	}
	if prunedTotal == 0 {
		t.Error("branch-and-bound never pruned a round across the micro-scripts")
	}
}

// TestWinnerReuseAblation: cross-round winner reuse only skips
// recomputation — the plan and cost are unchanged — and it cuts
// phase-2 optimization tasks by a large factor.
func TestWinnerReuseAblation(t *testing.T) {
	for _, c := range []sweepCase{
		{"S1", scriptS1, testCatalog()},
		{"Fig5", scriptFig5, testCatalog()},
	} {
		full := optimizeAt(t, c, nil)
		noReuse := optimizeAt(t, c, func(o *Options) { o.DisableWinnerReuse = true })
		if full.Cost != noReuse.Cost {
			t.Errorf("%s: winner reuse changed cost: %v vs %v", c.name, full.Cost, noReuse.Cost)
		}
		if full.Stats.Phase2Tasks >= noReuse.Stats.Phase2Tasks {
			t.Errorf("%s: reuse did not reduce phase-2 tasks: %d (reuse) vs %d (no reuse)",
				c.name, full.Stats.Phase2Tasks, noReuse.Stats.Phase2Tasks)
		}
	}
}

// TestOptionsNormalize: every capped knob gets its default from the
// single normalize path.
func TestOptionsNormalize(t *testing.T) {
	o := DefaultOptions()
	if o.MaxRoundsPerLCA != 256 {
		t.Errorf("MaxRoundsPerLCA = %d, want 256", o.MaxRoundsPerLCA)
	}
	if o.MaxHistoryPerReq != 16 || o.MaxHistoryPerGroup != 24 {
		t.Errorf("history caps = %d/%d, want 16/24", o.MaxHistoryPerReq, o.MaxHistoryPerGroup)
	}
	if o.Workers < 1 {
		t.Errorf("Workers = %d, want >= 1", o.Workers)
	}
	// Zero-valued knobs passed straight to Optimize are normalized the
	// same way: a zero-worker option must behave like the default, not
	// dead-lock the batch engine.
	res, err := Optimize(buildScript(t, scriptS1), Options{
		EnableCSE: true,
		Cluster:   o.Cluster,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || res.Cost <= 0 {
		t.Fatal("normalized zero options produced no plan")
	}
}
