package opt

import "repro/internal/obs"

// This file adapts Stats to the unified observability layer. The
// public fields stay the source of truth; Snapshot/Publish/String are
// derived views so CLIs and registries report optimizer effort in the
// same shape as executor and cache metrics.

// Snapshot converts the stats to a unified metrics snapshot under the
// "opt." prefix.
func (s Stats) Snapshot() obs.Snapshot {
	out := obs.NewSnapshot()
	out.Counters["opt.shared_groups"] = int64(s.SharedGroups)
	out.Counters["opt.rounds"] = int64(s.Rounds)
	out.Counters["opt.rounds_pruned"] = int64(s.RoundsPruned)
	out.Counters["opt.naive_combinations"] = int64(s.NaiveCombinations)
	out.Counters["opt.phase1_tasks"] = int64(s.Phase1Tasks)
	out.Counters["opt.phase2_tasks"] = int64(s.Phase2Tasks)
	var exhausted int64
	if s.BudgetExhausted {
		exhausted = 1
	}
	out.Counters["opt.budget_exhausted"] = exhausted
	return out
}

// Publish folds the stats into a registry (nil-safe).
func (s Stats) Publish(r *obs.Registry) { r.Record(s.Snapshot()) }

// String renders the stats in the stable snapshot layout.
func (s Stats) String() string { return s.Snapshot().String() }
