package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RangeMap returns the rangemap analyzer: map iteration whose order
// can reach an order-sensitive sink — an emitted stream (Write,
// Fprintf, channel send), a string being concatenated, or a slice
// that is never sorted — breaks the repository's bit-identical-
// at-any-width guarantee, because Go randomizes map iteration order
// per run.
//
// The analyzer flags a `for ... range m` over a map when its body
//
//   - appends to a slice declared outside the loop that the enclosing
//     function never passes to a sort (sort.*, slices.*, or any
//     function whose name mentions Sort),
//   - concatenates onto a string declared outside the loop,
//   - writes through an emission method (Write, WriteString,
//     WriteByte, WriteRune, Print, Printf, Println) or fmt's printing
//     functions, or
//   - sends on a channel.
//
// Aggregation into maps, counters, deletes, and sorted-key collection
// all pass. The analyzer runs repo-wide: every package either emits
// output, fingerprints plans, or feeds something that does.
func RangeMap() *Analyzer {
	a := &Analyzer{
		Name: "rangemap",
		Doc:  "map iteration order must not reach output, emission, or an unsorted slice",
	}
	a.Run = func(pass *Pass) error {
		forEachFunc(pass, func(decl *ast.FuncDecl) {
			sorted := sortedObjects(pass.Info, decl.Body)
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.Info.Types[rng.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRangeBody(pass, rng, sorted)
				return true
			})
		})
		return nil
	}
	return a
}

// sortedObjects collects every object that appears inside the
// arguments of a sort-establishing call in body.
func sortedObjects(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSortCall(info, call) {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil {
						out[obj] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

// emissionMethods are method names that put bytes on an output stream
// in iteration order.
var emissionMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
}

// fmtEmitters are fmt functions that emit rather than return their
// formatting.
var fmtEmitters = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, sorted map[types.Object]bool) {
	inLoop := func(obj types.Object) bool {
		return obj == nil || (obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End())
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(rng.For, "map iteration order reaches a channel send at line %d; iterate over sorted keys",
				pass.Fset.Position(s.Pos()).Line)
		case *ast.AssignStmt:
			checkAssignSink(pass, rng, s, sorted, inLoop)
		case *ast.CallExpr:
			checkCallSink(pass, rng, s)
		}
		return true
	})
}

// checkAssignSink flags `x = append(x, ...)` to a never-sorted outer
// slice and `s += ...` onto an outer string.
func checkAssignSink(pass *Pass, rng *ast.RangeStmt, s *ast.AssignStmt, sorted map[types.Object]bool, inLoop func(types.Object) bool) {
	if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 {
		if tv, ok := pass.Info.Types[s.Lhs[0]]; ok {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				if obj := baseObj(pass.Info, s.Lhs[0]); !inLoop(obj) {
					pass.Reportf(rng.For, "map iteration order reaches string concatenation onto %q at line %d; iterate over sorted keys",
						exprText(s.Lhs[0]), pass.Fset.Position(s.Pos()).Line)
				}
			}
		}
		return
	}
	for i, rhs := range s.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
			continue
		}
		if i >= len(s.Lhs) && len(s.Lhs) != 1 {
			continue
		}
		lhs := s.Lhs[0]
		if len(s.Lhs) > i {
			lhs = s.Lhs[i]
		}
		// The lifetime that matters is the root variable's: appends to
		// r.Rows where r is built inside this iteration never observe
		// iteration order across keys. The sorted-later exemption also
		// keys on the root (sort.Sort(byName(c.nodes)) mentions c).
		obj := baseObj(pass.Info, lhs)
		fieldObj := exprObj(pass.Info, lhs)
		if inLoop(obj) || sorted[obj] || sorted[fieldObj] {
			continue
		}
		name := exprText(lhs)
		pass.Reportf(rng.For, "map iteration order reaches %q via append and %q is never sorted in this function; sort it or iterate over sorted keys",
			name, name)
	}
}

// checkCallSink flags emission calls inside the loop body.
func checkCallSink(pass *Pass, rng *ast.RangeStmt, call *ast.CallExpr) {
	if fn := calleeOf(pass.Info, call); fn != nil {
		if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" && fmtEmitters[fn.Name()] {
			pass.Reportf(rng.For, "map iteration order reaches fmt.%s at line %d; iterate over sorted keys",
				fn.Name(), pass.Fset.Position(call.Pos()).Line)
			return
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && emissionMethods[fn.Name()] {
			pass.Reportf(rng.For, "map iteration order reaches %s.%s at line %d; iterate over sorted keys",
				recvTypeName(sig), fn.Name(), pass.Fset.Position(call.Pos()).Line)
		}
	}
}

// recvTypeName names a method's receiver type for messages.
func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
