package vet

import (
	"go/ast"
	"go/types"
	"regexp"
)

var guardedRE = regexp.MustCompile(`guarded by (\w+)`)

// LockHeld returns the lockheld analyzer, which makes the
//
//	// guarded by mu
//
// field comment a checked convention: a field so annotated may only
// be touched from a method of its struct that either acquires the
// named mutex somewhere in its body (recv.mu.Lock or recv.mu.RLock)
// or declares by its name — a Locked suffix — that the caller holds
// it. The check is intentionally flow-insensitive: it cannot prove
// the lock is held *at* the access, but it catches the common real
// bug of a new method (or a fast path added to an old one) reaching
// shared state with no locking at all, which is exactly how the
// pre-PR-2 Cluster metrics race slipped in.
//
// The analyzer runs repo-wide; packages without annotations are
// unaffected. Access through anything other than the receiver (a
// constructor building a fresh value, another instance of the same
// type) is out of scope — a value that has not escaped needs no lock,
// and the annotation documents the instance's own mutex.
func LockHeld() *Analyzer {
	a := &Analyzer{
		Name: "lockheld",
		Doc:  "fields annotated `guarded by mu` are accessed only with the mutex acquired",
	}
	a.Run = func(pass *Pass) error {
		guards := collectGuards(pass)
		if len(guards) == 0 {
			return nil
		}
		forEachFunc(pass, func(decl *ast.FuncDecl) {
			checkMethodLocks(pass, decl, guards)
		})
		return nil
	}
	return a
}

// collectGuards maps each struct type object to its guarded fields
// (field name → mutex field name).
func collectGuards(pass *Pass) map[types.Object]map[string]string {
	out := map[types.Object]map[string]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			typeObj := pass.Info.Defs[ts.Name]
			if typeObj == nil {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardNameOf(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if out[typeObj] == nil {
						out[typeObj] = map[string]string{}
					}
					out[typeObj][name.Name] = mu
				}
			}
			return true
		})
	}
	return out
}

// guardNameOf extracts the mutex name from a field's doc or trailing
// comment, or "" when the field is unannotated.
func guardNameOf(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkMethodLocks flags receiver accesses to guarded fields from
// methods that neither acquire the guarding mutex nor carry the
// Locked-suffix contract.
func checkMethodLocks(pass *Pass, decl *ast.FuncDecl, guards map[types.Object]map[string]string) {
	if decl.Recv == nil || len(decl.Recv.List) != 1 || len(decl.Recv.List[0].Names) != 1 {
		return
	}
	recvType := decl.Recv.List[0].Type
	if st, ok := recvType.(*ast.StarExpr); ok {
		recvType = st.X
	}
	typeIdent, ok := recvType.(*ast.Ident)
	if !ok {
		return
	}
	fields := guards[pass.Info.Uses[typeIdent]]
	if fields == nil {
		return
	}
	recvObj := pass.Info.Defs[decl.Recv.List[0].Names[0]]
	if recvObj == nil {
		return
	}
	if len(decl.Name.Name) > 6 && decl.Name.Name[len(decl.Name.Name)-6:] == "Locked" {
		return
	}
	// Which guard mutexes does the body acquire through the receiver?
	held := map[string]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := muSel.X.(*ast.Ident)
		if !ok || pass.Info.ObjectOf(base) != recvObj {
			return true
		}
		held[muSel.Sel.Name] = true
		return true
	})
	reported := map[string]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok || pass.Info.ObjectOf(base) != recvObj {
			return true
		}
		mu, guarded := fields[sel.Sel.Name]
		if !guarded || held[mu] || reported[sel.Sel.Name] {
			return true
		}
		reported[sel.Sel.Name] = true
		pass.Reportf(sel.Pos(), "%s.%s is guarded by %s, but method %s never acquires %s.%s (and is not named *Locked)",
			typeIdent.Name, sel.Sel.Name, mu, decl.Name.Name, decl.Recv.List[0].Names[0].Name, mu)
		return true
	})
}
