// Package vettest runs a scopevet analyzer over a fixture package and
// compares its findings against `// want "regexp"` comments, the
// analysistest convention:
//
//	for k := range m { // want `map iteration order`
//
// Every finding must match a want on its line and every want must be
// matched by a finding. Fixtures live under testdata/src/<analyzer>/
// (the go tool ignores testdata, so fixtures never enter the build)
// and are typechecked from source; module-local imports resolve
// because tests run with their working directory inside the module.
package vettest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"testing"

	"repro/internal/vet"
)

var wantRE = regexp.MustCompile("// want `([^`]*)`")

// Run analyzes the fixture package in dir with a (package filters do
// not apply; fixtures are analyzed unconditionally) and reports any
// mismatch against the fixture's want comments through t. Suppression
// directives are honored, so fixtures can cover them.
func Run(t *testing.T, dir string, a *vet.Analyzer) {
	t.Helper()
	pkg, err := loadFixture(dir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	res, err := vet.Run([]*vet.Package{pkg}, []*vet.Analyzer{{
		// Strip the package filter but keep the name so suppression
		// directives in fixtures match.
		Name: a.Name, Doc: a.Doc, Run: a.Run, Finish: a.Finish,
	}})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}
	wants := collectWants(t, pkg)
	matchFindings(t, res.Diags, wants)
}

// loadFixture parses and typechecks every .go file directly in dir as
// one package.
func loadFixture(dir string) (*vet.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	path := "fixture/" + filepath.Base(dir)
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &vet.Package{Path: path, Dir: dir, Fset: fset, Files: files, Pkg: tpkg, Info: info}, nil
}

// want is one expectation: a file, a line, and a message pattern.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func collectWants(t *testing.T, pkg *vet.Package) []*want {
	t.Helper()
	var out []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pkg.Fset.Position(c.Pos()), m[1], err)
					}
					p := pkg.Fset.Position(c.Pos())
					out = append(out, &want{file: p.Filename, line: p.Line, re: re})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

func matchFindings(t *testing.T, diags []vet.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want `%s`", w.file, w.line, w.re)
		}
	}
}
