package vet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// dummyAnalyzer flags every call to an identifier named bad.
func dummyAnalyzer() *Analyzer {
	a := &Analyzer{Name: "dummy", Doc: "flags calls to bad()"}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "bad" {
					pass.Reportf(call.Pos(), "call to bad")
				}
				return true
			})
		}
		return nil
	}
	return a
}

// loadSrc parses src as one single-file package named path. The
// framework never dereferences Pkg/Info itself, so a dummy analyzer
// needs no typechecking.
func loadSrc(t *testing.T, path, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: path, Fset: fset, Files: []*ast.File{f}}
}

func TestSuppressionAndDirectiveFindings(t *testing.T) {
	src := `package p

func f() {
	bad()
	//scopevet:ignore dummy reviewed fixture reason
	bad()
	bad() //scopevet:ignore dummy same-line reason
	//scopevet:ignore dummy this one suppresses nothing
	ok()
	//scopevet:ignore nosuch unknown analyzer name
	//scopevet:ignore dummy
}
`
	res, err := Run([]*Package{loadSrc(t, "t", src)}, []*Analyzer{dummyAnalyzer()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Suppressed != 2 {
		t.Errorf("Suppressed = %d, want 2 (line-above and same-line directives)", res.Suppressed)
	}
	wants := []struct {
		line     int
		analyzer string
		substr   string
	}{
		{4, "dummy", "call to bad"},
		{8, "scopevet", "unused scopevet:ignore dummy directive"},
		{10, "scopevet", `unknown analyzer "nosuch"`},
		{11, "scopevet", "has no reason"},
	}
	if len(res.Diags) != len(wants) {
		t.Fatalf("got %d findings, want %d:\n%v", len(res.Diags), len(wants), res.Diags)
	}
	for i, w := range wants {
		d := res.Diags[i]
		if d.Pos.Line != w.line || d.Analyzer != w.analyzer || !strings.Contains(d.Message, w.substr) {
			t.Errorf("finding %d = %s, want line %d analyzer %s containing %q", i, d, w.line, w.analyzer, w.substr)
		}
	}
}

func TestMalformedDirective(t *testing.T) {
	src := `package p

//scopevet:ignoredummy not even a directive shape
func f() {}
`
	res, err := Run([]*Package{loadSrc(t, "t", src)}, []*Analyzer{dummyAnalyzer()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) != 1 || !strings.Contains(res.Diags[0].Message, "malformed scopevet:ignore") {
		t.Fatalf("want one malformed-directive finding, got %v", res.Diags)
	}
}

func TestPackageFilter(t *testing.T) {
	a := dummyAnalyzer()
	a.Packages = []string{"repro/internal/exec"}
	src := "package p\n\nfunc f() { bad() }\n"
	in, out := loadSrc(t, "repro/internal/exec/sub", src), loadSrc(t, "repro/internal/executor", src)
	res, err := Run([]*Package{in, out}, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) != 1 {
		t.Fatalf("want 1 finding (prefix match is path-segment-aware), got %v", res.Diags)
	}
	if res.Diags[0].Pos.Filename != "repro/internal/exec/sub.go" {
		t.Errorf("finding came from %s, want the in-scope package", res.Diags[0].Pos.Filename)
	}
}

func TestFindingsSortedDeterministically(t *testing.T) {
	src := "package p\n\nfunc f() { bad(); bad() }\nfunc g() { bad() }\n"
	pkg := loadSrc(t, "t", src)
	// Two analyzers registered in both orders must produce identical
	// output.
	second := dummyAnalyzer()
	second.Name = "aaa"
	r1, err := Run([]*Package{pkg}, []*Analyzer{dummyAnalyzer(), second})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run([]*Package{pkg}, []*Analyzer{second, dummyAnalyzer()})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Diags) != 6 {
		t.Fatalf("want 6 findings (3 sites x 2 analyzers), got %d", len(r1.Diags))
	}
	for i := range r1.Diags {
		if r1.Diags[i].String() != r2.Diags[i].String() {
			t.Fatalf("ordering depends on registration order:\n%v\nvs\n%v", r1.Diags, r2.Diags)
		}
	}
}

func TestFinishHook(t *testing.T) {
	a := dummyAnalyzer()
	a.Finish = func(report func(Diagnostic)) {
		report(Diagnostic{Analyzer: a.Name, Pos: token.Position{Filename: "(global)"}, Message: "finish ran"})
	}
	res, err := Run([]*Package{loadSrc(t, "t", "package p\n\nfunc f() {}\n")}, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) != 1 || res.Diags[0].Message != "finish ran" {
		t.Fatalf("finish hook findings missing: %v", res.Diags)
	}
}
