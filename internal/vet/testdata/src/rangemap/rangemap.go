// Fixture for the rangemap analyzer: map iteration order must not
// reach output, emission, or an unsorted slice.
package rangemap

import (
	"fmt"
	"sort"
	"strings"
)

// flagAppendUnsorted appends map keys to an outer slice and never
// sorts it — classic order leak.
func flagAppendUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order reaches "out" via append and "out" is never sorted`
		out = append(out, k)
	}
	return out
}

// okAppendSorted collects keys and sorts before returning — the
// canonical deterministic iteration pattern.
func okAppendSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// okSortSlice passes the collected slice to sort.Slice, which also
// counts as sorting.
func okSortSlice(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// flagEmit prints during iteration: bytes hit the stream in map
// order.
func flagEmit(m map[string]int) {
	for k, v := range m { // want `map iteration order reaches fmt.Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

// flagBuilder writes through a strings.Builder during iteration.
func flagBuilder(m map[string]int) string {
	var sb strings.Builder
	for k := range m { // want `map iteration order reaches Builder.WriteString`
		sb.WriteString(k)
	}
	return sb.String()
}

// flagConcat concatenates onto an outer string.
func flagConcat(m map[string]int) string {
	s := ""
	for k := range m { // want `map iteration order reaches string concatenation onto "s"`
		s += k
	}
	return s
}

// flagSend sends map elements on a channel in iteration order.
func flagSend(m map[string]int, ch chan string) {
	for k := range m { // want `map iteration order reaches a channel send`
		ch <- k
	}
}

// okAggregate builds another map and counters — order-insensitive.
func okAggregate(m map[string]int) (map[string]int, int) {
	inv := map[string]int{}
	total := 0
	for k, v := range m {
		inv[k] = v * 2
		total += v
	}
	return inv, total
}

// okLoopLocal appends to a slice whose lifetime is one iteration, so
// cross-key order never matters.
func okLoopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		for _, v := range vs {
			local = append(local, v)
		}
		n += len(local)
	}
	return n
}

// okFieldOfLoopLocal appends to a field of a struct built inside the
// iteration — the root variable is loop-local, so no leak.
func okFieldOfLoopLocal(m map[string]int) int {
	type row struct{ cells []string }
	n := 0
	for k := range m {
		r := &row{}
		r.cells = append(r.cells, k)
		n += len(r.cells)
	}
	return n
}

// okSliceRange ranges over a slice, not a map.
func okSliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// suppressed demonstrates the reviewed-suppression escape hatch.
func suppressed(m map[string]int) []string {
	var out []string
	//scopevet:ignore rangemap fixture exercising the suppression path
	for k := range m {
		out = append(out, k)
	}
	return out
}
