// Fixture for the lockheld analyzer: fields annotated `guarded by mu`
// are accessed only from methods that acquire the mutex or carry the
// Locked-suffix contract.
package lockheld

import "sync"

// store is the annotated struct under test.
type store struct {
	mu    sync.RWMutex
	items map[string]int // guarded by mu
	n     int            // guarded by mu
	name  string         // unguarded: free to access
}

// Get locks before reading — fine.
func (s *store) Get(k string) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.items[k]
	return v, ok
}

// Put locks before writing — fine.
func (s *store) Put(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items[k] = v
	s.n++
}

// Race reads a guarded field with no lock anywhere in the body.
func (s *store) Race() int {
	return len(s.items) // want `store.items is guarded by mu, but method Race never acquires s.mu`
}

// Flip locks for one field but touches another guarded field too —
// still flagged only if the mutex is never acquired, so this passes
// the flow-insensitive check by design (documented limitation).
func (s *store) Flip() {
	s.mu.Lock()
	s.n = -s.n
	s.mu.Unlock()
	s.n++ // flow-insensitive: mu was acquired somewhere, so not flagged
}

// Count touches two guarded fields with no lock: one finding per
// field.
func (s *store) Count() int {
	total := s.n          // want `store.n is guarded by mu, but method Count never acquires s.mu`
	total += len(s.items) // want `store.items is guarded by mu, but method Count never acquires s.mu`
	return total
}

// sizeLocked declares by name that the caller holds the lock.
func (s *store) sizeLocked() int {
	return len(s.items)
}

// Name touches only the unguarded field.
func (s *store) Name() string {
	return s.name
}

// newStore is a constructor: not a method, so receiver-based guard
// checking does not apply (the value has not escaped yet).
func newStore() *store {
	s := &store{items: map[string]int{}}
	s.n = 0
	return s
}

// suppressedPeek exercises the suppression directive.
func (s *store) suppressedPeek() int {
	//scopevet:ignore lockheld fixture exercising the suppression path
	return s.n
}
