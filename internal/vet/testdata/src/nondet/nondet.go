// Fixture for the nondet analyzer: no wall clock, math/rand, or %p
// formatting in deterministic-output packages. The test registers
// "fixture/nondet.allowedMeter" on the allowlist.
package nondet

import (
	"fmt"
	"math/rand"
	"time"
)

// flagNow reads the wall clock outside the allowlist.
func flagNow() int64 {
	return time.Now().UnixNano() // want `time.Now in deterministic package`
}

// flagSince measures a duration outside the allowlist.
func flagSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since in deterministic package`
}

// flagRand draws from math/rand.
func flagRand() int {
	return rand.Intn(10) // want `math/rand in deterministic package`
}

// flagPointerFormat keys output on an allocation address.
func flagPointerFormat(v *int) string {
	return fmt.Sprintf("id-%p", v) // want `%p formats an allocation address`
}

// allowedMeter is on the test's allowlist: metering wall-clock
// durations at a reviewed site is legitimate.
func allowedMeter() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// okDeterministic touches none of the flagged constructs.
func okDeterministic(xs []int) int {
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// okDurationArithmetic uses time values without reading the clock.
func okDurationArithmetic(d time.Duration) time.Duration {
	return d * 2
}

// suppressedNow exercises the suppression directive.
func suppressedNow() time.Time {
	//scopevet:ignore nondet fixture exercising the suppression path
	return time.Now()
}
