// Fixture for the diagcode analyzer: constant diagnostic codes at
// lint.Report.Add/Addf call sites must be registered in the P/S/V
// catalogs.
package diagcode

import "repro/internal/lint"

// flagOrphanAddf passes a constant code no catalog registers.
func flagOrphanAddf(r *lint.Report) {
	r.Addf("Z9", "fixture", lint.Warning, "", "orphan code") // want `diagnostic code "Z9" is not registered in any analyzer catalog`
}

// flagOrphanAdd builds a literal Diagnostic with an orphan code.
func flagOrphanAdd(r *lint.Report) {
	r.Add(lint.Diagnostic{Code: "Q1", Analyzer: "fixture", Severity: lint.Error, Message: "orphan"}) // want `diagnostic code "Q1" is not registered in any analyzer catalog`
}

// okRegisteredPlanCode uses a catalog plan code.
func okRegisteredPlanCode(r *lint.Report) {
	r.Addf("P1", "fixture", lint.Error, "", "registered plan code")
}

// okReservedCode uses the reserved parse code through its constant.
func okReservedCode(r *lint.Report) {
	r.Add(lint.Diagnostic{Code: lint.CodeParse, Analyzer: "fixture", Severity: lint.Error, Message: "parse"})
}

// okValidationCode uses a validation code string.
func okValidationCode(r *lint.Report) {
	r.Addf("V3", "fixture", lint.Warning, "", "validation code")
}

// okDynamicCode threads a catalog entry's Code field through — the
// framework's own plumbing, trusted because it is not a constant.
func okDynamicCode(r *lint.Report, a *lint.ScriptAnalyzer) {
	r.Addf(a.Code, a.Name, lint.Warning, "", "dynamic")
}

// okNonReportAdd calls an Add method on an unrelated type.
type bag struct{ xs []string }

func (b *bag) Add(s string)   { b.xs = append(b.xs, s) }
func okNonReportAdd(b *bag)   { b.Add("Z9") }
func okNonReportOther(b *bag) { b.Add("anything") }

// suppressedOrphan exercises the suppression directive.
func suppressedOrphan(r *lint.Report) {
	//scopevet:ignore diagcode fixture exercising the suppression path
	r.Addf("Z8", "fixture", lint.Warning, "", "suppressed orphan")
}
