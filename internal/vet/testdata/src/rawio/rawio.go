// Fixture for the rawio analyzer: file IO must flow through the
// metered FileStore, not package os.
package rawio

import (
	"os"
	"strings"
)

// flagReadFile reads a host file directly.
func flagReadFile(path string) ([]byte, error) {
	return os.ReadFile(path) // want `os.ReadFile bypasses the metered FileStore`
}

// flagOpen opens a host file directly.
func flagOpen(path string) (*os.File, error) {
	return os.Open(path) // want `os.Open bypasses the metered FileStore`
}

// flagWriteFile writes a host file directly.
func flagWriteFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644) // want `os.WriteFile bypasses the metered FileStore`
}

// flagRemove deletes a host file directly.
func flagRemove(path string) error {
	return os.Remove(path) // want `os.Remove bypasses the metered FileStore`
}

// okEnviron uses package os for something other than file IO.
func okEnviron() string {
	return os.Getenv("HOME")
}

// okStoreLike models the FileStore pattern: an in-memory map, no os
// calls.
type okStoreLike struct {
	files map[string]string
}

func (s *okStoreLike) get(path string) (string, bool) {
	v, ok := s.files[path]
	return v, ok
}

// okNonOSOpen calls a local function that happens to be named Open.
func okNonOSOpen(path string) string {
	return open(path)
}

func open(path string) string {
	return strings.TrimSpace(path)
}

// suppressedReadFile exercises the suppression directive.
func suppressedReadFile(path string) ([]byte, error) {
	//scopevet:ignore rawio fixture exercising the suppression path
	return os.ReadFile(path)
}

// The cases below model the query event log writer: the sink must
// persist its JSONL history through the metered store, not by
// appending to a host file.

// flagSinkAppend is the forbidden shape — an event sink that opens a
// host file to append serialized events.
func flagSinkAppend(path string, line []byte) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644) // want `os.OpenFile bypasses the metered FileStore`
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(append(line, '\n'))
	return err
}

// flagSinkTruncate is the forbidden shape for sink rotation.
func flagSinkTruncate(path string) (*os.File, error) {
	return os.Create(path) // want `os.Create bypasses the metered FileStore`
}

// okSinkStore is the sanctioned shape: buffer lines in memory and
// flush them through a metered store interface.
type okSinkStore struct {
	lines []string
	put   func(path string, rows []string) error
}

func (s *okSinkStore) submit(line string) {
	s.lines = append(s.lines, line)
}

func (s *okSinkStore) flush(path string) error {
	return s.put(path, s.lines)
}
