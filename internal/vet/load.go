package vet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, typechecked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	GoFiles    []string
}

// cachingImporter resolves module-local imports from the packages the
// loader has already typechecked and defers everything else (the
// standard library) to the stdlib source importer. Load typechecks in
// `go list -deps` post-order, so a module dependency is always in the
// cache before its importers are checked — each package is checked
// exactly once.
type cachingImporter struct {
	cache map[string]*types.Package
	src   types.ImporterFrom
}

func (ci *cachingImporter) Import(path string) (*types.Package, error) {
	return ci.ImportFrom(path, "", 0)
}

func (ci *cachingImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := ci.cache[path]; ok {
		return pkg, nil
	}
	return ci.src.ImportFrom(path, dir, mode)
}

// Load resolves patterns (e.g. "./...") with `go list` run in dir and
// parses and typechecks every matched non-stdlib package from source.
// Only non-test Go files are analyzed: the analyzers enforce
// production invariants, and tests legitimately use time, rand, and
// unsorted iteration. Standard-library dependencies are typechecked
// on demand by the stdlib source importer, which resolves import
// paths through the go command — dir must lie inside a module.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, false, patterns)
	if err != nil {
		return nil, err
	}
	targetSet := map[string]bool{}
	for _, lp := range targets {
		targetSet[lp.ImportPath] = true
	}
	listed, err := goList(dir, true, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	srcImp, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("source importer does not implement ImporterFrom")
	}
	imp := &cachingImporter{cache: map[string]*types.Package{}, src: srcImp}
	var out []*Package
	for _, lp := range listed {
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", lp.ImportPath, err)
		}
		imp.cache[lp.ImportPath] = pkg
		// Module dependencies outside the requested patterns are
		// typechecked (the cache needs them) but not analyzed.
		if targetSet[lp.ImportPath] {
			out = append(out, &Package{
				Path: lp.ImportPath, Dir: lp.Dir,
				Fset: fset, Files: files, Pkg: pkg, Info: info,
			})
		}
	}
	return out, nil
}

// goList shells out to `go list -json` in dir. With deps, the
// traversal lists every dependency in post-order (a package appears
// only after all its dependencies), which is what lets Load typecheck
// each module package exactly once.
func goList(dir string, deps bool, patterns []string) ([]listedPackage, error) {
	args := []string{"list"}
	if deps {
		args = append(args, "-deps")
	}
	args = append(args, "-json=ImportPath,Dir,Standard,GoFiles")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var out []listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("go list -json decode: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}
