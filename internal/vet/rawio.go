package vet

import (
	"go/ast"
)

// rawIOFuncs are the os entry points that would bypass the metered
// simulated file system.
var rawIOFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true,
	"ReadFile": true, "WriteFile": true, "Remove": true, "RemoveAll": true,
}

// RawIO returns the rawio analyzer: inside the execution substrate,
// the cross-query cache, and the query event log, every byte read or
// written must flow through exec.FileStore so the disk meters (and
// the cost model they calibrate) stay truthful. Direct os file IO
// there is either a metering leak or an accidental dependency on the
// real host file system inside the deterministic simulator. (The
// eventlog sink persists its JSONL history as a FileStore table;
// exporting it to a host file is the caller's job — cmd/scoped does
// it at shutdown, outside the audited packages.)
func RawIO() *Analyzer {
	a := &Analyzer{
		Name:     "rawio",
		Doc:      "exec, share, and obs/eventlog must do file IO through the metered FileStore, not package os",
		Packages: []string{"repro/internal/exec", "repro/internal/share", "repro/internal/obs/eventlog"},
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeOf(pass.Info, call)
				if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "os" && rawIOFuncs[fn.Name()] {
					pass.Reportf(call.Pos(), "os.%s bypasses the metered FileStore; simulated IO in %s must be metered",
						fn.Name(), pass.Pkg.Path())
				}
				return true
			})
		}
		return nil
	}
	return a
}
