package vet

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// calleeOf resolves the static callee of a call expression, or nil
// for calls through function values, builtins, and conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function (or
// method) path.name.
func isPkgFunc(fn *types.Func, path, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == path && fn.Name() == name
}

// funcDisplayName renders a declared function for allowlists and
// messages: "pkgpath.Func" for functions, "pkgpath.Recv.Method" for
// methods (pointer receivers spelled without the star).
func funcDisplayName(pkg *types.Package, decl *ast.FuncDecl) string {
	name := decl.Name.Name
	if decl.Recv != nil && len(decl.Recv.List) == 1 {
		t := decl.Recv.List[0].Type
		if st, ok := t.(*ast.StarExpr); ok {
			t = st.X
		}
		if id, ok := t.(*ast.Ident); ok {
			name = id.Name + "." + name
		}
	}
	return pkg.Path() + "." + name
}

// constString returns the compile-time string value of an expression,
// or "" and false when the expression is not a string constant.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// exprObj resolves the object a plain identifier or field selector
// denotes, or nil for anything more complex.
func exprObj(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(x)
	case *ast.SelectorExpr:
		return info.ObjectOf(x.Sel)
	}
	return nil
}

// baseObj resolves the root variable of an lvalue — the object whose
// lifetime decides whether a write outlives a loop iteration: x for
// x, x.f, x.f.g, and x[i]; nil for anything rootless.
func baseObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprText renders a simple lvalue for messages (base identifier plus
// selectors); falls back to the base name.
func exprText(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprText(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprText(x.X)
	}
	return "?"
}

// forEachFunc visits every function declaration with a body in the
// pass's files.
func forEachFunc(pass *Pass, fn func(decl *ast.FuncDecl)) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// isSortCall reports whether a call plausibly establishes an order:
// anything from package sort or slices, or any function or method
// whose name mentions Sort (the repo's own canonical-order helpers).
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	if fn := calleeOf(info, call); fn != nil {
		if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "sort" || pkg.Path() == "slices") {
			return true
		}
		if strings.Contains(fn.Name(), "Sort") {
			return true
		}
	}
	// Function values: fall back on the spelled name.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return strings.Contains(sel.Sel.Name, "Sort")
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		return strings.Contains(id.Name, "Sort")
	}
	return false
}

// containsObj reports whether the expression tree mentions obj.
func containsObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
