package vet_test

import (
	"testing"

	"repro/internal/vet"
	"repro/internal/vet/vettest"
)

// Each analyzer is exercised on a fixture package holding both
// flagging and non-flagging cases, matched against `// want` comments
// analysistest-style. Suppression directives are live in fixtures, so
// each fixture also carries one suppressed finding.

func TestRangeMapFixture(t *testing.T) {
	vettest.Run(t, "testdata/src/rangemap", vet.RangeMap())
}

func TestNondetFixture(t *testing.T) {
	// The fixture's allowedMeter function stands in for the reviewed
	// metering sites of DefaultNondetAllow.
	vettest.Run(t, "testdata/src/nondet", vet.Nondet([]string{"fixture/nondet.allowedMeter"}))
}

func TestRawIOFixture(t *testing.T) {
	vettest.Run(t, "testdata/src/rawio", vet.RawIO())
}

func TestLockHeldFixture(t *testing.T) {
	vettest.Run(t, "testdata/src/lockheld", vet.LockHeld())
}

func TestDiagCodeFixture(t *testing.T) {
	vettest.Run(t, "testdata/src/diagcode", vet.DiagCode())
}

// TestCatalog pins the suite's shape: five analyzers, unique names,
// documented.
func TestCatalog(t *testing.T) {
	as := vet.Analyzers()
	if len(as) != 5 {
		t.Fatalf("expected 5 analyzers, got %d", len(as))
	}
	seen := map[string]bool{}
	for _, a := range as {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v missing name or doc", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Name == "scopevet" {
			t.Errorf("analyzer name %q collides with the directive-checker pseudo-analyzer", a.Name)
		}
	}
}
