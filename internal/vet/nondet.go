package vet

import (
	"go/ast"
	"strings"
)

// nondetPackages are the paths whose outputs the repository promises
// are bit-identical run to run: the optimizer (plans, costs, round
// traces), the plan representation (printing, JSON, fingerprints),
// the executor (results, meters), and the span-identity paths of the
// observability layer.
var nondetPackages = []string{
	"repro/internal/opt",
	"repro/internal/plan",
	"repro/internal/exec",
	"repro/internal/obs",
}

// DefaultNondetAllow is the reviewed allowlist of wall-clock metering
// sites: functions that legitimately read the clock because they
// measure durations (optimizer budget, span timestamps) rather than
// derive identities or output from it. TreeString and the determinism
// tests never compare timestamps, so these sites cannot leak
// nondeterminism into compared output. Every entry is re-justified in
// DESIGN.md §9.
func DefaultNondetAllow() []string {
	return []string{
		// Span timestamps: exported to Chrome trace JSON, omitted from
		// the deterministic TreeString rendering.
		"repro/internal/obs.NewTracer",
		"repro/internal/obs.Tracer.Start",
		"repro/internal/obs.Span.End",
		// Event timestamps: the sole clock read of the query event log.
		// Canonical() zeroes the field before any byte comparison, so
		// event streams stay deterministic modulo this timestamp.
		"repro/internal/obs/eventlog.nowMicros",
		// Optimizer wall-clock: the phase-2 time budget and the
		// reported optimization duration.
		"repro/internal/opt.Optimizer.Run",
		"repro/internal/opt.Optimizer.expired",
	}
}

// Nondet returns the nondet analyzer: inside the deterministic-output
// packages, calls to time.Now/Since/Until, any use of math/rand, and
// %p pointer formatting are flagged unless the enclosing function is
// on the allowlist. Pointer formatting is singled out because a %p
// inside a span ID or plan rendering silently keys output on
// allocation addresses, which differ every run.
func Nondet(allow []string) *Analyzer {
	allowed := map[string]bool{}
	for _, name := range allow {
		allowed[name] = true
	}
	a := &Analyzer{
		Name:     "nondet",
		Doc:      "no wall clock, math/rand, or %p formatting in deterministic-output packages",
		Packages: nondetPackages,
	}
	a.Run = func(pass *Pass) error {
		forEachFunc(pass, func(decl *ast.FuncDecl) {
			if allowed[funcDisplayName(pass.Pkg, decl)] {
				return
			}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.CallExpr:
					if fn := calleeOf(pass.Info, x); fn != nil && fn.Pkg() != nil {
						switch {
						case fn.Pkg().Path() == "time" &&
							(fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until"):
							pass.Reportf(x.Pos(), "time.%s in deterministic package %s; meter durations only at allowlisted sites",
								fn.Name(), pass.Pkg.Path())
						case fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2":
							pass.Reportf(x.Pos(), "math/rand in deterministic package %s; outputs must not depend on random state",
								pass.Pkg.Path())
						}
					}
					for _, arg := range x.Args {
						if s, ok := constString(pass.Info, arg); ok && strings.Contains(s, "%p") {
							pass.Reportf(arg.Pos(), "%%p formats an allocation address, which differs every run; derive identities from plan or group IDs")
						}
					}
				}
				return true
			})
		})
		return nil
	}
	return a
}
