// Package vet is the repository's Go-source static-analysis suite
// (scopevet): custom analyzers that mechanically enforce the
// repo-wide disciplines every PR's correctness claims rest on —
// results and traces bit-identical at any worker-pool width, all
// simulated IO metered through exec.FileStore, shared state accessed
// under its documented mutex, and every lint diagnostic carrying a
// registered catalog code.
//
// The package mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) on the standard library alone, because
// the repository vendors no third-party modules. Packages are loaded
// and typechecked from source via go/types with the stdlib source
// importer; `go list` resolves module import paths, so analysis must
// run from inside the module (cmd/scopevet chdirs to the module root).
//
// Findings are suppressed in source with
//
//	//scopevet:ignore <analyzer> <reason>
//
// on the flagged line or the line immediately above it. A suppression
// is a reviewed decision, so the reason is mandatory; malformed or
// misspelled directives are themselves findings (analyzer
// "scopevet"), which keeps dead suppressions from accumulating.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding: the analyzer that produced it, a source
// position, and a message.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in "file:line:col: message [analyzer]"
// compiler format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Analyzer is one named check over a typechecked package.
type Analyzer struct {
	// Name is the analyzer's short lower-case name; suppression
	// directives reference it.
	Name string
	// Doc is a one-line description for catalogs and CLI help.
	Doc string
	// Packages lists the import-path prefixes the analyzer audits;
	// empty means every package. The runner applies the filter, so
	// fixture tests exercise analyzers on packages outside it.
	Packages []string
	// Run analyzes one package.
	Run func(*Pass) error
	// Finish, when non-nil, runs once after every package has been
	// analyzed, for whole-program checks (e.g. catalog duplicates).
	Finish func(report func(Diagnostic))
}

// appliesTo reports whether the analyzer audits the package path.
func (a *Analyzer) appliesTo(path string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is one parsed //scopevet:ignore comment.
type ignoreDirective struct {
	file     string
	line     int
	analyzer string
	used     bool
}

var ignoreRE = regexp.MustCompile(`^//scopevet:ignore\s+(\S+)(\s+(\S.*))?$`)

// parseIgnores collects the suppression directives of a file set and
// reports malformed ones (missing reason, or nothing after the
// marker) through report.
func parseIgnores(fset *token.FileSet, files []*ast.File, known map[string]bool, report func(Diagnostic)) []*ignoreDirective {
	var out []*ignoreDirective
	bad := func(pos token.Pos, format string, args ...any) {
		report(Diagnostic{Analyzer: "scopevet", Pos: fset.Position(pos),
			Message: fmt.Sprintf(format, args...)})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//scopevet:ignore") {
					continue
				}
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					bad(c.Pos(), "malformed scopevet:ignore directive: want //scopevet:ignore <analyzer> <reason>")
					continue
				}
				if m[3] == "" {
					bad(c.Pos(), "scopevet:ignore %s has no reason; suppressions must document why", m[1])
					continue
				}
				if known != nil && !known[m[1]] {
					bad(c.Pos(), "scopevet:ignore names unknown analyzer %q", m[1])
					continue
				}
				p := fset.Position(c.Pos())
				out = append(out, &ignoreDirective{file: p.Filename, line: p.Line, analyzer: m[1]})
			}
		}
	}
	return out
}

// Result is the outcome of one Run: the surviving findings plus how
// many were suppressed by directives.
type Result struct {
	Diags      []Diagnostic
	Suppressed int
}

// Run executes every analyzer over every loaded package (respecting
// each analyzer's package filter), applies suppression directives,
// runs Finish hooks, and returns findings sorted by position. An
// unused suppression directive is itself a finding: stale ignores
// must not outlive the code they excused.
func Run(pkgs []*Package, analyzers []*Analyzer) (*Result, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	res := &Result{}
	var raw []Diagnostic
	collect := func(d Diagnostic) { raw = append(raw, d) }

	var ignores []*ignoreDirective
	for _, pkg := range pkgs {
		ignores = append(ignores, parseIgnores(pkg.Fset, pkg.Files, known, collect)...)
	}
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			if !a.appliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				report:   collect,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish != nil {
			a.Finish(collect)
		}
	}
	res.Diags, res.Suppressed = applyIgnores(raw, ignores)
	for _, ig := range ignores {
		if !ig.used {
			res.Diags = append(res.Diags, Diagnostic{
				Analyzer: "scopevet",
				Pos:      token.Position{Filename: ig.file, Line: ig.line, Column: 1},
				Message:  fmt.Sprintf("unused scopevet:ignore %s directive suppresses nothing", ig.analyzer),
			})
		}
	}
	sortDiags(res.Diags)
	return res, nil
}

// applyIgnores drops findings covered by a directive on the same line
// or the line immediately above, marking the directives used.
func applyIgnores(diags []Diagnostic, ignores []*ignoreDirective) ([]Diagnostic, int) {
	var kept []Diagnostic
	suppressed := 0
	for _, d := range diags {
		matched := false
		for _, ig := range ignores {
			if ig.analyzer != d.Analyzer || ig.file != d.Pos.Filename {
				continue
			}
			if ig.line == d.Pos.Line || ig.line == d.Pos.Line-1 {
				ig.used = true
				matched = true
			}
		}
		if matched {
			suppressed++
		} else {
			kept = append(kept, d)
		}
	}
	return kept, suppressed
}

// sortDiags orders findings by file, line, column, analyzer, message
// — deterministic regardless of analyzer registration order.
func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Analyzers returns the full scopevet catalog in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		RangeMap(),
		Nondet(DefaultNondetAllow()),
		RawIO(),
		LockHeld(),
		DiagCode(),
	}
}
