package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint"
	"repro/internal/opt"
)

// registeredCodes returns every diagnostic code the repository's
// catalogs register — script and plan analyzers plus the reserved
// parse code (internal/lint) and the validation codes (internal/opt)
// — together with a duplicate list if any code is registered twice.
func registeredCodes() (set map[string]bool, dups []string) {
	var all []string
	for _, a := range lint.ScriptAnalyzers() {
		all = append(all, a.Code)
	}
	for _, a := range lint.PlanAnalyzers() {
		all = append(all, a.Code)
	}
	all = append(all, lint.ReservedCodes()...)
	all = append(all, opt.ValidationCodes()...)
	set = map[string]bool{}
	for _, c := range all {
		if set[c] {
			dups = append(dups, c)
		}
		set[c] = true
	}
	sort.Strings(dups)
	return set, dups
}

// DiagCode returns the diagcode analyzer: every lint.Report.Add and
// Addf call site whose code is a compile-time constant must use a
// code registered in the P/S/V catalogs (an orphan code would render
// in reports but match no documentation, no -disable flag, and no
// catalog test), and the catalogs themselves must hold no duplicate
// codes. Call sites that thread a catalog entry's Code field through
// dynamically are the framework's own plumbing and are trusted.
func DiagCode() *Analyzer {
	a := &Analyzer{
		Name:     "diagcode",
		Doc:      "lint diagnostics carry codes registered in the P/S/V analyzer catalogs",
		Packages: []string{"repro"},
	}
	registered, dups := registeredCodes()
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeOf(pass.Info, call)
				if !isReportMethod(fn) {
					return true
				}
				switch fn.Name() {
				case "Addf":
					if len(call.Args) == 0 {
						return true
					}
					if code, ok := constString(pass.Info, call.Args[0]); ok && !registered[code] {
						pass.Reportf(call.Args[0].Pos(),
							"diagnostic code %q is not registered in any analyzer catalog; register it or use a catalog entry's Code", code)
					}
				case "Add":
					if len(call.Args) != 1 {
						return true
					}
					checkDiagnosticLiteral(pass, call.Args[0], registered)
				}
				return true
			})
		}
		return nil
	}
	a.Finish = func(report func(Diagnostic)) {
		for _, c := range dups {
			report(Diagnostic{
				Analyzer: a.Name,
				Pos:      token.Position{Filename: "internal/lint(catalogs)"},
				Message:  "diagnostic code " + c + " is registered more than once across the P/S/V catalogs",
			})
		}
	}
	return a
}

// isReportMethod reports whether fn is (*lint.Report).Add or Addf.
func isReportMethod(fn *types.Func) bool {
	if fn == nil || (fn.Name() != "Add" && fn.Name() != "Addf") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Report" && obj.Pkg() != nil && obj.Pkg().Path() == "repro/internal/lint"
}

// checkDiagnosticLiteral inspects a lint.Diagnostic composite literal
// passed to Report.Add for a constant Code field.
func checkDiagnosticLiteral(pass *Pass, arg ast.Expr, registered map[string]bool) {
	e := ast.Unparen(arg)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	lit, ok := e.(*ast.CompositeLit)
	if !ok {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Code" {
			continue
		}
		if code, ok := constString(pass.Info, kv.Value); ok && !registered[code] {
			pass.Reportf(kv.Value.Pos(),
				"diagnostic code %q is not registered in any analyzer catalog; register it or use a catalog entry's Code", code)
		}
	}
}
