// Package core implements the paper's contribution: the framework
// that lets a Cascades-style optimizer exploit common subexpressions
// in a cost-based way.
//
// The four steps of Fig. 2 map onto this package and internal/opt:
//
//	Step 1  IdentifyCommonSubexpressions (Alg. 1)   — this package
//	Step 2  history recording during phase 1        — internal/opt,
//	        using ExpandHistory from this package (Sec. V)
//	Step 3  PropagateSharedGroups + LCAs (Alg. 3)   — this package
//	Step 4  phase-2 re-optimization rounds           — internal/opt,
//	        driven by RoundPlanner from this package (Sec. VII–VIII)
package core

import (
	"repro/internal/memo"
	"repro/internal/relop"
)

// fpModulus is the prime modulus N of Definition 1, large enough that
// FileIDs and OpIDs never collide with each other.
const fpModulus = uint64(1<<61 - 1) // Mersenne prime 2^61-1

// Fingerprints computes the Definition 1 fingerprint of every live
// group's subexpression, bottom-up over the memo DAG:
//
//	leaf (file read):  F = FileID mod N
//	otherwise:         F = (OpID ⊕ ⨁ᵢ F(childᵢ)) mod N
//
// Each group's *initial* expression is used, as Alg. 1 runs before any
// exploration has added alternatives. Equal expressions always get
// equal fingerprints; unequal expressions may collide (the XOR of
// children is order-insensitive, and all group-bys share one OpID),
// which is why Alg. 1 deep-compares colliding entries.
func Fingerprints(m *memo.Memo) map[memo.GroupID]uint64 {
	fps := make(map[memo.GroupID]uint64, m.NumGroups())
	var compute func(g memo.GroupID) uint64
	compute = func(g memo.GroupID) uint64 {
		if fp, ok := fps[g]; ok {
			return fp
		}
		e := m.Group(g).Exprs[0]
		var fp uint64
		if ex, ok := e.Op.(*relop.Extract); ok {
			fp = uint64(ex.FileID) % fpModulus
		} else {
			x := uint64(e.Op.Kind())
			for _, c := range e.Children {
				x ^= compute(c)
			}
			fp = x % fpModulus
		}
		fps[g] = fp
		return fp
	}
	for _, g := range m.Groups() {
		compute(g.ID)
	}
	return fps
}

// StructurallyEqual reports whether the subexpressions rooted at a and
// b compute the same result: their initial operators have equal
// signatures and their children are pairwise structurally equal. It
// is the deep comparison Alg. 1 applies to fingerprint collisions
// (line 5), memoized over group pairs.
func StructurallyEqual(m *memo.Memo, a, b memo.GroupID) bool {
	cache := map[[2]memo.GroupID]bool{}
	var eq func(a, b memo.GroupID) bool
	eq = func(a, b memo.GroupID) bool {
		if a == b {
			return true
		}
		k := [2]memo.GroupID{a, b}
		if a > b {
			k = [2]memo.GroupID{b, a}
		}
		if v, ok := cache[k]; ok {
			return v
		}
		// Seed false to terminate would-be cycles; the memo DAG is
		// acyclic so this is only a safeguard.
		cache[k] = false
		ea, eb := m.Group(a).Exprs[0], m.Group(b).Exprs[0]
		ok := ea.Op.Sig() == eb.Op.Sig() && len(ea.Children) == len(eb.Children)
		if ok {
			for i := range ea.Children {
				if !eq(ea.Children[i], eb.Children[i]) {
					ok = false
					break
				}
			}
		}
		cache[k] = ok
		return ok
	}
	return eq(a, b)
}
