package core

import (
	"testing"

	"repro/internal/logical"
	"repro/internal/relop"
	"repro/internal/stats"
)

// stabilityCatalog returns one catalog shared by every build in a
// test — cross-script fingerprint stability is a per-session property
// and leaf FileIDs are assigned by the catalog.
func stabilityCatalog() *stats.Catalog {
	cat := stats.NewCatalog()
	for _, p := range []string{"test.log", "other.log"} {
		cat.Put(p, &stats.TableStats{Rows: 1_000_000, Columns: map[string]stats.ColumnStats{
			"A": {Distinct: 100, AvgBytes: 8},
			"B": {Distinct: 50, AvgBytes: 8},
			"C": {Distinct: 200, AvgBytes: 8},
			"D": {Distinct: 1 << 30, AvgBytes: 8},
		}})
	}
	return cat
}

// groupByKeys builds src against cat and returns the GroupBy group's
// Definition-1 fingerprint and canonical signature — the two halves
// of the cross-query cache key for the aggregation subexpression,
// which is what a session cache would share. (Scripts may differ
// above it: SELECT B,A adds a consumer-side column-reorder Project
// that is not part of the shared computation.)
func groupByKeys(t *testing.T, cat *stats.Catalog, src string) (uint64, string) {
	t.Helper()
	m, err := logical.BuildSource(src, cat)
	if err != nil {
		t.Fatalf("build %q: %v", src, err)
	}
	fps, sigs := Fingerprints(m), CanonicalSignatures(m)
	for _, g := range m.Groups() {
		if g.Exprs[0].Op.Kind() == relop.KindGroupBy {
			return fps[g.ID], sigs[g.ID]
		}
	}
	t.Fatalf("no GroupBy group in %q", src)
	return 0, ""
}

// TestFingerprintStableAcrossEquivalentScripts: semantically
// identical scripts — reordered projection lists, commuted top-level
// conjuncts, renamed aliases — must produce equal Definition-1
// fingerprints, or a session cache could never recognize reuse.
func TestFingerprintStableAcrossEquivalentScripts(t *testing.T) {
	cat := stabilityCatalog()
	base := `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,Sum(D) as S FROM R0 WHERE A > 1 AND B < 5 GROUP BY A,B;
OUTPUT R TO "o";
`
	fp0, sig0 := groupByKeys(t, cat, base)
	variants := map[string]string{
		"reordered projection": `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT B,A,Sum(D) as S FROM R0 WHERE A > 1 AND B < 5 GROUP BY A,B;
OUTPUT R TO "o";
`,
		"commuted conjuncts": `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,Sum(D) as S FROM R0 WHERE B < 5 AND A > 1 GROUP BY A,B;
OUTPUT R TO "o";
`,
		"renamed alias": `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,Sum(D) as T FROM R0 WHERE A > 1 AND B < 5 GROUP BY A,B;
OUTPUT R TO "o";
`,
		"renamed rowset": `
Q0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
Q = SELECT A,B,Sum(D) as S FROM Q0 WHERE A > 1 AND B < 5 GROUP BY A,B;
OUTPUT Q TO "o";
`,
	}
	for name, src := range variants {
		fp, _ := groupByKeys(t, cat, src)
		if fp != fp0 {
			t.Errorf("%s: fingerprint %x differs from base %x", name, fp, fp0)
		}
	}
	// Commuted conjuncts additionally agree on the canonical
	// signature (the full cache key), so they hit the cache.
	if _, sig := groupByKeys(t, cat, variants["commuted conjuncts"]); sig != sig0 {
		t.Errorf("commuted conjuncts: signature differs from base:\n%s\nvs\n%s", sig, sig0)
	}
	// Rowset names are binder-internal; they must not leak into the
	// signature either.
	if _, sig := groupByKeys(t, cat, variants["renamed rowset"]); sig != sig0 {
		t.Errorf("renamed rowset: signature differs from base:\n%s\nvs\n%s", sig, sig0)
	}
}

// TestFingerprintStableAcrossRepeatedBuilds: rebuilding the same
// script twice against one catalog yields identical keys (leaf
// FileIDs come from the catalog, not per-build discovery order).
func TestFingerprintStableAcrossRepeatedBuilds(t *testing.T) {
	cat := stabilityCatalog()
	src := `
R0 = EXTRACT A,B FROM "test.log" USING LogExtractor;
S0 = EXTRACT C,D FROM "other.log" USING LogExtractor;
R = SELECT A, Sum(D) as S FROM R0, S0 WHERE A == C GROUP BY A;
OUTPUT R TO "o";
`
	fp1, sig1 := groupByKeys(t, cat, src)
	fp2, sig2 := groupByKeys(t, cat, src)
	if fp1 != fp2 || sig1 != sig2 {
		t.Errorf("repeated build changed keys: fp %x vs %x", fp1, fp2)
	}
	// A script that touches other.log first must not renumber
	// test.log's leaf.
	warp := `
W = EXTRACT A,B FROM "other.log" USING LogExtractor;
OUTPUT W TO "w";
`
	if _, err := logical.BuildSource(warp, cat); err != nil {
		t.Fatal(err)
	}
	if fp3, _ := groupByKeys(t, cat, src); fp3 != fp1 {
		t.Errorf("fingerprint changed after unrelated build: %x vs %x", fp3, fp1)
	}
}

// TestNearMissScriptsDoNotShareCacheKeys: scripts that are close but
// not equivalent must differ in fingerprint or — when the kind-XOR
// fingerprint collides by design — in canonical signature, so the
// (fp, sig, schema) cache key never aliases them.
func TestNearMissScriptsDoNotShareCacheKeys(t *testing.T) {
	cat := stabilityCatalog()
	base := `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,Sum(D) as S FROM R0 WHERE A > 1 AND B < 5 GROUP BY A,B;
OUTPUT R TO "o";
`
	fp0, sig0 := groupByKeys(t, cat, base)
	nearMisses := map[string]string{
		"different constant": `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,Sum(D) as S FROM R0 WHERE A > 2 AND B < 5 GROUP BY A,B;
OUTPUT R TO "o";
`,
		"different predicate column": `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,Sum(D) as S FROM R0 WHERE C > 1 AND B < 5 GROUP BY A,B;
OUTPUT R TO "o";
`,
		"different grouping keys": `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,C,Sum(D) as S FROM R0 WHERE A > 1 AND B < 5 GROUP BY A,C;
OUTPUT R TO "o";
`,
		"different aggregate input": `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,Sum(C) as S FROM R0 WHERE A > 1 AND B < 5 GROUP BY A,B;
OUTPUT R TO "o";
`,
		"different source table": `
R0 = EXTRACT A,B,C,D FROM "other.log" USING LogExtractor;
R = SELECT A,B,Sum(D) as S FROM R0 WHERE A > 1 AND B < 5 GROUP BY A,B;
OUTPUT R TO "o";
`,
	}
	for name, src := range nearMisses {
		fp, sig := groupByKeys(t, cat, src)
		if fp == fp0 && sig == sig0 {
			t.Errorf("%s: collides with base on the full cache key (fp=%x)", name, fp)
		}
	}
	// The source-table variant must differ in the fingerprint itself:
	// leaves carry catalog FileIDs.
	if fp, _ := groupByKeys(t, cat, nearMisses["different source table"]); fp == fp0 {
		t.Errorf("different source table: fingerprints collide (%x)", fp)
	}
}

// TestCatalogFileIDStability pins the leaf-id contract Fingerprints
// relies on: ids are per-path, stable across repeated asks, distinct
// across paths.
func TestCatalogFileIDStability(t *testing.T) {
	cat := stabilityCatalog()
	a1 := cat.FileID("test.log")
	b1 := cat.FileID("other.log")
	if a1 == b1 {
		t.Errorf("distinct paths share FileID %d", a1)
	}
	if a2 := cat.FileID("test.log"); a2 != a1 {
		t.Errorf("FileID(test.log) moved %d -> %d", a1, a2)
	}
}
