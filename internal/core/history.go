package core

import "repro/internal/props"

// DefaultMaxHistoryPerReq caps how many concrete property sets one
// recorded requirement expands into; wide grouping keys would
// otherwise explode the history exponentially (the Sec. VIII budget
// machinery assumes the history is merely large, not unbounded).
const DefaultMaxHistoryPerReq = 16

// ExpandHistory implements the Sec. V recording rule: a range
// partitioning requirement [∅, S] stored at a shared group expands
// into one entry per concrete satisfying scheme — the exact ranges
// [{A},{A}], [{B},{B}], …, [S,S] of the paper's example — each paired
// with the requirement's sort order. Exact, serial, and vacuous
// requirements record as themselves.
//
// The vacuous requirement is recorded too: enforcing "anything" at
// the shared group in phase 2 reproduces the locally optimal shared
// plan, which is exactly the alternative earlier work [10,11,12]
// would pick, so the cost comparison subsumes it.
func ExpandHistory(req props.Required, maxEntries int) []props.Required {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxHistoryPerReq
	}
	p := req.Part
	if p.Kind != props.PartHash || p.Exact {
		return []props.Required{req}
	}
	subsets := p.Cols.Subsets(maxEntries)
	out := make([]props.Required, 0, len(subsets))
	for _, s := range subsets {
		out = append(out, props.Required{
			Part:  props.ExactHashPartitioning(s),
			Order: req.Order,
		})
	}
	return out
}
