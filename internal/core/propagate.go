package core

import (
	"sort"

	"repro/internal/memo"
)

// PropagateSharedGroups performs Step 3 (Fig. 2): it propagates the
// information about shared groups bottom-up from each shared group to
// the root (Algorithm 3), leaving on every group G the list of shared
// groups below G together with the consumers of each found below G,
// and it identifies the least common ancestor (Definition 2) of every
// shared group's consumer set.
//
// Deviation from the paper, documented in DESIGN.md: Algorithm 3's
// SetLCA overwrite rule is sensitive to child traversal order on DAGs
// like Fig. 3(c) (a sibling order exists under which the stale lower
// ancestor survives). Definition 2 — the lowest group included in
// every consumer-to-root path — is exactly the nearest common
// dominator of the consumers in the root-to-leaves orientation of the
// memo DAG, so the LCA is computed here with a standard iterative
// dominator analysis, which is deterministic and matches the paper's
// Fig. 3 examples. The bottom-up consumer propagation itself follows
// Algorithm 3.
func PropagateSharedGroups(m *memo.Memo) {
	m.ResetTraversal()
	propagate(m, m.Root)
	assignLCAs(m)
}

// propagate is the recursive body of Algorithm 3.
func propagate(m *memo.Memo, gid memo.GroupID) {
	g := m.Group(gid)
	if g.Visited { // lines 1–5
		return
	}
	g.Visited = true
	if g.Shared { // lines 6–10: a shared group tracks itself
		g.SharedBelow = append(g.SharedBelow,
			memo.NewSharedInfo(gid, append([]memo.GroupID{}, m.Parents(gid)...)))
	}
	for _, input := range childGroups(m, gid) { // line 11
		propagate(m, input) // line 12
		inG := m.Group(input)
		for _, si := range inG.SharedBelow { // lines 14–37
			entry := g.FindSharedBelow(si.Shared)
			if entry == nil { // lines 28–35: copy branch
				entry = si.Clone()
				g.SharedBelow = append(g.SharedBelow, entry)
			} else { // lines 17–26: merge branch
				for c, found := range si.Found {
					if found {
						entry.Found[c] = true
					}
				}
			}
			// G consumes the shared group directly when the child IS
			// the shared group (paper lines 31–33, applied in both
			// branches — the match branch needs it too when another
			// child already introduced the entry).
			if input == si.Shared {
				entry.Found[gid] = true
			}
		}
	}
}

// childGroups returns the distinct child groups referenced by any
// expression of g, in ascending order. Alternative expressions added
// by exploration rules (e.g. the local/global aggregation split)
// introduce helper groups; traversing every expression keeps their
// SharedBelow lists populated so phase-2 pin propagation can descend
// through whichever implementation is being costed.
func childGroups(m *memo.Memo, gid memo.GroupID) []memo.GroupID {
	seen := map[memo.GroupID]bool{}
	var out []memo.GroupID
	for _, e := range m.Group(gid).Exprs {
		for _, c := range e.Children {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// assignLCAs computes, for every shared group S, the LCA of its
// consumers per Definition 2, and records it both on S (Group.LCA)
// and on the LCA group (Group.LCAOf).
func assignLCAs(m *memo.Memo) {
	idom := dominators(m)
	// Depth in the dominator tree, for LCA walking.
	depth := map[memo.GroupID]int{m.Root: 0}
	var depthOf func(g memo.GroupID) int
	depthOf = func(g memo.GroupID) int {
		if d, ok := depth[g]; ok {
			return d
		}
		d := depthOf(idom[g]) + 1
		depth[g] = d
		return d
	}
	domLCA := func(a, b memo.GroupID) memo.GroupID {
		for a != b {
			if depthOf(a) < depthOf(b) {
				b = idom[b]
			} else {
				a = idom[a]
			}
		}
		return a
	}
	for _, s := range m.SharedGroups() {
		consumers := m.Parents(s.ID)
		if len(consumers) == 0 {
			continue
		}
		lca := consumers[0]
		for _, c := range consumers[1:] {
			lca = domLCA(lca, c)
		}
		s.LCA = lca
		lg := m.Group(lca)
		lg.LCAOf = append(lg.LCAOf, s.ID)
	}
	// Deterministic LCAOf order.
	for _, g := range m.Groups() {
		sort.Slice(g.LCAOf, func(i, j int) bool { return g.LCAOf[i] < g.LCAOf[j] })
	}
}

// dominators computes immediate dominators of every group reachable
// from the memo root, in the root→children orientation (an operator G
// dominates C when every path from C up to the root passes through
// G). Standard iterative algorithm (Cooper–Harvey–Kennedy) over
// reverse postorder.
func dominators(m *memo.Memo) map[memo.GroupID]memo.GroupID {
	// Reverse postorder of the root→children DFS.
	var order []memo.GroupID
	visited := map[memo.GroupID]bool{}
	var dfs func(g memo.GroupID)
	dfs = func(g memo.GroupID) {
		if visited[g] {
			return
		}
		visited[g] = true
		for _, c := range childGroups(m, g) {
			dfs(c)
		}
		order = append(order, g)
	}
	dfs(m.Root)
	// order is postorder; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoNum := map[memo.GroupID]int{}
	for i, g := range order {
		rpoNum[g] = i
	}

	idom := map[memo.GroupID]memo.GroupID{m.Root: m.Root}
	intersect := func(a, b memo.GroupID) memo.GroupID {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, g := range order {
			if g == m.Root {
				continue
			}
			// Predecessors in the root→children orientation are the
			// memo parents (restricted to reachable groups).
			var newIdom memo.GroupID = memo.NoGroup
			for _, p := range m.Parents(g) {
				if !visited[p] {
					continue
				}
				if _, ok := idom[p]; !ok {
					continue
				}
				if newIdom == memo.NoGroup {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom == memo.NoGroup {
				continue
			}
			if cur, ok := idom[g]; !ok || cur != newIdom {
				idom[g] = newIdom
				changed = true
			}
		}
	}
	return idom
}
