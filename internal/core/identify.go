package core

import (
	"sort"

	"repro/internal/memo"
	"repro/internal/relop"
)

// IdentifyCommonSubexpressions is Algorithm 1: it marks the root
// groups of all common subexpressions in the memo as shared, funneling
// every set of consumers through a single Spool group.
//
//  1. Explicitly shared groups (a group referenced by two or more
//     parent groups, like node 2 of the motivating script) are wrapped
//     in a Spool directly.
//  2. Structurally equal but distinct subexpressions (the same query
//     text written twice) are found via fingerprints: colliding
//     fingerprints are deep-compared, duplicates are merged into one
//     group, and consumers are redirected to a Spool on the survivor.
//
// The function returns the ids of the Spool groups marked shared.
func IdentifyCommonSubexpressions(m *memo.Memo) []memo.GroupID {
	spoolOf := map[memo.GroupID]memo.GroupID{}

	identifyExplicit(m, spoolOf)
	mergeDuplicates(m, spoolOf)
	garbageCollect(m)

	var shared []memo.GroupID
	for _, g := range m.SharedGroups() {
		shared = append(shared, g.ID)
	}
	sort.Slice(shared, func(i, j int) bool { return shared[i] < shared[j] })
	return shared
}

// spoolable reports whether a group may be wrapped in a Spool: it
// must produce rows (not a terminal Output/Sequence) and not already
// be a Spool.
func spoolable(g *memo.Group) bool {
	switch g.Exprs[0].Op.Kind() {
	case relop.KindSpool, relop.KindOutput, relop.KindSequence:
		return false
	}
	return true
}

// wrapSpool inserts a Spool group above g and redirects all of g's
// consumers to it (Alg. 1 lines 8–9).
func wrapSpool(m *memo.Memo, g memo.GroupID, spoolOf map[memo.GroupID]memo.GroupID) memo.GroupID {
	sp := m.Insert(&relop.Spool{}, []memo.GroupID{g}, m.Group(g).Props)
	m.Redirect(g, sp, sp)
	m.Group(sp).Shared = true
	spoolOf[g] = sp
	if m.Root == g {
		m.Root = sp
	}
	return sp
}

// ForceSpool wraps a live, spoolable group in a shared Spool even
// though Algorithm 1 found too few consumers to justify one. The
// workload-level optimizer (internal/mqo) uses it to pin a
// materialization whose extra consumers live in *other* scripts of the
// batch: within this script's memo the group may have a single parent,
// so garbageCollect would have elided (or never inserted) the spool.
// It returns the new Spool group's id, or memo.NoGroup when g cannot
// be wrapped (dead, not spoolable, or already funneled through a
// Spool).
func ForceSpool(m *memo.Memo, g memo.GroupID) memo.GroupID {
	gr := m.Group(g)
	if gr.Dead || !spoolable(gr) {
		return memo.NoGroup
	}
	for _, p := range m.Parents(g) {
		if m.Group(p).Exprs[0].Op.Kind() == relop.KindSpool {
			// Already consumed through a spool; marking it shared is
			// enough to guarantee the materialization exists.
			m.Group(p).Shared = true
			return p
		}
	}
	return wrapSpool(m, g, map[memo.GroupID]memo.GroupID{})
}

// identifyExplicit is the routine IdentifyExplicitCommSubexpr: every
// group directly referenced by more than one parent group gets a
// shared Spool.
func identifyExplicit(m *memo.Memo, spoolOf map[memo.GroupID]memo.GroupID) {
	// Snapshot ids first: wrapping mutates the group list.
	var ids []memo.GroupID
	for _, g := range m.Groups() {
		ids = append(ids, g.ID)
	}
	for _, id := range ids {
		g := m.Group(id)
		if g.Dead || !spoolable(g) {
			continue
		}
		if len(m.Parents(id)) > 1 {
			wrapSpool(m, id, spoolOf)
		}
	}
}

// mergeDuplicates finds structurally equal subexpressions via
// fingerprints and merges each equivalence class into a single shared
// Spool (Alg. 1 lines 2–11).
func mergeDuplicates(m *memo.Memo, spoolOf map[memo.GroupID]memo.GroupID) {
	fps := Fingerprints(m)
	// Bucket live, mergeable groups by fingerprint.
	buckets := map[uint64][]memo.GroupID{}
	for _, g := range m.Groups() {
		if !mergeable(g) {
			continue
		}
		fp := fps[g.ID]
		buckets[fp] = append(buckets[fp], g.ID)
	}
	// Deterministic bucket processing order.
	var keys []uint64
	for fp, ids := range buckets {
		if len(ids) > 1 {
			keys = append(keys, fp)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	// Partition each bucket into structural equivalence classes and
	// collect them, then merge classes bottom-up (ascending
	// representative id — the binder assigns children lower ids than
	// parents, so descendants merge before ancestors).
	var classes [][]memo.GroupID
	for _, fp := range keys {
		ids := buckets[fp]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		used := make([]bool, len(ids))
		for i := range ids {
			if used[i] {
				continue
			}
			class := []memo.GroupID{ids[i]}
			for j := i + 1; j < len(ids); j++ {
				if !used[j] && StructurallyEqual(m, ids[i], ids[j]) {
					class = append(class, ids[j])
					used[j] = true
				}
			}
			if len(class) > 1 {
				classes = append(classes, class)
			}
		}
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i][0] < classes[j][0] })

	for _, class := range classes {
		rep := class[0]
		if m.Group(rep).Dead {
			continue
		}
		// Redirect consumers of every duplicate to the
		// representative's Spool if it has one, else to the
		// representative directly.
		target := rep
		if sp, ok := spoolOf[rep]; ok {
			target = sp
		}
		merged := false
		for _, dup := range class[1:] {
			if m.Group(dup).Dead || dup == target {
				continue
			}
			m.Redirect(dup, target, memo.NoGroup)
			m.Kill(dup)
			// If the explicit pass gave the duplicate its own Spool,
			// fold that spool's consumers into the target too so no
			// Spool-over-Spool chain survives.
			if spDup, ok := spoolOf[dup]; ok {
				m.Redirect(spDup, target, memo.NoGroup)
				m.Kill(spDup)
				delete(spoolOf, dup)
			}
			merged = true
		}
		if !merged {
			continue
		}
		// The representative now carries every consumer; give it a
		// shared Spool unless the explicit pass already did.
		if target == rep && len(m.Parents(rep)) > 1 {
			wrapSpool(m, rep, spoolOf)
		}
	}
}

// mergeable reports whether a group participates in fingerprint-based
// duplicate merging. Terminal side-effecting operators never merge;
// Spools merge only through their inputs.
func mergeable(g *memo.Group) bool {
	switch g.Exprs[0].Op.Kind() {
	case relop.KindOutput, relop.KindSequence, relop.KindSpool:
		return false
	}
	return true
}

// garbageCollect kills groups unreachable from the root; duplicate
// merging can orphan whole subtrees, and orphans must not count as
// consumers during propagation (Alg. 3).
func garbageCollect(m *memo.Memo) {
	reachable := map[memo.GroupID]bool{}
	var mark func(g memo.GroupID)
	mark = func(g memo.GroupID) {
		if reachable[g] {
			return
		}
		reachable[g] = true
		for _, e := range m.Group(g).Exprs {
			for _, c := range e.Children {
				mark(c)
			}
		}
	}
	mark(m.Root)
	for _, g := range m.Groups() {
		if !reachable[g.ID] {
			m.Kill(g.ID)
		}
	}
	// Elide spools left with fewer than two consumers (their
	// duplicates merged away): materializing for a single consumer
	// is pure overhead, so the consumer is rewired to the spool's
	// input and the spool dies.
	for _, g := range m.Groups() {
		if g.Exprs[0].Op.Kind() != relop.KindSpool {
			continue
		}
		if len(m.Parents(g.ID)) < 2 {
			m.Redirect(g.ID, g.Exprs[0].Children[0], memo.NoGroup)
			m.Kill(g.ID)
		}
	}
}
