package core

import (
	"sort"

	"repro/internal/memo"
	"repro/internal/props"
)

// SharedGroupHistory is the phase-2 view of one shared group at an
// LCA: the group plus its ranked history of enforceable property
// sets.
type SharedGroupHistory struct {
	Group memo.GroupID
	// Props are the property sets to try, in evaluation order.
	Props []props.Required
	// RepartSav is the Sec. VIII-B ranking key
	// (NoConsumers−1)·RepartCost.
	RepartSav float64
}

// RoundPlanner generates the sequence of phase-2 optimization rounds
// for one LCA (Sec. VII), honoring the three large-script extensions
// of Sec. VIII:
//
//	A. Independent shared groups are optimized greedily one component
//	   at a time instead of via the full cartesian product (8×8 = 64
//	   rounds become 8+7 = 15 in the Fig. 5 example).
//	B. Components are visited in decreasing repartitioning-savings
//	   order, so promising rounds run first under a bounded budget.
//	C. Each group's property sets are pre-ranked by their phase-1 win
//	   frequency (the caller passes them already ordered).
//
// Usage protocol: call Next for the pin combination of the next
// round, evaluate it, and call Report with the resulting plan cost
// before calling Next again.
type RoundPlanner struct {
	groups     []SharedGroupHistory
	components [][]int // indexes into groups; evaluation order

	comp      int   // current component
	cursor    []int // per-group index of the current combination
	bestPins  map[int]int
	firstRead bool
	seen      map[string]bool
	maxRounds int
	emitted   int

	bestCost  float64
	bestCombo []int
	haveBest  bool

	// Batch protocol state: a combination read past the current
	// component's boundary is stashed for the next batch, and the
	// combos of the last ComponentBatch are kept for ReportBatch.
	pending     []int
	pendingComp int
	batch       [][]int
	batchComp   int
}

// NewRoundPlanner builds a planner over the shared groups associated
// with one LCA. components partitions groups (by index) into
// independence classes; a nil components means all groups form one
// dependent component. maxRounds caps the number of rounds (0 = no
// cap).
func NewRoundPlanner(groups []SharedGroupHistory, components [][]int, maxRounds int) *RoundPlanner {
	if len(components) == 0 {
		all := make([]int, len(groups))
		for i := range groups {
			all[i] = i
		}
		components = [][]int{all}
	}
	// Sec. VIII-B: order components by their best repartitioning
	// savings, descending.
	sorted := make([][]int, len(components))
	copy(sorted, components)
	compSav := func(c []int) float64 {
		best := 0.0
		for _, gi := range c {
			if groups[gi].RepartSav > best {
				best = groups[gi].RepartSav
			}
		}
		return best
	}
	sort.SliceStable(sorted, func(i, j int) bool {
		return compSav(sorted[i]) > compSav(sorted[j])
	})
	return &RoundPlanner{
		groups:     groups,
		components: sorted,
		cursor:     make([]int, len(groups)),
		bestPins:   map[int]int{},
		seen:       map[string]bool{},
		maxRounds:  maxRounds,
	}
}

// TotalCombinations returns the number of rounds a naive full
// cartesian product would evaluate (for reporting; the paper's 64 in
// the Fig. 5 example), saturating at 2^40 — large scripts overflow a
// plain product (20 property sets across 17 shared groups).
func (p *RoundPlanner) TotalCombinations() int {
	const lim = 1 << 40
	total := 1
	for _, g := range p.groups {
		n := len(g.Props)
		if n <= 0 {
			continue
		}
		if total > lim/n {
			return lim
		}
		total *= n
	}
	return total
}

// Next returns the pins for the next round, or ok=false when the
// planner is exhausted (or the round cap is hit).
func (p *RoundPlanner) Next() (props.Pins, bool) {
	for {
		if p.maxRounds > 0 && p.emitted >= p.maxRounds {
			return nil, false
		}
		combo, _, ok := p.take()
		if !ok {
			return nil, false
		}
		pins := p.pinsFor(combo)
		key := pins.Key()
		if p.seen[key] {
			continue
		}
		p.seen[key] = true
		p.emitted++
		p.bestCombo = combo
		return pins, true
	}
}

// take returns the next raw combination together with the index of
// the component it belongs to, honoring a combination stashed by a
// previous ComponentBatch boundary read.
func (p *RoundPlanner) take() ([]int, int, bool) {
	if p.pending != nil {
		combo, ci := p.pending, p.pendingComp
		p.pending = nil
		return combo, ci, true
	}
	combo, ok := p.nextCombo()
	if !ok {
		return nil, -1, false
	}
	// nextCombo returns while p.comp is the emitting component.
	return combo, p.comp, true
}

// ComponentBatch returns the pins of every remaining round of the
// current component in emission order — exactly the rounds repeated
// Next calls would emit, dedup and the round cap included — or
// ok=false when the planner is exhausted. The rounds of one batch are
// mutually independent of each other's outcomes (the greedy search
// fixes a component's best pins only at its boundary), so callers may
// evaluate them concurrently; ReportBatch must be called with the
// per-round costs before the next ComponentBatch.
func (p *RoundPlanner) ComponentBatch() ([]props.Pins, bool) {
	var pins []props.Pins
	p.batch = nil
	p.batchComp = -1
	for {
		if p.maxRounds > 0 && p.emitted >= p.maxRounds {
			break
		}
		combo, ci, ok := p.take()
		if !ok {
			break
		}
		if p.batchComp == -1 {
			p.batchComp = ci
		} else if ci != p.batchComp {
			if len(p.batch) > 0 {
				// First combination of the next component: stash it
				// for the next batch.
				p.pending, p.pendingComp = combo, ci
				break
			}
			// The previous component deduplicated away entirely; keep
			// going in the new one.
			p.batchComp = ci
		}
		pn := p.pinsFor(combo)
		key := pn.Key()
		if p.seen[key] {
			continue
		}
		p.seen[key] = true
		p.emitted++
		p.batch = append(p.batch, combo)
		pins = append(pins, pn)
	}
	return pins, len(pins) > 0
}

// ReportBatch records the costs of the rounds returned by the last
// ComponentBatch, in the same order. It applies the same strict-less
// argmin as interleaved Report calls would: the earliest lowest-cost
// round of the batch fixes the component's best property sets, so
// batch evaluation is bit-identical to serial evaluation.
func (p *RoundPlanner) ReportBatch(costs []float64) {
	if p.batchComp < 0 {
		return
	}
	for i, c := range costs {
		if i >= len(p.batch) {
			break
		}
		if !p.haveBest || c < p.bestCost {
			p.bestCost = c
			p.haveBest = true
			for _, gi := range p.components[p.batchComp] {
				p.bestPins[gi] = p.batch[i][gi]
			}
		}
	}
}

// Report records the cost of the round most recently returned by
// Next; the greedy per-component search uses it to fix the best
// property sets before moving to the next component.
func (p *RoundPlanner) Report(cost float64) {
	if !p.haveBest || cost < p.bestCost {
		p.bestCost = cost
		p.haveBest = true
		for _, gi := range p.components[p.comp] {
			p.bestPins[gi] = p.bestCombo[gi]
		}
	}
}

// BestPins returns the pins of the best-reported combination across
// all rounds so far.
func (p *RoundPlanner) BestPins() props.Pins {
	combo := make([]int, len(p.groups))
	for gi, pi := range p.bestPins {
		combo[gi] = pi
	}
	return p.pinsFor(combo)
}

// nextCombo advances the cartesian product of the current component
// (other components pinned to their best-so-far / first entries),
// moving to the next component when exhausted.
func (p *RoundPlanner) nextCombo() ([]int, bool) {
	for p.comp < len(p.components) {
		comp := p.components[p.comp]
		if !p.firstRead {
			p.firstRead = true
			for _, gi := range comp {
				p.cursor[gi] = 0
			}
			return p.snapshot(comp), true
		}
		// Odometer increment over the component's groups.
		for k := len(comp) - 1; k >= 0; k-- {
			gi := comp[k]
			if p.cursor[gi]+1 < len(p.groups[gi].Props) {
				p.cursor[gi]++
				return p.snapshot(comp), true
			}
			p.cursor[gi] = 0
		}
		// Component exhausted: its best indexes are frozen in
		// bestPins; move to the next component.
		p.comp++
		p.firstRead = false
	}
	return nil, false
}

// snapshot assembles the full combination: cursor for the active
// component, best-so-far for earlier components, first entry for
// later ones.
func (p *RoundPlanner) snapshot(active []int) []int {
	combo := make([]int, len(p.groups))
	inActive := map[int]bool{}
	for _, gi := range active {
		inActive[gi] = true
		combo[gi] = p.cursor[gi]
	}
	for ci := 0; ci < len(p.components); ci++ {
		for _, gi := range p.components[ci] {
			if inActive[gi] {
				continue
			}
			if ci < p.comp {
				combo[gi] = p.bestPins[gi]
			} else {
				combo[gi] = 0
			}
		}
	}
	return combo
}

// pinsFor converts a combination (per-group property index) into the
// Pins structure propagated by phase 2.
func (p *RoundPlanner) pinsFor(combo []int) props.Pins {
	pins := props.Pins{}
	for gi, g := range p.groups {
		if len(g.Props) == 0 {
			continue
		}
		idx := combo[gi]
		if idx >= len(g.Props) {
			idx = 0
		}
		pins = pins.With(g.Group, g.Props[idx])
	}
	return pins
}

// IndependentComponents partitions the shared groups associated with
// LCA group lca into independence classes per Definition 3, using the
// paper's detection rule: for each input (child group) of the LCA,
// collect the shared groups (with this LCA) reachable below that
// input; any two appearing under the same input are dependent; the
// transitive closure of that relation yields the components. Returned
// component and member order is deterministic (ascending group id).
func IndependentComponents(m *memo.Memo, lca memo.GroupID, shared []memo.GroupID) [][]memo.GroupID {
	if len(shared) == 0 {
		return nil
	}
	idx := map[memo.GroupID]int{}
	for i, s := range shared {
		idx[s] = i
	}
	// Union-find.
	parent := make([]int, len(shared))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	for _, input := range childGroups(m, lca) {
		var under []int
		ig := m.Group(input)
		for _, si := range ig.SharedBelow {
			if i, ok := idx[si.Shared]; ok {
				under = append(under, i)
			}
		}
		if input != lca {
			// The input itself may be one of the shared groups.
			if i, ok := idx[input]; ok {
				under = append(under, i)
			}
		}
		for i := 1; i < len(under); i++ {
			union(under[0], under[i])
		}
	}
	byRoot := map[int][]memo.GroupID{}
	for i, s := range shared {
		r := find(i)
		byRoot[r] = append(byRoot[r], s)
	}
	var roots []int
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]memo.GroupID, 0, len(roots))
	for _, r := range roots {
		c := byRoot[r]
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// RankHistory orders a shared group's history entries by descending
// phase-1 win count (Sec. VIII-C), stably so the recording order
// breaks ties.
func RankHistory(entries []*memo.HistEntry) []props.Required {
	idx := make([]int, len(entries))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return entries[idx[a]].Wins > entries[idx[b]].Wins
	})
	out := make([]props.Required, len(entries))
	for i, j := range idx {
		out[i] = entries[j].Req
	}
	return out
}
