package core

import (
	"math/rand"
	"testing"

	"repro/internal/memo"
	"repro/internal/relop"
	"repro/internal/stats"
)

func lp() memo.LogicalProps {
	return memo.LogicalProps{
		Schema: relop.Schema{{Name: "A", Type: relop.TInt}},
		Rel:    stats.Relation{Rows: 100, RowBytes: 8},
	}
}

func extract(file int) *relop.Extract {
	return &relop.Extract{Path: "f", Columns: relop.Schema{{Name: "A"}}, FileID: file}
}

func gbOp(keys ...string) *relop.GroupBy {
	return &relop.GroupBy{Keys: keys, Aggs: []relop.Aggregate{{Func: relop.AggSum, Arg: "A", As: "S"}}}
}

func TestFingerprintLeaf(t *testing.T) {
	m := memo.New()
	e1 := m.Insert(extract(7), nil, lp())
	e2 := m.Insert(extract(9), nil, lp())
	m.Root = m.Insert(&relop.Sequence{}, []memo.GroupID{e1, e2}, lp())
	fps := Fingerprints(m)
	if fps[e1] != 7 {
		t.Errorf("leaf fp = %d, want FileID 7", fps[e1])
	}
	if fps[e1] == fps[e2] {
		t.Error("different files must have different fingerprints")
	}
}

func TestFingerprintEqualStructureEqualFP(t *testing.T) {
	m := memo.New()
	// Two copies of Extract → GB(A) built independently.
	e1 := m.Insert(extract(1), nil, lp())
	g1 := m.Insert(gbOp("A"), []memo.GroupID{e1}, lp())
	e2 := m.Insert(extract(1), nil, lp())
	g2 := m.Insert(gbOp("A"), []memo.GroupID{e2}, lp())
	m.Root = m.Insert(&relop.Sequence{}, []memo.GroupID{g1, g2}, lp())
	fps := Fingerprints(m)
	if fps[g1] != fps[g2] {
		t.Errorf("equal structures must fingerprint equal: %d vs %d", fps[g1], fps[g2])
	}
	if !StructurallyEqual(m, g1, g2) {
		t.Error("copies should be structurally equal")
	}
}

func TestFingerprintCollisionResolvedByDeepCompare(t *testing.T) {
	// GB(A) and GB(B) over the same child share an OpID, hence a
	// fingerprint, but are structurally different — the deep compare
	// must distinguish them (Alg. 1 line 5).
	m := memo.New()
	e := m.Insert(extract(1), nil, lp())
	ga := m.Insert(gbOp("A"), []memo.GroupID{e}, lp())
	gb2 := m.Insert(gbOp("B"), []memo.GroupID{e}, lp())
	m.Root = m.Insert(&relop.Sequence{}, []memo.GroupID{ga, gb2}, lp())
	fps := Fingerprints(m)
	if fps[ga] != fps[gb2] {
		t.Log("note: fingerprints happen to differ (allowed)") // Def. 1 makes them equal
	}
	if StructurallyEqual(m, ga, gb2) {
		t.Error("GB(A) and GB(B) must not be structurally equal")
	}
}

func TestStructurallyEqualRecursesChildren(t *testing.T) {
	m := memo.New()
	e1 := m.Insert(extract(1), nil, lp())
	e2 := m.Insert(extract(2), nil, lp())
	g1 := m.Insert(gbOp("A"), []memo.GroupID{e1}, lp())
	g2 := m.Insert(gbOp("A"), []memo.GroupID{e2}, lp())
	m.Root = m.Insert(&relop.Sequence{}, []memo.GroupID{g1, g2}, lp())
	if StructurallyEqual(m, g1, g2) {
		t.Error("same op over different files must not be equal")
	}
	if !StructurallyEqual(m, g1, g1) {
		t.Error("a group equals itself")
	}
}

// Property: over random DAGs, structural equality implies fingerprint
// equality (fingerprints never produce false negatives).
func TestFingerprintNoFalseNegatives(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		m := memo.New()
		var groups []memo.GroupID
		n := 3 + r.Intn(12)
		for i := 0; i < n; i++ {
			if len(groups) == 0 || r.Intn(3) == 0 {
				groups = append(groups, m.Insert(extract(1+r.Intn(3)), nil, lp()))
				continue
			}
			child := groups[r.Intn(len(groups))]
			keys := []string{"A", "B", "C"}[r.Intn(3)]
			groups = append(groups, m.Insert(gbOp(keys), []memo.GroupID{child}, lp()))
		}
		m.Root = m.Insert(&relop.Sequence{}, groups, lp())
		fps := Fingerprints(m)
		for i := range groups {
			for j := i + 1; j < len(groups); j++ {
				if StructurallyEqual(m, groups[i], groups[j]) && fps[groups[i]] != fps[groups[j]] {
					t.Fatalf("trial %d: equal groups %d,%d with different fingerprints", trial, groups[i], groups[j])
				}
			}
		}
	}
}

// TestFingerprintCollisionProfile characterizes Definition 1's known
// weakness on the LS2-sized memo: identical-operator chains collide
// heavily (Project∘Project XOR-cancels), which is why Alg. 1's deep
// comparison exists and why Step 1 dominates large-script setup time.
// The test documents the behaviour rather than "fixing" it: the
// definition is the paper's.
func TestFingerprintCollisionProfile(t *testing.T) {
	m := memo.New()
	// A 200-step projection-like chain: alternate two op kinds so
	// fingerprints cycle with period 2.
	prev := m.Insert(extract(1), nil, lp())
	for i := 0; i < 200; i++ {
		prev = m.Insert(gbOp("A"), []memo.GroupID{prev}, lp())
	}
	m.Root = m.Insert(&relop.Sequence{}, []memo.GroupID{prev}, lp())
	fps := Fingerprints(m)
	buckets := map[uint64]int{}
	for _, fp := range fps {
		buckets[fp]++
	}
	maxBucket := 0
	for _, n := range buckets {
		if n > maxBucket {
			maxBucket = n
		}
	}
	if maxBucket < 50 {
		t.Errorf("expected heavy collisions on an identical-operator chain, max bucket = %d", maxBucket)
	}
	// Despite the collisions, deep comparison tells every chain
	// element apart (each has a structurally distinct subtree depth).
	if StructurallyEqual(m, 5, 10) {
		t.Error("different chain depths must not be structurally equal")
	}
}
