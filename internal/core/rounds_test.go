package core

import (
	"fmt"
	"testing"

	"repro/internal/memo"
	"repro/internal/props"
)

func histOf(g memo.GroupID, n int, prefix string) SharedGroupHistory {
	h := SharedGroupHistory{Group: g}
	for i := 0; i < n; i++ {
		h.Props = append(h.Props, props.Required{
			Part: props.ExactHashPartitioning(props.NewColSet(fmt.Sprintf("%s%d", prefix, i))),
		})
	}
	return h
}

// drain runs the planner to exhaustion, reporting a cost function of
// the chosen combination, and returns the number of rounds and the
// best pins.
func drain(p *RoundPlanner, costFn func(props.Pins) float64) (int, props.Pins) {
	rounds := 0
	for {
		pins, ok := p.Next()
		if !ok {
			break
		}
		rounds++
		p.Report(costFn(pins))
	}
	return rounds, p.BestPins()
}

// TestIndependentRounds64to15 reproduces the Sec. VIII-A example of
// Fig. 5: two independent shared groups with 8 property sets each
// need 8+7 = 15 rounds instead of the 64-round cartesian product.
func TestIndependentRounds64to15(t *testing.T) {
	groups := []SharedGroupHistory{histOf(5, 8, "p"), histOf(6, 8, "q")}
	p := NewRoundPlanner(groups, [][]int{{0}, {1}}, 0)
	if got := p.TotalCombinations(); got != 64 {
		t.Errorf("TotalCombinations = %d, want 64", got)
	}
	rounds, _ := drain(p, func(props.Pins) float64 { return 1 })
	if rounds != 15 {
		t.Errorf("independent rounds = %d, want 15", rounds)
	}
}

func TestDependentRoundsFullProduct(t *testing.T) {
	// Fig. 4(b): two shared groups with one LCA and two property
	// sets each, non-independent: 4 combination rounds.
	groups := []SharedGroupHistory{histOf(5, 2, "p"), histOf(6, 2, "q")}
	p := NewRoundPlanner(groups, nil, 0)
	seen := map[string]bool{}
	rounds := 0
	for {
		pins, ok := p.Next()
		if !ok {
			break
		}
		rounds++
		seen[pins.Key()] = true
		p.Report(1)
	}
	if rounds != 4 || len(seen) != 4 {
		t.Errorf("dependent rounds = %d distinct %d, want 4", rounds, len(seen))
	}
}

func TestSingleGroupRounds(t *testing.T) {
	// Fig. 4(a): one shared group per LCA with two property sets: 2
	// rounds.
	p := NewRoundPlanner([]SharedGroupHistory{histOf(5, 2, "p")}, nil, 0)
	rounds, _ := drain(p, func(props.Pins) float64 { return 1 })
	if rounds != 2 {
		t.Errorf("rounds = %d, want 2", rounds)
	}
}

func TestGreedyPicksBestPerComponent(t *testing.T) {
	// Costs engineered so group 5's best is p2 and group 6's best is
	// q1 given p2; the greedy planner must find {p2, q1}.
	groups := []SharedGroupHistory{histOf(5, 3, "p"), histOf(6, 3, "q")}
	costFn := func(pins props.Pins) float64 {
		r5, _ := pins.Get(5)
		r6, _ := pins.Get(6)
		c := 100.0
		if r5.Part.Cols.Contains("p2") {
			c -= 50
		}
		if r6.Part.Cols.Contains("q1") {
			c -= 20
		}
		return c
	}
	p := NewRoundPlanner(groups, [][]int{{0}, {1}}, 0)
	rounds, best := drain(p, costFn)
	if rounds != 5 { // 3 + (3-1)
		t.Errorf("rounds = %d, want 5", rounds)
	}
	r5, _ := best.Get(5)
	r6, _ := best.Get(6)
	if !r5.Part.Cols.Contains("p2") || !r6.Part.Cols.Contains("q1") {
		t.Errorf("best pins = %v", best.Key())
	}
}

func TestRoundCap(t *testing.T) {
	groups := []SharedGroupHistory{histOf(5, 10, "p"), histOf(6, 10, "q")}
	p := NewRoundPlanner(groups, nil, 7)
	rounds, _ := drain(p, func(props.Pins) float64 { return 1 })
	if rounds != 7 {
		t.Errorf("capped rounds = %d, want 7", rounds)
	}
}

func TestComponentRankingBySavings(t *testing.T) {
	// Sec. VIII-B: the component with the higher repartitioning
	// savings must be evaluated first.
	g1 := histOf(5, 2, "p")
	g1.RepartSav = 10
	g2 := histOf(6, 2, "q")
	g2.RepartSav = 1000
	p := NewRoundPlanner([]SharedGroupHistory{g1, g2}, [][]int{{0}, {1}}, 0)
	pins, ok := p.Next()
	if !ok {
		t.Fatal("no rounds")
	}
	p.Report(1)
	// The first two rounds must vary group 6 (higher savings) while
	// holding group 5 at its first entry.
	pins2, _ := p.Next()
	r6a, _ := pins.Get(6)
	r6b, _ := pins2.Get(6)
	if r6a.Key() == r6b.Key() {
		t.Errorf("high-savings group should vary first: %s then %s", pins.Key(), pins2.Key())
	}
	r5a, _ := pins.Get(5)
	r5b, _ := pins2.Get(5)
	if r5a.Key() != r5b.Key() {
		t.Errorf("low-savings group should be held fixed initially")
	}
}

func TestRankHistory(t *testing.T) {
	entries := []*memo.HistEntry{
		{Req: props.RequireHash(props.NewColSet("A")), Wins: 1},
		{Req: props.RequireHash(props.NewColSet("B")), Wins: 5},
		{Req: props.RequireHash(props.NewColSet("C")), Wins: 5},
		{Req: props.RequireHash(props.NewColSet("D")), Wins: 0},
	}
	ranked := RankHistory(entries)
	if ranked[0].Part.Cols.Key() != "B" || ranked[1].Part.Cols.Key() != "C" {
		t.Errorf("ranking must be stable by wins: %v, %v", ranked[0], ranked[1])
	}
	if ranked[3].Part.Cols.Key() != "D" {
		t.Errorf("lowest wins last: %v", ranked[3])
	}
}

func TestExpandHistorySevenSubsets(t *testing.T) {
	// Sec. V example: requirement [∅,{A,B,C}] stores seven exact
	// entries [{A},{A}] … [{A,B,C},{A,B,C}].
	req := props.RequireHash(props.NewColSet("A", "B", "C"))
	got := ExpandHistory(req, 0)
	if len(got) != 7 {
		t.Fatalf("expanded entries = %d, want 7", len(got))
	}
	for _, r := range got {
		if !r.Part.Exact {
			t.Errorf("entry %v must be exact", r)
		}
		if !r.Part.Cols.SubsetOf(props.NewColSet("A", "B", "C")) || r.Part.Cols.Empty() {
			t.Errorf("entry %v out of range", r)
		}
	}
}

func TestExpandHistoryPreservesOrderAndPassthrough(t *testing.T) {
	req := props.Required{
		Part:  props.HashPartitioning(props.NewColSet("A", "B")),
		Order: props.NewOrdering("B", "A"),
	}
	for _, r := range ExpandHistory(req, 0) {
		if !r.Order.Equal(req.Order) {
			t.Errorf("entry %v lost the sort requirement", r)
		}
	}
	// Non-range requirements record as themselves.
	for _, req := range []props.Required{
		props.AnyRequired(),
		props.RequireSerial(),
		{Part: props.ExactHashPartitioning(props.NewColSet("B"))},
	} {
		got := ExpandHistory(req, 0)
		if len(got) != 1 || !got[0].Equal(req) {
			t.Errorf("ExpandHistory(%v) = %v", req, got)
		}
	}
	// The cap must hold for wide column sets.
	wide := props.RequireHash(props.NewColSet("A", "B", "C", "D", "E", "F"))
	if got := ExpandHistory(wide, 10); len(got) > 10 {
		t.Errorf("cap exceeded: %d entries", len(got))
	}
}

func TestIndependentComponentsFig5VsS4(t *testing.T) {
	// Fig. 5 shape: two disjoint pipelines sharing one LCA (the
	// Sequence root) — independent.
	m := buildMemo(t, `
R0 = EXTRACT A,B,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,Sum(D) as S FROM R0 GROUP BY A,B;
R1 = SELECT A,Sum(S) as S1 FROM R GROUP BY A;
R2 = SELECT B,Sum(S) as S2 FROM R GROUP BY B;
T0 = EXTRACT A,B,D FROM "test2.log" USING LogExtractor;
T = SELECT A,B,Sum(D) as S FROM T0 GROUP BY A,B;
T1 = SELECT A,Sum(S) as S1 FROM T GROUP BY A;
T2 = SELECT B,Sum(S) as S2 FROM T GROUP BY B;
OUTPUT R1 TO "o1";
OUTPUT R2 TO "o2";
OUTPUT T1 TO "o3";
OUTPUT T2 TO "o4";
`)
	IdentifyCommonSubexpressions(m)
	PropagateSharedGroups(m)
	root := m.Group(m.Root)
	if len(root.LCAOf) != 2 {
		t.Fatalf("root.LCAOf = %v, want both shared groups", root.LCAOf)
	}
	comps := IndependentComponents(m, m.Root, root.LCAOf)
	if len(comps) != 2 || len(comps[0]) != 1 || len(comps[1]) != 1 {
		t.Errorf("Fig. 5 components = %v, want two singletons", comps)
	}

	// S4 shape: consumers feed both direct outputs and a join —
	// the shared groups are NOT independent at the root.
	m2 := buildMemo(t, scriptS4)
	IdentifyCommonSubexpressions(m2)
	PropagateSharedGroups(m2)
	root2 := m2.Group(m2.Root)
	if len(root2.LCAOf) != 3 {
		t.Fatalf("S4 root.LCAOf = %v", root2.LCAOf)
	}
	comps2 := IndependentComponents(m2, m2.Root, root2.LCAOf)
	if len(comps2) != 1 {
		t.Errorf("S4 components = %v, want a single dependent component", comps2)
	}
}

func TestCrossJoinsNotIndependent(t *testing.T) {
	// Fig. 4(b): consumers cross the joins, so the two shared groups
	// are dependent at the shared LCA.
	m := buildMemo(t, scriptCrossJoins)
	IdentifyCommonSubexpressions(m)
	PropagateSharedGroups(m)
	root := m.Group(m.Root)
	comps := IndependentComponents(m, m.Root, root.LCAOf)
	if len(comps) != 1 || len(comps[0]) != 2 {
		t.Errorf("cross-join components = %v, want one pair", comps)
	}
}

// drainBatched runs the planner to exhaustion through the batch
// protocol, returning the emitted pin sequence and the best pins.
func drainBatched(p *RoundPlanner, costFn func(props.Pins) float64) ([]string, props.Pins) {
	var emitted []string
	for {
		pins, ok := p.ComponentBatch()
		if !ok {
			break
		}
		costs := make([]float64, len(pins))
		for i, pn := range pins {
			emitted = append(emitted, pn.Key())
			costs[i] = costFn(pn)
		}
		p.ReportBatch(costs)
	}
	return emitted, p.BestPins()
}

// TestComponentBatchMatchesNext: the batch protocol must emit exactly
// the round sequence repeated Next/Report calls emit — same rounds,
// same order, same best pins — across independent components, the
// dependent full product, caps, and cost functions that move the
// greedy per-component argmin around.
func TestComponentBatchMatchesNext(t *testing.T) {
	mkPlanner := func(cap int, comps [][]int) func() *RoundPlanner {
		return func() *RoundPlanner {
			groups := []SharedGroupHistory{histOf(5, 3, "p"), histOf(6, 4, "q"), histOf(7, 2, "r")}
			return NewRoundPlanner(groups, comps, cap)
		}
	}
	costs := map[string]func(props.Pins) float64{
		"constant": func(props.Pins) float64 { return 1 },
		"bykey": func(p props.Pins) float64 {
			return float64(len(p.Key()) % 7)
		},
		"descending": func() func(props.Pins) float64 {
			c := 100.0
			return func(props.Pins) float64 { c--; return c }
		}(),
	}
	shapes := map[string]func() *RoundPlanner{
		"independent": mkPlanner(0, [][]int{{0}, {1}, {2}}),
		"mixed":       mkPlanner(0, [][]int{{0, 2}, {1}}),
		"dependent":   mkPlanner(0, nil),
		"capped":      mkPlanner(4, [][]int{{0}, {1}, {2}}),
		"cap1":        mkPlanner(1, [][]int{{0}, {1}, {2}}),
	}
	for sn, mk := range shapes {
		for cn, costFn := range costs {
			serial := mk()
			var want []string
			for {
				pins, ok := serial.Next()
				if !ok {
					break
				}
				want = append(want, pins.Key())
				serial.Report(costFn(pins))
			}
			wantBest := serial.BestPins().Key()

			got, gotBestPins := drainBatched(mk(), costFn)
			if len(got) != len(want) {
				t.Fatalf("%s/%s: batched emitted %d rounds, serial %d", sn, cn, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%s/%s: round %d: batched %q, serial %q", sn, cn, i, got[i], want[i])
				}
			}
			if gotBestPins.Key() != wantBest {
				t.Errorf("%s/%s: best pins: batched %q, serial %q", sn, cn, gotBestPins.Key(), wantBest)
			}
		}
	}
}

// TestComponentBatchBoundaries: one batch never spans two components,
// and consecutive batches cover the components in evaluation order.
func TestComponentBatchBoundaries(t *testing.T) {
	groups := []SharedGroupHistory{histOf(5, 3, "p"), histOf(6, 2, "q")}
	p := NewRoundPlanner(groups, [][]int{{0}, {1}}, 0)
	var sizes []int
	for {
		pins, ok := p.ComponentBatch()
		if !ok {
			break
		}
		sizes = append(sizes, len(pins))
		costs := make([]float64, len(pins))
		for i := range costs {
			costs[i] = 1
		}
		p.ReportBatch(costs)
	}
	// Component 0 emits its 3 rounds; component 1 emits 2, one of
	// which duplicates the best-pinned combination already seen, so it
	// dedups down to 1.
	if len(sizes) != 2 || sizes[0] != 3 || sizes[1] != 1 {
		t.Errorf("batch sizes = %v, want [3 1]", sizes)
	}
}
