package core

import (
	"math/rand"
	"testing"

	"repro/internal/memo"
	"repro/internal/relop"
)

// findSpool returns the single shared spool group, failing otherwise.
func findSpool(t *testing.T, m *memo.Memo) *memo.Group {
	t.Helper()
	sg := m.SharedGroups()
	if len(sg) != 1 {
		t.Fatalf("shared groups = %d, want 1", len(sg))
	}
	return sg[0]
}

// TestLCAFig3a reproduces Fig. 3(a): the motivating script's single
// shared group; the LCA of its two consumers is the Sequence root.
func TestLCAFig3a(t *testing.T) {
	m := buildMemo(t, scriptS1)
	IdentifyCommonSubexpressions(m)
	PropagateSharedGroups(m)
	sp := findSpool(t, m)
	if sp.LCA != m.Root {
		t.Errorf("LCA = G%d, want root G%d", sp.LCA, m.Root)
	}
	root := m.Group(m.Root)
	if len(root.LCAOf) != 1 || root.LCAOf[0] != sp.ID {
		t.Errorf("root.LCAOf = %v", root.LCAOf)
	}
	// Propagation: the root must know the shared group and both
	// consumers; each consumer-side output must know one consumer.
	si := root.FindSharedBelow(sp.ID)
	if si == nil || !si.AllFound() {
		t.Fatalf("root's SharedBelow = %+v", si)
	}
	if len(si.All) != 2 {
		t.Errorf("consumers = %v", si.All)
	}
}

// scriptS3 is the paper's S3 (Fig. 6): two shared groups over two
// different input files, each with its own join — different LCAs
// (Fig. 4(a)).
const scriptS3 = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,C,Sum(S) as S1 FROM R GROUP BY B,C;
R2 = SELECT B,A,Sum(S) as S2 FROM R GROUP BY B,A;
RR = SELECT R1.B,A,C,S1,S2 FROM R1,R2 WHERE R1.B=R2.B;
T0 = EXTRACT A,B,C,D FROM "test2.log" USING LogExtractor;
T = SELECT A,B,C,Sum(D) as S FROM T0 GROUP BY A,B,C;
T1 = SELECT B,C,Sum(S) as S1 FROM T GROUP BY B,C;
T2 = SELECT B,A,Sum(S) as S2 FROM T GROUP BY B,A;
TT = SELECT T1.B,A,C,S1,S2 FROM T1,T2 WHERE T1.B=T2.B;
OUTPUT RR TO "result1.out";
OUTPUT TT TO "result2.out";
`

func TestLCAFig4aDifferentLCAs(t *testing.T) {
	m := buildMemo(t, scriptS3)
	IdentifyCommonSubexpressions(m)
	PropagateSharedGroups(m)
	sg := m.SharedGroups()
	if len(sg) != 2 {
		t.Fatalf("shared groups = %d, want 2\n%s", len(sg), m)
	}
	for _, sp := range sg {
		if sp.LCA == m.Root {
			t.Errorf("shared G%d LCA should be below the root (its own join side)", sp.ID)
		}
		// The LCA must be an ancestor of both consumers on the same
		// pipeline — specifically a Join (or the Project above it).
		lcaKind := m.Group(sp.LCA).Exprs[0].Op.Kind()
		if lcaKind != relop.KindJoin && lcaKind != relop.KindProject {
			t.Errorf("LCA of G%d is %v, want the join side", sp.ID, lcaKind)
		}
	}
	if sg[0].LCA == sg[1].LCA {
		t.Error("the two pipelines must have different LCAs")
	}
}

// scriptCrossJoins wires the consumers across the two pipelines like
// Fig. 4(b): F1 joins R1 with T1, F2 joins R2 with T2, so both shared
// groups share the Sequence root as their single LCA.
const scriptCrossJoins = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,C,Sum(S) as S1 FROM R GROUP BY B,C;
R2 = SELECT B,A,Sum(S) as S2 FROM R GROUP BY B,A;
T0 = EXTRACT A,B,C,D FROM "test2.log" USING LogExtractor;
T = SELECT A,B,C,Sum(D) as S FROM T0 GROUP BY A,B,C;
T1 = SELECT B,C,Sum(S) as S3 FROM T GROUP BY B,C;
T2 = SELECT B,A,Sum(S) as S4 FROM T GROUP BY B,A;
F1 = SELECT R1.B,S1,S3 FROM R1,T1 WHERE R1.B=T1.B;
F2 = SELECT R2.B,S2,S4 FROM R2,T2 WHERE R2.B=T2.B;
OUTPUT F1 TO "o1";
OUTPUT F2 TO "o2";
`

func TestLCAFig4bSingleLCA(t *testing.T) {
	m := buildMemo(t, scriptCrossJoins)
	IdentifyCommonSubexpressions(m)
	PropagateSharedGroups(m)
	sg := m.SharedGroups()
	if len(sg) != 2 {
		t.Fatalf("shared groups = %d, want 2", len(sg))
	}
	for _, sp := range sg {
		if sp.LCA != m.Root {
			t.Errorf("shared G%d LCA = G%d, want root G%d (consumers cross the joins)",
				sp.ID, sp.LCA, m.Root)
		}
	}
	root := m.Group(m.Root)
	if len(root.LCAOf) != 2 {
		t.Errorf("root.LCAOf = %v", root.LCAOf)
	}
}

// scriptS4 is the paper's S4 (Fig. 6 / Fig. 3(c) shape): R1, R2 and
// RR are all output, so the LCA of the shared GB(R)'s consumers is
// the root, NOT the join (paths bypass it via the direct outputs).
const scriptS4 = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,C,Sum(S) as S1 FROM R GROUP BY B,C;
R2 = SELECT B,A,Sum(S) as S2 FROM R GROUP BY B,A;
RR = SELECT R1.B,A,C FROM R1,R2 WHERE R1.B=R2.B;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
OUTPUT RR TO "result3.out";
`

func TestLCAFig3cNotLowestCommonAncestor(t *testing.T) {
	m := buildMemo(t, scriptS4)
	IdentifyCommonSubexpressions(m)
	PropagateSharedGroups(m)
	// S4 has three shared groups once R1 and R2 (each consumed by an
	// Output and the join) are spooled alongside R.
	sg := m.SharedGroups()
	if len(sg) != 3 {
		t.Fatalf("shared groups = %d, want 3 (R, R1, R2)\n%s", len(sg), m)
	}
	// Every LCA must be the root: each shared group has a consumer
	// path that bypasses the join through a direct OUTPUT.
	for _, sp := range sg {
		if sp.LCA != m.Root {
			t.Errorf("shared G%d LCA = G%d (%v), want root",
				sp.ID, sp.LCA, m.Group(sp.LCA).Exprs[0].Op)
		}
	}
}

// TestLCAMatchesBruteForce checks Definition 2 directly on random
// DAGs: the dominator-based LCA must equal the lowest group present
// on every consumer-to-root path.
func TestLCAMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		m, shared := randomSharedDAG(r)
		if shared == memo.NoGroup {
			continue
		}
		PropagateSharedGroups(m)
		got := m.Group(shared).LCA
		want := bruteForceLCA(m, shared)
		if got != want {
			t.Fatalf("trial %d: LCA = G%d, brute force = G%d\n%s", trial, got, want, m)
		}
	}
}

// randomSharedDAG builds a random memo DAG with one spool-marked
// shared group (if the random shape produced one).
func randomSharedDAG(r *rand.Rand) (*memo.Memo, memo.GroupID) {
	m := memo.New()
	n := 4 + r.Intn(10)
	var groups []memo.GroupID
	for i := 0; i < n; i++ {
		if len(groups) < 2 || r.Intn(4) == 0 {
			groups = append(groups, m.Insert(extract(1+i), nil, lp()))
			continue
		}
		// Unary or binary node over random earlier groups.
		if r.Intn(2) == 0 {
			c := groups[r.Intn(len(groups))]
			groups = append(groups, m.Insert(gbOp("A"), []memo.GroupID{c}, lp()))
		} else {
			a := groups[r.Intn(len(groups))]
			b := groups[r.Intn(len(groups))]
			if a == b {
				groups = append(groups, m.Insert(gbOp("B"), []memo.GroupID{a}, lp()))
			} else {
				groups = append(groups, m.Insert(
					&relop.Join{LeftKeys: []string{"A"}, RightKeys: []string{"A"}},
					[]memo.GroupID{a, b}, lp()))
			}
		}
	}
	// Root ties together all parentless groups.
	var tops []memo.GroupID
	for _, g := range groups {
		if len(m.Parents(g)) == 0 {
			tops = append(tops, g)
		}
	}
	m.Root = m.Insert(&relop.Sequence{}, tops, lp())
	// Pick the first multi-parent group and spool it.
	for _, g := range groups {
		if len(m.Parents(g)) > 1 && m.Group(g).Exprs[0].Op.Kind() != relop.KindSpool {
			sp := m.Insert(&relop.Spool{}, []memo.GroupID{g}, lp())
			m.Redirect(g, sp, sp)
			m.Group(sp).Shared = true
			return m, sp
		}
	}
	return m, memo.NoGroup
}

// bruteForceLCA finds the lowest group on every consumer→root path by
// explicit path reasoning: v is a candidate iff no consumer can reach
// the root when v is removed; the lowest candidate is the one all
// other candidates lie above.
func bruteForceLCA(m *memo.Memo, shared memo.GroupID) memo.GroupID {
	consumers := m.Parents(shared)
	reachesRootAvoiding := func(from, avoid memo.GroupID) bool {
		seen := map[memo.GroupID]bool{}
		var up func(g memo.GroupID) bool
		up = func(g memo.GroupID) bool {
			if g == avoid || seen[g] {
				return false
			}
			if g == m.Root {
				return true
			}
			seen[g] = true
			for _, p := range m.Parents(g) {
				if up(p) {
					return true
				}
			}
			return false
		}
		return up(from)
	}
	var candidates []memo.GroupID
	for _, g := range m.Groups() {
		onAll := true
		for _, c := range consumers {
			if c == g.ID {
				continue // a path from c trivially contains c
			}
			if reachesRootAvoiding(c, g.ID) {
				onAll = false
				break
			}
		}
		if onAll {
			candidates = append(candidates, g.ID)
		}
	}
	// The candidates form a chain; v is the lowest iff no other
	// candidate w is below it ("w below v" means v lies on every
	// path from w, i.e. w cannot reach the root avoiding v).
	for _, v := range candidates {
		lowest := true
		for _, w := range candidates {
			if w != v && !reachesRootAvoiding(w, v) {
				lowest = false
				break
			}
		}
		if lowest {
			return v
		}
	}
	return memo.NoGroup
}
