package core

import (
	"testing"

	"repro/internal/relop"
)

// TestSharedBelowAnnotationsFig3a checks the content of the
// propagated ShrdGrp lists on the motivating script against Fig. 3(a):
// every group on a consuming path knows the shared group and exactly
// the consumers below itself; the root sees both.
func TestSharedBelowAnnotationsFig3a(t *testing.T) {
	m := buildMemo(t, scriptS1)
	IdentifyCommonSubexpressions(m)
	PropagateSharedGroups(m)

	spool := m.SharedGroups()[0]
	consumers := m.Parents(spool.ID)
	if len(consumers) != 2 {
		t.Fatalf("consumers = %v", consumers)
	}

	// The spool group itself tracks itself with no consumers found
	// below it.
	self := spool.FindSharedBelow(spool.ID)
	if self == nil {
		t.Fatal("shared group should track itself")
	}
	for c, found := range self.Found {
		if found {
			t.Errorf("no consumer lies below the shared group itself, found %v", c)
		}
	}

	// Each consumer (a GB group) sees the shared group with exactly
	// itself found.
	for _, c := range consumers {
		si := m.Group(c).FindSharedBelow(spool.ID)
		if si == nil {
			t.Fatalf("consumer G%d lost the shared annotation", c)
		}
		foundCount := 0
		for cc, found := range si.Found {
			if found {
				foundCount++
				if cc != c {
					t.Errorf("consumer G%d marks G%d found", c, cc)
				}
			}
		}
		if foundCount != 1 {
			t.Errorf("consumer G%d found-set size = %d, want 1", c, foundCount)
		}
		if si.AllFound() {
			t.Errorf("consumer G%d should not see the full consumer set", c)
		}
	}

	// Each Output group inherits its side's single consumer; the
	// Sequence root merges both and is the LCA.
	root := m.Group(m.Root)
	rootSi := root.FindSharedBelow(spool.ID)
	if rootSi == nil || !rootSi.AllFound() {
		t.Fatalf("root annotation = %+v", rootSi)
	}
	if len(root.LCAOf) != 1 || root.LCAOf[0] != spool.ID {
		t.Errorf("root.LCAOf = %v", root.LCAOf)
	}
	// Groups off the consuming paths carry no annotation: the
	// extract below the shared group must not know about it.
	for _, g := range m.Groups() {
		if g.Exprs[0].Op.Kind() == relop.KindExtract {
			if g.FindSharedBelow(spool.ID) != nil {
				t.Errorf("extract G%d below the shared group should not track it", g.ID)
			}
		}
	}
}

// TestSharedBelowAnnotationsTwoPipelines mirrors Fig. 3(b)/Fig. 4(a):
// with two shared groups in disjoint pipelines, each join side tracks
// only its own shared group, and the root tracks both.
func TestSharedBelowAnnotationsTwoPipelines(t *testing.T) {
	m := buildMemo(t, scriptS3)
	IdentifyCommonSubexpressions(m)
	PropagateSharedGroups(m)
	shared := m.SharedGroups()
	if len(shared) != 2 {
		t.Fatalf("shared = %d", len(shared))
	}
	root := m.Group(m.Root)
	for _, s := range shared {
		if si := root.FindSharedBelow(s.ID); si == nil || !si.AllFound() {
			t.Errorf("root should see shared G%d complete", s.ID)
		}
		// The LCA (join side) sees its own shared group complete...
		lca := m.Group(s.LCA)
		if si := lca.FindSharedBelow(s.ID); si == nil || !si.AllFound() {
			t.Errorf("LCA G%d should see its shared G%d complete", s.LCA, s.ID)
		}
		// ...and does NOT see the other pipeline's shared group.
		for _, other := range shared {
			if other.ID != s.ID && lca.FindSharedBelow(other.ID) != nil {
				t.Errorf("LCA G%d of G%d should not track G%d (disjoint pipelines)",
					s.LCA, s.ID, other.ID)
			}
		}
	}
}
