package core

import (
	"testing"

	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/relop"
)

const scriptS1 = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) as S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) as S2 FROM R GROUP BY B,C;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
`

func buildMemo(t *testing.T, src string) *memo.Memo {
	t.Helper()
	m, err := logical.BuildSource(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func opKind(m *memo.Memo, g memo.GroupID) relop.OpKind {
	return m.Group(g).Exprs[0].Op.Kind()
}

func TestIdentifyExplicitS1(t *testing.T) {
	m := buildMemo(t, scriptS1)
	shared := IdentifyCommonSubexpressions(m)
	if len(shared) != 1 {
		t.Fatalf("shared groups = %v, want exactly 1 (spool over GB(R))\n%s", shared, m)
	}
	sp := m.Group(shared[0])
	if sp.Exprs[0].Op.Kind() != relop.KindSpool {
		t.Fatalf("shared group op = %v, want Spool", sp.Exprs[0].Op)
	}
	if !sp.Shared {
		t.Error("spool group must be marked shared")
	}
	// The spool's single child is the GB(A,B,C) group, and the spool
	// has the two consumer GBs as parents.
	child := m.Group(sp.Exprs[0].Children[0])
	gb, ok := child.Exprs[0].Op.(*relop.GroupBy)
	if !ok || len(gb.Keys) != 3 {
		t.Fatalf("spool child = %v", child.Exprs[0].Op)
	}
	if got := m.Parents(shared[0]); len(got) != 2 {
		t.Errorf("spool parents = %v", got)
	}
	if got := m.Parents(child.ID); len(got) != 1 {
		t.Errorf("GB(R) parents = %v, want only the spool", got)
	}
}

func TestIdentifyTextualDuplicates(t *testing.T) {
	// The same aggregation written twice over the same file: no
	// explicit sharing, but fingerprints must find and merge it.
	m := buildMemo(t, `
X0 = EXTRACT A,B,D FROM "test.log" USING LogExtractor;
X = SELECT A,B,Sum(D) as S FROM X0 GROUP BY A,B;
Y0 = EXTRACT A,B,D FROM "test.log" USING LogExtractor;
Y = SELECT A,B,Sum(D) as S FROM Y0 GROUP BY A,B;
X1 = SELECT A,Sum(S) as SA FROM X GROUP BY A;
Y1 = SELECT B,Sum(S) as SB FROM Y GROUP BY B;
OUTPUT X1 TO "o1";
OUTPUT Y1 TO "o2";
`)
	before := len(m.Groups())
	shared := IdentifyCommonSubexpressions(m)
	if len(shared) != 1 {
		t.Fatalf("shared = %v, want 1 merged spool\n%s", shared, m)
	}
	if got := m.Parents(shared[0]); len(got) != 2 {
		t.Errorf("merged spool parents = %v", got)
	}
	// The duplicate pipeline (extract + GB) must be gone.
	after := len(m.Groups())
	if after >= before {
		t.Errorf("groups %d -> %d: duplicates not removed", before, after)
	}
	extracts := 0
	for _, g := range m.Groups() {
		if g.Exprs[0].Op.Kind() == relop.KindExtract {
			extracts++
		}
	}
	if extracts != 1 {
		t.Errorf("extract groups = %d, want 1 after merging", extracts)
	}
}

func TestIdentifyDifferentFilesNotMerged(t *testing.T) {
	m := buildMemo(t, `
X0 = EXTRACT A,D FROM "f1" USING E;
X = SELECT A,Sum(D) as S FROM X0 GROUP BY A;
Y0 = EXTRACT A,D FROM "f2" USING E;
Y = SELECT A,Sum(D) as S FROM Y0 GROUP BY A;
OUTPUT X TO "o1";
OUTPUT Y TO "o2";
`)
	shared := IdentifyCommonSubexpressions(m)
	if len(shared) != 0 {
		t.Errorf("different inputs must not merge: shared = %v", shared)
	}
}

func TestIdentifyNoSharingNoSpools(t *testing.T) {
	m := buildMemo(t, `
R0 = EXTRACT A,D FROM "f" USING E;
R = SELECT A,Sum(D) as S FROM R0 GROUP BY A;
OUTPUT R TO "o";
`)
	if shared := IdentifyCommonSubexpressions(m); len(shared) != 0 {
		t.Errorf("linear script should have no shared groups: %v", shared)
	}
	for _, g := range m.Groups() {
		if g.Exprs[0].Op.Kind() == relop.KindSpool {
			t.Error("no spool should be inserted")
		}
	}
}

func TestIdentifyThreeConsumers(t *testing.T) {
	// The paper's S2: three consumers of one shared group.
	m := buildMemo(t, `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,A,Sum(S) as S1 FROM R GROUP BY B,A;
R2 = SELECT A,C,Sum(S) as S2 FROM R GROUP BY A,C;
R3 = SELECT A,Sum(S) as S3 FROM R GROUP BY A;
OUTPUT R1 TO "o1";
OUTPUT R2 TO "o2";
OUTPUT R3 TO "o3";
`)
	shared := IdentifyCommonSubexpressions(m)
	if len(shared) != 1 {
		t.Fatalf("shared = %v", shared)
	}
	if got := m.Parents(shared[0]); len(got) != 3 {
		t.Errorf("spool parents = %v, want 3", got)
	}
}

func TestIdentifyNestedDuplicates(t *testing.T) {
	// Duplicated two-level pipelines: the merge must unify both
	// levels bottom-up and leave a single spool at the top shared
	// point, with no Spool-over-Spool chains.
	m := buildMemo(t, `
X0 = EXTRACT A,B,D FROM "f" USING E;
X = SELECT A,B,Sum(D) as S FROM X0 GROUP BY A,B;
XX = SELECT A,Sum(S) as T FROM X GROUP BY A;
Y0 = EXTRACT A,B,D FROM "f" USING E;
Y = SELECT A,B,Sum(D) as S FROM Y0 GROUP BY A,B;
YY = SELECT A,Sum(S) as T FROM Y GROUP BY A;
P = SELECT A, T as T1 FROM XX;
Q = SELECT A as A2, T as T2 FROM YY;
OUTPUT P TO "o1";
OUTPUT Q TO "o2";
`)
	shared := IdentifyCommonSubexpressions(m)
	if len(shared) != 1 {
		t.Fatalf("shared = %v, want 1 (merged XX/YY pipeline)\n%s", shared, m)
	}
	for _, g := range m.Groups() {
		if g.Exprs[0].Op.Kind() == relop.KindSpool {
			child := m.Group(g.Exprs[0].Children[0])
			if child.Exprs[0].Op.Kind() == relop.KindSpool {
				t.Error("Spool-over-Spool chain left behind")
			}
		}
	}
	// Exactly one extract and one GB(A,B) should survive.
	counts := map[relop.OpKind]int{}
	for _, g := range m.Groups() {
		counts[g.Exprs[0].Op.Kind()]++
	}
	if counts[relop.KindExtract] != 1 {
		t.Errorf("extracts = %d, want 1", counts[relop.KindExtract])
	}
	if counts[relop.KindGroupBy] != 2 {
		t.Errorf("group-bys = %d, want 2 (inner + outer)", counts[relop.KindGroupBy])
	}
}

func TestIdentifyRootNotSpooled(t *testing.T) {
	m := buildMemo(t, scriptS1)
	IdentifyCommonSubexpressions(m)
	if opKind(m, m.Root) == relop.KindSpool {
		t.Error("root must not be wrapped in a spool")
	}
	if opKind(m, m.Root) != relop.KindSequence {
		t.Errorf("root = %v", opKind(m, m.Root))
	}
}
