package core

import (
	"sort"
	"strings"

	"repro/internal/memo"
	"repro/internal/relop"
)

// CanonicalSignatures computes a canonical structural signature for
// every live group's initial subexpression. Two groups in *different*
// memos get equal signatures exactly when they compute the same
// relation modulo the rewrites the binder does not normalize itself:
// the top-level conjuncts of a Filter predicate are sorted, so
// `WHERE a > 1 AND b < 5` and `WHERE b < 5 AND a > 1` sign
// identically.
//
// Definition-1 fingerprints are collision-prone by design (the XOR of
// children is order-insensitive and all operators of one kind share
// an OpID); within a single memo Alg. 1 resolves collisions with
// StructurallyEqual, but a cross-query cache cannot deep-compare into
// a memo that no longer exists. The canonical signature is the
// persistent stand-in: cache keys pair (fingerprint, signature,
// schema) so near-miss expressions that share a fingerprint never
// alias a cached artifact.
func CanonicalSignatures(m *memo.Memo) map[memo.GroupID]string {
	sigs := make(map[memo.GroupID]string, m.NumGroups())
	var compute func(g memo.GroupID) string
	compute = func(g memo.GroupID) string {
		if s, ok := sigs[g]; ok {
			return s
		}
		e := m.Group(g).Exprs[0]
		var b strings.Builder
		b.WriteString(canonicalOpSig(e.Op))
		b.WriteByte('[')
		for i, c := range e.Children {
			if i > 0 {
				b.WriteByte(';')
			}
			b.WriteString(compute(c))
		}
		b.WriteByte(']')
		s := b.String()
		sigs[g] = s
		return s
	}
	for _, g := range m.Groups() {
		compute(g.ID)
	}
	return sigs
}

// canonicalOpSig is Operator.Sig with order-insensitive parts
// canonicalized: Filter sorts its top-level AND conjuncts.
func canonicalOpSig(op relop.Operator) string {
	f, ok := op.(*relop.Filter)
	if !ok {
		return op.Sig()
	}
	conj := flattenAnd(f.Pred, nil)
	sort.Strings(conj)
	return "Filter(" + strings.Join(conj, " AND ") + ")"
}

// flattenAnd collects the string forms of a predicate's top-level AND
// conjuncts.
func flattenAnd(s relop.Scalar, out []string) []string {
	if b, ok := s.(*relop.BinExpr); ok && b.Op == relop.OpAnd {
		return flattenAnd(b.R, flattenAnd(b.L, out))
	}
	return append(out, s.String())
}
