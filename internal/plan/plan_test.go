package plan

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/props"
	"repro/internal/relop"
	"repro/internal/stats"
)

func mkNode(op relop.Operator, group int, ctx string, opCost float64, children ...*Node) *Node {
	return &Node{
		Op:       op,
		Children: children,
		Group:    props.GroupID(group),
		CtxKey:   ctx,
		Rel:      stats.Relation{Rows: 1000, RowBytes: 16},
		Dlvd:     props.Delivered{Part: props.RandomPartitioning()},
		OpCost:   opCost,
	}
}

// sharedSpoolPlan builds:
//
//	Sequence
//	├── Output1 → Agg1 → Spool ─┐
//	└── Output2 → Agg2 → Spool ─┴─ (same spool) → Extract
func sharedSpoolPlan() (*Node, *Node) {
	ex := mkNode(&relop.PhysExtract{Path: "t"}, 1, "any", 100)
	spool := mkNode(&relop.PhysSpool{}, 2, "h=B", 10, ex)
	agg1 := mkNode(&relop.StreamAgg{Keys: []string{"A", "B"}}, 3, "any", 5, spool)
	agg2 := mkNode(&relop.StreamAgg{Keys: []string{"B", "C"}}, 4, "any", 5, spool)
	out1 := mkNode(&relop.PhysOutput{Path: "o1"}, 5, "any", 2, agg1)
	out2 := mkNode(&relop.PhysOutput{Path: "o2"}, 6, "any", 2, agg2)
	seq := mkNode(&relop.PhysSequence{}, 7, "any", 0, out1, out2)
	return seq, spool
}

func TestTreeCostCountsPerReference(t *testing.T) {
	seq, _ := sharedSpoolPlan()
	// Tree cost: spool subtree (100+10) charged twice, consumers once.
	want := 0.0 + 2 + 2 + 5 + 5 + 2*(10+100)
	if got := TreeCost(seq); got != want {
		t.Errorf("TreeCost = %v, want %v", got, want)
	}
}

func TestDAGCostChargesSpoolOnce(t *testing.T) {
	seq, spool := sharedSpoolPlan()
	m := cost.NewModel(cost.DefaultCluster())
	read := m.SpoolReadCost(spool.Rel, spool.Dlvd.Part)
	want := 0.0 + 2 + 2 + 5 + 5 + (10 + 100) + 2*read
	if got := DAGCost(seq, m); !approx(got, want) {
		t.Errorf("DAGCost = %v, want %v", got, want)
	}
	if DAGCost(seq, m) >= TreeCost(seq) {
		// With two consumers and a heavy subtree, sharing must win.
		t.Errorf("DAG cost %v should be below tree cost %v", DAGCost(seq, m), TreeCost(seq))
	}
}

func TestDAGCostNoSpoolsEqualsTreeCost(t *testing.T) {
	// A conventional plan (no spools, duplicated pipelines) must be
	// priced identically by both views.
	ex1 := mkNode(&relop.PhysExtract{Path: "t"}, 1, "a", 100)
	ex2 := mkNode(&relop.PhysExtract{Path: "t"}, 1, "b", 100)
	agg1 := mkNode(&relop.StreamAgg{Keys: []string{"A"}}, 2, "a", 5, ex1)
	agg2 := mkNode(&relop.StreamAgg{Keys: []string{"B"}}, 2, "b", 5, ex2)
	seq := mkNode(&relop.PhysSequence{}, 3, "any", 0, agg1, agg2)
	m := cost.NewModel(cost.DefaultCluster())
	if tc, dc := TreeCost(seq), DAGCost(seq, m); !approx(tc, dc) {
		t.Errorf("tree %v != dag %v for spool-free plan", tc, dc)
	}
}

func TestDAGCostDistinctContextsNotShared(t *testing.T) {
	// Two spools over the same group but different contexts are
	// different materializations: both charged in full.
	ex1 := mkNode(&relop.PhysExtract{Path: "t"}, 1, "c1", 100)
	ex2 := mkNode(&relop.PhysExtract{Path: "t"}, 1, "c2", 100)
	sp1 := mkNode(&relop.PhysSpool{}, 2, "c1", 10, ex1)
	sp2 := mkNode(&relop.PhysSpool{}, 2, "c2", 10, ex2)
	seq := mkNode(&relop.PhysSequence{}, 3, "any", 0, sp1, sp2)
	m := cost.NewModel(cost.DefaultCluster())
	read := m.SpoolReadCost(sp1.Rel, sp1.Dlvd.Part)
	want := 2*(10+100) + 2*read
	if got := DAGCost(seq, m); !approx(got, want) {
		t.Errorf("DAGCost = %v, want %v", got, want)
	}
}

func TestDAGCostNestedSharedSpools(t *testing.T) {
	// A shared spool whose subtree contains another shared spool:
	// both are charged once; the inner spool gets one read from the
	// outer subtree plus one from its direct consumer.
	ex := mkNode(&relop.PhysExtract{Path: "t"}, 1, "x", 100)
	inner := mkNode(&relop.PhysSpool{}, 2, "x", 10, ex)
	mid := mkNode(&relop.StreamAgg{Keys: []string{"A"}}, 3, "x", 5, inner)
	outer := mkNode(&relop.PhysSpool{}, 4, "x", 10, mid)
	c1 := mkNode(&relop.PhysOutput{Path: "o1"}, 5, "x", 2, outer)
	c2 := mkNode(&relop.PhysOutput{Path: "o2"}, 6, "x", 2, outer)
	c3 := mkNode(&relop.PhysOutput{Path: "o3"}, 7, "x", 2, inner)
	seq := mkNode(&relop.PhysSequence{}, 8, "x", 0, c1, c2, c3)
	m := cost.NewModel(cost.DefaultCluster())
	read := m.SpoolReadCost(inner.Rel, inner.Dlvd.Part)
	// Each spool's subtree is charged once; the outer spool is read
	// twice (c1, c2) and the inner twice (once inside the outer's
	// counted subtree, once from c3).
	want := 2 + 2 + 2 + (10 + 5 + 10 + 100) + 2*read + 2*read
	if got := DAGCost(seq, m); !approx(got, want) {
		t.Errorf("DAGCost = %v, want %v", got, want)
	}
}

func TestCountOpsAndFindAll(t *testing.T) {
	seq, _ := sharedSpoolPlan()
	total, exch := CountOps(seq)
	if total != 7 {
		t.Errorf("total ops = %d, want 7 (distinct)", total)
	}
	if exch != 0 {
		t.Errorf("exchanges = %d", exch)
	}
	aggs := FindAll(seq, relop.KindStreamAgg)
	if len(aggs) != 2 {
		t.Errorf("found %d stream aggs", len(aggs))
	}
	spools := FindAll(seq, relop.KindPhysSpool)
	if len(spools) != 1 {
		t.Errorf("found %d spools, want 1 distinct", len(spools))
	}
}

func TestFormatElidesSharedSpool(t *testing.T) {
	seq, _ := sharedSpoolPlan()
	out := Format(seq)
	if got := strings.Count(out, "Extract (t)"); got != 1 {
		t.Errorf("extract printed %d times, want 1:\n%s", got, out)
	}
	if !strings.Contains(out, "(shared, see above)") {
		t.Errorf("second spool reference not elided:\n%s", out)
	}
	if !strings.Contains(out, "└── ") {
		t.Errorf("no tree connectors:\n%s", out)
	}
}

func TestShapeStable(t *testing.T) {
	seq, _ := sharedSpoolPlan()
	s := Shape(seq)
	want := `Sequence
  Output (Parallel) [o1]
    StreamAgg (Single) (A, B)
      Spool
        Extract (t)
  Output (Parallel) [o2]
    StreamAgg (Single) (B, C)
      Spool (shared)
`
	if s != want {
		t.Errorf("Shape:\n%s\nwant:\n%s", s, want)
	}
}

func TestDOT(t *testing.T) {
	seq, _ := sharedSpoolPlan()
	dot := DOT(seq, "S1")
	for _, want := range []string{"digraph plan", `label="S1"`, "->", "Spool", "lightyellow"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// The shared spool must appear as one node with two outgoing
	// edges (BT orientation: child -> parent).
	if got := strings.Count(dot, "Spool"); got != 1 {
		t.Errorf("spool nodes in dot = %d, want 1", got)
	}
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-6*(1+b)
}

// TestDAGCostProperties: on random spool-bearing DAGs, DAG cost never
// exceeds tree cost, and without spools they are equal.
func TestDAGCostProperties(t *testing.T) {
	m := cost.NewModel(cost.DefaultCluster())
	rng := func(seed int64) func() int {
		s := uint64(seed)*2654435761 + 1
		return func() int {
			s = s*6364136223846793005 + 1442695040888963407
			return int(s >> 33)
		}
	}
	for seed := int64(1); seed <= 60; seed++ {
		r := rng(seed)
		// Build a random DAG: leaves, unary/binary ops, occasional
		// spools; parents reference random earlier nodes.
		var nodes []*Node
		n := 3 + r()%10
		for i := 0; i < n; i++ {
			opCost := float64(1 + r()%100)
			if len(nodes) == 0 || r()%4 == 0 {
				nodes = append(nodes, mkNode(&relop.PhysExtract{Path: "t"}, i, "c", opCost))
				continue
			}
			c1 := nodes[r()%len(nodes)]
			if r()%3 == 0 {
				sp := mkNode(&relop.PhysSpool{}, 100+i, "p", opCost, c1)
				nodes = append(nodes, sp)
			} else if r()%2 == 0 && len(nodes) > 1 {
				c2 := nodes[r()%len(nodes)]
				nodes = append(nodes, mkNode(&relop.HashJoin{LeftKeys: []string{"A"}, RightKeys: []string{"A"}}, 200+i, "c", opCost, c1, c2))
			} else {
				nodes = append(nodes, mkNode(&relop.StreamAgg{Keys: []string{"A"}}, 300+i, "c", opCost, c1))
			}
		}
		root := mkNode(&relop.PhysSequence{}, 999, "c", 0, nodes...)
		tc, dc := TreeCost(root), DAGCost(root, m)
		// DAG costing deduplicates spool subtrees but adds one read
		// per reference, so it is bounded by the tree cost plus the
		// total read charges (and exceeds it only via reads — e.g. a
		// single-consumer spool).
		reads := RefCount(root, relop.KindPhysSpool) * m.SpoolReadCost(
			stats.Relation{Rows: 1000, RowBytes: 16}, props.RandomPartitioning())
		if dc > tc+reads+1e-9 {
			t.Fatalf("seed %d: DAG cost %v exceeds tree cost %v + reads %v", seed, dc, tc, reads)
		}
		if len(FindAll(root, relop.KindPhysSpool)) == 0 && !approx(tc, dc) {
			t.Fatalf("seed %d: spool-free plan costs differ: %v vs %v", seed, tc, dc)
		}
		if dc <= 0 {
			t.Fatalf("seed %d: non-positive DAG cost %v", seed, dc)
		}
		if dc2 := DAGCost(root, m); !approx(dc, dc2) {
			t.Fatalf("seed %d: DAGCost not deterministic: %v vs %v", seed, dc, dc2)
		}
	}
}

func TestDAGCostBounded(t *testing.T) {
	seq, _ := sharedSpoolPlan()
	m := cost.NewModel(cost.DefaultCluster())
	exact := DAGCost(seq, m)

	// A bound at or above the exact cost never prunes and returns the
	// exact value.
	for _, b := range []float64{exact, exact * 2, math.Inf(1)} {
		got, pruned := DAGCostBounded(seq, m, b)
		if pruned || !approx(got, exact) {
			t.Errorf("bound %v: got (%v, pruned=%v), want (%v, false)", b, got, pruned, exact)
		}
	}
	// Any bound strictly below the exact cost aborts with +Inf.
	for _, b := range []float64{0, exact / 2, exact - 1e-6} {
		got, pruned := DAGCostBounded(seq, m, b)
		if !pruned || !math.IsInf(got, 1) {
			t.Errorf("bound %v: got (%v, pruned=%v), want (+Inf, true)", b, got, pruned)
		}
	}
}
