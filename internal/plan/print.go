package plan

import (
	"fmt"
	"sort"
	"strings"
)

// Format renders the plan as an indented tree, one operator per line,
// annotated with delivered properties and estimated rows. A Spool
// subtree consumed by several parents is printed in full at its first
// reference and elided as "(shared, see above)" afterwards — matching
// how the paper draws Fig. 8(b).
func Format(root *Node) string {
	var b strings.Builder
	seen := map[string]bool{}
	var walk func(n *Node, prefix string, last bool, top bool)
	walk = func(n *Node, prefix string, last bool, top bool) {
		connector, childPrefix := "", ""
		if !top {
			if last {
				connector = prefix + "└── "
				childPrefix = prefix + "    "
			} else {
				connector = prefix + "├── "
				childPrefix = prefix + "│   "
			}
		}
		line := n.Op.String()
		if n.IsSpool() {
			k := n.spoolKey()
			if seen[k] {
				fmt.Fprintf(&b, "%s%s (shared, see above)\n", connector, line)
				return
			}
			seen[k] = true
		}
		fmt.Fprintf(&b, "%s%s  [%s, rows=%d, cost=%.1f]\n",
			connector, line, n.Dlvd, n.Rel.Rows, n.OpCost)
		for i, c := range n.Children {
			walk(c, childPrefix, i == len(n.Children)-1, false)
		}
	}
	walk(root, "", true, true)
	return b.String()
}

// Shape renders only the operator structure (no costs or stats), for
// golden plan-shape tests: each line is the operator's String with
// two-space indentation per depth, shared spools elided as in Format.
func Shape(root *Node) string {
	var b strings.Builder
	seen := map[string]bool{}
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		indent := strings.Repeat("  ", depth)
		if n.IsSpool() {
			k := n.spoolKey()
			if seen[k] {
				fmt.Fprintf(&b, "%s%s (shared)\n", indent, n.Op)
				return
			}
			seen[k] = true
		}
		fmt.Fprintf(&b, "%s%s\n", indent, n.Op)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return b.String()
}

// DOT renders the plan DAG in Graphviz dot syntax. Distinct nodes are
// emitted once; shared spools therefore appear as real DAG nodes with
// several incoming edges.
func DOT(root *Node, title string) string {
	nodes := topoOrder(root)
	id := map[*Node]int{}
	for i, n := range nodes {
		id[n] = i
	}
	var b strings.Builder
	b.WriteString("digraph plan {\n")
	if title != "" {
		fmt.Fprintf(&b, "  label=%q;\n  labelloc=t;\n", title)
	}
	b.WriteString("  rankdir=BT;\n  node [shape=box, fontname=\"monospace\"];\n")
	for _, n := range nodes {
		attrs := ""
		if n.IsSpool() {
			attrs = ", style=filled, fillcolor=lightyellow"
		}
		if kindIsExchange(n) {
			attrs = ", style=filled, fillcolor=lightgray"
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\\n%s\"%s];\n",
			id[n], escape(n.Op.String()), escape(n.Dlvd.String()), attrs)
	}
	// Deterministic edge order.
	type edge struct{ from, to int }
	var edges []edge
	for _, n := range nodes {
		for _, c := range n.Children {
			edges = append(edges, edge{id[c], id[n]})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  n%d -> n%d;\n", e.from, e.to)
	}
	b.WriteString("}\n")
	return b.String()
}

func kindIsExchange(n *Node) bool {
	return n.Op.Kind().String() == "Repartition"
}

func escape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}
