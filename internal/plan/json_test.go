package plan

import (
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/props"
	"repro/internal/relop"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	seq, _ := sharedSpoolPlan()
	data, err := MarshalPlan(seq)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	// Structure and rendering survive.
	if Format(back) != Format(seq) {
		t.Errorf("format changed:\n%s\nvs\n%s", Format(back), Format(seq))
	}
	// Costs survive, including DAG sharing.
	m := cost.NewModel(cost.DefaultCluster())
	if TreeCost(back) != TreeCost(seq) {
		t.Errorf("tree cost %v vs %v", TreeCost(back), TreeCost(seq))
	}
	if DAGCost(back, m) != DAGCost(seq, m) {
		t.Errorf("dag cost %v vs %v", DAGCost(back, m), DAGCost(seq, m))
	}
	// Sharing is by pointer again: the two consumers reference one
	// spool node.
	spools := FindAll(back, relop.KindPhysSpool)
	if len(spools) != 1 {
		t.Errorf("decoded spools = %d, want 1 shared", len(spools))
	}
	if got := RefCount(back, relop.KindPhysSpool); got != 2 {
		t.Errorf("decoded spool refs = %v", got)
	}
}

func TestPlanJSONOperatorCoverage(t *testing.T) {
	schema := relop.Schema{{Name: "A", Type: relop.TInt}, {Name: "B", Type: relop.TFloat}}
	pred := relop.Bin(relop.OpAnd,
		relop.Bin(relop.OpGt, relop.Col("A"), relop.Lit(relop.IntVal(3))),
		relop.Bin(relop.OpNe, relop.Col("B"), relop.Lit(relop.FloatVal(1.5))))
	ops := []relop.Operator{
		&relop.PhysExtract{Path: "t", Extractor: "E", FileID: 4, Columns: schema},
		&relop.PhysProject{Items: []relop.NamedExpr{
			{Expr: relop.Col("A"), As: "X"},
			{Expr: relop.Bin(relop.OpAdd, relop.Col("A"), relop.Lit(relop.StringVal("s"))), As: "Y"},
		}},
		&relop.PhysFilter{Pred: pred, Selectivity: 0.25},
		&relop.StreamAgg{Keys: []string{"A"}, Aggs: []relop.Aggregate{{Func: relop.AggMin, Arg: "B", As: "M"}}, Phase: relop.AggLocal},
		&relop.HashAgg{Keys: []string{"A"}, Aggs: []relop.Aggregate{{Func: relop.AggCount, As: "N"}}, Phase: relop.AggGlobal},
		&relop.Sort{Order: props.Ordering{{Col: "A", Desc: true}}},
		&relop.Repartition{To: props.RangePartitioning(props.NewOrdering("A")), MergeOrder: props.NewOrdering("A")},
		&relop.Repartition{To: props.ExactHashPartitioning(props.NewColSet("A", "B"))},
		&relop.SortMergeJoin{LeftKeys: []string{"A"}, RightKeys: []string{"B"}},
		&relop.HashJoin{LeftKeys: []string{"A"}, RightKeys: []string{"B"}},
		&relop.PhysSpool{},
		&relop.PhysUnion{},
		&relop.PhysOutput{Path: "o", Order: props.NewOrdering("A")},
		&relop.PhysSequence{},
	}
	for _, op := range ops {
		arity := op.Arity()
		if arity < 0 {
			arity = 2
		}
		children := make([]*Node, arity)
		for i := range children {
			children[i] = mkNode(&relop.PhysExtract{Path: "c"}, 50+i, "x", 1)
		}
		n := mkNode(op, 1, "ctx", 3, children...)
		data, err := MarshalPlan(n)
		if err != nil {
			t.Fatalf("%T: marshal: %v", op, err)
		}
		back, err := UnmarshalPlan(data)
		if err != nil {
			t.Fatalf("%T: unmarshal: %v\n%s", op, err, data)
		}
		if back.Op.Sig() != op.Sig() {
			t.Errorf("%T: sig %q -> %q", op, op.Sig(), back.Op.Sig())
		}
	}
}

func TestPlanJSONErrors(t *testing.T) {
	if _, err := UnmarshalPlan([]byte("not json")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := UnmarshalPlan([]byte(`{"root":5,"nodes":[]}`)); err == nil {
		t.Error("out-of-range root should fail")
	}
	if _, err := UnmarshalPlan([]byte(`{"root":0,"nodes":[{"op":{"kind":"Mystery"}}]}`)); err == nil {
		t.Error("unknown operator should fail")
	}
	if _, err := UnmarshalPlan([]byte(`{"root":0,"nodes":[{"op":{"kind":"Spool"},"children":[9]}]}`)); err == nil {
		t.Error("bad child index should fail")
	}
	// Logical operators are not serializable plans.
	n := mkNode(&relop.Extract{Path: "t"}, 1, "x", 1)
	if _, err := MarshalPlan(n); err == nil || !strings.Contains(err.Error(), "cannot encode") {
		t.Errorf("logical op should fail to encode: %v", err)
	}
}
