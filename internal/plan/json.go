package plan

import (
	"encoding/json"
	"fmt"

	"repro/internal/props"
	"repro/internal/relop"
	"repro/internal/stats"
)

// The JSON encoding preserves the plan's DAG structure: nodes are
// emitted once in a table, children reference node ids, so shared
// spool subplans stay shared after decoding. Operators are encoded as
// a tagged union on their kind name with kind-specific parameters;
// scalar expressions round-trip through their canonical string form
// and a small parser over it is avoided by encoding structurally.

// jsonPlan is the top-level document.
type jsonPlan struct {
	Root  int        `json:"root"`
	Nodes []jsonNode `json:"nodes"`
}

type jsonNode struct {
	Op       jsonOp       `json:"op"`
	Children []int        `json:"children,omitempty"`
	Group    int          `json:"group"`
	CtxKey   string       `json:"ctx,omitempty"`
	Schema   []jsonColumn `json:"schema,omitempty"`
	Rows     int64        `json:"rows"`
	RowBytes int64        `json:"rowBytes"`
	Part     jsonPart     `json:"part"`
	Order    []jsonSort   `json:"order,omitempty"`
	OpCost   float64      `json:"opCost"`
	FP       uint64       `json:"fp,omitempty"`
}

type jsonColumn struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

type jsonPart struct {
	Kind  string     `json:"kind"`
	Cols  []string   `json:"cols,omitempty"`
	Exact bool       `json:"exact,omitempty"`
	Sort  []jsonSort `json:"sort,omitempty"`
}

type jsonSort struct {
	Col  string `json:"col"`
	Desc bool   `json:"desc,omitempty"`
}

type jsonOp struct {
	Kind string `json:"kind"`
	// Operator parameters (kind-dependent; unused fields omitted).
	Path      string       `json:"path,omitempty"`
	Extractor string       `json:"extractor,omitempty"`
	FileID    int          `json:"fileId,omitempty"`
	Columns   []jsonColumn `json:"columns,omitempty"`
	Keys      []string     `json:"keys,omitempty"`
	Aggs      []jsonAgg    `json:"aggs,omitempty"`
	Phase     string       `json:"phase,omitempty"`
	LeftKeys  []string     `json:"leftKeys,omitempty"`
	RightKeys []string     `json:"rightKeys,omitempty"`
	Order     []jsonSort   `json:"order,omitempty"`
	To        *jsonPart    `json:"to,omitempty"`
	Merge     []jsonSort   `json:"merge,omitempty"`
	Items     []jsonItem   `json:"items,omitempty"`
	Pred      *jsonScalar  `json:"pred,omitempty"`
	Sel       float64      `json:"sel,omitempty"`
	FP        uint64       `json:"fp,omitempty"`
}

type jsonAgg struct {
	Func string `json:"func"`
	Arg  string `json:"arg,omitempty"`
	As   string `json:"as"`
}

type jsonItem struct {
	Expr jsonScalar `json:"expr"`
	As   string     `json:"as"`
}

type jsonScalar struct {
	Col string      `json:"col,omitempty"`
	Int *int64      `json:"int,omitempty"`
	Flt *float64    `json:"float,omitempty"`
	Str *string     `json:"str,omitempty"`
	Op  string      `json:"op,omitempty"`
	L   *jsonScalar `json:"l,omitempty"`
	R   *jsonScalar `json:"r,omitempty"`
}

// MarshalPlan encodes a plan DAG as JSON.
func MarshalPlan(root *Node) ([]byte, error) {
	nodes := topoOrder(root)
	id := map[*Node]int{}
	for i, n := range nodes {
		id[n] = i
	}
	doc := jsonPlan{Root: id[root]}
	for _, n := range nodes {
		jn := jsonNode{
			Group:    int(n.Group),
			CtxKey:   n.CtxKey,
			Rows:     n.Rel.Rows,
			RowBytes: n.Rel.RowBytes,
			Part:     encPart(n.Dlvd.Part),
			Order:    encOrder(n.Dlvd.Order),
			OpCost:   n.OpCost,
			FP:       n.FP,
		}
		var err error
		jn.Op, err = encOp(n.Op)
		if err != nil {
			return nil, err
		}
		for _, c := range n.Schema {
			jn.Schema = append(jn.Schema, jsonColumn{Name: c.Name, Type: c.Type.String()})
		}
		for _, ch := range n.Children {
			jn.Children = append(jn.Children, id[ch])
		}
		doc.Nodes = append(doc.Nodes, jn)
	}
	return json.MarshalIndent(doc, "", "  ")
}

// UnmarshalPlan decodes a plan DAG encoded by MarshalPlan, preserving
// node sharing.
func UnmarshalPlan(data []byte) (*Node, error) {
	var doc jsonPlan
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	nodes := make([]*Node, len(doc.Nodes))
	for i := range doc.Nodes {
		nodes[i] = &Node{}
	}
	for i, jn := range doc.Nodes {
		n := nodes[i]
		op, err := decOp(jn.Op)
		if err != nil {
			return nil, err
		}
		n.Op = op
		n.Group = props.GroupID(jn.Group)
		n.CtxKey = jn.CtxKey
		n.Rel = stats.Relation{Rows: jn.Rows, RowBytes: jn.RowBytes}
		n.Dlvd = props.Delivered{Part: decPart(jn.Part), Order: decOrder(jn.Order)}
		n.OpCost = jn.OpCost
		n.FP = jn.FP
		for _, c := range jn.Schema {
			n.Schema = append(n.Schema, relop.Column{Name: c.Name, Type: decType(c.Type)})
		}
		for _, ci := range jn.Children {
			if ci < 0 || ci >= len(nodes) {
				return nil, fmt.Errorf("plan json: child index %d out of range", ci)
			}
			n.Children = append(n.Children, nodes[ci])
		}
	}
	if doc.Root < 0 || doc.Root >= len(nodes) {
		return nil, fmt.Errorf("plan json: root index %d out of range", doc.Root)
	}
	return nodes[doc.Root], nil
}

func encPart(p props.Partitioning) jsonPart {
	return jsonPart{Kind: p.Kind.String(), Cols: p.Cols.Cols(), Exact: p.Exact, Sort: encOrder(p.SortCols)}
}

func decPart(j jsonPart) props.Partitioning {
	var kind props.PartitionKind
	switch j.Kind {
	case "serial":
		kind = props.PartSerial
	case "hash":
		kind = props.PartHash
	case "random":
		kind = props.PartRandom
	case "broadcast":
		kind = props.PartBroadcast
	case "range":
		kind = props.PartRange
	default:
		kind = props.PartAny
	}
	return props.Partitioning{
		Kind: kind, Cols: props.NewColSet(j.Cols...), Exact: j.Exact, SortCols: decOrder(j.Sort),
	}
}

func encOrder(o props.Ordering) []jsonSort {
	out := make([]jsonSort, len(o))
	for i, sc := range o {
		out[i] = jsonSort{Col: sc.Col, Desc: sc.Desc}
	}
	return out
}

func decOrder(j []jsonSort) props.Ordering {
	out := make(props.Ordering, len(j))
	for i, sc := range j {
		out[i] = props.SortCol{Col: sc.Col, Desc: sc.Desc}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func decType(s string) relop.Type {
	switch s {
	case "float":
		return relop.TFloat
	case "string":
		return relop.TString
	default:
		return relop.TInt
	}
}
