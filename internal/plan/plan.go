// Package plan represents executable physical plans extracted from the
// memo, and implements the two cost views the paper's comparison
// needs:
//
//   - TreeCost charges every operator once per reference path — the
//     cost a conventional optimizer computes, where a shared
//     subexpression consumed k times is (implicitly) executed k times.
//
//   - DAGCost charges each distinct materialized Spool subplan once
//     plus one read per consumer — the true cost of a plan that
//     executes a common subexpression once. Plans without spools have
//     identical Tree and DAG costs, so the conventional baseline is
//     priced consistently.
package plan

import (
	"fmt"
	"math"

	"repro/internal/cost"
	"repro/internal/props"
	"repro/internal/relop"
	"repro/internal/stats"
)

// Node is one operator of a physical plan. Children may be shared
// (the same *Node referenced by several parents) when consumers agreed
// on an optimization context; sharing is only executable across a
// Spool, which DAGCost and the executor both rely on.
type Node struct {
	// Op is the physical operator.
	Op relop.Operator
	// Children are the input plans.
	Children []*Node
	// Group is the memo group this node implements.
	Group props.GroupID
	// CtxKey identifies the optimization context (required properties
	// plus pins) the node was chosen under; two references to one
	// group with equal CtxKey are the same physical computation.
	CtxKey string
	// Schema is the node's output schema.
	Schema relop.Schema
	// Rel is the node's estimated output statistics.
	Rel stats.Relation
	// Dlvd is the node's delivered physical properties.
	Dlvd props.Delivered
	// OpCost is the operator's own estimated cost (excluding
	// children).
	OpCost float64
	// FP is the Definition-1 fingerprint of the logical subexpression
	// this node computes, when known (zero otherwise). Spools carry
	// their input computation's fingerprint; enforcers carry none.
	// Session caches use it to match plan nodes against cached
	// artifacts, and it survives the JSON round-trip so reloaded
	// plans can participate in caching.
	FP uint64
}

// spoolKey identifies a distinct materialization.
func (n *Node) spoolKey() string {
	return fmt.Sprintf("%d|%s", n.Group, n.CtxKey)
}

// IsSpool reports whether the node materializes its input.
func (n *Node) IsSpool() bool {
	_, ok := n.Op.(*relop.PhysSpool)
	return ok
}

// TreeCost returns the conventional per-reference cost of the plan:
// every node is charged once for each path from the root that reaches
// it. Shared pointers are handled in linear time via memoized subtree
// sums (the multiplicity is implicit in parents re-adding the child's
// subtree sum).
func TreeCost(root *Node) float64 {
	cache := map[*Node]float64{}
	var walk func(n *Node) float64
	walk = func(n *Node) float64 {
		if c, ok := cache[n]; ok {
			return c
		}
		sum := n.OpCost
		for _, ch := range n.Children {
			sum += walk(ch)
		}
		cache[n] = sum
		return sum
	}
	return walk(root)
}

// DAGCost returns the cost of the plan executed as a DAG: each
// distinct Spool materialization (identified by memo group and
// context) is charged once — its subtree plus the materialization
// write — and every reference to it is charged one spool read. All
// other operators are charged once per reference path, as they truly
// execute per consumer.
func DAGCost(root *Node, m cost.Model) float64 {
	c, _ := DAGCostBounded(root, m, math.Inf(1))
	return c
}

// DAGCostBounded is DAGCost with a branch-and-bound upper limit: the
// accumulation aborts the moment the partial total exceeds bound,
// returning (+Inf, true). Operator and spool-read costs are
// non-negative, so every partial total is a lower bound of the final
// DAG cost and the early exit is sound: a pruned plan provably costs
// more than bound. A bound of +Inf never prunes and returns the exact
// cost.
func DAGCostBounded(root *Node, m cost.Model, bound float64) (float64, bool) {
	order := topoOrder(root)
	em := map[*Node]float64{root: 1}
	seenSpool := map[string]bool{}
	total := 0.0
	for _, n := range order {
		e := em[n]
		if e == 0 {
			continue
		}
		if n.IsSpool() {
			total += e * m.SpoolReadCost(n.Rel, n.Dlvd.Part)
			if k := n.spoolKey(); !seenSpool[k] {
				seenSpool[k] = true
				total += n.OpCost
				for _, c := range n.Children {
					em[c]++
				}
			}
		} else {
			total += e * n.OpCost
			for _, c := range n.Children {
				em[c] += e
			}
		}
		if total > bound {
			return math.Inf(1), true
		}
	}
	return total, false
}

// topoOrder returns the pointer DAG's nodes with every parent before
// any of its children.
func topoOrder(root *Node) []*Node {
	// Kahn's algorithm over reference counts.
	indeg := map[*Node]int{}
	var discover func(n *Node)
	seen := map[*Node]bool{}
	discover = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, c := range n.Children {
			indeg[c]++
			discover(c)
		}
	}
	discover(root)
	queue := []*Node{root}
	var order []*Node
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, c := range n.Children {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	return order
}

// Operators returns the plan's distinct nodes in topological order
// (parents first). Spool subtrees referenced several times appear
// once.
func Operators(root *Node) []*Node {
	return topoOrder(root)
}

// CountOps returns the number of distinct operator nodes and the
// number of exchange (Repartition) nodes, useful in tests and
// experiment reports.
func CountOps(root *Node) (total, exchanges int) {
	for _, n := range topoOrder(root) {
		total++
		if _, ok := n.Op.(*relop.Repartition); ok {
			exchanges++
		}
	}
	return
}

// FindAll returns the distinct nodes whose operator kind matches k.
func FindAll(root *Node, k relop.OpKind) []*Node {
	var out []*Node
	for _, n := range topoOrder(root) {
		if n.Op.Kind() == k {
			out = append(out, n)
		}
	}
	return out
}

// RefCount returns how many times operators of kind k effectively
// execute under the plan's DAG semantics: per reference path, except
// that each distinct Spool materialization counts its subtree once.
// A conventional S1 plan reads the input twice (RefCount of
// PhysExtract = 2); the Fig. 8(b) plan reads it once.
func RefCount(root *Node, k relop.OpKind) float64 {
	order := topoOrder(root)
	em := map[*Node]float64{root: 1}
	seenSpool := map[string]bool{}
	total := 0.0
	for _, n := range order {
		e := em[n]
		if e == 0 {
			continue
		}
		if n.Op.Kind() == k {
			total += e
		}
		if n.IsSpool() {
			if key := n.spoolKey(); !seenSpool[key] {
				seenSpool[key] = true
				for _, c := range n.Children {
					em[c]++
				}
			}
			continue
		}
		for _, c := range n.Children {
			em[c] += e
		}
	}
	return total
}
