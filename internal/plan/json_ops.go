package plan

import (
	"fmt"

	"repro/internal/props"
	"repro/internal/relop"
)

// encOp encodes a physical operator as its tagged-union form.
func encOp(op relop.Operator) (jsonOp, error) {
	j := jsonOp{Kind: op.Kind().String()}
	switch o := op.(type) {
	case *relop.PhysExtract:
		j.Path, j.Extractor, j.FileID = o.Path, o.Extractor, o.FileID
		for _, c := range o.Columns {
			j.Columns = append(j.Columns, jsonColumn{Name: c.Name, Type: c.Type.String()})
		}
	case *relop.PhysProject:
		for _, it := range o.Items {
			js, err := encScalar(it.Expr)
			if err != nil {
				return jsonOp{}, err
			}
			j.Items = append(j.Items, jsonItem{Expr: *js, As: it.As})
		}
	case *relop.PhysFilter:
		js, err := encScalar(o.Pred)
		if err != nil {
			return jsonOp{}, err
		}
		j.Pred, j.Sel = js, o.Selectivity
	case *relop.StreamAgg:
		j.Keys, j.Aggs, j.Phase = o.Keys, encAggs(o.Aggs), o.Phase.String()
	case *relop.HashAgg:
		j.Keys, j.Aggs, j.Phase = o.Keys, encAggs(o.Aggs), o.Phase.String()
	case *relop.Sort:
		j.Order = encOrder(o.Order)
	case *relop.Repartition:
		to := encPart(o.To)
		j.To, j.Merge = &to, encOrder(o.MergeOrder)
	case *relop.SortMergeJoin:
		j.LeftKeys, j.RightKeys = o.LeftKeys, o.RightKeys
	case *relop.HashJoin:
		j.LeftKeys, j.RightKeys = o.LeftKeys, o.RightKeys
	case *relop.PhysSpool, *relop.PhysSequence, *relop.PhysUnion:
		// No parameters.
	case *relop.PhysOutput:
		j.Path, j.Order = o.Path, encOrder(o.Order)
	case *relop.PhysCacheScan:
		j.Path, j.FP = o.Path, o.FP
		for _, c := range o.Columns {
			j.Columns = append(j.Columns, jsonColumn{Name: c.Name, Type: c.Type.String()})
		}
		to := encPart(o.Part)
		j.To, j.Order = &to, encOrder(o.Order)
	default:
		return jsonOp{}, fmt.Errorf("plan json: cannot encode operator %T", op)
	}
	return j, nil
}

// decOp decodes a tagged operator.
func decOp(j jsonOp) (relop.Operator, error) {
	switch j.Kind {
	case "PhysExtract":
		var schema relop.Schema
		for _, c := range j.Columns {
			schema = append(schema, relop.Column{Name: c.Name, Type: decType(c.Type)})
		}
		return &relop.PhysExtract{Path: j.Path, Extractor: j.Extractor, FileID: j.FileID, Columns: schema}, nil
	case "Compute":
		var items []relop.NamedExpr
		for _, it := range j.Items {
			e, err := decScalar(&it.Expr)
			if err != nil {
				return nil, err
			}
			items = append(items, relop.NamedExpr{Expr: e, As: it.As})
		}
		return &relop.PhysProject{Items: items}, nil
	case "Select":
		pred, err := decScalar(j.Pred)
		if err != nil {
			return nil, err
		}
		return &relop.PhysFilter{Pred: pred, Selectivity: j.Sel}, nil
	case "StreamAgg":
		return &relop.StreamAgg{Keys: j.Keys, Aggs: decAggs(j.Aggs), Phase: decPhase(j.Phase)}, nil
	case "HashAgg":
		return &relop.HashAgg{Keys: j.Keys, Aggs: decAggs(j.Aggs), Phase: decPhase(j.Phase)}, nil
	case "Sort":
		return &relop.Sort{Order: decOrder(j.Order)}, nil
	case "Repartition":
		var to props.Partitioning
		if j.To != nil {
			to = decPart(*j.To)
		}
		return &relop.Repartition{To: to, MergeOrder: decOrder(j.Merge)}, nil
	case "SortMergeJoin":
		return &relop.SortMergeJoin{LeftKeys: j.LeftKeys, RightKeys: j.RightKeys}, nil
	case "HashJoin":
		return &relop.HashJoin{LeftKeys: j.LeftKeys, RightKeys: j.RightKeys}, nil
	case "Spool":
		return &relop.PhysSpool{}, nil
	case "Sequence":
		return &relop.PhysSequence{}, nil
	case "UnionAll":
		return &relop.PhysUnion{}, nil
	case "Output":
		return &relop.PhysOutput{Path: j.Path, Order: decOrder(j.Order)}, nil
	case "CacheScan":
		var schema relop.Schema
		for _, c := range j.Columns {
			schema = append(schema, relop.Column{Name: c.Name, Type: decType(c.Type)})
		}
		var part props.Partitioning
		if j.To != nil {
			part = decPart(*j.To)
		}
		return &relop.PhysCacheScan{
			Path: j.Path, Columns: schema, Part: part, Order: decOrder(j.Order), FP: j.FP,
		}, nil
	default:
		return nil, fmt.Errorf("plan json: unknown operator kind %q", j.Kind)
	}
}

func encAggs(aggs []relop.Aggregate) []jsonAgg {
	out := make([]jsonAgg, len(aggs))
	for i, a := range aggs {
		out[i] = jsonAgg{Func: a.Func.String(), Arg: a.Arg, As: a.As}
	}
	return out
}

func decAggs(j []jsonAgg) []relop.Aggregate {
	out := make([]relop.Aggregate, len(j))
	for i, a := range j {
		out[i] = relop.Aggregate{Func: decAggFunc(a.Func), Arg: a.Arg, As: a.As}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func decAggFunc(s string) relop.AggFunc {
	switch s {
	case "Count":
		return relop.AggCount
	case "Min":
		return relop.AggMin
	case "Max":
		return relop.AggMax
	case "Avg":
		return relop.AggAvg
	default:
		return relop.AggSum
	}
}

func decPhase(s string) relop.AggPhase {
	switch s {
	case "Local":
		return relop.AggLocal
	case "Global":
		return relop.AggGlobal
	default:
		return relop.AggSingle
	}
}

func encScalar(e relop.Scalar) (*jsonScalar, error) {
	switch x := e.(type) {
	case *relop.ColRef:
		return &jsonScalar{Col: x.Name}, nil
	case *relop.ConstExpr:
		switch x.Val.Kind {
		case relop.TInt:
			v := x.Val.I
			return &jsonScalar{Int: &v}, nil
		case relop.TFloat:
			v := x.Val.F
			return &jsonScalar{Flt: &v}, nil
		default:
			v := x.Val.S
			return &jsonScalar{Str: &v}, nil
		}
	case *relop.BinExpr:
		l, err := encScalar(x.L)
		if err != nil {
			return nil, err
		}
		r, err := encScalar(x.R)
		if err != nil {
			return nil, err
		}
		return &jsonScalar{Op: x.Op.String(), L: l, R: r}, nil
	default:
		return nil, fmt.Errorf("plan json: cannot encode scalar %T", e)
	}
}

var binByName = map[string]relop.BinKind{
	"+": relop.OpAdd, "-": relop.OpSub, "*": relop.OpMul, "/": relop.OpDiv,
	"=": relop.OpEq, "!=": relop.OpNe, "<": relop.OpLt, "<=": relop.OpLe,
	">": relop.OpGt, ">=": relop.OpGe, "AND": relop.OpAnd, "OR": relop.OpOr,
}

func decScalar(j *jsonScalar) (relop.Scalar, error) {
	if j == nil {
		return nil, fmt.Errorf("plan json: missing scalar")
	}
	switch {
	case j.Col != "":
		return relop.Col(j.Col), nil
	case j.Int != nil:
		return relop.Lit(relop.IntVal(*j.Int)), nil
	case j.Flt != nil:
		return relop.Lit(relop.FloatVal(*j.Flt)), nil
	case j.Str != nil:
		return relop.Lit(relop.StringVal(*j.Str)), nil
	case j.Op != "":
		kind, ok := binByName[j.Op]
		if !ok {
			return nil, fmt.Errorf("plan json: unknown scalar op %q", j.Op)
		}
		l, err := decScalar(j.L)
		if err != nil {
			return nil, err
		}
		r, err := decScalar(j.R)
		if err != nil {
			return nil, err
		}
		return relop.Bin(kind, l, r), nil
	default:
		return nil, fmt.Errorf("plan json: empty scalar")
	}
}
