package plan

import (
	"testing"

	"repro/internal/props"
	"repro/internal/relop"
)

// TestPlanJSONFingerprintRoundTrip: node fingerprints are part of the
// persisted plan — a loaded plan must expose the same FPs so session
// tooling (P6 lint, cache admission over stored plans) keeps working.
func TestPlanJSONFingerprintRoundTrip(t *testing.T) {
	seq, spool := sharedSpoolPlan()
	var stamp func(n *Node)
	stamp = func(n *Node) {
		n.FP = uint64(n.Group) * 0x9e3779b97f4a7c15
		for _, c := range n.Children {
			stamp(c)
		}
	}
	stamp(seq)
	data, err := MarshalPlan(seq)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	want := map[props.GroupID]uint64{}
	for _, n := range Operators(seq) {
		want[n.Group] = n.FP
	}
	for _, n := range Operators(back) {
		if n.FP != want[n.Group] {
			t.Errorf("G%d: FP %x, want %x", n.Group, n.FP, want[n.Group])
		}
	}
	_ = spool
}

// TestPlanJSONCacheScanRoundTrip: the CacheScan leaf survives the
// JSON encoding with its recorded path, layout, and fingerprint.
func TestPlanJSONCacheScanRoundTrip(t *testing.T) {
	schema := relop.Schema{{Name: "A", Type: relop.TInt}, {Name: "S", Type: relop.TInt}}
	op := &relop.PhysCacheScan{
		Path:    "__cache/deadbeef-1",
		Columns: schema,
		Part:    props.HashPartitioning(props.NewColSet("A")),
		Order:   props.NewOrdering("A"),
		FP:      0xdeadbeef,
	}
	n := mkNode(op, 9, "ctx", 3)
	n.FP = op.FP
	n.Schema = schema
	n.Dlvd = props.Delivered{Part: op.Part, Order: op.Order}

	data, err := MarshalPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := back.Op.(*relop.PhysCacheScan)
	if !ok {
		t.Fatalf("decoded op = %T, want *relop.PhysCacheScan", back.Op)
	}
	if got.Path != op.Path || got.FP != op.FP {
		t.Errorf("decoded = {path %q fp %x}, want {path %q fp %x}", got.Path, got.FP, op.Path, op.FP)
	}
	if !got.Part.Equal(op.Part) || got.Order.Key() != op.Order.Key() {
		t.Errorf("decoded layout = %v/%v, want %v/%v", got.Part, got.Order, op.Part, op.Order)
	}
	if len(got.Columns) != len(schema) || back.FP != n.FP {
		t.Errorf("decoded columns/FP mismatch: %d cols, fp %x", len(got.Columns), back.FP)
	}
	if got.Sig() != op.Sig() {
		t.Errorf("Sig changed across round-trip: %q vs %q", got.Sig(), op.Sig())
	}
}
