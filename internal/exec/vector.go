package exec

import (
	"repro/internal/relop"
)

// Vector is one typed column of a columnar batch. Exactly one backing
// slice is non-nil; ints, floats, and strs mirror the three relop
// value kinds, bools holds comparison results (rendered as 0/1 ints
// at the row boundary), and vals is the fallback for columns that mix
// kinds. A constant vector (cons) stores a single element logically
// repeated n times.
type Vector struct {
	ints   []int64
	floats []float64
	strs   []string
	bools  []bool
	vals   []relop.Value
	cons   bool
	n      int
}

// ix maps a logical position to the backing index.
func (v *Vector) ix(i int32) int32 {
	if v.cons {
		return 0
	}
	return i
}

// At materializes the value at position i.
func (v *Vector) At(i int32) relop.Value {
	j := v.ix(i)
	switch {
	case v.ints != nil:
		return relop.IntVal(v.ints[j])
	case v.floats != nil:
		return relop.FloatVal(v.floats[j])
	case v.strs != nil:
		return relop.StringVal(v.strs[j])
	case v.bools != nil:
		if v.bools[j] {
			return relop.IntVal(1)
		}
		return relop.IntVal(0)
	default:
		return v.vals[j]
	}
}

// constVector builds a length-n constant vector holding v.
func constVector(v relop.Value, n int) *Vector {
	vec := &Vector{cons: true, n: n}
	switch v.Kind {
	case relop.TInt:
		vec.ints = []int64{v.I}
	case relop.TFloat:
		vec.floats = []float64{v.F}
	case relop.TString:
		vec.strs = []string{v.S}
	default:
		vec.vals = []relop.Value{v}
	}
	return vec
}

// gather returns a dense copy of the vector restricted to the given
// physical positions, in order, preserving the backing type.
func (v *Vector) gather(sel []int32) *Vector {
	n := len(sel)
	if v.cons {
		cp := *v
		cp.n = n
		return &cp
	}
	out := &Vector{n: n}
	switch {
	case v.ints != nil:
		xs := make([]int64, n)
		for k, i := range sel {
			xs[k] = v.ints[i]
		}
		out.ints = xs
	case v.floats != nil:
		xs := make([]float64, n)
		for k, i := range sel {
			xs[k] = v.floats[i]
		}
		out.floats = xs
	case v.strs != nil:
		xs := make([]string, n)
		for k, i := range sel {
			xs[k] = v.strs[i]
		}
		out.strs = xs
	case v.bools != nil:
		xs := make([]bool, n)
		for k, i := range sel {
			xs[k] = v.bools[i]
		}
		out.bools = xs
	default:
		xs := make([]relop.Value, n)
		for k, i := range sel {
			xs[k] = v.vals[i]
		}
		out.vals = xs
	}
	return out
}

// vecBuilder accumulates values into a vector, keeping the backing
// typed as long as every value shares one kind and degrading to the
// generic vals backing on the first mismatch.
type vecBuilder struct {
	ints   []int64
	floats []float64
	strs   []string
	vals   []relop.Value
	kind   relop.Type
	n      int
}

func (b *vecBuilder) add(v relop.Value) {
	if b.vals == nil {
		if b.n == 0 {
			b.kind = v.Kind
		}
		if v.Kind != b.kind {
			b.degrade()
		}
	}
	if b.vals != nil {
		b.vals = append(b.vals, v)
		b.n++
		return
	}
	switch b.kind {
	case relop.TInt:
		b.ints = append(b.ints, v.I)
	case relop.TFloat:
		b.floats = append(b.floats, v.F)
	default:
		b.strs = append(b.strs, v.S)
	}
	b.n++
}

// degrade rewrites the typed backing accumulated so far into vals.
func (b *vecBuilder) degrade() {
	vals := make([]relop.Value, 0, b.n+1)
	switch b.kind {
	case relop.TInt:
		for _, x := range b.ints {
			vals = append(vals, relop.IntVal(x))
		}
		b.ints = nil
	case relop.TFloat:
		for _, x := range b.floats {
			vals = append(vals, relop.FloatVal(x))
		}
		b.floats = nil
	default:
		for _, s := range b.strs {
			vals = append(vals, relop.StringVal(s))
		}
		b.strs = nil
	}
	b.vals = vals
}

// vec finalizes the builder. An empty builder yields an empty int
// vector so every column stays classifiable.
func (b *vecBuilder) vec() *Vector {
	out := &Vector{n: b.n}
	switch {
	case b.vals != nil:
		out.vals = b.vals
	case b.n == 0:
		out.ints = []int64{}
	case b.kind == relop.TInt:
		out.ints = b.ints
	case b.kind == relop.TFloat:
		out.floats = b.floats
	default:
		out.strs = b.strs
	}
	return out
}

// colData is one partition of a columnar intermediate: one vector per
// schema column, all of physical length n, plus an optional selection
// vector listing the visible row positions in order. A nil selection
// means every row is visible. Filters emit selections over shared
// column vectors (no copying); operators that want dense input
// compact first.
type colData struct {
	cols []*Vector
	n    int
	sel  []int32
}

// rows returns the visible row count.
func (c *colData) rows() int {
	if c.sel != nil {
		return len(c.sel)
	}
	return c.n
}

// positions returns the visible physical positions in order. The
// result must not be mutated (it may alias c.sel).
func (c *colData) positions() []int32 {
	if c.sel != nil {
		return c.sel
	}
	all := make([]int32, c.n)
	for i := range all {
		all[i] = int32(i)
	}
	return all
}

// compact gathers the selection away, returning a dense batch (c
// itself when already dense).
func (c *colData) compact() *colData {
	if c.sel == nil {
		return c
	}
	cols := make([]*Vector, len(c.cols))
	for j, v := range c.cols {
		cols[j] = v.gather(c.sel)
	}
	return &colData{cols: cols, n: len(c.sel)}
}

// rowAt materializes the row at physical position pos.
func (c *colData) rowAt(pos int32) relop.Row {
	r := make(relop.Row, len(c.cols))
	for j, v := range c.cols {
		r[j] = v.At(pos)
	}
	return r
}

// materialize converts the visible rows to row format, in order.
func (c *colData) materialize() []relop.Row {
	out := make([]relop.Row, 0, c.rows())
	if c.sel != nil {
		for _, i := range c.sel {
			out = append(out, c.rowAt(i))
		}
		return out
	}
	for i := int32(0); int(i) < c.n; i++ {
		out = append(out, c.rowAt(i))
	}
	return out
}

// colsFromRows builds a dense batch of the given width from rows.
func colsFromRows(width int, rows []relop.Row) *colData {
	bs := make([]vecBuilder, width)
	for _, row := range rows {
		for j := 0; j < width; j++ {
			bs[j].add(row[j])
		}
	}
	cols := make([]*Vector, width)
	for j := range cols {
		cols[j] = bs[j].vec()
	}
	return &colData{cols: cols, n: len(rows)}
}

// emptyCols returns a zero-row dense batch of the given width.
func emptyCols(width int) *colData { return colsFromRows(width, nil) }

// sameClass reports whether two vectors share a directly appendable
// backing (same typed slice kind, neither constant).
func sameClass(a, b *Vector) bool {
	if a.cons || b.cons {
		return false
	}
	return (a.ints != nil) == (b.ints != nil) &&
		(a.floats != nil) == (b.floats != nil) &&
		(a.strs != nil) == (b.strs != nil) &&
		(a.bools != nil) == (b.bools != nil) &&
		(a.vals != nil) == (b.vals != nil)
}

// concatVecs concatenates vectors column-wise. Uniformly backed
// inputs copy slices directly; mixed inputs rebuild through a
// builder (bools render as ints there, matching At).
func concatVecs(vs []*Vector, total int) *Vector {
	uniform := true
	for _, v := range vs[1:] {
		if !sameClass(vs[0], v) {
			uniform = false
			break
		}
	}
	if uniform && len(vs) > 0 && !vs[0].cons {
		out := &Vector{n: total}
		switch {
		case vs[0].ints != nil:
			xs := make([]int64, 0, total)
			for _, v := range vs {
				xs = append(xs, v.ints...)
			}
			out.ints = xs
		case vs[0].floats != nil:
			xs := make([]float64, 0, total)
			for _, v := range vs {
				xs = append(xs, v.floats...)
			}
			out.floats = xs
		case vs[0].strs != nil:
			xs := make([]string, 0, total)
			for _, v := range vs {
				xs = append(xs, v.strs...)
			}
			out.strs = xs
		case vs[0].bools != nil:
			xs := make([]bool, 0, total)
			for _, v := range vs {
				xs = append(xs, v.bools...)
			}
			out.bools = xs
		default:
			xs := make([]relop.Value, 0, total)
			for _, v := range vs {
				xs = append(xs, v.vals...)
			}
			out.vals = xs
		}
		return out
	}
	var b vecBuilder
	for _, v := range vs {
		for i := int32(0); int(i) < v.n; i++ {
			b.add(v.At(i))
		}
	}
	return b.vec()
}

// concatCols concatenates dense batches (callers compact first).
// Zero-row inputs do not constrain the output's backing types.
func concatCols(width int, parts []*colData) *colData {
	var nonEmpty []*colData
	total := 0
	for _, p := range parts {
		if p != nil && p.n > 0 {
			nonEmpty = append(nonEmpty, p)
			total += p.n
		}
	}
	if len(nonEmpty) == 0 {
		return emptyCols(width)
	}
	if len(nonEmpty) == 1 {
		return nonEmpty[0]
	}
	cols := make([]*Vector, width)
	vs := make([]*Vector, len(nonEmpty))
	for j := 0; j < width; j++ {
		for i, p := range nonEmpty {
			vs[i] = p.cols[j]
		}
		cols[j] = concatVecs(vs, total)
	}
	return &colData{cols: cols, n: total}
}
