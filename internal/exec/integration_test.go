package exec_test

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/opt"
	"repro/internal/rules"
)

// equivalenceScripts are executed through three paths — conventional
// plan, CSE plan, single-node reference — which must all agree.
var equivalenceScripts = map[string]string{
	"S1": `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) as S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) as S2 FROM R GROUP BY B,C;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
`,
	"S2": `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,A,Sum(S) as S1 FROM R GROUP BY B,A;
R2 = SELECT A,C,Sum(S) as S2 FROM R GROUP BY A,C;
R3 = SELECT A,Sum(S) as S3 FROM R GROUP BY A;
OUTPUT R1 TO "o1";
OUTPUT R2 TO "o2";
OUTPUT R3 TO "o3";
`,
	"S3": `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,C,Sum(S) as S1 FROM R GROUP BY B,C;
R2 = SELECT B,A,Sum(S) as S2 FROM R GROUP BY B,A;
RR = SELECT R1.B,A,C,S1,S2 FROM R1,R2 WHERE R1.B=R2.B;
T0 = EXTRACT A,B,C,D FROM "test2.log" USING LogExtractor;
T = SELECT A,B,C,Sum(D) as S FROM T0 GROUP BY A,B,C;
T1 = SELECT B,C,Sum(S) as S1 FROM T GROUP BY B,C;
T2 = SELECT B,A,Sum(S) as S2 FROM T GROUP BY B,A;
TT = SELECT T1.B,A,C,S1,S2 FROM T1,T2 WHERE T1.B=T2.B;
OUTPUT RR TO "result1.out";
OUTPUT TT TO "result2.out";
`,
	"S4": `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,C,Sum(S) as S1 FROM R GROUP BY B,C;
R2 = SELECT B,A,Sum(S) as S2 FROM R GROUP BY B,A;
RR = SELECT R1.B,A,C FROM R1,R2 WHERE R1.B=R2.B;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
OUTPUT RR TO "result3.out";
`,
	"filters": `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
F = SELECT A, B, D FROM R0 WHERE A > 3 AND B != 2;
R = SELECT A,B,Sum(D) as S, Count() as N, Min(D) as MN, Max(D) as MX FROM F GROUP BY A,B;
R1 = SELECT A,Sum(S) as T FROM R GROUP BY A;
R2 = SELECT B,Sum(N) as M FROM R GROUP BY B;
OUTPUT R1 TO "o1";
OUTPUT R2 TO "o2";
`,
	"textual-dup": `
X0 = EXTRACT A,B,D FROM "test.log" USING LogExtractor;
X = SELECT A,B,Sum(D) as S FROM X0 GROUP BY A,B;
Y0 = EXTRACT A,B,D FROM "test.log" USING LogExtractor;
Y = SELECT A,B,Sum(D) as S FROM Y0 GROUP BY A,B;
X1 = SELECT A,Sum(S) as SA FROM X GROUP BY A;
Y1 = SELECT B,Sum(S) as SB FROM Y GROUP BY B;
OUTPUT X1 TO "o1";
OUTPUT Y1 TO "o2";
`,
}

// TestPlanEquivalence runs every script through conventional and CSE
// optimization with both rule profiles, executes the plans on the
// simulated cluster with validation on, and compares all results to
// the reference interpreter.
func TestPlanEquivalence(t *testing.T) {
	for name, src := range equivalenceScripts {
		t.Run(name, func(t *testing.T) {
			w := datagen.SmallWorkload(name, src, 3_000, 1_000, 7)
			// Reference result from the unoptimized logical DAG.
			mRef, err := logical.BuildSource(src, w.Cat)
			if err != nil {
				t.Fatal(err)
			}
			want, err := exec.Reference(mRef, w.FS)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 {
				t.Fatal("reference produced no outputs")
			}

			profiles := map[string]rules.Config{
				"default": rules.DefaultConfig(),
				"scope":   rules.SCOPEProfile(),
			}
			for pname, prof := range profiles {
				for _, cse := range []bool{false, true} {
					opts := opt.DefaultOptions()
					opts.EnableCSE = cse
					opts.Rules = prof
					m, err := logical.BuildSource(src, w.Cat)
					if err != nil {
						t.Fatal(err)
					}
					res, err := opt.Optimize(m, opts)
					if err != nil {
						t.Fatalf("%s cse=%v: %v", pname, cse, err)
					}
					cl := testClusterFS(t, 5, w.FS)
					got, err := cl.Run(res.Plan)
					if err != nil {
						t.Fatalf("%s cse=%v: execution failed: %v", pname, cse, err)
					}
					if len(got) != len(want) {
						t.Fatalf("%s cse=%v: outputs %d, want %d", pname, cse, len(got), len(want))
					}
					for path, wt := range want {
						gt, ok := got[path]
						if !ok {
							t.Fatalf("%s cse=%v: missing output %q", pname, cse, path)
						}
						if !gt.Equal(wt) {
							t.Errorf("%s cse=%v: output %q differs: %s", pname, cse, path, gt.Diff(wt))
						}
					}
				}
			}
		})
	}
}

// TestSimulatorAgreesWithCostModel checks the estimator's shape: the
// plan the optimizer says is cheaper must also do less metered work
// in the simulator.
func TestSimulatorAgreesWithCostModel(t *testing.T) {
	src := equivalenceScripts["S1"]
	w := datagen.SmallWorkload("S1", src, 20_000, 100_000, 11)

	run := func(cse bool) (float64, exec.Metrics) {
		opts := opt.DefaultOptions()
		opts.EnableCSE = cse
		opts.Rules = rules.SCOPEProfile()
		opts.Cluster.Machines = 5
		m, err := logical.BuildSource(src, w.Cat)
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.Optimize(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		cl := testClusterFS(t, 5, w.FS)
		if _, err := cl.Run(res.Plan); err != nil {
			t.Fatal(err)
		}
		return res.Cost, cl.Metrics()
	}
	convCost, convM := run(false)
	cseCost, cseM := run(true)
	t.Logf("conv: cost=%.1f metrics=%+v", convCost, convM)
	t.Logf("cse:  cost=%.1f metrics=%+v", cseCost, cseM)
	if cseCost >= convCost {
		t.Fatalf("estimated: cse %v should beat conv %v", cseCost, convCost)
	}
	// The metered execution must agree on the ranking. Note the CSE
	// plan deliberately trades extra disk traffic (the spool write
	// plus per-consumer reads) for less network and CPU work, so disk
	// alone may grow; exchanges, network bytes, and processed rows
	// must all shrink.
	if cseM.NetBytes >= convM.NetBytes {
		t.Errorf("cse net %d should be below conv %d", cseM.NetBytes, convM.NetBytes)
	}
	if cseM.RowsProcessed >= convM.RowsProcessed {
		t.Errorf("cse rows %d should be below conv %d", cseM.RowsProcessed, convM.RowsProcessed)
	}
	if cseM.Exchanges >= convM.Exchanges {
		t.Errorf("cse exchanges %d should be below conv %d", cseM.Exchanges, convM.Exchanges)
	}
	if cseM.SpoolMaterializations != 1 || cseM.SpoolReads != 2 {
		t.Errorf("cse spool metrics = %+v", cseM)
	}
}
