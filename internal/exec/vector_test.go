package exec

import (
	"strings"
	"testing"

	"repro/internal/relop"
)

// The vectorized kernels promise EvalScalar's exact semantics, batch
// at a time. These unit tests pin that contract down at the kernel
// level, below the differential engine tests: every operator over
// every backing-type pairing must agree with the reference row
// evaluator value-for-value (strict struct equality — int 2 is not
// float 2.0), and the CSE memo, guarded short-circuiting, and filter
// selection must reproduce the row engine's quirks.

var vectorOps = []relop.BinKind{
	relop.OpAdd, relop.OpSub, relop.OpMul, relop.OpDiv,
	relop.OpEq, relop.OpNe, relop.OpLt, relop.OpLe, relop.OpGt, relop.OpGe,
	relop.OpAnd, relop.OpOr,
}

// crossRows builds the cross product of two value sets as two-column
// rows, so each batch exercises one backing-type pairing densely.
func crossRows(as, bs []relop.Value) []relop.Row {
	var rows []relop.Row
	for _, a := range as {
		for _, b := range bs {
			rows = append(rows, relop.Row{a, b})
		}
	}
	return rows
}

// checkVecAgainstScalar evaluates expr over the batch with the
// vectorized program and row-at-a-time with EvalScalar, and requires
// identical values or identical errors.
func checkVecAgainstScalar(t *testing.T, label string, schema relop.Schema, rows []relop.Row, expr relop.Scalar) {
	t.Helper()
	p, err := compileProg([]relop.Scalar{expr}, schema)
	if err != nil {
		t.Fatalf("%s: compile: %v", label, err)
	}
	out, vecErr := newVecEval(p, colsFromRows(len(schema), rows)).root(0)

	want := make([]relop.Value, len(rows))
	var rowErr error
	for i, row := range rows {
		want[i], rowErr = relop.EvalScalar(expr, row, schema)
		if rowErr != nil {
			break
		}
	}
	if (vecErr != nil) != (rowErr != nil) {
		t.Fatalf("%s: vector err %v, scalar err %v", label, vecErr, rowErr)
	}
	if vecErr != nil {
		if vecErr.Error() != rowErr.Error() {
			t.Fatalf("%s: vector err %q, scalar err %q", label, vecErr, rowErr)
		}
		return
	}
	for i := range rows {
		if got := out.At(int32(i)); got != want[i] {
			t.Fatalf("%s: row %v = %#v, scalar reference %#v", label, rows[i], got, want[i])
		}
	}
}

// TestVectorBinKernelsMatchScalar sweeps every binary operator over
// every pairing of typed column backings (int, float, string, and the
// mixed-kind vals fallback), comparing each position against
// EvalScalar. Division by zero is included: the batch must fail with
// the reference evaluator's exact error.
func TestVectorBinKernelsMatchScalar(t *testing.T) {
	ints := []relop.Value{relop.IntVal(0), relop.IntVal(2), relop.IntVal(-1), relop.IntVal(7)}
	floats := []relop.Value{relop.FloatVal(0), relop.FloatVal(2.5), relop.FloatVal(-1.5)}
	strs := []relop.Value{relop.StringVal(""), relop.StringVal("a"), relop.StringVal("b")}
	mixed := []relop.Value{relop.IntVal(3), relop.FloatVal(3), relop.StringVal("3"), relop.IntVal(0)}
	sets := map[string][]relop.Value{"int": ints, "float": floats, "str": strs, "mixed": mixed}
	types := map[string]relop.Type{"int": relop.TInt, "float": relop.TFloat, "str": relop.TString, "mixed": relop.TInt}

	for lname, lvals := range sets {
		for rname, rvals := range sets {
			schema := relop.Schema{{Name: "a", Type: types[lname]}, {Name: "b", Type: types[rname]}}
			rows := crossRows(lvals, rvals)
			for _, op := range vectorOps {
				label := lname + " " + op.String() + " " + rname
				checkVecAgainstScalar(t, label, schema, rows,
					relop.Bin(op, relop.Col("a"), relop.Col("b")))
			}
		}
	}
}

// TestVectorConstAndNestedExprs covers constant operands (constant
// vectors take distinct stride-0 fast paths) and nested trees.
func TestVectorConstAndNestedExprs(t *testing.T) {
	schema := relop.Schema{{Name: "a", Type: relop.TInt}, {Name: "b", Type: relop.TFloat}}
	rows := crossRows(
		[]relop.Value{relop.IntVal(0), relop.IntVal(5), relop.IntVal(-3)},
		[]relop.Value{relop.FloatVal(0.5), relop.FloatVal(-2), relop.FloatVal(4)},
	)
	consts := []relop.Value{relop.IntVal(2), relop.FloatVal(0.5), relop.StringVal("k")}
	for _, op := range vectorOps {
		for _, c := range consts {
			checkVecAgainstScalar(t, "a "+op.String()+" const", schema, rows,
				relop.Bin(op, relop.Col("a"), relop.Lit(c)))
			checkVecAgainstScalar(t, "const "+op.String()+" b", schema, rows,
				relop.Bin(op, relop.Lit(c), relop.Col("b")))
		}
	}
	// (a+b)*(a-2) > b  — nested arithmetic under a comparison.
	nested := relop.Bin(relop.OpGt,
		relop.Bin(relop.OpMul,
			relop.Bin(relop.OpAdd, relop.Col("a"), relop.Col("b")),
			relop.Bin(relop.OpSub, relop.Col("a"), relop.Lit(relop.IntVal(2)))),
		relop.Col("b"))
	checkVecAgainstScalar(t, "nested", schema, rows, nested)
}

// TestVectorCSEMemoHits: a shared subexpression evaluates once per
// batch; every further reference is served from the memo and counts
// one hit per selected row. Leaf references (columns, constants) are
// free in both engines and must not count.
func TestVectorCSEMemoHits(t *testing.T) {
	schema := relop.Schema{{Name: "a", Type: relop.TInt}, {Name: "b", Type: relop.TInt}}
	var rows []relop.Row
	for i := 0; i < 10; i++ {
		rows = append(rows, relop.Row{relop.IntVal(int64(i)), relop.IntVal(int64(i % 3))})
	}
	sum := relop.Bin(relop.OpAdd, relop.Col("a"), relop.Col("b"))
	exprs := []relop.Scalar{
		relop.Bin(relop.OpMul, sum, sum),            // second (a+b) hits the memo
		relop.Bin(relop.OpSub, sum, relop.Col("a")), // third hit; bare col ref is free
	}
	p, err := compileProg(exprs, schema)
	if err != nil {
		t.Fatal(err)
	}
	ev := newVecEval(p, colsFromRows(2, rows))
	for i := range exprs {
		if _, err := ev.root(i); err != nil {
			t.Fatal(err)
		}
	}
	if want := int64(2 * len(rows)); ev.hits != want {
		t.Errorf("memo hits = %d, want %d (two shared (a+b) references over %d rows)", ev.hits, want, len(rows))
	}

	// Column-only sharing earns nothing: a+a reuses the leaf a.
	p2, err := compileProg([]relop.Scalar{relop.Bin(relop.OpAdd, relop.Col("a"), relop.Col("a"))}, schema)
	if err != nil {
		t.Fatal(err)
	}
	ev2 := newVecEval(p2, colsFromRows(2, rows))
	if _, err := ev2.root(0); err != nil {
		t.Fatal(err)
	}
	if ev2.hits != 0 {
		t.Errorf("leaf-only reuse counted %d memo hits, want 0", ev2.hits)
	}
}

// TestVectorGuardedShortCircuit: in (b != 0) AND (a/b > 0), the row
// engine never evaluates the division on rows where the integer guard
// is false. The batch evaluator must restrict the right operand to
// the surviving sub-selection — eagerly evaluating the whole column
// would hit division by zero on rows the row engine skips.
func TestVectorGuardedShortCircuit(t *testing.T) {
	schema := relop.Schema{{Name: "a", Type: relop.TInt}, {Name: "b", Type: relop.TInt}}
	rows := []relop.Row{
		{relop.IntVal(6), relop.IntVal(2)},
		{relop.IntVal(6), relop.IntVal(0)}, // guarded: division must not run
		{relop.IntVal(-6), relop.IntVal(3)},
		{relop.IntVal(0), relop.IntVal(0)}, // guarded
	}
	guard := relop.Bin(relop.OpNe, relop.Col("b"), relop.Lit(relop.IntVal(0)))
	div := relop.Bin(relop.OpGt,
		relop.Bin(relop.OpDiv, relop.Col("a"), relop.Col("b")),
		relop.Lit(relop.IntVal(0)))
	checkVecAgainstScalar(t, "guarded AND", schema, rows, relop.Bin(relop.OpAnd, guard, div))

	// The OR dual: (b = 0) OR (a/b > 0) short-circuits on b = 0.
	zero := relop.Bin(relop.OpEq, relop.Col("b"), relop.Lit(relop.IntVal(0)))
	checkVecAgainstScalar(t, "guarded OR", schema, rows, relop.Bin(relop.OpOr, zero, div))

	// Unguarded, the same division must fail — and with the reference
	// evaluator's error.
	checkVecAgainstScalar(t, "unguarded div", schema, rows, div)
}

// TestVectorSelFromPredStrictness: the filter keeps a row only for an
// integer nonzero predicate value. Floats and strings are truthy to
// AND/OR but must never pass a filter, exactly like the row engine.
func TestVectorSelFromPredStrictness(t *testing.T) {
	all := func(n int) []int32 {
		s := make([]int32, n)
		for i := range s {
			s[i] = int32(i)
		}
		return s
	}
	cases := []struct {
		name string
		v    *Vector
		want []int32
	}{
		{"ints", &Vector{ints: []int64{0, 5, -2, 0}, n: 4}, []int32{1, 2}},
		{"bools", &Vector{bools: []bool{true, false, true}, n: 3}, []int32{0, 2}},
		{"floats never pass", &Vector{floats: []float64{0, 1.5, -3}, n: 3}, nil},
		{"strings never pass", &Vector{strs: []string{"", "x", "y"}, n: 3}, nil},
		{"vals int-strict", &Vector{vals: []relop.Value{
			relop.IntVal(3), relop.FloatVal(3), relop.StringVal("x"), relop.IntVal(0),
		}, n: 4}, []int32{0}},
		{"const nonzero", constVector(relop.IntVal(1), 3), []int32{0, 1, 2}},
		{"const zero", constVector(relop.IntVal(0), 3), nil},
	}
	for _, tc := range cases {
		got := selFromPred(tc.v, all(tc.v.n))
		if len(got) != len(tc.want) {
			t.Errorf("%s: sel = %v, want %v", tc.name, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: sel = %v, want %v", tc.name, got, tc.want)
				break
			}
		}
	}
}

// TestVectorBuilderDegrade: a builder stays typed while one kind
// flows in, degrades losslessly to the generic backing on the first
// mismatch, and an empty builder still yields a classifiable vector.
func TestVectorBuilderDegrade(t *testing.T) {
	var b vecBuilder
	in := []relop.Value{relop.IntVal(1), relop.IntVal(2), relop.FloatVal(2.5), relop.StringVal("x")}
	for _, v := range in {
		b.add(v)
	}
	v := b.vec()
	if v.vals == nil {
		t.Fatal("mixed-kind builder kept a typed backing")
	}
	for i, want := range in {
		if got := v.At(int32(i)); got != want {
			t.Errorf("position %d = %#v, want %#v", i, got, want)
		}
	}

	var typed vecBuilder
	typed.add(relop.IntVal(4))
	typed.add(relop.IntVal(5))
	if tv := typed.vec(); tv.ints == nil {
		t.Error("uniform int builder degraded")
	}
	var empty vecBuilder
	if ev := empty.vec(); ev.ints == nil || ev.n != 0 {
		t.Errorf("empty builder yielded %+v, want empty int vector", empty.vec())
	}
}

// TestVectorGatherConcat: gather preserves backing type and constant
// compression; concatenation over mismatched backings rebuilds
// through a builder with bools rendered as 0/1 ints, matching At.
func TestVectorGatherConcat(t *testing.T) {
	c := constVector(relop.StringVal("k"), 5)
	g := c.gather([]int32{4, 0, 2})
	if !g.cons || g.n != 3 || g.At(1) != relop.StringVal("k") {
		t.Errorf("const gather = %+v", g)
	}
	v := &Vector{ints: []int64{10, 11, 12, 13}, n: 4}
	gv := v.gather([]int32{3, 1})
	if gv.ints == nil || gv.n != 2 || gv.At(0) != relop.IntVal(13) || gv.At(1) != relop.IntVal(11) {
		t.Errorf("int gather = %+v", gv)
	}

	a := &colData{cols: []*Vector{{bools: []bool{true, false}, n: 2}}, n: 2}
	b := &colData{cols: []*Vector{{ints: []int64{7}, n: 1}}, n: 1}
	cat := concatCols(1, []*colData{a, b, emptyCols(1)})
	if cat.n != 3 {
		t.Fatalf("concat rows = %d, want 3", cat.n)
	}
	want := []relop.Value{relop.IntVal(1), relop.IntVal(0), relop.IntVal(7)}
	for i, w := range want {
		if got := cat.cols[0].At(int32(i)); got != w {
			t.Errorf("concat[%d] = %#v, want %#v", i, got, w)
		}
	}
	if e := concatCols(2, nil); e.n != 0 || len(e.cols) != 2 {
		t.Errorf("empty concat = %+v", e)
	}
}

// TestVectorCompileProgUnknownColumn: compilation surfaces the same
// unknown-column error text as EvalScalar.
func TestVectorCompileProgUnknownColumn(t *testing.T) {
	schema := relop.Schema{{Name: "a", Type: relop.TInt}}
	_, err := compileProg([]relop.Scalar{relop.Col("zz")}, schema)
	if err == nil || !strings.Contains(err.Error(), `column "zz" not in schema`) {
		t.Fatalf("err = %v, want unknown-column error", err)
	}
	_, refErr := relop.EvalScalar(relop.Col("zz"), relop.Row{relop.IntVal(1)}, schema)
	if refErr == nil || err.Error() != refErr.Error() {
		t.Fatalf("compile err %q, reference err %q — texts must match", err, refErr)
	}
}
