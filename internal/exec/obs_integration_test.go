package exec_test

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/rules"
)

// optimizeWorkload compiles and optimizes a builtin script with CSE on.
func optimizeWorkload(t *testing.T, script string) (*opt.Result, *exec.FileStore) {
	t.Helper()
	w := bench.Small("W", script)
	opts := opt.DefaultOptions()
	opts.EnableCSE = true
	opts.Rules = rules.SCOPEProfile()
	m, err := logical.BuildSource(w.Script, w.Cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Optimize(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, w.FS
}

// TestConcurrentRunRegistryMerge is the additive invariant of the
// metrics registry under parallel execution: N concurrent Cluster.Run
// calls publishing into one shared registry leave exactly the sum of N
// independent per-run snapshots — no double counts, no lost updates.
func TestConcurrentRunRegistryMerge(t *testing.T) {
	res, fs := optimizeWorkload(t, bench.ScriptS1)

	// Per-run baseline: one run on a private cluster and registry.
	priv := obs.NewRegistry()
	cl := testClusterFS(t, 5, fs)
	cl.Workers = 4
	cl.Obs = priv
	if _, err := cl.Run(res.Plan); err != nil {
		t.Fatal(err)
	}
	perRun := priv.Snapshot()
	if perRun.Counters["exec.rows_processed"] == 0 {
		t.Fatal("per-run snapshot metered no rows")
	}

	const n = 6
	want := obs.NewSnapshot()
	for i := 0; i < n; i++ {
		want = want.Add(perRun)
	}

	shared := obs.NewRegistry()
	scl := testClusterFS(t, 5, fs)
	scl.Workers = 4
	scl.Obs = shared
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = scl.Run(res.Plan)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}

	got := shared.Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("shared registry after %d concurrent runs:\n%vwant %d x per-run snapshot:\n%v", n, got, n, want)
	}
	if hv := got.Hists["exec.run_rows_processed"]; hv.Count != n {
		t.Errorf("run-size histogram count = %d, want %d", hv.Count, n)
	}
}
