// Package exec is the distributed execution substrate standing in for
// Dryad/Cosmos: a deterministic simulator of a shared-nothing cluster
// that actually runs physical plans over in-memory partitioned
// tables, metering disk, network, and CPU work.
//
// Beyond producing results, the executor validates the optimizer's
// correctness claims at runtime: a Global or Single aggregation whose
// input is not really colocated by grouping key, or a stream
// aggregation whose input is not really clustered, fails loudly
// instead of silently producing wrong answers. The repository's
// equivalence tests run every script through the conventional plan,
// the CSE plan, and a single-node reference interpreter, and require
// identical results.
package exec

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/relop"
)

// Table is an in-memory relation.
type Table struct {
	Schema relop.Schema
	Rows   []relop.Row
}

// Bytes returns the accounted storage size of the table (8 bytes per
// value, matching the statistics defaults).
func (t *Table) Bytes() int64 {
	return int64(len(t.Rows)) * int64(len(t.Schema)) * 8
}

// Clone deep-copies the table.
func (t *Table) Clone() *Table {
	rows := make([]relop.Row, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = r.Clone()
	}
	return &Table{Schema: append(relop.Schema{}, t.Schema...), Rows: rows}
}

// Canonical returns the table's rows rendered and sorted, for
// order-insensitive comparison.
func (t *Table) Canonical() []string {
	out := make([]string, len(t.Rows))
	for i, r := range t.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// Equal reports whether two tables hold the same multiset of rows
// under the same column names (order-insensitive).
func (t *Table) Equal(u *Table) bool {
	if len(t.Rows) != len(u.Rows) || len(t.Schema) != len(u.Schema) {
		return false
	}
	for i := range t.Schema {
		if t.Schema[i].Name != u.Schema[i].Name {
			return false
		}
	}
	a, b := t.Canonical(), u.Canonical()
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Diff returns a short human-readable difference summary, for test
// failure messages.
func (t *Table) Diff(u *Table) string {
	if t.Equal(u) {
		return ""
	}
	a, b := t.Canonical(), u.Canonical()
	var sb strings.Builder
	fmt.Fprintf(&sb, "rows %d vs %d", len(a), len(b))
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			fmt.Fprintf(&sb, "; first diff at %d: %q vs %q", i, a[i], b[i])
			break
		}
	}
	return sb.String()
}

// FileStore maps file paths to tables — the simulator's distributed
// file system. It is safe for concurrent use: parallel runs write
// their outputs through Put while other partitions read inputs.
type FileStore struct {
	mu    sync.RWMutex
	files map[string]*Table // guarded by mu
	// versions counts mutations (Put or Remove) per path; session
	// caches use it to invalidate entries whose source files changed.
	versions map[string]int64 // guarded by mu
	// removes / removedBytes meter Remove calls (cache eviction work).
	removes      int64 // guarded by mu
	removedBytes int64 // guarded by mu
}

// NewFileStore returns an empty store.
func NewFileStore() *FileStore {
	return &FileStore{files: map[string]*Table{}, versions: map[string]int64{}}
}

// Put stores a table under path, bumping the path's version.
func (fs *FileStore) Put(path string, t *Table) {
	fs.mu.Lock()
	fs.files[path] = t
	fs.versions[path]++
	fs.mu.Unlock()
}

// Remove deletes the table stored under path, returning its accounted
// size and whether it existed. Removal is a mutation, so it bumps the
// path's version; the removed bytes are metered on the store (see
// RemoveStats) since eviction happens outside any cluster run.
func (fs *FileStore) Remove(path string) (int64, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	t, ok := fs.files[path]
	if !ok {
		return 0, false
	}
	delete(fs.files, path)
	fs.versions[path]++
	n := t.Bytes()
	fs.removes++
	fs.removedBytes += n
	return n, true
}

// RemoveStats reports how many Remove calls deleted a file and the
// total accounted bytes they freed.
func (fs *FileStore) RemoveStats() (count int64, bytes int64) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.removes, fs.removedBytes
}

// Version returns how many times path has been mutated (Put or
// Remove). Zero means the store has never held the path.
func (fs *FileStore) Version(path string) int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.versions[path]
}

// Get returns the table stored under path.
func (fs *FileStore) Get(path string) (*Table, bool) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	t, ok := fs.files[path]
	return t, ok
}

// Paths lists stored paths in sorted order.
func (fs *FileStore) Paths() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
