package exec

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/plan"
	"repro/internal/props"
	"repro/internal/relop"
)

// Run executes a physical plan on the cluster. Output operators write
// their results into the cluster's FileStore; the returned map also
// exposes them by path. A shared Spool (same memo group and
// optimization context) is materialized once and re-read by every
// consumer; any other node referenced several times re-executes per
// reference, exactly as the DAG-aware cost model assumes.
func (c *Cluster) Run(root *plan.Node) (map[string]*Table, error) {
	r := &runner{c: c, spools: map[string]*pdata{}, outputs: map[string]*Table{}}
	if _, err := r.exec(root); err != nil {
		return nil, err
	}
	return r.outputs, nil
}

type runner struct {
	c       *Cluster
	spools  map[string]*pdata
	outputs map[string]*Table
	// actuals, when non-nil, records per-node output row counts
	// (EXPLAIN ANALYZE support).
	actuals map[*plan.Node]int64
}

func (r *runner) exec(n *plan.Node) (*pdata, error) {
	switch op := n.Op.(type) {
	case *relop.PhysSequence:
		for _, ch := range n.Children {
			if _, err := r.exec(ch); err != nil {
				return nil, err
			}
		}
		if r.actuals != nil {
			r.actuals[n] = 0
		}
		return newPData(relop.Schema{}, r.c.Machines), nil
	case *relop.PhysSpool:
		key := fmt.Sprintf("%d|%s", n.Group, n.CtxKey)
		if p, ok := r.spools[key]; ok {
			r.c.metrics.SpoolReads++
			r.c.metrics.DiskBytesRead += p.bytes()
			return p, nil
		}
		in, err := r.exec(n.Children[0])
		if err != nil {
			return nil, err
		}
		r.spools[key] = in
		if r.actuals != nil {
			r.actuals[n] = in.rows()
		}
		r.c.metrics.SpoolMaterializations++
		r.c.metrics.DiskBytesWritten += in.bytes()
		r.c.metrics.SpoolReads++
		r.c.metrics.DiskBytesRead += in.bytes()
		return in, nil
	case *relop.PhysOutput:
		in, err := r.exec(n.Children[0])
		if err != nil {
			return nil, err
		}
		t := &Table{Schema: in.schema, Rows: in.gather()}
		if r.c.Validate && !op.Order.Empty() {
			if err := checkSorted(t.Rows, t.Schema, op.Order); err != nil {
				return nil, fmt.Errorf("exec: output %q: %w", op.Path, err)
			}
		}
		r.c.metrics.DiskBytesWritten += t.Bytes()
		r.c.FS.Put(op.Path, t)
		r.outputs[op.Path] = t
		if r.actuals != nil {
			r.actuals[n] = int64(len(t.Rows))
		}
		return in, nil
	}
	// Row-producing operators.
	ins := make([]*pdata, len(n.Children))
	for i, ch := range n.Children {
		p, err := r.exec(ch)
		if err != nil {
			return nil, err
		}
		ins[i] = p
		r.c.metrics.RowsProcessed += p.rows()
	}
	out, err := r.apply(n, ins)
	if err != nil {
		return nil, err
	}
	if r.actuals != nil {
		r.actuals[n] = out.rows()
	}
	return out, nil
}

func (r *runner) apply(n *plan.Node, ins []*pdata) (*pdata, error) {
	switch op := n.Op.(type) {
	case *relop.PhysExtract:
		return r.extract(op)
	case *relop.PhysFilter:
		return r.filter(op, ins[0])
	case *relop.PhysProject:
		return r.project(op, ins[0], n.Schema)
	case *relop.Sort:
		return r.sortOp(op, ins[0])
	case *relop.Repartition:
		return r.repartition(op, ins[0])
	case *relop.StreamAgg:
		return r.aggregate(op.Keys, op.Aggs, op.Phase, ins[0], n.Schema, true)
	case *relop.HashAgg:
		return r.aggregate(op.Keys, op.Aggs, op.Phase, ins[0], n.Schema, false)
	case *relop.SortMergeJoin:
		return r.join(op.LeftKeys, op.RightKeys, ins[0], ins[1], n.Schema)
	case *relop.HashJoin:
		return r.join(op.LeftKeys, op.RightKeys, ins[0], ins[1], n.Schema)
	case *relop.PhysUnion:
		return r.union(ins, n.Schema)
	default:
		return nil, fmt.Errorf("exec: unsupported operator %T", n.Op)
	}
}

// union concatenates inputs partition-wise (UNION ALL).
func (r *runner) union(ins []*pdata, schema relop.Schema) (*pdata, error) {
	out := newPData(schema, r.c.Machines)
	for _, in := range ins {
		if in.broadcast {
			return nil, fmt.Errorf("exec: union over broadcast input would multiply rows")
		}
		for m, part := range in.parts {
			out.parts[m] = append(out.parts[m], part...)
		}
	}
	return out, nil
}

func (r *runner) extract(op *relop.PhysExtract) (*pdata, error) {
	t, ok := r.c.FS.Get(op.Path)
	if !ok {
		return nil, fmt.Errorf("exec: input file %q not found", op.Path)
	}
	// Project the stored table onto the extracted columns (the
	// extractor's declared schema must be a subset of the file's).
	idx, ok := t.Schema.Indexes(op.Columns.Names())
	if !ok {
		return nil, fmt.Errorf("exec: file %q schema %v missing extract columns %v",
			op.Path, t.Schema, op.Columns.Names())
	}
	out := newPData(op.Columns, r.c.Machines)
	for i, row := range t.Rows {
		nr := make(relop.Row, len(idx))
		for j, k := range idx {
			nr[j] = row[k]
		}
		m := i % r.c.Machines
		out.parts[m] = append(out.parts[m], nr)
	}
	r.c.metrics.DiskBytesRead += out.bytes()
	return out, nil
}

func (r *runner) filter(op *relop.PhysFilter, in *pdata) (*pdata, error) {
	out := newPData(in.schema, r.c.Machines)
	out.broadcast = in.broadcast
	for m, part := range in.parts {
		for _, row := range part {
			v, err := relop.EvalScalar(op.Pred, row, in.schema)
			if err != nil {
				return nil, err
			}
			if v.Kind == relop.TInt && v.I != 0 {
				out.parts[m] = append(out.parts[m], row)
			}
		}
	}
	return out, nil
}

func (r *runner) project(op *relop.PhysProject, in *pdata, schema relop.Schema) (*pdata, error) {
	out := newPData(schema, r.c.Machines)
	out.broadcast = in.broadcast
	for m, part := range in.parts {
		for _, row := range part {
			nr := make(relop.Row, len(op.Items))
			for j, it := range op.Items {
				v, err := relop.EvalScalar(it.Expr, row, in.schema)
				if err != nil {
					return nil, err
				}
				nr[j] = v
			}
			out.parts[m] = append(out.parts[m], nr)
		}
	}
	return out, nil
}

func (r *runner) sortOp(op *relop.Sort, in *pdata) (*pdata, error) {
	out := newPData(in.schema, r.c.Machines)
	out.broadcast = in.broadcast
	for m, part := range in.parts {
		cp := make([]relop.Row, len(part))
		copy(cp, part)
		if err := sortRows(cp, in.schema, op.Order); err != nil {
			return nil, err
		}
		out.parts[m] = cp
	}
	return out, nil
}

func (r *runner) repartition(op *relop.Repartition, in *pdata) (*pdata, error) {
	r.c.metrics.Exchanges++
	// Broadcast input: operate on its single logical copy.
	src := in.parts
	srcBytes := in.bytes()
	if in.broadcast {
		src = [][]relop.Row{in.parts[0]}
		srcBytes = int64(len(in.parts[0])) * int64(len(in.schema)) * 8
	}
	out := newPData(in.schema, r.c.Machines)
	switch op.To.Kind {
	case props.PartSerial:
		var all []relop.Row
		for _, part := range src {
			all = append(all, part...)
		}
		out.parts[0] = all
		r.c.metrics.NetBytes += srcBytes
	case props.PartBroadcast:
		var all []relop.Row
		for _, part := range src {
			all = append(all, part...)
		}
		for m := range out.parts {
			out.parts[m] = all
		}
		out.broadcast = true
		r.c.metrics.NetBytes += srcBytes * int64(r.c.Machines)
	case props.PartHash:
		idx, ok := in.schema.Indexes(op.To.Cols.Cols())
		if !ok {
			return nil, fmt.Errorf("exec: repartition columns %v not in schema %v", op.To.Cols, in.schema)
		}
		for _, part := range src {
			for _, row := range part {
				d := hashDest(row, idx, r.c.Machines)
				out.parts[d] = append(out.parts[d], row)
			}
		}
		r.c.metrics.NetBytes += srcBytes
	case props.PartRange:
		if err := rangePartition(op.To.SortCols, in.schema, src, out); err != nil {
			return nil, err
		}
		r.c.metrics.NetBytes += srcBytes
	default:
		return nil, fmt.Errorf("exec: cannot repartition to %v", op.To)
	}
	if !op.MergeOrder.Empty() {
		// Merge receive: each machine merges the sorted streams it
		// received; sorting achieves the same deterministic result.
		for m := range out.parts {
			cp := make([]relop.Row, len(out.parts[m]))
			copy(cp, out.parts[m])
			if err := sortRows(cp, in.schema, op.MergeOrder); err != nil {
				return nil, err
			}
			out.parts[m] = cp
		}
	}
	return out, nil
}

// aggregate implements stream and hash aggregation. Stream mode
// requires clustered input (validated); Global/Single phases require
// each key to be colocated on a single machine (validated).
func (r *runner) aggregate(keys []string, aggs []relop.Aggregate, phase relop.AggPhase, in *pdata, schema relop.Schema, stream bool) (*pdata, error) {
	if in.broadcast {
		return nil, fmt.Errorf("exec: aggregation over broadcast input would multiply results")
	}
	keyIdx, ok := in.schema.Indexes(keys)
	if !ok {
		return nil, fmt.Errorf("exec: aggregation keys %v not in schema %v", keys, in.schema)
	}
	argIdx := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Func == relop.AggCount && a.Arg == "" {
			argIdx[i] = -1
			continue
		}
		j := in.schema.Index(a.Arg)
		if j < 0 {
			return nil, fmt.Errorf("exec: aggregate argument %q not in schema %v", a.Arg, in.schema)
		}
		argIdx[i] = j
	}
	globalSeen := map[string]int{}
	out := newPData(schema, r.c.Machines)
	for m, part := range in.parts {
		groups := map[string][]*relop.AggState{}
		var order []string
		keyRows := map[string]relop.Row{}
		lastKey := ""
		closed := map[string]bool{}
		for _, row := range part {
			k := keyOf(row, keyIdx)
			if stream && r.c.Validate {
				// Clustering check: once a run for a key ends, the
				// key must not reappear in this partition.
				if k != lastKey {
					if closed[k] {
						return nil, fmt.Errorf("exec: stream aggregation input not clustered on %v (key %s reappeared)", keys, k)
					}
					if lastKey != "" {
						closed[lastKey] = true
					}
					lastKey = k
				}
			}
			st, okG := groups[k]
			if !okG {
				st = make([]*relop.AggState, len(aggs))
				for i, a := range aggs {
					st[i] = relop.NewAggState(a.Func)
				}
				groups[k] = st
				order = append(order, k)
				keyRows[k] = row
			}
			for i := range aggs {
				if argIdx[i] < 0 {
					st[i].Add(relop.IntVal(1))
				} else {
					st[i].Add(row[argIdx[i]])
				}
			}
		}
		for _, k := range order {
			if r.c.Validate && phase != relop.AggLocal {
				if prev, dup := globalSeen[k]; dup && prev != m {
					return nil, fmt.Errorf("exec: %v aggregation on %v saw key %s on machines %d and %d (input not colocated)",
						phase, keys, k, prev, m)
				}
				globalSeen[k] = m
			}
			row := keyRows[k]
			nr := make(relop.Row, 0, len(keys)+len(aggs))
			for _, ki := range keyIdx {
				nr = append(nr, row[ki])
			}
			for i := range aggs {
				nr = append(nr, groups[k][i].Result())
			}
			out.parts[m] = append(out.parts[m], nr)
		}
	}
	return out, nil
}

// join performs a per-machine hash join of co-located partitions; the
// plan's exchange operators are responsible for colocation (a
// broadcast inner is colocated with everything).
func (r *runner) join(lKeys, rKeys []string, l, rIn *pdata, schema relop.Schema) (*pdata, error) {
	lIdx, ok := l.schema.Indexes(lKeys)
	if !ok {
		return nil, fmt.Errorf("exec: left join keys %v not in %v", lKeys, l.schema)
	}
	rIdx, ok := rIn.schema.Indexes(rKeys)
	if !ok {
		return nil, fmt.Errorf("exec: right join keys %v not in %v", rKeys, rIn.schema)
	}
	out := newPData(schema, r.c.Machines)
	for m := 0; m < r.c.Machines; m++ {
		build := map[string][]relop.Row{}
		for _, row := range rIn.parts[m] {
			k := keyOf(row, rIdx)
			build[k] = append(build[k], row)
		}
		for _, lr := range l.parts[m] {
			k := keyOf(lr, lIdx)
			for _, rr := range build[k] {
				nr := make(relop.Row, 0, len(lr)+len(rr))
				nr = append(nr, lr...)
				nr = append(nr, rr...)
				out.parts[m] = append(out.parts[m], nr)
			}
		}
	}
	return out, nil
}

// rangePartition distributes rows into ordered key ranges over the
// given key order: boundaries are the quantiles of the distinct key
// tuples present in the data, so rows equal on the keys always share
// a partition and partition i's keys sort entirely before partition
// i+1's — the parallel path to globally sorted output.
func rangePartition(order props.Ordering, schema relop.Schema, src [][]relop.Row, out *pdata) error {
	idx := make([]int, len(order))
	for i, sc := range order {
		j := schema.Index(sc.Col)
		if j < 0 {
			return fmt.Errorf("exec: range key %q not in schema %v", sc.Col, schema)
		}
		idx[i] = j
	}
	cmpKeys := func(a, b relop.Row) int {
		for k, sc := range order {
			c := a[idx[k]].Compare(b[idx[k]])
			if sc.Desc {
				c = -c
			}
			if c != 0 {
				return c
			}
		}
		return 0
	}
	// Distinct key representatives, sorted.
	var keys []relop.Row
	seen := map[string]bool{}
	for _, part := range src {
		for _, row := range part {
			k := keyOf(row, idx)
			if !seen[k] {
				seen[k] = true
				keys = append(keys, row)
			}
		}
	}
	sort.SliceStable(keys, func(i, j int) bool { return cmpKeys(keys[i], keys[j]) < 0 })
	machines := len(out.parts)
	// Boundary b[i] is the first key of partition i+1.
	var bounds []relop.Row
	for i := 1; i < machines; i++ {
		pos := i * len(keys) / machines
		if pos > 0 && pos < len(keys) {
			bounds = append(bounds, keys[pos])
		}
	}
	dest := func(row relop.Row) int {
		// First boundary strictly greater than the row's key.
		lo, hi := 0, len(bounds)
		for lo < hi {
			mid := (lo + hi) / 2
			if cmpKeys(row, bounds[mid]) < 0 {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}
	for _, part := range src {
		for _, row := range part {
			d := dest(row)
			out.parts[d] = append(out.parts[d], row)
		}
	}
	return nil
}

// RunAnalyzed executes the plan like Run while recording the actual
// output row count of every distinct plan node — the executable side
// of EXPLAIN ANALYZE. Spools record their materialized size once.
func (c *Cluster) RunAnalyzed(root *plan.Node) (map[string]*Table, map[*plan.Node]int64, error) {
	r := &runner{
		c:       c,
		spools:  map[string]*pdata{},
		outputs: map[string]*Table{},
		actuals: map[*plan.Node]int64{},
	}
	if _, err := r.exec(root); err != nil {
		return nil, nil, err
	}
	return r.outputs, r.actuals, nil
}

// FormatAnalyzed renders the plan tree annotated with estimated
// versus actual row counts from a RunAnalyzed execution.
func FormatAnalyzed(root *plan.Node, actuals map[*plan.Node]int64) string {
	var b strings.Builder
	seen := map[string]bool{}
	var walk func(n *plan.Node, prefix string, last, top bool)
	walk = func(n *plan.Node, prefix string, last, top bool) {
		connector, childPrefix := "", ""
		if !top {
			if last {
				connector = prefix + "└── "
				childPrefix = prefix + "    "
			} else {
				connector = prefix + "├── "
				childPrefix = prefix + "│   "
			}
		}
		if n.IsSpool() {
			k := fmt.Sprintf("%d|%s", n.Group, n.CtxKey)
			if seen[k] {
				fmt.Fprintf(&b, "%s%s (shared, see above)\n", connector, n.Op)
				return
			}
			seen[k] = true
		}
		actual := "?"
		if a, ok := actuals[n]; ok {
			actual = fmt.Sprintf("%d", a)
		}
		fmt.Fprintf(&b, "%s%s  [est=%d actual=%s]\n", connector, n.Op, n.Rel.Rows, actual)
		for i, ch := range n.Children {
			walk(ch, childPrefix, i == len(n.Children)-1, false)
		}
	}
	walk(root, "", true, true)
	return b.String()
}
