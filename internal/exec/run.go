package exec

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/props"
	"repro/internal/relop"
)

// Run executes a physical plan on the cluster. Output operators write
// their results into the cluster's FileStore; the returned map also
// exposes them by path. A shared Spool (same memo group and
// optimization context) is materialized once and re-read by every
// consumer; any other node referenced several times re-executes per
// reference, exactly as the DAG-aware cost model assumes.
//
// Execution is parallel: partition tasks run across a bounded worker
// pool (Cluster.Workers wide), independent sequence branches execute
// concurrently, and shared spools are materialized single-flight —
// the first consumer to arrive executes the shared subtree while
// concurrent consumers block and then read. Results and metered
// totals are identical at every worker count, and concurrent Run
// calls on one Cluster are safe.
func (c *Cluster) Run(root *plan.Node) (map[string]*Table, error) {
	return c.RunContext(context.Background(), root)
}

// RunContext is Run with cancellation: when ctx is canceled the run
// stops scheduling work and returns the cancellation cause.
func (c *Cluster) RunContext(ctx context.Context, root *plan.Node) (map[string]*Table, error) {
	if err := c.checkEngine(); err != nil {
		return nil, err
	}
	r, finish := c.newRunner(ctx)
	defer finish()
	if _, err := r.exec(root, r.span); err != nil {
		return nil, err
	}
	return r.outputs, nil
}

// runner is the per-Run execution state. One runner never outlives
// its Run call; the spool table and outputs are private to it, and
// all metered work is merged into the cluster exactly once when the
// run finishes.
type runner struct {
	c      *Cluster
	ctx    context.Context
	cancel context.CancelCauseFunc
	// slots hands out worker ids; its capacity bounds how many
	// partition tasks execute at once. shards[i] is worker i's private
	// metric shard, written without synchronization.
	slots  chan int
	shards []Metrics
	// tr records execution spans (nil = disabled); span is the
	// run-root span every top-level node and every single-flight spool
	// materialization parents to.
	tr   *obs.Tracer
	span obs.Span
	// vec selects the vectorized kernels (kernels.go) over the row
	// operators; budget is the per-machine scratch budget under which
	// the vector engine spills (spill.go) and the row engine fails
	// with ErrMemBudget. runID names this run's spill namespace.
	vec    bool
	budget int64
	runID  int64
	spillN int // guarded by mu; per-run spill namespace counter

	mu      sync.Mutex
	coord   Metrics                // guarded by mu; operator-granular metering outside the pool
	spools  map[string]*spoolEntry // guarded by mu
	outputs map[string]*Table      // guarded by mu
	// actuals, when non-nil, records per-node output rows and bytes
	// (EXPLAIN ANALYZE support).
	actuals map[*plan.Node]NodeActual // guarded by mu
}

// spoolEntry is the single-flight state of one shared spool: the
// first consumer to arrive materializes and closes done; concurrent
// consumers block on done and then read.
type spoolEntry struct {
	done chan struct{}
	p    *pdata
	err  error
}

func (c *Cluster) newRunner(ctx context.Context) (*runner, func()) {
	workers := c.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	ctx, cancel := context.WithCancelCause(ctx)
	r := &runner{
		c:       c,
		ctx:     ctx,
		cancel:  cancel,
		slots:   make(chan int, workers),
		shards:  make([]Metrics, workers),
		tr:      c.Trace,
		vec:     c.Engine == EngineVector,
		budget:  c.MemBudget,
		runID:   c.nextRunSeq(),
		spools:  map[string]*spoolEntry{},
		outputs: map[string]*Table{},
	}
	r.span = r.tr.Start(obs.Span{}, "exec", "run", "run")
	for i := 0; i < workers; i++ {
		r.slots <- i
	}
	finish := func() {
		cancel(nil)
		total := r.coord
		for i := range r.shards {
			total.add(r.shards[i])
		}
		c.addMetrics(total)
		total.Publish(c.Obs)
		r.span.Arg("rows_processed", total.RowsProcessed)
		r.span.End()
	}
	return r, finish
}

// meter records coordinator-side metered work (operator-granular
// metering that does not happen inside partition tasks).
func (r *runner) meter(f func(*Metrics)) {
	r.mu.Lock()
	f(&r.coord)
	r.mu.Unlock()
}

func (r *runner) recordActual(n *plan.Node, rows, bytes int64) {
	if r.actuals == nil {
		return
	}
	r.mu.Lock()
	r.actuals[n] = NodeActual{Rows: rows, Bytes: bytes}
	r.mu.Unlock()
}

// forEach runs fn(i, shard) for every i in [0, n) across the bounded
// worker pool; shard is the executing worker's private metric shard.
// When tracing, each task records a span named label under parent
// (identity "p<i>", so the tree is scheduling-independent). The first
// error cancels the whole run — tasks already running finish, queued
// ones are dropped — and is returned.
func (r *runner) forEach(parent obs.Span, label string, n int, fn func(i int, shard *Metrics) error) error {
	var wg sync.WaitGroup
launch:
	for i := 0; i < n; i++ {
		select {
		case <-r.ctx.Done():
			break launch
		case slot := <-r.slots:
			wg.Add(1)
			go func(i, slot int) {
				defer wg.Done()
				defer func() { r.slots <- slot }()
				var psp obs.Span
				if r.tr != nil {
					psp = r.tr.Start(parent, "exec", label, fmt.Sprintf("p%d", i))
				}
				err := fn(i, &r.shards[slot])
				psp.End()
				if err != nil {
					r.cancel(err)
				}
			}(i, slot)
		}
	}
	wg.Wait()
	return context.Cause(r.ctx)
}

// execAll executes the given nodes concurrently (on coordinator
// goroutines; row work stays bounded by the worker pool) and returns
// their results in order.
func (r *runner) execAll(nodes []*plan.Node, parent obs.Span) ([]*pdata, error) {
	out := make([]*pdata, len(nodes))
	if len(nodes) == 1 {
		p, err := r.exec(nodes[0], parent)
		if err != nil {
			return nil, err
		}
		out[0] = p
		return out, nil
	}
	var wg sync.WaitGroup
	for i, ch := range nodes {
		wg.Add(1)
		go func(i int, ch *plan.Node) {
			defer wg.Done()
			p, err := r.exec(ch, parent)
			if err != nil {
				r.cancel(err)
				return
			}
			out[i] = p
		}(i, ch)
	}
	wg.Wait()
	if err := context.Cause(r.ctx); err != nil {
		return nil, err
	}
	return out, nil
}

// exec wraps execNode in a per-operator span: name is the operator
// kind, identity is the node's group and context (nodeID), and the
// output row count lands as an argument. Children trace under this
// span, so the tree mirrors the plan DAG.
func (r *runner) exec(n *plan.Node, parent obs.Span) (*pdata, error) {
	if r.tr == nil {
		return r.execNode(n, parent)
	}
	sp := r.tr.Start(parent, "exec", n.Op.Kind().String(), nodeID(n))
	p, err := r.execNode(n, sp)
	if err == nil && p != nil {
		sp.Arg("rows", p.rows())
	}
	sp.End()
	return p, err
}

func (r *runner) execNode(n *plan.Node, sp obs.Span) (*pdata, error) {
	if err := context.Cause(r.ctx); err != nil {
		return nil, err
	}
	switch op := n.Op.(type) {
	case *relop.PhysSequence:
		if err := r.sequence(n, sp); err != nil {
			return nil, err
		}
		r.recordActual(n, 0, 0)
		return newPData(relop.Schema{}, r.c.Machines), nil
	case *relop.PhysSpool:
		return r.spool(n, sp)
	case *relop.PhysOutput:
		in, err := r.exec(n.Children[0], sp)
		if err != nil {
			return nil, err
		}
		t := &Table{Schema: in.schema, Rows: in.gather()}
		if r.c.Validate && !op.Order.Empty() {
			if err := checkSorted(t.Rows, t.Schema, op.Order); err != nil {
				return nil, fmt.Errorf("exec: output %q: %w", op.Path, err)
			}
		}
		r.meter(func(m *Metrics) { m.DiskBytesWritten += t.Bytes() })
		r.c.FS.Put(op.Path, t)
		r.mu.Lock()
		r.outputs[op.Path] = t
		r.mu.Unlock()
		r.recordActual(n, int64(len(t.Rows)), t.Bytes())
		return in, nil
	}
	// Row-producing operators: inputs execute concurrently.
	ins, err := r.execAll(n.Children, sp)
	if err != nil {
		return nil, err
	}
	var inRows int64
	for _, p := range ins {
		inRows += p.rows()
	}
	r.meter(func(m *Metrics) { m.RowsProcessed += inRows })
	out, err := r.apply(n, ins, sp)
	if err != nil {
		return nil, err
	}
	r.recordActual(n, out.rows(), out.logicalBytes())
	return out, nil
}

// sequence executes the statements of a script. Independent branches
// run concurrently; if any branch extracts a file another branch
// outputs, the whole sequence falls back to serial statement order.
func (r *runner) sequence(n *plan.Node, sp obs.Span) error {
	if sequenceHasFileDeps(n.Children) {
		for _, ch := range n.Children {
			if _, err := r.exec(ch, sp); err != nil {
				return err
			}
		}
		return nil
	}
	_, err := r.execAll(n.Children, sp)
	return err
}

// sequenceHasFileDeps reports whether any subtree reads a file path
// some subtree writes, in which case statement order is load-bearing.
func sequenceHasFileDeps(children []*plan.Node) bool {
	extracts, outputs := map[string]bool{}, map[string]bool{}
	for _, ch := range children {
		ioPaths(ch, map[*plan.Node]bool{}, extracts, outputs)
	}
	for p := range extracts {
		if outputs[p] {
			return true
		}
	}
	return false
}

// ioPaths collects the extract and output paths of a subtree, walking
// shared (DAG) nodes once.
func ioPaths(n *plan.Node, seen map[*plan.Node]bool, extracts, outputs map[string]bool) {
	if seen[n] {
		return
	}
	seen[n] = true
	switch op := n.Op.(type) {
	case *relop.PhysExtract:
		extracts[op.Path] = true
	case *relop.PhysOutput:
		outputs[op.Path] = true
	}
	for _, ch := range n.Children {
		ioPaths(ch, seen, extracts, outputs)
	}
}

// spool materializes a shared subexpression single-flight: the first
// consumer to arrive executes the shared subtree, concurrent
// consumers block and then read — the runtime analogue of the plan-
// level one-Spool invariant (lint P1). Metering uses the spool's
// logical size, so a broadcast spool does not over-count its
// replicas against the cost model's accounting.
func (r *runner) spool(n *plan.Node, sp obs.Span) (*pdata, error) {
	key := fmt.Sprintf("%d|%s", n.Group, n.CtxKey)
	r.mu.Lock()
	if e, ok := r.spools[key]; ok {
		r.mu.Unlock()
		select {
		case <-e.done:
		case <-r.ctx.Done():
			return nil, context.Cause(r.ctx)
		}
		if e.err != nil {
			return nil, e.err
		}
		r.meter(func(m *Metrics) {
			m.SpoolReads++
			m.DiskBytesRead += e.p.logicalBytes()
		})
		return e.p, nil
	}
	e := &spoolEntry{done: make(chan struct{})}
	r.spools[key] = e
	r.mu.Unlock()
	// Which consumer materializes is scheduling-dependent, so the
	// materialization (and the shared subtree under it) parents to the
	// run root rather than to this consumer's span: every consumer's
	// own Spool span then looks identical, and the tree stays
	// deterministic at any worker width.
	var msp obs.Span
	if r.tr != nil {
		msp = r.tr.Start(r.span, "exec", "spool-materialize", nodeID(n))
	}
	e.p, e.err = r.exec(n.Children[0], msp)
	if r.tr != nil {
		if e.err == nil {
			msp.Arg("bytes", e.p.logicalBytes())
		}
		msp.End()
	}
	close(e.done)
	if e.err != nil {
		return nil, e.err
	}
	r.recordActual(n, e.p.rows(), e.p.logicalBytes())
	r.meter(func(m *Metrics) {
		m.SpoolMaterializations++
		m.DiskBytesWritten += e.p.logicalBytes()
		m.SpoolReads++
		m.DiskBytesRead += e.p.logicalBytes()
	})
	if path, persist := r.c.PersistSpools[key]; persist && !e.p.broadcast {
		// Session-cache admission: the materialized spool content is
		// also persisted into the shared FileStore, metered as cache
		// bytes written (distinct from the plan's own disk traffic).
		t := &Table{Schema: e.p.schema, Rows: e.p.gather()}
		r.c.FS.Put(path, t)
		r.meter(func(m *Metrics) { m.CacheBytesWritten += t.Bytes() })
	}
	return e.p, nil
}

func (r *runner) apply(n *plan.Node, ins []*pdata, sp obs.Span) (*pdata, error) {
	if r.vec {
		return r.applyVec(n, ins, sp)
	}
	switch op := n.Op.(type) {
	case *relop.PhysExtract:
		return r.extract(op, sp)
	case *relop.PhysCacheScan:
		return r.cacheScan(op, sp)
	case *relop.PhysFilter:
		return r.filter(op, ins[0], sp)
	case *relop.PhysProject:
		return r.project(op, ins[0], n.Schema, sp)
	case *relop.Sort:
		return r.sortOp(op, ins[0], sp)
	case *relop.Repartition:
		return r.repartition(op, ins[0], sp)
	case *relop.StreamAgg:
		return r.aggregate(op.Keys, op.Aggs, op.Phase, ins[0], n.Schema, true, sp)
	case *relop.HashAgg:
		return r.aggregate(op.Keys, op.Aggs, op.Phase, ins[0], n.Schema, false, sp)
	case *relop.SortMergeJoin:
		return r.join(op.LeftKeys, op.RightKeys, ins[0], ins[1], n.Schema, sp)
	case *relop.HashJoin:
		return r.join(op.LeftKeys, op.RightKeys, ins[0], ins[1], n.Schema, sp)
	case *relop.PhysUnion:
		return r.union(ins, n.Schema, sp)
	default:
		return nil, fmt.Errorf("exec: unsupported operator %T", n.Op)
	}
}

// union concatenates inputs partition-wise (UNION ALL).
func (r *runner) union(ins []*pdata, schema relop.Schema, sp obs.Span) (*pdata, error) {
	for _, in := range ins {
		if in.broadcast {
			return nil, fmt.Errorf("exec: union over broadcast input would multiply rows")
		}
	}
	out := newPData(schema, r.c.Machines)
	if err := r.forEach(sp, "part", r.c.Machines, func(m int, _ *Metrics) error {
		for _, in := range ins {
			out.parts[m] = append(out.parts[m], in.parts[m]...)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

func (r *runner) extract(op *relop.PhysExtract, sp obs.Span) (*pdata, error) {
	t, ok := r.c.FS.Get(op.Path)
	if !ok {
		return nil, fmt.Errorf("exec: input file %q not found", op.Path)
	}
	// Project the stored table onto the extracted columns (the
	// extractor's declared schema must be a subset of the file's).
	idx, ok := t.Schema.Indexes(op.Columns.Names())
	if !ok {
		return nil, fmt.Errorf("exec: file %q schema %v missing extract columns %v",
			op.Path, t.Schema, op.Columns.Names())
	}
	out := newPData(op.Columns, r.c.Machines)
	width := int64(len(op.Columns)) * 8
	if err := r.forEach(sp, "part", r.c.Machines, func(m int, shard *Metrics) error {
		// Round-robin distribution: machine m owns rows m, m+M, ...
		for i := m; i < len(t.Rows); i += r.c.Machines {
			row := t.Rows[i]
			nr := make(relop.Row, len(idx))
			for j, k := range idx {
				nr[j] = row[k]
			}
			out.parts[m] = append(out.parts[m], nr)
		}
		shard.DiskBytesRead += int64(len(out.parts[m])) * width
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// cacheScan loads a session-cached artifact from the FileStore and
// redistributes it into the recorded physical layout: hash artifacts
// re-scatter with the same hash function the exchange operators use
// (so colocation promises hold), serial artifacts land on machine 0,
// range artifacts rebuild quantile ranges over the recorded key, and
// unordered artifacts round-robin like a file scan. The recorded
// per-machine order is re-established with a stable sort. The load is
// metered as cache traffic, distinct from plan disk I/O.
func (r *runner) cacheScan(op *relop.PhysCacheScan, sp obs.Span) (*pdata, error) {
	t, ok := r.c.FS.Get(op.Path)
	if !ok {
		return nil, fmt.Errorf("exec: cached artifact %q not found", op.Path)
	}
	if len(t.Schema) != len(op.Columns) {
		return nil, fmt.Errorf("exec: cached artifact %q schema %v does not match %v",
			op.Path, t.Schema, op.Columns)
	}
	out := newPData(op.Columns, r.c.Machines)
	switch op.Part.Kind {
	case props.PartSerial:
		out.parts[0] = append([]relop.Row(nil), t.Rows...)
	case props.PartHash:
		idx, ok := t.Schema.Indexes(op.Part.Cols.Cols())
		if !ok {
			return nil, fmt.Errorf("exec: cached artifact %q missing partition columns %v",
				op.Path, op.Part.Cols)
		}
		for _, row := range t.Rows {
			d := hashDest(row, idx, r.c.Machines)
			out.parts[d] = append(out.parts[d], row)
		}
	case props.PartRange:
		dest, err := rangeDest(op.Part.SortCols, t.Schema, [][]relop.Row{t.Rows}, r.c.Machines)
		if err != nil {
			return nil, err
		}
		for _, row := range t.Rows {
			d := dest(row)
			out.parts[d] = append(out.parts[d], row)
		}
	case props.PartBroadcast:
		// Sessions never admit broadcast spools; a broadcast CacheScan
		// is a planner bug.
		return nil, fmt.Errorf("exec: cached artifact %q recorded broadcast partitioning", op.Path)
	default:
		for i, row := range t.Rows {
			d := i % r.c.Machines
			out.parts[d] = append(out.parts[d], row)
		}
	}
	if !op.Order.Empty() {
		for m := range out.parts {
			cp := make([]relop.Row, len(out.parts[m]))
			copy(cp, out.parts[m])
			if err := sortRows(cp, op.Columns, op.Order); err != nil {
				return nil, err
			}
			out.parts[m] = cp
		}
	}
	r.meter(func(m *Metrics) {
		m.CacheReads++
		m.CacheBytesRead += t.Bytes()
	})
	if r.tr != nil {
		sp.Arg("cache_bytes", t.Bytes())
	}
	return out, nil
}

func (r *runner) filter(op *relop.PhysFilter, in *pdata, sp obs.Span) (*pdata, error) {
	out := newPData(in.schema, r.c.Machines)
	out.broadcast = in.broadcast
	if err := r.forEach(sp, "part", len(in.parts), func(m int, _ *Metrics) error {
		for _, row := range in.parts[m] {
			v, err := relop.EvalScalar(op.Pred, row, in.schema)
			if err != nil {
				return err
			}
			if v.Kind == relop.TInt && v.I != 0 {
				out.parts[m] = append(out.parts[m], row)
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

func (r *runner) project(op *relop.PhysProject, in *pdata, schema relop.Schema, sp obs.Span) (*pdata, error) {
	out := newPData(schema, r.c.Machines)
	out.broadcast = in.broadcast
	if err := r.forEach(sp, "part", len(in.parts), func(m int, _ *Metrics) error {
		for _, row := range in.parts[m] {
			nr := make(relop.Row, len(op.Items))
			for j, it := range op.Items {
				v, err := relop.EvalScalar(it.Expr, row, in.schema)
				if err != nil {
					return err
				}
				nr[j] = v
			}
			out.parts[m] = append(out.parts[m], nr)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

func (r *runner) sortOp(op *relop.Sort, in *pdata, sp obs.Span) (*pdata, error) {
	out := newPData(in.schema, r.c.Machines)
	out.broadcast = in.broadcast
	if err := r.forEach(sp, "part", len(in.parts), func(m int, _ *Metrics) error {
		if err := r.rowBudget("sort", m, int64(len(in.parts[m]))*int64(len(in.schema))*8); err != nil {
			return err
		}
		cp := make([]relop.Row, len(in.parts[m]))
		copy(cp, in.parts[m])
		if err := sortRows(cp, in.schema, op.Order); err != nil {
			return err
		}
		out.parts[m] = cp
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// rowBudget enforces the memory budget on the row engine, which has
// no spill path: an operator whose scratch would exceed the budget
// fails with ErrMemBudget where the vector engine would spill.
func (r *runner) rowBudget(op string, m int, bytes int64) error {
	if r.budget > 0 && bytes > r.budget {
		return fmt.Errorf("exec: %s on machine %d needs %d bytes, over the %d-byte memory budget (row engine cannot spill): %w",
			op, m, bytes, r.budget, ErrMemBudget)
	}
	return nil
}

func (r *runner) repartition(op *relop.Repartition, in *pdata, sp obs.Span) (*pdata, error) {
	r.meter(func(m *Metrics) { m.Exchanges++ })
	// Broadcast input: operate on its single logical copy.
	src := in.parts
	if in.broadcast {
		src = [][]relop.Row{in.parts[0]}
	}
	srcBytes := in.logicalBytes()
	out := newPData(in.schema, r.c.Machines)
	switch op.To.Kind {
	case props.PartSerial:
		var all []relop.Row
		for _, part := range src {
			all = append(all, part...)
		}
		out.parts[0] = all
		r.meter(func(m *Metrics) { m.NetBytes += srcBytes })
	case props.PartBroadcast:
		var all []relop.Row
		for _, part := range src {
			all = append(all, part...)
		}
		for m := range out.parts {
			out.parts[m] = all
		}
		out.broadcast = true
		r.meter(func(m *Metrics) { m.NetBytes += srcBytes * int64(r.c.Machines) })
	case props.PartHash:
		idx, ok := in.schema.Indexes(op.To.Cols.Cols())
		if !ok {
			return nil, fmt.Errorf("exec: repartition columns %v not in schema %v", op.To.Cols, in.schema)
		}
		if err := r.scatter(src, out, func(row relop.Row) int {
			return hashDest(row, idx, r.c.Machines)
		}, sp); err != nil {
			return nil, err
		}
	case props.PartRange:
		dest, err := rangeDest(op.To.SortCols, in.schema, src, r.c.Machines)
		if err != nil {
			return nil, err
		}
		if err := r.scatter(src, out, dest, sp); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("exec: cannot repartition to %v", op.To)
	}
	if !op.MergeOrder.Empty() {
		// Merge receive: each machine merges the sorted streams it
		// received; sorting achieves the same deterministic result.
		if err := r.forEach(sp, "merge", len(out.parts), func(m int, _ *Metrics) error {
			if err := r.rowBudget("merge", m, int64(len(out.parts[m]))*int64(len(in.schema))*8); err != nil {
				return err
			}
			cp := make([]relop.Row, len(out.parts[m]))
			copy(cp, out.parts[m])
			if err := sortRows(cp, in.schema, op.MergeOrder); err != nil {
				return err
			}
			out.parts[m] = cp
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// scatter routes every source row to dest(row), parallelizing over
// source partitions with per-source staging buckets and then
// concatenating per destination in source order, so the result is
// identical to a serial scatter. Each task meters the bytes its
// source partition sends across the network.
func (r *runner) scatter(src [][]relop.Row, out *pdata, dest func(relop.Row) int, sp obs.Span) error {
	machines := len(out.parts)
	width := int64(len(out.schema)) * 8
	stage := make([][][]relop.Row, len(src))
	if err := r.forEach(sp, "send", len(src), func(s int, shard *Metrics) error {
		buckets := make([][]relop.Row, machines)
		for _, row := range src[s] {
			d := dest(row)
			buckets[d] = append(buckets[d], row)
		}
		stage[s] = buckets
		shard.NetBytes += int64(len(src[s])) * width
		return nil
	}); err != nil {
		return err
	}
	return r.forEach(sp, "recv", machines, func(d int, _ *Metrics) error {
		for s := range stage {
			out.parts[d] = append(out.parts[d], stage[s][d]...)
		}
		return nil
	})
}

// aggregate implements stream and hash aggregation. Stream mode
// requires clustered input (validated); Global/Single phases require
// each key to be colocated on a single machine (validated). Partitions
// aggregate in parallel; the cross-partition colocation check runs
// over the collected per-partition key sets afterwards.
func (r *runner) aggregate(keys []string, aggs []relop.Aggregate, phase relop.AggPhase, in *pdata, schema relop.Schema, stream bool, sp obs.Span) (*pdata, error) {
	if in.broadcast {
		return nil, fmt.Errorf("exec: aggregation over broadcast input would multiply results")
	}
	keyIdx, ok := in.schema.Indexes(keys)
	if !ok {
		return nil, fmt.Errorf("exec: aggregation keys %v not in schema %v", keys, in.schema)
	}
	argIdx := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Func == relop.AggCount && a.Arg == "" {
			argIdx[i] = -1
			continue
		}
		j := in.schema.Index(a.Arg)
		if j < 0 {
			return nil, fmt.Errorf("exec: aggregate argument %q not in schema %v", a.Arg, in.schema)
		}
		argIdx[i] = j
	}
	out := newPData(schema, r.c.Machines)
	partKeys := make([][]string, len(in.parts))
	if err := r.forEach(sp, "part", len(in.parts), func(m int, _ *Metrics) error {
		part := in.parts[m]
		if !stream {
			if err := r.rowBudget("hash aggregation", m, int64(len(part))*int64(len(keys)+len(aggs))*8); err != nil {
				return err
			}
		}
		groups := map[string][]*relop.AggState{}
		var order []string
		keyRows := map[string]relop.Row{}
		lastKey := ""
		closed := map[string]bool{}
		for _, row := range part {
			k := keyOf(row, keyIdx)
			if stream && r.c.Validate {
				// Clustering check: once a run for a key ends, the
				// key must not reappear in this partition.
				if k != lastKey {
					if closed[k] {
						return fmt.Errorf("exec: stream aggregation input not clustered on %v (key %s reappeared)", keys, k)
					}
					if lastKey != "" {
						closed[lastKey] = true
					}
					lastKey = k
				}
			}
			st, okG := groups[k]
			if !okG {
				st = make([]*relop.AggState, len(aggs))
				for i, a := range aggs {
					st[i] = relop.NewAggState(a.Func)
				}
				groups[k] = st
				order = append(order, k)
				keyRows[k] = row
			}
			for i := range aggs {
				if argIdx[i] < 0 {
					st[i].Add(relop.IntVal(1))
				} else {
					st[i].Add(row[argIdx[i]])
				}
			}
		}
		for _, k := range order {
			row := keyRows[k]
			nr := make(relop.Row, 0, len(keys)+len(aggs))
			for _, ki := range keyIdx {
				nr = append(nr, row[ki])
			}
			for i := range aggs {
				nr = append(nr, groups[k][i].Result())
			}
			out.parts[m] = append(out.parts[m], nr)
		}
		partKeys[m] = order
		return nil
	}); err != nil {
		return nil, err
	}
	if r.c.Validate && phase != relop.AggLocal {
		globalSeen := map[string]int{}
		for m, order := range partKeys {
			for _, k := range order {
				if prev, dup := globalSeen[k]; dup && prev != m {
					return nil, fmt.Errorf("exec: %v aggregation on %v saw key %s on machines %d and %d (input not colocated)",
						phase, keys, k, prev, m)
				}
				globalSeen[k] = m
			}
		}
	}
	return out, nil
}

// join performs a per-machine hash join of co-located partitions; the
// plan's exchange operators are responsible for colocation (a
// broadcast inner is colocated with everything).
func (r *runner) join(lKeys, rKeys []string, l, rIn *pdata, schema relop.Schema, sp obs.Span) (*pdata, error) {
	lIdx, ok := l.schema.Indexes(lKeys)
	if !ok {
		return nil, fmt.Errorf("exec: left join keys %v not in %v", lKeys, l.schema)
	}
	rIdx, ok := rIn.schema.Indexes(rKeys)
	if !ok {
		return nil, fmt.Errorf("exec: right join keys %v not in %v", rKeys, rIn.schema)
	}
	out := newPData(schema, r.c.Machines)
	if err := r.forEach(sp, "part", r.c.Machines, func(m int, _ *Metrics) error {
		if err := r.rowBudget("join build", m, int64(len(rIn.parts[m]))*int64(len(rIn.schema))*8); err != nil {
			return err
		}
		build := map[string][]relop.Row{}
		for _, row := range rIn.parts[m] {
			k := keyOf(row, rIdx)
			build[k] = append(build[k], row)
		}
		for _, lr := range l.parts[m] {
			k := keyOf(lr, lIdx)
			for _, rr := range build[k] {
				nr := make(relop.Row, 0, len(lr)+len(rr))
				nr = append(nr, lr...)
				nr = append(nr, rr...)
				out.parts[m] = append(out.parts[m], nr)
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// rangeDest computes the destination function of a range exchange
// over the given key order: boundaries are the quantiles of the
// distinct key tuples present in the data, so rows equal on the keys
// always share a partition and partition i's keys sort entirely
// before partition i+1's — the parallel path to globally sorted
// output.
func rangeDest(order props.Ordering, schema relop.Schema, src [][]relop.Row, machines int) (func(relop.Row) int, error) {
	idx := make([]int, len(order))
	for i, sc := range order {
		j := schema.Index(sc.Col)
		if j < 0 {
			return nil, fmt.Errorf("exec: range key %q not in schema %v", sc.Col, schema)
		}
		idx[i] = j
	}
	cmpKeys := func(a, b relop.Row) int {
		for k, sc := range order {
			c := a[idx[k]].Compare(b[idx[k]])
			if sc.Desc {
				c = -c
			}
			if c != 0 {
				return c
			}
		}
		return 0
	}
	// Distinct key representatives, sorted.
	var keys []relop.Row
	seen := map[string]bool{}
	for _, part := range src {
		for _, row := range part {
			k := keyOf(row, idx)
			if !seen[k] {
				seen[k] = true
				keys = append(keys, row)
			}
		}
	}
	sort.SliceStable(keys, func(i, j int) bool { return cmpKeys(keys[i], keys[j]) < 0 })
	// Boundary b[i] is the first key of partition i+1.
	var bounds []relop.Row
	for i := 1; i < machines; i++ {
		pos := i * len(keys) / machines
		if pos > 0 && pos < len(keys) {
			bounds = append(bounds, keys[pos])
		}
	}
	return func(row relop.Row) int {
		// First boundary strictly greater than the row's key.
		lo, hi := 0, len(bounds)
		for lo < hi {
			mid := (lo + hi) / 2
			if cmpKeys(row, bounds[mid]) < 0 {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}, nil
}

// RunAnalyzed executes the plan like Run while recording the actual
// output rows and bytes of every distinct plan node — the executable
// side of EXPLAIN ANALYZE. Spools record their materialized size
// once. Wrap the result in NewAnalysis for estimate-accuracy
// reporting.
func (c *Cluster) RunAnalyzed(root *plan.Node) (map[string]*Table, map[*plan.Node]NodeActual, error) {
	return c.RunAnalyzedContext(context.Background(), root)
}

// RunAnalyzedContext is RunAnalyzed with cancellation, for callers
// (the service) that execute analyzed plans under a request context.
func (c *Cluster) RunAnalyzedContext(ctx context.Context, root *plan.Node) (map[string]*Table, map[*plan.Node]NodeActual, error) {
	if err := c.checkEngine(); err != nil {
		return nil, nil, err
	}
	r, finish := c.newRunner(ctx)
	defer finish()
	r.actuals = map[*plan.Node]NodeActual{}
	if _, err := r.exec(root, r.span); err != nil {
		return nil, nil, err
	}
	return r.outputs, r.actuals, nil
}
