package exec

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/plan"
)

// EXPLAIN ANALYZE support: RunAnalyzed records what each plan node
// actually produced; Analysis pairs those actuals with the
// optimizer's estimates (plan.Node.Rel) and flags the nodes whose
// estimate missed by more than a threshold. Estimate accuracy is
// scored by q-error — the standard factor-off metric, symmetric
// between over- and under-estimation — with +1 smoothing so empty
// results compare sanely.

// NodeActual is what one plan node actually produced during a
// RunAnalyzed execution: output rows and logical bytes (one copy of
// the data; spools record their materialized size).
type NodeActual struct {
	Rows  int64
	Bytes int64
}

// DefaultMisestimateThreshold flags estimates more than 4x off in
// either direction — past that, join-order and exchange decisions
// made from the estimate stop being trustworthy.
const DefaultMisestimateThreshold = 4.0

// QError is the factor by which an estimate missed:
// (max+1)/(min+1) over the estimated and actual value, so 1.0 is
// exact and the metric is symmetric between over- and
// under-estimation. The +1 smoothing keeps zero-row results finite.
func QError(est, act int64) float64 {
	if est < 0 {
		est = 0
	}
	if act < 0 {
		act = 0
	}
	lo, hi := est, act
	if lo > hi {
		lo, hi = hi, lo
	}
	return float64(hi+1) / float64(lo+1)
}

// Analysis is an EXPLAIN ANALYZE report over one executed plan.
type Analysis struct {
	Root    *plan.Node
	Actuals map[*plan.Node]NodeActual
	// Threshold is the q-error above which a node is flagged as
	// mis-estimated.
	Threshold float64
	// Engine and MemBudget record the execution configuration the
	// actuals were collected under. When Engine is non-empty the
	// rendered analysis leads with an "engine=... membudget=..."
	// header, so an EXPLAIN ANALYZE readout names the engine that
	// produced it.
	Engine    string
	MemBudget int64
}

// NewAnalysis pairs a plan with the actuals recorded by RunAnalyzed.
// threshold <= 1 selects DefaultMisestimateThreshold.
func NewAnalysis(root *plan.Node, actuals map[*plan.Node]NodeActual, threshold float64) *Analysis {
	if threshold <= 1 {
		threshold = DefaultMisestimateThreshold
	}
	return &Analysis{Root: root, Actuals: actuals, Threshold: threshold}
}

// NodeQ returns the row q-error of n, and whether an actual was
// recorded for it.
func (a *Analysis) NodeQ(n *plan.Node) (float64, bool) {
	act, ok := a.Actuals[n]
	if !ok {
		return 0, false
	}
	return QError(n.Rel.Rows, act.Rows), true
}

// flagged reports whether n's row estimate missed by more than the
// threshold. Sequence nodes produce no rows and are never flagged.
func (a *Analysis) flagged(n *plan.Node) bool {
	if len(n.Schema) == 0 {
		return false
	}
	q, ok := a.NodeQ(n)
	return ok && q > a.Threshold
}

// Summary aggregates estimate accuracy over every node with a
// recorded actual (Sequence statement lists excluded: they produce no
// rows).
type Summary struct {
	// Nodes is the number of scored plan nodes; Flagged of those
	// exceeded the threshold.
	Nodes   int
	Flagged int
	// MeanQ and MaxQ describe the row q-error distribution.
	MeanQ float64
	MaxQ  float64
}

// Summary computes aggregate estimate accuracy for the analyzed plan.
// Shared nodes (spools reached through several consumers) score once.
func (a *Analysis) Summary() Summary {
	var s Summary
	var total float64
	for _, n := range a.nodes() {
		q, ok := a.NodeQ(n)
		if !ok || len(n.Schema) == 0 {
			continue
		}
		s.Nodes++
		total += q
		if q > s.MaxQ {
			s.MaxQ = q
		}
		if a.flagged(n) {
			s.Flagged++
		}
	}
	if s.Nodes > 0 {
		s.MeanQ = total / float64(s.Nodes)
	}
	return s
}

// nodes returns the distinct plan nodes in deterministic (DFS,
// children in order, shared nodes once) order.
func (a *Analysis) nodes() []*plan.Node {
	var out []*plan.Node
	seen := map[*plan.Node]bool{}
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		out = append(out, n)
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(a.Root)
	return out
}

// Misestimates returns the flagged nodes, worst q-error first (ties
// in plan order).
func (a *Analysis) Misestimates() []*plan.Node {
	var out []*plan.Node
	for _, n := range a.nodes() {
		if a.flagged(n) {
			out = append(out, n)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		qi, _ := a.NodeQ(out[i])
		qj, _ := a.NodeQ(out[j])
		return qi > qj
	})
	return out
}

// String renders the plan tree annotated per node with estimated
// versus actual rows and bytes, the row q-error, and a MISESTIMATE
// marker on nodes past the threshold, followed by the accuracy
// summary.
func (a *Analysis) String() string {
	var b strings.Builder
	if a.Engine != "" {
		fmt.Fprintf(&b, "engine=%s membudget=%d\n", a.Engine, a.MemBudget)
	}
	seen := map[string]bool{}
	var walk func(n *plan.Node, prefix string, last, top bool)
	walk = func(n *plan.Node, prefix string, last, top bool) {
		connector, childPrefix := "", ""
		if !top {
			if last {
				connector = prefix + "└── "
				childPrefix = prefix + "    "
			} else {
				connector = prefix + "├── "
				childPrefix = prefix + "│   "
			}
		}
		if n.IsSpool() {
			k := fmt.Sprintf("%d|%s", n.Group, n.CtxKey)
			if seen[k] {
				fmt.Fprintf(&b, "%s%s (shared, see above)\n", connector, n.Op)
				return
			}
			seen[k] = true
		}
		ann := "[rows est=? actual=?]"
		if act, ok := a.Actuals[n]; ok {
			ann = fmt.Sprintf("[rows est=%d actual=%d | bytes est=%d actual=%d | q=%.2f]",
				n.Rel.Rows, act.Rows, n.Rel.Bytes(), act.Bytes, QError(n.Rel.Rows, act.Rows))
			if a.flagged(n) {
				ann += " MISESTIMATE"
			}
		}
		fmt.Fprintf(&b, "%s%s  %s\n", connector, n.Op, ann)
		for i, ch := range n.Children {
			walk(ch, childPrefix, i == len(n.Children)-1, false)
		}
	}
	walk(a.Root, "", true, true)
	s := a.Summary()
	fmt.Fprintf(&b, "analyze: nodes=%d flagged=%d mean_q=%.2f max_q=%.2f threshold=%.1f\n",
		s.Nodes, s.Flagged, s.MeanQ, s.MaxQ, a.Threshold)
	return b.String()
}
