package exec

import (
	"fmt"

	"repro/internal/memo"
	"repro/internal/relop"
)

// Reference evaluates the logical operator DAG of a memo directly on
// a single node, with no optimizer involved: the correctness oracle
// every optimized plan must agree with. It uses each group's initial
// (binder-produced) expression.
func Reference(m *memo.Memo, fs *FileStore) (map[string]*Table, error) {
	r := &refRunner{m: m, fs: fs, cache: map[memo.GroupID]*Table{}, outputs: map[string]*Table{}}
	if _, err := r.eval(m.Root); err != nil {
		return nil, err
	}
	return r.outputs, nil
}

type refRunner struct {
	m       *memo.Memo
	fs      *FileStore
	cache   map[memo.GroupID]*Table
	outputs map[string]*Table
}

func (r *refRunner) eval(gid memo.GroupID) (*Table, error) {
	if t, ok := r.cache[gid]; ok {
		return t, nil
	}
	e := r.m.Group(gid).Exprs[0]
	ins := make([]*Table, len(e.Children))
	for i, c := range e.Children {
		t, err := r.eval(c)
		if err != nil {
			return nil, err
		}
		ins[i] = t
	}
	t, err := r.apply(e.Op, ins)
	if err != nil {
		return nil, err
	}
	r.cache[gid] = t
	return t, nil
}

func (r *refRunner) apply(op relop.Operator, ins []*Table) (*Table, error) {
	switch o := op.(type) {
	case *relop.Extract:
		t, ok := r.fs.Get(o.Path)
		if !ok {
			return nil, fmt.Errorf("reference: input file %q not found", o.Path)
		}
		idx, ok := t.Schema.Indexes(o.Columns.Names())
		if !ok {
			return nil, fmt.Errorf("reference: file %q missing columns %v", o.Path, o.Columns.Names())
		}
		out := &Table{Schema: o.Columns}
		for _, row := range t.Rows {
			nr := make(relop.Row, len(idx))
			for j, k := range idx {
				nr[j] = row[k]
			}
			out.Rows = append(out.Rows, nr)
		}
		return out, nil
	case *relop.Filter:
		out := &Table{Schema: ins[0].Schema}
		for _, row := range ins[0].Rows {
			v, err := relop.EvalScalar(o.Pred, row, ins[0].Schema)
			if err != nil {
				return nil, err
			}
			if v.Kind == relop.TInt && v.I != 0 {
				out.Rows = append(out.Rows, row)
			}
		}
		return out, nil
	case *relop.Project:
		schema, err := relop.DeriveSchema(o, []relop.Schema{ins[0].Schema})
		if err != nil {
			return nil, err
		}
		out := &Table{Schema: schema}
		for _, row := range ins[0].Rows {
			nr := make(relop.Row, len(o.Items))
			for j, it := range o.Items {
				v, err := relop.EvalScalar(it.Expr, row, ins[0].Schema)
				if err != nil {
					return nil, err
				}
				nr[j] = v
			}
			out.Rows = append(out.Rows, nr)
		}
		return out, nil
	case *relop.GroupBy:
		return r.groupBy(o, ins[0])
	case *relop.Join:
		return r.refJoin(o, ins[0], ins[1])
	case *relop.Union:
		out := &Table{Schema: ins[0].Schema}
		for _, in := range ins {
			out.Rows = append(out.Rows, in.Rows...)
		}
		return out, nil
	case *relop.Spool:
		return ins[0], nil
	case *relop.Output:
		r.outputs[o.Path] = ins[0]
		return ins[0], nil
	case *relop.Sequence:
		return &Table{}, nil
	default:
		return nil, fmt.Errorf("reference: unsupported logical operator %T", op)
	}
}

func (r *refRunner) groupBy(o *relop.GroupBy, in *Table) (*Table, error) {
	schema, err := relop.DeriveSchema(o, []relop.Schema{in.Schema})
	if err != nil {
		return nil, err
	}
	keyIdx, ok := in.Schema.Indexes(o.Keys)
	if !ok {
		return nil, fmt.Errorf("reference: keys %v not in %v", o.Keys, in.Schema)
	}
	type group struct {
		row relop.Row
		st  []*relop.AggState
	}
	groups := map[string]*group{}
	var order []string
	for _, row := range in.Rows {
		k := keyOf(row, keyIdx)
		g, okG := groups[k]
		if !okG {
			g = &group{row: row, st: make([]*relop.AggState, len(o.Aggs))}
			for i, a := range o.Aggs {
				g.st[i] = relop.NewAggState(a.Func)
			}
			groups[k] = g
			order = append(order, k)
		}
		for i, a := range o.Aggs {
			if a.Func == relop.AggCount && a.Arg == "" {
				g.st[i].Add(relop.IntVal(1))
				continue
			}
			j := in.Schema.Index(a.Arg)
			if j < 0 {
				return nil, fmt.Errorf("reference: aggregate arg %q not in %v", a.Arg, in.Schema)
			}
			g.st[i].Add(row[j])
		}
	}
	out := &Table{Schema: schema}
	for _, k := range order {
		g := groups[k]
		nr := make(relop.Row, 0, len(o.Keys)+len(o.Aggs))
		for _, ki := range keyIdx {
			nr = append(nr, g.row[ki])
		}
		for i := range o.Aggs {
			nr = append(nr, g.st[i].Result())
		}
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

func (r *refRunner) refJoin(o *relop.Join, l, rt *Table) (*Table, error) {
	schema, err := relop.DeriveSchema(o, []relop.Schema{l.Schema, rt.Schema})
	if err != nil {
		return nil, err
	}
	lIdx, ok := l.Schema.Indexes(o.LeftKeys)
	if !ok {
		return nil, fmt.Errorf("reference: left keys %v not in %v", o.LeftKeys, l.Schema)
	}
	rIdx, ok := rt.Schema.Indexes(o.RightKeys)
	if !ok {
		return nil, fmt.Errorf("reference: right keys %v not in %v", o.RightKeys, rt.Schema)
	}
	build := map[string][]relop.Row{}
	for _, row := range rt.Rows {
		k := keyOf(row, rIdx)
		build[k] = append(build[k], row)
	}
	out := &Table{Schema: schema}
	for _, lr := range l.Rows {
		for _, rr := range build[keyOf(lr, lIdx)] {
			nr := make(relop.Row, 0, len(lr)+len(rr))
			nr = append(nr, lr...)
			nr = append(nr, rr...)
			out.Rows = append(out.Rows, nr)
		}
	}
	return out, nil
}
