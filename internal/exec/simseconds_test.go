package exec

import (
	"testing"

	"repro/internal/cost"
)

// TestSimulatedSecondsCountsCacheTraffic is the regression test for
// the metering bug where cache-served runs simulated as free disk:
// cache reads and writes move real bytes through the same store as
// every other file, so they must be charged at disk bandwidth.
func TestSimulatedSecondsCountsCacheTraffic(t *testing.T) {
	c := cost.DefaultCluster()
	disk := Metrics{DiskBytesRead: 1 << 20}
	cacheRead := Metrics{CacheBytesRead: 1 << 20}
	cacheWrite := Metrics{CacheBytesWritten: 1 << 20}

	if got := cacheRead.SimulatedSeconds(c); got <= 0 {
		t.Fatalf("cache-only run simulates as free: %g seconds", got)
	}
	if d, cr := disk.SimulatedSeconds(c), cacheRead.SimulatedSeconds(c); d != cr {
		t.Errorf("cache reads priced %g, disk reads %g — same store, same bandwidth", cr, d)
	}
	if d, cw := disk.SimulatedSeconds(c), cacheWrite.SimulatedSeconds(c); d != cw {
		t.Errorf("cache writes priced %g, disk reads %g — same store, same bandwidth", cw, d)
	}

	// Additivity: a run with both plan and cache traffic simulates as
	// the sum of its parts.
	both := Metrics{DiskBytesRead: 1 << 20, CacheBytesRead: 1 << 20}
	if got, want := both.SimulatedSeconds(c), disk.SimulatedSeconds(c)*2; got != want {
		t.Errorf("combined traffic simulates %g, want %g", got, want)
	}
}

// TestSimulatedSecondsCountsSpillTraffic mirrors the cache-traffic
// regression test for the spill path: scratch written and re-read by
// spilling operators moves through the same store as every other
// file, so it must be charged at disk bandwidth, not simulate as free
// memory shuffling.
func TestSimulatedSecondsCountsSpillTraffic(t *testing.T) {
	c := cost.DefaultCluster()
	disk := Metrics{DiskBytesRead: 1 << 20}
	spillRead := Metrics{SpillBytesRead: 1 << 20}
	spillWrite := Metrics{SpillBytesWritten: 1 << 20}

	if got := spillRead.SimulatedSeconds(c); got <= 0 {
		t.Fatalf("spill-only run simulates as free: %g seconds", got)
	}
	if d, sr := disk.SimulatedSeconds(c), spillRead.SimulatedSeconds(c); d != sr {
		t.Errorf("spill reads priced %g, disk reads %g — same store, same bandwidth", sr, d)
	}
	if d, sw := disk.SimulatedSeconds(c), spillWrite.SimulatedSeconds(c); d != sw {
		t.Errorf("spill writes priced %g, disk reads %g — same store, same bandwidth", sw, d)
	}

	// Additivity with plan traffic: spill bytes join the same disk
	// pool, so the mix prices exactly like 3 MiB of plan reads.
	both := Metrics{DiskBytesRead: 1 << 20, SpillBytesRead: 1 << 20, SpillBytesWritten: 1 << 20}
	if got, want := both.SimulatedSeconds(c), (Metrics{DiskBytesRead: 3 << 20}).SimulatedSeconds(c); got != want {
		t.Errorf("combined traffic simulates %g, want %g", got, want)
	}
}
