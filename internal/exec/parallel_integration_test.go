package exec_test

import (
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/opt"
	"repro/internal/rules"
)

// testClusterFS builds a cluster over an existing file store or fails
// the test.
func testClusterFS(t testing.TB, machines int, fs *exec.FileStore) *exec.Cluster {
	t.Helper()
	c, err := exec.NewCluster(machines, fs)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// builtinWorkloads returns the five builtin evaluation scripts.
func builtinWorkloads() []*datagen.Workload {
	return []*datagen.Workload{
		bench.Small("S1", bench.ScriptS1),
		bench.Small("S2", bench.ScriptS2),
		bench.Small("S3", bench.ScriptS3),
		bench.Small("S4", bench.ScriptS4),
		bench.Small("Fig5", bench.ScriptFig5),
	}
}

// runAtWorkers executes the plan on a fresh cluster with the given
// worker-pool width and returns canonicalized outputs plus metrics.
func runAtWorkers(t *testing.T, w *datagen.Workload, root any, workers int) (map[string][]string, exec.Metrics) {
	t.Helper()
	res := root.(*opt.Result)
	cl := testClusterFS(t, 5, w.FS)
	cl.Workers = workers
	got, err := cl.Run(res.Plan)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	canon := make(map[string][]string, len(got))
	for path, tab := range got {
		canon[path] = tab.Canonical()
	}
	return canon, cl.Metrics()
}

// TestParallelMatchesSequentialWorkloads is the core equivalence
// guarantee of parallel execution: on every builtin workload, the
// conventional and CSE plans produce identical Canonical() results
// and identical metered totals at one worker and at eight.
func TestParallelMatchesSequentialWorkloads(t *testing.T) {
	for _, w := range builtinWorkloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, cse := range []bool{false, true} {
				opts := opt.DefaultOptions()
				opts.EnableCSE = cse
				opts.Rules = rules.SCOPEProfile()
				m, err := logical.BuildSource(w.Script, w.Cat)
				if err != nil {
					t.Fatal(err)
				}
				res, err := opt.Optimize(m, opts)
				if err != nil {
					t.Fatal(err)
				}
				seqOut, seqM := runAtWorkers(t, w, res, 1)
				parOut, parM := runAtWorkers(t, w, res, 8)
				if !reflect.DeepEqual(seqOut, parOut) {
					t.Errorf("cse=%v: parallel results differ from sequential", cse)
				}
				if seqM != parM {
					t.Errorf("cse=%v: parallel metrics %+v differ from sequential %+v", cse, parM, seqM)
				}
			}
		})
	}
}

// TestParallelMatchesSequentialFuzz sweeps the exec fuzz corpus:
// random scripts with organic sharing, both optimization modes, one
// worker versus eight — results and meters must match exactly.
func TestParallelMatchesSequentialFuzz(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		w := datagen.RandomWorkload(seed, 8+int(seed%7))
		for _, cse := range []bool{false, true} {
			opts := opt.DefaultOptions()
			opts.EnableCSE = cse
			m, err := logical.BuildSource(w.Script, w.Cat)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			res, err := opt.Optimize(m, opts)
			if err != nil {
				t.Fatalf("seed %d cse=%v: %v", seed, cse, err)
			}
			seqOut, seqM := runAtWorkers(t, w, res, 1)
			parOut, parM := runAtWorkers(t, w, res, 8)
			if !reflect.DeepEqual(seqOut, parOut) {
				t.Errorf("seed %d cse=%v: parallel results differ from sequential\nscript:\n%s", seed, cse, w.Script)
			}
			if seqM != parM {
				t.Errorf("seed %d cse=%v: metrics %+v vs %+v", seed, cse, parM, seqM)
			}
		}
	}
}

// TestSpoolSingleFlightUnderParallelism runs the S1 CSE plan — one
// shared spool, two consumers in independent sequence branches that
// now execute concurrently — and checks the spool still materializes
// exactly once.
func TestSpoolSingleFlightUnderParallelism(t *testing.T) {
	w := bench.Small("S1", bench.ScriptS1)
	opts := opt.DefaultOptions()
	opts.EnableCSE = true
	opts.Rules = rules.SCOPEProfile()
	m, err := logical.BuildSource(w.Script, w.Cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Optimize(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		cl := testClusterFS(t, 5, w.FS)
		cl.Workers = workers
		if _, err := cl.Run(res.Plan); err != nil {
			t.Fatal(err)
		}
		mm := cl.Metrics()
		if mm.SpoolMaterializations != 1 {
			t.Errorf("workers=%d: spool materialized %d times, want once (single-flight)", workers, mm.SpoolMaterializations)
		}
		if mm.SpoolReads != 2 {
			t.Errorf("workers=%d: spool reads = %d, want 2", workers, mm.SpoolReads)
		}
	}
}
