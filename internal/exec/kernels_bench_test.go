package exec_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/opt"
	"repro/internal/rules"
)

// Committed microbenchmarks for the row-vs-vector kernel comparison:
//
//	go test -bench 'Row|Vec' -benchtime 3x ./internal/exec/
//
// Each benchmark runs one kernel pipeline end to end on a warm file
// store. The full-scale numbers live in BENCH_vec.json (benchrepro
// -fig vec); these exist so a single kernel can be profiled in
// isolation with -cpuprofile.

const benchKernelRows = 100_000

func benchScript(kernel string) string {
	switch kernel {
	case "scan":
		return `
R0 = EXTRACT K,G,W,V FROM "test.log" USING LogExtractor;
R = SELECT W, (K+G)*(K+G) as X, K*3-G as Y, V+K as Z FROM R0;
S = SELECT W, Sum(X) as SX, Sum(Y) as SY, Sum(Z) as SZ FROM R GROUP BY W;
OUTPUT S TO "o1";
`
	case "filter":
		return `
R0 = EXTRACT K,G,W,V FROM "test.log" USING LogExtractor;
R = SELECT W, V FROM R0 WHERE (K+G)*(K+G) > 1000000 AND K+G < 100000000 AND G != 512;
S = SELECT W, Sum(V) as SV FROM R GROUP BY W;
OUTPUT S TO "o1";
`
	case "agg":
		return `
R0 = EXTRACT K,G,W,V FROM "test.log" USING LogExtractor;
R = SELECT G, Sum(V) as SV, Count() as N FROM R0 GROUP BY G;
OUTPUT R TO "o1";
`
	default: // join
		return `
R0 = EXTRACT K,G,V FROM "test.log" USING LogExtractor;
T0 = EXTRACT K,W FROM "test2.log" USING LogExtractor;
J = SELECT W, V FROM R0, T0 WHERE R0.K = T0.K;
S = SELECT W, Sum(V) as SV, Count() as N FROM J GROUP BY W;
OUTPUT S TO "o1";
`
	}
}

func benchKernel(b *testing.B, kernel, engine string) {
	w := bench.VecWorkload(benchKernelRows)
	m, err := logical.BuildSource(benchScript(kernel), w.Cat)
	if err != nil {
		b.Fatal(err)
	}
	opts := opt.DefaultOptions()
	opts.EnableCSE = true
	opts.Rules = rules.SCOPEProfile()
	res, err := opt.Optimize(m, opts)
	if err != nil {
		b.Fatal(err)
	}
	run := func() {
		cl, err := exec.NewCluster(5, w.FS)
		if err != nil {
			b.Fatal(err)
		}
		cl.Engine = engine
		if _, err := cl.Run(res.Plan); err != nil {
			b.Fatal(err)
		}
	}
	run() // warm the scan cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

func BenchmarkRowScan(b *testing.B)   { benchKernel(b, "scan", exec.EngineRow) }
func BenchmarkVecScan(b *testing.B)   { benchKernel(b, "scan", exec.EngineVector) }
func BenchmarkRowFilter(b *testing.B) { benchKernel(b, "filter", exec.EngineRow) }
func BenchmarkVecFilter(b *testing.B) { benchKernel(b, "filter", exec.EngineVector) }
func BenchmarkRowAgg(b *testing.B)    { benchKernel(b, "agg", exec.EngineRow) }
func BenchmarkVecAgg(b *testing.B)    { benchKernel(b, "agg", exec.EngineVector) }
func BenchmarkRowJoin(b *testing.B)   { benchKernel(b, "join", exec.EngineRow) }
func BenchmarkVecJoin(b *testing.B)   { benchKernel(b, "join", exec.EngineVector) }
