package exec_test

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/rules"
)

// The vector engine's correctness contract: against the row engine it
// must be bit-identical — same output tables (values AND order), same
// Core metered totals, same deterministic trace tree — on every plan,
// at any worker width, and even when a memory budget forces it to
// spill. These tests enforce the contract differentially over the
// builtin evaluation scripts and the fuzz corpus.

// runEngineDiff executes one plan on a fresh traced cluster.
func runEngineDiff(t *testing.T, w *datagen.Workload, root any, engine string, workers int, budget int64) (map[string]*exec.Table, exec.Metrics, string) {
	t.Helper()
	res := root.(*opt.Result)
	cl := testClusterFS(t, 5, w.FS)
	cl.Workers = workers
	cl.Engine = engine
	cl.MemBudget = budget
	cl.Trace = obs.NewTracer()
	got, err := cl.Run(res.Plan)
	if err != nil {
		t.Fatalf("engine=%s workers=%d budget=%d: %v", engine, workers, budget, err)
	}
	return got, cl.Metrics(), cl.Trace.TreeString()
}

// diffEngines optimizes the workload and checks row/vector identity
// at 1 and 8 workers.
func diffEngines(t *testing.T, w *datagen.Workload, cse bool, profile rules.Config) {
	t.Helper()
	opts := opt.DefaultOptions()
	opts.EnableCSE = cse
	opts.Rules = profile
	m, err := logical.BuildSource(w.Script, w.Cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Optimize(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	rowOut, rowM, rowTrace := runEngineDiff(t, w, res, exec.EngineRow, 1, 0)
	for _, workers := range []int{1, 8} {
		vecOut, vecM, vecTrace := runEngineDiff(t, w, res, exec.EngineVector, workers, 0)
		compareEngineRuns(t, w.Name, workers, rowOut, vecOut, rowM, vecM, rowTrace, vecTrace)
	}
}

func compareEngineRuns(t *testing.T, name string, workers int, rowOut, vecOut map[string]*exec.Table, rowM, vecM exec.Metrics, rowTrace, vecTrace string) {
	t.Helper()
	if len(vecOut) != len(rowOut) {
		t.Fatalf("%s workers=%d: vector produced %d outputs, row %d", name, workers, len(vecOut), len(rowOut))
	}
	for path, rt := range rowOut {
		vt := vecOut[path]
		if vt == nil {
			t.Fatalf("%s workers=%d: vector missing output %q", name, workers, path)
		}
		// Exact equality, not canonicalized: the engines must agree on
		// row order too.
		if len(vt.Rows) != len(rt.Rows) {
			t.Fatalf("%s workers=%d: %q has %d rows, row engine %d", name, workers, path, len(vt.Rows), len(rt.Rows))
		}
		for i := range rt.Rows {
			if len(vt.Rows[i]) != len(rt.Rows[i]) {
				t.Fatalf("%s workers=%d: %q row %d width differs", name, workers, path, i)
			}
			for j := range rt.Rows[i] {
				// Strict struct equality, not Compare: int 2 and float
				// 2.0 must not pass for each other.
				if vt.Rows[i][j] != rt.Rows[i][j] {
					t.Fatalf("%s workers=%d: %q row %d = %v, row engine %v", name, workers, path, i, vt.Rows[i], rt.Rows[i])
				}
			}
		}
	}
	if vecM.Core() != rowM.Core() {
		t.Errorf("%s workers=%d: vector core metrics %+v differ from row %+v", name, workers, vecM.Core(), rowM.Core())
	}
	if vecTrace != rowTrace {
		t.Errorf("%s workers=%d: vector trace tree differs from row engine\nvector:\n%s\nrow:\n%s", name, workers, vecTrace, rowTrace)
	}
}

// TestEngineDiffWorkloads runs the S1–S4 and Fig5 scripts under both
// optimization modes on both engines.
func TestEngineDiffWorkloads(t *testing.T) {
	for _, w := range builtinWorkloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, cse := range []bool{false, true} {
				diffEngines(t, w, cse, rules.SCOPEProfile())
			}
		})
	}
}

// TestEngineDiffFuzz sweeps the exec fuzz corpus differentially:
// random scripts, both optimization modes, row versus vector.
func TestEngineDiffFuzz(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		w := datagen.RandomWorkload(seed, 8+int(seed%7))
		for _, cse := range []bool{false, true} {
			opts := opt.DefaultOptions()
			opts.EnableCSE = cse
			m, err := logical.BuildSource(w.Script, w.Cat)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			res, err := opt.Optimize(m, opts)
			if err != nil {
				t.Fatalf("seed %d cse=%v: %v", seed, cse, err)
			}
			rowOut, rowM, rowTrace := runEngineDiff(t, w, res, exec.EngineRow, 1, 0)
			for _, workers := range []int{1, 8} {
				vecOut, vecM, vecTrace := runEngineDiff(t, w, res, exec.EngineVector, workers, 0)
				compareEngineRuns(t, w.Script, workers, rowOut, vecOut, rowM, vecM, rowTrace, vecTrace)
			}
		}
	}
}

// TestEngineDiffForcedSpill reruns the builtin workloads with a tiny
// memory budget, so every sort buffer, aggregation table, and join
// build spills. Spilled execution must still be bit-identical to the
// unbudgeted row engine — spilling may only add spill-side metrics,
// which Core() excludes.
func TestEngineDiffForcedSpill(t *testing.T) {
	const budget = 512 // bytes per partition task: everything spills
	for _, w := range builtinWorkloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, cse := range []bool{false, true} {
				opts := opt.DefaultOptions()
				opts.EnableCSE = cse
				opts.Rules = rules.SCOPEProfile()
				m, err := logical.BuildSource(w.Script, w.Cat)
				if err != nil {
					t.Fatal(err)
				}
				res, err := opt.Optimize(m, opts)
				if err != nil {
					t.Fatal(err)
				}
				rowOut, rowM, rowTrace := runEngineDiff(t, w, res, exec.EngineRow, 1, 0)
				for _, workers := range []int{1, 8} {
					vecOut, vecM, vecTrace := runEngineDiff(t, w, res, exec.EngineVector, workers, budget)
					compareEngineRuns(t, w.Name, workers, rowOut, vecOut, rowM, vecM, rowTrace, vecTrace)
					if vecM.Spills == 0 {
						t.Errorf("cse=%v workers=%d: %d-byte budget forced no spills", cse, workers, budget)
					}
					if vecM.PeakResidentBytes > budget {
						t.Errorf("cse=%v workers=%d: peak resident %d exceeds budget %d",
							cse, workers, vecM.PeakResidentBytes, budget)
					}
				}
			}
		})
	}
}
