package exec

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/plan"
	"repro/internal/props"
	"repro/internal/relop"
)

// Spill-to-disk: when a Cluster has a per-machine MemBudget, the
// vector engine bounds each memory-hungry operator's scratch space —
// the sort buffer, the aggregation group table, the join build table
// — by spilling through the metered FileStore (external merge sort
// for Sort, grace hash partitioning for HashAgg and joins). Spill
// traffic is metered separately from plan and cache I/O
// (SpillBytesRead/Written, charged at disk bandwidth by
// SimulatedSeconds), and the scratch high-water mark lands in
// PeakResidentBytes. Spilled execution stays bit-identical to the
// in-memory engines: spilled runs and buckets are reassembled in the
// row engine's exact output order. The row engine does not spill;
// under a budget it fails fast with ErrMemBudget wherever the vector
// engine would have spilled, which is what makes the budget
// enforceable in differential tests.
//
// Scratch accounting covers operator-private state only; operator
// input and output batches are pipeline-owned and not charged
// against the budget (the simulator necessarily holds them, a real
// engine streams them).

// ErrMemBudget reports that an operator's working set exceeds the
// cluster's per-machine memory budget and the engine cannot spill
// (the row engine never can).
var ErrMemBudget = errors.New("memory budget exceeded")

// recordPeak raises the shard's resident-scratch high-water mark.
func recordPeak(shard *Metrics, bytes int64) {
	if shard == nil {
		return
	}
	if bytes > shard.PeakResidentBytes {
		shard.PeakResidentBytes = bytes
	}
}

// spillBase names a scratch namespace in the FileStore for one
// spilling operator execution, unique within the run. Returns "" when
// spilling is disabled (no budget). Paths are transient: every spill
// file is removed before the operator returns.
func (r *runner) spillBase(n *plan.Node) string {
	if r.budget <= 0 {
		return ""
	}
	r.mu.Lock()
	r.spillN++
	k := r.spillN
	r.mu.Unlock()
	return fmt.Sprintf("tmp/spill/run%d/%s.%d", r.runID, nodeID(n), k)
}

func (r *runner) spillWrite(shard *Metrics, path string, t *Table) {
	r.c.FS.Put(path, t)
	shard.SpillBytesWritten += t.Bytes()
}

func (r *runner) spillRead(shard *Metrics, path string) (*Table, error) {
	t, ok := r.c.FS.Get(path)
	if !ok {
		return nil, fmt.Errorf("exec: spill file %q lost", path)
	}
	shard.SpillBytesRead += t.Bytes()
	return t, nil
}

func (r *runner) spillRemove(path string) { r.c.FS.Remove(path) }

// spillFanout picks the grace partitioning fan-out so each bucket's
// expected working set is about half the budget.
func spillFanout(workBytes, budget int64) int {
	f := 2 * ((workBytes + budget - 1) / budget)
	if f < 2 {
		f = 2
	}
	if f > 256 {
		f = 256
	}
	return int(f)
}

// externalSort sorts one dense partition whose buffer exceeds the
// budget: stable-sort budget-sized contiguous chunks, spill each as a
// run, then k-way merge with ties broken by run index. Contiguous
// chunks + stable chunk sort + lowest-run tie-break reproduce the
// in-memory stable sort exactly.
func (r *runner) externalSort(c *colData, schema relop.Schema, order props.Ordering, idx []int, base string, m int, shard *Metrics) (*colData, error) {
	rowBytes := int64(len(c.cols)) * 8
	if rowBytes == 0 {
		rowBytes = 8
	}
	runRows := int(r.budget / rowBytes)
	if runRows < 1 {
		runRows = 1
	}
	if runRows > c.n {
		runRows = c.n
	}
	shard.Spills++
	recordPeak(shard, int64(runRows)*rowBytes)
	var paths []string
	for lo := 0; lo < c.n; lo += runRows {
		hi := lo + runRows
		if hi > c.n {
			hi = c.n
		}
		sel := make([]int32, hi-lo)
		for i := range sel {
			sel[i] = int32(lo + i)
		}
		dense := (&colData{cols: c.cols, n: c.n, sel: sel}).compact()
		perm := sortedPerm(dense, order, idx)
		rows := make([]relop.Row, len(perm))
		for k, p := range perm {
			rows[k] = dense.rowAt(p)
		}
		path := fmt.Sprintf("%s/m%d.run%d", base, m, len(paths))
		r.spillWrite(shard, path, &Table{Schema: schema, Rows: rows})
		paths = append(paths, path)
	}
	runs := make([][]relop.Row, len(paths))
	for i, path := range paths {
		t, err := r.spillRead(shard, path)
		if err != nil {
			return nil, err
		}
		runs[i] = t.Rows
	}
	cmp := func(a, b relop.Row) int {
		for k, sc := range order {
			c := a[idx[k]].Compare(b[idx[k]])
			if sc.Desc {
				c = -c
			}
			if c != 0 {
				return c
			}
		}
		return 0
	}
	bs := make([]vecBuilder, len(c.cols))
	heads := make([]int, len(runs))
	for {
		best := -1
		for i := range runs {
			if heads[i] >= len(runs[i]) {
				continue
			}
			if best < 0 || cmp(runs[i][heads[i]], runs[best][heads[best]]) < 0 {
				best = i
			}
		}
		if best < 0 {
			break
		}
		row := runs[best][heads[best]]
		heads[best]++
		for j := range bs {
			bs[j].add(row[j])
		}
	}
	for _, path := range paths {
		r.spillRemove(path)
	}
	cols := make([]*Vector, len(bs))
	for j := range cols {
		cols[j] = bs[j].vec()
	}
	return &colData{cols: cols, n: c.n}, nil
}

// saltHash maps an encoded key to a grace bucket. Salting gives each
// recursion level an independent partitioning, so a bucket that stays
// over budget from hash imbalance re-splits instead of looping.
func saltHash(buf []byte, salt int) uint64 {
	return (fnv64aBytes(buf) ^ uint64(salt)) * fnvPrime64
}

// graceBuckets partitions the given positions of c by salted key hash.
func graceBuckets(c *colData, keyIdx []int, intKeys bool, pos []int32, fanout, salt int) [][]int32 {
	enc := keyEncoder(c, keyIdx, intKeys)
	sels := make([][]int32, fanout)
	var buf []byte
	for _, i := range pos {
		buf = enc(i, buf[:0])
		b := int(saltHash(buf, salt) % uint64(fanout))
		sels[b] = append(sels[b], i)
	}
	return sels
}

// identity returns [0, n) as positions.
func identity(n int) []int32 {
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = int32(i)
	}
	return pos
}

// graceSpillDepth bounds grace recursion; past it, a bucket
// aggregates (or builds) in memory even over budget — only reachable
// under extreme key skew, and the peak is still recorded honestly.
const graceSpillDepth = 6

// graceAgg hash-aggregates a partition whose group table could exceed
// the budget: rows grace-partition by key hash into fan-out buckets
// spilled through the FileStore, each bucket aggregates in memory
// (same key, same bucket — so buckets hold disjoint group sets), and
// a bucket that still looks over budget re-partitions recursively
// under a new hash salt. The groups reassemble in first-appearance
// order, which restores the in-memory output exactly.
func (r *runner) graceAgg(c *colData, schema relop.Schema, keyIdx, argIdx []int, aggs []relop.Aggregate, intKeys bool, base string, m int, shard *Metrics) (*aggGroups, error) {
	shard.Spills++
	g, err := r.graceAggRec(c, schema, keyIdx, argIdx, aggs, intKeys, base, m, identity(c.n), 0, 0, shard)
	if err != nil {
		return nil, err
	}
	// Restore first-appearance order across buckets. First positions
	// are distinct, so the order is total.
	perm := make([]int, len(g.firsts))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return g.firsts[perm[a]] < g.firsts[perm[b]] })
	out := &aggGroups{
		firsts: make([]int32, len(perm)),
		keys:   make([]string, len(perm)),
		states: make([][]relop.AggState, len(perm)),
	}
	for i, p := range perm {
		out.firsts[i] = g.firsts[p]
		out.keys[i] = g.keys[p]
		out.states[i] = g.states[p]
	}
	return out, nil
}

func (r *runner) graceAggRec(c *colData, schema relop.Schema, keyIdx, argIdx []int, aggs []relop.Aggregate, intKeys bool, base string, m int, pos []int32, salt, depth int, shard *Metrics) (*aggGroups, error) {
	outWidth := int64(len(keyIdx)+len(aggs)) * 8
	bound := int64(len(pos)) * outWidth
	fanout := spillFanout(bound, r.budget)
	sels := graceBuckets(c, keyIdx, intKeys, pos, fanout, salt)
	g := &aggGroups{}
	for b, sel := range sels {
		if len(sel) == 0 {
			continue
		}
		var gb *aggGroups
		var err error
		if depth+1 < graceSpillDepth && int64(len(sel))*outWidth > r.budget {
			// Bucket still over budget (imbalance or a huge input):
			// re-split under a fresh salt before touching disk.
			gb, err = r.graceAggRec(c, schema, keyIdx, argIdx, aggs, intKeys, base, m, sel, salt+1, depth+1, shard)
			if err != nil {
				return nil, err
			}
		} else {
			rows := (&colData{cols: c.cols, n: c.n, sel: sel}).materialize()
			path := fmt.Sprintf("%s/m%d.d%d.s%d.b%d", base, m, depth, salt, b)
			r.spillWrite(shard, path, &Table{Schema: schema, Rows: rows})
			t, rerr := r.spillRead(shard, path)
			if rerr != nil {
				return nil, rerr
			}
			sub := colsFromRows(len(c.cols), t.Rows)
			gb, err = aggPart(sub, keyIdx, argIdx, aggs, intKeys, false, false, nil, shard)
			if err != nil {
				return nil, err
			}
			for gi := range gb.firsts {
				// Translate bucket-local first positions back to the
				// original batch.
				gb.firsts[gi] = sel[gb.firsts[gi]]
			}
			r.spillRemove(path)
		}
		g.firsts = append(g.firsts, gb.firsts...)
		g.keys = append(g.keys, gb.keys...)
		g.states = append(g.states, gb.states...)
	}
	return g, nil
}

// graceJoin joins a partition whose build side exceeds the budget:
// both sides grace-partition by key hash with one shared fan-out
// (matching keys land in matching buckets), buckets spill through the
// FileStore and join independently, and the matched position pairs
// re-sort to probe order — the row engine's exact output order.
func (r *runner) graceJoin(lc, rc *colData, lSchema, rSchema relop.Schema, lIdx, rIdx []int, intKeys bool, base string, m int, shard *Metrics) ([]int32, []int32, error) {
	shard.Spills++
	lpos, rpos, err := r.graceJoinRec(lc, rc, lSchema, rSchema, lIdx, rIdx, intKeys, base, m,
		identity(lc.n), identity(rc.n), 0, 0, shard)
	if err != nil {
		return nil, nil, err
	}
	// Restore probe order: pairs sort by (probe position, build
	// position); within one probe row, build positions ascend in
	// build-insertion order already, so this is the row engine's
	// output order.
	perm := make([]int, len(lpos))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		pa, pb := perm[a], perm[b]
		if lpos[pa] != lpos[pb] {
			return lpos[pa] < lpos[pb]
		}
		return rpos[pa] < rpos[pb]
	})
	ol := make([]int32, len(perm))
	or := make([]int32, len(perm))
	for i, p := range perm {
		ol[i] = lpos[p]
		or[i] = rpos[p]
	}
	return ol, or, nil
}

// graceJoinRec joins the given probe/build position subsets:
// partition both sides with one shared salted hash (matching keys
// land in matching buckets), spill each bucket pair through the
// FileStore, and hash-join pairs whose build side fits; a build
// bucket still over budget re-splits under a fresh salt.
func (r *runner) graceJoinRec(lc, rc *colData, lSchema, rSchema relop.Schema, lIdx, rIdx []int, intKeys bool, base string, m int, lposIn, rposIn []int32, salt, depth int, shard *Metrics) ([]int32, []int32, error) {
	buildWidth := int64(len(rc.cols)) * 8
	fanout := spillFanout(int64(len(rposIn))*buildWidth, r.budget)
	lsels := graceBuckets(lc, lIdx, intKeys, lposIn, fanout, salt)
	rsels := graceBuckets(rc, rIdx, intKeys, rposIn, fanout, salt)
	var lpos, rpos []int32
	for b := 0; b < fanout; b++ {
		if len(lsels[b]) == 0 || len(rsels[b]) == 0 {
			continue
		}
		if depth+1 < graceSpillDepth && int64(len(rsels[b]))*buildWidth > r.budget {
			lp, rp, err := r.graceJoinRec(lc, rc, lSchema, rSchema, lIdx, rIdx, intKeys, base, m,
				lsels[b], rsels[b], salt+1, depth+1, shard)
			if err != nil {
				return nil, nil, err
			}
			lpos = append(lpos, lp...)
			rpos = append(rpos, rp...)
			continue
		}
		lpath := fmt.Sprintf("%s/m%d.d%d.s%d.l%d", base, m, depth, salt, b)
		rpath := fmt.Sprintf("%s/m%d.d%d.s%d.r%d", base, m, depth, salt, b)
		r.spillWrite(shard, lpath, &Table{Schema: lSchema, Rows: (&colData{cols: lc.cols, n: lc.n, sel: lsels[b]}).materialize()})
		r.spillWrite(shard, rpath, &Table{Schema: rSchema, Rows: (&colData{cols: rc.cols, n: rc.n, sel: rsels[b]}).materialize()})
		lt, err := r.spillRead(shard, lpath)
		if err != nil {
			return nil, nil, err
		}
		rt, err := r.spillRead(shard, rpath)
		if err != nil {
			return nil, nil, err
		}
		lb := colsFromRows(len(lc.cols), lt.Rows)
		// Block join: the build side loads in budget-sized chunks and
		// the whole probe bucket scans against each. Key-hash
		// recursion cannot split one hot key's duplicates, but
		// arbitrary build chunks can — the caller's (probe, build)
		// pair sort makes chunk boundaries invisible in the output.
		chunkRows := int(r.budget / buildWidth)
		if chunkRows < 1 {
			chunkRows = 1
		}
		for lo := 0; lo < len(rt.Rows); lo += chunkRows {
			hi := lo + chunkRows
			if hi > len(rt.Rows) {
				hi = len(rt.Rows)
			}
			rb := colsFromRows(len(rc.cols), rt.Rows[lo:hi])
			lp, rp := joinPart(lb, rb, lIdx, rIdx, intKeys, lsels[b], rsels[b][lo:hi], shard)
			lpos = append(lpos, lp...)
			rpos = append(rpos, rp...)
		}
		r.spillRemove(lpath)
		r.spillRemove(rpath)
	}
	return lpos, rpos, nil
}
