package exec

import (
	"context"
	"testing"

	"repro/internal/plan"
	"repro/internal/props"
	"repro/internal/relop"
)

func TestRangePartitionColocatesAndOrders(t *testing.T) {
	fs := NewFileStore()
	fs.Put("t.log", smallTable())
	c := testCluster(t, 3, fs)
	schema := smallTable().Schema
	extract := &plan.Node{Op: &relop.PhysExtract{Path: "t.log", Columns: schema}, Schema: schema}
	order := props.NewOrdering("B", "A")
	p := &plan.Node{
		Op:       &relop.Repartition{To: props.RangePartitioning(order)},
		Schema:   schema,
		Children: []*plan.Node{extract},
	}
	out := mustRunRaw(t, c, p)
	// Equal (B,A) keys must share a partition.
	where := map[string]int{}
	for m, part := range out.parts {
		for _, row := range part {
			k := row[1].String() + "|" + row[0].String()
			if prev, ok := where[k]; ok && prev != m {
				t.Fatalf("key %s split across machines %d and %d", k, prev, m)
			}
			where[k] = m
		}
	}
	// Partitions must be ordered: every key in partition i sorts
	// before every key in partition i+1.
	var lastMax relop.Row
	for m := 0; m < 3; m++ {
		for _, row := range out.parts[m] {
			if lastMax != nil {
				cb := lastMax[1].Compare(row[1])
				if cb > 0 {
					t.Fatalf("partition order violated: machine boundary B=%v after B=%v", row[1], lastMax[1])
				}
			}
		}
		// Track the max key of this partition (scan all rows).
		for _, row := range out.parts[m] {
			if lastMax == nil || row[1].Compare(lastMax[1]) > 0 ||
				(row[1].Compare(lastMax[1]) == 0 && row[0].Compare(lastMax[0]) > 0) {
				lastMax = row
			}
		}
	}
	// All rows survive.
	if out.rows() != int64(len(smallTable().Rows)) {
		t.Errorf("rows = %d", out.rows())
	}
}

func TestRangePartitionDescending(t *testing.T) {
	fs := NewFileStore()
	fs.Put("t.log", smallTable())
	c := testCluster(t, 2, fs)
	schema := smallTable().Schema
	extract := &plan.Node{Op: &relop.PhysExtract{Path: "t.log", Columns: schema}, Schema: schema}
	order := props.Ordering{{Col: "D", Desc: true}}
	p := &plan.Node{
		Op:       &relop.Repartition{To: props.RangePartitioning(order)},
		Schema:   schema,
		Children: []*plan.Node{extract},
	}
	out := mustRunRaw(t, c, p)
	// With a descending key, partition 0 holds the LARGEST D values.
	min0, max1 := int64(1<<62), int64(-1<<62)
	for _, row := range out.parts[0] {
		if row[3].I < min0 {
			min0 = row[3].I
		}
	}
	for _, row := range out.parts[1] {
		if row[3].I > max1 {
			max1 = row[3].I
		}
	}
	if len(out.parts[0]) > 0 && len(out.parts[1]) > 0 && min0 < max1 {
		t.Errorf("descending ranges violated: part0 min %d < part1 max %d", min0, max1)
	}
}

func TestRangePartitionMissingColumn(t *testing.T) {
	fs := NewFileStore()
	fs.Put("t.log", smallTable())
	c := testCluster(t, 2, fs)
	schema := smallTable().Schema
	extract := &plan.Node{Op: &relop.PhysExtract{Path: "t.log", Columns: schema}, Schema: schema}
	p := &plan.Node{
		Op:       &relop.Repartition{To: props.RangePartitioning(props.NewOrdering("Z"))},
		Schema:   schema,
		Children: []*plan.Node{extract},
	}
	r, finish := c.newRunner(context.Background())
	defer finish()
	if _, err := r.exec(p, r.span); err == nil {
		t.Error("range over missing column should fail")
	}
}
