package exec

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strconv"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/props"
	"repro/internal/relop"
)

// This file is the vectorized engine: typed columnar kernels for
// every physical operator, driven by the same runner, span structure,
// and metering as the row engine in run.go. The contract is strict
// bit-identity — outputs, Core metrics, and trace trees must match
// the row engine at any worker width — so every kernel mirrors its
// row counterpart's semantics exactly, including the quirks
// (integer-only filter truthiness, integer-only AND/OR short-
// circuiting, rendered-string group equality, float aggregation
// state). The speed comes from typed column loops, pre-resolved
// column indexes, batch-level scalar CSE, and selection vectors that
// make filter a zero-copy operation.

// prog is a compiled expression program: the CSE-shared DAG of one
// operator's expressions plus pre-resolved input column indexes.
type prog struct {
	dag  *relop.ExprDAG
	cols []int // per node: input column index for ColRef nodes, else -1
}

func compileProg(exprs []relop.Scalar, schema relop.Schema) (*prog, error) {
	dag := relop.BuildExprDAG(exprs)
	p := &prog{dag: dag, cols: make([]int, len(dag.Nodes))}
	for i := range dag.Nodes {
		p.cols[i] = -1
		if cr, ok := dag.Nodes[i].Expr.(*relop.ColRef); ok {
			j := schema.Index(cr.Name)
			if j < 0 {
				return nil, fmt.Errorf("column %q not in schema %v", cr.Name, schema)
			}
			p.cols[i] = j
		}
	}
	return p, nil
}

// vecEval evaluates one compiled program over one batch. Node results
// computed at the batch's full selection are memoized, so a shared
// subexpression evaluates once per batch and later references hit the
// memo — the execution half of scalar CSE. AND/OR right operands
// evaluate only under the sub-selection of rows whose left operand
// did not short-circuit, and such guarded results are never memoized:
// a division the row engine skips on short-circuited rows is never
// evaluated here either.
type vecEval struct {
	p    *prog
	in   *colData
	sel  []int32
	memo []*Vector
	hits int64 // row evaluations served from the memo
}

func newVecEval(p *prog, in *colData) *vecEval {
	return &vecEval{p: p, in: in, sel: in.positions(), memo: make([]*Vector, len(p.dag.Nodes))}
}

func (e *vecEval) root(i int) (*Vector, error) {
	return e.eval(e.p.dag.Roots[i], e.sel, true)
}

func (e *vecEval) eval(id int, sel []int32, top bool) (*Vector, error) {
	nd := &e.p.dag.Nodes[id]
	if m := e.memo[id]; m != nil {
		if nd.L >= 0 {
			e.hits += int64(len(sel))
		}
		return m, nil
	}
	var out *Vector
	var err error
	switch {
	case e.p.cols[id] >= 0:
		out = e.in.cols[e.p.cols[id]]
	case nd.L < 0:
		out = constVector(nd.Expr.(*relop.ConstExpr).Val, e.in.n)
	case nd.Op == relop.OpAnd || nd.Op == relop.OpOr:
		out, err = e.evalBool(nd, sel, top)
	default:
		var l, r *Vector
		if l, err = e.eval(nd.L, sel, top); err != nil {
			return nil, err
		}
		if r, err = e.eval(nd.R, sel, top); err != nil {
			return nil, err
		}
		out, err = binVec(nd.Op, l, r, sel, e.in.n)
	}
	if err != nil {
		return nil, err
	}
	if top {
		e.memo[id] = out
	}
	return out, nil
}

// evalBool evaluates AND/OR with the row engine's exact semantics:
// only an *integer* left operand short-circuits (false for AND, true
// for OR); every other row evaluates the right operand, and the
// result is the truthiness combination.
func (e *vecEval) evalBool(nd *relop.ExprDAGNode, sel []int32, top bool) (*Vector, error) {
	l, err := e.eval(nd.L, sel, top)
	if err != nil {
		return nil, err
	}
	isAnd := nd.Op == relop.OpAnd
	lsc := intTruthAt(l)
	out := make([]bool, e.in.n)
	need := sel[:0:0]
	for _, i := range sel {
		isInt, t := lsc(i)
		if isInt && t != isAnd {
			// AND short-circuits on false, OR on true.
			out[i] = !isAnd
			continue
		}
		need = append(need, i)
	}
	if len(need) > 0 {
		r, err := e.eval(nd.R, need, false)
		if err != nil {
			return nil, err
		}
		rt := truthyAt(r)
		for _, i := range need {
			_, lt := lsc(i)
			if isAnd {
				out[i] = lt && rt(i)
			} else {
				out[i] = lt || rt(i)
			}
		}
	}
	return &Vector{bools: out, n: e.in.n}, nil
}

// ---- positional accessors -------------------------------------------------

// intTruthAt classifies position i of v: whether the value is
// integer-kinded (comparison results included) and whether it is
// truthy.
func intTruthAt(v *Vector) func(int32) (bool, bool) {
	switch {
	case v.bools != nil:
		xs := v.bools
		return func(i int32) (bool, bool) { return true, xs[v.ix(i)] }
	case v.ints != nil:
		xs := v.ints
		return func(i int32) (bool, bool) { return true, xs[v.ix(i)] != 0 }
	case v.floats != nil:
		xs := v.floats
		return func(i int32) (bool, bool) { return false, xs[v.ix(i)] != 0 }
	case v.strs != nil:
		xs := v.strs
		return func(i int32) (bool, bool) { return false, xs[v.ix(i)] != "" }
	default:
		xs := v.vals
		return func(i int32) (bool, bool) {
			x := xs[v.ix(i)]
			return x.Kind == relop.TInt, relop.Truthy(x)
		}
	}
}

func truthyAt(v *Vector) func(int32) bool {
	f := intTruthAt(v)
	return func(i int32) bool { _, t := f(i); return t }
}

// intAt reads integer-class vectors (ints or bools) as int64.
func intAt(v *Vector) func(int32) int64 {
	if v.bools != nil {
		xs := v.bools
		return func(i int32) int64 {
			if xs[v.ix(i)] {
				return 1
			}
			return 0
		}
	}
	xs := v.ints
	if v.cons {
		c := xs[0]
		return func(int32) int64 { return c }
	}
	return func(i int32) int64 { return xs[i] }
}

// floatAt reads any vector with Value.AsFloat semantics (strings read
// the zero float field).
func floatAt(v *Vector) func(int32) float64 {
	switch {
	case v.ints != nil:
		xs := v.ints
		if v.cons {
			c := float64(xs[0])
			return func(int32) float64 { return c }
		}
		return func(i int32) float64 { return float64(xs[i]) }
	case v.floats != nil:
		xs := v.floats
		if v.cons {
			c := xs[0]
			return func(int32) float64 { return c }
		}
		return func(i int32) float64 { return xs[i] }
	case v.strs != nil:
		return func(int32) float64 { return 0 }
	case v.bools != nil:
		xs := v.bools
		return func(i int32) float64 {
			if xs[v.ix(i)] {
				return 1
			}
			return 0
		}
	default:
		xs := v.vals
		return func(i int32) float64 { return xs[v.ix(i)].AsFloat() }
	}
}

func strAt(v *Vector) func(int32) string {
	xs := v.strs
	if v.cons {
		c := xs[0]
		return func(int32) string { return c }
	}
	return func(i int32) string { return xs[i] }
}

type vecClass int

const (
	vcInt vecClass = iota // ints or bools
	vcFloat
	vcStr
	vcAny
)

func classOf(v *Vector) vecClass {
	switch {
	case v.floats != nil:
		return vcFloat
	case v.strs != nil:
		return vcStr
	case v.vals != nil:
		return vcAny
	default:
		return vcInt
	}
}

// ---- binary kernels -------------------------------------------------------

// binVec applies op positionally at the selected positions; the
// output has physical length n with defined values only at sel.
func binVec(op relop.BinKind, l, r *Vector, sel []int32, n int) (*Vector, error) {
	switch op {
	case relop.OpAdd:
		return addVec(l, r, sel, n), nil
	case relop.OpSub, relop.OpMul:
		return arithVec(op, l, r, sel, n), nil
	case relop.OpDiv:
		return divVec(l, r, sel, n)
	case relop.OpEq, relop.OpNe, relop.OpLt, relop.OpLe, relop.OpGt, relop.OpGe:
		return cmpVec(op, l, r, sel, n), nil
	default:
		// AND/OR route through evalBool; anything else is a new
		// operator the kernels do not know yet.
		return nil, fmt.Errorf("unknown binary op %v", op)
	}
}

// bothInt exposes a pair of integer-backed vectors (excluding bools,
// which go through the generic path so 0/1 rendering stays in one
// place) as slices with a per-element stride (0 for constants).
func bothInt(l, r *Vector) (lx, rx []int64, ls, rs int, ok bool) {
	if l.ints == nil || r.ints == nil {
		return nil, nil, 0, 0, false
	}
	ls, rs = 1, 1
	if l.cons {
		ls = 0
	}
	if r.cons {
		rs = 0
	}
	return l.ints, r.ints, ls, rs, true
}

func addVec(l, r *Vector, sel []int32, n int) *Vector {
	if lx, rx, ls, rs, ok := bothInt(l, r); ok {
		out := make([]int64, n)
		for _, i := range sel {
			out[i] = lx[int(i)*ls] + rx[int(i)*rs]
		}
		return &Vector{ints: out, n: n}
	}
	if l.strs != nil && r.strs != nil {
		la, ra := strAt(l), strAt(r)
		out := make([]string, n)
		for _, i := range sel {
			out[i] = la(i) + ra(i)
		}
		return &Vector{strs: out, n: n}
	}
	if l.vals != nil || r.vals != nil || l.bools != nil || r.bools != nil ||
		(l.strs != nil) != (r.strs != nil) {
		// Mixed or untyped inputs: Value.Add per position keeps the
		// promotion rules (including int+int staying int when a
		// comparison result meets an integer) in one place.
		la, ra := valAt(l), valAt(r)
		out := make([]relop.Value, n)
		for _, i := range sel {
			out[i] = la(i).Add(ra(i))
		}
		return &Vector{vals: out, n: n}
	}
	la, ra := floatAt(l), floatAt(r)
	out := make([]float64, n)
	for _, i := range sel {
		out[i] = la(i) + ra(i)
	}
	return &Vector{floats: out, n: n}
}

func valAt(v *Vector) func(int32) relop.Value { return v.At }

func arithVec(op relop.BinKind, l, r *Vector, sel []int32, n int) *Vector {
	if lx, rx, ls, rs, ok := bothInt(l, r); ok {
		out := make([]int64, n)
		if op == relop.OpSub {
			for _, i := range sel {
				out[i] = lx[int(i)*ls] - rx[int(i)*rs]
			}
		} else {
			for _, i := range sel {
				out[i] = lx[int(i)*ls] * rx[int(i)*rs]
			}
		}
		return &Vector{ints: out, n: n}
	}
	if l.vals != nil || r.vals != nil || l.bools != nil || r.bools != nil {
		la, ra := valAt(l), valAt(r)
		out := make([]relop.Value, n)
		for _, i := range sel {
			v, _ := relop.EvalBin(op, la(i), ra(i))
			out[i] = v
		}
		return &Vector{vals: out, n: n}
	}
	// Any remaining mix (ints/floats/strings) subtracts or multiplies
	// as floats, exactly like evalBin's AsFloat fallback.
	la, ra := floatAt(l), floatAt(r)
	out := make([]float64, n)
	if op == relop.OpSub {
		for _, i := range sel {
			out[i] = la(i) - ra(i)
		}
	} else {
		for _, i := range sel {
			out[i] = la(i) * ra(i)
		}
	}
	return &Vector{floats: out, n: n}
}

func divVec(l, r *Vector, sel []int32, n int) (*Vector, error) {
	la, ra := floatAt(l), floatAt(r)
	out := make([]float64, n)
	for _, i := range sel {
		d := ra(i)
		if d == 0 {
			return nil, fmt.Errorf("division by zero")
		}
		out[i] = la(i) / d
	}
	return &Vector{floats: out, n: n}, nil
}

func cmpVec(op relop.BinKind, l, r *Vector, sel []int32, n int) *Vector {
	out := make([]bool, n)
	if l.ints != nil && r.ints != nil && !l.cons && !r.cons {
		lx, rx := l.ints, r.ints
		for _, i := range sel {
			out[i] = cmpSat(op, cmpInt64(lx[i], rx[i]))
		}
		return &Vector{bools: out, n: n}
	}
	cf := compareAt(l, r)
	for _, i := range sel {
		out[i] = cmpSat(op, cf(i))
	}
	return &Vector{bools: out, n: n}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// compareAt returns a positional comparator with Value.Compare
// semantics: exact int-int comparison, float comparison across
// numeric kinds, lexicographic strings, numbers before strings.
func compareAt(l, r *Vector) func(int32) int {
	lc, rc := classOf(l), classOf(r)
	switch {
	case lc == vcInt && rc == vcInt:
		la, ra := intAt(l), intAt(r)
		return func(i int32) int { return cmpInt64(la(i), ra(i)) }
	case (lc == vcInt || lc == vcFloat) && (rc == vcInt || rc == vcFloat):
		la, ra := floatAt(l), floatAt(r)
		return func(i int32) int { return cmpFloat64(la(i), ra(i)) }
	case lc == vcStr && rc == vcStr:
		la, ra := strAt(l), strAt(r)
		return func(i int32) int {
			a, b := la(i), ra(i)
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			default:
				return 0
			}
		}
	default:
		la, ra := valAt(l), valAt(r)
		return func(i int32) int { return la(i).Compare(ra(i)) }
	}
}

func cmpSat(op relop.BinKind, c int) bool {
	switch op {
	case relop.OpEq:
		return c == 0
	case relop.OpNe:
		return c != 0
	case relop.OpLt:
		return c < 0
	case relop.OpLe:
		return c <= 0
	case relop.OpGt:
		return c > 0
	default: // OpGe
		return c >= 0
	}
}

// selFromPred derives the surviving selection from a predicate
// vector. A row passes only when its value is an *integer* nonzero —
// relop truthiness is wider, but the row engine's filter is exactly
// this test, so floats and strings never pass.
func selFromPred(v *Vector, sel []int32) []int32 {
	out := make([]int32, 0, len(sel))
	switch {
	case v.bools != nil:
		xs := v.bools
		for _, i := range sel {
			if xs[i] {
				out = append(out, i)
			}
		}
	case v.ints != nil:
		if v.cons {
			if v.ints[0] != 0 {
				return append(out, sel...)
			}
			return out
		}
		xs := v.ints
		for _, i := range sel {
			if xs[i] != 0 {
				out = append(out, i)
			}
		}
	case v.vals != nil:
		xs := v.vals
		for _, i := range sel {
			if x := xs[v.ix(i)]; x.Kind == relop.TInt && x.I != 0 {
				out = append(out, i)
			}
		}
	}
	return out
}

// ---- key encoding ---------------------------------------------------------

// intBacked reports a vector every element of which is integer-
// kinded at the row boundary.
func intBacked(v *Vector) bool { return v.ints != nil || v.bools != nil }

// allIntKeys reports whether the key columns of every partition are
// integer-backed, enabling fixed-width key encoding.
func allIntKeys(parts []*colData, keyIdx []int) bool {
	for _, c := range parts {
		if c == nil {
			continue
		}
		for _, j := range keyIdx {
			if !intBacked(c.cols[j]) {
				return false
			}
		}
	}
	return true
}

// keyEncoder returns a function appending row i's key encoding to
// buf. With intKeys, keys encode as fixed 8-byte big-endian words;
// otherwise as rendered values "v|v|...", which is exactly the row
// engine's keyOf and therefore its group-equality relation (int 2
// and float 2.0 render alike). The intKeys fast path is only sound
// when every partition of every input is integer-backed — rendered
// "2" must never meet encoded 2 — which allIntKeys establishes up
// front.
func keyEncoder(c *colData, keyIdx []int, intKeys bool) func(i int32, buf []byte) []byte {
	if intKeys {
		gets := make([]func(int32) int64, len(keyIdx))
		for k, j := range keyIdx {
			gets[k] = intAt(c.cols[j])
		}
		return func(i int32, buf []byte) []byte {
			for _, g := range gets {
				u := uint64(g(i))
				buf = append(buf, byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
					byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
			}
			return buf
		}
	}
	cols := make([]*Vector, len(keyIdx))
	for k, j := range keyIdx {
		cols[k] = c.cols[j]
	}
	return func(i int32, buf []byte) []byte {
		for _, v := range cols {
			buf = append(buf, v.At(i).String()...)
			buf = append(buf, '|')
		}
		return buf
	}
}

// renderKeyAt renders a row's key exactly like keyOf, for messages.
func renderKeyAt(c *colData, keyIdx []int, i int32) string {
	s := ""
	for _, j := range keyIdx {
		s += c.cols[j].At(i).String() + "|"
	}
	return s
}

// ---- hashing --------------------------------------------------------------

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnv64aBytes(b []byte) uint64 {
	h := fnvOffset64
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

func fnv64aString(s string) uint64 {
	h := fnvOffset64
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

func fnv64aInt(x int64) uint64 {
	h := fnvOffset64
	u := uint64(x)
	for i := 0; i < 8; i++ {
		h = (h ^ (u >> (8 * i) & 0xff)) * fnvPrime64
	}
	return h
}

// vecHashCols computes Row.HashCols for the selected positions
// column-wise: per-value FNV-64a hashes combined positionally with
// the same offset/prime fold, so hash repartitioning routes every
// row to the same machine in both engines.
func vecHashCols(c *colData, pos []int32, idx []int) []uint64 {
	hs := make([]uint64, len(pos))
	for i := range hs {
		hs[i] = fnvOffset64
	}
	var buf []byte
	for _, j := range idx {
		v := c.cols[j]
		switch {
		case v.ints != nil && !v.cons:
			xs := v.ints
			for k, p := range pos {
				hs[k] = (hs[k] ^ fnv64aInt(xs[p])) * fnvPrime64
			}
		case v.strs != nil && !v.cons:
			xs := v.strs
			for k, p := range pos {
				hs[k] = (hs[k] ^ fnv64aString(xs[p])) * fnvPrime64
			}
		case v.floats != nil && !v.cons:
			xs := v.floats
			for k, p := range pos {
				buf = appendFloatG(buf[:0], xs[p])
				hs[k] = (hs[k] ^ fnv64aBytes(buf)) * fnvPrime64
			}
		default:
			// Constants, bools, and mixed columns: Value.Hash per
			// position (bools hash as 0/1 ints, like At renders them).
			for k, p := range pos {
				hs[k] = (hs[k] ^ v.At(p).Hash()) * fnvPrime64
			}
		}
	}
	return hs
}

// ---- operator kernels -----------------------------------------------------

// applyVec is apply's vector-engine twin: same dispatch, columnar
// kernels.
func (r *runner) applyVec(n *plan.Node, ins []*pdata, sp obs.Span) (*pdata, error) {
	switch op := n.Op.(type) {
	case *relop.PhysExtract:
		return r.vextract(op, sp)
	case *relop.PhysCacheScan:
		return r.vcacheScan(op, sp)
	case *relop.PhysFilter:
		return r.vfilter(op, ins[0], sp)
	case *relop.PhysProject:
		return r.vproject(op, ins[0], n.Schema, sp)
	case *relop.Sort:
		return r.vsort(op.Order, ins[0], r.spillBase(n), sp)
	case *relop.Repartition:
		return r.vrepartition(op, ins[0], r.spillBase(n), sp)
	case *relop.StreamAgg:
		return r.vaggregate(op.Keys, op.Aggs, op.Phase, ins[0], n.Schema, true, "", sp)
	case *relop.HashAgg:
		return r.vaggregate(op.Keys, op.Aggs, op.Phase, ins[0], n.Schema, false, r.spillBase(n), sp)
	case *relop.SortMergeJoin:
		return r.vjoin(op.LeftKeys, op.RightKeys, ins[0], ins[1], n.Schema, r.spillBase(n), sp)
	case *relop.HashJoin:
		return r.vjoin(op.LeftKeys, op.RightKeys, ins[0], ins[1], n.Schema, r.spillBase(n), sp)
	case *relop.PhysUnion:
		return r.vunion(ins, n.Schema, sp)
	default:
		return nil, fmt.Errorf("exec: unsupported operator %T", n.Op)
	}
}

func (r *runner) vextract(op *relop.PhysExtract, sp obs.Span) (*pdata, error) {
	t, ok := r.c.FS.Get(op.Path)
	if !ok {
		return nil, fmt.Errorf("exec: input file %q not found", op.Path)
	}
	idx, ok := t.Schema.Indexes(op.Columns.Names())
	if !ok {
		return nil, fmt.Errorf("exec: file %q schema %v missing extract columns %v",
			op.Path, t.Schema, op.Columns.Names())
	}
	out := newVData(op.Columns, r.c.Machines)
	width := int64(len(op.Columns)) * 8
	if err := r.forEach(sp, "part", r.c.Machines, func(m int, shard *Metrics) error {
		// Round-robin distribution: machine m owns rows m, m+M, ...
		cols := make([]*Vector, len(idx))
		rows := 0
		for j, k := range idx {
			cols[j] = buildColStrided(t.Rows, m, r.c.Machines, k)
			rows = cols[j].n
		}
		out.vparts[m] = &colData{cols: cols, n: rows}
		shard.BatchesProcessed++
		shard.DiskBytesRead += int64(rows) * width
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// buildColStrided builds one extract column from every stride-th row
// starting at first, column-major: one kind check per value against
// the column's first value, typed appends into a preallocated
// backing. On any kind mismatch it falls back to the generic
// vecBuilder over the same values, so the resulting vector is
// representation-identical to the builder's in every case.
func buildColStrided(rows []relop.Row, first, stride, k int) *Vector {
	n := 0
	if first < len(rows) {
		n = (len(rows)-first-1)/stride + 1
	}
	if n == 0 {
		return &Vector{ints: []int64{}}
	}
	kind := rows[first][k].Kind
	switch kind {
	case relop.TInt:
		xs := make([]int64, 0, n)
		for i := first; i < len(rows); i += stride {
			v := rows[i][k]
			if v.Kind != relop.TInt {
				return buildColSlow(rows, first, stride, k)
			}
			xs = append(xs, v.I)
		}
		return &Vector{ints: xs, n: n}
	case relop.TFloat:
		xs := make([]float64, 0, n)
		for i := first; i < len(rows); i += stride {
			v := rows[i][k]
			if v.Kind != relop.TFloat {
				return buildColSlow(rows, first, stride, k)
			}
			xs = append(xs, v.F)
		}
		return &Vector{floats: xs, n: n}
	default:
		xs := make([]string, 0, n)
		for i := first; i < len(rows); i += stride {
			v := rows[i][k]
			if v.Kind != kind {
				return buildColSlow(rows, first, stride, k)
			}
			xs = append(xs, v.S)
		}
		return &Vector{strs: xs, n: n}
	}
}

func buildColSlow(rows []relop.Row, first, stride, k int) *Vector {
	var b vecBuilder
	for i := first; i < len(rows); i += stride {
		b.add(rows[i][k])
	}
	return b.vec()
}

// vcacheScan reuses the row engine's cacheScan — the redistribution
// logic and cache metering are identical — and converts each
// partition to columnar form.
func (r *runner) vcacheScan(op *relop.PhysCacheScan, sp obs.Span) (*pdata, error) {
	p, err := r.cacheScan(op, sp)
	if err != nil {
		return nil, err
	}
	p.vparts = make([]*colData, len(p.parts))
	for m, rows := range p.parts {
		p.vparts[m] = colsFromRows(len(p.schema), rows)
	}
	p.parts = nil
	return p, nil
}

func (r *runner) vfilter(op *relop.PhysFilter, in *pdata, sp obs.Span) (*pdata, error) {
	pg, err := compileProg([]relop.Scalar{op.Pred}, in.schema)
	if err != nil {
		return nil, err
	}
	out := newVData(in.schema, r.c.Machines)
	out.broadcast = in.broadcast
	if err := r.forEach(sp, "part", len(in.vparts), func(m int, shard *Metrics) error {
		c := in.vparts[m]
		ev := newVecEval(pg, c)
		pv, err := ev.root(0)
		if err != nil {
			return err
		}
		// Zero-copy: the output shares the input's column vectors and
		// narrows the selection.
		out.vparts[m] = &colData{cols: c.cols, n: c.n, sel: selFromPred(pv, ev.sel)}
		shard.BatchesProcessed++
		shard.ScalarCSEHits += ev.hits
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

func (r *runner) vproject(op *relop.PhysProject, in *pdata, schema relop.Schema, sp obs.Span) (*pdata, error) {
	exprs := make([]relop.Scalar, len(op.Items))
	for i, it := range op.Items {
		exprs[i] = it.Expr
	}
	pg, err := compileProg(exprs, in.schema)
	if err != nil {
		return nil, err
	}
	out := newVData(schema, r.c.Machines)
	out.broadcast = in.broadcast
	if err := r.forEach(sp, "part", len(in.vparts), func(m int, shard *Metrics) error {
		c := in.vparts[m]
		ev := newVecEval(pg, c)
		cols := make([]*Vector, len(exprs))
		for j := range exprs {
			v, err := ev.root(j)
			if err != nil {
				return err
			}
			cols[j] = v
		}
		out.vparts[m] = &colData{cols: cols, n: c.n, sel: c.sel}
		shard.BatchesProcessed++
		shard.ScalarCSEHits += ev.hits
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

func (r *runner) vsort(order props.Ordering, in *pdata, spillBase string, sp obs.Span) (*pdata, error) {
	out := newVData(in.schema, r.c.Machines)
	out.broadcast = in.broadcast
	if err := r.forEach(sp, "part", len(in.vparts), func(m int, shard *Metrics) error {
		s, err := r.sortPart(in.vparts[m].compact(), in.schema, order, spillBase, m, shard)
		if err != nil {
			return err
		}
		out.vparts[m] = s
		shard.BatchesProcessed++
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// sortPart sorts one dense partition, spilling to an external merge
// sort when the buffer would exceed the memory budget. Both paths
// are stable, so the result equals the row engine's stable sort.
func (r *runner) sortPart(c *colData, schema relop.Schema, order props.Ordering, spillBase string, m int, shard *Metrics) (*colData, error) {
	idx, err := orderIdx(order, schema)
	if err != nil {
		return nil, err
	}
	bytes := int64(c.n) * int64(len(c.cols)) * 8
	if r.budget > 0 && bytes > r.budget && spillBase != "" {
		return r.externalSort(c, schema, order, idx, spillBase, m, shard)
	}
	recordPeak(shard, bytes)
	perm := sortedPerm(c, order, idx)
	cols := make([]*Vector, len(c.cols))
	for j, v := range c.cols {
		cols[j] = v.gather(perm)
	}
	return &colData{cols: cols, n: c.n}, nil
}

// orderIdx resolves ordering columns (same error as sortRows).
func orderIdx(order props.Ordering, schema relop.Schema) ([]int, error) {
	idx := make([]int, len(order))
	for i, sc := range order {
		j := schema.Index(sc.Col)
		if j < 0 {
			return nil, fmt.Errorf("exec: sort column %q not in schema %v", sc.Col, schema)
		}
		idx[i] = j
	}
	return idx, nil
}

// sortedPerm stable-sorts the identity permutation of a dense batch
// by the ordering, with typed per-column comparators. Stability comes
// from an explicit original-position tiebreak, which lets the
// unstable pdqsort replace the much slower stable merge while
// producing the row engine's exact order.
func sortedPerm(c *colData, order props.Ordering, idx []int) []int32 {
	perm := make([]int32, c.n)
	for i := range perm {
		perm[i] = int32(i)
	}
	if len(idx) == 1 {
		if v := c.cols[idx[0]]; v.ints != nil && !v.cons {
			if sortPermInt(perm, v.ints[:c.n], order[0].Desc) {
				return perm
			}
		}
	}
	cmps := make([]func(a, b int32) int, len(idx))
	for k, j := range idx {
		cmps[k] = colComparator(c.cols[j])
	}
	sort.Slice(perm, func(x, y int) bool {
		a, b := perm[x], perm[y]
		for k := range cmps {
			cv := cmps[k](a, b)
			if order[k].Desc {
				cv = -cv
			}
			if cv != 0 {
				return cv < 0
			}
		}
		return a < b
	})
	return perm
}

// sortPermInt sorts perm by a single plain-int key column when the
// key range fits in 32 bits: each row packs as biased-key<<32 |
// original-index, so a flat []uint64 sort orders by key with the
// index bits breaking ties in original order — the stable order,
// without per-comparison closure calls. Reports false (perm
// untouched) when the key range is too wide for the trick.
func sortPermInt(perm []int32, xs []int64, desc bool) bool {
	if len(xs) == 0 {
		return true
	}
	lo, hi := xs[0], xs[0]
	for _, v := range xs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	rng := uint64(hi) - uint64(lo)
	if rng > math.MaxUint32 {
		return false
	}
	if rng < uint64(len(xs)) {
		// Few distinct values relative to rows: counting sort, two
		// passes instead of n log n. Scanning rows in original order
		// within each key bucket is exactly the index tiebreak.
		counts := make([]int32, rng+1)
		for _, v := range xs {
			counts[uint64(v)-uint64(lo)]++
		}
		offs := make([]int32, rng+1)
		var acc int32
		if desc {
			for k := int64(rng); k >= 0; k-- {
				offs[k] = acc
				acc += counts[k]
			}
		} else {
			for k := range offs {
				offs[k] = acc
				acc += counts[k]
			}
		}
		for i, v := range xs {
			k := uint64(v) - uint64(lo)
			perm[offs[k]] = int32(i)
			offs[k]++
		}
		return true
	}
	packed := make([]uint64, len(xs))
	if desc {
		for i, v := range xs {
			packed[i] = (uint64(hi)-uint64(v))<<32 | uint64(uint32(i))
		}
	} else {
		for i, v := range xs {
			packed[i] = (uint64(v)-uint64(lo))<<32 | uint64(uint32(i))
		}
	}
	slices.Sort(packed)
	for i, p := range packed {
		perm[i] = int32(uint32(p))
	}
	return true
}

// colComparator compares two positions of one vector with
// Value.Compare semantics.
func colComparator(v *Vector) func(a, b int32) int {
	switch {
	case v.ints != nil && !v.cons:
		xs := v.ints
		return func(a, b int32) int { return cmpInt64(xs[a], xs[b]) }
	case v.floats != nil && !v.cons:
		xs := v.floats
		return func(a, b int32) int { return cmpFloat64(xs[a], xs[b]) }
	case v.strs != nil && !v.cons:
		xs := v.strs
		return func(a, b int32) int {
			switch {
			case xs[a] < xs[b]:
				return -1
			case xs[a] > xs[b]:
				return 1
			default:
				return 0
			}
		}
	default:
		return func(a, b int32) int { return v.At(a).Compare(v.At(b)) }
	}
}

// vunion concatenates inputs partition-wise (UNION ALL).
func (r *runner) vunion(ins []*pdata, schema relop.Schema, sp obs.Span) (*pdata, error) {
	for _, in := range ins {
		if in.broadcast {
			return nil, fmt.Errorf("exec: union over broadcast input would multiply rows")
		}
	}
	out := newVData(schema, r.c.Machines)
	if err := r.forEach(sp, "part", r.c.Machines, func(m int, shard *Metrics) error {
		parts := make([]*colData, len(ins))
		for i, in := range ins {
			parts[i] = in.vparts[m].compact()
		}
		out.vparts[m] = concatCols(len(schema), parts)
		shard.BatchesProcessed++
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

func (r *runner) vrepartition(op *relop.Repartition, in *pdata, spillBase string, sp obs.Span) (*pdata, error) {
	r.meter(func(m *Metrics) { m.Exchanges++ })
	src := in.vparts
	if in.broadcast {
		src = []*colData{in.vparts[0]}
	}
	srcBytes := in.logicalBytes()
	out := newVData(in.schema, r.c.Machines)
	width := len(in.schema)
	switch op.To.Kind {
	case props.PartSerial:
		parts := make([]*colData, len(src))
		for s, c := range src {
			parts[s] = c.compact()
		}
		out.vparts[0] = concatCols(width, parts)
		for m := 1; m < len(out.vparts); m++ {
			out.vparts[m] = emptyCols(width)
		}
		r.meter(func(m *Metrics) { m.NetBytes += srcBytes })
	case props.PartBroadcast:
		parts := make([]*colData, len(src))
		for s, c := range src {
			parts[s] = c.compact()
		}
		all := concatCols(width, parts)
		for m := range out.vparts {
			out.vparts[m] = all
		}
		out.broadcast = true
		r.meter(func(m *Metrics) { m.NetBytes += srcBytes * int64(r.c.Machines) })
	case props.PartHash:
		idx, ok := in.schema.Indexes(op.To.Cols.Cols())
		if !ok {
			return nil, fmt.Errorf("exec: repartition columns %v not in schema %v", op.To.Cols, in.schema)
		}
		dests := func(_ int, c *colData, pos []int32) []int {
			hs := vecHashCols(c, pos, idx)
			ds := make([]int, len(pos))
			for k, h := range hs {
				ds[k] = int(h % uint64(r.c.Machines))
			}
			return ds
		}
		if err := r.vscatter(src, out, dests, sp); err != nil {
			return nil, err
		}
	case props.PartRange:
		// Range boundaries come from distinct key quantiles over the
		// whole input; reuse the row engine's boundary construction on
		// materialized rows so both engines route identically.
		mats := make([][]relop.Row, len(src))
		for s, c := range src {
			mats[s] = c.materialize()
		}
		dest, err := rangeDest(op.To.SortCols, in.schema, mats, r.c.Machines)
		if err != nil {
			return nil, err
		}
		dests := func(s int, _ *colData, pos []int32) []int {
			ds := make([]int, len(pos))
			for k := range pos {
				ds[k] = dest(mats[s][k])
			}
			return ds
		}
		if err := r.vscatter(src, out, dests, sp); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("exec: cannot repartition to %v", op.To)
	}
	if !op.MergeOrder.Empty() {
		// Merge receive: each machine merges the sorted streams it
		// received; a stable sort achieves the same result.
		if err := r.forEach(sp, "merge", len(out.vparts), func(m int, shard *Metrics) error {
			s, err := r.sortPart(out.vparts[m].compact(), in.schema, op.MergeOrder, spillBase, m, shard)
			if err != nil {
				return err
			}
			out.vparts[m] = s
			shard.BatchesProcessed++
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// vscatter routes the visible rows of every source batch to their
// destination machines: per-source staging gathers destination
// sub-batches, then each destination concatenates them in source
// order — identical row order to the row engine's scatter.
func (r *runner) vscatter(src []*colData, out *pdata, dests func(s int, c *colData, pos []int32) []int, sp obs.Span) error {
	machines := len(out.vparts)
	width := int64(len(out.schema)) * 8
	stage := make([][]*colData, len(src))
	if err := r.forEach(sp, "send", len(src), func(s int, shard *Metrics) error {
		c := src[s]
		pos := c.positions()
		ds := dests(s, c, pos)
		sels := make([][]int32, machines)
		for k, i := range pos {
			d := ds[k]
			sels[d] = append(sels[d], i)
		}
		buckets := make([]*colData, machines)
		for d := range buckets {
			cols := make([]*Vector, len(c.cols))
			for j, v := range c.cols {
				cols[j] = v.gather(sels[d])
			}
			buckets[d] = &colData{cols: cols, n: len(sels[d])}
		}
		stage[s] = buckets
		shard.NetBytes += int64(len(pos)) * width
		shard.BatchesProcessed++
		return nil
	}); err != nil {
		return err
	}
	return r.forEach(sp, "recv", machines, func(d int, shard *Metrics) error {
		parts := make([]*colData, len(stage))
		for s := range stage {
			parts[s] = stage[s][d]
		}
		out.vparts[d] = concatCols(len(out.schema), parts)
		shard.BatchesProcessed++
		return nil
	})
}

// aggGroups is one partition's grouping result before output
// assembly: per group, the original position of its first row, its
// encoded key, and its aggregation states, in first-appearance
// order.
type aggGroups struct {
	firsts []int32
	keys   []string
	states [][]relop.AggState
}

// vaggregate implements stream and hash aggregation over one
// partitioned batch, with the row engine's clustering and colocation
// validation and, for hash aggregation, grace-partitioned spilling
// when the group table would exceed the memory budget.
func (r *runner) vaggregate(keys []string, aggs []relop.Aggregate, phase relop.AggPhase, in *pdata, schema relop.Schema, stream bool, spillBase string, sp obs.Span) (*pdata, error) {
	if in.broadcast {
		return nil, fmt.Errorf("exec: aggregation over broadcast input would multiply results")
	}
	keyIdx, ok := in.schema.Indexes(keys)
	if !ok {
		return nil, fmt.Errorf("exec: aggregation keys %v not in schema %v", keys, in.schema)
	}
	argIdx := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Func == relop.AggCount && a.Arg == "" {
			argIdx[i] = -1
			continue
		}
		j := in.schema.Index(a.Arg)
		if j < 0 {
			return nil, fmt.Errorf("exec: aggregate argument %q not in schema %v", a.Arg, in.schema)
		}
		argIdx[i] = j
	}
	intKeys := allIntKeys(in.vparts, keyIdx)
	outWidth := int64(len(keys) + len(aggs))
	out := newVData(schema, r.c.Machines)
	partKeys := make([][]string, len(in.vparts))
	if err := r.forEach(sp, "part", len(in.vparts), func(m int, shard *Metrics) error {
		c := in.vparts[m].compact()
		var g *aggGroups
		var err error
		bound := int64(c.n) * outWidth * 8
		if !stream && spillBase != "" && r.budget > 0 && bound > r.budget {
			g, err = r.graceAgg(c, in.schema, keyIdx, argIdx, aggs, intKeys, spillBase, m, shard)
		} else {
			g, err = aggPart(c, keyIdx, argIdx, aggs, intKeys, stream, r.c.Validate, keys, shard)
		}
		if err != nil {
			return err
		}
		out.vparts[m] = assembleAgg(c, keyIdx, aggs, g)
		partKeys[m] = g.keys
		shard.BatchesProcessed++
		return nil
	}); err != nil {
		return nil, err
	}
	if r.c.Validate && phase != relop.AggLocal {
		globalSeen := map[string]int{}
		for m, order := range partKeys {
			for _, k := range order {
				if prev, dup := globalSeen[k]; dup && prev != m {
					return nil, fmt.Errorf("exec: %v aggregation on %v saw key %s on machines %d and %d (input not colocated)",
						phase, keys, decodeKey(k, intKeys), prev, m)
				}
				globalSeen[k] = m
			}
		}
	}
	return out, nil
}

// decodeKey renders an encoded key for error messages: fixed-width
// int encodings decode back to "v|v|..." form; rendered encodings
// already are that form.
func decodeKey(k string, intKeys bool) string {
	if !intKeys {
		return k
	}
	s := ""
	for len(k) >= 8 {
		var u uint64
		for i := 0; i < 8; i++ {
			u = u<<8 | uint64(k[i])
		}
		s += relop.IntVal(int64(u)).String() + "|"
		k = k[8:]
	}
	return s
}

// encIntKey is keyEncoder's single-int encoding as a standalone
// string: 8 big-endian bytes.
func encIntKey(k int64) string {
	u := uint64(k)
	b := [8]byte{byte(u >> 56), byte(u >> 48), byte(u >> 40), byte(u >> 32),
		byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u)}
	return string(b[:])
}

// aggPart groups one dense batch in memory. Streaming mode validates
// run clustering exactly like the row engine (a closed key must not
// reappear).
func aggPart(c *colData, keyIdx, argIdx []int, aggs []relop.Aggregate, intKeys, stream, validate bool, keys []string, shard *Metrics) (*aggGroups, error) {
	args := make([]func(int32) relop.Value, len(argIdx))
	// Plain-int argument columns accumulate via AddInt — identical
	// folds (same per-row float additions, same min/max) without
	// boxing each value.
	fastInts := make([][]int64, len(argIdx))
	for a, j := range argIdx {
		if j >= 0 {
			if v := c.cols[j]; v.ints != nil && !v.cons {
				fastInts[a] = v.ints
			} else {
				args[a] = valAt(c.cols[j])
			}
		}
	}
	g := &aggGroups{}
	var closed []bool
	newGroup := func(i int32, key string) int32 {
		gi := int32(len(g.firsts))
		g.firsts = append(g.firsts, i)
		g.keys = append(g.keys, key)
		sts := make([]relop.AggState, len(aggs))
		for a := range aggs {
			sts[a] = *relop.NewAggState(aggs[a].Func)
		}
		g.states = append(g.states, sts)
		closed = append(closed, false)
		return gi
	}
	// Group lookup. Single-int keys index a map[int64] directly —
	// int64 equality is exactly 8-byte-encoding equality, and groups
	// still get their encoded string key (colocation validation and
	// grace remapping read g.keys) — it is just built once per group
	// instead of once per row.
	var lookup func(i int32) int32
	if intKeys && len(keyIdx) == 1 {
		get := intAt(c.cols[keyIdx[0]])
		index := make(map[int64]int32, 64)
		lookup = func(i int32) int32 {
			k := get(i)
			gi, seen := index[k]
			if !seen {
				gi = newGroup(i, encIntKey(k))
				index[k] = gi
			}
			return gi
		}
	} else {
		enc := keyEncoder(c, keyIdx, intKeys)
		index := map[string]int32{}
		var buf []byte
		lookup = func(i int32) int32 {
			buf = enc(i, buf[:0])
			gi, seen := index[string(buf)]
			if !seen {
				key := string(buf)
				gi = newGroup(i, key)
				index[key] = gi
			}
			return gi
		}
	}
	lastG := int32(-1)
	for i := int32(0); int(i) < c.n; i++ {
		gi := lookup(i)
		if stream && validate && gi != lastG {
			// Clustering check: once a run for a key ends, the key
			// must not reappear in this partition.
			if closed[gi] {
				return nil, fmt.Errorf("exec: stream aggregation input not clustered on %v (key %s reappeared)",
					keys, renderKeyAt(c, keyIdx, i))
			}
			if lastG >= 0 {
				closed[lastG] = true
			}
			lastG = gi
		}
		sts := g.states[gi]
		for a := range aggs {
			switch {
			case fastInts[a] != nil:
				sts[a].AddInt(fastInts[a][i])
			case argIdx[a] < 0:
				sts[a].AddInt(1)
			default:
				sts[a].Add(args[a](i))
			}
		}
	}
	if !stream {
		// Only hash aggregation's table counts as budget-governed
		// scratch; stream aggregation's state is bounded by its
		// (clustered) output, which resident accounting excludes like
		// any other pipeline-owned batch.
		recordPeak(shard, int64(len(g.firsts))*int64(len(keyIdx)+len(aggs))*8)
	}
	return g, nil
}

// assembleAgg builds the output batch: key columns gathered from
// each group's first row, aggregate columns from the states, groups
// in first-appearance order.
func assembleAgg(c *colData, keyIdx []int, aggs []relop.Aggregate, g *aggGroups) *colData {
	cols := make([]*Vector, 0, len(keyIdx)+len(aggs))
	for _, j := range keyIdx {
		cols = append(cols, c.cols[j].gather(g.firsts))
	}
	for a := range aggs {
		var b vecBuilder
		for gi := range g.states {
			b.add(g.states[gi][a].Result())
		}
		cols = append(cols, b.vec())
	}
	return &colData{cols: cols, n: len(g.firsts)}
}

// vjoin performs a per-machine hash join of co-located partitions,
// building on the right input like the row engine, with a grace
// hash-partitioned spill when the build side exceeds the memory
// budget.
func (r *runner) vjoin(lKeys, rKeys []string, l, rIn *pdata, schema relop.Schema, spillBase string, sp obs.Span) (*pdata, error) {
	lIdx, ok := l.schema.Indexes(lKeys)
	if !ok {
		return nil, fmt.Errorf("exec: left join keys %v not in %v", lKeys, l.schema)
	}
	rIdx, ok := rIn.schema.Indexes(rKeys)
	if !ok {
		return nil, fmt.Errorf("exec: right join keys %v not in %v", rKeys, rIn.schema)
	}
	// One key encoding across both sides of every partition: probe
	// keys must meet build keys in the same representation.
	intKeys := allIntKeys(l.vparts, lIdx) && allIntKeys(rIn.vparts, rIdx)
	out := newVData(schema, r.c.Machines)
	if err := r.forEach(sp, "part", r.c.Machines, func(m int, shard *Metrics) error {
		lc := l.vparts[m].compact()
		rc := rIn.vparts[m].compact()
		var lpos, rpos []int32
		var err error
		buildBytes := int64(rc.n) * int64(len(rc.cols)) * 8
		if spillBase != "" && r.budget > 0 && buildBytes > r.budget {
			lpos, rpos, err = r.graceJoin(lc, rc, l.schema, rIn.schema, lIdx, rIdx, intKeys, spillBase, m, shard)
		} else {
			lpos, rpos = joinPart(lc, rc, lIdx, rIdx, intKeys, nil, nil, shard)
		}
		if err != nil {
			return err
		}
		cols := make([]*Vector, 0, len(lc.cols)+len(rc.cols))
		for _, v := range lc.cols {
			cols = append(cols, v.gather(lpos))
		}
		for _, v := range rc.cols {
			cols = append(cols, v.gather(rpos))
		}
		out.vparts[m] = &colData{cols: cols, n: len(lpos)}
		shard.BatchesProcessed++
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// joinPart hash-joins two dense batches, emitting matching position
// pairs in the row engine's order: probe rows in order, matches in
// build order. When lmap/rmap are non-nil they translate bucket-
// local positions back to the original batch (grace join buckets).
func joinPart(lc, rc *colData, lIdx, rIdx []int, intKeys bool, lmap, rmap []int32, shard *Metrics) (lpos, rpos []int32) {
	recordPeak(shard, int64(rc.n)*int64(len(rc.cols))*8)
	if intKeys && len(lIdx) == 1 && len(rIdx) == 1 {
		return joinPartInt(lc, rc, lIdx[0], rIdx[0], lmap, rmap)
	}
	encR := keyEncoder(rc, rIdx, intKeys)
	index := map[string]int32{}
	var lists [][]int32
	var buf []byte
	for i := int32(0); int(i) < rc.n; i++ {
		buf = encR(i, buf[:0])
		gi, ok := index[string(buf)]
		if !ok {
			gi = int32(len(lists))
			index[string(buf)] = gi
			lists = append(lists, nil)
		}
		ri := i
		if rmap != nil {
			ri = rmap[i]
		}
		lists[gi] = append(lists[gi], ri)
	}
	encL := keyEncoder(lc, lIdx, intKeys)
	for i := int32(0); int(i) < lc.n; i++ {
		buf = encL(i, buf[:0])
		gi, ok := index[string(buf)]
		if !ok {
			continue
		}
		li := i
		if lmap != nil {
			li = lmap[i]
		}
		for _, ri := range lists[gi] {
			lpos = append(lpos, li)
			rpos = append(rpos, ri)
		}
	}
	return lpos, rpos
}

// joinPartInt is joinPart's single-int-key fast path: the hash index
// keys raw int64s instead of encoded strings. int64 equality is
// exactly 8-byte-encoding equality, so the match set, group ids, and
// therefore output order are byte-identical to the general path.
// Build rows sharing a key chain through flat head/tail/next arrays
// (insertion order, i.e. build order) instead of per-key slices.
func joinPartInt(lc, rc *colData, lj, rj int, lmap, rmap []int32) (lpos, rpos []int32) {
	getR := intAt(rc.cols[rj])
	index := make(map[int64]int32, rc.n)
	heads := make([]int32, 0, rc.n)
	tails := make([]int32, 0, rc.n)
	next := make([]int32, rc.n)
	for i := int32(0); int(i) < rc.n; i++ {
		k := getR(i)
		gi, ok := index[k]
		if !ok {
			index[k] = int32(len(heads))
			heads = append(heads, i)
			tails = append(tails, i)
		} else {
			next[tails[gi]] = i
			tails[gi] = i
		}
		next[i] = -1
	}
	getL := intAt(lc.cols[lj])
	lpos = make([]int32, 0, lc.n)
	rpos = make([]int32, 0, lc.n)
	for i := int32(0); int(i) < lc.n; i++ {
		gi, ok := index[getL(i)]
		if !ok {
			continue
		}
		li := i
		if lmap != nil {
			li = lmap[i]
		}
		for j := heads[gi]; j >= 0; j = next[j] {
			ri := j
			if rmap != nil {
				ri = rmap[j]
			}
			lpos = append(lpos, li)
			rpos = append(rpos, ri)
		}
	}
	return lpos, rpos
}

// appendFloatG renders a float exactly like Value.Hash's
// strconv.FormatFloat(f, 'g', -1, 64), reusing buf.
func appendFloatG(buf []byte, f float64) []byte {
	return strconv.AppendFloat(buf, f, 'g', -1, 64)
}
