package exec

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/plan"
	"repro/internal/props"
	"repro/internal/relop"
)

// testCluster builds a cluster or fails the test; the constructor
// returns an error for non-positive machine counts.
func testCluster(t testing.TB, machines int, fs *FileStore) *Cluster {
	t.Helper()
	c, err := NewCluster(machines, fs)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterRejectsNonPositiveMachines(t *testing.T) {
	for _, m := range []int{0, -1, -100} {
		if _, err := NewCluster(m, nil); err == nil {
			t.Errorf("NewCluster(%d) should fail instead of substituting a default", m)
		}
	}
	c, err := NewCluster(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Machines != 1 {
		t.Errorf("Machines = %d, want 1", c.Machines)
	}
	if c.Workers <= 0 {
		t.Errorf("Workers default = %d, want positive", c.Workers)
	}
}

// broadcastSpoolPlan builds Sequence(Output o1, Output o2) where both
// outputs read one shared Spool over a broadcast exchange of the
// 8-row test table.
func broadcastSpoolPlan(schema relop.Schema) *plan.Node {
	node := func(op relop.Operator, children ...*plan.Node) *plan.Node {
		return &plan.Node{Op: op, Children: children, Schema: schema, CtxKey: "x"}
	}
	spool := node(&relop.PhysSpool{},
		node(&relop.Repartition{To: props.BroadcastPartitioning()},
			node(&relop.PhysExtract{Path: "t.log", Columns: schema})))
	spool.Group = 1
	return node(&relop.PhysSequence{},
		node(&relop.PhysOutput{Path: "o1"}, spool),
		node(&relop.PhysOutput{Path: "o2"}, spool))
}

// TestBroadcastSpoolMetering pins the metered bytes of a broadcast
// spool to the relation's logical size: replicas must not multiply
// the spool write or the per-consumer reads, matching the cost
// model's accounting.
func TestBroadcastSpoolMetering(t *testing.T) {
	fs := NewFileStore()
	fs.Put("t.log", smallTable())
	c := testCluster(t, 3, fs)
	c.Workers = 4

	outs, err := c.Run(broadcastSpoolPlan(smallTable().Schema))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"o1", "o2"} {
		if got := outs[path]; got == nil || !got.Equal(smallTable()) {
			t.Errorf("output %q should be the full table", path)
		}
	}
	// 8 rows x 4 cols x 8 bytes = 256 logical bytes.
	const logical = 256
	m := c.Metrics()
	if m.SpoolMaterializations != 1 || m.SpoolReads != 2 {
		t.Errorf("spool counters = %+v", m)
	}
	// Writes: one spool materialization + two outputs.
	if want := int64(3 * logical); m.DiskBytesWritten != want {
		t.Errorf("DiskBytesWritten = %d, want %d (broadcast replicas must not be re-counted)", m.DiskBytesWritten, want)
	}
	// Reads: the extract + two spool reads.
	if want := int64(3 * logical); m.DiskBytesRead != want {
		t.Errorf("DiskBytesRead = %d, want %d", m.DiskBytesRead, want)
	}
	// The broadcast exchange itself ships one copy per machine.
	if want := int64(3 * logical); m.NetBytes != want {
		t.Errorf("NetBytes = %d, want %d", m.NetBytes, want)
	}
	if m.RowsProcessed != 8 {
		t.Errorf("RowsProcessed = %d, want 8", m.RowsProcessed)
	}
}

// TestBroadcastSpoolMeteringDeterministic asserts the meter reads the
// same at every worker count — per-worker shards must merge to
// identical totals no matter how partitions are scheduled.
func TestBroadcastSpoolMeteringDeterministic(t *testing.T) {
	var base Metrics
	for i, workers := range []int{1, 2, 8} {
		fs := NewFileStore()
		fs.Put("t.log", smallTable())
		c := testCluster(t, 3, fs)
		c.Workers = workers
		if _, err := c.Run(broadcastSpoolPlan(smallTable().Schema)); err != nil {
			t.Fatal(err)
		}
		m := c.Metrics()
		if i == 0 {
			base = m
		} else if m != base {
			t.Errorf("workers=%d metrics %+v differ from workers=1 %+v", workers, m, base)
		}
	}
}

// TestPartitionErrorAbortsRun exercises first-error propagation: a
// failing partition task (a filter predicate referencing a missing
// column) must abort the whole run with that error.
func TestPartitionErrorAbortsRun(t *testing.T) {
	fs := NewFileStore()
	fs.Put("t.log", smallTable())
	c := testCluster(t, 3, fs)
	c.Workers = 4
	schema := smallTable().Schema
	p := &plan.Node{
		Op: &relop.PhysOutput{Path: "o"}, Schema: schema, CtxKey: "x",
		Children: []*plan.Node{{
			Op: &relop.PhysFilter{Pred: relop.Col("NOPE")}, Schema: schema, CtxKey: "x",
			Children: []*plan.Node{{
				Op: &relop.PhysExtract{Path: "t.log", Columns: schema}, Schema: schema, CtxKey: "x",
			}},
		}},
	}
	if _, err := c.Run(p); err == nil || !strings.Contains(err.Error(), "NOPE") {
		t.Errorf("run should fail with the partition error, got %v", err)
	}
}

// TestConcurrentRunsOnOneCluster runs the same plan twice
// concurrently on a single cluster: both runs must succeed, produce
// the full result, and the shared meter must total exactly two runs'
// worth of work. Under -race this is the regression test for the
// old unsynchronized Cluster.metrics and FileStore map.
func TestConcurrentRunsOnOneCluster(t *testing.T) {
	fs := NewFileStore()
	fs.Put("t.log", smallTable())
	c := testCluster(t, 3, fs)
	c.Workers = 4
	p := broadcastSpoolPlan(smallTable().Schema)

	// One run, for the metric baseline.
	if _, err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	single := c.Metrics()
	c.Reset()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs, err := c.Run(p)
			if err != nil {
				errs[i] = err
				return
			}
			if got := outs["o1"]; got == nil || !got.Equal(smallTable()) {
				t.Errorf("run %d: wrong o1", i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent run %d: %v", i, err)
		}
	}
	double := single
	double.add(single)
	if got := c.Metrics(); got != double {
		t.Errorf("two concurrent runs metered %+v, want exactly double one run %+v", got, double)
	}
}
