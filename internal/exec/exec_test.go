package exec

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/logical"
	"repro/internal/plan"
	"repro/internal/props"
	"repro/internal/relop"
	"repro/internal/stats"
)

func smallTable() *Table {
	mk := func(a, b, c, d int64) relop.Row {
		return relop.Row{relop.IntVal(a), relop.IntVal(b), relop.IntVal(c), relop.IntVal(d)}
	}
	return &Table{
		Schema: relop.Schema{
			{Name: "A", Type: relop.TInt}, {Name: "B", Type: relop.TInt},
			{Name: "C", Type: relop.TInt}, {Name: "D", Type: relop.TInt},
		},
		Rows: []relop.Row{
			mk(1, 1, 1, 10), mk(1, 1, 1, 5), mk(1, 1, 3, 2),
			mk(1, 2, 2, 7), mk(2, 2, 2, 1), mk(2, 2, 2, 4),
			mk(2, 1, 3, 9), mk(1, 2, 2, 3),
		},
	}
}

func TestTableEqualAndDiff(t *testing.T) {
	a, b := smallTable(), smallTable()
	// Same multiset, different order.
	b.Rows[0], b.Rows[3] = b.Rows[3], b.Rows[0]
	if !a.Equal(b) {
		t.Error("order must not matter")
	}
	b.Rows[0][3] = relop.IntVal(999)
	if a.Equal(b) {
		t.Error("changed value should differ")
	}
	if a.Diff(b) == "" {
		t.Error("Diff should describe the mismatch")
	}
	if a.Diff(a) != "" {
		t.Error("Diff of equal tables should be empty")
	}
}

// buildAndRunPipeline assembles a hand-built physical plan:
// Extract → Sort(B,A,C) → StreamAgg local → Repartition{B} merge →
// StreamAgg global → Output, and runs it.
func TestHandBuiltPipelineMatchesReference(t *testing.T) {
	fs := NewFileStore()
	fs.Put("t.log", smallTable())
	c := testCluster(t, 3, fs)

	schema := smallTable().Schema
	aggSchema := relop.Schema{
		{Name: "A", Type: relop.TInt}, {Name: "B", Type: relop.TInt},
		{Name: "C", Type: relop.TInt}, {Name: "S", Type: relop.TInt},
	}
	sum := []relop.Aggregate{{Func: relop.AggSum, Arg: "D", As: "S"}}
	merge := []relop.Aggregate{{Func: relop.AggSum, Arg: "S", As: "S"}}
	node := func(op relop.Operator, schema relop.Schema, children ...*plan.Node) *plan.Node {
		return &plan.Node{Op: op, Children: children, Schema: schema, CtxKey: "x"}
	}
	p := node(&relop.PhysOutput{Path: "o.out"}, aggSchema,
		node(&relop.StreamAgg{Keys: []string{"A", "B", "C"}, Aggs: merge, Phase: relop.AggGlobal}, aggSchema,
			node(&relop.Repartition{To: props.HashPartitioning(props.NewColSet("B")), MergeOrder: props.NewOrdering("B", "A", "C")}, aggSchema,
				node(&relop.StreamAgg{Keys: []string{"A", "B", "C"}, Aggs: sum, Phase: relop.AggLocal}, aggSchema,
					node(&relop.Sort{Order: props.NewOrdering("B", "A", "C")}, schema,
						node(&relop.PhysExtract{Path: "t.log", Columns: schema}, schema))))))

	outs, err := c.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	got := outs["o.out"]
	want := &Table{Schema: aggSchema, Rows: []relop.Row{
		{relop.IntVal(1), relop.IntVal(1), relop.IntVal(1), relop.IntVal(15)},
		{relop.IntVal(1), relop.IntVal(1), relop.IntVal(3), relop.IntVal(2)},
		{relop.IntVal(1), relop.IntVal(2), relop.IntVal(2), relop.IntVal(10)},
		{relop.IntVal(2), relop.IntVal(2), relop.IntVal(2), relop.IntVal(5)},
		{relop.IntVal(2), relop.IntVal(1), relop.IntVal(3), relop.IntVal(9)},
	}}
	if !got.Equal(want) {
		t.Errorf("pipeline result wrong: %s", got.Diff(want))
	}
	m := c.Metrics()
	if m.Exchanges != 1 || m.NetBytes == 0 || m.DiskBytesRead == 0 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestStreamAggValidatesClustering(t *testing.T) {
	fs := NewFileStore()
	fs.Put("t.log", smallTable())
	c := testCluster(t, 1, fs)
	schema := smallTable().Schema
	p := &plan.Node{
		Op:     &relop.StreamAgg{Keys: []string{"A", "B", "C"}, Aggs: []relop.Aggregate{{Func: relop.AggSum, Arg: "D", As: "S"}}},
		Schema: schema,
		Children: []*plan.Node{{
			Op: &relop.PhysExtract{Path: "t.log", Columns: schema}, Schema: schema,
		}},
	}
	if _, err := c.Run(p); err == nil || !strings.Contains(err.Error(), "not clustered") {
		t.Errorf("unsorted stream agg should fail validation, got %v", err)
	}
}

func TestGlobalAggValidatesColocation(t *testing.T) {
	fs := NewFileStore()
	fs.Put("t.log", smallTable())
	c := testCluster(t, 3, fs)
	schema := smallTable().Schema
	// Global hash agg over round-robin partitions: keys span
	// machines — must be caught.
	p := &plan.Node{
		Op:     &relop.HashAgg{Keys: []string{"A"}, Aggs: []relop.Aggregate{{Func: relop.AggSum, Arg: "D", As: "S"}}, Phase: relop.AggGlobal},
		Schema: relop.Schema{{Name: "A", Type: relop.TInt}, {Name: "S", Type: relop.TInt}},
		Children: []*plan.Node{{
			Op: &relop.PhysExtract{Path: "t.log", Columns: schema}, Schema: schema,
		}},
	}
	if _, err := c.Run(p); err == nil || !strings.Contains(err.Error(), "not colocated") {
		t.Errorf("non-colocated global agg should fail validation, got %v", err)
	}
}

func TestRepartitionVariants(t *testing.T) {
	fs := NewFileStore()
	fs.Put("t.log", smallTable())
	schema := smallTable().Schema
	extract := &plan.Node{Op: &relop.PhysExtract{Path: "t.log", Columns: schema}, Schema: schema}

	// Serial: everything on machine 0.
	c := testCluster(t, 4, fs)
	p := &plan.Node{Op: &relop.Repartition{To: props.SerialPartitioning()}, Schema: schema, Children: []*plan.Node{extract}}
	out := mustRunRaw(t, c, p)
	if len(out.parts[0]) != 8 || len(out.parts[1]) != 0 {
		t.Errorf("serial parts = %d, %d", len(out.parts[0]), len(out.parts[1]))
	}

	// Broadcast: everything everywhere.
	c.Reset()
	p = &plan.Node{Op: &relop.Repartition{To: props.BroadcastPartitioning()}, Schema: schema, Children: []*plan.Node{extract}}
	out = mustRunRaw(t, c, p)
	for m := range out.parts {
		if len(out.parts[m]) != 8 {
			t.Errorf("broadcast machine %d has %d rows", m, len(out.parts[m]))
		}
	}
	if c.Metrics().NetBytes != smallTable().Bytes()*4 {
		t.Errorf("broadcast net bytes = %d", c.Metrics().NetBytes)
	}

	// Hash: rows with the same key land together.
	c.Reset()
	p = &plan.Node{Op: &relop.Repartition{To: props.HashPartitioning(props.NewColSet("B"))}, Schema: schema, Children: []*plan.Node{extract}}
	out = mustRunRaw(t, c, p)
	where := map[string]int{}
	for m, part := range out.parts {
		for _, row := range part {
			k := row[1].String()
			if prev, ok := where[k]; ok && prev != m {
				t.Fatalf("key B=%s on machines %d and %d", k, prev, m)
			}
			where[k] = m
		}
	}
}

// mustRunRaw executes a row-producing plan directly (no output node).
func mustRunRaw(t *testing.T, c *Cluster, p *plan.Node) *pdata {
	t.Helper()
	r, finish := c.newRunner(context.Background())
	defer finish()
	out, err := r.exec(p, r.span)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSpoolMaterializedOnce(t *testing.T) {
	fs := NewFileStore()
	fs.Put("t.log", smallTable())
	c := testCluster(t, 2, fs)
	schema := smallTable().Schema
	extract := &plan.Node{Op: &relop.PhysExtract{Path: "t.log", Columns: schema}, Schema: schema}
	spool := &plan.Node{Op: &relop.PhysSpool{}, Schema: schema, Group: 5, CtxKey: "p", Children: []*plan.Node{extract}}
	out1 := &plan.Node{Op: &relop.PhysOutput{Path: "o1"}, Schema: schema, Children: []*plan.Node{spool}}
	out2 := &plan.Node{Op: &relop.PhysOutput{Path: "o2"}, Schema: schema, Children: []*plan.Node{spool}}
	seq := &plan.Node{Op: &relop.PhysSequence{}, Children: []*plan.Node{out1, out2}}
	outs, err := c.Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	if !outs["o1"].Equal(outs["o2"]) {
		t.Error("both outputs should be identical")
	}
	m := c.Metrics()
	if m.SpoolMaterializations != 1 || m.SpoolReads != 2 {
		t.Errorf("spool metrics = %+v", m)
	}
}

func TestReferenceInterpreter(t *testing.T) {
	fs := NewFileStore()
	fs.Put("test.log", smallTable())
	src := `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) as S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) as S2 FROM R GROUP BY B,C;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
`
	m, err := logical.BuildSource(src, stats.NewCatalog())
	if err != nil {
		t.Fatal(err)
	}
	outs, err := Reference(m, fs)
	if err != nil {
		t.Fatal(err)
	}
	r1 := outs["result1.out"]
	if r1 == nil {
		t.Fatal("missing result1.out")
	}
	// Check one aggregate by hand: A=1,B=1 → S over groups (1,1,1)=15
	// and (1,1,3)=2 → S1=17.
	found := false
	for _, row := range r1.Rows {
		if row[0].I == 1 && row[1].I == 1 {
			found = true
			if row[2].I != 17 {
				t.Errorf("S1(A=1,B=1) = %v, want 17", row[2])
			}
		}
	}
	if !found {
		t.Error("group A=1,B=1 missing")
	}
	r2 := outs["result2.out"]
	if r2 == nil || len(r2.Rows) == 0 {
		t.Fatal("missing result2.out")
	}
}

func TestReferenceJoinAndFilter(t *testing.T) {
	fs := NewFileStore()
	fs.Put("test.log", smallTable())
	src := `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,C,Sum(S) as S1 FROM R GROUP BY B,C;
R2 = SELECT B,A,Sum(S) as S2 FROM R GROUP BY B,A;
RR = SELECT R1.B,A,C,S1,S2 FROM R1,R2 WHERE R1.B=R2.B AND S1 > 0;
OUTPUT RR TO "rr.out";
`
	m, err := logical.BuildSource(src, stats.NewCatalog())
	if err != nil {
		t.Fatal(err)
	}
	outs, err := Reference(m, fs)
	if err != nil {
		t.Fatal(err)
	}
	rr := outs["rr.out"]
	if rr == nil || len(rr.Rows) == 0 {
		t.Fatalf("join output empty")
	}
	// Every output row must satisfy the join predicate B = B2... the
	// B column appears once (qualified projection); check S1 > 0.
	for _, row := range rr.Rows {
		if row[3].I <= 0 {
			t.Errorf("filter leaked row %v", row)
		}
	}
}

func TestSimulatedSeconds(t *testing.T) {
	m := Metrics{DiskBytesRead: 1 << 30, NetBytes: 1 << 30, RowsProcessed: 1 << 20}
	s := m.SimulatedSeconds(cost.DefaultCluster())
	if s <= 0 {
		t.Errorf("simulated seconds = %v", s)
	}
	if (Metrics{}).SimulatedSeconds(cost.DefaultCluster()) != 0 {
		t.Error("empty metrics should cost 0")
	}
}
