package exec_test

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/relop"
)

// featureScripts exercise HAVING, DISTINCT, and ORDER BY end to end:
// optimized both ways, executed, checked against the reference.
var featureScripts = map[string]string{
	"having": `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,Sum(D) as S, Count() as N FROM R0 GROUP BY A,B HAVING N > 1;
R1 = SELECT A,Sum(S) as T FROM R GROUP BY A;
R2 = SELECT B,Max(S) as M FROM R GROUP BY B;
OUTPUT R1 TO "o1";
OUTPUT R2 TO "o2";
`,
	"distinct": `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT DISTINCT A, B FROM R0;
R1 = SELECT A, Count() as N FROM R GROUP BY A;
R2 = SELECT B, Count() as N FROM R GROUP BY B;
OUTPUT R1 TO "o1";
OUTPUT R2 TO "o2";
`,
	"ordered-output": `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,Sum(D) as S FROM R0 GROUP BY A,B;
OUTPUT R TO "sorted.out" ORDER BY B, A;
OUTPUT R TO "plain.out";
`,
}

func TestFeatureScriptEquivalence(t *testing.T) {
	for name, src := range featureScripts {
		t.Run(name, func(t *testing.T) {
			w := datagen.SmallWorkload(name, src, 2_000, 1_000, 13)
			mRef, err := logical.BuildSource(src, w.Cat)
			if err != nil {
				t.Fatal(err)
			}
			want, err := exec.Reference(mRef, w.FS)
			if err != nil {
				t.Fatal(err)
			}
			for _, cse := range []bool{false, true} {
				opts := opt.DefaultOptions()
				opts.EnableCSE = cse
				m, err := logical.BuildSource(src, w.Cat)
				if err != nil {
					t.Fatal(err)
				}
				res, err := opt.Optimize(m, opts)
				if err != nil {
					t.Fatal(err)
				}
				if err := opt.ValidatePlan(res.Plan); err != nil {
					t.Fatalf("cse=%v: %v", cse, err)
				}
				cl := testClusterFS(t, 5, w.FS)
				got, err := cl.Run(res.Plan)
				if err != nil {
					t.Fatalf("cse=%v: %v", cse, err)
				}
				for path, wt := range want {
					if gt := got[path]; gt == nil || !gt.Equal(wt) {
						t.Errorf("cse=%v: %q differs", cse, path)
					}
				}
			}
		})
	}
}

// TestOrderedOutputIsSorted checks the ORDER BY contract directly:
// the executor's own validation passed (Run would have failed
// otherwise), and the rows really are sorted.
func TestOrderedOutputIsSorted(t *testing.T) {
	src := featureScripts["ordered-output"]
	w := datagen.SmallWorkload("ordered", src, 2_000, 1_000, 13)
	m, err := logical.BuildSource(src, w.Cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Optimize(m, opt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cl := testClusterFS(t, 5, w.FS)
	outs, err := cl.Run(res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	tab := outs["sorted.out"]
	bi, ai := tab.Schema.Index("B"), tab.Schema.Index("A")
	for i := 1; i < len(tab.Rows); i++ {
		prev, cur := tab.Rows[i-1], tab.Rows[i]
		cb := prev[bi].Compare(cur[bi])
		if cb > 0 || (cb == 0 && prev[ai].Compare(cur[ai]) > 0) {
			t.Fatalf("rows %d,%d out of order: %v, %v", i-1, i, prev, cur)
		}
	}
	// The plain output of the same shared intermediate is still
	// produced (and the shared GB computed once).
	if outs["plain.out"] == nil || !outs["plain.out"].Equal(&exec.Table{Schema: tab.Schema, Rows: tab.Rows}) {
		t.Error("plain output missing or different content")
	}
	if cl.Metrics().SpoolMaterializations != 1 {
		t.Errorf("shared intermediate should spool once, metrics=%+v", cl.Metrics())
	}
	// The distinct consumer requirements (serial+sorted vs parallel)
	// show up as compensation above the spool, not as re-execution.
	if got := len(outs); got != 2 {
		t.Errorf("outputs = %d", got)
	}
}

// TestUnionAllEndToEnd exercises UNION ALL through both optimizers,
// including a union of the SAME shared intermediate (duplicated rows
// are the correct UNION ALL semantics, and the spool must still
// materialize once).
func TestUnionAllEndToEnd(t *testing.T) {
	src := `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
LOW = SELECT A, B, D FROM R0 WHERE A < 3;
HIGH = SELECT A, B, D FROM R0 WHERE A >= 3;
ALLROWS = UNION ALL LOW, HIGH;
AGG = SELECT A, Sum(D) as S, Count() as N FROM ALLROWS GROUP BY A;
TWICE = UNION ALL AGG, AGG;
T2 = SELECT A, Sum(S) as SS FROM TWICE GROUP BY A;
OUTPUT AGG TO "o1";
OUTPUT T2 TO "o2";
`
	w := datagen.SmallWorkload("union", src, 2_000, 1_000, 17)
	mRef, err := logical.BuildSource(src, w.Cat)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exec.Reference(mRef, w.FS)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: T2's sums are exactly double AGG's (same rows unioned
	// twice).
	aggSums := map[int64]int64{}
	for _, row := range want["o1"].Rows {
		aggSums[row[0].I] = row[1].I
	}
	for _, row := range want["o2"].Rows {
		if row[1].I != 2*aggSums[row[0].I] {
			t.Fatalf("UNION ALL of AGG with itself should double sums: %v", row)
		}
	}
	for _, cse := range []bool{false, true} {
		opts := opt.DefaultOptions()
		opts.EnableCSE = cse
		m, err := logical.BuildSource(src, w.Cat)
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.Optimize(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := opt.ValidatePlan(res.Plan); err != nil {
			t.Fatalf("cse=%v: %v", cse, err)
		}
		cl := testClusterFS(t, 4, w.FS)
		got, err := cl.Run(res.Plan)
		if err != nil {
			t.Fatalf("cse=%v: %v", cse, err)
		}
		for path, wt := range want {
			if gt := got[path]; gt == nil || !gt.Equal(wt) {
				t.Errorf("cse=%v: %q differs", cse, path)
			}
		}
		if cse {
			// AGG is consumed by Output, T2's union (twice): shared.
			if cl.Metrics().SpoolMaterializations == 0 {
				t.Error("expected shared spools in CSE mode")
			}
		}
	}
}

// TestDescendingOrderedOutput runs an ORDER BY ... DESC output end to
// end: the executor validates global descending order.
func TestDescendingOrderedOutput(t *testing.T) {
	src := `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A, Sum(D) as S, Avg(D) as V FROM R0 GROUP BY A;
OUTPUT R TO "top.out" ORDER BY S DESC, A;
`
	w := datagen.SmallWorkload("desc", src, 2_000, 1_000, 19)
	m, err := logical.BuildSource(src, w.Cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Optimize(m, opt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.ValidatePlan(res.Plan); err != nil {
		t.Fatal(err)
	}
	cl := testClusterFS(t, 4, w.FS)
	outs, err := cl.Run(res.Plan) // exec validates the DESC order itself
	if err != nil {
		t.Fatal(err)
	}
	tab := outs["top.out"]
	si := tab.Schema.Index("S")
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i-1][si].I < tab.Rows[i][si].I {
			t.Fatalf("descending order violated at row %d", i)
		}
	}
	// Avg is computed single-phase (not decomposable): spot-check one
	// group against the reference.
	want, err := exec.Reference(m, w.FS)
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Equal(want["top.out"]) {
		t.Error("results differ from reference (Avg single-phase)")
	}
}

// TestProjectMergeEquivalenceAndSavings: with the optional
// project-merge rule on, a deep projection chain collapses into a
// single Compute stage, the cost drops, and results are unchanged.
func TestProjectMergeEquivalenceAndSavings(t *testing.T) {
	src := `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
P1 = SELECT A, B, D+1 as D1 FROM R0;
P2 = SELECT A, B, D1*2 as D2 FROM P1;
P3 = SELECT A, D2 as V, B FROM P2;
P4 = SELECT A, V + B as W FROM P3;
G = SELECT A, Sum(W) as S FROM P4 GROUP BY A;
OUTPUT G TO "o";
`
	w := datagen.SmallWorkload("pm", src, 2_000, 1_000, 23)
	run := func(merge bool) (float64, int, map[string]*exec.Table) {
		opts := opt.DefaultOptions()
		opts.Rules.EnableProjectMerge = merge
		m, err := logical.BuildSource(src, w.Cat)
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.Optimize(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := opt.ValidatePlan(res.Plan); err != nil {
			t.Fatal(err)
		}
		cl := testClusterFS(t, 4, w.FS)
		outs, err := cl.Run(res.Plan)
		if err != nil {
			t.Fatal(err)
		}
		computes := len(plan.FindAll(res.Plan, relop.KindPhysProject))
		return res.Cost, computes, outs
	}
	costOff, computesOff, outOff := run(false)
	costOn, computesOn, outOn := run(true)
	t.Logf("project merge: cost %0.f -> %0.f, computes %d -> %d",
		costOff, costOn, computesOff, computesOn)
	if computesOn >= computesOff {
		t.Errorf("merge should reduce Compute stages: %d vs %d", computesOn, computesOff)
	}
	if costOn >= costOff {
		t.Errorf("merge should reduce cost: %v vs %v", costOn, costOff)
	}
	if !outOn["o"].Equal(outOff["o"]) {
		t.Error("merge changed the results")
	}
}
