package exec_test

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/lint"
	"repro/internal/logical"
	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/rules"
)

// TestRandomScriptEquivalence is the differential fuzz harness:
// random scripts with organic sharing patterns are optimized
// conventionally and with the CSE framework (both rule profiles), all
// plans are executed on the validating simulator, and every result
// must match the single-node reference interpreter. Phase 2 must also
// never produce a plan costlier than phase 1.
func TestRandomScriptEquivalence(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		w := datagen.RandomWorkload(seed, 8+int(seed%7))
		mRef, err := logical.BuildSource(w.Script, w.Cat)
		if err != nil {
			t.Fatalf("seed %d: script does not bind: %v\nscript:\n%s", seed, err, w.Script)
		}
		want, err := exec.Reference(mRef, w.FS)
		if err != nil {
			t.Fatalf("seed %d: reference failed: %v\nscript:\n%s", seed, err, w.Script)
		}
		// A generated script binds, so the script analyzers must find
		// no errors in it (warnings like unused assignments are the
		// generator's business).
		if r := lint.AnalyzeScriptSource(w.Script, "seed"); r.Errors() > 0 {
			t.Errorf("seed %d: script lint: %v\nscript:\n%s", seed, r.Diags, w.Script)
		}
		merged := rules.DefaultConfig()
		merged.EnableProjectMerge = true
		merged.EnableFilterPushdown = true
		for _, prof := range []struct {
			name string
			cfg  rules.Config
		}{
			{"default", rules.DefaultConfig()},
			{"scope", rules.SCOPEProfile()},
			{"projmerge", merged},
		} {
			for _, cse := range []bool{false, true} {
				opts := opt.DefaultOptions()
				opts.EnableCSE = cse
				opts.Rules = prof.cfg
				opts.Cluster.Machines = 7
				opts.Rules.Machines = 7
				opts.Lint = true
				m, err := logical.BuildSource(w.Script, w.Cat)
				if err != nil {
					t.Fatal(err)
				}
				res, err := opt.Optimize(m, opts)
				if err != nil {
					t.Fatalf("seed %d %s cse=%v: optimize: %v\nscript:\n%s",
						seed, prof.name, cse, err, w.Script)
				}
				if res.Cost > res.Phase1Cost*(1+1e-9) {
					t.Errorf("seed %d %s cse=%v: phase-2 cost %v exceeds phase-1 %v",
						seed, prof.name, cse, res.Cost, res.Phase1Cost)
				}
				// Lint-as-oracle: the plan analyzers check the global
				// sharing invariants on every generated plan — the
				// silent cost regressions execution can't catch.
				for _, d := range res.Lint {
					if d.Severity == lint.Error {
						t.Errorf("seed %d %s cse=%v: plan lint: %s\nplan:\n%s",
							seed, prof.name, cse, d, plan.Format(res.Plan))
					}
				}
				if err := opt.ValidatePlan(res.Plan); err != nil {
					t.Errorf("seed %d %s cse=%v: static validation: %v\nplan:\n%s",
						seed, prof.name, cse, err, plan.Format(res.Plan))
				}
				cl := testClusterFS(t, 7, w.FS)
				got, err := cl.Run(res.Plan)
				if err != nil {
					t.Fatalf("seed %d %s cse=%v: execute: %v\nscript:\n%s\nplan:\n%s",
						seed, prof.name, cse, err, w.Script, plan.Format(res.Plan))
				}
				if len(got) != len(want) {
					t.Fatalf("seed %d %s cse=%v: %d outputs, want %d",
						seed, prof.name, cse, len(got), len(want))
				}
				for path, wt := range want {
					gt := got[path]
					if gt == nil {
						t.Fatalf("seed %d %s cse=%v: missing %q", seed, prof.name, cse, path)
					}
					if !gt.Equal(wt) {
						t.Errorf("seed %d %s cse=%v: %q differs: %s\nscript:\n%s\nplan:\n%s",
							seed, prof.name, cse, path, gt.Diff(wt), w.Script, plan.Format(res.Plan))
					}
				}
			}
		}
	}
}
