package exec

import (
	"fmt"
	"sort"

	"repro/internal/cost"
	"repro/internal/props"
	"repro/internal/relop"
)

// Metrics meters the simulated work of one plan execution.
type Metrics struct {
	// DiskBytesRead / DiskBytesWritten count file and spool I/O.
	DiskBytesRead    int64
	DiskBytesWritten int64
	// NetBytes counts bytes moved by exchanges.
	NetBytes int64
	// RowsProcessed counts operator input rows across all operators.
	RowsProcessed int64
	// SpoolMaterializations counts distinct spools executed;
	// SpoolReads counts consumer reads of materialized spools.
	SpoolMaterializations int
	SpoolReads            int
	// Exchanges counts repartition operations executed.
	Exchanges int
}

// SimulatedSeconds converts the metered work into wall-clock seconds
// on the given cluster, using the same bandwidth parameters as the
// cost model. It is a coarse lower bound (perfect overlap across
// stages) used to check that the estimator ranks plans like the
// metered execution does.
func (m Metrics) SimulatedSeconds(c cost.Cluster) float64 {
	c = cost.NewModel(c).C
	machines := float64(c.Machines)
	disk := float64(m.DiskBytesRead+m.DiskBytesWritten) / c.DiskBytesPerSec / machines
	net := float64(m.NetBytes) / c.NetBytesPerSec / machines
	cpu := float64(m.RowsProcessed) * c.RowCPU / machines
	return disk + net + cpu
}

// Cluster is the simulated shared-nothing cluster.
type Cluster struct {
	// Machines is the number of workers (partitions).
	Machines int
	// FS is the simulated distributed file system.
	FS *FileStore
	// Validate enables runtime verification of the physical
	// properties plans rely on (colocation and clustering checks).
	Validate bool

	metrics Metrics
}

// NewCluster returns a cluster with the given worker count over fs.
func NewCluster(machines int, fs *FileStore) *Cluster {
	if machines <= 0 {
		machines = 4
	}
	if fs == nil {
		fs = NewFileStore()
	}
	return &Cluster{Machines: machines, FS: fs, Validate: true}
}

// Metrics returns the work metered since the last Reset.
func (c *Cluster) Metrics() Metrics { return c.metrics }

// Reset clears the meter.
func (c *Cluster) Reset() { c.metrics = Metrics{} }

// pdata is a partitioned intermediate result: one row slice per
// machine.
type pdata struct {
	schema relop.Schema
	parts  [][]relop.Row
	// broadcast marks replicated data: every partition holds a full
	// copy. Operators that merge partitions (Output, Repartition)
	// must read a single copy, and aggregations must never consume
	// it directly.
	broadcast bool
}

func newPData(schema relop.Schema, machines int) *pdata {
	return &pdata{schema: schema, parts: make([][]relop.Row, machines)}
}

// rows returns the total row count.
func (p *pdata) rows() int64 {
	var n int64
	for _, part := range p.parts {
		n += int64(len(part))
	}
	return n
}

// bytes returns the accounted size.
func (p *pdata) bytes() int64 {
	return p.rows() * int64(len(p.schema)) * 8
}

// gather concatenates all partitions (deterministically, by machine
// index); broadcast data yields its single logical copy.
func (p *pdata) gather() []relop.Row {
	if p.broadcast {
		return p.parts[0]
	}
	var out []relop.Row
	for _, part := range p.parts {
		out = append(out, part...)
	}
	return out
}

// hashDest computes the destination machine of a row under hash
// partitioning on the given column indexes.
func hashDest(r relop.Row, idx []int, machines int) int {
	return int(r.HashCols(idx) % uint64(machines))
}

// keyOf renders the key columns of a row for validation maps.
func keyOf(r relop.Row, idx []int) string {
	s := ""
	for _, i := range idx {
		s += r[i].String() + "|"
	}
	return s
}

// sortRows sorts rows by the ordering in place. The sort is stable so
// executions are fully deterministic.
func sortRows(rows []relop.Row, schema relop.Schema, order props.Ordering) error {
	idx := make([]int, len(order))
	for i, sc := range order {
		j := schema.Index(sc.Col)
		if j < 0 {
			return fmt.Errorf("exec: sort column %q not in schema %v", sc.Col, schema)
		}
		idx[i] = j
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for i, sc := range order {
			c := rows[a][idx[i]].Compare(rows[b][idx[i]])
			if sc.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	return nil
}

// checkSorted verifies rows are ordered by the given ordering; the
// executor uses it to validate ORDER BY outputs.
func checkSorted(rows []relop.Row, schema relop.Schema, order props.Ordering) error {
	idx := make([]int, len(order))
	for i, sc := range order {
		j := schema.Index(sc.Col)
		if j < 0 {
			return fmt.Errorf("sort column %q not in schema %v", sc.Col, schema)
		}
		idx[i] = j
	}
	for i := 1; i < len(rows); i++ {
		for k, sc := range order {
			c := rows[i-1][idx[k]].Compare(rows[i][idx[k]])
			if sc.Desc {
				c = -c
			}
			if c < 0 {
				break
			}
			if c > 0 {
				return fmt.Errorf("rows %d and %d violate order %v", i-1, i, order)
			}
		}
	}
	return nil
}
