package exec

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/props"
	"repro/internal/relop"
)

// Metrics meters the simulated work of one plan execution.
type Metrics struct {
	// DiskBytesRead / DiskBytesWritten count file and spool I/O.
	DiskBytesRead    int64
	DiskBytesWritten int64
	// NetBytes counts bytes moved by exchanges.
	NetBytes int64
	// RowsProcessed counts operator input rows across all operators.
	RowsProcessed int64
	// SpoolMaterializations counts distinct spools executed;
	// SpoolReads counts consumer reads of materialized spools.
	SpoolMaterializations int
	SpoolReads            int
	// Exchanges counts repartition operations executed.
	Exchanges int
	// CacheReads counts CacheScan operators executed; CacheBytesRead
	// is the artifact bytes they loaded. Cache traffic is metered
	// separately from DiskBytesRead so cold-vs-warm comparisons can
	// isolate what the session cache saved.
	CacheReads     int
	CacheBytesRead int64
	// CacheBytesWritten counts spool bytes persisted into the session
	// cache (admission writes piggybacked on spool materialization).
	CacheBytesWritten int64
	// BatchesProcessed counts columnar batches processed by vector
	// kernels (zero under the row engine).
	BatchesProcessed int64
	// ScalarCSEHits counts per-row evaluations served from the batch
	// expression memo instead of recomputed: each hit is one shared
	// subexpression reference over one row.
	ScalarCSEHits int64
	// Spills counts operator working sets that exceeded the memory
	// budget and went through the spill protocol; SpillBytesWritten /
	// SpillBytesRead meter the scratch traffic through the FileStore.
	// Spill traffic is metered apart from DiskBytesRead/Written so
	// budget ablations can isolate it, but SimulatedSeconds charges
	// it at disk bandwidth like any other file I/O.
	Spills            int
	SpillBytesWritten int64
	SpillBytesRead    int64
	// PeakResidentBytes is the largest per-operator working set any
	// single partition task held in memory (hash tables, sort
	// buffers, join builds). Shards merge it by maximum, so it is a
	// high-water mark, not a sum, and stays identical at any worker
	// width. The spill tests assert it never exceeds the budget.
	PeakResidentBytes int64
}

// Core returns the engine-independent view of the metrics: the
// vector-only counters (batches, scalar-CSE hits, spill traffic,
// resident peak) zeroed out. The differential engine tests compare
// Core views, since the row oracle can never spill or batch while
// everything the cost model prices must still match exactly.
func (m Metrics) Core() Metrics {
	m.BatchesProcessed = 0
	m.ScalarCSEHits = 0
	m.Spills = 0
	m.SpillBytesWritten = 0
	m.SpillBytesRead = 0
	m.PeakResidentBytes = 0
	return m
}

// SimulatedSeconds converts the metered work into wall-clock seconds
// on the given cluster, using the same bandwidth parameters as the
// cost model. It is a coarse lower bound (perfect overlap across
// stages) used to check that the estimator ranks plans like the
// metered execution does. Cache traffic is charged at disk bandwidth:
// the session cache's artifacts live in the same store as every other
// file, and the cost model prices their reads via SpoolReadCost, so a
// warm cache-served run must not simulate as free I/O.
func (m Metrics) SimulatedSeconds(c cost.Cluster) float64 {
	c = cost.NewModel(c).C
	machines := float64(c.Machines)
	diskBytes := m.DiskBytesRead + m.DiskBytesWritten + m.CacheBytesRead + m.CacheBytesWritten +
		m.SpillBytesRead + m.SpillBytesWritten
	disk := float64(diskBytes) / c.DiskBytesPerSec / machines
	net := float64(m.NetBytes) / c.NetBytesPerSec / machines
	cpu := float64(m.RowsProcessed) * c.RowCPU / machines
	return disk + net + cpu
}

// add accumulates o into m; Run uses it to merge per-worker metric
// shards into the cluster meter.
func (m *Metrics) add(o Metrics) {
	m.DiskBytesRead += o.DiskBytesRead
	m.DiskBytesWritten += o.DiskBytesWritten
	m.NetBytes += o.NetBytes
	m.RowsProcessed += o.RowsProcessed
	m.SpoolMaterializations += o.SpoolMaterializations
	m.SpoolReads += o.SpoolReads
	m.Exchanges += o.Exchanges
	m.CacheReads += o.CacheReads
	m.CacheBytesRead += o.CacheBytesRead
	m.CacheBytesWritten += o.CacheBytesWritten
	m.BatchesProcessed += o.BatchesProcessed
	m.ScalarCSEHits += o.ScalarCSEHits
	m.Spills += o.Spills
	m.SpillBytesWritten += o.SpillBytesWritten
	m.SpillBytesRead += o.SpillBytesRead
	// High-water mark, not a flow: merging shards takes the maximum
	// so the value is the largest single working set anywhere.
	if o.PeakResidentBytes > m.PeakResidentBytes {
		m.PeakResidentBytes = o.PeakResidentBytes
	}
}

// Engine names for Cluster.Engine.
const (
	// EngineRow is the row-at-a-time reference engine.
	EngineRow = "row"
	// EngineVector is the typed columnar batch engine.
	EngineVector = "vector"
)

// Cluster is the simulated shared-nothing cluster.
type Cluster struct {
	// Machines is the number of simulated machines (partitions).
	Machines int
	// Engine selects the execution engine: EngineVector runs the
	// typed columnar kernels, EngineRow (or "", the zero value) the
	// row-at-a-time reference path. Both produce bit-identical
	// results, Core metrics, and trace trees at any worker width;
	// the row engine is the differential-testing oracle.
	Engine string
	// MemBudget bounds, in bytes, the working set one partition task
	// may hold in memory (hash-aggregation tables, join builds, sort
	// buffers). 0 means unlimited. Under the vector engine an
	// operator that would exceed the budget spills scratch runs
	// through the metered FileStore and completes; the row engine
	// has no spill path and fails with ErrMemBudget instead.
	MemBudget int64
	// Workers bounds how many partition tasks execute concurrently
	// during a Run; <= 0 means runtime.GOMAXPROCS(0). One worker
	// reproduces fully serial execution. Every worker meters into its
	// own shard, merged into the cluster meter when the run finishes,
	// so metered totals are identical at any worker count.
	Workers int
	// FS is the simulated distributed file system.
	FS *FileStore
	// Validate enables runtime verification of the physical
	// properties plans rely on (colocation and clustering checks).
	Validate bool
	// PersistSpools maps spool keys ("group|ctxkey", as formed by the
	// runner) to FileStore paths: when a spool with a listed key
	// materializes, its logical content is also written to the given
	// path. Sessions use this to persist admitted shared
	// subexpressions into the cross-query cache. Set it before Run;
	// it is read concurrently during execution.
	PersistSpools map[string]string
	// Trace, when non-nil, records execution spans: one per run, per
	// operator, per partition task, plus single-flight spool
	// materializations. Span identities derive from plan node ids, so
	// the span tree is deterministic at any Workers width. Nil
	// disables tracing at zero cost.
	Trace *obs.Tracer
	// Obs, when non-nil, receives every finished run's metered totals
	// (Metrics.Publish); safe with concurrent Run calls.
	Obs *obs.Registry

	mu      sync.Mutex
	metrics Metrics // guarded by mu; Run calls may be concurrent
	runSeq  int64   // guarded by mu; distinguishes spill scratch paths across runs
}

// checkEngine validates the engine selector before a run.
func (c *Cluster) checkEngine() error {
	switch c.Engine {
	case "", EngineRow, EngineVector:
		return nil
	}
	return fmt.Errorf("exec: unknown engine %q (want %q or %q)", c.Engine, EngineVector, EngineRow)
}

// nextRunSeq hands out the per-cluster run sequence number used to
// keep concurrent runs' spill scratch paths disjoint. Deterministic:
// it only varies with run admission order, and spill paths never
// outlive their operator.
func (c *Cluster) nextRunSeq() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runSeq++
	return c.runSeq
}

// NewCluster returns a cluster with the given machine count over fs.
// The machine count is part of the experiment being run, so an
// unusable value is an error rather than a silently substituted
// default.
func NewCluster(machines int, fs *FileStore) (*Cluster, error) {
	if machines <= 0 {
		return nil, fmt.Errorf("exec: cluster needs at least 1 machine, got %d", machines)
	}
	if fs == nil {
		fs = NewFileStore()
	}
	return &Cluster{
		Machines: machines,
		Workers:  defaultWorkers(),
		FS:       fs,
		Validate: true,
	}, nil
}

// defaultWorkers is the worker-pool width used when Cluster.Workers
// is unset: one partition task in flight per available CPU.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Metrics returns the work metered since the last Reset.
func (c *Cluster) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.metrics
}

// Reset clears the meter.
func (c *Cluster) Reset() {
	c.mu.Lock()
	c.metrics = Metrics{}
	c.mu.Unlock()
}

// addMetrics merges one run's metered work into the cluster meter.
func (c *Cluster) addMetrics(m Metrics) {
	c.mu.Lock()
	c.metrics.add(m)
	c.mu.Unlock()
}

// pdata is a partitioned intermediate result: one row slice per
// machine (row engine) or one columnar batch per machine (vector
// engine; vparts non-nil, parts nil). The accounting views below are
// representation-independent, so metering is identical across
// engines.
type pdata struct {
	schema relop.Schema
	parts  [][]relop.Row
	vparts []*colData
	// broadcast marks replicated data: every partition holds a full
	// copy. Operators that merge partitions (Output, Repartition)
	// must read a single copy, and aggregations must never consume
	// it directly.
	broadcast bool
}

func newPData(schema relop.Schema, machines int) *pdata {
	return &pdata{schema: schema, parts: make([][]relop.Row, machines)}
}

func newVData(schema relop.Schema, machines int) *pdata {
	return &pdata{schema: schema, vparts: make([]*colData, machines)}
}

// partRows returns the visible row count of one partition.
func (p *pdata) partRows(m int) int64 {
	if p.vparts != nil {
		if c := p.vparts[m]; c != nil {
			return int64(c.rows())
		}
		return 0
	}
	return int64(len(p.parts[m]))
}

// nparts returns the partition count.
func (p *pdata) nparts() int {
	if p.vparts != nil {
		return len(p.vparts)
	}
	return len(p.parts)
}

// rows returns the total row count.
func (p *pdata) rows() int64 {
	var n int64
	for m := 0; m < p.nparts(); m++ {
		n += p.partRows(m)
	}
	return n
}

// bytes returns the accounted size across all partitions; broadcast
// data counts every replica.
func (p *pdata) bytes() int64 {
	return p.rows() * int64(len(p.schema)) * 8
}

// logicalBytes returns the size of one logical copy of the data.
// Broadcast pdata replicates the same rows on every machine, and
// storage metering (spool writes and reads, exchange sources) must
// not multiply by the copy count — the cost model prices those
// against the relation's logical size.
func (p *pdata) logicalBytes() int64 {
	if p.broadcast {
		return p.partRows(0) * int64(len(p.schema)) * 8
	}
	return p.bytes()
}

// gather concatenates all partitions (deterministically, by machine
// index); broadcast data yields its single logical copy. Columnar
// partitions materialize to rows here — the row/column boundary for
// Output and spool persistence.
func (p *pdata) gather() []relop.Row {
	if p.vparts != nil {
		if p.broadcast {
			return p.vparts[0].materialize()
		}
		var out []relop.Row
		for _, c := range p.vparts {
			if c != nil {
				out = append(out, c.materialize()...)
			}
		}
		return out
	}
	if p.broadcast {
		return p.parts[0]
	}
	var out []relop.Row
	for _, part := range p.parts {
		out = append(out, part...)
	}
	return out
}

// hashDest computes the destination machine of a row under hash
// partitioning on the given column indexes.
func hashDest(r relop.Row, idx []int, machines int) int {
	return int(r.HashCols(idx) % uint64(machines))
}

// keyOf renders the key columns of a row for validation maps.
func keyOf(r relop.Row, idx []int) string {
	s := ""
	for _, i := range idx {
		s += r[i].String() + "|"
	}
	return s
}

// sortRows sorts rows by the ordering in place. The sort is stable so
// executions are fully deterministic.
func sortRows(rows []relop.Row, schema relop.Schema, order props.Ordering) error {
	idx := make([]int, len(order))
	for i, sc := range order {
		j := schema.Index(sc.Col)
		if j < 0 {
			return fmt.Errorf("exec: sort column %q not in schema %v", sc.Col, schema)
		}
		idx[i] = j
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for i, sc := range order {
			c := rows[a][idx[i]].Compare(rows[b][idx[i]])
			if sc.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	return nil
}

// checkSorted verifies rows are ordered by the given ordering; the
// executor uses it to validate ORDER BY outputs.
func checkSorted(rows []relop.Row, schema relop.Schema, order props.Ordering) error {
	idx := make([]int, len(order))
	for i, sc := range order {
		j := schema.Index(sc.Col)
		if j < 0 {
			return fmt.Errorf("sort column %q not in schema %v", sc.Col, schema)
		}
		idx[i] = j
	}
	for i := 1; i < len(rows); i++ {
		for k, sc := range order {
			c := rows[i-1][idx[k]].Compare(rows[i][idx[k]])
			if sc.Desc {
				c = -c
			}
			if c < 0 {
				break
			}
			if c > 0 {
				return fmt.Errorf("rows %d and %d violate order %v", i-1, i, order)
			}
		}
	}
	return nil
}
