package exec

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/plan"
)

// This file adapts Metrics to the unified observability layer and
// holds the span-identity helpers. The public Metrics fields stay the
// source of truth; Snapshot/Publish/String are derived views.

// Snapshot converts the metered totals to a unified metrics snapshot
// under the "exec." prefix.
func (m Metrics) Snapshot() obs.Snapshot {
	out := obs.NewSnapshot()
	out.Counters["exec.disk_bytes_read"] = m.DiskBytesRead
	out.Counters["exec.disk_bytes_written"] = m.DiskBytesWritten
	out.Counters["exec.net_bytes"] = m.NetBytes
	out.Counters["exec.rows_processed"] = m.RowsProcessed
	out.Counters["exec.spool_materializations"] = int64(m.SpoolMaterializations)
	out.Counters["exec.spool_reads"] = int64(m.SpoolReads)
	out.Counters["exec.exchanges"] = int64(m.Exchanges)
	out.Counters["exec.cache_reads"] = int64(m.CacheReads)
	out.Counters["exec.cache_bytes_read"] = m.CacheBytesRead
	out.Counters["exec.cache_bytes_written"] = m.CacheBytesWritten
	out.Counters["exec.batches"] = m.BatchesProcessed
	out.Counters["exec.scalar_cse_hits"] = m.ScalarCSEHits
	out.Counters["exec.spills"] = int64(m.Spills)
	out.Counters["exec.spill_bytes_read"] = m.SpillBytesRead
	out.Counters["exec.spill_bytes_written"] = m.SpillBytesWritten
	// PeakResidentBytes stays out of the snapshot: Record sums
	// counters across runs, but peaks merge by max, so folding the
	// peak into an additive registry would misreport it.
	return out
}

// Publish folds one run's totals into a registry (nil-safe): the
// counters of Snapshot plus a per-run row-count histogram, so a batch
// registry shows the distribution of run sizes, not just their sum.
func (m Metrics) Publish(r *obs.Registry) {
	if r == nil {
		return
	}
	s := m.Snapshot()
	s.Hists["exec.run_rows_processed"] = obs.HistObservation(m.RowsProcessed)
	r.Record(s)
}

// String renders the metrics in the stable snapshot layout.
func (m Metrics) String() string { return m.Snapshot().String() }

// nodeID is the deterministic span identity of a plan node: the memo
// group that produced it plus a hash of the optimization context it
// was chosen under. Two references to one shared node trace under the
// same id regardless of which goroutine executes them.
func nodeID(n *plan.Node) string {
	return fmt.Sprintf("G%d.%08x", n.Group, fnv32(n.CtxKey))
}

// fnv32 is FNV-1a over s; CtxKeys embed pin signatures and can be
// long, so spans carry this fixed-width digest instead.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}
