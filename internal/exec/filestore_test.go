package exec

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/relop"
)

func fsTable(rows int) *Table {
	t := &Table{Schema: relop.Schema{{Name: "A", Type: relop.TInt}}}
	for i := 0; i < rows; i++ {
		t.Rows = append(t.Rows, relop.Row{relop.IntVal(int64(i))})
	}
	return t
}

func TestFileStoreRemove(t *testing.T) {
	fs := NewFileStore()
	tab := fsTable(5)
	fs.Put("f", tab)

	n, ok := fs.Remove("f")
	if !ok || n != tab.Bytes() {
		t.Fatalf("Remove = (%d, %v), want (%d, true)", n, ok, tab.Bytes())
	}
	if _, ok := fs.Get("f"); ok {
		t.Error("file should be gone after Remove")
	}
	if n, ok := fs.Remove("f"); ok || n != 0 {
		t.Errorf("second Remove = (%d, %v), want (0, false)", n, ok)
	}
	if n, ok := fs.Remove("never"); ok || n != 0 {
		t.Errorf("Remove of unknown path = (%d, %v), want (0, false)", n, ok)
	}
	count, bytes := fs.RemoveStats()
	if count != 1 || bytes != tab.Bytes() {
		t.Errorf("RemoveStats = (%d, %d), want (1, %d)", count, bytes, tab.Bytes())
	}
}

func TestFileStoreVersionTracking(t *testing.T) {
	fs := NewFileStore()
	if v := fs.Version("f"); v != 0 {
		t.Errorf("version of unseen path = %d, want 0", v)
	}
	fs.Put("f", fsTable(1))
	if v := fs.Version("f"); v != 1 {
		t.Errorf("version after Put = %d, want 1", v)
	}
	fs.Put("f", fsTable(2))
	if v := fs.Version("f"); v != 2 {
		t.Errorf("version after second Put = %d, want 2", v)
	}
	fs.Remove("f")
	if v := fs.Version("f"); v != 3 {
		t.Errorf("version after Remove = %d, want 3", v)
	}
	// A failed Remove is not a mutation.
	fs.Remove("f")
	if v := fs.Version("f"); v != 3 {
		t.Errorf("version after no-op Remove = %d, want 3", v)
	}
	if v := fs.Version("g"); v != 0 {
		t.Errorf("unrelated path version = %d, want 0", v)
	}
}

// TestFileStoreRemoveConcurrent hammers Put/Remove/Get/Version from
// many goroutines; the race detector leg of check.sh relies on it.
func TestFileStoreRemoveConcurrent(t *testing.T) {
	fs := NewFileStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p := fmt.Sprintf("f%d", i%10)
				fs.Put(p, fsTable(1))
				fs.Get(p)
				fs.Version(p)
				fs.Remove(p)
				fs.RemoveStats()
			}
		}(w)
	}
	wg.Wait()
	count, bytes := fs.RemoveStats()
	if count == 0 || bytes == 0 {
		t.Errorf("concurrent removes not metered: count=%d bytes=%d", count, bytes)
	}
}
