package exec_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/opt"
	"repro/internal/rules"
)

// optimizeWorkload builds and optimizes one builtin workload.
func optimizeSpillPlan(t *testing.T, name, script string, cse bool) (*opt.Result, *exec.FileStore) {
	t.Helper()
	w := bench.Small(name, script)
	opts := opt.DefaultOptions()
	opts.EnableCSE = cse
	opts.Rules = rules.SCOPEProfile()
	m, err := logical.BuildSource(w.Script, w.Cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Optimize(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, w.FS
}

// TestSpillMeteringAndCleanup forces the S1 plan to spill and checks
// the spill ledger: spill events and bytes are metered, every byte
// written is read back exactly once, the scratch high-water mark
// respects the budget, and no spill scratch survives in the
// FileStore after the run.
func TestSpillMeteringAndCleanup(t *testing.T) {
	const budget = 512
	res, fs := optimizeSpillPlan(t, "S1", bench.ScriptS1, true)
	cl := testClusterFS(t, 5, fs)
	cl.Engine = exec.EngineVector
	cl.MemBudget = budget
	if _, err := cl.Run(res.Plan); err != nil {
		t.Fatal(err)
	}
	m := cl.Metrics()
	if m.Spills == 0 {
		t.Fatal("tiny budget forced no spills")
	}
	if m.SpillBytesWritten == 0 {
		t.Error("spills metered no bytes written")
	}
	if m.SpillBytesRead != m.SpillBytesWritten {
		t.Errorf("spill bytes read %d != written %d: scratch must be read back exactly once",
			m.SpillBytesRead, m.SpillBytesWritten)
	}
	if m.PeakResidentBytes == 0 || m.PeakResidentBytes > budget {
		t.Errorf("peak resident scratch %d, want within (0, %d]", m.PeakResidentBytes, budget)
	}
	for _, p := range fs.Paths() {
		if strings.HasPrefix(p, "tmp/spill/") {
			t.Errorf("spill scratch %q leaked into the FileStore", p)
		}
	}
}

// TestSpillChargedAtDiskBandwidth: a spilling run must simulate
// slower than the same plan in memory — spill traffic moves through
// the store at disk bandwidth, it is not free.
func TestSpillChargedAtDiskBandwidth(t *testing.T) {
	res, fs := optimizeSpillPlan(t, "S2", bench.ScriptS2, true)
	clock := cost.DefaultCluster()

	inMem := testClusterFS(t, 5, fs)
	inMem.Engine = exec.EngineVector
	if _, err := inMem.Run(res.Plan); err != nil {
		t.Fatal(err)
	}
	spilling := testClusterFS(t, 5, fs)
	spilling.Engine = exec.EngineVector
	spilling.MemBudget = 512
	if _, err := spilling.Run(res.Plan); err != nil {
		t.Fatal(err)
	}
	free, paid := inMem.Metrics().SimulatedSeconds(clock), spilling.Metrics().SimulatedSeconds(clock)
	if spilling.Metrics().Spills == 0 {
		t.Fatal("budgeted run did not spill")
	}
	if paid <= free {
		t.Errorf("spilling run simulates %.9fs, in-memory %.9fs — spill I/O must cost time", paid, free)
	}
}

// TestRowEngineFailsFastUnderBudget: the row engine has no spill path
// — under a budget its memory-hungry operators must fail with
// ErrMemBudget rather than silently exceed it.
func TestRowEngineFailsFastUnderBudget(t *testing.T) {
	res, fs := optimizeSpillPlan(t, "S1", bench.ScriptS1, false)
	cl := testClusterFS(t, 5, fs)
	cl.Engine = exec.EngineRow
	cl.MemBudget = 512
	_, err := cl.Run(res.Plan)
	if err == nil {
		t.Fatal("row engine ran a working set far over budget without error")
	}
	if !errors.Is(err, exec.ErrMemBudget) {
		t.Fatalf("error %v, want ErrMemBudget", err)
	}
}

// TestSpillDisabledWithoutBudget: with no budget nothing spills and
// no spill-side metrics appear, on either engine.
func TestSpillDisabledWithoutBudget(t *testing.T) {
	for _, engine := range []string{exec.EngineRow, exec.EngineVector} {
		res, fs := optimizeSpillPlan(t, "S3", bench.ScriptS3, true)
		cl := testClusterFS(t, 5, fs)
		cl.Engine = engine
		if _, err := cl.Run(res.Plan); err != nil {
			t.Fatal(err)
		}
		m := cl.Metrics()
		if m.Spills != 0 || m.SpillBytesWritten != 0 || m.SpillBytesRead != 0 {
			t.Errorf("engine=%s: unbudgeted run metered spills: %+v", engine, m)
		}
	}
}

// TestUnknownEngineRejected: a typo'd engine name must fail up front,
// not fall back to either engine.
func TestUnknownEngineRejected(t *testing.T) {
	res, fs := optimizeSpillPlan(t, "S4", bench.ScriptS4, false)
	cl := testClusterFS(t, 5, fs)
	cl.Engine = "columnar"
	if _, err := cl.Run(res.Plan); err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("engine %q: err = %v, want unknown-engine error", cl.Engine, err)
	}
}
