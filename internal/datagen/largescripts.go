package datagen

import (
	"fmt"
	"strings"

	"repro/internal/exec"
	"repro/internal/stats"
)

// LSShape parameterizes a generated large script. The paper's LS1 and
// LS2 are proprietary production scripts; only their shapes are
// published (Sec. IX / Fig. 6): operator counts of the initial
// operator DAG, number of shared groups, and consumer fan-outs. The
// generator reproduces those shapes exactly over synthetic inputs.
type LSShape struct {
	Name string
	// TargetOps is the number of operators in the initial operator
	// DAG (memo groups before optimization).
	TargetOps int
	// SharedFanouts gives one entry per shared group: its consumer
	// count.
	SharedFanouts []int
	// PhysRows is the physical rows generated per input file (kept
	// laptop-sized); StatScale inflates the statistics the optimizer
	// sees.
	PhysRows  int64
	StatScale int64
	// FillerStatScale inflates the filler-chain inputs' statistics
	// (defaults to StatScale). The ratio of filler to shared work is
	// what sets the script's overall saving fraction: the paper's
	// LS1 saves only 21% (lots of unshared work), LS2 saves 45%.
	FillerStatScale int64
	// BudgetSeconds is the optimization budget the paper used.
	BudgetSeconds int
	// FillerChainLen bounds the length of each unshared filler chain.
	FillerChainLen int
	// SharedFilter deepens each shared pipeline with a filter stage
	// below the shared aggregation, increasing the work a
	// conventional plan duplicates per consumer.
	SharedFilter bool
	Seed         int64
}

// LS1Shape matches the paper's LS1: 101 operators, 4 shared groups —
// 3 with two consumers, 1 with three — optimized under a 30 s budget.
func LS1Shape() LSShape {
	return LSShape{
		Name:          "LS1",
		TargetOps:     101,
		SharedFanouts: []int{2, 2, 2, 3},
		PhysRows:      2_000,
		StatScale:     1_000_000,
		// The heavy filler (unshared work dominating the script) is
		// what keeps LS1's saving modest, matching the paper's 21%.
		FillerStatScale: 10_000_000,
		BudgetSeconds:   30,
		FillerChainLen:  40,
		Seed:            101,
	}
}

// LS2Shape matches the paper's LS2: 1034 operators, 17 shared groups
// — 15 with two consumers, 1 with four, 1 with five — optimized under
// a 60 s budget.
func LS2Shape() LSShape {
	fans := make([]int, 0, 17)
	for i := 0; i < 15; i++ {
		fans = append(fans, 2)
	}
	fans = append(fans, 4, 5)
	return LSShape{
		Name:          "LS2",
		TargetOps:     1034,
		SharedFanouts: fans,
		PhysRows:      1_000,
		// Large shared inputs (tens of TB at cluster scale) with
		// light filler: most of LS2's cost sits in its 17 shared
		// pipelines, matching the paper's 45% saving.
		StatScale:       3_000_000,
		FillerStatScale: 250_000,
		BudgetSeconds:   60,
		FillerChainLen:  120,
		Seed:            1034,
	}
}

// consumerGroupings are the grouping-key sets handed out to the
// consumers of one shared aggregation, in order; distinct sets keep
// the consumers structurally different (and their property
// requirements conflicting, which is the point of the paper).
var consumerGroupings = [][]string{
	{"A", "B"}, {"B", "C"}, {"A", "C"}, {"A"}, {"B"}, {"C"}, {"A", "B", "C"},
}

// LargeScript generates a workload whose initial operator DAG has
// exactly shape.TargetOps operators with the requested shared-group
// fan-outs. Group-count arithmetic: each shared pipeline contributes
// 2 + 2·fan operators (extract, shared aggregation, then one consumer
// aggregation and one output per consumer); a sequence node ties the
// outputs; filler chains of pure projections (1 operator each, plus
// an extract and an output per chain) absorb the remainder.
func LargeScript(shape LSShape) *Workload {
	var sb strings.Builder
	fs := exec.NewFileStore()
	cat := stats.NewCatalog()
	cols := TestLogColumns()
	seed := shape.Seed

	fillerScale := shape.FillerStatScale
	if fillerScale <= 0 {
		fillerScale = shape.StatScale
	}
	addInput := func(path string, scale int64) {
		fs.Put(path, LogTable(shape.PhysRows, cols, seed))
		CatalogFor(cat, path, shape.PhysRows, cols, scale)
		seed++
	}

	// Operator-count arithmetic, computed up front:
	//   core = 1 (sequence) + Σ over shared pipelines (2 + 2·fan)
	//   each filler chain = 2 + its length
	//   remainder (deficit too small for a chain) = pre-projections
	//   spliced between the first extract and its shared aggregation
	//   (1 operator each, no sharing changes).
	perPipeline := 2 // extract + shared aggregation
	if shape.SharedFilter {
		perPipeline += 2 // filter + projection
	}
	coreOps := 1
	for _, fan := range shape.SharedFanouts {
		coreOps += perPipeline + 2*fan
	}
	deficit := shape.TargetOps - coreOps
	if deficit < 0 {
		deficit = 0
	}
	maxLen := shape.FillerChainLen
	if maxLen < 1 {
		maxLen = 40
	}
	var chainLens []int
	preProjections := 0
	if deficit >= 3 {
		k := (deficit + maxLen + 1) / (maxLen + 2)
		if k > deficit/3 {
			k = deficit / 3
		}
		if k < 1 {
			k = 1
		}
		total := deficit - 2*k
		base := total / k
		extra := total % k
		for c := 0; c < k; c++ {
			l := base
			if c < extra {
				l++
			}
			chainLens = append(chainLens, l)
		}
	} else {
		preProjections = deficit
	}

	for i, fan := range shape.SharedFanouts {
		file := fileName(i)
		addInput(file, shape.StatScale)
		fmt.Fprintf(&sb, "E%d = EXTRACT A,B,C,D FROM %q USING LogExtractor;\n", i, file)
		src := fmt.Sprintf("E%d", i)
		if i == 0 {
			for p := 1; p <= preProjections; p++ {
				fmt.Fprintf(&sb, "P0_%d = SELECT A, B, C, D FROM %s;\n", p, src)
				src = fmt.Sprintf("P0_%d", p)
			}
		}
		if shape.SharedFilter {
			fmt.Fprintf(&sb, "W%d = SELECT A, B, C, D FROM %s WHERE D >= 0;\n", i, src)
			src = fmt.Sprintf("W%d", i)
		}
		fmt.Fprintf(&sb, "S%d = SELECT A,B,C,Sum(D) as S FROM %s GROUP BY A,B,C;\n", i, src)
		for j := 0; j < fan; j++ {
			keys := consumerGroupings[j%len(consumerGroupings)]
			fmt.Fprintf(&sb, "C%d_%d = SELECT %s,Sum(S) as T FROM S%d GROUP BY %s;\n",
				i, j, strings.Join(keys, ","), i, strings.Join(keys, ","))
			fmt.Fprintf(&sb, "OUTPUT C%d_%d TO \"out/s%d_%d.out\";\n", i, j, i, j)
		}
	}

	for chain, length := range chainLens {
		file := fmt.Sprintf("logs/filler%02d.log", chain)
		addInput(file, fillerScale)
		fmt.Fprintf(&sb, "F%d_0 = EXTRACT A,B,C,D FROM %q USING LogExtractor;\n", chain, file)
		for s := 1; s <= length; s++ {
			fmt.Fprintf(&sb, "F%d_%d = SELECT A, B, C, D FROM F%d_%d;\n", chain, s, chain, s-1)
		}
		fmt.Fprintf(&sb, "OUTPUT F%d_%d TO \"out/f%d.out\";\n", chain, length, chain)
	}

	return &Workload{
		Name:          shape.Name,
		Script:        sb.String(),
		FS:            fs,
		Cat:           cat,
		BudgetSeconds: shape.BudgetSeconds,
	}
}

// LargeScript1 generates the LS1-shaped workload.
func LargeScript1() *Workload { return LargeScript(LS1Shape()) }

// LargeScript2 generates the LS2-shaped workload.
func LargeScript2() *Workload { return LargeScript(LS2Shape()) }
