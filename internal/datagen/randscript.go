package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/exec"
	"repro/internal/stats"
)

// RandomWorkload generates a random but always-valid SCOPE script
// together with physical data and statistics, for differential
// testing: the conventional plan, the CSE plan, and the single-node
// reference interpreter must all produce identical results on it.
//
// The generator draws filters, projections, aggregations, and joins
// over a growing pool of intermediates, reusing intermediates freely —
// which is exactly how common subexpressions (and nested sharing)
// arise. Output column names are always freshly aliased so joins can
// never clash, and aggregate arguments are always numeric.
func RandomWorkload(seed int64, steps int) *Workload {
	r := rand.New(rand.NewSource(seed))
	g := &randGen{
		r:     r,
		fs:    exec.NewFileStore(),
		cat:   stats.NewCatalog(),
		fresh: map[string]int{},
	}
	nExtracts := 1 + r.Intn(3)
	for i := 0; i < nExtracts; i++ {
		g.addExtract(i)
	}
	for i := 0; i < steps; i++ {
		switch g.r.Intn(12) {
		case 0, 1:
			g.addFilter()
		case 2, 3:
			g.addProject()
		case 4, 5, 6, 7:
			g.addGroupBy()
		case 8:
			g.addDistinct()
		case 9:
			g.addUnion()
		default:
			g.addJoin()
		}
	}
	g.addOutputs()
	return &Workload{
		Name:   fmt.Sprintf("rand-%d", seed),
		Script: g.sb.String(),
		FS:     g.fs,
		Cat:    g.cat,
	}
}

type randIntermediate struct {
	name string
	cols []string
	// numeric marks columns safe as aggregate arguments (all are in
	// this generator, but keep the hook explicit).
	depth int
}

type randGen struct {
	r     *rand.Rand
	fs    *exec.FileStore
	cat   *stats.Catalog
	sb    strings.Builder
	pool  []randIntermediate
	fresh map[string]int
	seq   int
}

// name mints a fresh intermediate name.
func (g *randGen) name(prefix string) string {
	g.seq++
	return fmt.Sprintf("%s%d", prefix, g.seq)
}

// alias mints a globally fresh column alias.
func (g *randGen) alias() string {
	g.fresh["c"]++
	return fmt.Sprintf("c%d", g.fresh["c"])
}

// pick returns a random intermediate, biased toward recent ones so
// chains grow but old intermediates still get re-consumed (creating
// shared groups).
func (g *randGen) pick() randIntermediate {
	n := len(g.pool)
	if g.r.Intn(3) == 0 {
		return g.pool[g.r.Intn(n)]
	}
	lo := n - 3
	if lo < 0 {
		lo = 0
	}
	return g.pool[lo+g.r.Intn(n-lo)]
}

func (g *randGen) addExtract(i int) {
	file := fmt.Sprintf("rand/in%d.log", i)
	cols := []ColumnSpec{
		{Name: "A", Distinct: int64(2 + g.r.Intn(6))},
		{Name: "B", Distinct: int64(2 + g.r.Intn(6))},
		{Name: "C", Distinct: int64(2 + g.r.Intn(8))},
		{Name: "D", Distinct: 50},
	}
	rows := int64(50 + g.r.Intn(200))
	g.fs.Put(file, LogTable(rows, cols, g.r.Int63()))
	CatalogFor(g.cat, file, rows, cols, 1_000_000)
	name := g.name("E")
	fmt.Fprintf(&g.sb, "%s = EXTRACT A,B,C,D FROM %q USING LogExtractor;\n", name, file)
	g.pool = append(g.pool, randIntermediate{name: name, cols: []string{"A", "B", "C", "D"}})
}

func (g *randGen) addFilter() {
	src := g.pick()
	col := src.cols[g.r.Intn(len(src.cols))]
	name := g.name("F")
	// Keep selectivity moderate so data survives chains.
	pred := fmt.Sprintf("%s >= %d", col, g.r.Intn(3))
	if g.r.Intn(3) == 0 {
		other := src.cols[g.r.Intn(len(src.cols))]
		pred = fmt.Sprintf("%s OR %s < %d", pred, other, 1+g.r.Intn(4))
	}
	fmt.Fprintf(&g.sb, "%s = SELECT %s FROM %s WHERE %s;\n",
		name, strings.Join(src.cols, ", "), src.name, pred)
	g.pool = append(g.pool, randIntermediate{name: name, cols: src.cols, depth: src.depth + 1})
}

func (g *randGen) addProject() {
	src := g.pick()
	k := 1 + g.r.Intn(len(src.cols))
	perm := g.r.Perm(len(src.cols))[:k]
	var items, cols []string
	for _, idx := range perm {
		a := g.alias()
		items = append(items, fmt.Sprintf("%s as %s", src.cols[idx], a))
		cols = append(cols, a)
	}
	// Sometimes add a computed column.
	if g.r.Intn(2) == 0 {
		a := g.alias()
		c := src.cols[g.r.Intn(len(src.cols))]
		items = append(items, fmt.Sprintf("%s + %d as %s", c, g.r.Intn(5), a))
		cols = append(cols, a)
	}
	name := g.name("P")
	fmt.Fprintf(&g.sb, "%s = SELECT %s FROM %s;\n", name, strings.Join(items, ", "), src.name)
	g.pool = append(g.pool, randIntermediate{name: name, cols: cols, depth: src.depth + 1})
}

var aggFuncs = []string{"Sum", "Count", "Min", "Max"}

func (g *randGen) addGroupBy() {
	src := g.pick()
	if len(src.cols) < 2 {
		return
	}
	nKeys := 1 + g.r.Intn(len(src.cols)-1)
	perm := g.r.Perm(len(src.cols))
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = src.cols[perm[i]]
	}
	var items []string
	items = append(items, keys...)
	outCols := append([]string{}, keys...)
	nAggs := 1 + g.r.Intn(2)
	var aggNames []string
	for i := 0; i < nAggs; i++ {
		fn := aggFuncs[g.r.Intn(len(aggFuncs))]
		a := g.alias()
		if fn == "Count" && g.r.Intn(2) == 0 {
			items = append(items, fmt.Sprintf("Count() as %s", a))
		} else {
			arg := src.cols[perm[len(perm)-1-i%len(perm)]]
			items = append(items, fmt.Sprintf("%s(%s) as %s", fn, arg, a))
		}
		outCols = append(outCols, a)
		aggNames = append(aggNames, a)
	}
	having := ""
	if g.r.Intn(4) == 0 {
		having = fmt.Sprintf(" HAVING %s >= %d", aggNames[0], g.r.Intn(3))
	}
	name := g.name("G")
	fmt.Fprintf(&g.sb, "%s = SELECT %s FROM %s GROUP BY %s%s;\n",
		name, strings.Join(items, ", "), src.name, strings.Join(keys, ", "), having)
	g.pool = append(g.pool, randIntermediate{name: name, cols: outCols, depth: src.depth + 1})
}

// addDistinct emits a SELECT DISTINCT projection.
func (g *randGen) addDistinct() {
	src := g.pick()
	k := 1 + g.r.Intn(len(src.cols))
	perm := g.r.Perm(len(src.cols))[:k]
	var items, cols []string
	for _, idx := range perm {
		a := g.alias()
		items = append(items, fmt.Sprintf("%s as %s", src.cols[idx], a))
		cols = append(cols, a)
	}
	name := g.name("D")
	fmt.Fprintf(&g.sb, "%s = SELECT DISTINCT %s FROM %s;\n", name, strings.Join(items, ", "), src.name)
	g.pool = append(g.pool, randIntermediate{name: name, cols: cols, depth: src.depth + 1})
}

// addUnion aligns two intermediates onto a common schema via fresh
// projections and concatenates them.
func (g *randGen) addUnion() {
	if len(g.pool) < 2 {
		return
	}
	a, b := g.pick(), g.pick()
	if a.name == b.name {
		return
	}
	width := len(a.cols)
	if len(b.cols) < width {
		width = len(b.cols)
	}
	width = 1 + g.r.Intn(width)
	cols := make([]string, width)
	for i := range cols {
		cols[i] = g.alias()
	}
	align := func(src randIntermediate) string {
		items := make([]string, width)
		perm := g.r.Perm(len(src.cols))
		for i := 0; i < width; i++ {
			items[i] = fmt.Sprintf("%s as %s", src.cols[perm[i]], cols[i])
		}
		n := g.name("V")
		fmt.Fprintf(&g.sb, "%s = SELECT %s FROM %s;\n", n, strings.Join(items, ", "), src.name)
		return n
	}
	left, right := align(a), align(b)
	name := g.name("U")
	fmt.Fprintf(&g.sb, "%s = UNION ALL %s, %s;\n", name, left, right)
	g.pool = append(g.pool, randIntermediate{name: name, cols: cols, depth: a.depth + b.depth + 1})
}

func (g *randGen) addJoin() {
	if len(g.pool) < 2 {
		return
	}
	l := g.pick()
	r := g.pick()
	if l.name == r.name || l.depth+r.depth > 8 {
		return
	}
	lk := l.cols[g.r.Intn(len(l.cols))]
	rk := r.cols[g.r.Intn(len(r.cols))]
	var items, cols []string
	take := func(src randIntermediate, n int) {
		perm := g.r.Perm(len(src.cols))
		if n > len(src.cols) {
			n = len(src.cols)
		}
		for _, idx := range perm[:n] {
			a := g.alias()
			items = append(items, fmt.Sprintf("%s.%s as %s", src.name, src.cols[idx], a))
			cols = append(cols, a)
		}
	}
	take(l, 1+g.r.Intn(2))
	take(r, 1+g.r.Intn(2))
	name := g.name("J")
	fmt.Fprintf(&g.sb, "%s = SELECT %s FROM %s, %s WHERE %s.%s = %s.%s;\n",
		name, strings.Join(items, ", "), l.name, r.name, l.name, lk, r.name, rk)
	g.pool = append(g.pool, randIntermediate{name: name, cols: cols, depth: l.depth + r.depth + 1})
}

func (g *randGen) addOutputs() {
	n := 1 + g.r.Intn(3)
	for i := 0; i < n; i++ {
		// Deliberately allow the same intermediate to be output to
		// several files: it then has multiple parents and becomes a
		// shared group whose consumers are Outputs.
		src := g.pick()
		order := ""
		if g.r.Intn(3) == 0 {
			order = " ORDER BY " + src.cols[g.r.Intn(len(src.cols))]
		}
		fmt.Fprintf(&g.sb, "OUTPUT %s TO \"rand/out%d.out\"%s;\n", src.name, i, order)
	}
}
